package repro

// Golden fixtures for the process-variation modes (internal/variation).
// Each fixture pins a full variation report on the c432 ISCAS netlist to
// a committed JSON snapshot, bitwise on goldenArch: the corner
// enumeration (every cell's full core.Result plus the cross-corner delay
// distribution) and a seed-7 Monte-Carlo run (every sample's
// perturbation scalars and result, the delay/area/noise distributions,
// and the yield). Refresh with the shared -update flag
// (`go test -run TestGolden -update .` / `make golden`) and commit the
// rewritten JSON together with the numerical change that explains it.
//
// Beyond the snapshot, each fixture re-runs at other worker widths (and,
// for Monte-Carlo, on the solo path) and demands the identical bytes —
// the variation layer's determinism contract at ISCAS scale.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/variation"
)

// variationInstance builds the c432 instance the variation fixtures run
// on — the same spec + pipeline the c432 solver fixture uses.
func variationInstance(t *testing.T) (*bench.Instance, bench.Bounds) {
	t.Helper()
	s, ok := bench.SpecByName("c432")
	if !ok {
		t.Fatal("unknown spec c432")
	}
	inst, err := bench.BuildInstance(s, bench.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst, bench.DeriveBounds(inst)
}

func checkGoldenJSON[T any](t *testing.T, name string, ref *T) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		data, err := json.MarshalIndent(ref, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update .` to create)", err)
	}
	want := new(T)
	if err := json.Unmarshal(data, want); err != nil {
		t.Fatal(err)
	}
	if runtime.GOARCH == goldenArch && !reflect.DeepEqual(want, ref) {
		t.Errorf("result diverged from golden snapshot %s", path)
	}
}

// TestGoldenVariationCorners pins the standard five-corner enumeration of
// c432: the snapshot bitwise on goldenArch, plus cold ≡ warm under
// ColdLRS+PrimalOnly and worker-width invariance, bitwise everywhere.
func TestGoldenVariationCorners(t *testing.T) {
	inst, b := variationInstance(t)
	opt := variation.CornerOptions{Bounds: &b, MaxIterations: 20}
	ref, err := variation.CornerSweep(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenJSON(t, "c432-corners.json", ref)

	for _, w := range []int{2, 4, 8} {
		wopt := opt
		wopt.Workers = w
		res, err := variation.CornerSweep(inst, wopt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("Workers=%d corner sweep diverged from Workers=1", w)
		}
	}
}

// TestGoldenVariationMonteCarlo pins the seed-7 Monte-Carlo run of c432:
// the snapshot bitwise on goldenArch, plus lockstep-width invariance and
// lockstep ≡ solo, bitwise everywhere.
func TestGoldenVariationMonteCarlo(t *testing.T) {
	inst, b := variationInstance(t)
	opt := variation.MCOptions{
		Samples:       8,
		Seed:          7,
		Sigmas:        variation.Sigmas{R: 0.05, C: 0.05, Threshold: 0.08},
		Bounds:        &b,
		MaxIterations: 20,
	}
	ref, err := variation.MonteCarlo(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenJSON(t, "c432-mc-seed7.json", ref)

	for _, w := range []int{4, 8} {
		wopt := opt
		wopt.Workers = w
		res, err := variation.MonteCarlo(inst, wopt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("lockstep Workers=%d diverged from Workers=1", w)
		}
	}
	sopt := opt
	sopt.Solo = true
	solo, err := variation.MonteCarlo(inst, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, solo) {
		t.Error("solo Monte-Carlo diverged from lockstep")
	}
}
