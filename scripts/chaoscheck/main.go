// Command chaoscheck is the CI chaos-oracle client: against a running
// ogwsd -coordinator -data started with store faults armed (-fault-store),
// it drives the golden distributed sweep through a seeded storm — a
// worker whose fault plan serves it a 500 on a lease, severs its result
// stream mid-upload, and crashes it mid-grid; a store whose first two
// journal appends fail — and then proves the robustness contract held:
//
//  1. Bytes: the reassembled grid is bit-identical to a local
//     single-process sweep.Run and, on amd64, to the committed golden
//     fixture. Faults must be invisible in the output.
//  2. Accounting: /stats owns every injected fault exactly once — the
//     store faults as store_errors (mode still rw below the degrade
//     threshold), the crash as a reap + re-queue, the lease 500 as a
//     reconnect. Nothing is double-counted, nothing vanishes. Once the
//     fault budget is spent, a further solve persists durably — the
//     record the smoke script's post-SIGTERM drain checkpoint must hold.
//
// The plans are seeded, so a failing run is replayed exactly by re-running
// with the same specs (printed on startup and echoed by the smoke script
// on failure). scripts/chaos_smoke.sh wires this to freshly built
// binaries and afterwards SIGTERMs the server to verify the graceful
// drain writes its final checkpoint.
//
// Usage:
//
//	chaoscheck -addr 127.0.0.1:8372 -worker-bin /tmp/ogws-worker
//	           [-golden internal/sweep/testdata/golden_grid.json]
//	           [-timeout 120s]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/farm"
	"repro/internal/sweep"
)

// workerFaultSpec is the rigged worker's seeded plan: one synthetic 500
// on a lease call (forcing a re-register), one severed result stream
// (forcing a buffered replay), and a crash on its third streamed sweep
// cell (forcing a reap and re-queue). ogwsd's own -fault-store plan is
// set by chaos_smoke.sh; storeFaults must match its count.
const (
	workerFaultSpec = "seed=7;http:/farm/v1/lease:500,count=1;http:/farm/v1/result:cut,count=1,cut=96;worker:cell:crash,after=2,count=1"
	storeFaults     = 2
)

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

func postJSON(url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, out)
	}
	return json.Unmarshal(out, v)
}

func startWorker(bin, base, name string, extra ...string) (*exec.Cmd, error) {
	args := append([]string{"-coordinator", base, "-name", name}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd, cmd.Start()
}

// stats is the slice of GET /stats the chaos oracle audits.
type stats struct {
	StoreErrors  int64       `json:"store_errors"`
	StoreMode    string      `json:"store_mode"`
	StoreRecords int         `json:"store_records"`
	Farm         *farm.Stats `json:"farm"`
}

func getStats(base string) (*stats, error) {
	st := new(stats)
	if err := getJSON(base+"/stats", st); err != nil {
		return nil, err
	}
	if st.Farm == nil {
		return nil, fmt.Errorf("server at %s is not in -coordinator mode (no farm stats)", base)
	}
	return st, nil
}

func stripTiming(r *sweep.Result) *sweep.Result {
	for i := range r.Cells {
		r.Cells[i].SolveSec = 0
	}
	return r
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaoscheck: ")
	addr := flag.String("addr", "127.0.0.1:8372", "ogwsd -coordinator address (host:port)")
	workerBin := flag.String("worker-bin", "", "path to a built ogws-worker binary (required)")
	golden := flag.String("golden", "", "committed sweep.Result golden fixture to diff against bit-for-bit on amd64 (default: skip)")
	timeout := flag.Duration("timeout", 120*time.Second, "overall deadline")
	flag.Parse()
	if *workerBin == "" {
		log.Fatal("-worker-bin is required")
	}
	base := "http://" + *addr
	deadline := time.Now().Add(*timeout)
	// The seeds ARE the repro recipe: log them before anything can fail.
	log.Printf("worker fault plan: %s", workerFaultSpec)

	for {
		var health map[string]bool
		if err := getJSON(base+"/healthz", &health); err == nil && health["ok"] {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("server at %s not healthy after %v: %v", *addr, *timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Register the golden mesh: its circuit persist is the first injected
	// store write failure.
	var reg struct {
		Key     string `json:"key"`
		Circuit string `json:"circuit"`
	}
	gridSrc := map[string]any{"grid": map[string]any{"width": 12, "layers": 10, "coupled": true}}
	if err := postJSON(base+"/circuits", gridSrc, &reg); err != nil {
		log.Fatalf("register grid: %v", err)
	}
	log.Printf("registered %s (key %.12s…)", reg.Circuit, reg.Key)

	// The rigged worker registers alone so it leases the sweep's spine and
	// rides the whole storm: the lease 500, the severed stream, then the
	// crash on its third cell.
	doomed, err := startWorker(*workerBin, base, "doomed",
		"-fault", workerFaultSpec, "-retry-base", "50ms", "-retry-cap", "500ms")
	if err != nil {
		log.Fatalf("start rigged worker: %v", err)
	}
	for {
		st, err := getStats(base)
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		if st.Farm.LiveWorkers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("rigged worker never registered")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The golden 3×3 bounds grid at 12 iterations — the exact options that
	// generated internal/sweep/testdata/golden_grid.json.
	type sweepOutcome struct {
		res *sweep.Result
		err error
	}
	sweepDone := make(chan sweepOutcome, 1)
	go func() {
		var resp struct {
			Result *sweep.Result `json:"result"`
		}
		err := postJSON(base+"/sweep", map[string]any{
			"key":            reg.Key,
			"delay_scale":    []float64{1, 1.06, 1.12},
			"noise_scale":    []float64{0.8, 1, 1.3},
			"max_iterations": 12,
		}, &resp)
		sweepDone <- sweepOutcome{resp.Result, err}
	}()

	// Exit 3 is the worker's injected-fault exit: the crash rule fired.
	err = doomed.Wait()
	if code := doomed.ProcessState.ExitCode(); code != 3 {
		log.Fatalf("rigged worker exited with code %d (%v), want 3 (injected crash; plan %s)", code, err, workerFaultSpec)
	}
	log.Print("rigged worker survived the 500 and the severed stream, then died of its injected crash (exit 3)")

	survivor, err := startWorker(*workerBin, base, "survivor")
	if err != nil {
		log.Fatalf("start survivor worker: %v", err)
	}
	defer func() {
		survivor.Process.Signal(os.Interrupt) //nolint:errcheck // already exiting
		survivor.Wait()                       //nolint:errcheck
	}()

	var got sweepOutcome
	select {
	case got = <-sweepDone:
	case <-time.After(time.Until(deadline)):
		log.Fatal("distributed sweep did not complete in time")
	}
	if got.err != nil {
		log.Fatalf("sweep: %v", got.err)
	}
	if got.res == nil {
		log.Fatal("sweep returned no result")
	}
	log.Printf("chaos sweep reassembled %d cells (%d×%d)", len(got.res.Cells), got.res.Rows, got.res.Cols)

	// One farm solve on the recovered fleet: its persist is the second
	// injected store write failure.
	var solveResp struct {
		Result json.RawMessage `json:"result"`
	}
	if err := postJSON(base+"/solve", map[string]any{"key": reg.Key, "max_iterations": 12}, &solveResp); err != nil {
		log.Fatalf("solve: %v", err)
	}

	// The fault budget is now spent: a further solve (distinct knobs, so it
	// cannot dedup) must persist durably — proving the failed writes did
	// not poison the store, and seeding the drain's final checkpoint.
	if err := postJSON(base+"/solve", map[string]any{
		"key": reg.Key, "max_iterations": 10, "save_as": "chaos-final",
	}, &solveResp); err != nil {
		log.Fatalf("post-fault solve: %v", err)
	}

	// Oracle 1: bit-identical to the fault-free single-process engine.
	inst, b, err := bench.GridInstance(12, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	want, err := sweep.Run(inst, sweep.Options{
		DelayScale:    []float64{1, 1.06, 1.12},
		NoiseScale:    []float64{0.8, 1, 1.3},
		Bounds:        &b,
		MaxIterations: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got.res)) {
		log.Fatal("chaos sweep diverged from the single-process engine")
	}
	log.Print("grid matches a fault-free local sweep bit-for-bit")

	if *golden != "" && runtime.GOARCH == "amd64" {
		data, err := os.ReadFile(*golden)
		if err != nil {
			log.Fatal(err)
		}
		goldenRes := new(sweep.Result)
		if err := json.Unmarshal(data, goldenRes); err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(goldenRes, stripTiming(got.res)) {
			log.Fatalf("chaos sweep diverged from golden fixture %s", *golden)
		}
		log.Printf("grid matches %s bit-for-bit", *golden)
	}

	// Oracle 2: every injected fault accounted exactly once.
	st, err := getStats(base)
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	if st.StoreErrors != storeFaults {
		log.Fatalf("store fault accounting: store_errors %d, want exactly %d", st.StoreErrors, storeFaults)
	}
	if st.StoreMode != "rw" {
		log.Fatalf("store_mode %q after %d failures (below the degrade threshold), want rw", st.StoreMode, storeFaults)
	}
	f := st.Farm
	if f.WorkersReaped < 1 || f.JobsRequeued < 1 {
		log.Fatalf("injected crash not accounted as reap/re-queue: %+v", f)
	}
	if f.Reconnects < 1 {
		log.Fatalf("injected lease 500 not accounted as a reconnect: %+v", f)
	}
	if f.RunsCompleted != 3 || f.RunsFailed != 0 {
		log.Fatalf("run accounting: %+v, want 3 completed (sweep + 2 solves), 0 failed", f)
	}
	if st.StoreRecords < 2 {
		log.Fatalf("store holds %d records after the post-fault solve, want >=2 (solve + save_as)", st.StoreRecords)
	}
	log.Printf("accounted: %d store errors, %d reap(s), %d re-queue(s), %d reconnect(s), %d runs completed, %d records durable",
		st.StoreErrors, f.WorkersReaped, f.JobsRequeued, f.Reconnects, f.RunsCompleted, st.StoreRecords)
	fmt.Println("chaoscheck: OK")
}
