#!/bin/sh
# CI smoke for cmd/ogwsd: build and start the real binary on a free TCP
# port, then drive it with scripts/servicecheck — register c432 over HTTP,
# solve at the golden fixture's settings (30 iterations), and diff the
# response bit-for-bit against testdata/golden/c432.json. This is the
# same oracle the in-process service tests pin, re-checked end to end
# through a real listener and a real client connection.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
	status=$?
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	if [ "$status" -ne 0 ] && [ -s "$tmp/ogwsd.log" ]; then
		echo "service_smoke: server log:" >&2
		cat "$tmp/ogwsd.log" >&2
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ogwsd" ./cmd/ogwsd

# Port 0 lets the kernel assign a free port — no pick-then-bind race —
# and -addr-file is how we learn which one it chose.
"$tmp/ogwsd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/ogwsd.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	# Fail fast if the server died instead of burning the whole window.
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "service_smoke: ogwsd exited before binding its port" >&2
		exit 1
	fi
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "service_smoke: ogwsd did not write its address in time" >&2
		exit 1
	fi
	sleep 0.1
done

addr="$(head -n1 "$tmp/addr")"
go run ./scripts/servicecheck -addr "$addr" -synthetic c432 -maxiter 30 \
	-golden testdata/golden/c432.json
