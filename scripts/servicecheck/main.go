// Command servicecheck is the CI smoke client for cmd/ogwsd: against a
// running server it registers a synthetic circuit over HTTP, solves it,
// and (optionally) diffs the returned core.Result bit-for-bit against a
// committed golden fixture — the service oracle exercised over a real TCP
// connection instead of httptest (see TESTING.md). scripts/service_smoke.sh
// wires it to a freshly started binary.
//
// Usage:
//
//	servicecheck -addr 127.0.0.1:8372 [-synthetic c432] [-maxiter 30]
//	             [-golden testdata/golden/c432.json] [-timeout 60s]
//
// Exits non-zero on any HTTP failure or golden mismatch. The golden
// comparison is bitwise and assumes the architecture that generated the
// fixtures (amd64; see the root golden suite's FMA note).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"reflect"
	"time"

	"repro/internal/core"
)

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

func postJSON(url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, out)
	}
	return json.Unmarshal(out, v)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("servicecheck: ")
	addr := flag.String("addr", "127.0.0.1:8372", "ogwsd address (host:port)")
	synthetic := flag.String("synthetic", "c432", "synthetic ISCAS85 circuit to register and solve")
	maxIter := flag.Int("maxiter", 30, "cap on OGWS iterations for the solve (0 = solver default 1000)")
	golden := flag.String("golden", "", "path to a committed core.Result golden fixture to diff the solve against bit-for-bit (default: skip the diff)")
	timeout := flag.Duration("timeout", 60*time.Second, "how long to wait for the server to become healthy")
	flag.Parse()
	base := "http://" + *addr

	deadline := time.Now().Add(*timeout)
	for {
		var health map[string]bool
		if err := getJSON(base+"/healthz", &health); err == nil && health["ok"] {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("server at %s not healthy after %v: %v", *addr, *timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var reg struct {
		Key     string `json:"key"`
		Circuit string `json:"circuit"`
		Cached  bool   `json:"cached"`
	}
	if err := postJSON(base+"/circuits", map[string]any{"synthetic": *synthetic}, &reg); err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("registered %s (key %.12s…, cached=%v)", reg.Circuit, reg.Key, reg.Cached)

	var solve struct {
		Result   *core.Result `json:"result"`
		SolveSec float64      `json:"solve_sec"`
	}
	req := map[string]any{"key": reg.Key}
	if *maxIter > 0 {
		req["max_iterations"] = *maxIter
	}
	if err := postJSON(base+"/solve", req, &solve); err != nil {
		log.Fatalf("solve: %v", err)
	}
	log.Printf("solved: %d iterations, converged=%v, area %.4g µm², %.2fs",
		solve.Result.Iterations, solve.Result.Converged, solve.Result.Area, solve.SolveSec)

	var stats struct {
		Solves     int64 `json:"solves"`
		NodeVisits int64 `json:"node_visits"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		log.Fatalf("stats: %v", err)
	}
	if stats.Solves < 1 || stats.NodeVisits <= 0 {
		log.Fatalf("stats did not account for the solve: %+v", stats)
	}

	if *golden != "" {
		data, err := os.ReadFile(*golden)
		if err != nil {
			log.Fatal(err)
		}
		want := new(core.Result)
		if err := json.Unmarshal(data, want); err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(want, solve.Result) {
			log.Fatalf("HTTP solve diverged from golden fixture %s (iterations %d vs %d, area %.17g vs %.17g)",
				*golden, solve.Result.Iterations, want.Iterations, solve.Result.Area, want.Area)
		}
		log.Printf("result matches %s bit-for-bit", *golden)
	}
	fmt.Println("servicecheck: OK")
}
