// Command storecheck is the CI smoke client for the durable result store
// (ogwsd -data): scripts/store_smoke.sh runs it twice against the same
// data directory, with a SIGKILL'd server restart in between.
//
// Phase seed (against the first server): register a synthetic circuit,
// solve it with save_as "base", run the warm-started refinement solve,
// and write the refinement's result bytes to -out. Phase verify (against
// the restarted server): confirm the restart reloaded the circuit and the
// "base" result from the store, re-run the same refinement with no_dedup
// (forcing the solver to actually run from the reloaded warm-start state),
// and diff its bytes against -expect — the restart bit-identity oracle,
// end to end over a real process boundary. The phase then re-issues the
// refinement without no_dedup and requires a dedup hit with the same
// bytes, pinning the store's answer-without-solving path too.
//
// Usage:
//
//	storecheck -addr 127.0.0.1:8372 -phase seed   -out  /tmp/refined.json
//	storecheck -addr 127.0.0.1:8372 -phase verify -expect /tmp/refined.json
//
// Exits non-zero on any HTTP failure, a missed reload, or a byte
// mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

func postJSON(base, path string, body string, v any) error {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", path, resp.StatusCode, out)
	}
	return json.Unmarshal(out, v)
}

func getJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

// solveResp captures the fields the smoke asserts on; Result stays raw
// for byte-level comparison.
type solveResp struct {
	Dedup  bool            `json:"dedup"`
	Result json.RawMessage `json:"result"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("storecheck: ")
	addr := flag.String("addr", "127.0.0.1:8372", "ogwsd address (host:port)")
	synthetic := flag.String("synthetic", "c432", "synthetic ISCAS85 circuit to register and solve")
	maxIter := flag.Int("maxiter", 12, "cap on OGWS iterations per solve")
	phase := flag.String("phase", "", "seed (first server) or verify (restarted server)")
	out := flag.String("out", "", "seed: file to write the refinement result bytes to")
	expect := flag.String("expect", "", "verify: file holding the seed phase's refinement result bytes")
	timeout := flag.Duration("timeout", 60*time.Second, "how long to wait for the server to become healthy")
	flag.Parse()
	base := "http://" + *addr

	deadline := time.Now().Add(*timeout)
	for {
		var ok map[string]bool
		if err := getJSON(base, "/healthz", &ok); err == nil && ok["ok"] {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("server at %s did not become healthy within %s", *addr, *timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var reg struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	if err := postJSON(base, "/circuits", fmt.Sprintf(`{"synthetic":%q}`, *synthetic), &reg); err != nil {
		log.Fatalf("register: %v", err)
	}

	refine := fmt.Sprintf(`{"key":%q,"max_iterations":%d,"warm_from":"base","save_as":"refined"`, reg.Key, *maxIter)
	switch *phase {
	case "seed":
		if *out == "" {
			log.Fatal("-phase seed requires -out")
		}
		var baseResp solveResp
		if err := postJSON(base, "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":%d,"save_as":"base"}`, reg.Key, *maxIter), &baseResp); err != nil {
			log.Fatalf("base solve: %v", err)
		}
		var refined solveResp
		if err := postJSON(base, "/solve", refine+"}", &refined); err != nil {
			log.Fatalf("refinement solve: %v", err)
		}
		if err := os.WriteFile(*out, refined.Result, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("seed phase OK: %s solved and refined, %d result bytes written to %s", *synthetic, len(refined.Result), *out)
	case "verify":
		if *expect == "" {
			log.Fatal("-phase verify requires -expect")
		}
		want, err := os.ReadFile(*expect)
		if err != nil {
			log.Fatal(err)
		}
		// The restart must have reloaded the circuit (the register above
		// was a cache hit on the rebuilt instance) and the saved result.
		if !reg.Cached {
			log.Fatalf("restarted server rebuilt %s from scratch: the store did not reload it", *synthetic)
		}
		var st struct {
			ReloadedCircuits int64 `json:"reloaded_circuits"`
			ReloadedResults  int64 `json:"reloaded_results"`
			DedupHits        int64 `json:"dedup_hits"`
		}
		if err := getJSON(base, "/stats", &st); err != nil {
			log.Fatalf("stats: %v", err)
		}
		if st.ReloadedCircuits < 1 || st.ReloadedResults < 1 {
			log.Fatalf("restart reloaded %d circuits / %d results, want at least 1/1", st.ReloadedCircuits, st.ReloadedResults)
		}
		// The solver really runs (no_dedup) from the reloaded warm-start
		// state; its bytes must equal the pre-restart chain's.
		var rerun solveResp
		if err := postJSON(base, "/solve", refine+`,"no_dedup":true}`, &rerun); err != nil {
			log.Fatalf("post-restart refinement: %v", err)
		}
		if rerun.Dedup {
			log.Fatal("no_dedup solve was answered from the store")
		}
		if !bytes.Equal(rerun.Result, want) {
			log.Fatalf("restart broke bit-identity: %d bytes vs %d expected", len(rerun.Result), len(want))
		}
		// And the dedup path returns the same bytes without solving.
		var hit solveResp
		if err := postJSON(base, "/solve", refine+"}", &hit); err != nil {
			log.Fatalf("dedup refinement: %v", err)
		}
		if !hit.Dedup {
			log.Fatal("identical post-restart solve did not dedup against the store")
		}
		if !bytes.Equal(hit.Result, want) {
			log.Fatal("dedup hit returned different bytes than the original solve")
		}
		log.Printf("verify phase OK: reload + bit-identical warm re-run + dedup hit across a SIGKILL restart")
	default:
		log.Fatalf("unknown -phase %q (want seed or verify)", *phase)
	}
}
