// Command variationcheck is the CI smoke client for the process-variation
// modes: against a running ogwsd -coordinator it registers the synthetic
// c432, runs a seeded POST /montecarlo locally on the server, re-runs it
// through a real ogws-worker process over TCP, and requires both to be
// byte-identical to each other AND to an in-process variation.MonteCarlo
// reference computed here — the determinism contract (same seed →
// byte-identical sample set, distributed ≡ single-process) proven across
// three independent processes. It then runs the corners sweep mode and
// diffs it against an in-process variation.CornerSweep the same way, and
// asserts /stats accounted every run. scripts/variation_smoke.sh wires it
// to freshly built binaries.
//
// Usage:
//
//	variationcheck -addr 127.0.0.1:8372 -worker-bin /tmp/ogws-worker
//	               [-timeout 120s]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"time"

	"repro/internal/bench"
	"repro/internal/farm"
	"repro/internal/variation"
)

func postJSON(url string, body string, v any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, out)
	}
	return json.Unmarshal(out, v)
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

// canon re-marshals v so two JSON payloads compare structurally
// byte-for-byte regardless of their original field spacing.
func canon(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	return data
}

const (
	mcSamples = 4
	mcSeed    = 7
	mcIter    = 8
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("variationcheck: ")
	addr := flag.String("addr", "127.0.0.1:8372", "ogwsd -coordinator address (host:port)")
	workerBin := flag.String("worker-bin", "", "path to a built ogws-worker binary (required)")
	timeout := flag.Duration("timeout", 120*time.Second, "overall deadline for server health, worker registration, and the runs")
	flag.Parse()
	if *workerBin == "" {
		log.Fatal("-worker-bin is required")
	}
	base := "http://" + *addr
	deadline := time.Now().Add(*timeout)

	// Wait for the server.
	for {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("server at %s never became healthy", base)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The in-process reference this whole check pivots on: the same
	// instance the server builds for the synthetic spec, sized through
	// variation.MonteCarlo and variation.CornerSweep directly.
	spec, _ := bench.SpecByName("c432")
	inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sigmas := variation.Sigmas{R: 0.05, C: 0.05, Threshold: 0.08}
	wantMC, err := variation.MonteCarlo(inst, variation.MCOptions{
		Samples: mcSamples, Seed: mcSeed, Sigmas: sigmas, MaxIterations: mcIter,
	})
	if err != nil {
		log.Fatal(err)
	}
	wantCorners, err := variation.CornerSweep(inst, variation.CornerOptions{MaxIterations: mcIter})
	if err != nil {
		log.Fatal(err)
	}

	var reg struct {
		Key string `json:"key"`
	}
	if err := postJSON(base+"/circuits", `{"synthetic":"c432"}`, &reg); err != nil {
		log.Fatal(err)
	}
	log.Printf("registered c432 as %s", reg.Key)

	mcBody := fmt.Sprintf(`{"key":%q,"samples":%d,"seed":%d,`+
		`"sigmas":{"r":0.05,"c":0.05,"threshold":0.08},"max_iterations":%d}`,
		reg.Key, mcSamples, mcSeed, mcIter)
	type mcResp struct {
		Dedup  bool            `json:"dedup"`
		Result json.RawMessage `json:"result"`
	}

	// Run 1: no workers are live yet, so the server solves locally.
	var local mcResp
	if err := postJSON(base+"/montecarlo", mcBody, &local); err != nil {
		log.Fatal(err)
	}
	var localRes variation.MCResult
	if err := json.Unmarshal(local.Result, &localRes); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(canon(localRes), canon(wantMC)) {
		log.Fatal("server-local Monte-Carlo diverged from the in-process reference")
	}
	log.Printf("local Monte-Carlo matches the in-process reference (%d samples, yield %.3f)",
		len(localRes.Samples), localRes.Yield)

	// Admit a real worker over TCP and wait until the coordinator counts
	// it live — from then on /montecarlo dispatches to the farm.
	worker := exec.Command(*workerBin, "-coordinator", base, "-name", "vc-w1")
	worker.Stdout = os.Stderr
	worker.Stderr = os.Stderr
	if err := worker.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		worker.Process.Kill()
		worker.Wait()
	}()
	for {
		var st struct {
			Farm *farm.Stats `json:"farm"`
		}
		if err := getJSON(base+"/stats", &st); err == nil && st.Farm != nil && st.Farm.LiveWorkers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("worker never registered with the coordinator")
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("worker live, re-running distributed")

	// Run 2: same request, forced past dedup, solved on the worker. The
	// wire hop and the shard reassembly must not change a byte.
	var dist mcResp
	if err := postJSON(base+"/montecarlo", `{"no_dedup":true,`+mcBody[1:], &dist); err != nil {
		log.Fatal(err)
	}
	if dist.Dedup {
		log.Fatal("distributed run was answered from dedup, not solved")
	}
	var distRes variation.MCResult
	if err := json.Unmarshal(dist.Result, &distRes); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(canon(distRes), canon(wantMC)) {
		log.Fatal("distributed Monte-Carlo diverged from the in-process reference")
	}
	if !bytes.Equal(canon(distRes), canon(localRes)) {
		log.Fatal("distributed Monte-Carlo diverged from the server-local run")
	}
	log.Printf("distributed Monte-Carlo is byte-identical to local (%d samples)", len(distRes.Samples))

	// Corners mode: local-only enumeration, same reference discipline.
	var cr struct {
		Report json.RawMessage `json:"report"`
	}
	cornersBody := fmt.Sprintf(`{"key":%q,"corners":true,"max_iterations":%d}`, reg.Key, mcIter)
	if err := postJSON(base+"/sweep", cornersBody, &cr); err != nil {
		log.Fatal(err)
	}
	var crRep variation.CornerReport
	if err := json.Unmarshal(cr.Report, &crRep); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(canon(crRep), canon(wantCorners)) {
		log.Fatal("corners sweep diverged from the in-process reference")
	}
	log.Printf("corners sweep matches the in-process reference (%d corners)", len(crRep.Cells))

	// Every run must be accounted.
	var st struct {
		MonteCarlos  int64 `json:"montecarlos"`
		MCSamples    int64 `json:"montecarlo_samples"`
		CornerSweeps int64 `json:"corner_sweeps"`
		CornerCells  int64 `json:"corner_cells"`
	}
	if err := getJSON(base+"/stats", &st); err != nil {
		log.Fatal(err)
	}
	if st.MonteCarlos != 2 || st.MCSamples != 2*mcSamples {
		log.Fatalf("stats counted %d Monte-Carlo runs / %d samples, want 2 / %d",
			st.MonteCarlos, st.MCSamples, 2*mcSamples)
	}
	if st.CornerSweeps != 1 || st.CornerCells != int64(len(crRep.Cells)) {
		log.Fatalf("stats counted %d corner sweeps / %d cells, want 1 / %d",
			st.CornerSweeps, st.CornerCells, len(crRep.Cells))
	}
	log.Printf("PASS: variation modes are byte-identical across local, distributed, and in-process runs")
}
