#!/bin/sh
# CI smoke for the distributed sizing farm: build the real ogwsd and
# ogws-worker binaries, start ogwsd in -coordinator mode on a free TCP
# port, then drive it with scripts/farmcheck — which registers the golden
# 12×10 grid mesh, runs the golden 3×3 bounds-grid sweep across two real
# worker processes with the first rigged to die mid-grid
# (-fail-after-cells 2), and diffs the reassembled grid bit-for-bit
# against a local single-process sweep and (on amd64) against
# internal/sweep/testdata/golden_grid.json. The coordinator must reap the
# dead worker and re-queue its job for the check to pass, so the fault
# path is exercised on every run, not just tolerated.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
	status=$?
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	if [ "$status" -ne 0 ] && [ -s "$tmp/ogwsd.log" ]; then
		echo "farm_smoke: coordinator log:" >&2
		cat "$tmp/ogwsd.log" >&2
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ogwsd" ./cmd/ogwsd
go build -o "$tmp/ogws-worker" ./cmd/ogws-worker

# Port 0 lets the kernel assign a free port — no pick-then-bind race —
# and -addr-file is how we learn which one it chose. The short heartbeat
# keeps the reap-and-requeue cycle fast enough for CI.
"$tmp/ogwsd" -coordinator -farm-heartbeat 250ms \
	-addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/ogwsd.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "farm_smoke: ogwsd exited before binding its port" >&2
		exit 1
	fi
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "farm_smoke: ogwsd did not write its address in time" >&2
		exit 1
	fi
	sleep 0.1
done

addr="$(head -n1 "$tmp/addr")"
go run ./scripts/farmcheck -addr "$addr" -worker-bin "$tmp/ogws-worker" \
	-golden internal/sweep/testdata/golden_grid.json
