// Command farmcheck is the CI smoke client for the distributed sizing
// farm: against a running ogwsd -coordinator it registers the golden
// 12×10 grid mesh, launches a real ogws-worker process rigged to die two
// cells into its first sweep batch (-fail-after-cells 2), dispatches the
// golden 3×3 bounds-grid sweep so the doomed worker leases the spine and
// is killed mid-grid, then admits a healthy worker and verifies the
// reassembled grid is bit-identical to a local single-process
// sweep.Run — and, on amd64, to the committed golden fixture. It also
// asserts the coordinator actually reaped the dead worker and re-queued
// its job, so the fault path is provably exercised and not just
// survivable. scripts/farm_smoke.sh wires it to freshly built binaries.
//
// Usage:
//
//	farmcheck -addr 127.0.0.1:8372 -worker-bin /tmp/ogws-worker
//	          [-golden internal/sweep/testdata/golden_grid.json]
//	          [-timeout 120s]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/farm"
	"repro/internal/sweep"
)

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, v)
}

func postJSON(url string, body, v any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, out)
	}
	return json.Unmarshal(out, v)
}

// startWorker launches one real ogws-worker process against the
// coordinator, with its logs forwarded to ours.
func startWorker(bin, base, name string, extra ...string) (*exec.Cmd, error) {
	args := append([]string{"-coordinator", base, "-name", name}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd, cmd.Start()
}

// farmStats polls the farm section of GET /stats.
func farmStats(base string) (*farm.Stats, error) {
	var st struct {
		Farm *farm.Stats `json:"farm"`
	}
	if err := getJSON(base+"/stats", &st); err != nil {
		return nil, err
	}
	if st.Farm == nil {
		return nil, fmt.Errorf("server at %s is not in -coordinator mode (no farm stats)", base)
	}
	return st.Farm, nil
}

func stripTiming(r *sweep.Result) *sweep.Result {
	for i := range r.Cells {
		r.Cells[i].SolveSec = 0
	}
	return r
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("farmcheck: ")
	addr := flag.String("addr", "127.0.0.1:8372", "ogwsd -coordinator address (host:port)")
	workerBin := flag.String("worker-bin", "", "path to a built ogws-worker binary (required)")
	golden := flag.String("golden", "", "committed sweep.Result golden fixture to diff against bit-for-bit on amd64 (default: skip)")
	timeout := flag.Duration("timeout", 120*time.Second, "overall deadline for server health, worker registration, and the sweep")
	flag.Parse()
	if *workerBin == "" {
		log.Fatal("-worker-bin is required")
	}
	base := "http://" + *addr
	deadline := time.Now().Add(*timeout)

	for {
		var health map[string]bool
		if err := getJSON(base+"/healthz", &health); err == nil && health["ok"] {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("server at %s not healthy after %v: %v", *addr, *timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The golden sweep suite's mesh: 12 wires × 10 segments, coupled.
	var reg struct {
		Key     string `json:"key"`
		Circuit string `json:"circuit"`
	}
	gridSrc := map[string]any{"grid": map[string]any{"width": 12, "layers": 10, "coupled": true}}
	if err := postJSON(base+"/circuits", gridSrc, &reg); err != nil {
		log.Fatalf("register grid: %v", err)
	}
	log.Printf("registered %s (key %.12s…)", reg.Circuit, reg.Key)

	// The doomed worker registers alone, so when the sweep arrives it is
	// guaranteed to lease the spine batch — and die two cells into it,
	// mid-job, with its result stream open and no done marker.
	doomed, err := startWorker(*workerBin, base, "doomed", "-fail-after-cells", "2")
	if err != nil {
		log.Fatalf("start doomed worker: %v", err)
	}
	for {
		st, err := farmStats(base)
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		if st.LiveWorkers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("doomed worker never registered")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The golden grid: 3×3 bounds grid at 12 iterations over the
	// registered mesh's own calibration bounds — exactly the options that
	// generated internal/sweep/testdata/golden_grid.json.
	type sweepOutcome struct {
		res *sweep.Result
		err error
	}
	sweepDone := make(chan sweepOutcome, 1)
	go func() {
		var resp struct {
			Result *sweep.Result `json:"result"`
		}
		err := postJSON(base+"/sweep", map[string]any{
			"key":            reg.Key,
			"delay_scale":    []float64{1, 1.06, 1.12},
			"noise_scale":    []float64{0.8, 1, 1.3},
			"max_iterations": 12,
		}, &resp)
		sweepDone <- sweepOutcome{resp.Result, err}
	}()

	// The injected fault must fire before the survivor is admitted, so the
	// kill always lands mid-grid with work outstanding. Exit code 3 is the
	// worker's fault-injection exit — anything else means the job flow
	// never reached the rigged cell.
	err = doomed.Wait()
	if code := doomed.ProcessState.ExitCode(); code != 3 {
		log.Fatalf("doomed worker exited with code %d (%v), want 3 (injected fault)", code, err)
	}
	log.Print("doomed worker died mid-grid as rigged (exit 3)")

	survivor, err := startWorker(*workerBin, base, "survivor")
	if err != nil {
		log.Fatalf("start survivor worker: %v", err)
	}
	defer func() {
		survivor.Process.Signal(os.Interrupt) //nolint:errcheck // already exiting
		survivor.Wait()                       //nolint:errcheck
	}()

	var got sweepOutcome
	select {
	case got = <-sweepDone:
	case <-time.After(time.Until(deadline)):
		log.Fatal("distributed sweep did not complete in time")
	}
	if got.err != nil {
		log.Fatalf("sweep: %v", got.err)
	}
	if got.res == nil {
		log.Fatal("sweep returned no result")
	}
	log.Printf("distributed sweep reassembled %d cells (%d×%d)", len(got.res.Cells), got.res.Rows, got.res.Cols)

	// Oracle 1, everywhere: bit-identical to the single-process engine on
	// a fresh local replica of the same mesh.
	inst, b, err := bench.GridInstance(12, 10, true)
	if err != nil {
		log.Fatal(err)
	}
	want, err := sweep.Run(inst, sweep.Options{
		DelayScale:    []float64{1, 1.06, 1.12},
		NoiseScale:    []float64{0.8, 1, 1.3},
		Bounds:        &b,
		MaxIterations: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got.res)) {
		log.Fatal("distributed sweep diverged from the single-process engine")
	}
	log.Print("grid matches a local single-process sweep bit-for-bit")

	// Oracle 2, on the fixture's architecture: the committed golden grid.
	if *golden != "" && runtime.GOARCH == "amd64" {
		data, err := os.ReadFile(*golden)
		if err != nil {
			log.Fatal(err)
		}
		goldenRes := new(sweep.Result)
		if err := json.Unmarshal(data, goldenRes); err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(goldenRes, stripTiming(got.res)) {
			log.Fatalf("distributed sweep diverged from golden fixture %s", *golden)
		}
		log.Printf("grid matches %s bit-for-bit", *golden)
	}

	// The fault path must have been exercised for real: a reap, a
	// re-queue, and a completed run despite them.
	st, err := farmStats(base)
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	if st.WorkersReaped < 1 || st.JobsRequeued < 1 {
		log.Fatalf("worker death did not exercise reap/re-queue: %+v", st)
	}
	if st.RunsCompleted < 1 || st.RunsFailed != 0 {
		log.Fatalf("run counters off: %+v", st)
	}
	log.Printf("coordinator reaped %d worker(s), re-queued %d job(s), completed %d run(s)",
		st.WorkersReaped, st.JobsRequeued, st.RunsCompleted)
	fmt.Println("farmcheck: OK")
}
