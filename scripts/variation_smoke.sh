#!/bin/sh
# CI smoke for the process-variation modes: build the real ogwsd and
# ogws-worker binaries, start ogwsd in -coordinator mode on a free TCP
# port, then drive it with scripts/variationcheck — which registers the
# synthetic c432, runs the seed-7 Monte-Carlo both locally on the server
# and through a real worker process, and requires both byte-identical to
# an in-process variation.MonteCarlo reference; the corners sweep mode is
# checked the same way. This is the determinism contract (same seed →
# byte-identical, distributed ≡ single-process) exercised over real TCP.
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
	status=$?
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	if [ "$status" -ne 0 ] && [ -s "$tmp/ogwsd.log" ]; then
		echo "variation_smoke: coordinator log:" >&2
		cat "$tmp/ogwsd.log" >&2
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ogwsd" ./cmd/ogwsd
go build -o "$tmp/ogws-worker" ./cmd/ogws-worker

# Port 0 lets the kernel assign a free port — no pick-then-bind race —
# and -addr-file is how we learn which one it chose.
"$tmp/ogwsd" -coordinator -farm-heartbeat 250ms \
	-addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/ogwsd.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "variation_smoke: ogwsd exited before binding its port" >&2
		exit 1
	fi
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "variation_smoke: ogwsd did not write its address in time" >&2
		exit 1
	fi
	sleep 0.1
done

addr="$(head -n1 "$tmp/addr")"
go run ./scripts/variationcheck -addr "$addr" -worker-bin "$tmp/ogws-worker"
