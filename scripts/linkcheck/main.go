// Command linkcheck verifies that every relative link in the repository's
// markdown files points at a file or directory that exists. External
// (http/https/mailto) links and pure in-page anchors are skipped — the
// check needs no network and stays deterministic. CI runs it in the lint
// job (`make linkcheck`); it exits non-zero listing every broken link.
package main

import (
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// inlineLink matches [text](target ...) including optional titles;
// refDef matches reference-style definitions like `[label]: target`.
// Footnote labels ([^1]:) and definition lines whose first word does not
// look like a path or URL (no '/', '.', or scheme — e.g. `[RFC]: See
// the paper`) are prose, not links, and must not fail the check.
var (
	inlineLink = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)
	refDef     = regexp.MustCompile(`(?m)^\[[^^\]][^\]]*\]:\s+(\S+)`)
)

// pathlike reports whether a reference-definition target plausibly names
// a file, directory, or URL rather than starting a prose sentence.
func pathlike(target string) bool {
	return strings.ContainsAny(target, "/.#") || skippable(target)
}

func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// stripFences removes fenced code blocks (``` … ```) so example snippets
// quoting illustrative links or NDJSON output never fail the check.
func stripFences(text string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

func checkFile(path string) (broken []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := stripFences(string(data))
	targets := []string{}
	for _, m := range inlineLink.FindAllStringSubmatch(text, -1) {
		targets = append(targets, m[1])
	}
	for _, m := range refDef.FindAllStringSubmatch(text, -1) {
		if pathlike(m[1]) {
			targets = append(targets, m[1])
		}
	}
	for _, target := range targets {
		if skippable(target) {
			continue
		}
		target = strings.SplitN(target, "#", 2)[0]
		if target == "" {
			continue
		}
		if dec, err := url.PathUnescape(target); err == nil {
			target = dec
		}
		if _, err := os.Stat(filepath.Join(filepath.Dir(path), target)); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q", path, target))
		}
	}
	return broken, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		b, err := checkFile(path)
		broken = append(broken, b...)
		return err
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, "linkcheck:", b)
		}
		os.Exit(1)
	}
	fmt.Println("linkcheck: all markdown links resolve")
}
