#!/bin/sh
# CI smoke for the durable result store (ogwsd -data): start the real
# binary with a data directory, seed it over HTTP (solve + save_as +
# warm-started refinement), SIGKILL the process mid-life — no shutdown
# hook, exactly the crash the journal is fsync'd for — restart it on the
# same directory, and require (a) the circuit and saved result to come
# back from the store, (b) a forced re-run of the refinement to be
# bit-identical to the pre-crash chain, and (c) the dedup path to answer
# the same solve from the store. scripts/storecheck drives both phases;
# see TESTING.md, "The restart oracle".
set -eu

tmp="$(mktemp -d)"
pid=""
cleanup() {
	status=$?
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	if [ "$status" -ne 0 ] && [ -s "$tmp/ogwsd.log" ]; then
		echo "store_smoke: server log:" >&2
		cat "$tmp/ogwsd.log" >&2
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ogwsd" ./cmd/ogwsd

start_server() {
	rm -f "$tmp/addr"
	"$tmp/ogwsd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -data "$tmp/data" >>"$tmp/ogwsd.log" 2>&1 &
	pid=$!
	i=0
	while [ ! -s "$tmp/addr" ]; do
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "store_smoke: ogwsd exited before binding its port" >&2
			exit 1
		fi
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "store_smoke: ogwsd did not write its address in time" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr="$(head -n1 "$tmp/addr")"
}

start_server
go run ./scripts/storecheck -addr "$addr" -phase seed -out "$tmp/refined.json"

# SIGKILL, not SIGTERM: the store's crash-safety claim is that the fsync'd
# journal alone reconstructs the state, with no orderly-shutdown help.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start_server
go run ./scripts/storecheck -addr "$addr" -phase verify -expect "$tmp/refined.json"
