#!/bin/sh
# CI chaos smoke: the fault-injection storm run against REAL processes.
# Builds ogwsd and ogws-worker, starts ogwsd in -coordinator -data mode
# with its first two store writes rigged to fail (-fault-store), then
# drives it with scripts/chaoscheck — which runs the golden 12×10 grid
# sweep through a worker whose seeded plan serves it a lease 500, severs
# its result stream mid-upload, and crashes it mid-grid, and asserts the
# output is bit-identical to a fault-free run while /stats accounts every
# injected fault exactly once. Afterwards the server gets a SIGTERM and
# must drain gracefully: exit 0 and leave an empty journal behind its
# final checkpoint. Both fault plans are seeded and printed below, so a
# failing run is replayed exactly by re-running with the same specs.
set -eu

store_fault='seed=11;fs:write:err,count=2'

tmp="$(mktemp -d)"
pid=""
cleanup() {
	status=$?
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	if [ "$status" -ne 0 ]; then
		echo "chaos_smoke: FAILED; replay with -fault-store '$store_fault' (worker plan in chaoscheck log above)" >&2
		if [ -s "$tmp/ogwsd.log" ]; then
			echo "chaos_smoke: coordinator log:" >&2
			cat "$tmp/ogwsd.log" >&2
		fi
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/ogwsd" ./cmd/ogwsd
go build -o "$tmp/ogws-worker" ./cmd/ogws-worker

echo "chaos_smoke: store fault plan: $store_fault" >&2
"$tmp/ogwsd" -coordinator -farm-heartbeat 250ms \
	-data "$tmp/data" -fault-store "$store_fault" \
	-addr 127.0.0.1:0 -addr-file "$tmp/addr" >"$tmp/ogwsd.log" 2>&1 &
pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "chaos_smoke: ogwsd exited before binding its port" >&2
		exit 1
	fi
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "chaos_smoke: ogwsd did not write its address in time" >&2
		exit 1
	fi
	sleep 0.1
done

addr="$(head -n1 "$tmp/addr")"
go run ./scripts/chaoscheck -addr "$addr" -worker-bin "$tmp/ogws-worker" \
	-golden internal/sweep/testdata/golden_grid.json

# Graceful drain: SIGTERM must come back exit 0 with the journal folded
# into the final checkpoint (satellite of the same robustness contract).
kill -TERM "$pid"
drain_status=0
wait "$pid" || drain_status=$?
pid=""
if [ "$drain_status" -ne 0 ]; then
	echo "chaos_smoke: ogwsd exited $drain_status on SIGTERM, want a clean drain" >&2
	exit 1
fi
if [ -s "$tmp/data/journal.ndjson" ]; then
	echo "chaos_smoke: journal not empty after the drain's final checkpoint" >&2
	exit 1
fi
if [ ! -s "$tmp/data/checkpoint.ndjson" ]; then
	echo "chaos_smoke: no checkpoint written by the graceful drain" >&2
	exit 1
fi
echo "chaos_smoke: graceful drain checkpointed the store"
echo "chaos_smoke: OK"
