// Package repro is a Go reproduction of "Noise-Constrained Performance
// Optimization by Simultaneous Gate and Wire Sizing Based on Lagrangian
// Relaxation" (Jiang, Jou, Chang — DAC 1999).
//
// The library implements the paper's full two-stage flow:
//
//  1. Wire ordering for switching similarity (WOSS): logic-simulate the
//     netlist, measure pairwise switching similarity, and assign wires with
//     similar behaviour to adjacent routing tracks so their effective
//     (Miller-weighted) coupling is small.
//  2. Simultaneous gate and wire sizing by Lagrangian relaxation (OGWS):
//     minimize total area subject to arrival-time, total-crosstalk, and
//     total-power constraints, with the greedy closed-form LRS subproblem
//     solver of the paper's Theorem 5.
//
// The top-level API wraps the internal packages for the common paths —
// synthetic ISCAS85-class benchmarks and parsed .bench netlists; power
// users can reach the internals (circuit graphs, RC evaluation, multiplier
// state) under internal/ when vendoring the module.
//
// # Parallel architecture
//
// The Lagrangian decomposition that makes OGWS converge also makes it
// parallel: once the multipliers are fixed, every component's Theorem-5
// resize, every merged node multiplier, and every subgradient coordinate
// is independent. The solver exploits this at two levels:
//
//   - Within one solve, the per-node loops (the LRS resize sweep, the
//     evaluator's independent Recompute passes, multiplier node sums,
//     subgradient steps, and gradient norms) are sharded across a worker
//     pool sized by Options.Workers (0 = all cores, 1 = serial), and the
//     evaluator's topological passes (stage loads, arrival times, upstream
//     resistances) run levelized — depth bucket by depth bucket — over the
//     same pool, so no serial Amdahl kernel remains in the solve. All
//     reductions are deterministic — maxima are exact under any grouping
//     and sums fold per-node scratch in index order — so results are
//     bit-identical for every Workers setting.
//   - Within one solve the evaluator is also incremental: late LRS sweeps
//     change only a shrinking fringe of sizes, so the engine re-evaluates
//     just the forward/backward cones of the nodes that moved and skips
//     resize updates for components at a bitwise fixed point until a
//     neighbour's change reactivates them (core.Options.Incremental,
//     default on). Skipping happens only where recomputation could not
//     change a single bit, so results remain bit-identical to the full
//     passes at every Workers width.
//   - Across solves, Instance.OptimizeBatch (and the internal
//     bench.RunTable1Parallel / core.SolveBatch drivers) run many circuits
//     or specs side by side, one solver per core, for Table-1-style
//     sweeps. The two levels compose; by default the batch level owns the
//     cores since independent solves scale better than one sharded solve.
package repro

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fanout"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Metrics reports the four quality measures of Table 1 plus the exact
// (untruncated) coupling.
type Metrics struct {
	AreaUM2    float64 // Σαᵢxᵢ
	DelayPs    float64 // critical-path arrival time
	PowerMW    float64 // V²f·Σcᵢ
	NoisePF    float64 // Σwᵢⱼĉᵢⱼ(xᵢ+xⱼ), the paper's noise measure
	NoiseExact float64 // Σwᵢⱼc̃ᵢⱼ(1−x̄)⁻¹ in fF
}

// Bounds are the optimization constraints (see bench.DeriveBounds for the
// self-calibrated defaults used in the experiments).
type Bounds = bench.Bounds

// Options re-exports the solver configuration.
type Options = core.Options

// Report is the outcome of Optimize.
type Report struct {
	Initial    Metrics
	Final      Metrics
	Iterations int
	Converged  bool
	Gap        float64
	MemoryKB   float64
	// X is the final size vector indexed by internal circuit node.
	X []float64
}

// Instance is a circuit prepared for the two-stage flow.
type Instance struct {
	inner *bench.Instance
}

// Synthetic builds one of the ISCAS85-class benchmark instances by name
// (c432, c499, c880, c1355, c1908, c2670, c3540, c5315, c6288, c7552).
func Synthetic(name string) (*Instance, error) {
	spec, ok := bench.SpecByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown benchmark %q", name)
	}
	inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{inst}, nil
}

// FromBench parses an ISCAS85 .bench netlist and assembles it with the
// calibrated default geometry (see bench.CalibratedTech).
func FromBench(name string, r io.Reader, seed int64) (*Instance, error) {
	nl, err := netlist.Parse(name, r)
	if err != nil {
		return nil, err
	}
	inst, err := bench.AssembleNetlist(nl, seed, bench.PipelineOptions{})
	if err != nil {
		return nil, err
	}
	return &Instance{inst}, nil
}

// Tech returns the technology parameters of the instance.
func (in *Instance) Tech() tech.Params { return in.inner.Tech }

// Name returns the circuit name.
func (in *Instance) Name() string { return in.inner.Spec.Name }

// Gates and Wires report the component counts (the paper's #G and #W).
func (in *Instance) Gates() int { return in.inner.Spec.Gates }

// Wires reports the wire count.
func (in *Instance) Wires() int { return in.inner.Spec.Wires }

func (in *Instance) metrics(m baseline.Metrics) Metrics {
	return Metrics{
		AreaUM2:    m.Area,
		DelayPs:    m.DelayPs,
		PowerMW:    in.inner.Tech.Power(m.PowerCapFF),
		NoisePF:    m.NoiseLinFF / 1000,
		NoiseExact: m.NoiseExact,
	}
}

// Initial returns the metrics of the unoptimized (uniform 1 µm) circuit —
// the Table-1 "Init" columns.
func (in *Instance) Initial() Metrics { return in.metrics(in.inner.Init) }

// DefaultBounds returns the self-calibrated experiment bounds: delay held
// at the initial value, noise and power bounded 25% above their all-minimum
// floors.
func (in *Instance) DefaultBounds() Bounds { return bench.DeriveBounds(in.inner) }

// Optimize runs Algorithm OGWS under the given bounds and returns the
// report. The instance's sizes hold the solution afterwards. The solver
// uses every core; see OptimizeWith to pick the parallel width.
func (in *Instance) Optimize(b Bounds) (*Report, error) {
	return in.OptimizeWith(b, 0)
}

// OptimizeWith is Optimize with an explicit parallel width: workers is the
// number of goroutines the solver shards its per-net subproblems across
// (0 = all cores, 1 = serial). Results are bit-identical for every
// setting.
func (in *Instance) OptimizeWith(b Bounds, workers int) (*Report, error) {
	row, err := bench.RunInstance(in.inner, bench.RunOptions{Bounds: &b, Workers: workers})
	if err != nil {
		return nil, err
	}
	final := baseline.Measure(in.inner.Eval)
	return &Report{
		Initial:    in.Initial(),
		Final:      in.metrics(final),
		Iterations: row.Iterations,
		Converged:  row.Converged,
		Gap:        row.Gap,
		MemoryKB:   row.MemKB,
		X:          append([]float64(nil), in.inner.Eval.X...),
	}, nil
}

// OptimizeBatch optimizes every instance concurrently on at most workers
// goroutines (0 = all cores) and returns the reports in instance order;
// if any solves fail, the lowest-index error is returned. bounds may be
// nil (each instance uses its DefaultBounds) or must have one entry per
// instance. Instances must be distinct: each solve mutates its instance's
// sizes. Within the batch every solver runs serially, so the cores stay
// on distinct circuits; each report is bit-identical to a standalone
// OptimizeWith(b, 1) on the same instance.
func OptimizeBatch(insts []*Instance, bounds []Bounds, workers int) ([]*Report, error) {
	if bounds != nil && len(bounds) != len(insts) {
		return nil, fmt.Errorf("repro: OptimizeBatch got %d bounds for %d instances", len(bounds), len(insts))
	}
	reports := make([]*Report, len(insts))
	errs := make([]error, len(insts))
	fanout.Each(len(insts), workers, func(i int) {
		b := Bounds{}
		if bounds != nil {
			b = bounds[i]
		} else {
			b = insts[i].DefaultBounds()
		}
		reports[i], errs[i] = insts[i].OptimizeWith(b, 1)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}
