// Full-flow comparison on a c880-class circuit: the paper's OGWS against
// the two baselines — delay-only Lagrangian sizing (the ICCAD'98 prior work
// the paper extends) and TILOS-style greedy sensitivity sizing — under the
// same delay target.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	spec, _ := bench.SpecByName("c880")

	build := func() *bench.Instance {
		inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return inst
	}
	ref := build()
	bounds := bench.DeriveBounds(ref)
	fmt.Printf("c880-class: %d gates, %d wires; delay target %.4g ps\n\n",
		spec.Gates, spec.Wires, bounds.A0)
	fmt.Printf("%-22s %10s %12s %12s %12s\n", "method", "delay(ps)", "noise(fF)", "power(fF)", "area(µm²)")

	show := func(name string, m baseline.Metrics) {
		fmt.Printf("%-22s %10.4f %12.2f %12.1f %12.0f\n", name, m.DelayPs, m.NoiseLinFF, m.PowerCapFF, m.Area)
	}
	show("initial (uniform 1µm)", ref.Init)

	// TILOS greedy: delay only, no noise/power awareness.
	instT := build()
	tilos, err := baseline.TILOS(instT.Eval, baseline.TILOSOptions{A0: bounds.A0})
	if err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("TILOS greedy (met=%v)", tilos.Met), tilos.Metrics)

	// Delay-only LR (CCW ICCAD'98): optimal for delay/area but blind to
	// noise and power budgets.
	instLR := build()
	lr, err := baseline.DelayOnlyLR(instLR.Eval, bounds.A0)
	if err != nil {
		log.Fatal(err)
	}
	show("LR delay-only (CCW'98)", baseline.Metrics{
		Area: lr.Area, DelayPs: lr.DelayPs, PowerCapFF: lr.PowerCapFF, NoiseLinFF: lr.NoiseLinFF,
	})

	// The paper: simultaneous noise-, power-, and delay-constrained sizing.
	instO := build()
	row, err := bench.RunInstance(instO, bench.RunOptions{Bounds: &bounds})
	if err != nil {
		log.Fatal(err)
	}
	show("OGWS (this paper)", baseline.Metrics{
		Area: row.FinAreaUM2, DelayPs: row.FinDelayPs,
		PowerCapFF: row.FinPowerMW / instO.Tech.Power(1), NoiseLinFF: row.FinNoisePF * 1000,
	})
	fmt.Printf("\nOGWS meets the same delay target with the noise bound ≤ %.2f fF and the\n"+
		"power cap ≤ %.1f fF enforced; the baselines leave both unconstrained.\n",
		bounds.NoiseBound-instO.Coupling.ConstantOffset(), bounds.PowerBound)
	fmt.Printf("iterations %d, converged %v, gap %.2f%%\n", row.Iterations, row.Converged, 100*row.Gap)
}
