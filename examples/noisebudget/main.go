// Noise budget sweep: how does tightening the total crosstalk bound X_B
// trade area and delay? Reproduces the paper's central tension — meeting
// timing wants wide wires, meeting the noise budget wants narrow ones — on
// a c432-class circuit by sweeping the bound from loose to just above the
// minimum-size floor.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	spec, _ := bench.SpecByName("c432")

	fmt.Println("sweep of the noise budget X' (multiple of the minimum-size floor)")
	fmt.Println("global-interconnect regime (8× wire lengths): wire resistance rivals the")
	fmt.Println("gates, so meeting delay needs wide coupled wires — which the shrinking")
	fmt.Println("noise budget fights")
	fmt.Printf("%8s %12s %12s %12s %12s %10s %6s\n",
		"X'/floor", "noise(fF)", "area(µm²)", "delay(ps)", "delayViol", "gap", "iters")
	for _, factor := range []float64{6.0, 4.0, 2.0, 1.5, 1.25, 1.1} {
		inst, err := bench.BuildInstance(spec, bench.PipelineOptions{WireLengthScale: 8})
		if err != nil {
			log.Fatal(err)
		}
		b := bench.DeriveBounds(inst)
		b.PowerBound = 0 // isolate the noise/delay/area trade-off
		b.NoiseBound = factor*inst.Floor.NoiseLinFF + inst.Coupling.ConstantOffset()
		row, err := bench.RunInstance(inst, bench.RunOptions{Bounds: &b})
		if err != nil {
			log.Fatal(err)
		}
		viol := 0.0
		if row.FinDelayPs > b.A0 {
			viol = 100 * (row.FinDelayPs - b.A0) / b.A0
		}
		fmt.Printf("%8.2f %12.3f %12.0f %12.4f %11.2f%% %9.2f%% %6d\n",
			factor, row.FinNoisePF*1000, row.FinAreaUM2, row.FinDelayPs, viol, 100*row.Gap, row.Iterations)
	}
	fmt.Println("\ntighter budgets force narrower coupled wires; the solver shifts the")
	fmt.Println("delay burden onto gates, costing area, until the budget becomes infeasible")
}
