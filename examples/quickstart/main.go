// Quickstart: parse a tiny ISCAS85 netlist (c17), run the paper's two-stage
// flow — switching-similarity wire ordering, then Lagrangian-relaxation
// gate/wire sizing — and print the before/after metrics.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const c17 = `# c17 — the classic 6-NAND ISCAS85 example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func main() {
	log.SetFlags(0)
	inst, err := repro.FromBench("c17", strings.NewReader(c17), 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("c17: %d gates, %d wires (paper accounting: fan-ins + outputs)\n",
		inst.Gates(), inst.Wires())

	bounds := inst.DefaultBounds()
	fmt.Printf("bounds: delay ≤ %.4g ps, crosstalk ≤ %.4g fF, power cap ≤ %.4g fF\n",
		bounds.A0, bounds.NoiseBound, bounds.PowerBound)

	rep, err := inst.Optimize(bounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%8s %14s %14s %9s\n", "metric", "initial", "final", "change")
	row := func(name string, init, fin float64, unit string) {
		fmt.Printf("%8s %11.5g %s %11.5g %s %+8.1f%%\n",
			name, init, unit, fin, unit, 100*(fin-init)/init)
	}
	row("noise", rep.Initial.NoisePF, rep.Final.NoisePF, "pF")
	row("delay", rep.Initial.DelayPs, rep.Final.DelayPs, "ps")
	row("power", rep.Initial.PowerMW, rep.Final.PowerMW, "mW")
	row("area", rep.Initial.AreaUM2, rep.Final.AreaUM2, "µm²")
	fmt.Printf("\nconverged in %d iterations, duality gap %.2f%%\n", rep.Iterations, 100*rep.Gap)
}
