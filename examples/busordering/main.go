// Bus ordering: the paper's Figure-6 scenario scaled to a 16-bit bus.
// Buses carry correlated signals (e.g. sign-extension makes high bits
// switch together), so ordering wires by switching similarity — stage 1 of
// the paper's flow — substantially reduces the effective Miller-weighted
// coupling compared with the natural bit order.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/logicsim"
	"repro/internal/order"
)

func main() {
	log.SetFlags(0)
	const (
		bits     = 16
		patterns = 4096
	)
	// Synthesize a differential bus: eight data signals, each routed with a
	// true and a complemented rail, in the natural interleaved order
	// [d0, d̄0, d1, d̄1, …]. Complementary rails always switch in opposite
	// directions (the worst-case Miller effect, similarity −1), so the
	// natural order is pessimal; grouping rails by switching behaviour —
	// what WOSS does — removes most of the effective coupling.
	rng := rand.New(rand.NewSource(42))
	rows := make([][]bool, bits)
	for b := range rows {
		rows[b] = make([]bool, patterns)
	}
	value := 0
	for t := 0; t < patterns; t++ {
		value += rng.Intn(2001) - 1000
		for s := 0; s < bits/2; s++ {
			bit := (value>>uint(s))&1 == 1
			rows[2*s][t] = bit
			rows[2*s+1][t] = !bit
		}
	}
	waves, err := logicsim.FromBits(rows)
	if err != nil {
		log.Fatal(err)
	}

	nets := make([]int, bits)
	for i := range nets {
		nets[i] = i
	}
	sim := waves.SimilarityMatrix(nets)
	m, err := order.FromSimilarity(sim)
	if err != nil {
		log.Fatal(err)
	}

	natural := order.Cost(m, layoutIdentity(bits))
	woss := order.WOSS(m)
	refined := order.TwoOpt(m, woss)
	random := order.Random(bits, 7)
	exact, err := order.Exact(m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("16-bit bus, %d patterns; SS objective Σ(1−similarity) between track neighbours\n\n", patterns)
	fmt.Printf("%-12s %8s   ordering (bit indices)\n", "policy", "cost")
	show := func(name string, ord []int) {
		fmt.Printf("%-12s %8.3f   %v\n", name, order.Cost(m, ord), ord)
	}
	show("natural", layoutIdentity(bits))
	show("random", random)
	show("WOSS", woss)
	show("WOSS+2opt", refined)
	show("exact", exact)
	fmt.Printf("\nWOSS reduces effective loading by %.1f%% versus the natural bit order\n",
		100*(natural-order.Cost(m, woss))/natural)
}

func layoutIdentity(n int) []int {
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	return ord
}
