// Command benchgen emits a synthetic ISCAS85-class netlist in .bench
// format, reproducing the published gate/wire/interface statistics of the
// chosen circuit (see internal/bench.ISCAS85).
//
// Usage:
//
//	benchgen -circuit c432 [-o c432.bench] [-seed 99]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	circuit := flag.String("circuit", "c432", "ISCAS85 circuit name from the built-in table (-list shows all)")
	out := flag.String("o", "", "output path for the .bench netlist (default: stdout)")
	seed := flag.Int64("seed", 0, "override the generation seed (0 = the spec's own seed; generation is deterministic per seed)")
	list := flag.Bool("list", false, "list available circuits and exit")
	flag.Parse()

	if *list {
		fmt.Println("name    gates  wires  inputs  outputs  depth")
		for _, s := range bench.ISCAS85 {
			fmt.Printf("%-7s %5d  %5d  %6d  %7d  %5d\n", s.Name, s.Gates, s.Wires, s.Inputs, s.Outputs, s.Depth)
		}
		return
	}
	spec, ok := bench.SpecByName(*circuit)
	if !ok {
		log.Fatalf("unknown circuit %q (use -list)", *circuit)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	nl, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := nl.Write(w); err != nil {
		log.Fatal(err)
	}
	st := nl.Stats()
	fmt.Fprintf(os.Stderr, "%s: %d gates, %d wires (%d connections + %d outputs), depth %d\n",
		spec.Name, st.Gates, st.Connections+st.Outputs, st.Connections, st.Outputs, st.Depth)
}
