// Command ogwsd serves the OGWS sizing stack over HTTP: register circuits
// once (netlist upload or built-in synthetic spec), then solve and sweep
// against the cached instance, with warm-start reuse between solves. See
// internal/service for the API and README.md for a walkthrough.
//
// Usage:
//
//	ogwsd [-addr 127.0.0.1:8372] [-cache 8] [-max-solves 0]
//	      [-workers 1] [-addr-file path] [-data dir]
//	      [-coordinator] [-farm-heartbeat 2s] [-farm-lease-ttl 6s]
//	      [-max-queued 0] [-drain-timeout 10s] [-store-probe 15s]
//	      [-fault-store spec] [-mc-samples N] [-mc-seed S]
//
// SIGTERM/SIGINT triggers a graceful drain: new solves are shed with
// 503 + Retry-After, in-flight ones get -drain-timeout to finish, farm
// runs are cancelled, and the store writes a final checkpoint before the
// listener closes. -fault-store arms deterministic store-filesystem
// faults for the chaos smoke test (internal/fault spec syntax).
//
// With -coordinator the server additionally embeds the distributed-sizing
// coordinator (internal/farm): ogws-worker processes register under
// /farm/v1/, and solves/sweeps are dispatched to them whenever at least
// one worker is live — with bit-identical results to local execution.
//
// With -data the server opens a crash-safe durable result store
// (internal/store) in the given directory: registered circuits, save_as
// results, and finished solves survive restarts (warm_from chains
// reload on boot), and a repeated solve is answered from the store
// without re-running. Persistence never changes solved bits.
//
// Quick check once it is running:
//
//	curl -s -X POST localhost:8372/circuits -d '{"synthetic":"c432"}'
//	curl -s -X POST localhost:8372/solve -d '{"key":"<key from above>"}'
//	curl -s localhost:8372/stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogwsd: ")
	addr := flag.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts; default: none)")
	cache := flag.Int("cache", 8, "instance-cache capacity in circuits (LRU eviction beyond it)")
	maxSolves := flag.Int("max-solves", 0, "max concurrent solves/sweeps across all circuits (0 = all cores)")
	workers := flag.Int("workers", 1, "default solver goroutines per solve when a request leaves workers at 0 (1 = serial, negative = all cores; results bit-identical at every width)")
	lockstep := flag.Bool("lockstep", false, "default every sweep to lockstep batching: independent cells advance through one shared evaluator (grids bit-identical either way; see /stats lockstep_sweeps)")
	dataDir := flag.String("data", "", "durable result store directory: persist circuits, saved results, and solves across restarts (default: in-memory only)")
	coordinator := flag.Bool("coordinator", false, "embed the distributed-sizing coordinator: serve the /farm/v1/ job API and dispatch work to registered ogws-worker processes")
	farmHeartbeat := flag.Duration("farm-heartbeat", 2*time.Second, "worker heartbeat cadence in -coordinator mode")
	farmLeaseTTL := flag.Duration("farm-lease-ttl", 0, "silence budget before a worker is reaped and its jobs re-queued (0 = 3x the heartbeat)")
	maxQueued := flag.Int("max-queued", 0, "max solve/sweep requests admitted but unfinished before new ones are shed 503 + Retry-After (0 = 4x -max-solves)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget: how long in-flight solves get to finish before farm runs are cancelled and the final checkpoint is forced")
	storeProbe := flag.Duration("store-probe", 0, "degraded store mode recovery-probe interval (0 = 15s; see /stats store_mode)")
	mcSamples := flag.Int("mc-samples", 0, "default sample count for POST /montecarlo requests that omit samples (0 = requests must specify it)")
	mcSeed := flag.Uint64("mc-seed", 0, "default sampler seed for POST /montecarlo requests that leave seed at 0 (same seed → byte-identical run)")
	faultStore := flag.String("fault-store", "", "chaos testing: deterministic fault plan for the store filesystem, e.g. 'seed=7;fs:write:err,count=3' (see internal/fault)")
	flag.Parse()

	var coord *farm.Coordinator
	if *coordinator {
		coord = farm.New(farm.Options{
			HeartbeatInterval: *farmHeartbeat,
			LeaseTTL:          *farmLeaseTTL,
			Logf:              log.Printf,
		})
	}
	var st *store.Store
	if *dataDir != "" {
		var fs fault.FS
		if *faultStore != "" {
			plan, err := fault.Parse(*faultStore)
			if err != nil {
				log.Fatalf("-fault-store: %v", err)
			}
			fs = fault.NewFS(plan, fault.OS())
			log.Printf("CHAOS: store filesystem faults armed (%s)", plan)
		}
		var err error
		st, err = store.Open(*dataDir, store.Options{FS: fs})
		if err != nil {
			log.Fatalf("open store %s: %v", *dataDir, err)
		}
		defer st.Close()
		log.Printf("durable store at %s (%d records)", *dataDir, st.Len())
	}
	srv := service.New(service.Options{
		CacheSize:           *cache,
		MaxConcurrentSolves: *maxSolves,
		DefaultWorkers:      *workers,
		DefaultLockstep:     *lockstep,
		MaxQueuedSolves:     *maxQueued,
		StoreProbeInterval:  *storeProbe,
		Farm:                coord,
		Store:               st,
		DefaultMCSamples:    *mcSamples,
		DefaultMCSeed:       *mcSeed,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	log.Printf("listening on %s (cache %d instances)", bound, *cache)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	var handler http.Handler = srv
	if coord != nil {
		// The farm job API mounts beside the service routes; farm result
		// streams bypass the service's request-size cap (a long sweep's
		// NDJSON stream has no natural bound).
		mux := http.NewServeMux()
		mux.Handle("/farm/v1/", coord.Handler())
		mux.Handle("/", srv)
		handler = mux
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		coord.Start(ctx)
		log.Printf("coordinator mode: farm job API at /farm/v1/ (heartbeat %s)", *farmHeartbeat)
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining (budget %s)", s, *drainTimeout)
		// Drain first: shed new solves with 503, let in-flight ones finish
		// within the budget, cancel any farm runs a dead fleet would park
		// forever, and write the final store checkpoint. Only then close
		// the listener — clients being shed still deserve their 503s.
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(dctx); err != nil {
			log.Printf("drain: %v", err)
		}
		dcancel()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}
