// Command ogws-worker is a farm worker node: it registers with an ogwsd
// coordinator (started with -coordinator), leases solve and sweep-cell
// jobs over the /farm/v1/ job API, materializes its own bit-identical
// replica of each circuit, and streams results back as NDJSON while
// heartbeating. Kill a worker mid-job and the coordinator re-queues its
// work — the reassembled output is byte-identical regardless (see
// internal/farm).
//
// Usage:
//
//	ogws-worker -coordinator http://127.0.0.1:8372 [-name lab-3]
//	            [-workers 0] [-cache 4] [-fail-after-cells 0]
//	            [-fault spec] [-max-retries 0] [-retry-base 100ms]
//	            [-retry-cap 5s]
//
// -fail-after-cells injects the fault the farm smoke test exercises: the
// worker dies (exit code 3, heartbeats stop) right after streaming its
// Nth sweep cell. -fault arms a general deterministic fault plan
// (internal/fault spec syntax): http: rules fault the coordinator link —
// which the worker rides out with capped, jittered retries — and a
// worker:cell crash rule generalizes -fail-after-cells. A worker that
// loses its coordinator (restart, network partition, reap) re-registers
// with backoff and keeps serving; -max-retries bounds that persistence.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/farm"
	"repro/internal/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogws-worker: ")
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8372 (required)")
	name := flag.String("name", "", "worker label shown in the coordinator's /stats (default: assigned id)")
	workers := flag.Int("workers", 0, "solver goroutines per solve (0 = all cores; results bit-identical at every width)")
	cache := flag.Int("cache", 4, "local instance-cache capacity in circuits")
	failAfterCells := flag.Int("fail-after-cells", 0, "fault injection: die right after streaming the Nth sweep cell (0 = never)")
	faultSpec := flag.String("fault", "", "chaos testing: deterministic fault plan, e.g. 'seed=7;http:/farm/v1/result:cut,count=1;worker:cell:crash,after=2' — http: rules fault the coordinator link, worker:cell crash rules kill the worker mid-job (see internal/fault)")
	maxRetries := flag.Int("max-retries", 0, "give up after N consecutive transient coordinator failures (0 = retry forever with capped backoff)")
	retryBase := flag.Duration("retry-base", 0, "first retry backoff delay (0 = 100ms; doubles per attempt with deterministic jitter)")
	retryCap := flag.Duration("retry-cap", 0, "retry backoff ceiling (0 = 5s)")
	flag.Parse()
	if *coordinator == "" {
		log.Fatal("-coordinator is required")
	}

	var plan *fault.Plan
	client := http.DefaultClient
	if *faultSpec != "" {
		var err error
		plan, err = fault.Parse(*faultSpec)
		if err != nil {
			log.Fatalf("-fault: %v", err)
		}
		// The plan faults both sides: the HTTP link to the coordinator
		// (http: rules) and the worker's own lifecycle (worker: rules).
		client = &http.Client{Transport: fault.NewTransport(plan, nil)}
		log.Printf("CHAOS: fault plan armed (%s)", plan)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := farm.RunWorker(ctx, farm.WorkerOptions{
		Coordinator:    *coordinator,
		Name:           *name,
		SolverWorkers:  *workers,
		CacheSize:      *cache,
		FailAfterCells: *failAfterCells,
		Fault:          plan,
		MaxRetries:     *maxRetries,
		Backoff:        fault.Backoff{Base: *retryBase, Cap: *retryCap},
		Client:         client,
		Logf:           log.Printf,
	})
	switch {
	case errors.Is(err, farm.ErrFaultInjected):
		log.Print(err)
		os.Exit(3)
	case err != nil:
		log.Fatal(err)
	}
}
