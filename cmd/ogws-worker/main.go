// Command ogws-worker is a farm worker node: it registers with an ogwsd
// coordinator (started with -coordinator), leases solve and sweep-cell
// jobs over the /farm/v1/ job API, materializes its own bit-identical
// replica of each circuit, and streams results back as NDJSON while
// heartbeating. Kill a worker mid-job and the coordinator re-queues its
// work — the reassembled output is byte-identical regardless (see
// internal/farm).
//
// Usage:
//
//	ogws-worker -coordinator http://127.0.0.1:8372 [-name lab-3]
//	            [-workers 0] [-cache 4] [-fail-after-cells 0]
//
// -fail-after-cells injects the fault the farm smoke test exercises: the
// worker dies (exit code 3, heartbeats stop) right after streaming its
// Nth sweep cell.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/farm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogws-worker: ")
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8372 (required)")
	name := flag.String("name", "", "worker label shown in the coordinator's /stats (default: assigned id)")
	workers := flag.Int("workers", 0, "solver goroutines per solve (0 = all cores; results bit-identical at every width)")
	cache := flag.Int("cache", 4, "local instance-cache capacity in circuits")
	failAfterCells := flag.Int("fail-after-cells", 0, "fault injection: die right after streaming the Nth sweep cell (0 = never)")
	flag.Parse()
	if *coordinator == "" {
		log.Fatal("-coordinator is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := farm.RunWorker(ctx, farm.WorkerOptions{
		Coordinator:    *coordinator,
		Name:           *name,
		SolverWorkers:  *workers,
		CacheSize:      *cache,
		FailAfterCells: *failAfterCells,
		Logf:           log.Printf,
	})
	switch {
	case errors.Is(err, farm.ErrFaultInjected):
		log.Print(err)
		os.Exit(3)
	case err != nil:
		log.Fatal(err)
	}
}
