// Command pareto sweeps a bounds grid over one or more circuits — one
// bench.Instance per circuit, warm-started grid cells via internal/sweep —
// and emits the solved grid plus its Pareto frontier over
// (delay, noise, power) as JSON.
//
// Usage:
//
//	pareto [-circuits c432,c880] [-delay 0.95,1,1.05] [-noise 0.6,0.8,1,1.3]
//	       [-maxiter N] [-epsilon 0.01] [-cold] [-full]
//	       [-sweep-workers 0] [-cell-workers 1] [-out grid.json]
//
// The delay axis scales the derived arrival bound A0; the noise axis
// scales the variable part of the crosstalk bound X_B. Cells solve
// warm-started from their grid neighbours by default; -cold solves every
// cell independently from the initial sizes (same results with -s1, more
// work), and -full throws the incremental escape hatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sweep"
)

func parseAxis(name, s string) []float64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	axis := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad %s factor %q: %v", name, p, err)
		}
		axis = append(axis, v)
	}
	return axis
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pareto: ")
	circuits := flag.String("circuits", "c432", "comma-separated ISCAS85 circuit names (benchgen -list shows all ten)")
	delay := flag.String("delay", "1", "comma-separated delay-axis scale factors, one grid row each (unitless multipliers of the derived arrival bound A0 in ps)")
	noise := flag.String("noise", "0.6,0.8,1,1.3", "comma-separated noise-axis scale factors, one grid column each (unitless multipliers of the variable part of the derived crosstalk bound X_B in fF)")
	maxIter := flag.Int("maxiter", 0, "cap on OGWS iterations per cell (0 = solver default, 1000)")
	epsilon := flag.Float64("epsilon", 0, "relative duality-gap precision, unitless (0 = the paper's 1%)")
	cold := flag.Bool("cold", false, "solve every cell independently instead of warm-starting from neighbours")
	s1 := flag.Bool("s1", false, "paper-faithful S1 size reset inside LRS and dual restart per cell (results independent of warm-start seeding)")
	full := flag.Bool("full", false, "full evaluation passes every sweep (incremental escape hatch)")
	lockstep := flag.Bool("lockstep", false, "batch independent cells through one shared evaluator in lockstep (cells bit-identical to solo solves)")
	sweepWorkers := flag.Int("sweep-workers", 0, "grid rows solved concurrently (0 = all cores; results bit-identical at every width)")
	cellWorkers := flag.Int("cell-workers", 1, "solver goroutines per cell (0 = 1: the sweep level owns the cores; results bit-identical at every width)")
	out := flag.String("out", "", "output path for the JSON grid (default: stdout)")
	flag.Parse()

	opt := sweep.Options{
		DelayScale:    parseAxis("delay", *delay),
		NoiseScale:    parseAxis("noise", *noise),
		MaxIterations: *maxIter,
		Epsilon:       *epsilon,
		Workers:       *cellWorkers,
		SweepWorkers:  *sweepWorkers,
		Cold:          *cold,
		ColdLRS:       *s1,
		PrimalOnly:    *s1, // S1 mode exists to make results seed-independent
		FullPasses:    *full,
		Lockstep:      *lockstep,
	}
	var results []*sweep.Result
	for _, name := range strings.Split(*circuits, ",") {
		spec, ok := bench.SpecByName(strings.TrimSpace(name))
		if !ok {
			log.Fatalf("unknown circuit %q", name)
		}
		res, err := sweep.RunSpec(spec, bench.PipelineOptions{}, opt)
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		cells := 0.0
		for i := range res.Cells {
			cells += res.Cells[i].SolveSec
		}
		fmt.Fprintf(os.Stderr, "%s done: %d cells, %d on the frontier, %.2fs solve time\n",
			res.Circuit, len(res.Cells), len(res.Frontier), cells)
		results = append(results, res)
	}

	data, err := json.MarshalIndent(results, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
}
