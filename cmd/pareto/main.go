// Command pareto sweeps a bounds grid over one or more circuits — one
// bench.Instance per circuit, warm-started grid cells via internal/sweep —
// and emits the solved grid plus its Pareto frontier over
// (delay, noise, power) as JSON.
//
// Usage:
//
//	pareto [-circuits c432,c880] [-delay 0.95,1,1.05] [-noise 0.6,0.8,1,1.3]
//	       [-maxiter N] [-epsilon 0.01] [-cold] [-full]
//	       [-sweep-workers 0] [-cell-workers 1] [-out grid.json]
//	       [-corners] [-montecarlo -samples K -seed S]
//
// -corners replaces the bounds grid with the standard five-corner
// process enumeration (one variation.CornerReport per circuit);
// -montecarlo replaces it with a seeded Monte-Carlo yield run (one
// variation.MCResult per circuit, same seed → byte-identical JSON).
//
// The delay axis scales the derived arrival bound A0; the noise axis
// scales the variable part of the crosstalk bound X_B. Cells solve
// warm-started from their grid neighbours by default; -cold solves every
// cell independently from the initial sizes (same results with -s1, more
// work), and -full throws the incremental escape hatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/sweep"
	"repro/internal/variation"
)

func parseAxis(name, s string) []float64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	axis := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad %s factor %q: %v", name, p, err)
		}
		axis = append(axis, v)
	}
	return axis
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pareto: ")
	circuits := flag.String("circuits", "c432", "comma-separated ISCAS85 circuit names (benchgen -list shows all ten)")
	delay := flag.String("delay", "1", "comma-separated delay-axis scale factors, one grid row each (unitless multipliers of the derived arrival bound A0 in ps)")
	noise := flag.String("noise", "0.6,0.8,1,1.3", "comma-separated noise-axis scale factors, one grid column each (unitless multipliers of the variable part of the derived crosstalk bound X_B in fF)")
	maxIter := flag.Int("maxiter", 0, "cap on OGWS iterations per cell (0 = solver default, 1000)")
	epsilon := flag.Float64("epsilon", 0, "relative duality-gap precision, unitless (0 = the paper's 1%)")
	cold := flag.Bool("cold", false, "solve every cell independently instead of warm-starting from neighbours")
	s1 := flag.Bool("s1", false, "paper-faithful S1 size reset inside LRS and dual restart per cell (results independent of warm-start seeding)")
	full := flag.Bool("full", false, "full evaluation passes every sweep (incremental escape hatch)")
	lockstep := flag.Bool("lockstep", false, "batch independent cells through one shared evaluator in lockstep (cells bit-identical to solo solves)")
	sweepWorkers := flag.Int("sweep-workers", 0, "grid rows solved concurrently (0 = all cores; results bit-identical at every width)")
	cellWorkers := flag.Int("cell-workers", 1, "solver goroutines per cell (0 = 1: the sweep level owns the cores; results bit-identical at every width)")
	out := flag.String("out", "", "output path for the JSON grid (default: stdout)")
	corners := flag.Bool("corners", false, "enumerate the standard process corners instead of sweeping the bounds grid")
	montecarlo := flag.Bool("montecarlo", false, "Monte-Carlo yield analysis instead of the bounds grid")
	samples := flag.Int("samples", 32, "Monte-Carlo sample count (with -montecarlo)")
	seed := flag.Uint64("seed", 1, "Monte-Carlo sampler seed; same seed → byte-identical JSON")
	sigmaR := flag.Float64("sigma-r", 0.05, "relative sigma of the wire-resistance perturbation (with -montecarlo)")
	sigmaC := flag.Float64("sigma-c", 0.05, "relative sigma of the capacitance perturbation")
	sigmaVT := flag.Float64("sigma-vt", 0.08, "relative sigma of the threshold (intrinsic-delay) perturbation")
	flag.Parse()
	if *corners && *montecarlo {
		log.Fatal("-corners and -montecarlo are mutually exclusive")
	}

	opt := sweep.Options{
		DelayScale:    parseAxis("delay", *delay),
		NoiseScale:    parseAxis("noise", *noise),
		MaxIterations: *maxIter,
		Epsilon:       *epsilon,
		Workers:       *cellWorkers,
		SweepWorkers:  *sweepWorkers,
		Cold:          *cold,
		ColdLRS:       *s1,
		PrimalOnly:    *s1, // S1 mode exists to make results seed-independent
		FullPasses:    *full,
		Lockstep:      *lockstep,
	}
	var results any
	if *corners || *montecarlo {
		// Variation modes: one report per circuit instead of a grid. The
		// key field names the circuit so the JSON stays self-describing.
		type cornersOut struct {
			Circuit string                  `json:"circuit"`
			Report  *variation.CornerReport `json:"report"`
		}
		type mcOut struct {
			Circuit string              `json:"circuit"`
			Result  *variation.MCResult `json:"result"`
		}
		var reports []any
		for _, name := range strings.Split(*circuits, ",") {
			spec, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown circuit %q", name)
			}
			inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
			if err != nil {
				log.Fatalf("%s: %v", spec.Name, err)
			}
			if *corners {
				rep, err := variation.CornerSweep(inst, variation.CornerOptions{
					MaxIterations: *maxIter, Epsilon: *epsilon, Workers: *cellWorkers,
					Cold: *cold, ColdLRS: *s1, PrimalOnly: *s1, FullPasses: *full,
				})
				if err != nil {
					log.Fatalf("%s: %v", spec.Name, err)
				}
				fmt.Fprintf(os.Stderr, "%s done: %d corners, delay spread %.4f..%.4f ps\n",
					spec.Name, len(rep.Cells), rep.Delay.Min, rep.Delay.Max)
				reports = append(reports, cornersOut{Circuit: spec.Name, Report: rep})
				continue
			}
			res, err := variation.MonteCarlo(inst, variation.MCOptions{
				Samples: *samples, Seed: *seed,
				Sigmas:        variation.Sigmas{R: *sigmaR, C: *sigmaC, Threshold: *sigmaVT},
				MaxIterations: *maxIter, Epsilon: *epsilon, Workers: *cellWorkers,
			})
			if err != nil {
				log.Fatalf("%s: %v", spec.Name, err)
			}
			fmt.Fprintf(os.Stderr, "%s done: %d samples, yield %.3f\n",
				spec.Name, len(res.Samples), res.Yield)
			reports = append(reports, mcOut{Circuit: spec.Name, Result: res})
		}
		results = reports
	} else {
		var grids []*sweep.Result
		for _, name := range strings.Split(*circuits, ",") {
			spec, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown circuit %q", name)
			}
			res, err := sweep.RunSpec(spec, bench.PipelineOptions{}, opt)
			if err != nil {
				log.Fatalf("%s: %v", spec.Name, err)
			}
			cells := 0.0
			for i := range res.Cells {
				cells += res.Cells[i].SolveSec
			}
			fmt.Fprintf(os.Stderr, "%s done: %d cells, %d on the frontier, %.2fs solve time\n",
				res.Circuit, len(res.Cells), len(res.Frontier), cells)
			grids = append(grids, res)
		}
		results = grids
	}

	data, err := json.MarshalIndent(results, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
}
