package main

import (
	"bufio"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkIncrementalSolve/c880/full-8   3   266520994 ns/op   200800 B/op   5886 allocs/op   6265 evalNodesPerSweep
PASS
ok  	repro	1.234s
`
	snap, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "repro" {
		t.Fatalf("header: %+v", snap)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "BenchmarkIncrementalSolve/c880/full-8" || b.Runs != 3 ||
		b.NsPerOp != 266520994 || *b.BytesPerOp != 200800 || *b.AllocsOp != 5886 ||
		b.Metrics["evalNodesPerSweep"] != 6265 {
		t.Fatalf("benchmark: %+v", b)
	}
}

func TestBenchKeyStripsGomaxprocs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSolve/c880/full-8":  "BenchmarkSolve/c880/full",
		"BenchmarkSolve/c880/full-16": "BenchmarkSolve/c880/full",
		"BenchmarkSolve/c880/full":    "BenchmarkSolve/c880/full",
		"BenchmarkSolve/grid32x24-4":  "BenchmarkSolve/grid32x24",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: f64(100)},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: f64(50)},
	}}
	cases := []struct {
		name     string
		cur      *Snapshot
		ok       bool
		contains string
	}{
		{
			"identical",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsOp: f64(100)},
				{Name: "BenchmarkB-8", NsPerOp: 2000, AllocsOp: f64(50)},
			}},
			true, "no regressions",
		},
		{
			"alloc growth within tolerance",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: f64(104)},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: f64(50)},
			}},
			true, "no regressions",
		},
		{
			"alloc regression fails",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: f64(120)},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: f64(50)},
			}},
			false, "FAIL BenchmarkA: allocs/op",
		},
		{
			"ns growth beyond noise only warns",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 5000, AllocsOp: f64(100)},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: f64(50)},
			}},
			true, "warn BenchmarkA: ns/op",
		},
		{
			"missing benchmark fails",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: f64(100)},
			}},
			false, "FAIL BenchmarkB: in baseline but missing",
		},
		{
			"extra current benchmarks are fine",
			&Snapshot{Benchmarks: []Benchmark{
				{Name: "BenchmarkA", NsPerOp: 1000, AllocsOp: f64(100)},
				{Name: "BenchmarkB", NsPerOp: 2000, AllocsOp: f64(50)},
				{Name: "BenchmarkNew", NsPerOp: 10, AllocsOp: f64(1)},
			}},
			true, "no regressions",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			ok := compare(&out, base, tc.cur, 0.05, 0.50)
			if ok != tc.ok {
				t.Errorf("compare ok = %v, want %v\n%s", ok, tc.ok, out.String())
			}
			if !strings.Contains(out.String(), tc.contains) {
				t.Errorf("output missing %q:\n%s", tc.contains, out.String())
			}
		})
	}
}
