// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON snapshot — the committed benchmark trajectory (BENCH_PR3.json
// and successors) that lets future PRs diff ns/op, allocs/op, and custom
// metrics against a recorded baseline.
//
// Usage:
//
//	go test -run '^$' -bench Incremental -benchmem -benchtime 1x . | benchjson -out BENCH_PR3.json
//	benchjson -compare BENCH_PR4.json -against bench-ci.json
//
// The output is deterministic for a given input: benchmarks keep their
// input order, metric maps marshal with sorted keys, and no timestamps are
// embedded (goos/goarch/cpu identify the machine class instead).
//
// -compare is the CI regression guard: it diffs a current snapshot
// (-against, or parsed from stdin when omitted) against a committed
// baseline, matching benchmarks by name with any trailing GOMAXPROCS
// suffix ("-8") stripped. Allocation growth beyond -alloc-tolerance is a
// hard failure (allocs/op is deterministic, so growth is a real
// regression); ns/op growth beyond -ns-noise only warns, because shared
// CI runners are too noisy for wall-clock gates. A baseline benchmark
// missing from the current snapshot also fails — a silently dropped
// benchmark is how trajectories rot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Runs       int64              `json:"runs"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path for the JSON snapshot (default: stdout)")
	compareBase := flag.String("compare", "", "committed baseline snapshot to diff against (regression guard mode)")
	against := flag.String("against", "", "current snapshot JSON for -compare (default: parse `go test -bench` output from stdin)")
	allocTol := flag.Float64("alloc-tolerance", 0.05, "allowed fractional allocs/op growth before -compare fails")
	nsNoise := flag.Float64("ns-noise", 0.50, "fractional ns/op growth beyond which -compare warns (never fails)")
	flag.Parse()

	if *compareBase != "" {
		base, err := readSnapshot(*compareBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var cur *Snapshot
		if *against != "" {
			cur, err = readSnapshot(*against)
		} else {
			cur, err = parse(bufio.NewScanner(os.Stdin))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !compare(os.Stdout, base, cur, *allocTol, *nsNoise) {
			os.Exit(1)
		}
		return
	}

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := new(Snapshot)
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

// gomaxprocsSuffix is the "-8" tail `go test` appends to benchmark names
// when GOMAXPROCS > 1. Stripped before matching so snapshots taken on
// machines of different widths still line up.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func benchKey(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// compare diffs cur against base and reports per-benchmark deltas to w.
// It returns false — the CI-failing outcome — on allocs/op growth beyond
// allocTol or on a baseline benchmark missing from cur. ns/op growth
// beyond nsNoise (and any bytes/op growth) only warns.
func compare(w io.Writer, base, cur *Snapshot, allocTol, nsNoise float64) bool {
	curBy := make(map[string]*Benchmark, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		curBy[benchKey(cur.Benchmarks[i].Name)] = &cur.Benchmarks[i]
	}
	pct := func(old, new float64) string {
		if old == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
	}
	ok := true
	warnings := 0
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		key := benchKey(b.Name)
		c, found := curBy[key]
		if !found {
			fmt.Fprintf(w, "FAIL %s: in baseline but missing from current run\n", key)
			ok = false
			continue
		}
		if b.AllocsOp != nil && c.AllocsOp != nil && *c.AllocsOp > *b.AllocsOp*(1+allocTol) {
			fmt.Fprintf(w, "FAIL %s: allocs/op %v -> %v (%s, tolerance %.0f%%)\n",
				key, *b.AllocsOp, *c.AllocsOp, pct(*b.AllocsOp, *c.AllocsOp), 100*allocTol)
			ok = false
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsNoise) {
			fmt.Fprintf(w, "warn %s: ns/op %.0f -> %.0f (%s, noise threshold %.0f%%; not failing)\n",
				key, b.NsPerOp, c.NsPerOp, pct(b.NsPerOp, c.NsPerOp), 100*nsNoise)
			warnings++
		}
	}
	fmt.Fprintf(w, "compared %d baseline benchmarks against %d current: %s, %d warning(s)\n",
		len(base.Benchmarks), len(cur.Benchmarks),
		map[bool]string{true: "no regressions", false: "REGRESSIONS FOUND"}[ok], warnings)
	return ok
}

// parse consumes `go test -bench` output: header lines (goos/goarch/pkg/
// cpu) and result lines of the form
//
//	BenchmarkName-8   12   345 ns/op   6 B/op   7 allocs/op   8.9 custom/metric
//
// Lines that match neither shape (PASS, ok, warnings) are skipped.
func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Runs: runs}
		for k := 2; k+1 < len(fields); k += 2 {
			val, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[k], line)
			}
			switch unit := fields[k+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, sc.Err()
}
