// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON snapshot — the committed benchmark trajectory (BENCH_PR3.json
// and successors) that lets future PRs diff ns/op, allocs/op, and custom
// metrics against a recorded baseline.
//
// Usage:
//
//	go test -run '^$' -bench Incremental -benchmem -benchtime 1x . | benchjson -out BENCH_PR3.json
//
// The output is deterministic for a given input: benchmarks keep their
// input order, metric maps marshal with sorted keys, and no timestamps are
// embedded (goos/goarch/cpu identify the machine class instead).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Runs       int64              `json:"runs"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path for the JSON snapshot (default: stdout)")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output: header lines (goos/goarch/pkg/
// cpu) and result lines of the form
//
//	BenchmarkName-8   12   345 ns/op   6 B/op   7 allocs/op   8.9 custom/metric
//
// Lines that match neither shape (PASS, ok, warnings) are skipped.
func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Runs: runs}
		for k := 2; k+1 < len(fields); k += 2 {
			val, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[k], line)
			}
			switch unit := fields[k+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, sc.Err()
}
