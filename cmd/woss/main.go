// Command woss demonstrates stage 1 of the paper's flow: logic-simulate a
// netlist, compute pairwise switching similarities for a group of nets, and
// compare the WOSS track ordering against random and (for small groups)
// exact orderings on the SS objective Σ(1 − similarity) between neighbours.
//
// Usage:
//
//	woss -bench circuit.bench [-nets 12] [-patterns 4096] [-seed 3]
//	woss -synthetic c432 [-nets 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/order"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("woss: ")
	benchFile := flag.String("bench", "", "path to an ISCAS85 .bench netlist")
	synthetic := flag.String("synthetic", "", "synthetic ISCAS85 circuit name (e.g. c432)")
	nNets := flag.Int("nets", 12, "number of nets to order as one routing channel")
	patterns := flag.Int("patterns", 4096, "number of logic-simulation input vectors for the switching-similarity analysis")
	seed := flag.Int64("seed", 3, "logic-simulation seed (results deterministic per seed)")
	workers := flag.Int("workers", 0, "similarity-matrix worker goroutines (0 = all cores; matrix identical at every width)")
	flag.Parse()

	var (
		nl  *netlist.Netlist
		err error
	)
	switch {
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		nl, err = netlist.Parse(*benchFile, f)
	case *synthetic != "":
		spec, ok := bench.SpecByName(*synthetic)
		if !ok {
			log.Fatalf("unknown circuit %q", *synthetic)
		}
		nl, err = bench.Generate(spec)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	waves, err := logicsim.Simulate(nl, *patterns, *seed)
	if err != nil {
		log.Fatal(err)
	}
	// Pick the first N non-input nets as the channel.
	var nets []int
	for gi, g := range nl.Gates {
		if g.Type == netlist.Input {
			continue
		}
		nets = append(nets, gi)
		if len(nets) == *nNets {
			break
		}
	}
	if len(nets) < 2 {
		log.Fatal("need at least two nets")
	}
	sim := waves.SimilarityMatrixWorkers(nets, *workers)
	m, err := order.FromSimilarity(sim)
	if err != nil {
		log.Fatal(err)
	}

	woss := order.WOSS(m)
	rnd := order.Random(len(nets), *seed)
	two := order.TwoOpt(m, woss)
	fmt.Printf("channel of %d nets, %d patterns\n", len(nets), *patterns)
	printOrd := func(name string, ord []int) {
		fmt.Printf("%-8s cost %7.3f  order:", name, order.Cost(m, ord))
		for _, p := range ord {
			fmt.Printf(" %s", nl.Gates[nets[p]].Name)
		}
		fmt.Println()
	}
	printOrd("woss", woss)
	printOrd("woss+2opt", two)
	printOrd("random", rnd)
	if len(nets) <= order.MaxExact {
		exact, err := order.Exact(m)
		if err != nil {
			log.Fatal(err)
		}
		printOrd("exact", exact)
	}
}
