// Command table1 regenerates the paper's Table 1: initial versus final
// noise, delay, power, and area for the ten ISCAS85-class circuits, with
// iteration counts, runtime, and memory.
//
// Usage:
//
//	table1 [-circuits c432,c880] [-maxiter N] [-epsilon 0.01] [-short]
//	       [-corners] [-montecarlo -samples K -seed S]
//
// -corners replaces the nominal run with the standard five-corner
// process enumeration (tt/ff/ss/fs/sf), each corner warm-started from
// the nominal solve, and prints one row per corner plus the cross-corner
// delay spread. -montecarlo sizes K seeded perturbed replicas per
// circuit and prints the delay/area distributions and the
// delay-constraint yield (same seed → identical table, byte for byte).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/report"
	"repro/internal/variation"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")
	circuits := flag.String("circuits", "", "comma-separated ISCAS85 circuit names (default: all ten)")
	maxIter := flag.Int("maxiter", 0, "cap on OGWS iterations (0 = solver default, 1000)")
	epsilon := flag.Float64("epsilon", 0, "relative duality-gap precision, unitless (0 = the paper's 1%)")
	short := flag.Bool("short", false, "run only the circuits up to ~5k components")
	parallel := flag.Int("parallel", 1, "circuits solved concurrently (0 = all cores; rows bit-identical at every width)")
	lockstep := flag.Bool("lockstep", false, "route each solve through the lockstep batch path (rows bit-identical to solo solves)")
	corners := flag.Bool("corners", false, "enumerate the standard process corners per circuit instead of the nominal run")
	montecarlo := flag.Bool("montecarlo", false, "Monte-Carlo yield analysis per circuit instead of the nominal run")
	samples := flag.Int("samples", 32, "Monte-Carlo sample count (with -montecarlo)")
	seed := flag.Uint64("seed", 1, "Monte-Carlo sampler seed; same seed → byte-identical sample set")
	sigmaR := flag.Float64("sigma-r", 0.05, "relative sigma of the wire-resistance perturbation (corners/Monte-Carlo)")
	sigmaC := flag.Float64("sigma-c", 0.05, "relative sigma of the capacitance perturbation")
	sigmaVT := flag.Float64("sigma-vt", 0.08, "relative sigma of the threshold (intrinsic-delay) perturbation")
	workers := flag.Int("workers", 0, "solver goroutines per sample/corner in variation modes (0 = all cores; bit-identical at every width)")
	flag.Parse()

	var specs []bench.Spec
	switch {
	case *circuits != "":
		for _, name := range strings.Split(*circuits, ",") {
			s, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown circuit %q", name)
			}
			specs = append(specs, s)
		}
	case *short:
		for _, s := range bench.ISCAS85 {
			if s.Components() <= 5000 {
				specs = append(specs, s)
			}
		}
	default:
		specs = bench.ISCAS85
	}

	if *corners || *montecarlo {
		if *corners && *montecarlo {
			log.Fatal("-corners and -montecarlo are mutually exclusive")
		}
		sg := variation.Sigmas{R: *sigmaR, C: *sigmaC, Threshold: *sigmaVT}
		if err := runVariation(specs, *corners, sg, *samples, *seed, *maxIter, *epsilon, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}

	opt := bench.RunOptions{MaxIterations: *maxIter, Epsilon: *epsilon, Lockstep: *lockstep}
	var rows []*bench.Table1Row
	if *parallel == 1 {
		for _, s := range specs {
			row, err := bench.RunRow(s, opt)
			if err != nil {
				log.Fatalf("%s: %v", s.Name, err)
			}
			fmt.Fprintf(os.Stderr, "%s done: %d iterations, %.2fs, converged=%v\n",
				row.Name, row.Iterations, row.TimeSec, row.Converged)
			rows = append(rows, row)
		}
	} else {
		var err error
		rows, err = bench.RunTable1Parallel(specs, opt, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range rows {
			fmt.Fprintf(os.Stderr, "%s done: %d iterations, %.2fs, converged=%v\n",
				row.Name, row.Iterations, row.TimeSec, row.Converged)
		}
	}
	if err := report.Table1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
}

// runVariation prints the Table-1-style variation report: one corner
// table or one Monte-Carlo yield table per circuit.
func runVariation(specs []bench.Spec, corners bool, sg variation.Sigmas, samples int, seed uint64, maxIter int, epsilon float64, workers int) error {
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	defer tw.Flush()
	for _, spec := range specs {
		inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		if corners {
			rep, err := variation.CornerSweep(inst, variation.CornerOptions{
				MaxIterations: maxIter, Epsilon: epsilon, Workers: workers,
			})
			if err != nil {
				return fmt.Errorf("%s: %w", spec.Name, err)
			}
			fmt.Fprintf(tw, "%s\tcorner\tdelay(ps)\tnoise(ff)\tarea\titer\tconverged\n", spec.Name)
			fmt.Fprintf(tw, "\tnominal\t%.4f\t%.4f\t%.4f\t%d\t%v\n",
				rep.Nominal.DelayPs, rep.Nominal.NoiseLinFF, rep.Nominal.Area,
				rep.Nominal.Iterations, rep.Nominal.Converged)
			for _, c := range rep.Cells {
				fmt.Fprintf(tw, "\t%s\t%.4f\t%.4f\t%.4f\t%d\t%v\n",
					c.Corner.Name, c.Result.DelayPs, c.Result.NoiseLinFF, c.Result.Area,
					c.Result.Iterations, c.Result.Converged)
			}
			fmt.Fprintf(tw, "\tspread\tmean %.4f\tstd %.4f\tmin %.4f\tmax %.4f\t\n",
				rep.Delay.Mean, rep.Delay.Std, rep.Delay.Min, rep.Delay.Max)
			continue
		}
		res, err := variation.MonteCarlo(inst, variation.MCOptions{
			Samples: samples, Seed: seed, Sigmas: sg,
			MaxIterations: maxIter, Epsilon: epsilon, Workers: workers,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		fmt.Fprintf(tw, "%s\tsamples %d\tseed %d\tyield %.3f\t(a0 %.2f ps)\n",
			spec.Name, len(res.Samples), seed, res.Yield, res.A0)
		for _, d := range []struct {
			name string
			dist variation.Dist
		}{{"delay(ps)", res.Delay}, {"area", res.Area}, {"noise(ff)", res.Noise}} {
			fmt.Fprintf(tw, "\t%s\tmean %.4f\tstd %.4f\tmin %.4f\tmedian %.4f\tp90 %.4f\tmax %.4f\n",
				d.name, d.dist.Mean, d.dist.Std, d.dist.Min, d.dist.Median, d.dist.P90, d.dist.Max)
		}
	}
	return nil
}
