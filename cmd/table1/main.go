// Command table1 regenerates the paper's Table 1: initial versus final
// noise, delay, power, and area for the ten ISCAS85-class circuits, with
// iteration counts, runtime, and memory.
//
// Usage:
//
//	table1 [-circuits c432,c880] [-maxiter N] [-epsilon 0.01] [-short]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table1: ")
	circuits := flag.String("circuits", "", "comma-separated ISCAS85 circuit names (default: all ten)")
	maxIter := flag.Int("maxiter", 0, "cap on OGWS iterations (0 = solver default, 1000)")
	epsilon := flag.Float64("epsilon", 0, "relative duality-gap precision, unitless (0 = the paper's 1%)")
	short := flag.Bool("short", false, "run only the circuits up to ~5k components")
	parallel := flag.Int("parallel", 1, "circuits solved concurrently (0 = all cores; rows bit-identical at every width)")
	lockstep := flag.Bool("lockstep", false, "route each solve through the lockstep batch path (rows bit-identical to solo solves)")
	flag.Parse()

	var specs []bench.Spec
	switch {
	case *circuits != "":
		for _, name := range strings.Split(*circuits, ",") {
			s, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown circuit %q", name)
			}
			specs = append(specs, s)
		}
	case *short:
		for _, s := range bench.ISCAS85 {
			if s.Components() <= 5000 {
				specs = append(specs, s)
			}
		}
	default:
		specs = bench.ISCAS85
	}

	opt := bench.RunOptions{MaxIterations: *maxIter, Epsilon: *epsilon, Lockstep: *lockstep}
	var rows []*bench.Table1Row
	if *parallel == 1 {
		for _, s := range specs {
			row, err := bench.RunRow(s, opt)
			if err != nil {
				log.Fatalf("%s: %v", s.Name, err)
			}
			fmt.Fprintf(os.Stderr, "%s done: %d iterations, %.2fs, converged=%v\n",
				row.Name, row.Iterations, row.TimeSec, row.Converged)
			rows = append(rows, row)
		}
	} else {
		var err error
		rows, err = bench.RunTable1Parallel(specs, opt, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range rows {
			fmt.Fprintf(os.Stderr, "%s done: %d iterations, %.2fs, converged=%v\n",
				row.Name, row.Iterations, row.TimeSec, row.Converged)
		}
	}
	if err := report.Table1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
}
