// Command ogws runs the paper's full two-stage flow — WOSS wire ordering
// followed by OGWS Lagrangian-relaxation sizing — on a single circuit and
// prints the before/after metrics.
//
// Usage:
//
//	ogws -synthetic c432
//	ogws -bench circuit.bench [-seed 7]
//
// Bounds default to the self-calibrated experiment settings (delay held at
// the initial value, noise and power 25% above their minimum-size floors);
// override with -a0/-noise/-power.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ogws: ")
	synthetic := flag.String("synthetic", "", "synthetic ISCAS85-class circuit name (e.g. c432)")
	benchFile := flag.String("bench", "", "path to an ISCAS85 .bench netlist")
	seed := flag.Int64("seed", 1, "geometry seed for parsed netlists (wire lengths, channel shuffles)")
	a0 := flag.Float64("a0", 0, "arrival-time bound A0 in ps (0 = self-calibrated: the initial delay)")
	noise := flag.Float64("noise", 0, "total crosstalk bound X_B in fF (0 = self-calibrated: 25% above the minimum-size floor)")
	power := flag.Float64("power", 0, "power bound P' in fF, capacitance equivalent P_B/V²f (0 = self-calibrated: 25% above the floor)")
	workers := flag.Int("workers", 0, "solver worker goroutines (0 = all cores, 1 = serial; results bit-identical at every width)")
	flag.Parse()

	var (
		inst *repro.Instance
		err  error
	)
	switch {
	case *synthetic != "" && *benchFile != "":
		log.Fatal("choose one of -synthetic or -bench")
	case *synthetic != "":
		inst, err = repro.Synthetic(*synthetic)
	case *benchFile != "":
		f, ferr := os.Open(*benchFile)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		inst, err = repro.FromBench(*benchFile, f, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	bounds := inst.DefaultBounds()
	if *a0 > 0 {
		bounds.A0 = *a0
	}
	if *noise > 0 {
		bounds.NoiseBound = *noise
	}
	if *power > 0 {
		bounds.PowerBound = *power
	}

	fmt.Printf("circuit %s: %d gates, %d wires\n", inst.Name(), inst.Gates(), inst.Wires())
	fmt.Printf("bounds: A0=%.4g ps, X_B=%.4g fF, P'=%.4g fF\n", bounds.A0, bounds.NoiseBound, bounds.PowerBound)
	rep, err := inst.OptimizeWith(bounds, *workers)
	if err != nil {
		log.Fatal(err)
	}
	p := func(name string, init, fin float64, unit string) {
		impr := 100 * (init - fin) / init
		fmt.Printf("%-7s %12.5g -> %12.5g %-4s (%+.1f%%)\n", name, init, fin, unit, impr)
	}
	p("noise", rep.Initial.NoisePF, rep.Final.NoisePF, "pF")
	p("delay", rep.Initial.DelayPs, rep.Final.DelayPs, "ps")
	p("power", rep.Initial.PowerMW, rep.Final.PowerMW, "mW")
	p("area", rep.Initial.AreaUM2, rep.Final.AreaUM2, "um2")
	fmt.Printf("iterations %d, converged %v, duality gap %.3g%%, memory %.0f KB\n",
		rep.Iterations, rep.Converged, 100*rep.Gap, rep.MemoryKB)
	if !rep.Converged {
		os.Exit(1)
	}
}
