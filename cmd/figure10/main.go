// Command figure10 regenerates the paper's Figure 10: solver storage (a)
// and runtime per iteration (b) as functions of circuit size, both linear.
//
// Usage:
//
//	figure10 [-csv] [-circuits c432,c880,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure10: ")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	circuits := flag.String("circuits", "", "comma-separated ISCAS85 circuit names (default: all ten)")
	flag.Parse()

	specs := bench.ISCAS85
	if *circuits != "" {
		specs = nil
		for _, name := range strings.Split(*circuits, ",") {
			s, ok := bench.SpecByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("unknown circuit %q", name)
			}
			specs = append(specs, s)
		}
	}

	rows := make([]*bench.Table1Row, 0, len(specs))
	for _, s := range specs {
		row, err := bench.RunRow(s, bench.RunOptions{})
		if err != nil {
			log.Fatalf("%s: %v", s.Name, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %.3f MB, %.4f s/iter\n", row.Name, row.MemMB, row.SecPerIter)
		rows = append(rows, row)
	}
	pts := bench.Figure10(rows)
	var err error
	if *csv {
		err = report.Figure10CSV(os.Stdout, pts)
	} else {
		err = report.Figure10(os.Stdout, pts)
	}
	if err != nil {
		log.Fatal(err)
	}
}
