package repro

// Benchmark harness regenerating every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the paper-vs-measured record):
//
//	BenchmarkTable1/*            — E1: full two-stage solve per circuit
//	BenchmarkFigure10Runtime/*   — E3: wall time per OGWS iteration vs size
//	BenchmarkFigure10Storage/*   — E2: solver memory vs size (metric MB)
//	BenchmarkCouplingApprox      — E4 lives in internal/coupling
//	BenchmarkAblation*           — A1–A3 design-choice ablations
//
// cmd/table1 and cmd/figure10 produce the formatted artifacts; these
// benches measure the same work under testing.B.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/rc"
	"repro/internal/sweep"
	"repro/internal/variation"
)

// table1Circuits is the subset run under `go test -bench`; the full ten
// (including c5315/c6288/c7552) run in cmd/table1. The subset keeps
// `go test -bench=. ./...` under a few minutes while covering a 15×
// size range.
var table1Circuits = []string{"c432", "c880", "c499", "c1355", "c1908", "c2670", "c3540"}

func instanceFor(b *testing.B, name string) *bench.Instance {
	b.Helper()
	spec, ok := bench.SpecByName(name)
	if !ok {
		b.Fatalf("unknown spec %s", name)
	}
	inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkTable1 regenerates Table 1 rows: one op = one full OGWS solve.
// The noise/delay/power/area improvements are attached as metrics. The
// legacy benchmarks pin Workers to 1: they are the paper-faithful serial
// measurements (Figure 10's runtime curve); BenchmarkParallel* below own
// the serial-versus-sharded comparison.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Circuits {
		b.Run(name, func(b *testing.B) {
			spec, _ := bench.SpecByName(name)
			var last *bench.Table1Row
			for i := 0; i < b.N; i++ {
				row, err := bench.RunRow(spec, bench.RunOptions{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(float64(last.Iterations), "iters")
			b.ReportMetric(100*(last.InitNoisePF-last.FinNoisePF)/last.InitNoisePF, "noiseImpr%")
			b.ReportMetric(100*(last.InitAreaUM2-last.FinAreaUM2)/last.InitAreaUM2, "areaImpr%")
			b.ReportMetric(100*(last.InitPowerMW-last.FinPowerMW)/last.InitPowerMW, "powerImpr%")
		})
	}
}

// BenchmarkFigure10Runtime measures the cost of one OGWS iteration (LRS +
// multiplier update + projection) per circuit — the y-axis of Figure 10(b).
func BenchmarkFigure10Runtime(b *testing.B) {
	for _, name := range table1Circuits {
		b.Run(name, func(b *testing.B) {
			inst := instanceFor(b, name)
			bounds := bench.DeriveBounds(inst)
			opt := core.DefaultOptions(bounds.A0, bounds.NoiseBound, bounds.PowerBound)
			opt.MaxIterations = 1 // one op = one outer iteration
			opt.Workers = 1       // the paper's serial per-iteration cost
			sol, err := core.NewSolver(inst.Eval, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer sol.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sol.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(inst.Spec.Components()), "components")
		})
	}
}

// BenchmarkFigure10Storage reports the analytic solver memory per circuit —
// the y-axis of Figure 10(a) — as the MB metric.
func BenchmarkFigure10Storage(b *testing.B) {
	for _, name := range table1Circuits {
		b.Run(name, func(b *testing.B) {
			spec, _ := bench.SpecByName(name)
			var mem float64
			for i := 0; i < b.N; i++ {
				row, err := bench.RunRow(spec, bench.RunOptions{MaxIterations: 2, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				mem = row.MemMB
			}
			b.ReportMetric(mem, "MB")
			b.ReportMetric(float64(spec.Components()), "components")
		})
	}
}

// BenchmarkLRS measures one greedy subproblem solve (Figure 8) — the inner
// kernel whose linearity in circuit size underlies Figure 10(b).
func BenchmarkLRS(b *testing.B) {
	for _, name := range []string{"c432", "c1355", "c3540"} {
		b.Run(name, func(b *testing.B) {
			inst := instanceFor(b, name)
			bounds := bench.DeriveBounds(inst)
			opt := core.DefaultOptions(bounds.A0, bounds.NoiseBound, bounds.PowerBound)
			opt.Workers = 1 // serial kernel cost; BenchmarkParallelLRS shards it
			sol, err := core.NewSolver(inst.Eval, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer sol.Close()
			// Run once to set up multipliers, then time LRS alone.
			opt2 := opt
			opt2.MaxIterations = 1
			if _, err := sol.Run(); err != nil {
				_ = opt2
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol.LRS()
			}
		})
	}
}

// BenchmarkAblationNoiseConstraint (A1) compares the full noise-constrained
// solve against the delay/power-only LR sizing of the prior work the paper
// extends (γ = 0): the metric is the final noise in fF.
func BenchmarkAblationNoiseConstraint(b *testing.B) {
	for _, mode := range []string{"with-noise", "without-noise"} {
		b.Run(mode, func(b *testing.B) {
			spec, _ := bench.SpecByName("c432")
			var noise float64
			for i := 0; i < b.N; i++ {
				inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
				if err != nil {
					b.Fatal(err)
				}
				bounds := bench.DeriveBounds(inst)
				if mode == "without-noise" {
					bounds.NoiseBound = 0 // disables γ, CCW'98 baseline
				}
				row, err := bench.RunInstance(inst, bench.RunOptions{Bounds: &bounds, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				noise = row.FinNoisePF * 1000
			}
			b.ReportMetric(noise, "finNoiseFF")
		})
	}
}

// BenchmarkAblationOrdering (A2) measures stage 1's contribution: the total
// SS objective (effective loading) for WOSS vs identity vs random track
// assignment.
func BenchmarkAblationOrdering(b *testing.B) {
	for _, mode := range []struct {
		name string
		ord  bench.Ordering
	}{{"woss", bench.OrderWOSS}, {"identity", bench.OrderIdentity}, {"random", bench.OrderRandom}} {
		b.Run(mode.name, func(b *testing.B) {
			spec, _ := bench.SpecByName("c880")
			var cost float64
			for i := 0; i < b.N; i++ {
				inst, err := bench.BuildInstance(spec, bench.PipelineOptions{Ordering: mode.ord})
				if err != nil {
					b.Fatal(err)
				}
				cost = inst.OrderingCost
			}
			b.ReportMetric(cost, "ssCost")
		})
	}
}

// BenchmarkAblationPosynomialOrder (A3) sweeps the truncation order k of
// the coupling model: the metric is the worst-case Theorem-1 error ratio at
// x̄ = 0.25 (paper: 6.3%, 1.6%, 0.4%, 0.1% for k = 2..5).
func BenchmarkAblationPosynomialOrder(b *testing.B) {
	p := coupling.Pair{I: 0, J: 1, CTilde: 10, Dist: 2, Weight: 1}
	for k := 2; k <= 5; k++ {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			sum := 0.0
			for i := 0; i < b.N; i++ {
				sum += p.Approx(0.5, 0.5, k)
			}
			_ = sum
			b.ReportMetric(100*coupling.ErrorRatio(0.25, k), "errRatio%")
		})
	}
}

// BenchmarkAblationWarmStart compares the paper-faithful cold LRS start
// (Figure 8, S1) against warm starts across OGWS iterations.
func BenchmarkAblationWarmStart(b *testing.B) {
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			spec, _ := bench.SpecByName("c432")
			var sweeps int
			for i := 0; i < b.N; i++ {
				row, err := bench.RunRow(spec, bench.RunOptions{WarmStart: mode == "warm", Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				sweeps = row.Iterations
			}
			b.ReportMetric(float64(sweeps), "iters")
		})
	}
}

// BenchmarkRCRecompute measures the linear-time evaluation pass that every
// LRS sweep performs.
func BenchmarkRCRecompute(b *testing.B) {
	inst := instanceFor(b, "c1355")
	ev := inst.Eval
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Recompute()
	}
}

// parallelWidths are the Workers settings the parallel benchmarks compare:
// the serial baseline against the full machine. On a multi-core host the
// workersN case demonstrates the wall-clock speedup of the sharded solver;
// results are bit-identical across the settings by construction.
func parallelWidths() []int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkParallelLRS times the hot kernel — one full LRS subproblem
// solve on an ISCAS-scale circuit — serial versus sharded across all
// cores. This is the loop the paper's Figure 10(b) measures, and the one
// the worker pool accelerates most directly.
func BenchmarkParallelLRS(b *testing.B) {
	for _, w := range parallelWidths() {
		b.Run(fmt.Sprintf("c3540/workers%d", w), func(b *testing.B) {
			inst := instanceFor(b, "c3540")
			bounds := bench.DeriveBounds(inst)
			opt := core.DefaultOptions(bounds.A0, bounds.NoiseBound, bounds.PowerBound)
			opt.MaxIterations = 1
			opt.Workers = w
			sol, err := core.NewSolver(inst.Eval, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer sol.Close()
			if _, err := sol.Run(); err != nil { // establish multipliers
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol.LRS()
			}
		})
	}
}

// BenchmarkParallelSolve times the full OGWS solve of one circuit at each
// parallel width: one op = one complete Run from the uniform start.
func BenchmarkParallelSolve(b *testing.B) {
	for _, w := range parallelWidths() {
		b.Run(fmt.Sprintf("c2670/workers%d", w), func(b *testing.B) {
			inst := instanceFor(b, "c2670")
			bounds := bench.DeriveBounds(inst)
			b.ResetTimer()
			var last *bench.Table1Row
			for i := 0; i < b.N; i++ {
				row, err := bench.RunInstance(inst, bench.RunOptions{Bounds: &bounds, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				last = row
			}
			b.ReportMetric(float64(last.Iterations), "iters")
		})
	}
}

// BenchmarkTable1Parallel times a whole Table-1-style sweep through the
// batch driver: one op = building and solving every subset circuit, either
// one after another (workers1) or spread across the machine with one
// serial solver per circuit.
func BenchmarkTable1Parallel(b *testing.B) {
	specs := make([]bench.Spec, 0, len(table1Circuits))
	for _, name := range table1Circuits {
		spec, ok := bench.SpecByName(name)
		if !ok {
			b.Fatalf("unknown spec %s", name)
		}
		specs = append(specs, spec)
	}
	opt := bench.RunOptions{MaxIterations: 60}
	for _, w := range parallelWidths() {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunTable1Parallel(specs, opt, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(specs) {
					b.Fatalf("got %d rows, want %d", len(rows), len(specs))
				}
			}
		})
	}
}

// BenchmarkLevelized measures the levelized topological passes on
// generated deep and wide meshes (bench.Grid, ≥10k nodes each): the
// serial reference loops, the levelized schedule at several Workers
// widths, and the full LRS subproblem whose inner kernel the levelization
// parallelizes. The deep shape (64×78) stresses level-barrier overhead —
// many thin levels; the wide shape (512×10) exposes maximal per-level
// parallelism. On a multi-core host the workers8 cases show the levelized
// wall-clock speedup; results are bit-identical at every width by
// construction (enforced by the golden and fuzz suites).
func BenchmarkLevelized(b *testing.B) {
	shapes := []struct {
		name          string
		width, layers int
	}{
		{"deep64x78", 64, 78},   // 10114 nodes, ~160 levels
		{"wide512x10", 512, 10}, // 11266 nodes, ~22 levels
	}
	widths := []int{1, 2, 8}
	for _, sh := range shapes {
		g, cs, err := bench.Grid(sh.width, sh.layers, true)
		if err != nil {
			b.Fatal(err)
		}
		newEval := func() *rc.Evaluator {
			ev, err := rc.NewEvaluator(g, cs)
			if err != nil {
				b.Fatal(err)
			}
			ev.SetAllSizes(1)
			return ev
		}
		lambda := make([]float64, g.NumNodes())
		for i := range lambda {
			lambda[i] = 0.5 + float64(i%5)*0.2
		}
		dst := make([]float64, g.NumNodes())

		b.Run(sh.name+"/recompute-serial-ref", func(b *testing.B) {
			ev := newEval()
			b.ReportMetric(float64(g.NumNodes()), "nodes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.RecomputeSerial()
			}
		})
		b.Run(sh.name+"/upstream-serial-ref", func(b *testing.B) {
			ev := newEval()
			ev.RecomputeSerial()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.UpstreamResistanceSerial(lambda, dst)
			}
		})
		for _, w := range widths {
			opt := core.DefaultOptions(1, 0, 0)
			opt.Workers = w
			b.Run(fmt.Sprintf("%s/recompute/workers%d", sh.name, w), func(b *testing.B) {
				ev := newEval()
				sol, err := core.NewSolver(ev, opt) // installs the pool Runner
				if err != nil {
					b.Fatal(err)
				}
				defer sol.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.Recompute()
				}
			})
			b.Run(fmt.Sprintf("%s/upstream/workers%d", sh.name, w), func(b *testing.B) {
				ev := newEval()
				sol, err := core.NewSolver(ev, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer sol.Close()
				ev.Recompute()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev.UpstreamResistance(lambda, dst)
				}
			})
		}
	}
}

// BenchmarkLevelizedLRS times the full LRS subproblem solve — the hot
// kernel of every OGWS iteration, now with no serial topological remainder
// — on the deep ≥10k-node mesh, serial versus Workers=8.
func BenchmarkLevelizedLRS(b *testing.B) {
	g, cs, err := bench.Grid(64, 78, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("deep64x78/workers%d", w), func(b *testing.B) {
			ev, err := rc.NewEvaluator(g, cs)
			if err != nil {
				b.Fatal(err)
			}
			ev.SetAllSizes(1)
			ev.Recompute()
			opt := core.DefaultOptions(ev.MaxArrival(), 0, 0)
			opt.MaxIterations = 1
			opt.Workers = w
			sol, err := core.NewSolver(ev, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer sol.Close()
			if _, err := sol.Run(); err != nil { // establish multipliers
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol.LRS()
			}
		})
	}
}

// incrementalScenario builds one warm-start solve setup for the
// incremental benchmarks: a prebuilt evaluator (primed by a full pass) and
// solver options with binding bounds. Workers is pinned to 1 so the
// numbers isolate evaluation work, not pool scheduling.
type incrementalScenario struct {
	name  string
	build func(b *testing.B) (*rc.Evaluator, core.Options)
}

func incrementalScenarios() []incrementalScenario {
	return []incrementalScenario{
		{name: "c880", build: func(b *testing.B) (*rc.Evaluator, core.Options) {
			inst := instanceFor(b, "c880")
			bounds := bench.DeriveBounds(inst)
			opt := core.DefaultOptions(bounds.A0, bounds.NoiseBound, bounds.PowerBound)
			opt.MaxIterations = 200
			opt.WarmStart = true
			opt.Workers = 1
			return inst.Eval, opt
		}},
		{name: "grid32x24", build: func(b *testing.B) (*rc.Evaluator, core.Options) {
			g, cs, err := bench.Grid(32, 24, true)
			if err != nil {
				b.Fatal(err)
			}
			ev, err := rc.NewEvaluator(g, cs)
			if err != nil {
				b.Fatal(err)
			}
			ev.SetAllSizes(1)
			ev.Recompute()
			a0 := ev.MaxArrival()
			ev.SetAllSizes(0.1)
			ev.Recompute()
			noise := 1.25*ev.NoiseLinear() + cs.ConstantOffset()
			power := 1.25 * ev.TotalCap()
			ev.SetAllSizes(1)
			ev.Recompute()
			opt := core.DefaultOptions(a0, noise, power)
			opt.MaxIterations = 120
			opt.WarmStart = true
			opt.Workers = 1
			return ev, opt
		}},
	}
}

// BenchmarkIncrementalSolve times one complete warm-started OGWS solve
// per op with the evaluation engine in each mode: "full" pays the whole
// circuit on every LRS sweep (Options.Incremental = false), "incremental"
// runs the dirty-cone/active-set engine with the PR-4 cutover hysteresis
// (the default), and "incremental-nohyst" disables the hysteresis — the
// PR-3 behaviour, kept so the grid32x24 before/after is one diff in the
// committed trajectory. All modes are bit-identical at every step, so
// ns/op, allocs/op, and the evalNodesPerSweep metric compare exactly the
// same trajectory; hystTripsPerSolve records whether the hysteresis fired
// (grid32x24: every solve; c880: never). The incremental cases also
// report workReductionX — full-pass node visits divided by measured
// visits, derivable analytically because all modes execute identical
// sweep counts:
//
//	fullVisits = (sweeps + trailingFulls)·recomputeBodies + sweeps·upstreamBodies
//
// where trailingFulls = FullRecomputes − DegradedRecomputes −
// revertedSweeps: the deliberate full passes (one per LRS call plus
// result restores, which the full mode pays too) but NOT the sweep-top
// refreshes that degraded past the coneWorthwhile cutover, and NOT the
// sweeps the hysteresis reverted to the full-pass path — both stand in
// for a sweep's recompute, which `sweeps` already charges once.
func BenchmarkIncrementalSolve(b *testing.B) {
	for _, sc := range incrementalScenarios() {
		for _, mode := range []string{"full", "incremental", "incremental-nohyst"} {
			b.Run(sc.name+"/"+mode, func(b *testing.B) {
				ev, opt := sc.build(b)
				opt.Incremental = mode != "full"
				if mode == "incremental-nohyst" {
					opt.CutoverHysteresis = -1
				}
				initX := append([]float64(nil), ev.X...)
				sol, err := core.NewSolver(ev, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer sol.Close()
				var last *core.Result
				var reverted int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := ev.SetSizes(initX); err != nil {
						b.Fatal(err)
					}
					ev.Recompute()
					ev.ResetStats()
					rev0 := sol.RevertedSweeps()
					b.StartTimer()
					res, err := sol.Run()
					if err != nil {
						b.Fatal(err)
					}
					last = res
					reverted = sol.RevertedSweeps() - rev0 // last solve only, like the stats
				}
				st := ev.Stats()
				sweeps := st.FullUpstreams + st.IncUpstreams // one upstream pass per sweep
				if sweeps == 0 {
					b.Fatal("no sweeps recorded")
				}
				nn := int64(ev.Graph().NumNodes())
				b.ReportMetric(float64(last.Iterations), "iters")
				b.ReportMetric(float64(st.NodeVisits())/float64(sweeps), "evalNodesPerSweep")
				if mode != "full" {
					recBodies := 3 * (nn - 2)
					if ev.Couplings().Len() > 0 {
						recBodies += nn
					}
					trailingFulls := st.FullRecomputes - st.DegradedRecomputes - reverted
					fullVisits := (sweeps+trailingFulls)*recBodies + sweeps*(nn-2)
					b.ReportMetric(float64(fullVisits)/float64(st.NodeVisits()), "workReductionX")
					b.ReportMetric(float64(sol.HysteresisTrips())/float64(b.N), "hystTripsPerSolve")
				}
			})
		}
	}
}

// BenchmarkSweepGrid measures the bounds-grid sweep engine end to end on
// a prebuilt c432 instance: one op = solving the full 2×4 grid. The
// "warm" case is the engine's default — each cell seeded from its solved
// wavefront neighbour through core.Solver.RunFromDual, sizes AND dual
// state (the multipliers are where the iteration-count savings come
// from) — and "cold" solves every cell independently from the initial
// sizes and the A1 multiplier seed. Both run one row at a
// time on one core (SweepWorkers=1), so cellsPerSec isolates the
// warm-start win rather than scheduling; lrsSweeps counts the total inner
// sweeps the grid cost. The warm and cold grids are separately pinned to
// their full-pass oracles by the sweep test suite.
func BenchmarkSweepGrid(b *testing.B) {
	inst := instanceFor(b, "c432")
	for _, mode := range []string{"warm", "cold"} {
		b.Run("c432/"+mode, func(b *testing.B) {
			opt := sweep.Options{
				DelayScale:    []float64{1, 1.05},
				NoiseScale:    []float64{0.7, 0.85, 1, 1.2},
				MaxIterations: 40,
				SweepWorkers:  1,
				Cold:          mode == "cold",
			}
			var last *sweep.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run(inst, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			cells := float64(len(last.Cells))
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
			total := 0
			for i := range last.Cells {
				total += last.Cells[i].Result.LRSSweepsTotal
			}
			b.ReportMetric(float64(total), "lrsSweeps")
			b.ReportMetric(float64(len(last.Frontier)), "frontierCells")
		})
	}
}

// BenchmarkIncrementalEval isolates the raw dirty-cone win in an
// ECO-style query: perturb k sizes on the ≥10k-node deep mesh, then bring
// the timing state (Recompute) and the weighted upstream resistances back
// up to date — incrementally versus with the full reference passes. This
// is the per-sweep kernel of every late-convergence LRS iteration.
func BenchmarkIncrementalEval(b *testing.B) {
	g, cs, err := bench.Grid(64, 78, true)
	if err != nil {
		b.Fatal(err)
	}
	var sizable []int
	for i := 0; i < g.NumNodes(); i++ {
		if g.Comp(i).Kind.Sizable() {
			sizable = append(sizable, i)
		}
	}
	lambda := make([]float64, g.NumNodes())
	for i := range lambda {
		lambda[i] = 0.3 + float64(i%7)*0.2
	}
	for _, k := range []int{1, 16, 256} {
		for _, mode := range []string{"full", "incremental"} {
			b.Run(fmt.Sprintf("deep64x78/dirty%d/%s", k, mode), func(b *testing.B) {
				ev, err := rc.NewEvaluator(g, cs)
				if err != nil {
					b.Fatal(err)
				}
				ev.SetAllSizes(1)
				ev.Recompute()
				rup := make([]float64, g.NumNodes())
				ev.UpstreamResistance(lambda, rup)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < k; j++ {
						node := sizable[(i*8191+j*193)%len(sizable)]
						v := 0.8 + 0.5*float64((i+j)%2)
						if _, err := ev.SetSize(node, v); err != nil {
							b.Fatal(err)
						}
					}
					if mode == "incremental" {
						ev.RecomputeIncremental()
						ev.UpstreamResistanceIncremental(lambda, rup)
					} else {
						ev.Recompute()
						ev.UpstreamResistance(lambda, rup)
					}
				}
			})
		}
	}
}

// BenchmarkLockstepSweep is the PR-9 headline: the golden 12×10 mesh
// grid's cold sweep (every cell independent, from the uniform start) on
// the solo schedule versus lockstep batching, in cells/s. Lockstep
// advances all nine cells through one shared rc.Batch — fused SoA
// kernels, one topology build, one rendezvous per LRS sweep, no per-cell
// evaluator allocation — with bit-identical cells (pinned by the sweep
// suite's lockstep oracle).
func BenchmarkLockstepSweep(b *testing.B) {
	inst, bounds, err := bench.GridInstance(12, 10, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"cold", "lockstep"} {
		b.Run("grid12x10/"+mode, func(b *testing.B) {
			opt := sweep.Options{
				DelayScale:    []float64{1, 1.06, 1.12},
				NoiseScale:    []float64{0.8, 1, 1.3},
				Bounds:        &bounds,
				MaxIterations: 12,
				SweepWorkers:  1,
				Cold:          true,
				Lockstep:      mode == "lockstep",
			}
			var last *sweep.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run(inst, opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			cells := float64(len(last.Cells))
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkLockstepSolve times K=4 concurrent full solves of one circuit
// through the plain batch driver versus the lockstep gate, on the ≥10k
// node deep mesh and a mid-size 32×24 grid, at one core and all cores.
// One op = one whole K-batch; the ns/solve metric divides it out per
// solve for cross-shape comparison.
func BenchmarkLockstepSolve(b *testing.B) {
	shapes := []struct {
		name          string
		width, layers int
	}{
		{"mesh10k", 64, 78},
		{"grid32x24", 32, 24},
	}
	const k = 4
	for _, sh := range shapes {
		inst, bounds, err := bench.GridInstance(sh.width, sh.layers, true)
		if err != nil {
			b.Fatal(err)
		}
		sopt := core.DefaultOptions(bounds.A0, bounds.NoiseBound, bounds.PowerBound)
		sopt.MaxIterations = 5
		newJobs := func(b *testing.B) []core.BatchJob {
			jobs := make([]core.BatchJob, k)
			for i := range jobs {
				ev, err := inst.Replica()
				if err != nil {
					b.Fatal(err)
				}
				opt := sopt
				opt.A0 = bounds.A0 * (1 + 0.02*float64(i))
				jobs[i] = core.BatchJob{Ev: ev, Options: opt}
			}
			return jobs
		}
		for _, w := range parallelWidths() {
			for _, mode := range []string{"solo", "lockstep"} {
				b.Run(fmt.Sprintf("%s/%s/workers%d", sh.name, mode, w), func(b *testing.B) {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var results []core.BatchResult
						if mode == "lockstep" {
							results = core.SolveBatchOpt(newJobs(b), core.BatchOptions{Workers: w, Lockstep: true})
						} else {
							results = core.SolveBatch(newJobs(b), w)
						}
						for _, r := range results {
							if r.Err != nil {
								b.Fatal(r.Err)
							}
						}
					}
					b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*k)*1e9, "ns/solve")
				})
			}
		}
	}
}

// BenchmarkMonteCarloSamples times a K=6 seeded Monte-Carlo yield run on
// the synthetic c432, lockstep batch versus the solo per-sample path —
// the PR-10 throughput comparison. The two modes produce bit-identical
// sample sets (the variation oracle pins it), so this is pure scheduling
// attribution; the samples/s metric is what BENCH_PR10.json tracks.
func BenchmarkMonteCarloSamples(b *testing.B) {
	inst := instanceFor(b, "c432")
	const k = 6
	for _, mode := range []string{"solo", "lockstep"} {
		b.Run("c432/"+mode, func(b *testing.B) {
			opt := variation.MCOptions{
				Samples:       k,
				Seed:          7,
				Sigmas:        variation.Sigmas{R: 0.05, C: 0.05, Threshold: 0.08},
				MaxIterations: 12,
				Workers:       -1,
				Solo:          mode == "solo",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := variation.MonteCarlo(inst, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkCornerSweep times the standard five-corner enumeration on the
// synthetic c432, warm-started from the nominal solve versus cold — the
// corner analogue of the sweep engine's warm-start advantage. One op =
// nominal + 5 corners; the corners/s metric divides the corners out.
func BenchmarkCornerSweep(b *testing.B) {
	inst := instanceFor(b, "c432")
	for _, mode := range []string{"cold", "warm"} {
		b.Run("c432/"+mode, func(b *testing.B) {
			opt := variation.CornerOptions{
				MaxIterations: 12,
				Cold:          mode == "cold",
			}
			var corners float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := variation.CornerSweep(inst, opt)
				if err != nil {
					b.Fatal(err)
				}
				corners = float64(len(rep.Cells))
			}
			b.ReportMetric(corners*float64(b.N)/b.Elapsed().Seconds(), "corners/s")
		})
	}
}
