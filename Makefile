# Same entry points CI runs (.github/workflows/ci.yml), for humans.
GO ?= go

# Minimum combined statement coverage for the numerical heart of the
# solver plus its service front end (internal/rc + internal/core +
# internal/sweep + internal/service + internal/farm + internal/farm/api +
# internal/store + internal/delta + internal/fault +
# internal/variation).
# Measured 93.3% when the gate was introduced, 95.0% with the PR-3
# incremental engine, 94.8% with the PR-4 sweep engine, 94.1% with the
# PR-5 service, 92.4% with the PR-6 farm packages, 91.2% with the
# PR-7 store/delta packages, 91.1% with the PR-8 fault package, and
# 90.5% with the PR-10 variation package in the denominator; raise it
# when coverage grows, never lower it to make a PR pass.
COVER_MIN ?= 90.0

# Version-pinned static analyzers, fetched with `go run tool@version` so
# go.mod stays dependency-free. Needs network the first time (CI has it;
# offline machines can skip these targets).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race bench bench-json bench-compare lint staticcheck govulncheck cover fuzz golden serve service-smoke farm-smoke store-smoke chaos-smoke variation-smoke linkcheck

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke pass, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Benchmark trajectory: run the committed full-vs-incremental, sweep,
# lockstep, and process-variation benchmark families and write a JSON
# snapshot (ns/op, allocs/op, work metrics). CI runs this at the default
# BENCHTIME and uploads the artifact; the default matches how the
# committed BENCH_PR10.json was generated, because allocs/op amortizes
# one-time lazy setup over the iteration count — comparing snapshots
# taken at different BENCHTIMEs trips the allocation gate on
# amortization, not regressions. (BENCH_PR3.json, BENCH_PR4.json, and
# BENCH_PR9.json are frozen baselines — do not regenerate them.)
BENCH_JSON ?= BENCH_PR10.json
BENCHTIME ?= 3x
# Two steps, not a pipe: a pipe would take benchjson's exit status and
# mask a benchmark failure that had already emitted some result lines.
bench-json:
	$(GO) test -run '^$$' -bench 'Incremental|Sweep|Lockstep|MonteCarlo' -benchmem -benchtime=$(BENCHTIME) . > $(BENCH_JSON).tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_JSON) < $(BENCH_JSON).tmp || { rm -f $(BENCH_JSON).tmp; exit 1; }
	@rm -f $(BENCH_JSON).tmp
	@echo "wrote $(BENCH_JSON)"

# Benchmark regression guard: diff a fresh snapshot (BENCH_CURRENT,
# default bench-ci.json from `make bench-json BENCH_JSON=bench-ci.json`)
# against the committed baseline. Allocation growth fails hard; ns/op
# drift only warns (CI runners are too noisy for wall-clock gates).
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_CURRENT ?= bench-ci.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -against $(BENCH_CURRENT)

# Statement-coverage gate over the evaluator, solver, sweep, service,
# farm, persistence, fault-injection, and process-variation packages.
cover:
	$(GO) test -coverprofile=cover.out ./internal/rc ./internal/core ./internal/sweep ./internal/service ./internal/farm ./internal/farm/api ./internal/store ./internal/delta ./internal/fault ./internal/variation
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/{rc,core,sweep,service,farm,farm/api,store,delta,fault,variation} coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% gate" >&2; exit 1; }

# Short fuzz smoke of the levelizer, incremental-oracle, and batched
# lockstep-kernel targets (they also run their seed corpora as plain
# tests under `make test`).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLevelizer$$' -fuzztime=10s ./internal/rc
	$(GO) test -run '^$$' -fuzz '^FuzzIncremental$$' -fuzztime=10s ./internal/rc
	$(GO) test -run '^$$' -fuzz '^FuzzLockstep$$' -fuzztime=10s ./internal/rc
	$(GO) test -run '^$$' -fuzz '^FuzzVariation$$' -fuzztime=10s ./internal/rc
	$(GO) test -run '^$$' -fuzz '^FuzzGraphLevels$$' -fuzztime=10s ./internal/circuit

# Regenerate the golden solver fixtures (testdata/golden/) after an
# intended numerical change; see TESTING.md.
golden:
	$(GO) test -run TestGolden -update .

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# Deeper static analysis than `go vet`. `go run pkg@version` executes the
# pinned tool without adding it to go.mod.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Known-vulnerability scan of the module and its (stdlib-only) deps.
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Every relative link in the repo's markdown files must resolve.
linkcheck:
	$(GO) run ./scripts/linkcheck

# Run the sizing service locally (README.md has a curl walkthrough).
serve:
	$(GO) run ./cmd/ogwsd

# End-to-end service smoke: start the real ogwsd binary on a free port,
# solve c432 over HTTP, and diff the response against the committed
# golden fixture bit for bit (see TESTING.md, "The service oracle").
service-smoke:
	./scripts/service_smoke.sh

# End-to-end farm smoke: real coordinator + two real worker processes
# over TCP, one killed mid-grid, reassembled sweep diffed bit-for-bit
# against the committed golden grid (see TESTING.md, "The farm oracle").
farm-smoke:
	./scripts/farm_smoke.sh

# End-to-end durable-store smoke: real ogwsd with -data, seeded over
# HTTP, SIGKILL'd, restarted on the same directory, and required to
# reproduce the pre-crash warm-start chain bit for bit (see TESTING.md,
# "The restart oracle").
store-smoke:
	./scripts/store_smoke.sh

# End-to-end variation oracle: real ogwsd -coordinator + a real worker
# over TCP; the seed-7 Monte-Carlo must be byte-identical run locally on
# the server, distributed through the worker, and recomputed in-process
# by the check, and the corners sweep mode likewise (see TESTING.md,
# "The variation oracle").
variation-smoke:
	./scripts/variation_smoke.sh

# End-to-end chaos oracle: real ogwsd + workers under seeded fault plans
# (failed store writes, a lease 500, a severed result stream, a worker
# crash mid-grid); the output must be bit-identical to a fault-free run,
# /stats must account every injected fault exactly once, and a final
# SIGTERM must drain gracefully (see TESTING.md, "The chaos oracle").
chaos-smoke:
	./scripts/chaos_smoke.sh
