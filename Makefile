# Same entry points CI runs (.github/workflows/ci.yml), for humans.
GO ?= go

.PHONY: all build test race bench lint

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke pass, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
