// Package fanout runs embarrassingly parallel index loops — the shared
// engine behind the repo's batch drivers (core.SolveBatch,
// bench.RunTable1Parallel, repro.OptimizeBatch, logicsim's similarity
// matrix). Callers keep their own result slices indexed by i, so output
// placement is deterministic regardless of scheduling.
package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Each runs fn(i) for every i in [0, n), distributing indices across at
// most workers goroutines (workers <= 0 selects runtime.GOMAXPROCS(0)) and
// returning once all calls have completed. Indices are handed out one at a
// time in ascending order, which load-balances uneven items; fn must be
// safe to call concurrently for distinct i. With one worker (or n <= 1)
// everything runs inline on the caller's goroutine.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
