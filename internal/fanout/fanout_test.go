package fanout

import (
	"sync/atomic"
	"testing"
)

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		for _, n := range []int{0, 1, 2, 7, 1000} {
			visited := make([]int32, n)
			Each(n, workers, func(i int) {
				atomic.AddInt32(&visited[i], 1)
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestEachInlineWhenSerial(t *testing.T) {
	// workers == 1 must run on the calling goroutine, in order.
	var order []int
	Each(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Each out of order: %v", order)
		}
	}
}
