package bench

import (
	"testing"
)

func TestGridStructure(t *testing.T) {
	const width, layers = 16, 6
	g, cs, err := Grid(width, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := width*(2*layers+2) + 2; g.NumNodes() != want {
		t.Errorf("NumNodes = %d, want %d", g.NumNodes(), want)
	}
	if g.Drivers() != width {
		t.Errorf("Drivers = %d, want %d", g.Drivers(), width)
	}
	if want := layers * (width - 1); cs.Len() != want {
		t.Errorf("coupling pairs = %d, want %d", cs.Len(), want)
	}
	// Depth buckets: every interior level must hold Θ(width) nodes — the
	// property the levelized benchmarks rely on.
	for l := 1; l < g.NumLevels()-1; l++ {
		if n := len(g.LevelNodes(l)); n != width {
			t.Errorf("level %d holds %d nodes, want %d", l, n, width)
		}
	}
	// Deterministic: a second build is structurally identical.
	g2, cs2, err := Grid(width, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() || cs2.Len() != cs.Len() {
		t.Error("Grid is not deterministic")
	}
	for i := 0; i < g.NumNodes(); i++ {
		if *g.Comp(i) != *g2.Comp(i) {
			t.Fatalf("Grid is not deterministic: component %d differs", i)
		}
	}

	if _, _, err := Grid(1, 5, false); err == nil {
		t.Error("Grid accepted width 1")
	}
	if _, cs, err := Grid(4, 2, false); err != nil || cs.Len() != 0 {
		t.Errorf("uncoupled Grid: err=%v pairs=%d", err, cs.Len())
	}
}
