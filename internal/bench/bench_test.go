package bench

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// TestGenerateMatchesAllSpecs verifies the generator hits the published
// gate/wire/input/output counts and the target depth for every Table-1
// circuit.
func TestGenerateMatchesAllSpecs(t *testing.T) {
	for _, spec := range ISCAS85 {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Components() > 3000 {
				t.Skip("short mode")
			}
			nl, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			st := nl.Stats()
			if st.Gates != spec.Gates {
				t.Errorf("gates = %d, want %d", st.Gates, spec.Gates)
			}
			if got := st.Connections + st.Outputs; got != spec.Wires {
				t.Errorf("wires = %d, want %d", got, spec.Wires)
			}
			if st.Inputs != spec.Inputs || st.Outputs != spec.Outputs {
				t.Errorf("interface %d/%d, want %d/%d", st.Inputs, st.Outputs, spec.Inputs, spec.Outputs)
			}
			if st.Depth != spec.Depth {
				t.Errorf("depth = %d, want %d", st.Depth, spec.Depth)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := SpecByName("c432")
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("different gate counts across runs")
	}
	for i := range a.Gates {
		if a.Gates[i].Name != b.Gates[i].Name || a.Gates[i].Type != b.Gates[i].Type {
			t.Fatalf("gate %d differs across runs", i)
		}
	}
}

func TestGenerateXorHeavyMix(t *testing.T) {
	spec, _ := SpecByName("c499") // XorHeavy
	nl, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	xor := 0
	for _, g := range nl.Gates {
		if g.Type == netlist.Xor || g.Type == netlist.Xnor {
			xor++
		}
	}
	if xor < spec.TwoInputGates()/4 {
		t.Errorf("XorHeavy circuit has only %d XOR/XNOR gates", xor)
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	bad := []Spec{
		{Name: "neg-n2", Gates: 10, Wires: 15, Inputs: 3, Outputs: 10, Depth: 3, Seed: 1},
		{Name: "no-inputs", Gates: 10, Wires: 25, Inputs: 0, Outputs: 5, Depth: 3, Seed: 1},
		{Name: "depth>gates", Gates: 3, Wires: 8, Inputs: 2, Outputs: 2, Depth: 5, Seed: 1},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("%s: accepted", s.Name)
		}
	}
}

func TestSpecIdentities(t *testing.T) {
	for _, s := range ISCAS85 {
		if s.OneInputGates() < 0 || s.TwoInputGates() < 0 {
			t.Errorf("%s: inconsistent fan-in split", s.Name)
		}
		if s.OneInputGates()+s.TwoInputGates() != s.Gates {
			t.Errorf("%s: split does not sum to gates", s.Name)
		}
		if s.Components() != s.Gates+s.Wires {
			t.Errorf("%s: components mismatch", s.Name)
		}
	}
	if _, ok := SpecByName("c432"); !ok {
		t.Error("SpecByName(c432) not found")
	}
	if _, ok := SpecByName("zzz"); ok {
		t.Error("SpecByName(zzz) should not exist")
	}
}

func TestWireLengthDeterministicAndBounded(t *testing.T) {
	f := func(seed int64, from, to, branch uint16) bool {
		l := wireLength(seed, int(from), int(to), int(branch))
		if l < 30 || l >= 90 {
			return false
		}
		return l == wireLength(seed, int(from), int(to), int(branch))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildInstanceC432(t *testing.T) {
	spec, _ := SpecByName("c432")
	inst, err := BuildInstance(spec, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := inst.Elab.Graph.Stats()
	if st.Gates != spec.Gates || st.Wires != spec.Wires {
		t.Fatalf("elaborated %d gates / %d wires, want %d/%d", st.Gates, st.Wires, spec.Gates, spec.Wires)
	}
	if inst.Coupling.Len() == 0 {
		t.Fatal("no coupling pairs")
	}
	// Initial metrics are the uniform 1 µm sizing.
	if inst.Init.Area <= inst.Floor.Area {
		t.Error("init area should exceed floor area")
	}
	if inst.Init.NoiseLinFF <= inst.Floor.NoiseLinFF {
		t.Error("init noise should exceed floor noise")
	}
	// Floor noise = exactly Lo/Init ratio of init noise (linear measure).
	ratio := inst.Floor.NoiseLinFF / inst.Init.NoiseLinFF
	if math.Abs(ratio-0.1) > 1e-9 {
		t.Errorf("floor/init noise ratio = %g, want 0.1 (Lo/InitSize)", ratio)
	}
}

// TestOrderingPolicyAffectsCrosstalk checks stage 1's effect: the WOSS
// ordering gives no worse total SS cost than identity or random tracks.
func TestOrderingPolicyAffectsCrosstalk(t *testing.T) {
	spec, _ := SpecByName("c432")
	costs := map[Ordering]float64{}
	for _, ord := range []Ordering{OrderWOSS, OrderIdentity, OrderRandom} {
		inst, err := BuildInstance(spec, PipelineOptions{Ordering: ord})
		if err != nil {
			t.Fatal(err)
		}
		costs[ord] = inst.OrderingCost
	}
	if costs[OrderWOSS] > costs[OrderIdentity] {
		t.Errorf("WOSS cost %g worse than identity %g", costs[OrderWOSS], costs[OrderIdentity])
	}
	if costs[OrderWOSS] > costs[OrderRandom] {
		t.Errorf("WOSS cost %g worse than random %g", costs[OrderWOSS], costs[OrderRandom])
	}
}

// TestSimilarityWeightsChangeEffectiveNoise checks that the Miller-effect
// weighting produces a different (generally lower, thanks to stage 1)
// effective crosstalk than the purely physical accounting.
func TestSimilarityWeightsChangeEffectiveNoise(t *testing.T) {
	spec, _ := SpecByName("c432")
	phys, err := BuildInstance(spec, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := BuildInstance(spec, PipelineOptions{SimilarityWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if phys.Init.NoiseLinFF == weighted.Init.NoiseLinFF {
		t.Error("similarity weights had no effect on effective noise")
	}
	// WOSS places similar wires together, so the weighted (Miller-aware)
	// noise should be below the physical count.
	if weighted.Init.NoiseLinFF >= phys.Init.NoiseLinFF {
		t.Errorf("weighted noise %g not below physical %g after WOSS ordering",
			weighted.Init.NoiseLinFF, phys.Init.NoiseLinFF)
	}
}

// TestTable1RowC432 runs the full two-stage flow on the smallest circuit
// and checks the paper's Table-1 shape: ~90% noise reduction, ~85%+ power
// and area reduction, delay within a few percent of the bound, convergence
// to 1% precision.
func TestTable1RowC432(t *testing.T) {
	spec, _ := SpecByName("c432")
	row, err := RunRow(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Converged {
		t.Fatalf("did not converge: gap %g after %d iterations", row.Gap, row.Iterations)
	}
	if row.Gap > 0.01 {
		t.Errorf("gap %g above the paper's 1%% precision", row.Gap)
	}
	check := func(name string, impr, lo, hi float64) {
		t.Helper()
		if impr < lo || impr > hi {
			t.Errorf("%s improvement %.1f%%, want within [%g%%, %g%%]", name, impr, lo, hi)
		}
	}
	noiseImpr := 100 * (row.InitNoisePF - row.FinNoisePF) / row.InitNoisePF
	powerImpr := 100 * (row.InitPowerMW - row.FinPowerMW) / row.InitPowerMW
	areaImpr := 100 * (row.InitAreaUM2 - row.FinAreaUM2) / row.InitAreaUM2
	delayImpr := 100 * (row.InitDelayPs - row.FinDelayPs) / row.InitDelayPs
	check("noise", noiseImpr, 80, 95) // paper: 89.67% average
	check("power", powerImpr, 80, 95) // paper: 86.82%
	check("area", areaImpr, 80, 95)   // paper: 87.90%
	if math.Abs(delayImpr) > 10 {     // paper: 5.3% average, some negative
		t.Errorf("delay change %.1f%%, want within ±10%%", delayImpr)
	}
	if row.FinDelayPs > row.InitDelayPs*1.02 {
		t.Errorf("final delay %g violates the bound %g by more than 2%%", row.FinDelayPs, row.InitDelayPs)
	}
}

// TestTable1SmallSubset runs three circuits end to end and checks the
// average improvements land in the paper's band.
func TestTable1SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var specs []Spec
	for _, n := range []string{"c432", "c499", "c880"} {
		s, _ := SpecByName(n)
		specs = append(specs, s)
	}
	rows, err := RunTable1(specs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noise, delay, power, area := Improvements(rows)
	if noise < 80 || noise > 95 {
		t.Errorf("avg noise improvement %.1f%%, paper 89.67%%", noise)
	}
	if power < 80 || power > 95 {
		t.Errorf("avg power improvement %.1f%%, paper 86.82%%", power)
	}
	if area < 80 || area > 95 {
		t.Errorf("avg area improvement %.1f%%, paper 87.90%%", area)
	}
	if math.Abs(delay) > 10 {
		t.Errorf("avg delay improvement %.1f%%, paper 5.3%%", delay)
	}
	pts := Figure10(rows)
	if len(pts) != 3 {
		t.Fatalf("Figure10 returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Tot < pts[i-1].Tot {
			t.Error("Figure10 points not sorted by size")
		}
	}
	// Figure 10(a): memory grows with circuit size.
	if !(pts[0].MemMB < pts[len(pts)-1].MemMB) {
		t.Errorf("memory not increasing with size: %+v", pts)
	}
}

func TestImprovementsEmpty(t *testing.T) {
	n, d, p, a := Improvements(nil)
	if n != 0 || d != 0 || p != 0 || a != 0 {
		t.Error("Improvements(nil) should be zero")
	}
}

// TestImprovementsSkipsZeroDenominators: a zero (or NaN) initial value —
// e.g. zero initial noise on an uncoupled circuit — must drop that row
// from that metric's average only, instead of poisoning every summary
// with NaN/Inf. Each metric keeps its own row count.
func TestImprovementsSkipsZeroDenominators(t *testing.T) {
	rows := []*Table1Row{
		{InitNoisePF: 2, FinNoisePF: 1, InitDelayPs: 100, FinDelayPs: 90,
			InitPowerMW: 4, FinPowerMW: 2, InitAreaUM2: 10, FinAreaUM2: 5},
		// Uncoupled circuit: zero initial noise; also a degenerate
		// zero-area row and a NaN initial power.
		{InitNoisePF: 0, FinNoisePF: 0, InitDelayPs: 200, FinDelayPs: 100,
			InitPowerMW: math.NaN(), FinPowerMW: 1, InitAreaUM2: 0, FinAreaUM2: 0},
		// Non-finite FINAL values and an Inf initial: each must drop its
		// row from its own metric only, like the bad denominators.
		{InitNoisePF: 4, FinNoisePF: math.NaN(), InitDelayPs: math.Inf(1), FinDelayPs: 100,
			InitPowerMW: 2, FinPowerMW: math.Inf(1), InitAreaUM2: 8, FinAreaUM2: 4},
	}
	noise, delay, power, area := Improvements(rows)
	for name, v := range map[string]float64{"noise": noise, "delay": delay, "power": power, "area": area} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s improvement is %g — zero/NaN denominator leaked into the average", name, v)
		}
	}
	if noise != 50 {
		t.Errorf("noise improvement %g%%, want 50 (zero-noise row skipped)", noise)
	}
	if delay != 30 {
		t.Errorf("delay improvement %g%%, want 30 (both rows defined)", delay)
	}
	if power != 50 {
		t.Errorf("power improvement %g%%, want 50 (NaN-power row skipped)", power)
	}
	if area != 50 {
		t.Errorf("area improvement %g%%, want 50 (zero-area row skipped)", area)
	}
	// All-zero denominators: the metric reports 0, not NaN.
	zeroRows := []*Table1Row{{InitDelayPs: 10, FinDelayPs: 8}}
	n2, _, _, _ := Improvements(zeroRows)
	if n2 != 0 {
		t.Errorf("noise improvement over zero-noise rows = %g, want 0", n2)
	}
}

func TestDeriveBoundsFeasibleOrdering(t *testing.T) {
	spec, _ := SpecByName("c432")
	inst, err := BuildInstance(spec, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := DeriveBounds(inst)
	if b.A0 <= 0 {
		t.Error("A0 not positive")
	}
	if b.NoiseBound <= inst.Coupling.ConstantOffset() {
		t.Error("noise bound below constant offset (infeasible)")
	}
	if b.PowerBound <= inst.Floor.PowerCapFF {
		t.Error("power bound below the floor (infeasible)")
	}
}
