package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netlist"
)

// Generate builds a synthetic combinational netlist with exactly the
// spec's gate, wire (= Σ fan-ins + outputs), input, and output counts and
// approximately its depth. Generation is deterministic in Spec.Seed.
//
// Construction: gates are spread over Depth levels with one "spine" gate
// per level to realize the depth; each gate draws its first fan-in from the
// previous level and any second fan-in from arbitrary earlier levels,
// always preferring so-far-unused outputs so that every primary input and
// internal net ends up consumed. Leftover unused gate outputs become
// primary outputs (topping up with used gates as needed); if more outputs
// remain unused than the spec allows, fan-ins of later gates are rewired
// from multiply-used nets onto the stragglers.
func Generate(spec Spec) (*netlist.Netlist, error) {
	n1 := spec.OneInputGates()
	n2 := spec.TwoInputGates()
	if n1 < 0 || n2 < 0 {
		return nil, fmt.Errorf("bench: spec %s is inconsistent: n1=%d n2=%d", spec.Name, n1, n2)
	}
	if spec.Inputs <= 0 || spec.Outputs <= 0 || spec.Depth < 1 || spec.Gates < spec.Depth {
		return nil, fmt.Errorf("bench: spec %s has invalid interface or depth", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	nl := &netlist.Netlist{Name: spec.Name}
	// Primary inputs occupy indices 0..Inputs-1.
	for i := 0; i < spec.Inputs; i++ {
		nl.Gates = append(nl.Gates, netlist.Gate{Name: fmt.Sprintf("pi%d", i), Type: netlist.Input})
		nl.Inputs = append(nl.Inputs, int32(i))
	}

	// Assign gates to levels 1..Depth: one spine gate per level realizes
	// the depth; the remaining gates taper linearly toward the top
	// (weight ∝ Depth+1−l) so high levels stay thin — gates there have few
	// potential consumers and would otherwise exceed the output budget.
	perLevel := make([]int, spec.Depth+1)
	for l := 1; l <= spec.Depth; l++ {
		perLevel[l] = 1
	}
	cum := make([]int, spec.Depth+1)
	total := 0
	for l := 1; l <= spec.Depth; l++ {
		total += spec.Depth + 1 - l
		cum[l] = total
	}
	for extra := spec.Gates - spec.Depth; extra > 0; extra-- {
		r := rng.Intn(total)
		lo, hi := 1, spec.Depth
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > r {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		perLevel[lo]++
	}

	// Which gates take one input: distribute the n1 single-input gates
	// randomly over non-spine slots when possible (spine gates may be
	// single-input too; depth only needs a fan-in chain).
	oneInput := make([]bool, spec.Gates)
	perm := rng.Perm(spec.Gates)
	for i := 0; i < n1; i++ {
		oneInput[perm[i]] = true
	}

	twoTypes := []netlist.GateType{netlist.Nand, netlist.Nor, netlist.And, netlist.Or}
	if spec.XorHeavy {
		twoTypes = []netlist.GateType{netlist.Xor, netlist.Xnor, netlist.Nand, netlist.And}
	}

	// byLevel[l] lists node indices at level l (level 0 = inputs).
	byLevel := make([][]int32, spec.Depth+1)
	for i := 0; i < spec.Inputs; i++ {
		byLevel[0] = append(byLevel[0], int32(i))
	}
	fanout := make([]int, spec.Inputs+spec.Gates)
	var unused []int32 // outputs with no fanout yet, all levels
	unusedAt := make(map[int32]int)
	for i := 0; i < spec.Inputs; i++ {
		unusedAt[int32(i)] = len(unused)
		unused = append(unused, int32(i))
	}
	level := make([]int, spec.Inputs+spec.Gates)
	removeUnused := func(id int32) {
		pos, ok := unusedAt[id]
		if !ok {
			return
		}
		last := unused[len(unused)-1]
		unused[pos] = last
		unusedAt[last] = pos
		unused = unused[:len(unused)-1]
		delete(unusedAt, id)
	}
	use := func(id int32) {
		fanout[id]++
		removeUnused(id)
	}

	// pickAny returns a fan-in from any level < l, preferring globally
	// unused outputs.
	pickAny := func(l int, not int32) int32 {
		for k := 0; k < 12 && len(unused) > 0; k++ {
			id := unused[rng.Intn(len(unused))]
			if id != not && level[id] < l {
				return id
			}
		}
		for {
			ll := rng.Intn(l)
			cand := byLevel[ll]
			if len(cand) == 0 {
				continue
			}
			id := cand[rng.Intn(len(cand))]
			if id != not {
				return id
			}
		}
	}

	gi := 0
	spine := byLevel[0][rng.Intn(len(byLevel[0]))] // a PI anchors the chain
	for l := 1; l <= spec.Depth; l++ {
		for k := 0; k < perLevel[l]; k++ {
			id := int32(spec.Inputs + gi)
			var g netlist.Gate
			g.Name = fmt.Sprintf("n%d", gi)
			var first int32
			if k == 0 {
				first = spine // the per-level spine gate extends the chain
			} else {
				first = pickAny(l, -1)
			}
			if oneInput[gi] {
				if rng.Intn(4) == 0 {
					g.Type = netlist.Buf
				} else {
					g.Type = netlist.Not
				}
				g.Fanin = []int32{first}
			} else {
				g.Type = twoTypes[rng.Intn(len(twoTypes))]
				second := pickAny(l, first)
				g.Fanin = []int32{first, second}
			}
			use(first)
			if len(g.Fanin) == 2 {
				use(g.Fanin[1])
			}
			level[id] = l
			byLevel[l] = append(byLevel[l], id)
			nl.Gates = append(nl.Gates, g)
			unusedAt[id] = len(unused)
			unused = append(unused, id)
			if k == 0 {
				spine = id
			}
			gi++
		}
	}

	// Rewire stragglers: every unused PI, and unused gates beyond the
	// output budget, steal a fan-in slot from a multiply-used net.
	var unusedPIs, unusedGates []int32
	for _, id := range unused {
		if int(id) < spec.Inputs {
			unusedPIs = append(unusedPIs, id)
		} else {
			unusedGates = append(unusedGates, id)
		}
	}
	// Keep the highest-level unused gates as primary outputs (gates at the
	// last level cannot be rewired — no later gate can consume them) and
	// rewire the lowest-level stragglers.
	sort.Slice(unusedGates, func(a, b int) bool {
		return level[unusedGates[a]] < level[unusedGates[b]]
	})
	excessGates := len(unusedGates) - spec.Outputs
	var toWire []int32
	toWire = append(toWire, unusedPIs...)
	if excessGates > 0 {
		toWire = append(toWire, unusedGates[:excessGates]...)
		unusedGates = unusedGates[excessGates:]
	}
	if len(toWire) > 0 {
		if err := rewire(nl, spec, level, fanout, toWire); err != nil {
			return nil, err
		}
	}

	// Primary outputs: all remaining unused gates, topped up with random
	// high-level gates.
	poSet := map[int32]bool{}
	for _, id := range unusedGates {
		poSet[id] = true
	}
	for l := spec.Depth; l >= 1 && len(poSet) < spec.Outputs; l-- {
		for _, id := range byLevel[l] {
			if len(poSet) >= spec.Outputs {
				break
			}
			poSet[id] = true
		}
	}
	if len(poSet) != spec.Outputs {
		return nil, fmt.Errorf("bench: %s: selected %d outputs, want %d", spec.Name, len(poSet), spec.Outputs)
	}
	for id := range poSet {
		nl.Outputs = append(nl.Outputs, id)
	}

	if err := nl.Finalize(); err != nil {
		return nil, fmt.Errorf("bench: generated %s invalid: %v", spec.Name, err)
	}
	st := nl.Stats()
	if st.Gates != spec.Gates || st.Connections+st.Outputs != spec.Wires ||
		st.Inputs != spec.Inputs || st.Outputs != spec.Outputs {
		return nil, fmt.Errorf("bench: %s: generated stats %+v do not match spec %+v", spec.Name, st, spec)
	}
	return nl, nil
}

// rewire redirects one fan-in of a later gate onto each straggler output,
// choosing victims whose current fan-in net has fanout ≥ 2 so no new
// straggler is created.
func rewire(nl *netlist.Netlist, spec Spec, level []int, fanout []int, stragglers []int32) error {
	for _, s := range stragglers {
		done := false
		for gi := range nl.Gates {
			g := &nl.Gates[gi]
			if g.Type == netlist.Input || level[gi] <= level[s] {
				continue
			}
			// Never rewire fan-in 0: it is the level-(l−1) spine link that
			// realizes the target depth.
			for fi := 1; fi < len(g.Fanin); fi++ {
				f := g.Fanin[fi]
				if fanout[f] < 2 || f == s {
					continue
				}
				dup := false
				for fj, other := range g.Fanin {
					if fj != fi && other == s {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				fanout[f]--
				g.Fanin[fi] = s
				fanout[s]++
				done = true
				break
			}
			if done {
				break
			}
		}
		if !done {
			return fmt.Errorf("bench: %s: could not rewire straggler net %d (level %d of %d, %d stragglers)",
				spec.Name, s, level[s], spec.Depth, len(stragglers))
		}
	}
	return nil
}
