package bench

import (
	"testing"
)

func TestFingerprintCanonical(t *testing.T) {
	zero := PipelineOptions{}
	explicit := PipelineOptions{Patterns: 256, ChannelSize: 10, Pitch: 1.6, OverlapFrac: 0.4, InitSize: 1, WireLengthScale: 1}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Errorf("zero options and spelled-out defaults fingerprint differently:\n%s\n%s",
			zero.Fingerprint(), explicit.Fingerprint())
	}
	scaled := PipelineOptions{WireLengthScale: 8}
	if zero.Fingerprint() == scaled.Fingerprint() {
		t.Error("WireLengthScale=8 fingerprints like the default")
	}
}

func TestKeysDistinguishInputs(t *testing.T) {
	raw := []byte("INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")
	base := NetlistKey(raw, 17, PipelineOptions{})
	if k := NetlistKey(raw, 18, PipelineOptions{}); k == base {
		t.Error("seed change did not change the netlist key")
	}
	if k := NetlistKey(append([]byte("# c\n"), raw...), 17, PipelineOptions{}); k == base {
		t.Error("netlist change did not change the key")
	}
	if k := NetlistKey(raw, 17, PipelineOptions{WireLengthScale: 8}); k == base {
		t.Error("pipeline change did not change the key")
	}
	if k := NetlistKey(raw, 17, PipelineOptions{}); k != base {
		t.Error("identical inputs produced different keys")
	}

	spec, _ := SpecByName("c432")
	sk := SpecKey(spec, PipelineOptions{})
	spec2 := spec
	spec2.Seed++
	if SpecKey(spec2, PipelineOptions{}) == sk {
		t.Error("spec seed change did not change the spec key")
	}
	if SpecKey(spec, PipelineOptions{}) != sk {
		t.Error("identical specs produced different keys")
	}
}

// TestReplicaMatchesInstance checks that a replica starts from the
// instance's sizes on the shared graph, and that mutating the replica
// leaves the instance evaluator untouched.
func TestReplicaMatchesInstance(t *testing.T) {
	spec, _ := SpecByName("c432")
	inst, err := BuildInstance(spec, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := inst.Replica()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph() != inst.Eval.Graph() || rep.Couplings() != inst.Eval.Couplings() {
		t.Fatal("replica does not share the instance graph/coupling set")
	}
	for i := range rep.X {
		if rep.X[i] != inst.Eval.X[i] {
			t.Fatalf("replica size %d = %g, instance has %g", i, rep.X[i], inst.Eval.X[i])
		}
	}
	rep.SetAllSizes(0.1)
	rep.Recompute()
	for i := range inst.Eval.X {
		if g := inst.Eval.Graph(); g.Comp(i).Kind.Sizable() && inst.Eval.X[i] == 0.1 {
			t.Fatal("mutating the replica changed the instance evaluator")
		}
	}
}
