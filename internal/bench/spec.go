package bench

// Spec describes one benchmark circuit by its published statistics. Gates
// and Wires are the paper's Table-1 "#G" and "#W"; Inputs/Outputs are the
// real ISCAS85 interface sizes; Depth is the approximate logic depth.
//
// The identity Wires = Σ gate fan-ins + Outputs pins the fan-in mix: with
// n₁ one-input and n₂ two-input gates, n₂ = Wires − Outputs − Gates and
// n₁ = Gates − n₂, both non-negative for every ISCAS85 member.
type Spec struct {
	Name    string
	Gates   int
	Wires   int
	Inputs  int
	Outputs int
	Depth   int
	// XorHeavy biases the two-input gate mix toward XOR/XNOR, matching the
	// parity and multiplier circuits (c499, c1355, c6288).
	XorHeavy bool
	// Seed makes generation deterministic per circuit.
	Seed int64
}

// OneInputGates returns n₁, the number of BUF/NOT gates needed to satisfy
// the wire-count identity.
func (s Spec) OneInputGates() int { return 2*s.Gates - (s.Wires - s.Outputs) }

// TwoInputGates returns n₂ = Gates − n₁.
func (s Spec) TwoInputGates() int { return s.Wires - s.Outputs - s.Gates }

// Components returns the paper's "tot" column: gates plus wires.
func (s Spec) Components() int { return s.Gates + s.Wires }

// ISCAS85 lists the ten circuits of Table 1 in the paper's (alphabetical)
// row order.
var ISCAS85 = []Spec{
	{Name: "c1355", Gates: 546, Wires: 1064, Inputs: 41, Outputs: 32, Depth: 24, XorHeavy: true, Seed: 1355},
	{Name: "c1908", Gates: 880, Wires: 1498, Inputs: 33, Outputs: 25, Depth: 40, Seed: 1908},
	{Name: "c2670", Gates: 1193, Wires: 2076, Inputs: 233, Outputs: 140, Depth: 32, Seed: 2670},
	{Name: "c3540", Gates: 1669, Wires: 2939, Inputs: 50, Outputs: 22, Depth: 47, Seed: 3540},
	{Name: "c432", Gates: 214, Wires: 426, Inputs: 36, Outputs: 7, Depth: 17, Seed: 432},
	{Name: "c499", Gates: 514, Wires: 928, Inputs: 41, Outputs: 32, Depth: 11, XorHeavy: true, Seed: 499},
	{Name: "c5315", Gates: 2307, Wires: 4386, Inputs: 178, Outputs: 123, Depth: 49, Seed: 5315},
	{Name: "c6288", Gates: 2416, Wires: 4800, Inputs: 32, Outputs: 32, Depth: 124, XorHeavy: true, Seed: 6288},
	{Name: "c7552", Gates: 3512, Wires: 6144, Inputs: 207, Outputs: 108, Depth: 43, Seed: 7552},
	{Name: "c880", Gates: 383, Wires: 729, Inputs: 60, Outputs: 26, Depth: 24, Seed: 880},
}

// SpecByName returns the ISCAS85 spec with the given name, or false.
func SpecByName(name string) (Spec, bool) {
	for _, s := range ISCAS85 {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
