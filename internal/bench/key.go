package bench

// Instance identity and reuse hooks for long-running callers (the sizing
// service, batch drivers): a cached Instance is worth reusing only when
// every input that shaped it — the netlist, the geometry seed, and the
// whole pipeline configuration — is identical, so the cache key must cover
// all of them. The fingerprints below are canonical (defaults are filled
// before encoding, floats print shortest-round-trip), so two option values
// that elaborate identically hash identically.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/rc"
)

// Fingerprint returns a canonical text encoding of the pipeline options.
// Defaults are filled first, so the zero value and an explicit
// spelled-out default produce the same fingerprint; float fields use the
// shortest round-trippable representation, so distinct values never
// collide. The encoding is stable input to the instance cache keys
// (NetlistKey, SpecKey) — changing it invalidates every cached instance,
// nothing more.
func (o PipelineOptions) Fingerprint() string {
	o.fill()
	return fmt.Sprintf("tech=%v|patterns=%d|channel=%d|pitch=%v|overlap=%v|ordering=%d|simweights=%t|init=%v|wls=%v",
		*o.Tech, o.Patterns, o.ChannelSize, o.Pitch, o.OverlapFrac,
		o.Ordering, o.SimilarityWeights, o.InitSize, o.WireLengthScale)
}

// NetlistKey is the instance-cache key for a parsed netlist upload: a
// SHA-256 over the raw netlist bytes, the geometry seed, and the pipeline
// fingerprint. Identical uploads with identical settings elaborate to
// bit-identical instances (every pipeline stage is deterministic in these
// inputs), so one cached instance can serve them all.
func NetlistKey(raw []byte, seed int64, opt PipelineOptions) string {
	h := sha256.New()
	h.Write(raw)
	fmt.Fprintf(h, "|seed=%d|%s", seed, opt.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))
}

// SpecKey is the instance-cache key for a synthetic circuit: a SHA-256
// over the full spec (name, statistics, seed) and the pipeline
// fingerprint.
func SpecKey(spec Spec, opt PipelineOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "spec=%+v|%s", spec, opt.Fingerprint())
	return hex.EncodeToString(h.Sum(nil))
}

// GridKey is the instance-cache key for a GridInstance mesh: a SHA-256
// over the mesh shape. The construction has no other inputs (no seed, no
// pipeline options), so the shape alone identifies the instance bitwise
// across processes — the property the distributed sizing farm leans on
// when a worker materializes its own replica of a coordinator's circuit.
func GridKey(width, layers int, coupled bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "grid|width=%d|layers=%d|coupled=%t", width, layers, coupled)
	return hex.EncodeToString(h.Sum(nil))
}

// Replica returns a fresh evaluator over the instance's shared circuit
// graph and coupling set, seeded with the instance evaluator's current
// sizes (the Init uniform sizes unless the caller mutated them). Solves
// mutate their evaluator, so concurrent or repeated solves against one
// cached instance should each run on a replica — exactly how the sweep
// engine shares one instance across a bounds grid — leaving the
// instance's own evaluator (and with it DeriveBounds) untouched. The
// graph and coupling set are read-only after construction and safe to
// share between replicas.
func (inst *Instance) Replica() (*rc.Evaluator, error) {
	ev, err := rc.NewEvaluator(inst.Eval.Graph(), inst.Eval.Couplings())
	if err != nil {
		return nil, err
	}
	if err := ev.SetSizes(inst.Eval.X); err != nil {
		return nil, err
	}
	return ev, nil
}

// PerturbedReplica is Replica under a technology perturbation: a fresh
// solo evaluator whose per-node constants are the instance's scaled by p
// (rc.Perturb — R/C/threshold corner scalars), seeded with the instance
// evaluator's current sizes. The structural arrays (graph, coupling CSR,
// level buckets) are shared with the instance's evaluator; only the
// constant stripes are re-derived, so a corner or Monte-Carlo sample
// costs a constant stripe set, not a new elaboration.
func (inst *Instance) PerturbedReplica(p rc.Perturb) (*rc.Evaluator, error) {
	ev, err := inst.Eval.ScaledReplica(p)
	if err != nil {
		return nil, err
	}
	if err := ev.SetSizes(inst.Eval.X); err != nil {
		return nil, err
	}
	return ev, nil
}

// PerturbedBatch is ReplicaBatch with one perturbation per replica:
// replica r evaluates the instance under perturbs[r]. Each batch replica
// is bit-identical to the solo PerturbedReplica of the same perturbation
// (the rc.Batch contract extended over scaled topologies), which is the
// determinism anchor of the Monte-Carlo evaluator mode.
func (inst *Instance) PerturbedBatch(perturbs []rc.Perturb) (*rc.Batch, error) {
	b, err := rc.NewScaledBatch(inst.Eval.Graph(), inst.Eval.Couplings(), perturbs)
	if err != nil {
		return nil, err
	}
	for r := 0; r < b.Len(); r++ {
		if err := b.Ev(r).SetSizes(inst.Eval.X); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// ReplicaBatch is Replica for lockstep multi-solve: a k-replica rc.Batch
// over the instance's shared graph and coupling set, every replica seeded
// with the instance evaluator's current sizes. The batch shares one
// topology (the point of lockstep) but each replica's state stripes are
// its own, so the k replicas are as independent as k Replica evaluators —
// and each is bit-identical to one (see rc.Batch). The instance's own
// evaluator stays untouched.
func (inst *Instance) ReplicaBatch(k int) (*rc.Batch, error) {
	b, err := rc.NewBatch(inst.Eval.Graph(), inst.Eval.Couplings(), k)
	if err != nil {
		return nil, err
	}
	for r := 0; r < k; r++ {
		if err := b.Ev(r).SetSizes(inst.Eval.X); err != nil {
			return nil, err
		}
	}
	return b, nil
}
