package bench

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/rc"
)

// Grid builds a deterministic width×layers gate/wire mesh for scaling
// studies of the levelized timing propagation: each layer is one rank of
// width wires feeding width gates (every gate fans in from two adjacent
// wires, so fan-in and fan-out both exceed one), with optional coupling
// pairs between horizontally adjacent wires. The depth is Θ(layers) and
// every topological level holds Θ(width) nodes, so width controls how much
// parallelism each level exposes and layers controls how many level
// barriers a pass crosses — the two axes that bound levelized speedup.
//
// The node count is width·(2·layers+2)+2: width drivers, width wires plus
// width gates per layer, and width output wires. Grid(64, 78, …) is the
// smallest ≥10k-node instance with square-ish aspect.
func Grid(width, layers int, coupled bool) (*circuit.Graph, *coupling.Set, error) {
	if width < 2 || layers < 1 {
		return nil, nil, fmt.Errorf("bench: Grid needs width ≥ 2 and layers ≥ 1, got %d×%d", width, layers)
	}
	b := circuit.NewBuilder()
	prev := make([]int, width)
	for i := 0; i < width; i++ {
		prev[i] = b.AddDriver("D", 80+float64(7*i%40))
	}
	wires := make([][]int, layers) // builder ids, per layer
	for l := 0; l < layers; l++ {
		wires[l] = make([]int, width)
		for i := 0; i < width; i++ {
			w := b.AddWire("w",
				8+float64((l*7+i*3)%13),    // rUnit
				1+0.5*float64((i+l)%4),     // cUnit
				0.05+0.01*float64(i%5),     // fringe
				30+float64((l*11+i*17)%60), // length
				1, 0.1, 10)
			b.Connect(prev[i], w)
			wires[l][i] = w
		}
		for i := 0; i < width; i++ {
			g := b.AddGate("g",
				15+float64((l*5+i*2)%20), // rUnit
				0.4+0.1*float64((l+i)%3), // cUnit
				2+float64((i*3+l)%5),     // areaCoeff
				0.1, 10)
			b.Connect(wires[l][i], g)
			b.Connect(wires[l][(i+1)%width], g)
			prev[i] = g
		}
	}
	for i := 0; i < width; i++ {
		w := b.AddWire("wo", 6, 1, 0.05, 25, 1, 0.1, 10)
		b.Connect(prev[i], w)
		b.MarkOutput(w, 4+float64(i%3))
	}
	g, id, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	var pairs []coupling.Pair
	if coupled {
		for l := 0; l < layers; l++ {
			for i := 0; i+1 < width; i++ {
				pi, pj := id[wires[l][i]], id[wires[l][i+1]]
				if pi > pj {
					pi, pj = pj, pi
				}
				pairs = append(pairs, coupling.Pair{
					I: pi, J: pj,
					CTilde: 2 + float64((l+i)%5),
					Dist:   2 + 0.2*float64(i%3),
					Weight: 0.5 + 0.5*float64((i+l)%2),
				})
			}
		}
	}
	cs, err := coupling.NewSet(pairs)
	if err != nil {
		return nil, nil, err
	}
	return g, cs, nil
}

// GridInstance wraps a Grid mesh in an Instance together with
// self-calibrated bounds, the exact construction the committed sweep
// golden fixture (internal/sweep/testdata/golden_grid.json) was generated
// from: the delay bound is the uniform-size critical path, and the noise
// and power bounds leave 40% headroom over the all-minimum-size floor.
// The construction is deterministic in (width, layers, coupled), so every
// process that materializes the same mesh — test, coordinator, or farm
// worker — holds a bit-identical instance; GridKey is the matching cache
// key. Only the sweep-relevant Instance fields are populated (Spec name,
// Coupling, Eval): grid meshes skip the netlist pipeline, so callers must
// use the returned bounds instead of DeriveBounds.
func GridInstance(width, layers int, coupled bool) (*Instance, Bounds, error) {
	g, cs, err := Grid(width, layers, coupled)
	if err != nil {
		return nil, Bounds{}, err
	}
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		return nil, Bounds{}, err
	}
	ev.SetAllSizes(1)
	ev.Recompute()
	a0 := ev.MaxArrival()
	ev.SetAllSizes(0.1)
	ev.Recompute()
	b := Bounds{
		A0:         a0,
		NoiseBound: 1.4*ev.NoiseLinear() + cs.ConstantOffset(),
		PowerBound: 1.4 * ev.TotalCap(),
	}
	ev.SetAllSizes(1)
	ev.Recompute()
	inst := &Instance{
		Spec:     Spec{Name: "grid-mesh"},
		Coupling: cs,
		Eval:     ev,
	}
	return inst, b, nil
}
