package bench

import (
	"repro/internal/fanout"
)

// RunTable1Parallel is RunTable1 with the specs built and solved
// concurrently on at most workers goroutines (0 selects
// runtime.GOMAXPROCS(0)). Rows come back in spec order; if any specs fail,
// the lowest-index error is returned after all in-flight rows finish.
//
// Each spec's full pipeline — netlist generation, logic simulation,
// elaboration, wire ordering, coupling extraction, and the OGWS solve —
// runs on one goroutine, so the sweep scales across circuits rather than
// within one. Unless opt.Workers is set explicitly, every solver runs with
// Workers == 1 to keep the machine's cores on distinct circuits instead of
// oversubscribing them; either way each row is bit-identical to its serial
// RunRow counterpart.
func RunTable1Parallel(specs []Spec, opt RunOptions, workers int) ([]*Table1Row, error) {
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	rows := make([]*Table1Row, len(specs))
	errs := make([]error, len(specs))
	fanout.Each(len(specs), workers, func(i int) {
		rows[i], errs[i] = RunRow(specs[i], opt)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
