// Package bench is the experiment substrate: a calibrated synthetic
// generator for ISCAS85-class circuits (the paper's benchmarks are not
// redistributable and the environment is offline; see DESIGN.md §4), the
// two-stage flow pipeline (wire ordering + LR sizing), and harnesses that
// regenerate Table 1 and Figure 10.
//
// The central artifact is the Instance: a netlist run through the full
// deterministic front end (logic simulation, elaboration, channel
// formation, stage-1 wire ordering, coupling extraction, evaluator setup)
// and ready for any number of solves. Building one is the expensive part
// of a sizing request, so the reuse hooks exist to pay it once:
// NetlistKey/SpecKey hash every input that shapes an instance (netlist
// bytes or spec, geometry seed, the PipelineOptions fingerprint) into a
// cache key, and Instance.Replica hands each solve a fresh evaluator over
// the shared read-only graph and coupling set — the discipline both the
// sweep engine and the sizing service follow. DeriveBounds self-calibrates
// the standard experiment bounds from the instance's Init and Floor
// measurements.
//
// RunTable1/RunTable1Parallel and the Grid mesh generator drive the
// committed benchmarks; everything is deterministic in (spec, seed,
// options), which is what makes the golden fixtures and the instance
// cache sound.
package bench
