package bench

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/coupling"
	"repro/internal/layout"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/order"
	"repro/internal/rc"
	"repro/internal/tech"
)

// CalibratedTech returns the technology parameters used for the Table-1 /
// Figure-10 reproduction. Electrical unit values are the paper's
// (Section 5); the remaining constants — fringe, coupling fringe, driver
// resistance, output load — are not stated in the paper and are calibrated
// so the circuits behave as Table 1 reports (near size-invariant delay,
// power floor ≈ 13% of the initial value; see EXPERIMENTS.md).
func CalibratedTech() tech.Params {
	p := tech.Default()
	p.WireFringe = 0.0002   // fF/µm
	p.CouplingFringe = 0.01 // fF/µm at 1 µm spacing
	p.DriverResistance = 25
	p.LoadCapacitance = 2
	return p
}

// Ordering selects the stage-1 wire-ordering policy for track assignment.
type Ordering int

const (
	// OrderWOSS is the paper's similarity-driven heuristic (stage 1).
	OrderWOSS Ordering = iota
	// OrderIdentity keeps the arbitrary initial track assignment.
	OrderIdentity
	// OrderRandom shuffles tracks (ablation baseline).
	OrderRandom
)

// PipelineOptions configures instance construction.
type PipelineOptions struct {
	// Tech defaults to CalibratedTech().
	Tech *tech.Params
	// Patterns is the number of logic-simulation vectors for the
	// switching-similarity analysis (default 256).
	Patterns int
	// ChannelSize is the number of wires per routing channel (default 10).
	ChannelSize int
	// Pitch (µm, default 1.6), OverlapFrac (default 0.4) describe channel
	// geometry.
	Pitch       float64
	OverlapFrac float64
	// Ordering is the stage-1 policy (default OrderWOSS).
	Ordering Ordering
	// SimilarityWeights applies the Miller/anti-Miller effective weight
	// 1−similarity to every coupled pair (the paper's Equation 1 model);
	// false uses the purely physical stage-2 accounting of Section 4.
	SimilarityWeights bool
	// InitSize is the pre-optimization uniform size (default 1.0 µm).
	InitSize float64
	// WireLengthScale multiplies the synthetic routed lengths (default 1:
	// 30–90 µm local wires). Larger scales model global interconnect,
	// where wire resistance rivals gate resistance and the paper's wire
	// sizing — and hence the noise constraint — has the most leverage.
	WireLengthScale float64
}

func (o *PipelineOptions) fill() {
	if o.Tech == nil {
		p := CalibratedTech()
		o.Tech = &p
	}
	if o.Patterns <= 0 {
		o.Patterns = 256
	}
	if o.ChannelSize <= 1 {
		o.ChannelSize = 10
	}
	if o.Pitch <= 0 {
		o.Pitch = 1.6
	}
	if o.OverlapFrac <= 0 || o.OverlapFrac > 1 {
		o.OverlapFrac = 0.4
	}
	if o.InitSize <= 0 {
		o.InitSize = 1
	}
	if o.WireLengthScale <= 0 {
		o.WireLengthScale = 1
	}
}

// Instance is a fully elaborated benchmark circuit ready for sizing.
type Instance struct {
	Spec     Spec
	Tech     tech.Params
	Netlist  *netlist.Netlist
	Elab     *netlist.Elaboration
	Coupling *coupling.Set
	Eval     *rc.Evaluator
	// Init is the uniform-size starting point (the Table-1 "Init"
	// columns); the evaluator holds these sizes after BuildInstance.
	Init baseline.Metrics
	// Floor is the all-minimum-size measurement used to self-calibrate
	// feasible bounds.
	Floor baseline.Metrics
	// OrderingCost sums the SS objective over all channels for the chosen
	// stage-1 policy.
	OrderingCost float64
}

// splitmix64 is a tiny deterministic hash for per-wire geometry.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// wireLength returns a deterministic pseudo-random routed length in
// [30, 90) µm for the connection (from, to, branch).
func wireLength(seed int64, from, to, branch int) float64 {
	h := splitmix64(uint64(seed)*0x100000001b3 ^ uint64(from)<<40 ^ uint64(to+1)<<17 ^ uint64(branch))
	u := float64(h>>11) / float64(1<<53)
	return 30 + 60*u
}

// BuildInstance runs the full front end for a spec: netlist generation,
// logic simulation, elaboration, channel formation, stage-1 wire ordering,
// coupling extraction, and evaluator setup at the uniform initial size.
func BuildInstance(spec Spec, opt PipelineOptions) (*Instance, error) {
	nl, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	return Assemble(spec, nl, opt)
}

// AssembleNetlist runs the same front end on an arbitrary (e.g. parsed)
// netlist, deriving the spec from its statistics.
func AssembleNetlist(nl *netlist.Netlist, seed int64, opt PipelineOptions) (*Instance, error) {
	st := nl.Stats()
	spec := Spec{
		Name:    nl.Name,
		Gates:   st.Gates,
		Wires:   st.Connections + st.Outputs,
		Inputs:  st.Inputs,
		Outputs: st.Outputs,
		Depth:   st.Depth,
		Seed:    seed,
	}
	return Assemble(spec, nl, opt)
}

// Assemble performs simulation, elaboration, ordering, coupling extraction,
// and evaluator setup for a given netlist.
func Assemble(spec Spec, nl *netlist.Netlist, opt PipelineOptions) (*Instance, error) {
	opt.fill()
	waves, err := logicsim.Simulate(nl, opt.Patterns, spec.Seed^0x51b)
	if err != nil {
		return nil, err
	}
	elab, err := netlist.Elaborate(nl, netlist.ElabOptions{
		Tech: *opt.Tech,
		WireLength: func(from, to, branch int) float64 {
			return opt.WireLengthScale * wireLength(spec.Seed, from, to, branch)
		},
	})
	if err != nil {
		return nil, err
	}
	g := elab.Graph

	// Channels: deterministic shuffle of all wires, chunked.
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x77))
	wires := append([]int32(nil), g.Wires()...)
	rng.Shuffle(len(wires), func(i, j int) { wires[i], wires[j] = wires[j], wires[i] })
	var channels []layout.Channel
	for start := 0; start < len(wires); start += opt.ChannelSize {
		end := start + opt.ChannelSize
		if end > len(wires) {
			end = len(wires)
		}
		if end-start < 2 {
			break // a singleton channel has no coupling
		}
		channels = append(channels, layout.Channel{
			Wires:       wires[start:end],
			Pitch:       opt.Pitch,
			Fringe:      opt.Tech.CouplingFringe,
			OverlapFrac: opt.OverlapFrac,
		})
	}

	// Stage 1: track assignment per channel.
	sim := func(a, b int32) float64 {
		return waves.Similarity(elab.NetOf[a], elab.NetOf[b])
	}
	orderings := make([][]int, len(channels))
	totalCost := 0.0
	for ci, ch := range channels {
		m := order.NewMatrix(len(ch.Wires))
		for a := 0; a < len(ch.Wires); a++ {
			for b := a + 1; b < len(ch.Wires); b++ {
				m.Set(a, b, 1-sim(ch.Wires[a], ch.Wires[b]))
			}
		}
		switch opt.Ordering {
		case OrderIdentity:
			orderings[ci] = layout.IdentityOrder(len(ch.Wires))
		case OrderRandom:
			orderings[ci] = order.Random(len(ch.Wires), spec.Seed^int64(ci))
		default:
			orderings[ci] = order.WOSS(m)
		}
		totalCost += order.Cost(m, orderings[ci])
	}

	var weight func(a, b int32) float64
	if opt.SimilarityWeights {
		weight = func(a, b int32) float64 { return layout.SimilarityWeight(sim(a, b)) }
	}
	cs, err := layout.AllPairs(g, channels, orderings, weight)
	if err != nil {
		return nil, err
	}
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		return nil, err
	}

	inst := &Instance{
		Spec: spec, Tech: *opt.Tech, Netlist: nl, Elab: elab, Coupling: cs, Eval: ev,
		OrderingCost: totalCost,
	}
	inst.Floor = baseline.Uniform(ev, opt.Tech.MinSize)
	inst.Init = baseline.Uniform(ev, opt.InitSize)
	return inst, nil
}

// Bounds derives the self-calibrated experiment bounds from the instance's
// Init and Floor measurements:
//
//	A0 = delayFactor·InitDelay      (paper: ≈5% delay improvement)
//	X′ = noiseMargin·FloorNoise     (floor = all sizes at minimum)
//	P′ = powerMargin·FloorPower
//
// and converts X′ into the solver's X_B by adding the constant coupling
// offset. Margins above 1 keep headroom for the delay-critical components
// that stay above minimum size.
type Bounds struct {
	A0         float64
	NoiseBound float64 // X_B (fF), 0 when disabled
	PowerBound float64 // P′ (fF), 0 when disabled
}

// DeriveBounds computes the standard Table-1 bounds for an instance.
func DeriveBounds(inst *Instance) Bounds {
	return Bounds{
		A0:         1.0 * inst.Init.DelayPs,
		NoiseBound: 1.25*inst.Floor.NoiseLinFF + inst.Coupling.ConstantOffset(),
		PowerBound: 1.25 * inst.Floor.PowerCapFF,
	}
}
