package bench

import (
	"math"
	"time"

	"repro/internal/core"
)

// Table1Row holds one row of the paper's Table 1: initial and final noise
// (pF), delay (ps), power (mW), and area (µm²), plus iteration count,
// wall time, and memory.
type Table1Row struct {
	Name              string
	Gates, Wires, Tot int

	InitNoisePF, FinNoisePF float64
	InitDelayPs, FinDelayPs float64
	InitPowerMW, FinPowerMW float64
	InitAreaUM2, FinAreaUM2 float64

	Iterations int
	TimeSec    float64
	MemKB      float64
	Converged  bool
	Gap        float64
	// SecPerIter and MemMB feed Figure 10 directly.
	SecPerIter float64
	MemMB      float64
}

// RunOptions configures a Table-1 run.
type RunOptions struct {
	Pipeline PipelineOptions
	// MaxIterations caps the OGWS outer loop (0 = solver default).
	MaxIterations int
	// Epsilon is the duality-gap / feasibility precision (0 = 1%, as in
	// the paper).
	Epsilon float64
	// WarmStart reuses sizes across OGWS iterations (see core.Options).
	WarmStart bool
	// Workers is the solver's parallel width (see core.Options.Workers):
	// 0 uses every core, 1 runs serially. Results are bit-identical for
	// every setting.
	Workers int
	// Lockstep routes each solve through the lockstep batch path
	// (core.SolveBatchOpt with BatchOptions.Lockstep). Table-1 rows are
	// different circuits, so each solve is a one-replica batch — this
	// exercises the exact plumbing a sweep's many-replica lockstep uses,
	// and by the lockstep contract every row is bit-identical to its solo
	// solve. Workers carries the batched-round width.
	Lockstep bool
	// Bounds overrides the self-calibrated DeriveBounds when non-nil.
	Bounds *Bounds
}

// RunRow builds the instance for one spec and runs the full two-stage flow,
// returning the Table-1 row.
func RunRow(spec Spec, opt RunOptions) (*Table1Row, error) {
	inst, err := BuildInstance(spec, opt.Pipeline)
	if err != nil {
		return nil, err
	}
	return RunInstance(inst, opt)
}

// RunInstance runs stage 2 (OGWS sizing) on a prebuilt instance.
func RunInstance(inst *Instance, opt RunOptions) (*Table1Row, error) {
	b := DeriveBounds(inst)
	if opt.Bounds != nil {
		b = *opt.Bounds
	}
	sopt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	if opt.MaxIterations > 0 {
		sopt.MaxIterations = opt.MaxIterations
	}
	if opt.Epsilon > 0 {
		sopt.Epsilon = opt.Epsilon
	}
	sopt.WarmStart = opt.WarmStart
	sopt.Workers = opt.Workers

	var res *core.Result
	start := time.Now()
	if opt.Lockstep {
		br := core.SolveBatchOpt(
			[]core.BatchJob{{Ev: inst.Eval, Options: sopt}},
			core.BatchOptions{Workers: opt.Workers, Lockstep: true},
		)[0]
		if br.Err != nil {
			return nil, br.Err
		}
		res = br.Result
		// Lockstep solves run on a replica; mirror the final sizes back so
		// the instance evaluator ends in the same state a solo solve leaves
		// it in (Run restores the best sizes before returning).
		if err := inst.Eval.SetSizes(res.X); err != nil {
			return nil, err
		}
	} else {
		sol, err := core.NewSolver(inst.Eval, sopt)
		if err != nil {
			return nil, err
		}
		defer sol.Close()
		if res, err = sol.Run(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()

	p := inst.Tech
	row := &Table1Row{
		Name:  inst.Spec.Name,
		Gates: inst.Spec.Gates, Wires: inst.Spec.Wires, Tot: inst.Spec.Components(),
		InitNoisePF: inst.Init.NoiseLinFF / 1000, FinNoisePF: res.NoiseLinFF / 1000,
		InitDelayPs: inst.Init.DelayPs, FinDelayPs: res.DelayPs,
		InitPowerMW: p.Power(inst.Init.PowerCapFF), FinPowerMW: p.Power(res.PowerCapFF),
		InitAreaUM2: inst.Init.Area, FinAreaUM2: res.Area,
		Iterations: res.Iterations,
		TimeSec:    elapsed,
		MemKB:      float64(res.MemoryBytes) / 1024,
		MemMB:      float64(res.MemoryBytes) / (1024 * 1024),
		Converged:  res.Converged,
		Gap:        res.Gap,
	}
	if res.Iterations > 0 {
		row.SecPerIter = elapsed / float64(res.Iterations)
	}
	return row, nil
}

// RunTable1 runs every spec and returns the rows in the paper's order.
func RunTable1(specs []Spec, opt RunOptions) ([]*Table1Row, error) {
	rows := make([]*Table1Row, 0, len(specs))
	for _, s := range specs {
		row, err := RunRow(s, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Improvements returns the average percentage improvements
// (Init−Fin)/Init·100 across rows for noise, delay, power, and area — the
// paper's "Impr(%)" summary line (89.67%, 5.3%, 86.82%, 87.90%). Each
// metric averages only over the rows where it is defined: a zero or
// non-finite initial value — an uncoupled circuit has zero initial
// noise — has no relative improvement, and a non-finite final value has
// no defined one either; folding any of them in would poison the whole
// summary with NaN/Inf. A metric with no defined rows reports 0.
func Improvements(rows []*Table1Row) (noise, delay, power, area float64) {
	var sums [4]float64
	var counts [4]int
	add := func(m int, init, fin float64) {
		if init == 0 || math.IsNaN(init) || math.IsInf(init, 0) ||
			math.IsNaN(fin) || math.IsInf(fin, 0) {
			return
		}
		sums[m] += (init - fin) / init
		counts[m]++
	}
	for _, r := range rows {
		add(0, r.InitNoisePF, r.FinNoisePF)
		add(1, r.InitDelayPs, r.FinDelayPs)
		add(2, r.InitPowerMW, r.FinPowerMW)
		add(3, r.InitAreaUM2, r.FinAreaUM2)
	}
	avg := func(m int) float64 {
		if counts[m] == 0 {
			return 0
		}
		return 100 * sums[m] / float64(counts[m])
	}
	return avg(0), avg(1), avg(2), avg(3)
}

// Figure10Point is one sample of Figure 10: memory (a) and runtime per
// iteration (b) versus circuit size.
type Figure10Point struct {
	Name       string
	Tot        int
	MemMB      float64
	SecPerIter float64
}

// Figure10 extracts both series from Table-1 rows, sorted by circuit size
// as in the paper's plots.
func Figure10(rows []*Table1Row) []Figure10Point {
	pts := make([]Figure10Point, len(rows))
	for i, r := range rows {
		pts[i] = Figure10Point{Name: r.Name, Tot: r.Tot, MemMB: r.MemMB, SecPerIter: r.SecPerIter}
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[j].Tot < pts[i].Tot {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
	return pts
}
