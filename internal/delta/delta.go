// Package delta is a version-cursored progress log: the streaming layer
// that lets a client watch a 200-iteration Lagrangian ascent converge
// live instead of staring at a silent connection.
//
// A Log is an append-only sequence of JSON events, each stamped with a
// monotonically increasing version (from 1). Readers hold a cursor — the
// highest version they have seen — and ask for everything After it;
// Wait parks until the log grows past the cursor, the log closes, or the
// context ends, using the same close-and-replace wake-channel idiom as
// the farm coordinator. Only the most recent Retain events are kept: a
// slow consumer whose cursor has fallen off the ring is told so
// explicitly (gapped) rather than silently fed a hole, and can resync
// from the oldest retained event.
//
// A Hub multiplexes Logs by key (one per circuit in the service), so
// GET /watch?key=… attaches to the right stream without the service
// tracking subscribers itself.
package delta

import (
	"context"
	"encoding/json"
	"sync"
)

// DefaultRetain is the per-log ring size when Options.Retain is 0: deep
// enough to hold a full default solve (MaxIterations 1000) of iteration
// events plus markers.
const DefaultRetain = 2048

// Event is one versioned entry in a Log.
type Event struct {
	Version uint64          `json:"v"`
	Data    json.RawMessage `json:"data"`
}

// Log is a bounded, version-cursored event log. Safe for concurrent use;
// create with NewLog.
type Log struct {
	mu     sync.Mutex
	retain int
	events []Event // ring contents in version order; len ≤ retain
	next   uint64  // version the next Append gets
	wake   chan struct{}
	closed bool
}

// NewLog creates a Log retaining the most recent retain events (0 selects
// DefaultRetain).
func NewLog(retain int) *Log {
	if retain <= 0 {
		retain = DefaultRetain
	}
	return &Log{retain: retain, next: 1, wake: make(chan struct{})}
}

// Append adds data as the next event and returns its version. Appending
// to a closed log is a no-op returning the last assigned version.
func (l *Log) Append(data json.RawMessage) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.next - 1
	}
	ev := Event{Version: l.next, Data: append(json.RawMessage(nil), data...)}
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > l.retain {
		// Drop the oldest; copy down so the backing array doesn't pin
		// evicted events forever.
		n := copy(l.events, l.events[len(l.events)-l.retain:])
		l.events = l.events[:n]
	}
	close(l.wake)
	l.wake = make(chan struct{})
	return ev.Version
}

// AppendJSON marshals v and appends it, returning the version (0 and an
// error if v does not marshal).
func (l *Log) AppendJSON(v any) (uint64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	return l.Append(data), nil
}

// After returns every retained event with Version > cursor, in order.
// gapped reports that events between cursor and the first returned one
// were evicted (the caller missed some and should treat the stream as
// resynced, not contiguous). done reports the log is closed — once the
// returned events are consumed there will never be more.
func (l *Log) After(cursor uint64) (events []Event, gapped bool, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.next - uint64(len(l.events)) // version of events[0]; == next when empty
	if cursor+1 < oldest {
		gapped = true
	}
	for _, ev := range l.events {
		if ev.Version > cursor {
			events = append(events, ev)
		}
	}
	return events, gapped, l.closed
}

// Wait blocks until the log holds events past cursor, the log is closed,
// or ctx ends; it then returns as After does (with ctx.Err() if the
// context ended first).
func (l *Log) Wait(ctx context.Context, cursor uint64) (events []Event, gapped bool, done bool, err error) {
	for {
		l.mu.Lock()
		wake := l.wake
		closed := l.closed
		l.mu.Unlock()
		events, gapped, done = l.After(cursor)
		if len(events) > 0 || closed {
			return events, gapped, done, nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, false, false, ctx.Err()
		}
	}
}

// Version returns the version of the most recent event (0 if none yet).
func (l *Log) Version() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Close marks the log complete and wakes every waiter. Further Appends
// are no-ops; readers drain the retained tail and see done.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// Hub multiplexes Logs by string key. Safe for concurrent use.
type Hub struct {
	mu     sync.Mutex
	retain int
	logs   map[string]*Log
}

// NewHub creates a Hub whose logs retain the most recent retain events
// each (0 selects DefaultRetain).
func NewHub(retain int) *Hub {
	return &Hub{retain: retain, logs: map[string]*Log{}}
}

// Log returns the log for key, creating it on first use.
func (h *Hub) Log(key string) *Log {
	h.mu.Lock()
	defer h.mu.Unlock()
	l, ok := h.logs[key]
	if !ok {
		l = NewLog(h.retain)
		h.logs[key] = l
	}
	return l
}

// Get returns the log for key, or nil if no events have ever been
// published for it.
func (h *Hub) Get(key string) *Log {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.logs[key]
}

// Len returns the number of keyed logs.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.logs)
}
