package delta

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func raw(s string) json.RawMessage { return json.RawMessage(s) }

func versions(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Version
	}
	return out
}

func TestAppendAssignsMonotonicVersions(t *testing.T) {
	l := NewLog(0)
	if got := l.Version(); got != 0 {
		t.Fatalf("Version of empty log = %d", got)
	}
	for i := 1; i <= 5; i++ {
		if v := l.Append(raw(fmt.Sprintf(`{"i":%d}`, i))); v != uint64(i) {
			t.Fatalf("Append #%d → version %d", i, v)
		}
	}
	if got := l.Version(); got != 5 {
		t.Fatalf("Version = %d, want 5", got)
	}
}

func TestAfterCursorSemantics(t *testing.T) {
	l := NewLog(0)
	for i := 1; i <= 4; i++ {
		l.Append(raw(fmt.Sprintf(`%d`, i)))
	}
	evs, gapped, done := l.After(0)
	if len(evs) != 4 || gapped || done {
		t.Fatalf("After(0) = %d events, gapped=%v done=%v", len(evs), gapped, done)
	}
	evs, gapped, _ = l.After(2)
	if want := []uint64{3, 4}; fmt.Sprint(versions(evs)) != fmt.Sprint(want) || gapped {
		t.Fatalf("After(2) = %v gapped=%v", versions(evs), gapped)
	}
	if evs, _, _ := l.After(4); len(evs) != 0 {
		t.Fatalf("After(latest) returned %d events", len(evs))
	}
	// Event payloads must round-trip untouched.
	evs, _, _ = l.After(3)
	if string(evs[0].Data) != "4" {
		t.Fatalf("Data = %s", evs[0].Data)
	}
}

// TestLateSubscriberCatchUp: a reader that attaches after events were
// published gets the full retained history from cursor 0.
func TestLateSubscriberCatchUp(t *testing.T) {
	l := NewLog(16)
	for i := 1; i <= 10; i++ {
		l.Append(raw(`{}`))
	}
	evs, gapped, done := l.After(0)
	if len(evs) != 10 || gapped || done {
		t.Fatalf("late subscriber: %d events gapped=%v done=%v", len(evs), gapped, done)
	}
	if evs[0].Version != 1 || evs[9].Version != 10 {
		t.Fatalf("versions %d..%d", evs[0].Version, evs[9].Version)
	}
}

// TestSlowConsumerGap: when the ring evicts past a reader's cursor the
// reader is told explicitly instead of being fed a silent hole.
func TestSlowConsumerGap(t *testing.T) {
	l := NewLog(3)
	for i := 1; i <= 10; i++ {
		l.Append(raw(`{}`))
	}
	evs, gapped, _ := l.After(2) // events 3..7 evicted (only 8,9,10 retained)
	if !gapped {
		t.Fatal("evicted cursor not flagged as gapped")
	}
	if want := []uint64{8, 9, 10}; fmt.Sprint(versions(evs)) != fmt.Sprint(want) {
		t.Fatalf("retained tail = %v, want %v", versions(evs), want)
	}
	// A cursor exactly at the eviction boundary is NOT gapped: cursor 7
	// has seen everything up to the oldest retained minus one.
	if _, gapped, _ := l.After(7); gapped {
		t.Fatal("boundary cursor flagged as gapped")
	}
}

func TestWaitWakesOnAppend(t *testing.T) {
	l := NewLog(0)
	l.Append(raw(`1`))
	type res struct {
		evs  []Event
		done bool
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		evs, _, done, err := l.Wait(context.Background(), 1)
		ch <- res{evs, done, err}
	}()
	// The waiter must be parked: nothing past cursor 1 yet.
	select {
	case r := <-ch:
		t.Fatalf("Wait returned early: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}
	l.Append(raw(`2`))
	select {
	case r := <-ch:
		if r.err != nil || len(r.evs) != 1 || r.evs[0].Version != 2 {
			t.Fatalf("Wait = %+v", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on Append")
	}
}

func TestWaitReturnsImmediatelyWhenBehind(t *testing.T) {
	l := NewLog(0)
	l.Append(raw(`1`))
	l.Append(raw(`2`))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	evs, _, _, err := l.Wait(ctx, 0)
	if err != nil || len(evs) != 2 {
		t.Fatalf("Wait = %d events, err %v", len(evs), err)
	}
}

func TestWaitUnblocksOnClose(t *testing.T) {
	l := NewLog(0)
	ch := make(chan bool, 1)
	go func() {
		_, _, done, err := l.Wait(context.Background(), 0)
		ch <- done && err == nil
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case ok := <-ch:
		if !ok {
			t.Fatal("Wait after Close: done=false or err")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not unblock on Close")
	}
	// Close is idempotent; Append after Close is a no-op.
	l.Close()
	if v := l.Append(raw(`x`)); v != 0 {
		t.Fatalf("Append after Close returned %d", v)
	}
	if _, _, done := l.After(0); !done {
		t.Fatal("After on closed log: done=false")
	}
}

func TestWaitHonorsContext(t *testing.T) {
	l := NewLog(0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, _, err := l.Wait(ctx, 0)
	if err == nil {
		t.Fatal("Wait ignored context deadline")
	}
}

func TestAppendJSON(t *testing.T) {
	l := NewLog(0)
	v, err := l.AppendJSON(map[string]int{"k": 7})
	if err != nil || v != 1 {
		t.Fatalf("AppendJSON = %d, %v", v, err)
	}
	if _, err := l.AppendJSON(func() {}); err == nil {
		t.Fatal("AppendJSON accepted an unmarshalable value")
	}
	evs, _, _ := l.After(0)
	if len(evs) != 1 || string(evs[0].Data) != `{"k":7}` {
		t.Fatalf("events = %+v", evs)
	}
}

func TestHub(t *testing.T) {
	h := NewHub(8)
	if h.Get("a") != nil {
		t.Fatal("Get before Log returned a log")
	}
	la := h.Log("a")
	if la == nil || h.Log("a") != la {
		t.Fatal("Log not stable per key")
	}
	lb := h.Log("b")
	if lb == la {
		t.Fatal("distinct keys share a log")
	}
	la.Append(raw(`1`))
	if h.Get("a") != la || h.Len() != 2 {
		t.Fatalf("Get/Len mismatch: %d", h.Len())
	}
}

func TestConcurrentAppendAndWait(t *testing.T) {
	l := NewLog(64)
	const n = 50
	done := make(chan int, 1)
	go func() {
		var cursor uint64
		seen := 0
		for seen < n {
			evs, _, _, err := l.Wait(context.Background(), cursor)
			if err != nil {
				break
			}
			for _, ev := range evs {
				cursor = ev.Version
				seen++
			}
		}
		done <- seen
	}()
	for i := 0; i < n; i++ {
		l.Append(raw(`{}`))
	}
	select {
	case seen := <-done:
		if seen != n {
			t.Fatalf("reader saw %d/%d events", seen, n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never drained")
	}
}
