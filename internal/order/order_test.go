package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// figure6 builds the paper's Figure 6 instance on wires {4,5,7,8} (indices
// 0,1,2,3 here): similarities sim(5,7)=0.93, sim(4,5)=sim(4,7)=0.07,
// sim(4,8)=-0.07, sim(5,8)=sim(7,8)=-0.93, giving the edge weights
// (1−similarity) shown in the figure's right-hand graph.
func figure6() *Matrix {
	sim := [][]float64{
		//        4      5      7      8
		{1.00, 0.07, 0.07, -0.07},
		{0.07, 1.00, 0.93, -0.93},
		{0.07, 0.93, 1.00, -0.93},
		{-0.07, -0.93, -0.93, 1.00},
	}
	m, err := FromSimilarity(sim)
	if err != nil {
		panic(err)
	}
	return m
}

var figure6Names = []string{"4", "5", "7", "8"}

func nameSeq(perm []int) string {
	s := ""
	for _, p := range perm {
		s += figure6Names[p]
	}
	return s
}

// TestWOSSFigure6Example is experiment E5: the paper states the orderings
// with minimum effective loading are <7,5,4,8> or <5,7,4,8>.
func TestWOSSFigure6Example(t *testing.T) {
	m := figure6()
	got := WOSS(m)
	seq := nameSeq(got)
	if seq != "5748" && seq != "7548" && seq != "8457" && seq != "8475" {
		t.Fatalf("WOSS ordering = <%s>, want <5,7,4,8> or <7,5,4,8> (or reverses)", seq)
	}
	wantCost := (1 - 0.93) + (1 - 0.07) + (1 - (-0.07)) // 0.07+0.93+1.07
	if c := Cost(m, got); math.Abs(c-wantCost) > 1e-9 {
		t.Errorf("WOSS cost = %g, want %g", c, wantCost)
	}
	// The exact optimum agrees.
	opt, err := Exact(m)
	if err != nil {
		t.Fatal(err)
	}
	if c := Cost(m, opt); math.Abs(c-wantCost) > 1e-9 {
		t.Errorf("Exact cost = %g, want %g", c, wantCost)
	}
}

func TestWOSSSmallCases(t *testing.T) {
	if got := WOSS(NewMatrix(0)); got != nil {
		t.Errorf("WOSS(0 wires) = %v, want nil", got)
	}
	if got := WOSS(NewMatrix(1)); len(got) != 1 || got[0] != 0 {
		t.Errorf("WOSS(1 wire) = %v, want [0]", got)
	}
	m := NewMatrix(2)
	m.Set(0, 1, 5)
	if got := WOSS(m); len(got) != 2 {
		t.Errorf("WOSS(2 wires) = %v", got)
	}
}

func TestExactSmallCases(t *testing.T) {
	if got, err := Exact(NewMatrix(0)); err != nil || got != nil {
		t.Errorf("Exact(0) = %v, %v", got, err)
	}
	if got, err := Exact(NewMatrix(1)); err != nil || len(got) != 1 {
		t.Errorf("Exact(1) = %v, %v", got, err)
	}
	if _, err := Exact(NewMatrix(MaxExact + 1)); err == nil {
		t.Error("Exact should reject n > MaxExact")
	}
}

func isPerm(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func randomWeights(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 2*rng.Float64()) // like 1−similarity ∈ [0,2]
		}
	}
	return m
}

// TestWOSSNeverWorseThanMedianRandom sanity-checks that the heuristic beats
// a random ordering on average.
func TestWOSSBeatsRandomOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	betterCount := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(20)
		m := randomWeights(rng, n)
		wc := Cost(m, WOSS(m))
		rc := Cost(m, Random(n, int64(trial)))
		if wc <= rc {
			betterCount++
		}
	}
	if betterCount < trials*3/4 {
		t.Errorf("WOSS beat random in only %d/%d trials", betterCount, trials)
	}
}

// Property: WOSS output is a permutation; Exact is never worse than WOSS;
// TwoOpt never increases cost.
func TestOrderingProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%9 + 2 // 2..10 so Exact stays fast
		rng := rand.New(rand.NewSource(seed))
		m := randomWeights(rng, n)
		woss := WOSS(m)
		if !isPerm(woss, n) {
			return false
		}
		opt, err := Exact(m)
		if err != nil || !isPerm(opt, n) {
			return false
		}
		wCost, oCost := Cost(m, woss), Cost(m, opt)
		if oCost > wCost+1e-9 {
			return false // exact worse than heuristic: impossible
		}
		two := TwoOpt(m, woss)
		if !isPerm(two, n) {
			return false
		}
		if Cost(m, two) > wCost+1e-9 {
			return false // refinement increased cost
		}
		if Cost(m, two) < oCost-1e-9 {
			return false // better than optimal: impossible
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactIsOptimalBruteForce(t *testing.T) {
	// Cross-check Held–Karp against explicit permutation enumeration.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6) // 2..7
		m := randomWeights(rng, n)
		opt, err := Exact(m)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				if c := Cost(m, perm); c < best {
					best = c
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if c := Cost(m, opt); math.Abs(c-best) > 1e-9 {
			t.Fatalf("n=%d: Exact cost %g, brute force %g", n, c, best)
		}
	}
}

func TestFromSimilarityValidation(t *testing.T) {
	if _, err := FromSimilarity([][]float64{{1, 0.5}, {0.5}}); err == nil {
		t.Error("ragged similarity accepted")
	}
	if _, err := FromSimilarity([][]float64{{1, 0.5}, {-0.5, 1}}); err == nil {
		t.Error("asymmetric similarity accepted")
	}
	m, err := FromSimilarity([][]float64{{1, -1}, {-1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 {
		t.Errorf("weight = %g, want 2 for similarity -1", m.At(0, 1))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("self weight = %g, want 0", m.At(0, 0))
	}
}

func TestTwoOptFixesBadOrdering(t *testing.T) {
	// Four points on a line: 0-1-2-3 with distance weights; the ordering
	// <0,2,1,3> is suboptimal and one reversal fixes it.
	m := NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			m.Set(i, j, float64(j-i))
		}
	}
	got := TwoOpt(m, []int{0, 2, 1, 3})
	if c := Cost(m, got); c != 3 {
		t.Errorf("TwoOpt cost = %g, want 3 (ordering %v)", c, got)
	}
}

func TestRandomIsPermutationAndDeterministic(t *testing.T) {
	a := Random(20, 9)
	b := Random(20, 9)
	if !isPerm(a, 20) {
		t.Fatal("Random not a permutation")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic in seed")
		}
	}
}

func BenchmarkWOSS256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomWeights(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WOSS(m)
	}
}

func BenchmarkExact12(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomWeights(rng, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(m); err != nil {
			b.Fatal(err)
		}
	}
}
