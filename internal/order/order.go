// Package order solves the paper's Switching Similarity (SS) problem from
// Section 3.2: given n wires and the pairwise edge weight
// weight(i,j) = 1 − similarity(i,j) on the complete graph Kn, find an
// ordering <w1,…,wn> minimizing the total effective loading
// Σ weight(wᵢ, wᵢ₊₁) between neighbouring wires — a minimum-weight
// Hamiltonian path. The problem is NP-hard with no constant-ratio
// polynomial approximation unless P=NP (paper Theorem 2), so the paper uses
// the greedy WOSS heuristic; this package also provides an exact Held–Karp
// solver for small instances (a testing oracle), a 2-opt refinement used for
// ablations, and a random baseline.
package order

import (
	"fmt"
	"math"
	"math/rand"
)

// Weights is a symmetric pairwise cost on n wires.
type Weights interface {
	N() int
	At(i, j int) float64
}

// Matrix is a dense symmetric Weights implementation.
type Matrix struct {
	n int
	w []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, w: make([]float64, n*n)}
}

// N returns the number of wires.
func (m *Matrix) N() int { return m.n }

// At returns the weight between wires i and j.
func (m *Matrix) At(i, j int) float64 { return m.w[i*m.n+j] }

// Set assigns the symmetric weight between wires i and j.
func (m *Matrix) Set(i, j int, v float64) {
	m.w[i*m.n+j] = v
	m.w[j*m.n+i] = v
}

// FromSimilarity converts a similarity matrix (sᵢⱼ ∈ [−1,1]) into the SS
// edge weights 1 − sᵢⱼ.
func FromSimilarity(sim [][]float64) (*Matrix, error) {
	n := len(sim)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		if len(sim[i]) != n {
			return nil, fmt.Errorf("order: similarity row %d has %d entries, want %d", i, len(sim[i]), n)
		}
		for j := 0; j < n; j++ {
			if d := math.Abs(sim[i][j] - sim[j][i]); d > 1e-9 {
				return nil, fmt.Errorf("order: similarity not symmetric at (%d,%d)", i, j)
			}
			m.w[i*n+j] = 1 - sim[i][j]
		}
	}
	return m, nil
}

// Cost evaluates the total effective loading of an ordering:
// Σ_{i<n-1} weight(perm[i], perm[i+1]).
func Cost(w Weights, perm []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(perm); i++ {
		total += w.At(perm[i], perm[i+1])
	}
	return total
}

// WOSS is the paper's wire-ordering heuristic (Figure 7): start with the
// globally minimum-weight edge, then repeatedly append the unplaced wire
// closest to the current chain end. Ties break toward lower indices, making
// the result deterministic. Runs in O(n²).
func WOSS(w Weights) []int {
	n := w.N()
	switch n {
	case 0:
		return nil
	case 1:
		return []int{0}
	}
	// A1: seed with the minimum-weight edge.
	bi, bj := 0, 1
	best := w.At(0, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if v := w.At(i, j); v < best {
				best, bi, bj = v, i, j
			}
		}
	}
	ord := make([]int, 0, n)
	used := make([]bool, n)
	ord = append(ord, bi, bj)
	used[bi], used[bj] = true, true
	// A2: greedy nearest-neighbour extension from the chain end.
	for len(ord) < n {
		last := ord[len(ord)-1]
		next, nv := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if v := w.At(last, j); v < nv {
				nv, next = v, j
			}
		}
		ord = append(ord, next)
		used[next] = true
	}
	return ord
}

// MaxExact bounds the instance size Exact accepts (Held–Karp is O(2ⁿ·n²)).
const MaxExact = 18

// Exact solves the SS problem optimally by Held–Karp dynamic programming
// over subsets. It returns an error for n > MaxExact.
func Exact(w Weights) ([]int, error) {
	n := w.N()
	if n > MaxExact {
		return nil, fmt.Errorf("order: Exact limited to n ≤ %d, got %d", MaxExact, n)
	}
	switch n {
	case 0:
		return nil, nil
	case 1:
		return []int{0}, nil
	}
	full := 1<<uint(n) - 1
	dp := make([]float64, (full+1)*n)
	parent := make([]int8, (full+1)*n)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	for v := 0; v < n; v++ {
		dp[(1<<uint(v))*n+v] = 0
		parent[(1<<uint(v))*n+v] = -1
	}
	for mask := 1; mask <= full; mask++ {
		for last := 0; last < n; last++ {
			cur := dp[mask*n+last]
			if math.IsInf(cur, 1) || mask&(1<<uint(last)) == 0 {
				continue
			}
			for next := 0; next < n; next++ {
				if mask&(1<<uint(next)) != 0 {
					continue
				}
				nm := mask | 1<<uint(next)
				if c := cur + w.At(last, next); c < dp[nm*n+next] {
					dp[nm*n+next] = c
					parent[nm*n+next] = int8(last)
				}
			}
		}
	}
	bestLast, bestCost := 0, math.Inf(1)
	for last := 0; last < n; last++ {
		if dp[full*n+last] < bestCost {
			bestCost, bestLast = dp[full*n+last], last
		}
	}
	ord := make([]int, 0, n)
	mask, last := full, bestLast
	for last >= 0 {
		ord = append(ord, last)
		p := parent[mask*n+last]
		mask &^= 1 << uint(last)
		last = int(p)
	}
	for i, j := 0, len(ord)-1; i < j; i, j = i+1, j-1 {
		ord[i], ord[j] = ord[j], ord[i]
	}
	return ord, nil
}

// TwoOpt refines an ordering by repeatedly reversing segments while that
// lowers the path cost (classic 2-opt for open paths). Used as an ablation
// on top of WOSS.
func TwoOpt(w Weights, perm []int) []int {
	n := len(perm)
	ord := append([]int(nil), perm...)
	if n < 3 {
		return ord
	}
	// edge(a, b) is the path cost between positions a and b; positions
	// beyond either end contribute nothing (open path).
	edge := func(a, b int) float64 {
		if a < 0 || b >= n {
			return 0
		}
		return w.At(ord[a], ord[b])
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reversing ord[i..j] replaces edges (i-1,i) and (j,j+1)
				// with (i-1,j) and (i,j+1).
				delta := edge(i-1, j) + edge(i, j+1) - edge(i-1, i) - edge(j, j+1)
				if delta < -1e-12 {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						ord[a], ord[b] = ord[b], ord[a]
					}
					improved = true
				}
			}
		}
	}
	return ord
}

// Random returns a uniformly random ordering of n wires (deterministic in
// seed), the baseline against which WOSS is measured.
func Random(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)
}
