package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	p := Default()
	if p.GateResistance != 10 {
		t.Errorf("gate resistance = %g, paper says 10 Ω·µm", p.GateResistance)
	}
	if p.GateCapacitance != 0.16 {
		t.Errorf("gate capacitance = %g, paper says 0.16 fF/µm", p.GateCapacitance)
	}
	if p.WireResistance != 0.07 {
		t.Errorf("wire resistance = %g, paper says 0.07 Ω·µm", p.WireResistance)
	}
	if p.WireCapacitance != 0.024 {
		t.Errorf("wire capacitance = %g, paper says 0.024 fF/µm", p.WireCapacitance)
	}
	if p.Vdd != 3.3 || p.Clock != 200 {
		t.Errorf("supply %gV @ %gMHz, paper says 3.3V @ 200MHz", p.Vdd, p.Clock)
	}
	if p.MinSize != 0.1 || p.MaxSize != 10 {
		t.Errorf("bounds [%g,%g], paper says [0.1,10] µm", p.MinSize, p.MaxSize)
	}
}

func TestPowerRoundTrip(t *testing.T) {
	p := Default()
	f := func(c float64) bool {
		c = math.Abs(c)
		if math.IsInf(c, 0) || math.IsNaN(c) || c > 1e12 {
			return true
		}
		back := p.CapForPower(p.Power(c))
		return math.Abs(back-c) <= 1e-9*math.Max(1, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerUnits(t *testing.T) {
	// 1 pF (1000 fF) switched at 3.3 V / 200 MHz is V²fC = 10.89 · 2e8 ·
	// 1e-12 W = 2.178 mW.
	p := Default()
	got := p.Power(1000)
	want := 3.3 * 3.3 * 200e6 * 1000e-15 * 1e3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Power(1000 fF) = %g mW, want %g", got, want)
	}
}

func TestRCUnits(t *testing.T) {
	// 100 Ω driving 1000 fF is 100 ns·1e-6 = 0.1 ns = 100 ps.
	if d := 100 * 1000 * RC; math.Abs(d-100) > 1e-12 {
		t.Errorf("100Ω·1000fF = %g ps, want 100", d)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero gate resistance", func(p *Params) { p.GateResistance = 0 }},
		{"negative gate cap", func(p *Params) { p.GateCapacitance = -1 }},
		{"zero wire resistance", func(p *Params) { p.WireResistance = 0 }},
		{"zero wire cap", func(p *Params) { p.WireCapacitance = 0 }},
		{"negative fringe", func(p *Params) { p.WireFringe = -0.1 }},
		{"zero coupling fringe", func(p *Params) { p.CouplingFringe = 0 }},
		{"zero vdd", func(p *Params) { p.Vdd = 0 }},
		{"zero clock", func(p *Params) { p.Clock = 0 }},
		{"inverted bounds", func(p *Params) { p.MinSize, p.MaxSize = 10, 0.1 }},
		{"equal bounds", func(p *Params) { p.MinSize, p.MaxSize = 1, 1 }},
		{"zero gate area", func(p *Params) { p.GateArea = 0 }},
		{"zero wire area", func(p *Params) { p.WireArea = 0 }},
		{"zero driver", func(p *Params) { p.DriverResistance = 0 }},
		{"negative load", func(p *Params) { p.LoadCapacitance = -1 }},
	}
	for _, c := range cases {
		p := Default()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
		}
	}
}
