// Package tech holds the technology parameters and unit conventions used
// throughout the repository.
//
// Unit conventions (chosen so that every quantity is O(1)–O(1e6) in float64):
//
//	resistance   Ω        (ohm)
//	capacitance  fF       (femtofarad)
//	time         ps       (picosecond; 1 Ω·fF = 1e-3 ps, see RC)
//	length/size  µm       (micrometre; a component "size" is a width in µm)
//	area         µm²
//	power        mW
//	voltage      V
//	frequency    MHz
//
// The default parameter values are the ones reported in Section 5 of the
// paper: gates have unit-size resistance 10 Ω·µm and capacitance
// 0.16 fF/µm; wires 0.07 Ω·µm and 0.024 fF/µm per unit length; supply
// 3.3 V at 200 MHz; sizes bounded to [0.1, 10] µm.
package tech

import (
	"errors"
	"fmt"
)

// RC converts a resistance (Ω) times a capacitance (fF) product into ps.
// 1 Ω · 1 fF = 1e-15 s · 1e12 ps/s ... = 1e-3 ps.
const RC = 1e-3

// Params collects every technology constant the models need.
type Params struct {
	// GateResistance is the unit-size gate output resistance in Ω·µm:
	// a gate of size x µm has resistance GateResistance/x Ω.
	GateResistance float64
	// GateCapacitance is the gate input capacitance per µm of size, in fF/µm.
	GateCapacitance float64

	// WireResistance is the wire resistance per µm of length for a 1 µm
	// wide wire, in Ω·µm: a wire of length l and width x has resistance
	// WireResistance·l/x Ω.
	WireResistance float64
	// WireCapacitance is the wire area capacitance per µm of length per µm
	// of width, in fF/µm².
	WireCapacitance float64
	// WireFringe is the wire fringing capacitance per µm of length, in
	// fF/µm. It is independent of the wire width. The paper carries it as
	// the constant fⱼ in cⱼ = ĉⱼxⱼ + fⱼ.
	WireFringe float64

	// CouplingFringe is the default unit-length fringing capacitance f̂ᵢⱼ
	// between two parallel wires at 1 µm separation, in fF (the model
	// divides by the actual centre-to-centre distance dᵢⱼ in µm).
	CouplingFringe float64

	// Vdd is the supply voltage in V and Clock the working frequency in
	// MHz; dynamic power is P = Vdd²·f·Σc (converted to mW by PowerScale).
	Vdd   float64
	Clock float64

	// MinSize and MaxSize bound every gate and wire size (µm): the paper's
	// Lᵢ and Uᵢ.
	MinSize float64
	MaxSize float64

	// GateArea is the area per µm of gate size (µm²/µm); a gate of size x
	// occupies GateArea·x µm². WireArea plays the same role per µm of wire
	// length (so a wire of length l and width x occupies WireArea·l·x).
	GateArea float64
	WireArea float64

	// DriverResistance is the default input-driver resistance R_D in Ω,
	// and LoadCapacitance the default primary-output load C_L in fF.
	DriverResistance float64
	LoadCapacitance  float64
}

// Default returns the paper's experimental setup (Section 5).
func Default() Params {
	return Params{
		GateResistance:   10,    // Ω·µm
		GateCapacitance:  0.16,  // fF/µm
		WireResistance:   0.07,  // Ω·µm per µm length
		WireCapacitance:  0.024, // fF/µm²
		WireFringe:       0.010, // fF/µm (not stated in the paper; small)
		CouplingFringe:   0.080, // fF/µm at 1 µm spacing (calibrated)
		Vdd:              3.3,   // V
		Clock:            200,   // MHz
		MinSize:          0.1,   // µm
		MaxSize:          10,    // µm
		GateArea:         8,     // µm²/µm of size (calibrated)
		WireArea:         1,     // µm²/µm² (width × length)
		DriverResistance: 100,   // Ω
		LoadCapacitance:  20,    // fF
	}
}

// PowerScale converts Vdd²·f·C (V² · MHz · fF) into mW:
// V²·(1e6/s)·1e-15 F = 1e-9 W = 1e-6 mW.
const PowerScale = 1e-6

// Power returns the dynamic power in mW for a total switched capacitance
// c in fF under these parameters.
func (p Params) Power(c float64) float64 {
	return p.Vdd * p.Vdd * p.Clock * c * PowerScale
}

// CapForPower inverts Power: the total capacitance (fF) corresponding to a
// power budget in mW. This is the paper's P' = P_B/(V²f) rewrite.
func (p Params) CapForPower(mw float64) float64 {
	return mw / (p.Vdd * p.Vdd * p.Clock * PowerScale)
}

// Validate reports the first nonsensical parameter, if any.
func (p Params) Validate() error {
	type check struct {
		name string
		v    float64
	}
	for _, c := range []check{
		{"GateResistance", p.GateResistance},
		{"GateCapacitance", p.GateCapacitance},
		{"WireResistance", p.WireResistance},
		{"WireCapacitance", p.WireCapacitance},
		{"CouplingFringe", p.CouplingFringe},
		{"Vdd", p.Vdd},
		{"Clock", p.Clock},
		{"MinSize", p.MinSize},
		{"MaxSize", p.MaxSize},
		{"GateArea", p.GateArea},
		{"WireArea", p.WireArea},
		{"DriverResistance", p.DriverResistance},
	} {
		if c.v <= 0 {
			return fmt.Errorf("tech: %s must be positive, got %g", c.name, c.v)
		}
	}
	if p.WireFringe < 0 {
		return errors.New("tech: WireFringe must be non-negative")
	}
	if p.LoadCapacitance < 0 {
		return errors.New("tech: LoadCapacitance must be non-negative")
	}
	if p.MinSize >= p.MaxSize {
		return fmt.Errorf("tech: MinSize (%g) must be below MaxSize (%g)", p.MinSize, p.MaxSize)
	}
	return nil
}
