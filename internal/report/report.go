// Package report renders experiment results as aligned ASCII tables and
// CSV, mirroring the layout of the paper's Table 1 and Figure 10 series.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
)

// Table1 writes the rows in the paper's format: per-circuit Init/Fin
// noise, delay, power, area, then iterations, time, and memory, followed
// by the average-improvement line.
func Table1(w io.Writer, rows []*bench.Table1Row) error {
	cols := []string{
		"Ckt", "#G", "#W", "tot",
		"Noise Init(pF)", "Noise Fin(pF)",
		"Delay Init(ps)", "Delay Fin(ps)",
		"Power Init(mW)", "Power Fin(mW)",
		"Area Init(um2)", "Area Fin(um2)",
		"ite", "time(s)", "mem(KB)", "conv",
	}
	table := [][]string{cols}
	for _, r := range rows {
		table = append(table, []string{
			r.Name,
			fmt.Sprintf("%d", r.Gates), fmt.Sprintf("%d", r.Wires), fmt.Sprintf("%d", r.Tot),
			fmt.Sprintf("%.4f", r.InitNoisePF), fmt.Sprintf("%.4f", r.FinNoisePF),
			fmt.Sprintf("%.3f", r.InitDelayPs), fmt.Sprintf("%.3f", r.FinDelayPs),
			fmt.Sprintf("%.3f", r.InitPowerMW), fmt.Sprintf("%.3f", r.FinPowerMW),
			fmt.Sprintf("%.0f", r.InitAreaUM2), fmt.Sprintf("%.0f", r.FinAreaUM2),
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%.2f", r.TimeSec),
			fmt.Sprintf("%.0f", r.MemKB),
			fmt.Sprintf("%v", r.Converged),
		})
	}
	noise, delay, power, area := bench.Improvements(rows)
	table = append(table, []string{
		"Impr(%)", "-", "-", "-",
		fmt.Sprintf("%.2f%%", noise), "",
		fmt.Sprintf("%.2f%%", delay), "",
		fmt.Sprintf("%.2f%%", power), "",
		fmt.Sprintf("%.2f%%", area), "",
		"-", "-", "-", "-",
	})
	return writeAligned(w, table)
}

// Figure10 writes both series: circuit size versus memory (a) and versus
// runtime per iteration (b).
func Figure10(w io.Writer, pts []bench.Figure10Point) error {
	table := [][]string{{"Ckt", "#gates+#wires", "storage(MB)", "runtime/iter(s)"}}
	for _, p := range pts {
		table = append(table, []string{
			p.Name,
			fmt.Sprintf("%d", p.Tot),
			fmt.Sprintf("%.3f", p.MemMB),
			fmt.Sprintf("%.4f", p.SecPerIter),
		})
	}
	return writeAligned(w, table)
}

// Figure10CSV emits the same series in CSV for plotting.
func Figure10CSV(w io.Writer, pts []bench.Figure10Point) error {
	if _, err := fmt.Fprintln(w, "name,components,storage_mb,sec_per_iter"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%g,%g\n", p.Name, p.Tot, p.MemMB, p.SecPerIter); err != nil {
			return err
		}
	}
	return nil
}

func writeAligned(w io.Writer, table [][]string) error {
	if len(table) == 0 {
		return nil
	}
	widths := make([]int, len(table[0]))
	for _, row := range table {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range table {
		var sb strings.Builder
		for c, cell := range row {
			if c > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[c], cell))
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
				return err
			}
		}
	}
	return nil
}
