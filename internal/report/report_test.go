package report

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func sampleRows() []*bench.Table1Row {
	return []*bench.Table1Row{
		{
			Name: "c432", Gates: 214, Wires: 426, Tot: 640,
			InitNoisePF: 0.03, FinNoisePF: 0.003,
			InitDelayPs: 0.91, FinDelayPs: 0.91,
			InitPowerMW: 1.44, FinPowerMW: 0.155,
			InitAreaUM2: 27631, FinAreaUM2: 2786,
			Iterations: 7, TimeSec: 0.02, MemKB: 183, Converged: true,
			SecPerIter: 0.003, MemMB: 0.18,
		},
		{
			Name: "c880", Gates: 383, Wires: 729, Tot: 1112,
			InitNoisePF: 0.05, FinNoisePF: 0.005,
			InitDelayPs: 1.2, FinDelayPs: 1.19,
			InitPowerMW: 2.4, FinPowerMW: 0.26,
			InitAreaUM2: 46000, FinAreaUM2: 4700,
			Iterations: 11, TimeSec: 0.05, MemKB: 300, Converged: true,
			SecPerIter: 0.004, MemMB: 0.29,
		},
	}
}

func TestTable1Rendering(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, sampleRows()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"c432", "c880", "Impr(%)", "Noise Init(pF)", "640", "1112"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Improvement percentages present: noise (Init−Fin)/Init = 90%.
	if !strings.Contains(out, "90.00%") {
		t.Errorf("expected 90%% noise improvement in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header, rule, two rows, improvement line
		t.Errorf("got %d lines, want 5", len(lines))
	}
}

func TestFigure10Rendering(t *testing.T) {
	pts := bench.Figure10(sampleRows())
	var sb strings.Builder
	if err := Figure10(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "storage(MB)") {
		t.Error("missing storage column")
	}
	var csv strings.Builder
	if err := Figure10CSV(&csv, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "name,components,storage_mb,sec_per_iter\n") {
		t.Error("bad CSV header")
	}
	if !strings.Contains(csv.String(), "c432,640") {
		t.Errorf("CSV missing row: %s", csv.String())
	}
}

func TestWriteAlignedEmpty(t *testing.T) {
	var sb strings.Builder
	if err := writeAligned(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Error("empty table should write nothing")
	}
}
