package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// reopenClean closes s and reopens the directory with a clean (fault-free)
// filesystem, returning the restarted store: the crash-restart step every
// write-failure test ends with.
func reopenClean(t *testing.T, s *Store, dir string) *Store {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after faults: %v", err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

// wantKeys asserts the store holds exactly the given keys (insertion order)
// with value "v<key>".
func wantKeys(t *testing.T, s *Store, keys ...string) {
	t.Helper()
	got := s.Keys("")
	if len(got) != len(keys) {
		t.Fatalf("keys %v, want %v", got, keys)
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("keys %v, want %v", got, keys)
		}
		var v string
		if ok, err := s.Get(k, &v); !ok || err != nil || v != "v"+k {
			t.Fatalf("get %q: ok=%v err=%v v=%q", k, ok, err, v)
		}
	}
}

func TestJournalAppendErrorLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:write", Kind: fault.Err, After: 1, Count: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatalf("put a: %v", err)
	}
	if err := s.Put("b", "vb"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put b: %v, want injected append failure", err)
	}
	// The failed Put must not be visible: not in memory, not acknowledged.
	wantKeys(t, s, "a")
	// The store recovers: the same key can be written again.
	if err := s.Put("b", "vb"); err != nil {
		t.Fatalf("put b after recovery: %v", err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a", "b")
}

func TestShortWriteIsRolledBackAndReplaySafe(t *testing.T) {
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:write", Kind: fault.ShortWrite, After: 1, Count: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "vb"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put b: %v, want injected short write", err)
	}
	// The torn half-line was truncated away, so the next append starts on
	// a clean line boundary — a mid-journal corruption would make replay
	// drop everything after it.
	if err := s.Put("c", "vc"); err != nil {
		t.Fatalf("put c after torn append: %v", err)
	}
	wantKeys(t, s, "a", "c")
	wantKeys(t, reopenClean(t, s, dir), "a", "c")
}

func TestShortWriteWithoutRecoveryStillReplaysSafely(t *testing.T) {
	// The harder variant: the process dies right after the torn append,
	// before any rollback-aware Put runs. Restart must drop only the torn
	// tail.
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:write", Kind: fault.ShortWrite, After: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "vb"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put b: %v, want injected short write", err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a")
}

func TestFsyncErrorLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:sync", Kind: fault.Err, After: 1, Count: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "vb"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put b: %v, want injected fsync failure", err)
	}
	// A failed fsync means the write was never acknowledged: it must not
	// surface from memory nor from a restart.
	wantKeys(t, s, "a")
	if err := s.Put("c", "vc"); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a", "c")
}

func TestCheckpointRenameErrorKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:rename", Kind: fault.Err, Count: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, "v"+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint: %v, want injected rename failure", err)
	}
	// The failed checkpoint lost nothing: the journal still holds every
	// record, new writes land, and a later checkpoint succeeds.
	wantKeys(t, s, "a", "b", "c")
	if err := s.Put("d", "vd"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName)); err != nil {
		t.Fatalf("checkpoint file after retry: %v", err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a", "b", "c", "d")
}

func TestCheckpointTempCreateErrorKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:create", Kind: fault.Err, Count: 1})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint: %v, want injected create failure", err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a")
}

func TestAutoCheckpointRenameFailureDoesNotLoseThePut(t *testing.T) {
	// Auto-compaction fires inside Put; if its rename fails the Put's own
	// append already succeeded and must survive a restart even though Put
	// reported the checkpoint error.
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:rename", Kind: fault.Err, Count: 1})
	s, err := Open(dir, Options{CompactEvery: 2, FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "vb"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("put b (auto-checkpoint): %v, want injected rename failure", err)
	}
	wantKeys(t, s, "a", "b")
	wantKeys(t, reopenClean(t, s, dir), "a", "b")
}

func TestPersistentWriteFailureThenRecovery(t *testing.T) {
	// A burst of failures (the degraded-mode scenario) followed by a healthy
	// disk: every acknowledged Put survives, every failed one is absent.
	dir := t.TempDir()
	plan := fault.New(3, fault.Rule{Op: "fs:write", Kind: fault.Err, After: 1, Count: 5})
	s, err := Open(dir, Options{FS: fault.NewFS(plan, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "va"); err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i := 0; i < 5; i++ {
		if err := s.Put("x", "bad"); err != nil {
			failed++
		}
	}
	if failed != 5 {
		t.Fatalf("%d of 5 puts failed during the outage, want all", failed)
	}
	if s.Has("x") {
		t.Fatal("failed puts leaked into memory")
	}
	if err := s.Put("b", "vb"); err != nil {
		t.Fatalf("put after outage: %v", err)
	}
	wantKeys(t, reopenClean(t, s, dir), "a", "b")
}
