// Package store is a dependency-free, crash-safe durable key→value store:
// the persistence layer under the sizing service's result corpus. Records
// are arbitrary JSON values under string keys, held fully in memory and
// made durable by two stdlib-only mechanisms:
//
//   - an append-only NDJSON journal (journal.ndjson): every Put appends
//     one {"key":…,"value":…} line and fsyncs, so an acknowledged write
//     survives a SIGKILL at any later instant;
//   - checkpoints (checkpoint.ndjson): the full record set rewritten
//     through a temp file + fsync + atomic rename, after which the journal
//     restarts empty. A crash between the journal append and the
//     checkpoint rename loses nothing — boot loads the checkpoint, then
//     replays the journal over it, and either the old checkpoint + full
//     journal or the new checkpoint + empty journal is on disk, never
//     neither.
//
// A torn final journal line (the process died mid-append, before the
// write was acknowledged) is detected and dropped on open; every earlier
// line is by construction complete. Keys are ordered by first insertion,
// and that order survives restarts — callers that replay records in Keys
// order (the service's cache reload) reconstruct their in-memory state
// deterministically.
//
// The store is not a database: no transactions, no deletes, no secondary
// indexes, and the whole record set lives in memory. It is exactly the
// "growing (circuit, bounds) → (sizes, multipliers) corpus" the learned
// warm-start direction needs — append-mostly, replayed at boot, compact
// on demand.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
)

const (
	journalName    = "journal.ndjson"
	checkpointName = "checkpoint.ndjson"
)

// DefaultCompactEvery is the journal length (in appended lines) beyond
// which Put triggers an automatic checkpoint, bounding both replay time at
// boot and journal growth from overwritten keys.
const DefaultCompactEvery = 4096

// Options configures Open. The zero value is ready to use.
type Options struct {
	// CompactEvery is the automatic-checkpoint threshold in journal lines;
	// 0 selects DefaultCompactEvery, negative disables auto-compaction
	// (Checkpoint can still be called explicitly).
	CompactEvery int
	// NoSync skips the per-append fsync. Appends then survive process
	// death (the OS holds the page cache) but not power loss; the tests
	// use it to keep tight loops fast.
	NoSync bool
	// FS is the filesystem the store writes through; nil selects the real
	// one. The chaos tests hand in a fault-injecting FS to fail appends,
	// fsyncs, and checkpoint renames on a deterministic schedule.
	FS fault.FS
}

// record is one journal/checkpoint line.
type record struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is the durable store over one data directory. Safe for concurrent
// use; create with Open.
type Store struct {
	mu      sync.Mutex
	opt     Options
	fs      fault.FS
	dir     string
	journal fault.File
	values  map[string]json.RawMessage
	order   []string // first-insertion order, stable across restarts
	lines   int      // journal lines since the last checkpoint
	goodOff int64    // byte offset of the end of the last acknowledged line
	dirty   bool     // a failed append could not be rolled back yet
	closed  bool
}

// Open loads (or creates) the store under dir: checkpoint first, then the
// journal replayed over it. A torn final journal line — a crash mid-append
// — is dropped and the journal truncated back to its last complete line.
func Open(dir string, opt Options) (*Store, error) {
	if opt.CompactEvery == 0 {
		opt.CompactEvery = DefaultCompactEvery
	}
	fs := opt.FS
	if fs == nil {
		fs = fault.OS()
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{opt: opt, fs: fs, dir: dir, values: map[string]json.RawMessage{}}
	if err := s.loadFile(filepath.Join(dir, checkpointName), false); err != nil {
		return nil, err
	}
	goodBytes, err := s.loadJournal()
	if err != nil {
		return nil, err
	}
	j, err := fs.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Drop the torn tail, if any, and position appends after the last
	// complete line.
	if err := j.Truncate(goodBytes); err != nil {
		j.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := j.Seek(goodBytes, 0); err != nil {
		j.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.journal = j
	s.goodOff = goodBytes
	return s, nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// loadFile replays one NDJSON file into the in-memory map. With tolerant
// set, a final unparseable line is ignored (journal torn-tail semantics);
// otherwise any bad line is an error (a checkpoint is written atomically
// and must be wholly valid).
func (s *Store) loadFile(path string, tolerant bool) error {
	f, err := s.fs.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	_, err = s.replay(f, tolerant, path)
	return err
}

// loadJournal replays the journal and returns the byte offset of the end
// of its last complete line.
func (s *Store) loadJournal() (int64, error) {
	f, err := s.fs.Open(s.journalPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.replay(f, true, s.journalPath())
}

// replay applies NDJSON records from r, counting replayed lines into
// s.lines when reading the journal, and returns the byte offset just past
// the last complete, valid line.
func (s *Store) replay(f io.Reader, tolerant bool, path string) (int64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // results can be large (X per node)
	var good int64
	journal := filepath.Base(path) == journalName
	for sc.Scan() {
		line := sc.Bytes()
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			if tolerant {
				// A torn append: the process died mid-write. Only the final
				// line can be incomplete; stop here and truncate to good.
				return good, nil
			}
			return good, fmt.Errorf("store: corrupt record in %s: %v", path, err)
		}
		s.putMem(rec.Key, rec.Value)
		good += int64(len(line)) + 1
		if journal {
			s.lines++
		}
	}
	if err := sc.Err(); err != nil {
		if tolerant {
			return good, nil // an over-long torn tail reads as a scan error
		}
		return good, fmt.Errorf("store: reading %s: %w", path, err)
	}
	return good, nil
}

// putMem stores a value in the in-memory map, preserving first-insertion
// order across overwrites.
func (s *Store) putMem(key string, value json.RawMessage) {
	if _, ok := s.values[key]; !ok {
		s.order = append(s.order, key)
	}
	s.values[key] = append(json.RawMessage(nil), value...)
}

// Put durably stores value (marshalled to JSON) under key, overwriting any
// previous value. The append is fsynced before Put returns (unless
// Options.NoSync), so an acknowledged Put survives SIGKILL.
func (s *Store) Put(key string, value any) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	data, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("store: marshal %q: %w", key, err)
	}
	line, err := json.Marshal(record{Key: key, Value: data})
	if err != nil {
		return fmt.Errorf("store: marshal %q: %w", key, err)
	}
	line = append(line, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.dirty {
		// A previous failed append could not be rolled back; appending after
		// its partial bytes would corrupt a mid-journal line, so retry the
		// rollback before accepting new writes.
		if err := s.rollbackLocked(); err != nil {
			return fmt.Errorf("store: journal dirty after failed append: %w", err)
		}
	}
	if _, err := s.journal.Write(line); err != nil {
		// The append may have landed partially (a torn line). Truncate back
		// to the last acknowledged byte so the journal stays a sequence of
		// complete lines; on rollback failure the dirty flag blocks further
		// appends until it succeeds.
		s.rollbackLocked() //nolint:errcheck // best-effort; dirty flag records failure
		return fmt.Errorf("store: append %q: %w", key, err)
	}
	if !s.opt.NoSync {
		if err := s.journal.Sync(); err != nil {
			// The line is complete on the page cache but not durable, and the
			// caller will treat this Put as failed — drop it so memory and the
			// acknowledged journal stay in step.
			s.rollbackLocked() //nolint:errcheck
			return fmt.Errorf("store: sync: %w", err)
		}
	}
	s.putMem(key, data)
	s.goodOff += int64(len(line))
	s.lines++
	if s.opt.CompactEvery > 0 && s.lines >= s.opt.CompactEvery {
		return s.checkpointLocked()
	}
	return nil
}

// rollbackLocked truncates the journal back to the end of the last
// acknowledged line, discarding any partial append, and repositions the
// write offset there. On failure the store is marked dirty: Put refuses
// new appends (retrying the rollback first) until the truncate lands.
func (s *Store) rollbackLocked() error {
	if err := s.journal.Truncate(s.goodOff); err != nil {
		s.dirty = true
		return err
	}
	if _, err := s.journal.Seek(s.goodOff, 0); err != nil {
		s.dirty = true
		return err
	}
	s.dirty = false
	return nil
}

// Get unmarshals the value stored under key into out and reports whether
// the key exists.
func (s *Store) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.values[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return true, fmt.Errorf("store: unmarshal %q: %w", key, err)
	}
	return true, nil
}

// GetRaw returns the stored JSON bytes for key (a copy), or nil.
func (s *Store) GetRaw(key string) json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.values[key]
	if !ok {
		return nil
	}
	return append(json.RawMessage(nil), raw...)
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.values[key]
	return ok
}

// Keys returns every key with the given prefix, in first-insertion order
// (which is stable across restarts).
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, k := range s.order {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	return out
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// Checkpoint rewrites the full record set atomically (temp file, fsync,
// rename) and restarts the journal empty. Crash-safe at every instant:
// until the rename lands, boot sees the old checkpoint plus the full
// journal; after it, the new checkpoint plus whatever was appended since.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	tmp, err := s.fs.CreateTemp(s.dir, checkpointName+".tmp-")
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	defer s.fs.Remove(tmp.Name()) //nolint:errcheck // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	for _, k := range s.order {
		if err := enc.Encode(record{Key: k, Value: s.values[k]}); err != nil {
			tmp.Close()
			return fmt.Errorf("store: checkpoint: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), filepath.Join(s.dir, checkpointName)); err != nil {
		// The old checkpoint plus the full journal is still on disk — a
		// failed rename loses nothing, it only postpones compaction.
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	// The checkpoint holds everything: restart the journal empty. Truncate
	// keeps the same inode, so the open handle stays valid. If the truncate
	// fails, the journal's lines are all covered by the new checkpoint, so
	// replay stays consistent; appends continue after them.
	if err := s.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		s.dirty = true // write offset unknown; block appends until rolled back
		s.goodOff = 0
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	s.lines = 0
	s.goodOff = 0
	return nil
}

// Close releases the journal handle. Further Puts fail; Gets keep working
// from memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.journal.Close()
}
