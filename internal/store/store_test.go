package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type rec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func open(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func put(t *testing.T, s *Store, key string, v any) {
	t.Helper()
	if err := s.Put(key, v); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func get(t *testing.T, s *Store, key string) rec {
	t.Helper()
	var out rec
	ok, err := s.Get(key, &out)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%s): missing", key)
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	put(t, s, "a", rec{N: 1, S: "one"})
	put(t, s, "b", rec{N: 2, S: "two"})
	if got := get(t, s, "a"); got != (rec{N: 1, S: "one"}) {
		t.Fatalf("a = %+v", got)
	}
	if got := get(t, s, "b"); got != (rec{N: 2, S: "two"}) {
		t.Fatalf("b = %+v", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	var out rec
	if ok, err := s.Get("missing", &out); ok || err != nil {
		t.Fatalf("Get(missing) = %v, %v", ok, err)
	}
	if s.Has("a") != true || s.Has("zz") != false {
		t.Fatal("Has mismatch")
	}
	if raw := s.GetRaw("a"); raw == nil {
		t.Fatal("GetRaw(a) = nil")
	}
	if raw := s.GetRaw("zz"); raw != nil {
		t.Fatalf("GetRaw(zz) = %s", raw)
	}
	if err := s.Put("", rec{}); err == nil {
		t.Fatal("Put(empty key) succeeded")
	}
	if err := s.Put("fn", func() {}); err == nil {
		t.Fatal("Put(unmarshalable) succeeded")
	}
}

func TestReopenReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	put(t, s, "a", rec{N: 1})
	put(t, s, "b", rec{N: 2})
	put(t, s, "a", rec{N: 3}) // overwrite
	s.Close()

	s2 := open(t, dir, Options{})
	if got := get(t, s2, "a"); got.N != 3 {
		t.Fatalf("a.N = %d, want 3", got.N)
	}
	if got := get(t, s2, "b"); got.N != 2 {
		t.Fatalf("b.N = %d, want 2", got.N)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
}

func TestKeysPrefixAndInsertionOrderSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	put(t, s, "result/x/b", rec{N: 1})
	put(t, s, "circuit/x", rec{N: 2})
	put(t, s, "result/x/a", rec{N: 3})
	put(t, s, "result/x/b", rec{N: 4}) // overwrite keeps first-insertion slot
	want := []string{"result/x/b", "result/x/a"}
	if got := s.Keys("result/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	put(t, s, "result/x/c", rec{N: 5})
	s.Close()

	// Order must be identical after a reload through checkpoint + journal.
	s2 := open(t, dir, Options{})
	want = append(want, "result/x/c")
	if got := s2.Keys("result/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys after reopen = %v, want %v", got, want)
	}
	if got := s2.Keys(""); len(got) != 4 {
		t.Fatalf("Keys(\"\") = %v", got)
	}
}

// TestTornFinalLineDropped simulates a SIGKILL mid-append: the journal ends
// in a half-written line. Open must keep every complete record, drop the
// torn tail, and position new appends so the journal stays parseable.
func TestTornFinalLineDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	put(t, s, "a", rec{N: 1})
	put(t, s, "b", rec{N: 2})
	s.Close()

	jp := filepath.Join(dir, "journal.ndjson")
	f, err := os.OpenFile(jp, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir, Options{})
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
	if s2.Has("c") {
		t.Fatal("torn record c survived")
	}
	// The torn bytes must be gone so the next append starts a clean line.
	put(t, s2, "d", rec{N: 4})
	s2.Close()
	s3 := open(t, dir, Options{})
	if s3.Len() != 3 || !s3.Has("d") {
		t.Fatalf("after torn-tail truncate + append: Len=%d Has(d)=%v", s3.Len(), s3.Has("d"))
	}
}

// TestCrashBetweenAppendAndCheckpointRename is the ISSUE's named scenario:
// the process appended records and died while checkpointing — the temp
// checkpoint file exists but was never renamed. Replay must recover every
// acknowledged record from the journal and ignore the orphan temp file.
func TestCrashBetweenAppendAndCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	put(t, s, "a", rec{N: 1})
	put(t, s, "b", rec{N: 2})
	s.Close()

	// A half-finished checkpoint the rename never committed.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.ndjson.tmp-123"),
		[]byte(`{"key":"a","value":{"n":999}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, Options{})
	if got := get(t, s2, "a"); got.N != 1 {
		t.Fatalf("a.N = %d, want 1 (temp checkpoint must be ignored)", got.N)
	}
	if got := get(t, s2, "b"); got.N != 2 {
		t.Fatalf("b.N = %d, want 2", got.N)
	}
}

func TestCheckpointThenJournalLayering(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	put(t, s, "a", rec{N: 1})
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Journal restarted empty; later appends layer over the checkpoint.
	if fi, err := os.Stat(filepath.Join(dir, "journal.ndjson")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after checkpoint: %v size=%d", err, fi.Size())
	}
	put(t, s, "a", rec{N: 7})
	put(t, s, "b", rec{N: 8})
	s.Close()

	s2 := open(t, dir, Options{})
	if got := get(t, s2, "a"); got.N != 7 {
		t.Fatalf("a.N = %d, want 7 (journal must win over checkpoint)", got.N)
	}
	if got := get(t, s2, "b"); got.N != 8 {
		t.Fatalf("b.N = %d", got.N)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{CompactEvery: 3, NoSync: true})
	for i := 0; i < 7; i++ {
		put(t, s, fmt.Sprintf("k%d", i%2), rec{N: i}) // two keys, many overwrites
	}
	// 7 appends with CompactEvery=3 → at least two auto-checkpoints; the
	// journal must hold fewer lines than the total append count.
	data, err := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n >= 3 {
		t.Fatalf("journal has %d lines, auto-compaction did not run", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.ndjson")); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	s.Close()

	s2 := open(t, dir, Options{})
	if got := get(t, s2, "k0"); got.N != 6 {
		t.Fatalf("k0.N = %d, want 6", got.N)
	}
	if got := get(t, s2, "k1"); got.N != 5 {
		t.Fatalf("k1.N = %d, want 5", got.N)
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.ndjson"),
		[]byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt checkpoint")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	put(t, s, "a", rec{N: 1})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("b", rec{}); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint after Close succeeded")
	}
	// Reads keep working from memory.
	if got := get(t, s, "a"); got.N != 1 {
		t.Fatalf("a.N = %d after Close", got.N)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := open(t, t.TempDir(), Options{NoSync: true, CompactEvery: 10})
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				if err := s.Put(fmt.Sprintf("g%d-%d", g, i), rec{N: i}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

// TestOpenRejectsNonDirectory pins the Open error path: a data path that
// is an existing file cannot become a store.
func TestOpenRejectsNonDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open on a file succeeded")
	}
}

// TestNoSyncPutsStillReplay pins that NoSync only drops the fsync, not
// the write: a clean reopen still replays every line.
func TestNoSyncPutsStillReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{NoSync: true})
	put(t, s, "a", rec{N: 1})
	put(t, s, "b", rec{N: 2})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, Options{})
	if got := get(t, s2, "b"); got.N != 2 {
		t.Fatalf("b = %+v", got)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
}

// TestUnmarshalableValueRejected pins that Put fails loudly (and durably
// writes nothing) for a value JSON cannot represent.
func TestUnmarshalableValueRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if err := s.Put("bad", func() {}); err == nil {
		t.Fatal("Put of a func value succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("failed Put left %d records", s.Len())
	}
}
