// Package baseline provides the comparison points for the paper's
// experiments:
//
//   - Uniform sizing — every component at one size. The paper's "Init"
//     columns in Table 1 are the circuit before optimization.
//   - Delay-only Lagrangian sizing — the prior work the paper extends
//     (Chen, Chu, Wong, ICCAD'98): OGWS with the noise and power
//     constraints disabled.
//   - TILOS-style greedy sensitivity sizing — the classic iterative
//     upsizing heuristic: repeatedly bump the critical-path component with
//     the best delay-reduction-per-area ratio until the delay bound holds.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rc"
)

// Metrics captures the four Table-1 quantities for one sizing solution
// (power as switched capacitance; use tech.Params.Power to convert to mW).
type Metrics struct {
	Area       float64 // µm²
	DelayPs    float64
	PowerCapFF float64
	NoiseLinFF float64
	NoiseExact float64
}

// Measure evaluates the current sizes of the evaluator.
func Measure(ev *rc.Evaluator) Metrics {
	ev.Recompute()
	return Metrics{
		Area:       ev.Area(),
		DelayPs:    ev.MaxArrival(),
		PowerCapFF: ev.TotalCap(),
		NoiseLinFF: ev.NoiseLinear(),
		NoiseExact: ev.NoiseExact(),
	}
}

// Uniform sets every component to the given size (clamped to its bounds)
// and measures — the paper's initial, unoptimized circuit.
func Uniform(ev *rc.Evaluator, size float64) Metrics {
	ev.SetAllSizes(size)
	return Measure(ev)
}

// DelayOnlyLR runs the paper's OGWS algorithm with the noise and power
// constraints disabled, reproducing plain LR delay-constrained area
// minimization (the ICCAD'98 baseline). It solves serially — a reference
// measurement, often invoked per circuit inside an already-parallel sweep
// — and releases the solver before returning.
func DelayOnlyLR(ev *rc.Evaluator, a0 float64) (*core.Result, error) {
	opt := core.DefaultOptions(a0, 0, 0)
	opt.Workers = 1
	sol, err := core.NewSolver(ev, opt)
	if err != nil {
		return nil, err
	}
	defer sol.Close()
	return sol.Run()
}

// TILOSOptions configures the greedy sizer.
type TILOSOptions struct {
	// A0 is the delay target in ps.
	A0 float64
	// Step is the multiplicative size bump per move (default 1.15).
	Step float64
	// MaxMoves bounds the number of greedy moves (default 100000).
	MaxMoves int
}

// TILOSResult reports the greedy sizing outcome.
type TILOSResult struct {
	Metrics
	Moves int
	// Met reports whether the delay target was reached.
	Met bool
	// X is the final size vector.
	X []float64
}

// TILOS greedily upsizes critical-path components, starting from minimum
// sizes, choosing at each move the component with the largest delay
// reduction per unit area increase. It stops when the target is met, no
// move helps, or MaxMoves is exhausted.
func TILOS(ev *rc.Evaluator, opt TILOSOptions) (*TILOSResult, error) {
	if opt.A0 <= 0 {
		return nil, fmt.Errorf("baseline: TILOS needs a positive delay target, got %g", opt.A0)
	}
	if opt.Step <= 1 {
		opt.Step = 1.15
	}
	if opt.MaxMoves <= 0 {
		opt.MaxMoves = 100000
	}
	g := ev.Graph()
	// Start from minimum sizes.
	for i := 1; i < g.NumNodes()-1; i++ {
		if c := g.Comp(i); c.Kind.Sizable() {
			ev.X[i] = c.Lo
		}
	}
	ev.Recompute()

	res := &TILOSResult{}
	var path []int // reused across moves; AppendCriticalPath allocates only growth
	for res.Moves < opt.MaxMoves && ev.MaxArrival() > opt.A0 {
		delay := ev.MaxArrival()
		area := ev.Area()
		best, bestScore := -1, 0.0
		var bestSize float64
		path = ev.AppendCriticalPath(path[:0])
		for _, i := range path {
			c := g.Comp(i)
			if !c.Kind.Sizable() || ev.X[i] >= c.Hi {
				continue
			}
			old := ev.X[i]
			trial := old * opt.Step
			if trial > c.Hi {
				trial = c.Hi
			}
			ev.X[i] = trial
			ev.Recompute()
			dGain := delay - ev.MaxArrival()
			aCost := ev.Area() - area
			ev.X[i] = old
			if dGain <= 0 {
				continue
			}
			score := dGain / (aCost + 1e-12)
			if score > bestScore {
				best, bestScore, bestSize = i, score, trial
			}
		}
		if best < 0 {
			break // no upsizing move reduces the critical delay
		}
		ev.X[best] = bestSize
		ev.Recompute()
		res.Moves++
	}
	ev.Recompute()
	res.Metrics = Measure(ev)
	res.Met = ev.MaxArrival() <= opt.A0
	res.X = append([]float64(nil), ev.X...)
	return res, nil
}
