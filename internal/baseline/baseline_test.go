package baseline

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/rc"
)

func chain(t testing.TB) (*circuit.Graph, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	w := b.AddWire("w", 10, 2, 0.1, 50, 1, 0.1, 10)
	g := b.AddGate("g", 20, 0.5, 4, 0.1, 10)
	w2 := b.AddWire("w2", 5, 1, 0.05, 25, 1, 0.1, 10)
	b.Connect(d, w)
	b.Connect(w, g)
	b.Connect(g, w2)
	b.MarkOutput(w2, 10)
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := map[string]int{}
	for i := 0; i < gr.NumNodes(); i++ {
		id[gr.Comp(i).Name] = i
	}
	return gr, id
}

func newEval(t testing.TB, g *circuit.Graph) *rc.Evaluator {
	t.Helper()
	cs, err := coupling.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestUniformMetrics(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	m1 := Uniform(ev, 1)
	// Area at x=1: α sum = 1+4+1 = 6.
	if math.Abs(m1.Area-6) > 1e-9 {
		t.Errorf("Area = %g, want 6", m1.Area)
	}
	// Power cap: (2+0.5+1)·1 + fringes 0.15 = 3.65.
	if math.Abs(m1.PowerCapFF-3.65) > 1e-9 {
		t.Errorf("PowerCap = %g, want 3.65", m1.PowerCapFF)
	}
	m2 := Uniform(ev, 0.1)
	if m2.Area >= m1.Area {
		t.Errorf("smaller uniform size should shrink area: %g vs %g", m2.Area, m1.Area)
	}
	// Clamping: huge size hits the upper bound 10.
	m3 := Uniform(ev, 1e9)
	if math.Abs(m3.Area-60) > 1e-9 {
		t.Errorf("clamped area = %g, want 60", m3.Area)
	}
}

func TestTILOSMeetsFeasibleBound(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	res, err := TILOS(ev, TILOSOptions{A0: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("TILOS failed to meet feasible bound: delay %g", res.DelayPs)
	}
	if res.DelayPs > 2.0 {
		t.Errorf("Met=true but delay %g > 2.0", res.DelayPs)
	}
	if res.Moves == 0 {
		t.Error("bound requires upsizing; expected at least one move")
	}
}

func TestTILOSStopsOnInfeasible(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	res, err := TILOS(ev, TILOSOptions{A0: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Error("claimed to meet an impossible 0.001 ps bound")
	}
}

func TestTILOSRespectsBounds(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	res, err := TILOS(ev, TILOSOptions{A0: 1.2, Step: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < g.NumNodes()-1; i++ {
		c := g.Comp(i)
		if !c.Kind.Sizable() {
			continue
		}
		if res.X[i] < c.Lo-1e-12 || res.X[i] > c.Hi+1e-12 {
			t.Errorf("x(%s) = %g outside [%g,%g]", c.Name, res.X[i], c.Lo, c.Hi)
		}
	}
}

func TestTILOSRejectsBadTarget(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	if _, err := TILOS(ev, TILOSOptions{}); err == nil {
		t.Error("zero delay target accepted")
	}
}

// TestLRBeatsOrMatchesTILOS: the optimal LR sizer should never need more
// area than the greedy heuristic for the same bound.
func TestLRBeatsOrMatchesTILOS(t *testing.T) {
	g, _ := chain(t)
	const a0 = 2.0
	evT := newEval(t, g)
	tilos, err := TILOS(evT, TILOSOptions{A0: a0})
	if err != nil {
		t.Fatal(err)
	}
	if !tilos.Met {
		t.Fatal("TILOS could not meet the bound")
	}
	evL := newEval(t, g)
	lr, err := DelayOnlyLR(evL, a0)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Converged {
		t.Fatalf("LR did not converge: %+v", lr)
	}
	if lr.Area > tilos.Area*1.01 {
		t.Errorf("LR area %g worse than TILOS %g", lr.Area, tilos.Area)
	}
}

func TestDelayOnlyLRDisablesNoiseAndPower(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g)
	res, err := DelayOnlyLR(ev, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseViolation != 0 || res.PowerViolation != 0 {
		t.Error("disabled constraints should report zero violation")
	}
	if res.DelayPs > 2.0*1.02 {
		t.Errorf("delay %g misses bound", res.DelayPs)
	}
}
