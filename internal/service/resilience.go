package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// admitSolve is the overload gate every solve and sweep request passes
// BEFORE touching the per-circuit lock or the solve semaphore. Those two
// queues are unbounded: a burst would park goroutines on them without
// limit, each pinning a decoded request body, until the listener ran out
// of memory long after latency had become useless. The gate bounds the
// total number of admitted-but-unfinished requests at MaxQueuedSolves
// and sheds the excess immediately with 503 + Retry-After — the one
// response an overloaded server can still afford to send. A draining
// server (see Drain) sheds everything the same way.
//
// Returns false with the response already written when the request was
// shed; on true the caller owes a releaseSolve.
func (s *Server) admitSolve(w http.ResponseWriter, r *http.Request, what string) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%s: server is draining", what)
		return false
	}
	if n := s.inflight.Add(1); int(n) > s.opt.MaxQueuedSolves {
		s.inflight.Add(-1)
		s.stats.addOverloadShed()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"%s: solve queue full (%d requests in flight, bound %d)", what, n-1, s.opt.MaxQueuedSolves)
		return false
	}
	return true
}

func (s *Server) releaseSolve() { s.inflight.Add(-1) }

// Drain gracefully quiesces the server for shutdown. New solve and sweep
// requests are shed with 503 from the moment Drain is called; requests
// already admitted get until ctx expires to finish. Once the server is
// idle — or the deadline forces the issue — every unfinished farm run is
// cancelled (unblocking any request still parked in Coordinator.await)
// and the durable store writes a final checkpoint, so the next boot
// replays one compact snapshot instead of the whole journal. Returns
// ctx's error when in-flight requests outlived the deadline; the final
// checkpoint is attempted regardless.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	var errs []error
	if err := s.awaitIdle(ctx); err != nil {
		errs = append(errs, fmt.Errorf("drain: %d request(s) still in flight: %w", s.inflight.Load(), err))
	}
	if s.opt.Farm != nil {
		if n := s.opt.Farm.CancelRuns("coordinator draining"); n > 0 {
			errs = append(errs, fmt.Errorf("drain: cancelled %d unfinished farm run(s)", n))
		}
	}
	if s.opt.Store != nil {
		if err := s.opt.Store.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("drain: final checkpoint: %w", err))
		}
	}
	if len(errs) > 0 {
		// Every partial failure surfaces; the first is the cause shutdown
		// logs care about.
		msg := errs[0].Error()
		for _, e := range errs[1:] {
			msg += "; " + e.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// awaitIdle blocks until no admitted request remains in flight or ctx
// expires. Polling (rather than a WaitGroup) keeps admitSolve a single
// atomic on the hot path; 2ms granularity is far below any solve.
func (s *Server) awaitIdle(ctx context.Context) error {
	if s.inflight.Load() == 0 {
		return nil
	}
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if s.inflight.Load() == 0 {
				return nil
			}
		}
	}
}

// storeGate is the service's degraded store mode. The durable store is
// an amortization, not a ledger — a solve whose persistence fails still
// returns its bytes — so when the disk goes bad (full, yanked, fault-
// injected) the right failure mode is to stop burning a write syscall
// plus an fsync per solve on a store that cannot accept them. After
// Threshold consecutive write failures the gate flips to degraded
// (read-only) mode: writes are skipped and counted, reads and the
// in-memory state keep serving. One probe write per Probe interval is
// let through; the first to succeed flips the gate back to rw. Both
// transitions and every skipped write surface in GET /stats
// (store_mode, store_degrades, store_recoveries, store_writes_skipped).
type storeGate struct {
	mu        sync.Mutex
	threshold int
	probe     time.Duration
	consec    int  // consecutive failures while rw
	degraded  bool // true = read-only mode
	lastProbe time.Time

	degrades   int64
	recoveries int64
	skipped    int64
}

// allow reports whether a write should be attempted now. In rw mode
// every write goes through; in degraded mode only one probe per
// interval does, and everything else is skipped and counted.
func (g *storeGate) allow(now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.degraded {
		return true
	}
	if now.Sub(g.lastProbe) >= g.probe {
		g.lastProbe = now
		return true
	}
	g.skipped++
	return false
}

// success records a completed write: the failure streak resets, and a
// degraded gate recovers to rw (the successful write was its probe).
func (g *storeGate) success() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.consec = 0
	if g.degraded {
		g.degraded = false
		g.recoveries++
	}
}

// failure records a failed write. In rw mode it advances the streak and
// flips to degraded at the threshold; in degraded mode it is a failed
// probe — stay degraded, the probe clock was already stamped by allow.
func (g *storeGate) failure(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.degraded {
		return
	}
	g.consec++
	if g.consec >= g.threshold {
		g.degraded = true
		g.degrades++
		g.lastProbe = now
	}
}

// mode returns "rw" or "degraded" — the /stats store_mode field.
func (g *storeGate) mode() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.degraded {
		return "degraded"
	}
	return "rw"
}

func (g *storeGate) counters() (degrades, recoveries, skipped int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.degrades, g.recoveries, g.skipped
}
