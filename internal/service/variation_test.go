package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/variation"
)

func TestMonteCarloErrors(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	cases := []struct {
		name, body string
		code       int
		want       string
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad montecarlo request"},
		{"unknown field", `{"key":"x","smples":3}`, http.StatusBadRequest, "unknown field"},
		{"unknown key", `{"key":"nope","samples":3}`, http.StatusNotFound, "no cached circuit"},
		{"zero samples", `{"key":"` + key + `"}`, http.StatusBadRequest, "samples must be positive"},
		{"negative sigma", `{"key":"` + key + `","samples":3,"sigmas":{"r":-0.1}}`, http.StatusBadRequest, "sigma"},
		{"nan sigma", `{"key":"` + key + `","samples":3,"sigmas":{"c":NaN}}`, http.StatusBadRequest, "bad montecarlo request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/montecarlo", c.body)
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, w.Body.String())
			}
			if e := decodeAs[errorResponse](t, w); !strings.Contains(e.Error, c.want) {
				t.Errorf("error %q does not mention %q", e.Error, c.want)
			}
		})
	}
}

// TestMonteCarloEndpoint pins the /montecarlo contract: a seeded run
// returns the full sample set with distributions and yield; the same
// request repeated answers byte-identically from the store without
// solving (dedup), and no_dedup forces a re-run that still produces the
// identical result.
func TestMonteCarloEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Store: st})
	key := registerC17(t, s, 17).Key

	body := `{"key":"` + key + `","samples":4,"seed":7,` +
		`"sigmas":{"r":0.05,"c":0.05,"threshold":0.08},"max_iterations":8}`
	w := do(t, s, "POST", "/montecarlo", body)
	if w.Code != http.StatusOK {
		t.Fatalf("montecarlo: %d %s", w.Code, w.Body.String())
	}
	first := decodeAs[montecarloResponse](t, w)
	if first.Dedup {
		t.Error("first run reported dedup")
	}
	if first.Result == nil || len(first.Result.Samples) != 4 {
		t.Fatalf("bad result: %+v", first.Result)
	}
	if first.Result.Yield < 0 || first.Result.Yield > 1 {
		t.Errorf("yield %v outside [0,1]", first.Result.Yield)
	}
	for i, sm := range first.Result.Samples {
		if sm.Index != i || sm.Result == nil {
			t.Fatalf("sample %d malformed: %+v", i, sm)
		}
	}
	if first.Result.Delay.Mean <= 0 || first.Result.Delay.Max < first.Result.Delay.Min {
		t.Errorf("degenerate delay distribution: %+v", first.Result.Delay)
	}

	// Repeat: answered from the store, result bytes identical.
	w2 := do(t, s, "POST", "/montecarlo", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("montecarlo repeat: %d %s", w2.Code, w2.Body.String())
	}
	second := decodeAs[montecarloResponse](t, w2)
	if !second.Dedup {
		t.Error("identical repeat did not dedup")
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Error("dedup result diverged from the original run")
	}

	// Forced re-run: same seed, same bytes — the determinism contract
	// through the full HTTP surface.
	w3 := do(t, s, "POST", "/montecarlo", strings.Replace(body, `{"key"`, `{"no_dedup":true,"key"`, 1))
	third := decodeAs[montecarloResponse](t, w3)
	if third.Dedup {
		t.Error("no_dedup run reported dedup")
	}
	c, _ := json.Marshal(third.Result)
	if !bytes.Equal(a, c) {
		t.Error("re-run with the same seed diverged from the original")
	}

	// A different seed is a different run (and a different store key).
	w4 := do(t, s, "POST", "/montecarlo", strings.Replace(body, `"seed":7`, `"seed":8`, 1))
	fourth := decodeAs[montecarloResponse](t, w4)
	if fourth.Dedup {
		t.Error("different seed hit the dedup store")
	}

	stats := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if stats.MonteCarlos != 3 || stats.MCSamples != 12 {
		t.Errorf("stats counted %d runs / %d samples, want 3 / 12", stats.MonteCarlos, stats.MCSamples)
	}
	if stats.DedupHits != 1 {
		t.Errorf("stats counted %d dedup hits, want 1", stats.DedupHits)
	}
}

// TestCornersEndpoint pins the corners mode of /sweep: the standard
// five-corner enumeration with a nominal solve, per-corner results, and
// dedup on repeat.
func TestCornersEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Store: st})
	key := registerC17(t, s, 17).Key

	body := `{"key":"` + key + `","corners":true,"max_iterations":8}`
	w := do(t, s, "POST", "/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("corners: %d %s", w.Code, w.Body.String())
	}
	first := decodeAs[cornersResponse](t, w)
	if first.Report == nil || first.Report.Nominal == nil {
		t.Fatalf("missing report: %+v", first)
	}
	std := variation.StandardCorners()
	if len(first.Report.Cells) != len(std) {
		t.Fatalf("%d corner cells, want %d", len(first.Report.Cells), len(std))
	}
	for i, c := range first.Report.Cells {
		if c.Corner.Name != std[i].Name || c.Result == nil {
			t.Errorf("cell %d: corner %q result %v", i, c.Corner.Name, c.Result != nil)
		}
	}

	// Repeat dedups; report bytes identical.
	second := decodeAs[cornersResponse](t, do(t, s, "POST", "/sweep", body))
	if !second.Dedup {
		t.Error("identical corners repeat did not dedup")
	}
	a, _ := json.Marshal(first.Report)
	b, _ := json.Marshal(second.Report)
	if !bytes.Equal(a, b) {
		t.Error("dedup corners report diverged from the original run")
	}

	// Streamed form: one NDJSON line per corner, then the summary — cells
	// bit-identical to the buffered run.
	ws := do(t, s, "POST", "/sweep", strings.Replace(body, `"corners"`, `"stream":true,"corners"`, 1))
	if ws.Code != http.StatusOK {
		t.Fatalf("streamed corners: %d %s", ws.Code, ws.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(ws.Body.String()), "\n")
	if len(lines) != len(std)+1 {
		t.Fatalf("%d stream lines, want %d corners + 1 summary", len(lines), len(std))
	}
	for i, line := range lines[:len(std)] {
		var cell variation.CornerCell
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want, _ := json.Marshal(first.Report.Cells[i])
		got, _ := json.Marshal(cell)
		if !bytes.Equal(want, got) {
			t.Errorf("streamed cell %d diverged from the buffered run", i)
		}
	}
	var sum cornersSummary
	if err := json.Unmarshal([]byte(lines[len(std)]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Corners != len(std) {
		t.Errorf("bad summary: %+v", sum)
	}

	stats := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if stats.CornerSweeps != 2 || stats.CornerCells != int64(2*len(std)) {
		t.Errorf("stats counted %d corner sweeps / %d cells, want 2 / %d",
			stats.CornerSweeps, stats.CornerCells, 2*len(std))
	}
}

// TestMonteCarloWatchEvents pins the watch-stream shape of a Monte-Carlo
// run: mc_start, one sample event per sample in index order, mc_done
// with the yield.
func TestMonteCarloWatchEvents(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	body := `{"key":"` + key + `","samples":3,"seed":5,"sigmas":{"r":0.03},"max_iterations":6}`
	if w := do(t, s, "POST", "/montecarlo", body); w.Code != http.StatusOK {
		t.Fatalf("montecarlo: %d %s", w.Code, w.Body.String())
	}
	wr := decodeAs[watchResponse](t, do(t, s, "GET", "/watch?key="+key, ""))
	var kinds []string
	var samples []int
	for _, ev := range wr.Events {
		var pe progressEvent
		if err := json.Unmarshal(ev.Data, &pe); err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, pe.Kind)
		if pe.Kind == "sample" {
			samples = append(samples, pe.Sample)
		}
		if pe.Kind == "mc_done" && (pe.Yield < 0 || pe.Yield > 1) {
			t.Errorf("mc_done yield %v outside [0,1]", pe.Yield)
		}
	}
	want := []string{"mc_start", "sample", "sample", "sample", "mc_done"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("event kinds %v, want %v", kinds, want)
	}
	for i, idx := range samples {
		if idx != i {
			t.Errorf("sample event %d carries index %d", i, idx)
		}
	}
}
