package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/sweep"
)

// farmServer builds a coordinator-mode server the way ogwsd -coordinator
// does (service routes plus /farm/v1/ on one mux), serves it over real
// TCP, and runs one in-process worker against it. Returns the server and
// a cleanup-registered coordinator.
func farmServer(t *testing.T) (*Server, *farm.Coordinator) {
	t.Helper()
	coord := farm.New(farm.Options{HeartbeatInterval: 25 * time.Millisecond})
	s := New(Options{Farm: coord})
	mux := http.NewServeMux()
	mux.Handle("/farm/v1/", coord.Handler())
	mux.Handle("/", s)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	coord.Start(ctx)
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- farm.RunWorker(ctx, farm.WorkerOptions{
			Coordinator: ts.URL,
			Name:        "in-process",
			LeaseWait:   50 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-workerErr; err != nil {
			t.Errorf("worker exited with %v", err)
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return s, coord
}

// registerGrid registers the shared grid-mesh circuit on a server.
func registerGrid(t *testing.T, s *Server) registerResponse {
	t.Helper()
	w := do(t, s, "POST", "/circuits", `{"grid":{"width":6,"layers":4,"coupled":true}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("register grid: %d %s", w.Code, w.Body.String())
	}
	return decodeAs[registerResponse](t, w)
}

// TestFarmDispatchMatchesLocal is the service-level half of the farm
// oracle: the same requests against a farm-backed server and a plain
// local server must produce identical results — solve and sweep, modulo
// wall-clock — because farm dispatch is bit-invisible by contract.
func TestFarmDispatchMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real grids")
	}
	farmed, coord := farmServer(t)
	local := New(Options{})

	fReg := registerGrid(t, farmed)
	lReg := registerGrid(t, local)
	if fReg.Key != lReg.Key {
		t.Fatalf("grid keys diverge: %s vs %s", fReg.Key, lReg.Key)
	}
	if fReg.Bounds != lReg.Bounds {
		t.Fatalf("grid bounds diverge: %+v vs %+v", fReg.Bounds, lReg.Bounds)
	}

	// Solve: dispatched to the worker on the farmed server, run in-process
	// on the local one; identical result bytes either way.
	solveBody := `{"key":"` + fReg.Key + `","max_iterations":6,"save_as":"warm"}`
	fw := do(t, farmed, "POST", "/solve", solveBody)
	lw := do(t, local, "POST", "/solve", solveBody)
	if fw.Code != http.StatusOK || lw.Code != http.StatusOK {
		t.Fatalf("solve: farm %d %s local %d %s", fw.Code, fw.Body.String(), lw.Code, lw.Body.String())
	}
	fRes := decodeAs[solveResponse](t, fw)
	lRes := decodeAs[solveResponse](t, lw)
	if !reflect.DeepEqual(fRes.Result, lRes.Result) {
		t.Errorf("farm solve diverged from local solve")
	}

	// Warm-start chain across the farm boundary: the saved result seeds a
	// second solve on both servers.
	warmBody := `{"key":"` + fReg.Key + `","max_iterations":6,"warm_from":"warm"}`
	fw = do(t, farmed, "POST", "/solve", warmBody)
	lw = do(t, local, "POST", "/solve", warmBody)
	if fw.Code != http.StatusOK || lw.Code != http.StatusOK {
		t.Fatalf("warm solve: farm %d %s local %d", fw.Code, fw.Body.String(), lw.Code)
	}
	if !reflect.DeepEqual(decodeAs[solveResponse](t, fw).Result, decodeAs[solveResponse](t, lw).Result) {
		t.Errorf("farm warm solve diverged from local")
	}

	// Sweep: the farmed server leases the wavefront to the worker and
	// reassembles; the local one runs the engine directly.
	sweepBody := `{"key":"` + fReg.Key + `","delay_scale":[1,1.08],"noise_scale":[0.9,1.2],"max_iterations":6}`
	fw = do(t, farmed, "POST", "/sweep", sweepBody)
	lw = do(t, local, "POST", "/sweep", sweepBody)
	if fw.Code != http.StatusOK || lw.Code != http.StatusOK {
		t.Fatalf("sweep: farm %d %s local %d", fw.Code, fw.Body.String(), lw.Code)
	}
	fSweep := decodeAs[sweepResponse](t, fw)
	lSweep := decodeAs[sweepResponse](t, lw)
	strip := func(r *sweep.Result) *sweep.Result {
		for i := range r.Cells {
			r.Cells[i].SolveSec = 0
		}
		return r
	}
	if !reflect.DeepEqual(strip(fSweep.Result), strip(lSweep.Result)) {
		t.Errorf("farm sweep diverged from local sweep")
	}

	// Streaming over the farm: one NDJSON line per cell plus the summary,
	// and the cells are the same bits as the buffered grid.
	fw = do(t, farmed, "POST", "/sweep", `{"key":"`+fReg.Key+`","delay_scale":[1,1.08],"noise_scale":[0.9,1.2],"max_iterations":6,"stream":true}`)
	if fw.Code != http.StatusOK {
		t.Fatalf("streamed farm sweep: %d %s", fw.Code, fw.Body.String())
	}
	dec := json.NewDecoder(fw.Body)
	cells := 0
	for {
		var line map[string]json.RawMessage
		if err := dec.Decode(&line); err != nil {
			break
		}
		if _, done := line["done"]; done {
			break
		}
		cells++
	}
	if cells != len(fSweep.Result.Cells) {
		t.Errorf("streamed farm sweep emitted %d cells, want %d", cells, len(fSweep.Result.Cells))
	}

	// The farm section of /stats reflects the work.
	sw := do(t, farmed, "GET", "/stats", "")
	st := decodeAs[Stats](t, sw)
	if st.Farm == nil {
		t.Fatal("farm-backed /stats has no farm section")
	}
	if st.Farm.LiveWorkers != 1 || len(st.Farm.Workers) != 1 {
		t.Fatalf("farm stats workers: %+v", st.Farm)
	}
	w0 := st.Farm.Workers[0]
	if w0.Name != "in-process" || w0.SolvesCompleted != 2 || w0.CellsSolved < 8 {
		t.Fatalf("worker counters: %+v", w0)
	}
	if st.Solves != 2 || st.Sweeps != 2 {
		t.Fatalf("service counters did not fold in remote work: %+v", st)
	}
	// Remote solve counters (evaluator work) fold into the host's stats.
	if st.Eval.FullRecomputes == 0 && st.Eval.IncRecomputes == 0 {
		t.Errorf("remote solve eval counters were not folded in: %+v", st.Eval)
	}
	_ = coord
}

// TestFarmFallsBackWithoutWorkers: a coordinator with no live workers
// must serve everything locally, not stall.
func TestFarmFallsBackWithoutWorkers(t *testing.T) {
	coord := farm.New(farm.Options{})
	s := New(Options{Farm: coord})
	reg := registerGrid(t, s)
	w := do(t, s, "POST", "/solve", `{"key":"`+reg.Key+`","max_iterations":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("workerless coordinator solve: %d %s", w.Code, w.Body.String())
	}
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.Farm == nil || st.Farm.LiveWorkers != 0 || st.Farm.RunsCompleted != 0 {
		t.Fatalf("workerless farm stats: %+v", st.Farm)
	}
}
