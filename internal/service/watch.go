package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/sweep"
)

// progressEvent is one live-convergence delta on a circuit's watch
// stream. Kind is one of:
//
//	solve_start — a solve began (Solve numbers solves per server lifetime)
//	iter        — one OGWS iteration (Iter carries λ-step, violations,
//	              duality gap, and the rc.EvalStats work delta)
//	solve_done  — the solve finished (summary fields, never the full X)
//	sweep_start / cell / sweep_done — the sweep analogues; cell and iter
//	              carry Row/Col grid positions
//	mc_start / sample / mc_done — the Monte-Carlo analogues; sample
//	              carries the absolute sample index, mc_done the yield
//	corners_start / corner / corners_done — the corner-sweep analogues;
//	              corner carries the corner name
//	error       — the solve or sweep failed
type progressEvent struct {
	Kind  string `json:"kind"`
	Solve int64  `json:"solve,omitempty"`
	Row   int    `json:"row,omitempty"`
	Col   int    `json:"col,omitempty"`
	// Iter is present on kind "iter".
	Iter *core.IterProgress `json:"iter,omitempty"`
	// Solve/cell summary fields (kinds solve_done and cell).
	Iterations int     `json:"iterations,omitempty"`
	Converged  bool    `json:"converged,omitempty"`
	Gap        float64 `json:"gap,omitempty"`
	Area       float64 `json:"area,omitempty"`
	SolveSec   float64 `json:"solve_sec,omitempty"`
	// Sample is the absolute sample index on kind "sample", Yield the
	// delay-constraint yield on "mc_done", Corner the corner name on
	// "corner" events.
	Sample int     `json:"sample,omitempty"`
	Yield  float64 `json:"yield,omitempty"`
	Corner string  `json:"corner,omitempty"`
	// Dedup marks a solve answered from the durable store without running.
	Dedup bool   `json:"dedup,omitempty"`
	Error string `json:"error,omitempty"`
}

// watchLog returns the circuit's progress log, creating it on first use.
// One log per circuit for the server's lifetime: solves and sweeps append
// to it sequentially (the per-circuit lock serializes them), watchers
// cursor through it, and it is never closed — the next solve may always
// arrive.
func (s *Server) watchLog(circuitKey string) *delta.Log {
	return s.hub.Log(circuitKey)
}

// emit appends one progress event to the circuit's watch stream.
func (s *Server) emit(log *delta.Log, ev progressEvent) {
	if _, err := log.AppendJSON(ev); err != nil {
		// progressEvent always marshals; keep the accounting honest anyway.
		s.stats.addStoreError()
	}
}

// nextSolveID numbers solves across the server lifetime so a watcher can
// group iter events between a solve_start and its solve_done.
func (s *Server) nextSolveID() int64 { return atomic.AddInt64(&s.solveSeq, 1) }

// watchResponse is the long-poll GET /watch payload: the events after the
// request cursor, the cursor to pass next, and whether retention evicted
// events between the two (the watcher missed some and should resync its
// notion of state from what follows).
type watchResponse struct {
	Key    string        `json:"key"`
	Events []delta.Event `json:"events"`
	Next   uint64        `json:"next"`
	Gapped bool          `json:"gapped,omitempty"`
}

// maxWatchWait bounds a long-poll; clients repeat with the returned
// cursor, exactly like the farm's lease long-poll.
const maxWatchWait = 30 * time.Second

// handleWatch streams a circuit's live solver progress. Long-poll JSON by
// default: GET /watch?key=…&cursor=N&wait=10s parks until events past N
// exist (or the wait elapses) and returns them with the next cursor. With
// sse=1 (or Accept: text/event-stream) the response is an SSE stream:
// one `data:` line per event, `id:` carrying the cursor so a reconnecting
// client resumes via Last-Event-ID.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "watch: key query parameter is required")
		return
	}
	if s.cache.get(key) == nil {
		writeError(w, http.StatusNotFound, "watch: no cached circuit for key %q (register it first; it may have been evicted)", key)
		return
	}
	cursor := uint64(0)
	if c := q.Get("cursor"); c != "" {
		v, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "watch: bad cursor %q: %v", c, err)
			return
		}
		cursor = v
	}
	log := s.watchLog(key)

	sse := q.Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream"
	if sse {
		// Honor Last-Event-ID over the cursor param on SSE reconnects.
		if last := r.Header.Get("Last-Event-ID"); last != "" {
			if v, err := strconv.ParseUint(last, 10, 64); err == nil {
				cursor = v
			}
		}
		s.watchSSE(w, r, key, log, cursor)
		return
	}

	wait := time.Duration(0)
	if ws := q.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			writeError(w, http.StatusBadRequest, "watch: bad wait %q: %v", ws, err)
			return
		}
		if d > maxWatchWait {
			d = maxWatchWait
		}
		wait = d
	}
	events, gapped, _ := log.After(cursor)
	if len(events) == 0 && wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		if evs, g, _, err := log.Wait(ctx, cursor); err == nil {
			events, gapped = evs, g
		}
		// A timeout or client disconnect returns the empty set with the
		// caller's own cursor — the poll loop just comes back.
	}
	next := cursor
	if n := len(events); n > 0 {
		next = events[n-1].Version
	}
	writeJSON(w, http.StatusOK, watchResponse{Key: key, Events: events, Next: next, Gapped: gapped})
}

// watchSSE streams events until the client disconnects.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, key string, log *delta.Log, cursor uint64) {
	f, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "watch: response writer cannot stream")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	for {
		events, gapped, _, err := log.Wait(r.Context(), cursor)
		if err != nil {
			return // client gone
		}
		if gapped {
			fmt.Fprintf(w, "event: gap\ndata: {\"gapped\":true}\n\n")
		}
		for _, ev := range events {
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Version, ev.Data)
			cursor = ev.Version
		}
		f.Flush()
	}
}

// solveProgressOptions installs the per-iteration hook feeding a local
// solve's trajectory onto the circuit's watch stream.
func (s *Server) solveProgressOptions(opt *core.Options, log *delta.Log, solveID int64) {
	opt.OnIteration = func(p core.IterProgress) {
		ip := p
		s.emit(log, progressEvent{Kind: "iter", Solve: solveID, Iter: &ip})
	}
}

// sweepProgressOptions installs the per-iteration and per-cell hooks
// feeding a sweep's trajectory onto the circuit's watch stream, wrapping
// (not replacing) any OnCell already installed for NDJSON streaming.
func (s *Server) sweepProgressOptions(opt *sweep.Options, log *delta.Log, solveID int64) {
	opt.OnProgress = func(row, col int, p core.IterProgress) {
		ip := p
		s.emit(log, progressEvent{Kind: "iter", Solve: solveID, Row: row, Col: col, Iter: &ip})
	}
	prev := opt.OnCell
	opt.OnCell = func(c *sweep.Cell) {
		if prev != nil {
			prev(c)
		}
		s.emit(log, progressEvent{
			Kind: "cell", Solve: solveID, Row: c.Row, Col: c.Col,
			Iterations: c.Result.Iterations, Converged: c.Result.Converged,
			Gap: c.Result.Gap, Area: c.Result.Area, SolveSec: c.SolveSec,
		})
	}
}
