package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// c17Netlist returns the committed c17 .bench text — the cheapest real
// circuit the service can register.
func c17Netlist(t testing.TB) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "c17.bench"))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// do sends one JSON request to the handler and returns the recorded
// response.
func do(t testing.TB, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

func decodeAs[T any](t testing.TB, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// registerC17 registers the c17 netlist with the given seed and returns
// the cache key.
func registerC17(t testing.TB, s *Server, seed int64) registerResponse {
	t.Helper()
	body, err := json.Marshal(registerRequest{Netlist: c17Netlist(t), Name: "c17", Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/circuits", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("register c17: %d %s", w.Code, w.Body.String())
	}
	return decodeAs[registerResponse](t, w)
}

func TestRegisterErrors(t *testing.T) {
	s := New(Options{})
	cases := []struct {
		name, body string
		code       int
		want       string
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad register request"},
		{"unknown field", `{"netlst":"x"}`, http.StatusBadRequest, "unknown field"},
		{"neither source", `{}`, http.StatusBadRequest, "exactly one of"},
		{"both sources", `{"synthetic":"c432","netlist":"INPUT(a)"}`, http.StatusBadRequest, "exactly one of"},
		{"unknown synthetic", `{"synthetic":"c9999"}`, http.StatusBadRequest, "unknown synthetic"},
		{"bad netlist", `{"netlist":"G1 = FOO(G2)"}`, http.StatusBadRequest, "register"},
		{"negative scale", `{"synthetic":"c432","wire_length_scale":-2}`, http.StatusBadRequest, "wire_length_scale"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/circuits", c.body)
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, w.Body.String())
			}
			if e := decodeAs[errorResponse](t, w); !strings.Contains(e.Error, c.want) {
				t.Errorf("error %q does not mention %q", e.Error, c.want)
			}
		})
	}
}

func TestRegisterCachesByContent(t *testing.T) {
	s := New(Options{})
	first := registerC17(t, s, 17)
	if first.Cached {
		t.Error("first registration reported a cache hit")
	}
	if first.Circuit != "c17" || first.Gates == 0 || first.Wires == 0 {
		t.Errorf("bad register response: %+v", first)
	}
	if first.Bounds.A0 <= 0 {
		t.Errorf("derived bounds missing: %+v", first.Bounds)
	}
	again := registerC17(t, s, 17)
	if !again.Cached || again.Key != first.Key {
		t.Errorf("identical upload did not hit the cache: %+v vs %+v", again, first)
	}
	other := registerC17(t, s, 18)
	if other.Cached || other.Key == first.Key {
		t.Error("different seed reused the cached instance")
	}

	list := decodeAs[[]circuitInfo](t, do(t, s, "GET", "/circuits", ""))
	if len(list) != 2 {
		t.Fatalf("listed %d circuits, want 2", len(list))
	}
}

func TestSolveErrors(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	cases := []struct {
		name, body string
		code       int
		want       string
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad solve request"},
		{"nan bound", `{"key":"x","a0":NaN}`, http.StatusBadRequest, "bad solve request"},
		{"unknown key", `{"key":"nope"}`, http.StatusNotFound, "no cached circuit"},
		{"warm and inline seed", fmt.Sprintf(`{"key":%q,"warm_from":"a","seed_sizes":[1]}`, key),
			http.StatusBadRequest, "mutually exclusive"},
		{"unknown warm_from", fmt.Sprintf(`{"key":%q,"warm_from":"missing"}`, key),
			http.StatusNotFound, "no saved result"},
		{"negative a0", fmt.Sprintf(`{"key":%q,"a0":-5}`, key),
			http.StatusUnprocessableEntity, "A0 must be positive"},
		{"infeasible noise", fmt.Sprintf(`{"key":%q,"noise":1e-12}`, key),
			http.StatusUnprocessableEntity, "below the constant coupling offset"},
		{"bad seed length", fmt.Sprintf(`{"key":%q,"seed_sizes":[1.5]}`, key),
			http.StatusUnprocessableEntity, "solve"},
		{"poisoned dual", fmt.Sprintf(`{"key":%q,"dual":{"edge":[[-1]],"beta":0,"gamma":0}}`, key),
			http.StatusBadRequest, "non-negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/solve", c.body)
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, w.Body.String())
			}
			if e := decodeAs[errorResponse](t, w); !strings.Contains(e.Error, c.want) {
				t.Errorf("error %q does not mention %q", e.Error, c.want)
			}
		})
	}
}

// TestFailedBuildNotCountedAsHit registers the same broken netlist
// concurrently: whether the requests join one failed build or each run
// their own, nothing was cached, so the hit counter must stay zero.
func TestFailedBuildNotCountedAsHit(t *testing.T) {
	s := New(Options{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, s, "POST", "/circuits", `{"netlist":"G1 = FOO(G2)"}`)
			if w.Code != http.StatusBadRequest {
				t.Errorf("broken netlist: status %d, want 400", w.Code)
			}
		}()
	}
	wg.Wait()
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.CacheHits != 0 || st.Instances != 0 {
		t.Errorf("failed builds counted: hits %d instances %d, want 0 and 0", st.CacheHits, st.Instances)
	}
}

func TestCacheEviction(t *testing.T) {
	s := New(Options{CacheSize: 1})
	key17 := registerC17(t, s, 17).Key
	key18 := registerC17(t, s, 18).Key // evicts seed 17

	w := do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q}`, key17))
	if w.Code != http.StatusNotFound {
		t.Fatalf("solve on evicted key: status %d, want 404", w.Code)
	}
	if w = do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":4}`, key18)); w.Code != http.StatusOK {
		t.Fatalf("solve on cached key: %d %s", w.Code, w.Body.String())
	}
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.Evictions != 1 || st.Instances != 1 {
		t.Errorf("stats: evictions %d instances %d, want 1 and 1", st.Evictions, st.Instances)
	}
	// Re-registering the evicted circuit rebuilds it under the same key.
	if again := registerC17(t, s, 17); again.Cached || again.Key != key17 {
		t.Errorf("re-registration after eviction: %+v", again)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	if w := do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":4}`, key)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
	body := fmt.Sprintf(`{"key":%q,"delay_scale":[1,1.05],"noise_scale":[1,1.2],"max_iterations":3}`, key)
	if w := do(t, s, "POST", "/sweep", body); w.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", w.Code, w.Body.String())
	}
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.Solves != 1 || st.Sweeps != 1 || st.SweepCells != 4 {
		t.Errorf("stats: solves %d sweeps %d cells %d, want 1/1/4", st.Solves, st.Sweeps, st.SweepCells)
	}
	if st.NodeVisits == 0 || st.Eval.FullRecomputes == 0 {
		t.Errorf("evaluator work not accounted: %+v", st.Eval)
	}
	if st.SweepLRSSweeps == 0 {
		t.Error("sweep LRS work not accounted")
	}
	if st.SolveSec <= 0 || st.SweepCellsPerSec <= 0 {
		t.Errorf("throughput not accounted: %+v", st)
	}
	if st.CacheMiss != 1 || st.CacheHits != 0 {
		t.Errorf("cache counters: hits %d misses %d, want 0 and 1", st.CacheHits, st.CacheMiss)
	}
}

// TestOversizedBodyGets413 pins the request-size limit to its proper
// status: the client should learn the cap, not debug its JSON.
func TestOversizedBodyGets413(t *testing.T) {
	s := New(Options{MaxRequestBytes: 64})
	body := fmt.Sprintf(`{"netlist":%q}`, strings.Repeat("x", 256))
	w := do(t, s, "POST", "/circuits", body)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", w.Code, w.Body.String())
	}
}

func TestHealthz(t *testing.T) {
	s := New(Options{})
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK || !decodeAs[map[string]bool](t, w)["ok"] {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
}

func TestResultsExport(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	if w := do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":4,"save_as":"base"}`, key)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
	cases := []struct {
		name, path string
		code       int
	}{
		{"missing params", "/results", http.StatusBadRequest},
		{"unknown key", "/results?key=nope&name=base", http.StatusNotFound},
		{"unknown name", "/results?key=" + key + "&name=nope", http.StatusNotFound},
		{"found", "/results?key=" + key + "&name=base", http.StatusOK},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "GET", c.path, "")
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, w.Body.String())
			}
		})
	}
	res := decodeAs[resultResponse](t, do(t, s, "GET", "/results?key="+key+"&name=base", ""))
	if res.Result == nil || res.Dual == nil || res.Name != "base" {
		t.Fatalf("export missing payload: %+v", res)
	}
}

// TestSavedResultEviction pins the per-instance result budget: the oldest
// name falls out once MaxSavedResults is exceeded.
func TestSavedResultEviction(t *testing.T) {
	s := New(Options{MaxSavedResults: 2})
	key := registerC17(t, s, 17).Key
	for _, name := range []string{"a", "b", "c"} {
		body := fmt.Sprintf(`{"key":%q,"max_iterations":2,"save_as":%q}`, key, name)
		if w := do(t, s, "POST", "/solve", body); w.Code != http.StatusOK {
			t.Fatalf("solve %s: %d %s", name, w.Code, w.Body.String())
		}
	}
	if w := do(t, s, "GET", "/results?key="+key+"&name=a", ""); w.Code != http.StatusNotFound {
		t.Errorf("oldest result still present: %d", w.Code)
	}
	for _, name := range []string{"b", "c"} {
		if w := do(t, s, "GET", "/results?key="+key+"&name="+name, ""); w.Code != http.StatusOK {
			t.Errorf("result %s missing: %d", name, w.Code)
		}
	}
}

// TestSavedResultOverwriteRefreshesEvictionSlot is the regression test for
// an overwritten name keeping its original insertion-order slot: a hot,
// repeatedly-refreshed warm-start seed was evicted before younger names
// saved once. Re-saving must move the name to the back of the eviction
// queue.
func TestSavedResultOverwriteRefreshesEvictionSlot(t *testing.T) {
	s := New(Options{MaxSavedResults: 2})
	key := registerC17(t, s, 17).Key
	save := func(name string) {
		t.Helper()
		body := fmt.Sprintf(`{"key":%q,"max_iterations":2,"save_as":%q}`, key, name)
		if w := do(t, s, "POST", "/solve", body); w.Code != http.StatusOK {
			t.Fatalf("solve %s: %d %s", name, w.Code, w.Body.String())
		}
	}
	save("a")
	save("b")
	save("a") // refresh: a is now the most recently saved name
	save("c") // budget 2 → evicts b (the stale one), never the refreshed a
	if w := do(t, s, "GET", "/results?key="+key+"&name=b", ""); w.Code != http.StatusNotFound {
		t.Errorf("stale result b survived the overwrite-refresh: %d", w.Code)
	}
	for _, name := range []string{"a", "c"} {
		if w := do(t, s, "GET", "/results?key="+key+"&name="+name, ""); w.Code != http.StatusOK {
			t.Errorf("result %s missing: %d", name, w.Code)
		}
	}
	// An overwrite at the budget boundary must not evict anything: the
	// name count is unchanged.
	save("c")
	for _, name := range []string{"a", "c"} {
		if w := do(t, s, "GET", "/results?key="+key+"&name="+name, ""); w.Code != http.StatusOK {
			t.Errorf("after boundary overwrite, result %s missing: %d", name, w.Code)
		}
	}
}

// TestNDJSONWriterMarshalFailureInBand is the regression test for the
// streamed-sweep write path silently dropping a line whose payload failed
// to marshal (a non-finite float, say): the stream lost cells with no
// in-band signal. Every writeLine call must now produce exactly one
// output line — unmarshalable payloads become {"error": ...} lines — so
// the rows×cols+summary line-count contract holds unconditionally.
func TestNDJSONWriterMarshalFailureInBand(t *testing.T) {
	rr := httptest.NewRecorder()
	nw := &ndjsonWriter{w: rr}
	if nw.started() {
		t.Fatal("started before any line")
	}
	nw.writeLine(map[string]float64{"ok": 1})
	nw.writeLine(map[string]float64{"bad": math.NaN()}) // json.Marshal fails
	nw.writeLine(sweepSummary{Done: true})
	if !nw.started() {
		t.Fatal("started() false after writes")
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rr.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("stream has %d lines for 3 writes: %q", len(lines), rr.Body.String())
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("error line is not JSON: %q (%v)", lines[1], err)
	}
	if !strings.Contains(e.Error, "marshal") {
		t.Errorf("error line %q does not name the marshal failure", e.Error)
	}
	var sum sweepSummary
	if err := json.Unmarshal([]byte(lines[2]), &sum); err != nil || !sum.Done {
		t.Fatalf("summary line corrupted by the error line: %q (%v)", lines[2], err)
	}
}
