package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentSolvesAndSweeps drives a real HTTP server with concurrent
// solves and sweeps on two cached circuits at mixed workers widths: every
// request must succeed and every solve of one circuit must return the
// bit-identical result regardless of interleaving — the per-instance lock
// and the replica-per-request discipline observed from outside.
func TestConcurrentSolvesAndSweeps(t *testing.T) {
	s := New(Options{MaxConcurrentSolves: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(path, body string) ([]byte, int, error) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return data, resp.StatusCode, err
	}

	key17 := registerC17(t, s, 17).Key
	key18 := registerC17(t, s, 18).Key

	const perKey = 4
	type outcome struct {
		res *core.Result
		err error
	}
	results := make([]outcome, 2*perKey)
	var wg sync.WaitGroup
	for i := 0; i < 2*perKey; i++ {
		key, workers := key17, 1+i%3
		if i >= perKey {
			key = key18
		}
		wg.Add(1)
		go func(slot int, key string, workers int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"key":%q,"max_iterations":6,"workers":%d}`, key, workers)
			data, code, err := post("/solve", body)
			if err != nil {
				results[slot] = outcome{err: err}
				return
			}
			if code != http.StatusOK {
				results[slot] = outcome{err: fmt.Errorf("status %d: %s", code, data)}
				return
			}
			var sr solveResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				results[slot] = outcome{err: err}
				return
			}
			results[slot] = outcome{res: sr.Result}
		}(i, key, workers)
	}
	// Sweeps race the solves on both circuits.
	sweepErrs := make([]error, 2)
	for i, key := range []string{key17, key18} {
		wg.Add(1)
		go func(slot int, key string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"key":%q,"delay_scale":[1,1.1],"max_iterations":4}`, key)
			data, code, err := post("/sweep", body)
			if err == nil && code != http.StatusOK {
				err = fmt.Errorf("status %d: %s", code, data)
			}
			sweepErrs[slot] = err
		}(i, key)
	}
	wg.Wait()

	for i, err := range sweepErrs {
		if err != nil {
			t.Fatalf("concurrent sweep %d: %v", i, err)
		}
	}
	for group := 0; group < 2; group++ {
		base := results[group*perKey]
		if base.err != nil {
			t.Fatalf("concurrent solve: %v", base.err)
		}
		for i := 1; i < perKey; i++ {
			o := results[group*perKey+i]
			if o.err != nil {
				t.Fatalf("concurrent solve: %v", o.err)
			}
			if !reflect.DeepEqual(base.res, o.res) {
				t.Fatalf("concurrent solves on one circuit diverged (group %d, request %d)", group, i)
			}
		}
	}
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.Solves != 2*perKey || st.Sweeps != 2 {
		t.Errorf("stats after the storm: solves %d sweeps %d, want %d and 2", st.Solves, st.Sweeps, 2*perKey)
	}
}
