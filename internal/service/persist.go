package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/netlist"
)

// Store key layout. Circuits persist as their farm wire-form spec (the
// same api.CircuitSpec a worker materializes a bit-identical replica
// from), saved results as both warm-start halves, and finished solves
// under a content hash of everything that determines their bits.
const (
	circuitPrefix = "circuit/"
	resultPrefix  = "result/"
	solvePrefix   = "solve/"
)

// storedResult is the persisted form of a saved (save_as) result: the
// solved sizes inside Result plus the exact-round-trip DualState
// (internal/core/dualjson.go), i.e. both halves of a warm start.
type storedResult struct {
	Result *core.Result    `json:"result"`
	Dual   *core.DualState `json:"dual,omitempty"`
}

// storedSolve is the persisted outcome of one fully-resolved solve,
// keyed by solveKey: the dedup payload POST /solve returns without
// re-solving.
type storedSolve struct {
	CircuitKey string          `json:"circuit_key"`
	Circuit    string          `json:"circuit"`
	Result     *core.Result    `json:"result"`
	Dual       *core.DualState `json:"dual,omitempty"`
}

// solveKey hashes everything that determines a solve's result bits: the
// circuit content hash, the resolved bounds, the normalized solver knobs,
// and the resolved warm-start state (seed sizes and dual, after
// warm_from/primal_only/s1 resolution). Workers is deliberately excluded —
// results are bit-identical at every width, which is the solver's core
// determinism contract — so the same solve at a different width dedups.
// Full is included conservatively: the incremental engine is pinned
// bit-identical to full passes, but the knob is an explicit request.
func solveKey(circuitKey string, b bench.Bounds, maxIter int, epsilon float64, full, warm bool, seed []float64, dual *core.DualState) string {
	// Normalize exactly as core.Options.validate does, so "default by
	// omission" and "default spelled out" hash identically.
	if maxIter <= 0 {
		maxIter = 1000
	}
	if epsilon <= 0 || math.IsNaN(epsilon) {
		epsilon = 0.01
	}
	h := sha256.New()
	put := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "solve/v1|%s|", circuitKey)
	put(math.Float64bits(b.A0))
	put(math.Float64bits(b.NoiseBound))
	put(math.Float64bits(b.PowerBound))
	put(uint64(maxIter))
	put(math.Float64bits(epsilon))
	flags := uint64(0)
	if full {
		flags |= 1
	}
	if warm {
		flags |= 2
	}
	put(flags)
	put(uint64(len(seed)))
	for _, x := range seed {
		put(math.Float64bits(x))
	}
	if dual != nil {
		// The dual wire form is an exact float64 round-trip, so its JSON is
		// a faithful content fingerprint.
		if data, err := json.Marshal(dual); err == nil {
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// buildForSpec resolves a circuit wire-form spec to its display name and
// instance constructor — the one spec→instance mapping shared by live
// registration (handleRegister) and boot reload, mirroring the farm
// worker's materialize so every path builds the identical replica.
func buildForSpec(spec api.CircuitSpec) (string, func() (*bench.Instance, *bench.Bounds, error), error) {
	if err := spec.Validate(); err != nil {
		return "", nil, err
	}
	pipe := bench.PipelineOptions{WireLengthScale: spec.WireLengthScale}
	switch {
	case spec.Synthetic != "":
		s, ok := bench.SpecByName(spec.Synthetic)
		if !ok {
			return "", nil, fmt.Errorf("unknown synthetic circuit %q", spec.Synthetic)
		}
		return s.Name, func() (*bench.Instance, *bench.Bounds, error) {
			inst, err := bench.BuildInstance(s, pipe)
			return inst, nil, err
		}, nil
	case spec.Netlist != "":
		name := spec.Name
		if name == "" {
			name = "upload"
		}
		return name, func() (*bench.Instance, *bench.Bounds, error) {
			nl, err := netlist.Parse(name, strings.NewReader(spec.Netlist))
			if err != nil {
				return nil, nil, err
			}
			inst, err := bench.AssembleNetlist(nl, spec.Seed, pipe)
			return inst, nil, err
		}, nil
	default:
		g := spec.Grid
		return "grid-mesh", func() (*bench.Instance, *bench.Bounds, error) {
			inst, b, err := bench.GridInstance(g.Width, g.Layers, g.Coupled)
			if err != nil {
				return nil, nil, err
			}
			// Grid meshes carry their own calibration bounds: DeriveBounds
			// assumes the netlist pipeline's fields, which a mesh skips.
			return inst, &b, nil
		}, nil
	}
}

// storePut is the single write path to the durable store. Every persist
// goes through the degraded-mode gate (see storeGate in resilience.go):
// in rw mode the write happens and its outcome feeds the gate's failure
// streak; in degraded mode everything but the periodic recovery probe is
// skipped. Persistence failing never fails the request — the solve
// already has its bytes — so the outcome surfaces only in the counters.
func (s *Server) storePut(key string, v any) {
	if s.opt.Store == nil {
		return
	}
	if !s.gate.allow(s.opt.Now()) {
		return
	}
	if err := s.opt.Store.Put(key, v); err != nil {
		s.stats.addStoreError()
		s.gate.failure(s.opt.Now())
		return
	}
	s.gate.success()
}

// persistCircuit records a newly registered circuit's wire-form spec so a
// restarted server can rebuild the instance under the same key.
func (s *Server) persistCircuit(spec api.CircuitSpec) {
	s.storePut(circuitPrefix+spec.Key, spec)
}

// persistResult records one saved (save_as) result under its circuit and
// name, making warm_from chains restart-proof.
func (s *Server) persistResult(circuitKey, name string, r *savedResult) {
	s.storePut(resultPrefix+circuitKey+"/"+name, storedResult{Result: r.Result, Dual: r.Dual})
}

// persistSolve records a finished solve under its content hash for dedup.
func (s *Server) persistSolve(key string, v storedSolve) {
	s.storePut(solvePrefix+key, v)
}

// lookupSolve returns the stored solve for key, or nil.
func (s *Server) lookupSolve(key string) *storedSolve {
	if s.opt.Store == nil {
		return nil
	}
	var v storedSolve
	ok, err := s.opt.Store.Get(solvePrefix+key, &v)
	if err != nil {
		s.stats.addStoreError()
		return nil
	}
	if !ok {
		return nil
	}
	return &v
}

// reloadFromStore rebuilds the in-memory state a restart lost: every
// persisted circuit is re-materialized into the instance cache (in
// first-insertion order — the LRU keeps the most recently persisted
// CacheSize instances), then every persisted saved result is replayed
// onto its circuit. Records whose circuit fell off the cache (or whose
// spec no longer builds) are skipped, not fatal: the store is a corpus,
// not a ledger, and a later register of the same content re-attaches it.
func (s *Server) reloadFromStore() {
	st := s.opt.Store
	if st == nil {
		return
	}
	for _, key := range st.Keys(circuitPrefix) {
		var spec api.CircuitSpec
		if ok, err := st.Get(key, &spec); err != nil || !ok {
			s.stats.addStoreError()
			continue
		}
		name, build, err := buildForSpec(spec)
		if err != nil {
			s.stats.addStoreError()
			continue
		}
		if _, _, err := s.cache.getOrBuild(spec.Key, name, spec, build); err != nil {
			s.stats.addStoreError()
			continue
		}
		s.stats.addReloadedCircuit()
	}
	for _, key := range st.Keys(resultPrefix) {
		rest := strings.TrimPrefix(key, resultPrefix)
		slash := strings.IndexByte(rest, '/')
		if slash <= 0 {
			continue
		}
		circuitKey, name := rest[:slash], rest[slash+1:]
		e := s.cache.get(circuitKey)
		if e == nil {
			continue // circuit evicted by the CacheSize bound on reload
		}
		var v storedResult
		if ok, err := st.Get(key, &v); err != nil || !ok || v.Result == nil {
			s.stats.addStoreError()
			continue
		}
		e.saveResult(name, &savedResult{Result: v.Result, Dual: v.Dual}, s.opt.MaxSavedResults)
		s.stats.addReloadedResult()
	}
}
