package service

import (
	"container/list"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
)

// savedResult is one named solve outcome kept for warm-start reuse: the
// final sizes (the primal half of the next warm start), the final
// multiplier snapshot (the dual half), and the full result for export.
type savedResult struct {
	Result *core.Result
	Dual   *core.DualState
}

// entry is one cached circuit: the shared instance, its derived bounds,
// and the named results solved against it. mu serializes every solve and
// sweep on this circuit — solves run on evaluator replicas so they could
// overlap safely, but serializing them keeps the per-circuit memory bound
// at one replica, makes warm-start chains (solve → save → warm solve)
// deterministic per circuit, and matches the sweep engine's
// one-instance/many-cells discipline. Distinct circuits never contend.
// The saved-results map has its own lock (resMu, never held together
// with mu) so read-only endpoints stay responsive while a solve or sweep
// holds mu for its whole — possibly minutes-long — duration.
type entry struct {
	key    string
	name   string
	inst   *bench.Instance
	bounds bench.Bounds
	// farmSpec is the circuit's wire form for farm dispatch: the spec a
	// worker materializes its own bit-identical replica from, captured at
	// registration so the coordinator stays circuit-stateless.
	farmSpec api.CircuitSpec

	mu sync.Mutex // serializes solves/sweeps on this circuit

	resMu   sync.Mutex // guards results and order only
	results map[string]*savedResult
	order   []string // insertion order, for bounded eviction
}

// getResult returns the named saved result, or nil.
func (e *entry) getResult(name string) *savedResult {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	return e.results[name]
}

// resultNames lists the saved result names in insertion order.
func (e *entry) resultNames() []string {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	return append([]string(nil), e.order...)
}

// saveResult stores a named result, evicting the oldest name once the
// per-instance budget is exceeded. Overwriting a name refreshes its
// eviction slot: "oldest" means least recently saved, so a hot,
// repeatedly-overwritten warm-start seed outlives younger names saved
// once and forgotten.
func (e *entry) saveResult(name string, r *savedResult, max int) {
	e.resMu.Lock()
	defer e.resMu.Unlock()
	if _, exists := e.results[name]; exists {
		for i, n := range e.order {
			if n == name {
				e.order = append(e.order[:i], e.order[i+1:]...)
				break
			}
		}
	} else {
		for len(e.order) >= max && len(e.order) > 0 {
			delete(e.results, e.order[0])
			e.order = e.order[1:]
		}
	}
	e.order = append(e.order, name)
	e.results[name] = r
}

// buildCall collapses concurrent registrations of the same key onto one
// instance construction (the front end costs seconds on large circuits);
// late arrivals block on done and share the outcome.
type buildCall struct {
	done chan struct{}
	e    *entry
	err  error
}

// instanceCache is the LRU-bounded instance cache keyed by netlist/spec
// hash. Eviction drops the cache's reference only: requests already
// holding an entry keep using it, and the memory is reclaimed when they
// finish.
type instanceCache struct {
	mu        sync.Mutex
	max       int
	lru       *list.List // of *entry, front = most recently used
	byKey     map[string]*list.Element
	building  map[string]*buildCall
	hits      int64
	misses    int64
	evictions int64
}

func newInstanceCache(max int) *instanceCache {
	return &instanceCache{
		max:      max,
		lru:      list.New(),
		byKey:    map[string]*list.Element{},
		building: map[string]*buildCall{},
	}
}

// get returns the cached entry for key, refreshing its recency, or nil.
func (c *instanceCache) get(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry)
}

// getOrBuild returns the entry for key, constructing it with build on a
// miss. Concurrent calls for one key run build once and share the result;
// the cache lock is never held across build. A build may return explicit
// bounds (grid meshes carry their own calibration); nil falls back to
// bench.DeriveBounds.
func (c *instanceCache) getOrBuild(key, name string, farmSpec api.CircuitSpec, build func() (*bench.Instance, *bench.Bounds, error)) (e *entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry), true, nil
	}
	if bc, ok := c.building[key]; ok {
		c.mu.Unlock()
		<-bc.done
		if bc.err != nil {
			// The build this call joined failed: nothing was cached, so
			// nothing was hit — the counter measures amortization only.
			return nil, false, bc.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return bc.e, true, nil
	}
	bc := &buildCall{done: make(chan struct{})}
	c.building[key] = bc
	c.misses++
	c.mu.Unlock()

	inst, bounds, err := build()
	c.mu.Lock()
	delete(c.building, key)
	if err != nil {
		c.mu.Unlock()
		bc.err = err
		close(bc.done)
		return nil, false, err
	}
	if bounds == nil {
		b := bench.DeriveBounds(inst)
		bounds = &b
	}
	bc.e = &entry{
		key:      key,
		name:     name,
		inst:     inst,
		bounds:   *bounds,
		farmSpec: farmSpec,
		results:  map[string]*savedResult{},
	}
	c.byKey[key] = c.lru.PushFront(bc.e)
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
	c.mu.Unlock()
	close(bc.done)
	return bc.e, false, nil
}

// snapshot returns the cached entries, most recently used first, plus the
// hit/miss/eviction counters.
func (c *instanceCache) snapshot() (entries []*entry, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*entry))
	}
	return entries, c.hits, c.misses, c.evictions
}
