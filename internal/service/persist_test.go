package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// rawSolveResponse captures a /solve response with the result left as raw
// bytes, for byte-for-byte identity assertions.
type rawSolveResponse struct {
	Dedup  bool            `json:"dedup"`
	Result json.RawMessage `json:"result"`
}

func solveRaw(t testing.TB, s *Server, body string) rawSolveResponse {
	t.Helper()
	w := do(t, s, "POST", "/solve", body)
	if w.Code != http.StatusOK {
		t.Fatalf("solve %s: %d %s", body, w.Code, w.Body.String())
	}
	return decodeAs[rawSolveResponse](t, w)
}

// TestRestartBitIdentityOracle is the persistence determinism oracle: a
// warm-start chain replayed against a restarted server — whose save_as
// results came back from the durable store, not from memory — produces
// byte-for-byte the same bytes as the chain run on a server that never
// restarted. no_dedup forces the post-restart solve to actually run, so
// the assertion covers the solver-from-reloaded-state path, not just the
// stored-bytes echo.
func TestRestartBitIdentityOracle(t *testing.T) {
	base := `{"key":%q,"max_iterations":4,"save_as":"base"}`
	refine := `{"key":%q,"max_iterations":4,"warm_from":"base","save_as":"refined"%s}`

	// Reference chain: one storeless server, no restart.
	ref := New(Options{})
	refKey := registerC17(t, ref, 17).Key
	solveRaw(t, ref, fmt.Sprintf(base, refKey))
	want := solveRaw(t, ref, fmt.Sprintf(refine, refKey, ""))

	// Durable chain: solve+save, then simulate a crash-restart by opening
	// a second store on the same directory and building a fresh server.
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Store: st1})
	key := registerC17(t, s1, 17).Key
	if key != refKey {
		t.Fatalf("cache keys diverged: %s vs %s", key, refKey)
	}
	solveRaw(t, s1, fmt.Sprintf(base, key))
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Options{Store: st2})

	// The restarted server rebuilt the circuit and re-attached "base"
	// from the store before serving its first request.
	st := decodeAs[Stats](t, do(t, s2, "GET", "/stats", ""))
	if st.ReloadedCircuits != 1 || st.ReloadedResults != 1 {
		t.Fatalf("reload counters = %d circuits / %d results, want 1/1", st.ReloadedCircuits, st.ReloadedResults)
	}
	if w := do(t, s2, "GET", "/results?key="+key+"&name=base", ""); w.Code != http.StatusOK {
		t.Fatalf("reloaded result missing: %d %s", w.Code, w.Body.String())
	}

	got := solveRaw(t, s2, fmt.Sprintf(refine, key, `,"no_dedup":true`))
	if got.Dedup {
		t.Fatal("no_dedup solve was answered from the store")
	}
	if string(got.Result) != string(want.Result) {
		t.Fatalf("restart broke the chain:\nno restart: %s\nrestarted:  %s", want.Result, got.Result)
	}
}

// TestSolveDedupAccounting pins the dedup contract: an identical solve
// against a store-backed server returns the stored bytes without running
// the solver (solves counter unchanged, dedup_hits incremented), save_as
// still takes effect on a hit, no_dedup forces a real run, and any knob
// that changes result bits is a miss.
func TestSolveDedupAccounting(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Store: st})
	key := registerC17(t, s, 17).Key

	body := fmt.Sprintf(`{"key":%q,"max_iterations":3}`, key)
	first := solveRaw(t, s, body)
	if first.Dedup {
		t.Fatal("first solve claims dedup")
	}
	second := solveRaw(t, s, body)
	if !second.Dedup {
		t.Fatal("identical second solve did not dedup")
	}
	if string(second.Result) != string(first.Result) {
		t.Fatalf("dedup returned different bytes:\n%s\n%s", first.Result, second.Result)
	}
	stats := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if stats.Solves != 1 || stats.DedupHits != 1 {
		t.Fatalf("solves=%d dedup_hits=%d, want 1 and 1", stats.Solves, stats.DedupHits)
	}
	if stats.StoreRecords == 0 {
		t.Fatal("store_records not reported")
	}

	// save_as is honored on a hit: the name exists without a new solve.
	saved := solveRaw(t, s, fmt.Sprintf(`{"key":%q,"max_iterations":3,"save_as":"dup"}`, key))
	if !saved.Dedup {
		t.Fatal("save_as variant should still dedup (save_as is not part of the key)")
	}
	if w := do(t, s, "GET", "/results?key="+key+"&name=dup", ""); w.Code != http.StatusOK {
		t.Fatalf("save_as on dedup hit did not save: %d", w.Code)
	}

	// no_dedup forces the solver to run again.
	forced := solveRaw(t, s, fmt.Sprintf(`{"key":%q,"max_iterations":3,"no_dedup":true}`, key))
	if forced.Dedup {
		t.Fatal("no_dedup solve was answered from the store")
	}
	if string(forced.Result) != string(first.Result) {
		t.Fatal("forced re-run changed bits — determinism broken")
	}
	stats = decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if stats.Solves != 2 {
		t.Fatalf("no_dedup run not counted: solves=%d", stats.Solves)
	}

	// A knob that changes result bits misses.
	miss := solveRaw(t, s, fmt.Sprintf(`{"key":%q,"max_iterations":2}`, key))
	if miss.Dedup {
		t.Fatal("different max_iterations must not dedup")
	}

	// Normalization: spelling out the defaults hashes like omitting them.
	def := solveRaw(t, s, fmt.Sprintf(`{"key":%q}`, key))
	if def.Dedup {
		t.Fatal("default solve deduped against a max_iterations:3 solve")
	}
	norm := solveRaw(t, s, fmt.Sprintf(`{"key":%q,"max_iterations":1000,"epsilon":0.01}`, key))
	if !norm.Dedup {
		t.Fatal("explicit defaults should dedup against the omitted-defaults solve")
	}
}

// TestStorelessServerNeverDedups pins that a server without -data behaves
// exactly as before the store existed.
func TestStorelessServerNeverDedups(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	body := fmt.Sprintf(`{"key":%q,"max_iterations":2}`, key)
	solveRaw(t, s, body)
	if again := solveRaw(t, s, body); again.Dedup {
		t.Fatal("storeless server claimed a dedup hit")
	}
	st := decodeAs[Stats](t, do(t, s, "GET", "/stats", ""))
	if st.Solves != 2 || st.DedupHits != 0 || st.StoreRecords != 0 {
		t.Fatalf("storeless stats off: %+v", st)
	}
}

// watchEvent mirrors the progressEvent wire form for assertions.
type watchEvent struct {
	Kind       string `json:"kind"`
	Solve      int64  `json:"solve"`
	Iterations int    `json:"iterations"`
	Dedup      bool   `json:"dedup"`
	Iter       *struct {
		K   int     `json:"k"`
		Gap float64 `json:"gap"`
	} `json:"iter"`
}

// TestWatchCursorSemantics pins GET /watch long-polling: a solve's
// trajectory lands on the circuit's log as solve_start, one iter per
// solver iteration, and solve_done; a cursor resumes exactly after the
// last-seen event; a dedup-answered solve emits a dedup solve_done.
func TestWatchCursorSemantics(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key

	if w := do(t, s, "GET", "/watch", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("missing key: %d", w.Code)
	}
	if w := do(t, s, "GET", "/watch?key=nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown key: %d", w.Code)
	}
	if w := do(t, s, "GET", "/watch?key="+key+"&cursor=x", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d", w.Code)
	}

	// Before any solve: an empty log, cursor echoed back.
	empty := decodeAs[watchResponse](t, do(t, s, "GET", "/watch?key="+key, ""))
	if len(empty.Events) != 0 || empty.Next != 0 || empty.Gapped {
		t.Fatalf("pre-solve watch not empty: %+v", empty)
	}

	res := decodeAs[solveResponse](t, do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":3}`, key)))

	got := decodeAs[watchResponse](t, do(t, s, "GET", "/watch?key="+key, ""))
	kinds := map[string]int{}
	var events []watchEvent
	for _, ev := range got.Events {
		var we watchEvent
		if err := json.Unmarshal(ev.Data, &we); err != nil {
			t.Fatalf("bad event %s: %v", ev.Data, err)
		}
		events = append(events, we)
		kinds[we.Kind]++
	}
	if kinds["solve_start"] != 1 || kinds["solve_done"] != 1 {
		t.Fatalf("want one solve_start and one solve_done, got %v", kinds)
	}
	if kinds["iter"] != res.Result.Iterations {
		t.Fatalf("iter events = %d, want the solve's %d iterations", kinds["iter"], res.Result.Iterations)
	}
	if first, last := events[0], events[len(events)-1]; first.Kind != "solve_start" || last.Kind != "solve_done" {
		t.Fatalf("stream not bracketed: first %q last %q", first.Kind, last.Kind)
	}
	if done := events[len(events)-1]; done.Iterations != res.Result.Iterations {
		t.Fatalf("solve_done iterations %d != result %d", done.Iterations, res.Result.Iterations)
	}
	for i, we := range events[1 : len(events)-1] {
		if we.Iter == nil || we.Iter.K != i+1 {
			t.Fatalf("iter event %d carries k=%+v, want %d", i, we.Iter, i+1)
		}
	}

	// Cursor resume: everything before Next is consumed.
	rest := decodeAs[watchResponse](t, do(t, s, "GET", fmt.Sprintf("/watch?key=%s&cursor=%d", key, got.Next), ""))
	if len(rest.Events) != 0 || rest.Next != got.Next {
		t.Fatalf("cursor did not consume the stream: %+v", rest)
	}
	mid := decodeAs[watchResponse](t, do(t, s, "GET", fmt.Sprintf("/watch?key=%s&cursor=%d", key, got.Next-2), ""))
	if len(mid.Events) != 2 || mid.Next != got.Next {
		t.Fatalf("mid-stream cursor returned %d events next=%d, want 2 and %d", len(mid.Events), mid.Next, got.Next)
	}
}

// TestWatchSSEStream drives the SSE mode over a real connection: events
// stream out as id/data frames and the client's disconnect ends the
// handler.
func TestWatchSSEStream(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	if w := do(t, s, "POST", "/solve", fmt.Sprintf(`{"key":%q,"max_iterations":2}`, key)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/watch?key="+key+"&sse=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var dataLines []string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			dataLines = append(dataLines, strings.TrimPrefix(line, "data: "))
			if strings.Contains(line, "solve_done") {
				break
			}
		}
	}
	// 2 iterations bracketed by solve_start and solve_done.
	if len(dataLines) != 4 {
		t.Fatalf("SSE data frames = %d (%v), want 4", len(dataLines), dataLines)
	}
	cancel() // the handler's Wait sees the disconnect and returns
}
