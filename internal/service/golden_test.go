package service

// The service oracle: the HTTP path must return results bit-identical to
// the equivalent offline core.Solver.Run / sweep.Run on the same inputs —
// the same determinism contract every lower layer holds. The tests below
// pin it three ways: POST /solve against an in-process offline solve
// (exact on every architecture), POST /solve against the committed golden
// fixtures (exact on the architecture that generated them; see
// golden_test.go at the repo root for the FMA caveat), and POST /sweep —
// streamed and buffered — against a direct sweep.Run.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sweep"
)

const goldenArch = "amd64"

// offlineC17 builds the same instance the golden suite's c17 fixture uses:
// the committed netlist, geometry seed 17, default pipeline.
func offlineC17(t testing.TB) *bench.Instance {
	t.Helper()
	nl, err := netlist.Parse("c17", strings.NewReader(c17Netlist(t)))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.AssembleNetlist(nl, 17, bench.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func readGolden(t testing.TB, name string) *core.Result {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	res := new(core.Result)
	if err := json.Unmarshal(data, res); err != nil {
		t.Fatal(err)
	}
	return res
}

func solveOK(t testing.TB, s *Server, body string) solveResponse {
	t.Helper()
	w := do(t, s, "POST", "/solve", body)
	if w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
	return decodeAs[solveResponse](t, w)
}

// TestSolveMatchesOfflineC17 is the architecture-independent half of the
// oracle: the HTTP path must reproduce an offline solve of the identical
// instance bit for bit.
func TestSolveMatchesOfflineC17(t *testing.T) {
	inst := offlineC17(t)
	b := bench.DeriveBounds(inst)
	opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	opt.Workers = 1
	sol, err := core.NewSolver(inst.Eval, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	offline, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{})
	key := registerC17(t, s, 17).Key
	got := solveOK(t, s, fmt.Sprintf(`{"key":%q}`, key))
	if !reflect.DeepEqual(offline, got.Result) {
		t.Error("HTTP solve diverged from the offline solver on the same instance")
	}
	// A second solve on the cached instance must reproduce it again: cache
	// reuse and replica evaluators add no state between requests.
	if again := solveOK(t, s, fmt.Sprintf(`{"key":%q}`, key)); !reflect.DeepEqual(got.Result, again.Result) {
		t.Error("repeated HTTP solve on the cached instance diverged")
	}
}

// TestSolveMatchesGoldenFixtures pins the HTTP path to the committed
// golden snapshots — c17 (netlist upload) and c432 (synthetic spec,
// 30-iteration budget), exactly as the root golden suite solves them.
func TestSolveMatchesGoldenFixtures(t *testing.T) {
	if runtime.GOARCH != goldenArch {
		t.Skipf("golden snapshots are bitwise only on %s (FMA; GOARCH=%s); TestSolveMatchesOfflineC17 covers this architecture", goldenArch, runtime.GOARCH)
	}
	s := New(Options{})

	t.Run("c17", func(t *testing.T) {
		key := registerC17(t, s, 17).Key
		got := solveOK(t, s, fmt.Sprintf(`{"key":%q}`, key))
		if !reflect.DeepEqual(readGolden(t, "c17"), got.Result) {
			t.Error("HTTP c17 solve diverged from the committed golden fixture")
		}
	})
	t.Run("c432", func(t *testing.T) {
		w := do(t, s, "POST", "/circuits", `{"synthetic":"c432"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("register: %d %s", w.Code, w.Body.String())
		}
		key := decodeAs[registerResponse](t, w).Key
		got := solveOK(t, s, fmt.Sprintf(`{"key":%q,"max_iterations":30}`, key))
		if !reflect.DeepEqual(readGolden(t, "c432"), got.Result) {
			t.Error("HTTP c432 solve diverged from the committed golden fixture")
		}
	})
}

// TestWarmStartReuse exercises the save_as / warm_from chain: a warmed
// solve succeeds at shifted bounds, and with the S1 reset and the dual
// dropped it is bit-identical to a cold solve at the same bounds (the
// seed-independence theorem, observed through the HTTP path).
func TestWarmStartReuse(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	base := solveOK(t, s, fmt.Sprintf(`{"key":%q,"save_as":"base"}`, key))
	if !base.Result.Converged {
		t.Fatalf("base solve did not converge: %+v", base.Result)
	}

	a0 := 1.05 * base.Result.DelayPs
	warm := solveOK(t, s, fmt.Sprintf(`{"key":%q,"a0":%g,"warm_from":"base"}`, key, a0))
	if warm.WarmFrom != "base" || !warm.Result.Converged {
		t.Fatalf("warm solve failed: %+v", warm)
	}

	cold := solveOK(t, s, fmt.Sprintf(`{"key":%q,"a0":%g}`, key, a0))
	warmS1 := solveOK(t, s, fmt.Sprintf(`{"key":%q,"a0":%g,"warm_from":"base","s1":true,"primal_only":true}`, key, a0))
	if !reflect.DeepEqual(cold.Result, warmS1.Result) {
		t.Error("warm_from with s1+primal_only diverged from the cold solve (seed independence broken over HTTP)")
	}

	// The externalized round trip: export the saved result, feed its
	// sizes and dual back inline, and reproduce the server-side warm path.
	exp := decodeAs[resultResponse](t, do(t, s, "GET", "/results?key="+key+"&name=base", ""))
	sizes, err := json.Marshal(exp.Result.X)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := json.Marshal(exp.Dual)
	if err != nil {
		t.Fatal(err)
	}
	inline := solveOK(t, s, fmt.Sprintf(`{"key":%q,"a0":%g,"seed_sizes":%s,"dual":%s}`, key, a0, sizes, dual))
	if !reflect.DeepEqual(warm.Result, inline.Result) {
		t.Error("inline seed_sizes+dual diverged from the server-side warm_from path")
	}
}

// sweepBody is the request both sweep oracle tests share.
func sweepBody(key string, stream bool) string {
	return fmt.Sprintf(`{"key":%q,"delay_scale":[1,1.06],"noise_scale":[0.9,1,1.2],"max_iterations":6,"sweep_workers":2,"stream":%t}`, key, stream)
}

// TestSweepMatchesOffline cross-checks POST /sweep — buffered and
// streamed — against a direct sweep.Run on the identical instance.
func TestSweepMatchesOffline(t *testing.T) {
	inst := offlineC17(t)
	b := bench.DeriveBounds(inst)
	offline, err := sweep.Run(inst, sweep.Options{
		DelayScale: []float64{1, 1.06}, NoiseScale: []float64{0.9, 1, 1.2},
		Bounds: &b, MaxIterations: 6, Workers: 1, SweepWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	s := New(Options{})
	key := registerC17(t, s, 17).Key
	w := do(t, s, "POST", "/sweep", sweepBody(key, false))
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", w.Code, w.Body.String())
	}
	buffered := decodeAs[sweepResponse](t, w)
	stripSweepTiming(offline)
	stripSweepTiming(buffered.Result)
	if !reflect.DeepEqual(offline, buffered.Result) {
		t.Error("HTTP sweep diverged from the offline sweep engine")
	}

	// Streamed: one NDJSON cell per line, then the summary; reassembled
	// row-major they are the same grid.
	w = do(t, s, "POST", "/sweep", sweepBody(key, true))
	if w.Code != http.StatusOK {
		t.Fatalf("streamed sweep: %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("streamed Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != len(offline.Cells)+1 {
		t.Fatalf("streamed %d lines, want %d cells + summary", len(lines), len(offline.Cells))
	}
	var summary sweepSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil || !summary.Done {
		t.Fatalf("bad summary line %q: %v", lines[len(lines)-1], err)
	}
	if !reflect.DeepEqual(summary.Frontier, offline.Frontier) {
		t.Errorf("streamed frontier %v, want %v", summary.Frontier, offline.Frontier)
	}
	got := make([]sweep.Cell, len(offline.Cells))
	for _, line := range lines[:len(lines)-1] {
		var c sweep.Cell
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("bad cell line %q: %v", line, err)
		}
		c.SolveSec = 0
		got[c.Row*summary.Cols+c.Col] = c
	}
	if !reflect.DeepEqual(offline.Cells, got) {
		t.Error("streamed cells diverged from the offline sweep grid")
	}
}

func stripSweepTiming(r *sweep.Result) {
	for i := range r.Cells {
		r.Cells[i].SolveSec = 0
	}
}

func TestSweepErrors(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 17).Key
	cases := []struct {
		name, body string
		code       int
		want       string
	}{
		{"invalid json", `{`, http.StatusBadRequest, "bad sweep request"},
		{"unknown key", `{"key":"nope"}`, http.StatusNotFound, "no cached circuit"},
		{"bad factor", fmt.Sprintf(`{"key":%q,"delay_scale":[-1]}`, key),
			http.StatusUnprocessableEntity, "must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := do(t, s, "POST", "/sweep", c.body)
			if w.Code != c.code {
				t.Fatalf("status %d, want %d (%s)", w.Code, c.code, w.Body.String())
			}
			if e := decodeAs[errorResponse](t, w); !strings.Contains(e.Error, c.want) {
				t.Errorf("error %q does not mention %q", e.Error, c.want)
			}
		})
	}
	// A streamed sweep that fails before the first cell still gets a real
	// error status (nothing was committed yet), with the JSON error body.
	w := do(t, s, "POST", "/sweep", fmt.Sprintf(`{"key":%q,"delay_scale":[-1],"stream":true}`, key))
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("streamed pre-first-cell error: status %d, want 422", w.Code)
	}
	if e := decodeAs[errorResponse](t, w); !strings.Contains(e.Error, "must be positive") {
		t.Errorf("streamed error %q does not mention the bad factor", e.Error)
	}
}
