package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/variation"
)

// Process-variation endpoints: POST /montecarlo (seeded Monte-Carlo
// yield analysis) and the corners option on POST /sweep (the standard
// five-corner enumeration). Both run the internal/variation modes
// against a cached instance, stream per-sample / per-corner progress on
// the circuit's watch log, persist finished runs for dedup (same seed →
// same bytes, so a repeat answers from the store without solving), and
// dispatch to the farm when workers are live — with bit-identical
// results either way, the same contract solves and sweeps carry.

// Store key prefixes for the variation modes (see persist.go for the
// base layout).
const (
	mcPrefix      = "mc/"
	cornersPrefix = "corners/"
)

// storedMC is the persisted outcome of one Monte-Carlo run, keyed by
// mcKey — the dedup payload POST /montecarlo returns without solving.
type storedMC struct {
	CircuitKey string              `json:"circuit_key"`
	Circuit    string              `json:"circuit"`
	Result     *variation.MCResult `json:"result"`
}

// storedCorners is the persisted outcome of one corner enumeration,
// keyed by cornersKey.
type storedCorners struct {
	CircuitKey string                  `json:"circuit_key"`
	Circuit    string                  `json:"circuit"`
	Report     *variation.CornerReport `json:"report"`
}

// mcKey hashes everything that determines a Monte-Carlo run's bits: the
// circuit content hash, the resolved bounds, the sample count, seed, and
// sigmas, and the normalized solver knobs. Workers and Solo are
// deliberately excluded — the run is bit-identical at every lockstep
// width and on the solo path (the variation oracle pins it) — so the
// same run re-requested with different scheduling dedups.
func mcKey(circuitKey string, b bench.Bounds, samples int, seed uint64, sg variation.Sigmas, maxIter int, epsilon float64) string {
	h := sha256.New()
	put := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "mc/v1|%s|", circuitKey)
	put(math.Float64bits(b.A0))
	put(math.Float64bits(b.NoiseBound))
	put(math.Float64bits(b.PowerBound))
	put(uint64(samples))
	put(seed)
	put(math.Float64bits(sg.R))
	put(math.Float64bits(sg.C))
	put(math.Float64bits(sg.Threshold))
	put(normalizedKnobs(maxIter, epsilon))
	put(math.Float64bits(normalizedEpsilon(epsilon)))
	return hex.EncodeToString(h.Sum(nil))
}

// cornersKey is the corner-enumeration analogue of mcKey: circuit,
// resolved bounds, the corner list itself, the warm/cold schedule knobs
// (they are pinned bit-identical under ColdLRS+PrimalOnly but are an
// explicit request surface, so they hash conservatively like solveKey's
// Full), and the normalized solver knobs.
func cornersKey(circuitKey string, b bench.Bounds, corners []variation.Corner, cold, primalOnly, coldLRS, full bool, maxIter int, epsilon float64) string {
	h := sha256.New()
	put := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "corners/v1|%s|", circuitKey)
	put(math.Float64bits(b.A0))
	put(math.Float64bits(b.NoiseBound))
	put(math.Float64bits(b.PowerBound))
	put(uint64(len(corners)))
	for _, c := range corners {
		fmt.Fprintf(h, "%s|", c.Name)
		put(math.Float64bits(c.R))
		put(math.Float64bits(c.C))
		put(math.Float64bits(c.Threshold))
	}
	flags := uint64(0)
	if cold {
		flags |= 1
	}
	if primalOnly {
		flags |= 2
	}
	if coldLRS {
		flags |= 4
	}
	if full {
		flags |= 8
	}
	put(flags)
	put(normalizedKnobs(maxIter, epsilon))
	put(math.Float64bits(normalizedEpsilon(epsilon)))
	return hex.EncodeToString(h.Sum(nil))
}

// normalizedKnobs / normalizedEpsilon mirror core.Options.validate's
// defaulting, so "default by omission" and "default spelled out" hash
// identically (the same normalization solveKey applies).
func normalizedKnobs(maxIter int, _ float64) uint64 {
	if maxIter <= 0 {
		maxIter = 1000
	}
	return uint64(maxIter)
}

func normalizedEpsilon(epsilon float64) float64 {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		epsilon = 0.01
	}
	return epsilon
}

// montecarloRequest runs a Monte-Carlo yield analysis against a cached
// instance: samples perturbed replicas drawn from the seeded sampler,
// each solved to completion, reported with delay/area/noise
// distributions and the delay-constraint yield. The a0/noise/power
// overrides resolve the base bounds exactly as a solve request; sigmas
// are the lognormal spreads of the R/C/threshold perturbations. Same
// seed → byte-identical response, locally or distributed.
type montecarloRequest struct {
	Key string `json:"key"`
	// Base-bounds overrides: 0 = derived, >0 = override, <0 = disable.
	A0    float64 `json:"a0,omitempty"`
	Noise float64 `json:"noise,omitempty"`
	Power float64 `json:"power,omitempty"`
	// Samples is the number of perturbed replicas (required, positive);
	// Seed the sampler seed; Sigmas the perturbation spreads (all three
	// zero = every sample nominal).
	Samples int              `json:"samples"`
	Seed    uint64           `json:"seed,omitempty"`
	Sigmas  variation.Sigmas `json:"sigmas"`
	// Solver knobs; 0 keeps the defaults. Workers: 0 = server default,
	// negative = all cores — results bit-identical at every width.
	MaxIterations int     `json:"max_iterations,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	// Solo solves the samples sequentially on per-sample evaluators
	// instead of the lockstep batch — scheduling only, bits identical.
	Solo bool `json:"solo,omitempty"`
	// NoDedup forces the run even when the store already holds this exact
	// run (same circuit, bounds, seed, samples, sigmas, knobs).
	NoDedup bool `json:"no_dedup,omitempty"`
}

// montecarloResponse is the POST /montecarlo payload.
type montecarloResponse struct {
	Key      string  `json:"key"`
	Circuit  string  `json:"circuit"`
	SolveSec float64 `json:"solve_sec"`
	// Dedup marks a response answered from the durable store without
	// running; Result is byte-for-byte the original run's.
	Dedup  bool                `json:"dedup,omitempty"`
	Result *variation.MCResult `json:"result"`
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req montecarloRequest
	if err := decode(r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad montecarlo request: %v", err)
		return
	}
	e := s.cache.get(req.Key)
	if e == nil {
		writeError(w, http.StatusNotFound, "montecarlo: no cached circuit for key %q (register it first; it may have been evicted)", req.Key)
		return
	}
	if req.Samples == 0 {
		req.Samples = s.opt.DefaultMCSamples
	}
	if req.Seed == 0 {
		req.Seed = s.opt.DefaultMCSeed
	}
	if req.Samples <= 0 {
		writeError(w, http.StatusBadRequest, "montecarlo: samples must be positive, got %d", req.Samples)
		return
	}
	if err := req.Sigmas.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "montecarlo: %v", err)
		return
	}
	bounds, err := resolveBounds(e.bounds, req.A0, req.Noise, req.Power)
	if err != nil {
		writeError(w, http.StatusBadRequest, "montecarlo: %v", err)
		return
	}

	// Overload gate, then the standard lock order (circuit mutex before
	// the global solve slot) — see handleSolve.
	if !s.admitSolve(w, r, "montecarlo") {
		return
	}
	defer s.releaseSolve()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !s.acquireSolveSlot(w, r) {
		return
	}
	defer func() { <-s.sem }()

	wlog := s.watchLog(e.key)
	solveID := s.nextSolveID()

	// Dedup: the run's bits are a pure function of (circuit, bounds,
	// seed, samples, sigmas, knobs) — scheduling excluded — so a stored
	// run answers a repeat byte-for-byte without solving.
	mk := mcKey(e.key, bounds, req.Samples, req.Seed, req.Sigmas, req.MaxIterations, req.Epsilon)
	if !req.NoDedup {
		if hit := s.lookupMC(mk); hit != nil && hit.Result != nil {
			s.stats.addDedupHit()
			s.emit(wlog, progressEvent{
				Kind: "mc_done", Solve: solveID, Dedup: true,
				Iterations: len(hit.Result.Samples), Yield: hit.Result.Yield,
			})
			writeJSON(w, http.StatusOK, montecarloResponse{
				Key: e.key, Circuit: e.name, Dedup: true, Result: hit.Result,
			})
			return
		}
	}
	s.emit(wlog, progressEvent{Kind: "mc_start", Solve: solveID, Iterations: req.Samples})

	onSample := func(sm *variation.Sample) {
		s.emit(wlog, progressEvent{
			Kind: "sample", Solve: solveID, Sample: sm.Index,
			Iterations: sm.Result.Iterations, Converged: sm.Result.Converged,
			Gap: sm.Result.Gap, Area: sm.Result.Area,
		})
	}

	start := time.Now()
	var res *variation.MCResult
	if s.farmReady() {
		// Farm dispatch: the sample range fans out as per-worker shards;
		// the samples reassemble by global index and the shared summarizer
		// rebuilds the exact local report — distributed ≡ local bytes.
		samples, ferr := s.opt.Farm.MonteCarlo(r.Context(), e.farmSpec, api.MonteCarloJob{
			Bounds:        bounds,
			Seed:          req.Seed,
			Sigmas:        req.Sigmas,
			Lo:            0,
			Hi:            req.Samples,
			MaxIterations: req.MaxIterations,
			Epsilon:       req.Epsilon,
		}, onSample)
		if ferr == nil {
			res = variation.Summarize(samples, bounds.A0)
		}
		err = ferr
	} else {
		workers := req.Workers
		if workers == 0 {
			workers = s.opt.DefaultWorkers
		}
		res, err = variation.MonteCarlo(e.inst, variation.MCOptions{
			Samples:       req.Samples,
			Seed:          req.Seed,
			Sigmas:        req.Sigmas,
			Bounds:        &bounds,
			MaxIterations: req.MaxIterations,
			Epsilon:       req.Epsilon,
			Workers:       workers,
			Solo:          req.Solo,
			Cancel:        func() bool { return r.Context().Err() != nil },
			OnSample:      onSample,
		})
	}
	if err != nil {
		s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
		if errors.Is(err, core.ErrCancelled) || r.Context().Err() != nil {
			s.stats.addSolveCancelled()
			writeError(w, http.StatusServiceUnavailable, "montecarlo: cancelled: client disconnected")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "montecarlo: %v", err)
		return
	}
	sec := time.Since(start).Seconds()
	s.storePut(mcPrefix+mk, storedMC{CircuitKey: e.key, Circuit: e.name, Result: res})
	s.emit(wlog, progressEvent{
		Kind: "mc_done", Solve: solveID,
		Iterations: len(res.Samples), Yield: res.Yield, SolveSec: sec,
	})
	s.stats.addMonteCarlo(sec, len(res.Samples))
	writeJSON(w, http.StatusOK, montecarloResponse{
		Key: e.key, Circuit: e.name, SolveSec: sec, Result: res,
	})
}

// lookupMC returns the stored Monte-Carlo run for key, or nil.
func (s *Server) lookupMC(key string) *storedMC {
	if s.opt.Store == nil {
		return nil
	}
	var v storedMC
	ok, err := s.opt.Store.Get(mcPrefix+key, &v)
	if err != nil {
		s.stats.addStoreError()
		return nil
	}
	if !ok {
		return nil
	}
	return &v
}

// lookupCorners returns the stored corner enumeration for key, or nil.
func (s *Server) lookupCorners(key string) *storedCorners {
	if s.opt.Store == nil {
		return nil
	}
	var v storedCorners
	ok, err := s.opt.Store.Get(cornersPrefix+key, &v)
	if err != nil {
		s.stats.addStoreError()
		return nil
	}
	if !ok {
		return nil
	}
	return &v
}

// cornersResponse is the buffered payload of a corners sweep.
type cornersResponse struct {
	Key      string                  `json:"key"`
	Circuit  string                  `json:"circuit"`
	SolveSec float64                 `json:"solve_sec"`
	Dedup    bool                    `json:"dedup,omitempty"`
	Report   *variation.CornerReport `json:"report"`
}

// cornersSummary is the final NDJSON line of a streamed corners sweep.
type cornersSummary struct {
	Done     bool           `json:"done"`
	Key      string         `json:"key"`
	Circuit  string         `json:"circuit"`
	Corners  int            `json:"corners"`
	Nominal  *core.Result   `json:"nominal"`
	Delay    variation.Dist `json:"delay"`
	SolveSec float64        `json:"solve_sec"`
}

// handleCorners serves a sweep request with corners set: the standard
// five-corner enumeration (nominal solve plus one warm-started solve
// per corner) instead of a bounds grid. Streaming emits one CornerCell
// per NDJSON line, then a summary with the nominal solve and the
// cross-corner delay distribution.
func (s *Server) handleCorners(w http.ResponseWriter, r *http.Request, req *sweepRequest, e *entry) {
	bounds, err := resolveBounds(e.bounds, req.A0, req.Noise, req.Power)
	if err != nil {
		writeError(w, http.StatusBadRequest, "corners: %v", err)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.opt.DefaultWorkers
	}

	if !s.admitSolve(w, r, "sweep") {
		return
	}
	defer s.releaseSolve()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !s.acquireSolveSlot(w, r) {
		return
	}
	defer func() { <-s.sem }()

	wlog := s.watchLog(e.key)
	solveID := s.nextSolveID()

	corners := variation.StandardCorners()
	ck := cornersKey(e.key, bounds, corners, req.Cold, req.PrimalOnly, req.S1, req.Full, req.MaxIterations, req.Epsilon)
	if !req.Stream {
		if hit := s.lookupCorners(ck); hit != nil && hit.Report != nil {
			s.stats.addDedupHit()
			s.emit(wlog, progressEvent{
				Kind: "corners_done", Solve: solveID, Dedup: true,
				Iterations: len(hit.Report.Cells),
			})
			writeJSON(w, http.StatusOK, cornersResponse{
				Key: e.key, Circuit: e.name, Dedup: true, Report: hit.Report,
			})
			return
		}
	}

	var nw *ndjsonWriter
	if req.Stream {
		nw = &ndjsonWriter{w: w}
	}
	opt := variation.CornerOptions{
		Corners:       corners,
		Bounds:        &bounds,
		MaxIterations: req.MaxIterations,
		Epsilon:       req.Epsilon,
		Workers:       workers,
		Cold:          req.Cold,
		PrimalOnly:    req.PrimalOnly,
		ColdLRS:       req.S1,
		FullPasses:    req.Full,
		Cancel:        func() bool { return r.Context().Err() != nil },
		OnCorner: func(c *variation.CornerCell) {
			if nw != nil {
				nw.writeLine(c)
			}
			s.emit(wlog, progressEvent{
				Kind: "corner", Solve: solveID, Corner: c.Corner.Name,
				Iterations: c.Result.Iterations, Converged: c.Result.Converged,
				Gap: c.Result.Gap, Area: c.Result.Area,
			})
		},
	}
	s.emit(wlog, progressEvent{Kind: "corners_start", Solve: solveID, Iterations: len(corners)})
	start := time.Now()
	rep, err := variation.CornerSweep(e.inst, opt)
	if err != nil {
		s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
		if errors.Is(err, core.ErrCancelled) || r.Context().Err() != nil {
			s.stats.addSolveCancelled()
			if nw == nil || !nw.started() {
				writeError(w, http.StatusServiceUnavailable, "corners: cancelled: client disconnected")
			} else {
				nw.writeLine(errorResponse{Error: err.Error()})
			}
			return
		}
		if nw == nil || !nw.started() {
			writeError(w, http.StatusUnprocessableEntity, "corners: %v", err)
		} else {
			nw.writeLine(errorResponse{Error: err.Error()})
		}
		return
	}
	sec := time.Since(start).Seconds()
	s.storePut(cornersPrefix+ck, storedCorners{CircuitKey: e.key, Circuit: e.name, Report: rep})
	s.emit(wlog, progressEvent{
		Kind: "corners_done", Solve: solveID,
		Iterations: len(rep.Cells), SolveSec: sec,
	})
	s.stats.addCorners(sec, len(rep.Cells))
	if nw != nil {
		nw.writeLine(cornersSummary{
			Done: true, Key: e.key, Circuit: e.name,
			Corners: len(rep.Cells), Nominal: rep.Nominal, Delay: rep.Delay, SolveSec: sec,
		})
		return
	}
	writeJSON(w, http.StatusOK, cornersResponse{
		Key: e.key, Circuit: e.name, SolveSec: sec, Report: rep,
	})
}
