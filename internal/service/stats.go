package service

import (
	"sync"

	"repro/internal/farm"
	"repro/internal/rc"
)

// serverStats accumulates work counters across every request the server
// has handled: solve and sweep counts and wall-clock, the evaluator work
// counters summed over all request replicas, and the solver's cutover
// hysteresis accounting. Everything is additive, so concurrent requests
// just fold in under the mutex when they finish.
type serverStats struct {
	mu             sync.Mutex
	solves         int64
	solveSec       float64
	sweeps         int64
	sweepCells     int64
	sweepLRSSweeps int64
	sweepSec       float64
	lockstepSweeps int64
	lockstepCells  int64
	eval           rc.EvalStats
	hystTrips      int64
	revertedSweeps int64
	// Durable-store accounting (zero when the server runs storeless).
	dedupHits        int64
	storeErrors      int64
	reloadedCircuits int64
	reloadedResults  int64
	// Resilience accounting: requests shed by the overload gate and
	// solves/sweeps cancelled mid-flight by a disconnected client.
	overloadSheds   int64
	solvesCancelled int64
	// Process-variation accounting: Monte-Carlo runs (and their sample
	// solves) plus corner sweeps (and their corner cells).
	montecarlos int64
	mcSamples   int64
	mcSec       float64
	cornerRuns  int64
	cornerCells int64
	cornerSec   float64
}

func addEval(dst *rc.EvalStats, s rc.EvalStats) {
	dst.FullRecomputes += s.FullRecomputes
	dst.IncRecomputes += s.IncRecomputes
	dst.FullUpstreams += s.FullUpstreams
	dst.IncUpstreams += s.IncUpstreams
	dst.DegradedRecomputes += s.DegradedRecomputes
	dst.DegradedUpstreams += s.DegradedUpstreams
	dst.CutoverRecomputes += s.CutoverRecomputes
	dst.CutoverUpstreams += s.CutoverUpstreams
	dst.ElectricalNodes += s.ElectricalNodes
	dst.CouplingNodes += s.CouplingNodes
	dst.LoadsNodes += s.LoadsNodes
	dst.ArrivalNodes += s.ArrivalNodes
	dst.UpstreamNodes += s.UpstreamNodes
}

func (st *serverStats) addSolve(sec float64, ev rc.EvalStats, trips, reverted int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.solves++
	st.solveSec += sec
	addEval(&st.eval, ev)
	st.hystTrips += trips
	st.revertedSweeps += reverted
}

func (st *serverStats) addDedupHit() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dedupHits++
}

func (st *serverStats) addStoreError() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.storeErrors++
}

func (st *serverStats) addReloadedCircuit() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reloadedCircuits++
}

func (st *serverStats) addReloadedResult() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reloadedResults++
}

func (st *serverStats) addOverloadShed() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.overloadSheds++
}

func (st *serverStats) addSolveCancelled() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.solvesCancelled++
}

func (st *serverStats) addSweep(sec float64, cells, lrsSweeps int, lockstep bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweeps++
	st.sweepCells += int64(cells)
	st.sweepLRSSweeps += int64(lrsSweeps)
	st.sweepSec += sec
	if lockstep {
		st.lockstepSweeps++
		st.lockstepCells += int64(cells)
	}
}

func (st *serverStats) addMonteCarlo(sec float64, samples int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.montecarlos++
	st.mcSamples += int64(samples)
	st.mcSec += sec
}

func (st *serverStats) addCorners(sec float64, cells int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cornerRuns++
	st.cornerCells += int64(cells)
	st.cornerSec += sec
}

// Stats is the GET /stats payload: cache effectiveness, request volume,
// throughput, and the solver/evaluator work counters every lower layer
// already keeps (rc.EvalStats, hysteresis trips).
type Stats struct {
	// Instances is the current cache population; the hit/miss/eviction
	// counters cover the server's whole lifetime.
	Instances  int   `json:"instances"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	Evictions  int64 `json:"evictions"`
	Solves     int64 `json:"solves"`
	Sweeps     int64 `json:"sweeps"`
	SweepCells int64 `json:"sweep_cells"`
	// SolveSec / SweepSec are summed request wall-clocks (s);
	// SweepCellsPerSec is the aggregate sweep throughput the PR-4
	// benchmarks report as cells/s, and SweepLRSSweeps the total inner
	// LRS sweeps the grids executed (their work measure).
	SolveSec         float64 `json:"solve_sec"`
	SweepSec         float64 `json:"sweep_sec"`
	SweepCellsPerSec float64 `json:"sweep_cells_per_sec"`
	SweepLRSSweeps   int64   `json:"sweep_lrs_sweeps"`
	// LockstepSweeps / LockstepCells count the sweeps (and their cells)
	// that ran with lockstep batching (request opt-in or the server's
	// -lockstep default). Lockstep changes scheduling only — the solved
	// grids are bit-identical — so these are throughput attribution, not a
	// results distinction.
	LockstepSweeps int64 `json:"lockstep_sweeps,omitempty"`
	LockstepCells  int64 `json:"lockstep_cells,omitempty"`
	// Eval sums the rc.EvalStats work counters over the /solve request
	// evaluators (sweep cells solve on internal/sweep's own replicas,
	// which are accounted via SweepLRSSweeps instead); NodeVisits is the
	// per-node body total, HysteresisTrips / RevertedSweeps the
	// solver-level cutover accounting, both for /solve requests.
	Eval            rc.EvalStats `json:"eval"`
	NodeVisits      int64        `json:"node_visits"`
	HysteresisTrips int64        `json:"hysteresis_trips"`
	RevertedSweeps  int64        `json:"reverted_sweeps"`
	// Durable-store accounting (ogwsd -data): DedupHits counts /solve
	// requests answered from the store without running the solver,
	// ReloadedCircuits / ReloadedResults what the last boot replayed, and
	// StoreRecords the store's current key count. StoreErrors counts
	// persistence failures — the solve still succeeds, only durability is
	// degraded, so the counter (not the response) is where they surface.
	DedupHits        int64 `json:"dedup_hits"`
	StoreErrors      int64 `json:"store_errors,omitempty"`
	ReloadedCircuits int64 `json:"reloaded_circuits,omitempty"`
	ReloadedResults  int64 `json:"reloaded_results,omitempty"`
	StoreRecords     int   `json:"store_records,omitempty"`
	// StoreMode is "rw" or "degraded" (read-only after persistent write
	// failure; see storeGate), present when the server has a store.
	// StoreDegrades / StoreRecoveries count the mode flips and
	// StoreWritesSkipped the writes dropped while degraded.
	StoreMode          string `json:"store_mode,omitempty"`
	StoreDegrades      int64  `json:"store_degrades,omitempty"`
	StoreRecoveries    int64  `json:"store_recoveries,omitempty"`
	StoreWritesSkipped int64  `json:"store_writes_skipped,omitempty"`
	// OverloadSheds counts solve/sweep requests rejected 503 by the
	// admission gate (queue past MaxQueuedSolves, or draining);
	// SolvesCancelled counts solves and sweeps a disconnected client
	// stopped mid-flight at an iteration boundary.
	OverloadSheds   int64 `json:"overload_sheds,omitempty"`
	SolvesCancelled int64 `json:"solves_cancelled,omitempty"`
	// Process-variation accounting: MonteCarlos counts POST /montecarlo
	// runs (MCSamples their sample solves, MCSamplesPerSec the aggregate
	// sample throughput); CornerSweeps counts corners-mode sweep requests
	// and CornerCells their per-corner solves.
	MonteCarlos     int64   `json:"montecarlos,omitempty"`
	MCSamples       int64   `json:"montecarlo_samples,omitempty"`
	MCSec           float64 `json:"montecarlo_sec,omitempty"`
	MCSamplesPerSec float64 `json:"montecarlo_samples_per_sec,omitempty"`
	CornerSweeps    int64   `json:"corner_sweeps,omitempty"`
	CornerCells     int64   `json:"corner_cells,omitempty"`
	CornerSec       float64 `json:"corner_sec,omitempty"`
	// Farm, present only in -coordinator mode, reports the worker fleet:
	// per-worker job/cell counters plus reap and re-queue totals. Work a
	// worker performed remotely is folded into the counters above when its
	// results land (a remote solve's Eval counters count exactly once).
	Farm *farm.Stats `json:"farm,omitempty"`
}

func (st *serverStats) snapshot(instances int, hits, misses, evictions int64) Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Stats{
		Instances: instances,
		CacheHits: hits, CacheMiss: misses, Evictions: evictions,
		Solves: st.solves, Sweeps: st.sweeps, SweepCells: st.sweepCells,
		SweepLRSSweeps: st.sweepLRSSweeps,
		LockstepSweeps: st.lockstepSweeps, LockstepCells: st.lockstepCells,
		SolveSec: st.solveSec, SweepSec: st.sweepSec,
		Eval:             st.eval,
		NodeVisits:       st.eval.NodeVisits(),
		HysteresisTrips:  st.hystTrips,
		RevertedSweeps:   st.revertedSweeps,
		DedupHits:        st.dedupHits,
		StoreErrors:      st.storeErrors,
		ReloadedCircuits: st.reloadedCircuits,
		ReloadedResults:  st.reloadedResults,
		OverloadSheds:    st.overloadSheds,
		SolvesCancelled:  st.solvesCancelled,
		MonteCarlos:      st.montecarlos,
		MCSamples:        st.mcSamples,
		MCSec:            st.mcSec,
		CornerSweeps:     st.cornerRuns,
		CornerCells:      st.cornerCells,
		CornerSec:        st.cornerSec,
	}
	if st.sweepSec > 0 {
		out.SweepCellsPerSec = float64(st.sweepCells) / st.sweepSec
	}
	if st.mcSec > 0 {
		out.MCSamplesPerSec = float64(st.mcSamples) / st.mcSec
	}
	return out
}
