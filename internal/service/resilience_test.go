package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/api"
	"repro/internal/fault"
	"repro/internal/store"
)

// statsOf fetches and decodes GET /stats.
func statsOf(t testing.TB, s *Server) Stats {
	t.Helper()
	w := do(t, s, "GET", "/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d %s", w.Code, w.Body.String())
	}
	return decodeAs[Stats](t, w)
}

// TestOverloadShed503WithRetryAfter pins the admission gate: once
// MaxQueuedSolves requests are in flight, the next solve and sweep are
// shed immediately with 503 + Retry-After and counted, and the gate
// reopens as soon as a slot frees.
func TestOverloadShed503WithRetryAfter(t *testing.T) {
	s := New(Options{MaxQueuedSolves: 1})
	key := registerC17(t, s, 11).Key

	// Fill the gate as an admitted request would, without the race of
	// timing a real long-running solve.
	s.inflight.Add(1)
	for _, req := range []struct{ path, body string }{
		{"/solve", `{"key":"` + key + `","max_iterations":2}`},
		{"/sweep", `{"key":"` + key + `","max_iterations":2}`},
	} {
		w := do(t, s, "POST", req.path, req.body)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s at capacity: code %d %s, want 503", req.path, w.Code, w.Body.String())
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("%s shed without a Retry-After header", req.path)
		}
		if !strings.Contains(w.Body.String(), "queue full") {
			t.Fatalf("%s shed body %q, want queue-full error", req.path, w.Body.String())
		}
	}
	if st := statsOf(t, s); st.OverloadSheds != 2 {
		t.Fatalf("overload_sheds = %d, want 2", st.OverloadSheds)
	}

	// Slot freed: the identical request is admitted and solves.
	s.inflight.Add(-1)
	if w := do(t, s, "POST", "/solve", `{"key":"`+key+`","max_iterations":2}`); w.Code != http.StatusOK {
		t.Fatalf("solve after release: %d %s", w.Code, w.Body.String())
	}
	if n := s.inflight.Load(); n != 0 {
		t.Fatalf("inflight = %d after requests finished, want 0", n)
	}
}

// TestDrainQuiescesServer pins the graceful-shutdown half of the service
// (the ogwsd SIGTERM path): a drained server sheds new work with 503,
// waits for in-flight requests, cancels outstanding farm runs so no
// request stays parked on a dead fleet, and writes a final store
// checkpoint so the next boot replays a compact snapshot.
func TestDrainQuiescesServer(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	coord := farm.New(farm.Options{})
	s := New(Options{Store: st, Farm: coord})
	key := registerC17(t, s, 23).Key
	if w := do(t, s, "POST", "/solve", `{"key":"`+key+`","max_iterations":2}`); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}

	// A farm run with no workers parks forever; Drain must kill it.
	runErr := make(chan error, 1)
	go func() {
		_, err := coord.Solve(context.Background(), api.CircuitSpec{Key: "drain-grid", Grid: &api.GridSpec{Width: 4, Layers: 3}}, api.SolveJob{MaxIterations: 2})
		runErr <- err
	}()
	waitFor(t, "farm run queued", func() bool { return coord.StatsSnapshot().JobsQueued > 0 })

	if err := s.Drain(context.Background()); err == nil {
		t.Fatal("Drain with an unfinished farm run reported nil (the cancellation should surface)")
	}
	select {
	case err := <-runErr:
		if err == nil || !strings.Contains(err.Error(), "draining") {
			t.Fatalf("parked farm run got %v, want a draining error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("farm run still parked after Drain")
	}

	// New work is shed with 503 + Retry-After.
	w := do(t, s, "POST", "/solve", `{"key":"`+key+`","max_iterations":2}`)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("solve on drained server: %d %s, want 503 draining", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("drained shed without a Retry-After header")
	}

	// The final checkpoint compacted the journal: everything lives in the
	// checkpoint file, and a fresh store on the directory sees it all.
	if fi, err := os.Stat(filepath.Join(dir, "journal.ndjson")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after drain checkpoint: size %v err %v, want empty", fi, err)
	}
	records := st.Len()
	st.Close()
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != records {
		t.Fatalf("reopened store has %d records, want %d", st2.Len(), records)
	}
}

// TestDrainDeadlineBoundsTheWait pins the bounded half of the drain: a
// request that outlives the deadline does not hold shutdown hostage —
// Drain returns the context error, and still checkpoints the store.
func TestDrainDeadlineBoundsTheWait(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Options{Store: st})
	registerC17(t, s, 29)

	s.inflight.Add(1) // a request that never finishes
	defer s.inflight.Add(-1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.Drain(ctx)
	if err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("Drain past deadline: %v, want in-flight error", err)
	}
	// The checkpoint still landed despite the stuck request.
	if fi, err := os.Stat(filepath.Join(dir, "journal.ndjson")); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after deadline drain: size %v err %v, want empty", fi, err)
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStoreDegradesAndRecovers drives the storeGate end to end on an
// injected clock: three consecutive injected journal-append failures flip
// the server to degraded (read-only) store mode, further writes are
// skipped without touching the bad disk, and once the fault clears the
// first probe past the interval recovers rw mode — all visible in /stats.
func TestStoreDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Exactly three write faults, then a healthy disk again.
	plan := fault.New(7, fault.Rule{Op: "fs:write", Kind: fault.Err, Count: 3})
	st, err := store.Open(dir, store.Options{FS: fault.NewFS(plan, fault.OS())})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var offset atomic.Int64 // injected clock: epoch + offset
	now := func() time.Time { return time.Unix(0, 0).Add(time.Duration(offset.Load())) }
	s := New(Options{
		Store:                 st,
		StoreFailureThreshold: 3,
		StoreProbeInterval:    time.Minute,
		Now:                   now,
	})

	// Three registrations, three failed persists: the gate flips.
	for seed := int64(1); seed <= 3; seed++ {
		registerC17(t, s, seed)
	}
	st1 := statsOf(t, s)
	if st1.StoreMode != "degraded" || st1.StoreDegrades != 1 {
		t.Fatalf("after 3 write failures: mode %q degrades %d, want degraded/1", st1.StoreMode, st1.StoreDegrades)
	}
	if st1.StoreErrors != 3 {
		t.Fatalf("store_errors = %d, want 3", st1.StoreErrors)
	}

	// Degraded: the next persist is skipped (no disk touch, no new error),
	// and the request itself still succeeds — read-only mode, not an
	// outage.
	registerC17(t, s, 4)
	st2 := statsOf(t, s)
	if st2.StoreWritesSkipped == 0 {
		t.Fatal("degraded-mode persist was not counted as skipped")
	}
	if st2.StoreErrors != 3 {
		t.Fatalf("skipped write touched the disk: store_errors %d, want 3", st2.StoreErrors)
	}

	// Advance the injected clock past the probe interval: the next persist
	// is the probe, the fault budget is exhausted, so it succeeds and the
	// gate recovers.
	offset.Store(int64(2 * time.Minute))
	registerC17(t, s, 5)
	st3 := statsOf(t, s)
	if st3.StoreMode != "rw" || st3.StoreRecoveries != 1 {
		t.Fatalf("after probe: mode %q recoveries %d, want rw/1", st3.StoreMode, st3.StoreRecoveries)
	}
	if plan.Total() != 3 {
		t.Fatalf("injected %d faults, want exactly 3", plan.Total())
	}

	// Recovered: writes flow again.
	before := st.Len()
	registerC17(t, s, 6)
	if st.Len() != before+1 {
		t.Fatalf("post-recovery persist did not land: %d records, want %d", st.Len(), before+1)
	}
}

// flipCtx is a request context whose Err flips to Canceled after a fixed
// number of polls — a deterministic stand-in for a client disconnecting
// mid-solve (the solver polls Err at every iteration boundary).
type flipCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestLocalSolveCancelledMidFlight pins the deadline propagation into the
// local solve path: a client gone mid-solve stops the solver at the next
// iteration boundary with 503 and a solves_cancelled count, instead of
// burning the slot to completion.
func TestLocalSolveCancelledMidFlight(t *testing.T) {
	s := New(Options{})
	key := registerC17(t, s, 31).Key

	// Poll 1 is acquireSolveSlot's post-acquire check; poll 2 is the first
	// iteration boundary. Cancelling after poll 2 stops iteration 2.
	ctx := &flipCtx{Context: context.Background(), after: 2}
	r := httptest.NewRequest("POST", "/solve", strings.NewReader(`{"key":"`+key+`","max_iterations":50}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "cancelled") {
		t.Fatalf("cancelled solve: %d %s, want 503 cancelled", w.Code, w.Body.String())
	}
	if st := statsOf(t, s); st.SolvesCancelled != 1 {
		t.Fatalf("solves_cancelled = %d, want 1", st.SolvesCancelled)
	}
	if st := statsOf(t, s); st.Solves != 0 {
		t.Fatalf("cancelled solve was counted as completed (%d)", st.Solves)
	}
}
