package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/sweep"
)

// chaosOutcome is everything one full-stack run produces: the raw solve
// bytes, the (timing-stripped) sweep grid, the final /stats, and the
// fault plans with their post-run counters.
type chaosOutcome struct {
	solve      string // raw JSON of the solve's result field
	grid       *sweep.Result
	stats      Stats
	storePlan  *fault.Plan
	workerPlan *fault.Plan
}

// runChaosStack builds the whole stack the way ogwsd -coordinator -data
// does — service + durable store + embedded coordinator + real workers
// over TCP — runs a fixed register/solve/sweep choreography through it,
// and tears it down. Empty specs run the stack fault-free; non-empty
// ones arm the store filesystem and the first worker with deterministic
// fault plans (the worker's plan faults both its coordinator link and
// its lifecycle, and the choreography requires the rigged worker to die
// of its injected crash mid-sweep before a clean survivor finishes).
func runChaosStack(t *testing.T, storeSpec, workerSpec string) chaosOutcome {
	t.Helper()
	var out chaosOutcome

	var fs fault.FS
	if storeSpec != "" {
		plan, err := fault.Parse(storeSpec)
		if err != nil {
			t.Fatal(err)
		}
		out.storePlan = plan
		fs = fault.NewFS(plan, fault.OS())
	}
	st, err := store.Open(t.TempDir(), store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	coord := farm.New(farm.Options{HeartbeatInterval: 20 * time.Millisecond})
	s := New(Options{Farm: coord, Store: st})
	mux := http.NewServeMux()
	mux.Handle("/farm/v1/", coord.Handler())
	mux.Handle("/", s)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)

	// Register, then solve before any worker is live (local path): with
	// store faults armed, these two Puts are the injected write failures.
	key := registerGrid(t, s).Key
	out.solve = string(solveRaw(t, s, `{"key":"`+key+`","max_iterations":6}`).Result)

	retry := fault.Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 9}
	startWorker := func(name string, plan *fault.Plan) chan error {
		client := http.DefaultClient
		if plan != nil {
			client = &http.Client{Transport: fault.NewTransport(plan, nil)}
		}
		ch := make(chan error, 1)
		go func() {
			ch <- farm.RunWorker(ctx, farm.WorkerOptions{
				Coordinator: ts.URL,
				Name:        name,
				Fault:       plan,
				Client:      client,
				Backoff:     retry,
				LeaseWait:   50 * time.Millisecond,
			})
		}()
		return ch
	}
	live := func(n int) {
		waitFor(t, "live workers", func() bool { return coord.LiveWorkers() >= n })
	}

	var doomedErr chan error
	if workerSpec != "" {
		plan, err := fault.Parse(workerSpec)
		if err != nil {
			t.Fatal(err)
		}
		out.workerPlan = plan
		// The rigged worker registers alone so it is the one that leases
		// the sweep's spine job and dies inside it.
		doomedErr = startWorker("doomed", plan)
		live(1)
	} else {
		startWorker("doomed", nil)
		startWorker("survivor", nil)
		live(2)
	}

	sweepCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		sweepCh <- do(t, s, "POST", "/sweep", `{"key":"`+key+`","delay_scale":[1,1.08],"noise_scale":[0.9,1.2],"max_iterations":6}`)
	}()

	if doomedErr != nil {
		select {
		case err := <-doomedErr:
			if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, farm.ErrFaultInjected) {
				t.Fatalf("rigged worker exited with %v, want injected fault", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("rigged worker never hit its injected crash")
		}
		// Only now admit the survivor: the coordinator must reap the dead
		// worker and re-queue its job for the sweep to finish.
		startWorker("survivor", nil)
	}

	var w *httptest.ResponseRecorder
	select {
	case w = <-sweepCh:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep never completed")
	}
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", w.Code, w.Body.String())
	}
	res := decodeAs[sweepResponse](t, w).Result
	for i := range res.Cells {
		res.Cells[i].SolveSec = 0
	}
	out.grid = res
	out.stats = statsOf(t, s)
	return out
}

// TestChaosOracle is the capstone determinism-under-failure oracle: the
// full stack (service + durable store + coordinator + worker fleet) runs
// the same choreography fault-free and under a seeded fault plan that
// fails store writes, serves a 500 on a lease, severs a result stream
// mid-upload, and crashes a worker mid-sweep — and the solved bytes must
// be identical, every injected fault must be accounted exactly once, and
// the same seed must reproduce the same schedule and bytes.
func TestChaosOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("solves real grids across a worker fleet")
	}
	const (
		storeSpec  = "seed=11;fs:write:err,count=2"
		workerSpec = "seed=7;http:/farm/v1/lease:500,count=1;http:/farm/v1/result:cut,count=1,cut=64;worker:cell:crash,after=1,count=1"
	)

	clean := runChaosStack(t, "", "")
	chaos := runChaosStack(t, storeSpec, workerSpec)

	// Oracle 1: faults are invisible in the bytes.
	if chaos.solve != clean.solve {
		t.Errorf("solve bytes diverged under faults:\nclean: %s\nchaos: %s", clean.solve, chaos.solve)
	}
	if !reflect.DeepEqual(chaos.grid, clean.grid) {
		t.Error("sweep grid diverged under faults")
	}

	// Oracle 2: every injected fault is accounted exactly once. The store
	// plan's injections are the service's store_errors; the worker plan's
	// schedule fired each rule exactly its count; and the farm counters
	// show the crash was reaped, the job re-queued, and the lease 500
	// forced one re-register.
	if got := chaos.storePlan.Total(); got != 2 || chaos.stats.StoreErrors != 2 {
		t.Errorf("store fault accounting: injected %d, store_errors %d, want 2/2 (plan %s)",
			got, chaos.stats.StoreErrors, chaos.storePlan)
	}
	if chaos.stats.StoreMode != "rw" {
		t.Errorf("store_mode %q after 2 failures (threshold 3), want rw", chaos.stats.StoreMode)
	}
	wantCounts := map[string]int64{
		"http:/farm/v1/lease:500":  1,
		"http:/farm/v1/result:cut": 1,
		"worker:cell:crash":        1,
	}
	if got := chaos.workerPlan.Counts(); !reflect.DeepEqual(got, wantCounts) {
		t.Errorf("worker fault accounting: %v, want %v (plan %s)", got, wantCounts, chaos.workerPlan)
	}
	fs := chaos.stats.Farm
	if fs == nil || fs.WorkersReaped < 1 || fs.JobsRequeued < 1 || fs.Reconnects < 1 {
		t.Errorf("farm did not account the faults (reaped/requeued/reconnects): %+v", fs)
	}
	if fs != nil && (fs.RunsCompleted != 1 || fs.RunsFailed != 0) {
		t.Errorf("run accounting: %+v, want 1 completed, 0 failed", fs)
	}

	// Oracle 3: the same seeds reproduce the same schedule and bytes.
	again := runChaosStack(t, storeSpec, workerSpec)
	if again.solve != chaos.solve || !reflect.DeepEqual(again.grid, chaos.grid) {
		t.Error("same-seed chaos run produced different bytes")
	}
	if !reflect.DeepEqual(again.workerPlan.Counts(), chaos.workerPlan.Counts()) {
		t.Errorf("same-seed chaos run produced a different fault schedule: %v vs %v",
			again.workerPlan.Counts(), chaos.workerPlan.Counts())
	}
}
