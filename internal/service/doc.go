// Package service is the long-running sizing service behind cmd/ogwsd: an
// HTTP/JSON front end over the solver stack that amortizes instance
// construction across requests.
//
// The expensive part of a sizing request is not the solve — PRs 1–4 made
// solves parallel, incremental, and warm-startable — but the front end
// that turns a netlist into a solvable instance (logic simulation, wire
// ordering, coupling extraction). The service pays it once per circuit:
// POST /circuits elaborates a netlist (uploaded .bench text or a built-in
// synthetic spec) into a bench.Instance cached under its content hash
// (bench.NetlistKey / bench.SpecKey), and every later request addresses
// the instance by that key. The cache is LRU-bounded; an evicted circuit
// just re-registers.
//
// Endpoints:
//
//	POST /circuits  register a netlist or synthetic spec → instance key
//	GET  /circuits  list cached instances and their saved results
//	POST /solve     one OGWS solve at given bounds, optionally
//	                warm-started from a result saved by a prior solve
//	                (save_as / warm_from) or from inline sizes + dual state
//	POST /sweep     a bounds-grid sweep (internal/sweep); stream=true
//	                emits NDJSON cells as they complete
//	GET  /results   export a saved result (sizes + dual snapshot)
//	GET  /stats     cache, throughput, and evaluator work counters
//	GET  /healthz   liveness
//
// # Concurrency
//
// Concurrency is two-level, mirroring the sweep engine. Requests fan out
// on the HTTP server's goroutines, bounded by a server-wide solve
// semaphore (Options.MaxConcurrentSolves); each solve's inner loops shard
// onto the PR-1 worker pool at the width the request asks for (workers,
// default Options.DefaultWorkers). A per-instance mutex serializes solves
// and sweeps on one circuit: solves run on evaluator replicas
// (bench.Instance.Replica) so the shared instance is never mutated, but
// serializing keeps per-circuit memory at one replica and makes
// warm-start chains (solve, save, solve warm_from) atomic. Grid sweeps
// additionally fan their rows onto internal/fanout inside sweep.Run.
//
// # Determinism
//
// The service adds no numerics, so it inherits the repo-wide contract:
// for a given registered circuit and request parameters, the returned
// result is bit-identical to the equivalent offline core.Solver.Run /
// sweep.Run at every workers width and every concurrency interleaving.
// The golden e2e tests pin POST /solve responses to the committed golden
// fixtures bitwise, and the CI smoke re-checks it over a real TCP
// connection (see TESTING.md, "The service oracle").
package service
