package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/sweep"
)

// sweepRequest runs a bounds-grid sweep (internal/sweep) against a cached
// instance. Axis factors are unitless multipliers: delay_scale scales the
// derived A0 (ps) per row, noise_scale scales the variable part of the
// derived X_B (fF) per column; an empty axis defaults to {1}. The a0/
// noise/power overrides replace the derived base bounds first (same
// semantics as a solve request). With stream set, the response is NDJSON:
// one sweep.Cell object per line as each cell's solve completes (warm
// sweeps interleave rows but stream each row in column order; cold sweeps
// stream cells in completion order), then a final summary line with the
// Pareto frontier — results are bit-identical to the buffered form, so
// clients needing row-major order can place cells by their row/col
// fields.
type sweepRequest struct {
	Key        string    `json:"key"`
	DelayScale []float64 `json:"delay_scale,omitempty"`
	NoiseScale []float64 `json:"noise_scale,omitempty"`
	// Base-bounds overrides: 0 = derived, >0 = override, <0 = disable.
	A0    float64 `json:"a0,omitempty"`
	Noise float64 `json:"noise,omitempty"`
	Power float64 `json:"power,omitempty"`
	// Solver knobs per cell; 0 keeps the defaults.
	MaxIterations int     `json:"max_iterations,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	// Workers is the per-cell solver width (0 = server default, negative
	// = all cores); sweep_workers bounds concurrently solving rows
	// (0 = all cores). Results bit-identical at every width.
	Workers      int  `json:"workers,omitempty"`
	SweepWorkers int  `json:"sweep_workers,omitempty"`
	Cold         bool `json:"cold,omitempty"`
	PrimalOnly   bool `json:"primal_only,omitempty"`
	S1           bool `json:"s1,omitempty"`
	Full         bool `json:"full,omitempty"`
	// Lockstep batches the sweep's independent cells through one shared
	// evaluator in lockstep (sweep.Options.Lockstep) — a scheduling
	// change only, the grid is bit-identical. The server's -lockstep flag
	// makes it the default for every sweep; the request field opts a
	// single sweep in.
	Lockstep bool `json:"lockstep,omitempty"`
	Stream   bool `json:"stream,omitempty"`
	// Corners replaces the bounds grid with the standard five-corner
	// process enumeration (tt/ff/ss/fs/sf), each corner warm-started from
	// the nominal solve; delay_scale / noise_scale are ignored. See
	// handleCorners.
	Corners bool `json:"corners,omitempty"`
}

// gridLRSSweeps totals the inner LRS sweeps a solved grid executed — the
// sweep work measure GET /stats reports.
func gridLRSSweeps(res *sweep.Result) int {
	total := 0
	for i := range res.Cells {
		if r := res.Cells[i].Result; r != nil {
			total += r.LRSSweepsTotal
		}
	}
	return total
}

// sweepResponse is the buffered (non-streaming) sweep payload.
type sweepResponse struct {
	Key      string        `json:"key"`
	Circuit  string        `json:"circuit"`
	SolveSec float64       `json:"solve_sec"`
	Result   *sweep.Result `json:"result"`
}

// sweepSummary is the final NDJSON line of a streamed sweep.
type sweepSummary struct {
	Done     bool    `json:"done"`
	Key      string  `json:"key"`
	Circuit  string  `json:"circuit"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Frontier []int   `json:"frontier"`
	SolveSec float64 `json:"solve_sec"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad sweep request: %v", err)
		return
	}
	e := s.cache.get(req.Key)
	if e == nil {
		writeError(w, http.StatusNotFound, "sweep: no cached circuit for key %q (register it first; it may have been evicted)", req.Key)
		return
	}
	if req.Corners {
		s.handleCorners(w, r, &req, e)
		return
	}
	bounds, err := resolveBounds(e.bounds, req.A0, req.Noise, req.Power)
	if err != nil {
		writeError(w, http.StatusBadRequest, "sweep: %v", err)
		return
	}
	workers := req.Workers
	if workers == 0 {
		// Same convention as /solve: 0 = server default, negative = all
		// cores (core's normalization).
		workers = s.opt.DefaultWorkers
	}
	opt := sweep.Options{
		DelayScale:    req.DelayScale,
		NoiseScale:    req.NoiseScale,
		Bounds:        &bounds,
		MaxIterations: req.MaxIterations,
		Epsilon:       req.Epsilon,
		Workers:       workers,
		SweepWorkers:  req.SweepWorkers,
		Cold:          req.Cold,
		PrimalOnly:    req.PrimalOnly,
		ColdLRS:       req.S1,
		FullPasses:    req.Full,
		Lockstep:      req.Lockstep || s.opt.DefaultLockstep,
		// Shed abandoned grids: unlike a solve (whose result may be saved
		// for warm starts), a sweep's output goes nowhere once the client
		// is gone, so stop scheduling cells when the request dies.
		Cancel: func() bool { return r.Context().Err() != nil },
	}

	// Overload gate before any lock, then the same lock order as
	// handleSolve: per-circuit mutex before the global solve slot, so
	// queued requests on one circuit never starve others.
	if !s.admitSolve(w, r, "sweep") {
		return
	}
	defer s.releaseSolve()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !s.acquireSolveSlot(w, r) {
		return
	}
	defer func() { <-s.sem }()

	// Live-convergence stream: every cell completion (and, on local runs,
	// every solver iteration) lands on the circuit's watch log. Installed
	// before the NDJSON OnCell below so the wrapper composes over it.
	wlog := s.watchLog(e.key)
	solveID := s.nextSolveID()

	// runGrid solves the grid either on the farm (live workers: the
	// coordinator leases the wavefront out and reassembles the identical
	// row-major grid) or locally — the distributed determinism contract is
	// exactly that this choice is invisible in the bytes.
	runGrid := func() (*sweep.Result, error) {
		if s.farmReady() {
			return s.opt.Farm.Sweep(r.Context(), e.farmSpec, e.inst, opt)
		}
		return sweep.Run(e.inst, opt)
	}

	if !req.Stream {
		s.sweepProgressOptions(&opt, wlog, solveID)
		s.emit(wlog, progressEvent{Kind: "sweep_start", Solve: solveID})
		start := time.Now()
		res, err := runGrid()
		if err != nil {
			s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
			if errors.Is(err, sweep.ErrCancelled) || r.Context().Err() != nil {
				s.stats.addSolveCancelled()
				writeError(w, http.StatusServiceUnavailable, "sweep: cancelled: client disconnected")
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "sweep: %v", err)
			return
		}
		sec := time.Since(start).Seconds()
		s.emit(wlog, progressEvent{Kind: "sweep_done", Solve: solveID, Iterations: len(res.Cells), SolveSec: sec})
		s.stats.addSweep(sec, len(res.Cells), gridLRSSweeps(res), opt.Lockstep)
		writeJSON(w, http.StatusOK, sweepResponse{Key: e.key, Circuit: e.name, SolveSec: sec, Result: res})
		return
	}

	// Streaming: once the first cell goes out the 200 header is committed,
	// so a mid-stream error can only be reported in-band as a final
	// {"error": ...} line; an error before any cell (bad bounds, a failed
	// first solve) still gets a real 422 like the buffered path.
	nw := &ndjsonWriter{w: w}
	opt.OnCell = func(c *sweep.Cell) { nw.writeLine(c) }
	// The watch wrapper composes over the NDJSON OnCell just installed:
	// each cell goes out on the response stream AND the watch log.
	s.sweepProgressOptions(&opt, wlog, solveID)
	s.emit(wlog, progressEvent{Kind: "sweep_start", Solve: solveID})
	start := time.Now()
	res, err := runGrid()
	if err != nil {
		s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
		if errors.Is(err, sweep.ErrCancelled) || r.Context().Err() != nil {
			s.stats.addSolveCancelled()
		}
		if !nw.started() {
			writeError(w, http.StatusUnprocessableEntity, "sweep: %v", err)
		} else {
			nw.writeLine(errorResponse{Error: err.Error()})
		}
		return
	}
	sec := time.Since(start).Seconds()
	s.emit(wlog, progressEvent{Kind: "sweep_done", Solve: solveID, Iterations: len(res.Cells), SolveSec: sec})
	s.stats.addSweep(sec, len(res.Cells), gridLRSSweeps(res), opt.Lockstep)
	nw.writeLine(sweepSummary{
		Done: true, Key: e.key, Circuit: e.name,
		Rows: res.Rows, Cols: res.Cols, Frontier: res.Frontier, SolveSec: sec,
	})
}

// ndjsonWriter serializes concurrent NDJSON lines onto one streaming
// response: the sweep and watch streams' shared write path. The
// Content-Type header is committed lazily with the first line.
type ndjsonWriter struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	wrote bool
}

// writeLine emits v as one NDJSON line. A payload that fails to marshal
// (a non-finite float, say) must not silently vanish from the stream —
// the buffered path would have surfaced the failure as an error response,
// so the stream carries it in-band as an {"error": ...} line instead; the
// line count stays complete either way.
func (nw *ndjsonWriter) writeLine(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(errorResponse{Error: fmt.Sprintf("stream: line failed to marshal: %v", err)})
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if !nw.wrote {
		nw.wrote = true
		nw.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	nw.w.Write(append(data, '\n')) //nolint:errcheck // client gone: keep solving, drop output
	if f, ok := nw.w.(http.Flusher); ok {
		f.Flush()
	}
}

// started reports whether any line has been written (the 200 header is
// then committed and errors can only go in-band).
func (nw *ndjsonWriter) started() bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.wrote
}
