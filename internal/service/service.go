package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/farm"
	"repro/internal/farm/api"
	"repro/internal/store"
)

// Options configures a Server. The zero value serves with the defaults
// below.
type Options struct {
	// CacheSize bounds the instance cache (LRU over netlist/spec hashes);
	// default 8 instances.
	CacheSize int
	// MaxConcurrentSolves bounds how many solves/sweeps run at once across
	// all circuits (each additionally bounded to one per circuit by the
	// per-instance lock); default runtime.GOMAXPROCS(0).
	MaxConcurrentSolves int
	// DefaultWorkers is the per-solve parallel width used when a request
	// leaves workers at 0; 0 defaults to 1 (the request level owns the
	// cores, exactly like the sweep engine's default split) and a
	// negative value selects all cores, matching core.Options.Workers.
	// Results are bit-identical at every width.
	DefaultWorkers int
	// DefaultLockstep makes lockstep batching (sweep.Options.Lockstep)
	// the default for every sweep request (ogwsd -lockstep). Scheduling
	// only: grids are bit-identical with it on or off, so flipping the
	// server default never changes any response bytes — only /stats
	// attribution and throughput.
	DefaultLockstep bool
	// MaxSavedResults bounds the named warm-start results kept per cached
	// instance (oldest evicted first); default 32.
	MaxSavedResults int
	// MaxRequestBytes caps request bodies (netlist uploads dominate);
	// default 16 MiB.
	MaxRequestBytes int64
	// MaxQueuedSolves bounds the total solve/sweep requests admitted but
	// not yet finished (running plus queued on circuit locks and the
	// solve semaphore). Beyond it requests are shed immediately with
	// 503 + Retry-After instead of queuing without bound; default
	// 4 × MaxConcurrentSolves.
	MaxQueuedSolves int
	// StoreFailureThreshold is how many consecutive store write failures
	// flip the server to degraded (read-only) store mode; default 3.
	// StoreProbeInterval is how often a degraded server lets one write
	// through to probe for recovery; default 15s. See storeGate.
	StoreFailureThreshold int
	StoreProbeInterval    time.Duration
	// Now is the clock the degraded-mode probe schedule reads,
	// injectable so tests drive recovery deterministically; default
	// time.Now.
	Now func() time.Time
	// Farm, when non-nil, is the embedded distributed-sizing coordinator
	// (ogwsd -coordinator). Solves and sweeps are dispatched to the worker
	// fleet whenever at least one worker is live, and run locally
	// otherwise — with bit-identical results either way, which is the
	// farm's determinism contract (see internal/farm).
	Farm *farm.Coordinator
	// Store, when non-nil, is the durable result store (ogwsd -data). On
	// boot the server reloads every persisted circuit and saved result
	// from it, so warm_from chains survive restarts; thereafter every
	// registration, save_as, and finished solve is persisted, and a
	// /solve whose resolved inputs hash to an already-stored solve is
	// answered from the store without running (dedup; see solveKey).
	// Persistence never changes solved bits: the stored result IS the
	// bytes the original solve returned.
	Store *store.Store
	// WatchBuffer bounds the per-circuit progress log GET /watch reads
	// (events retained for late/slow watchers); default delta.DefaultRetain.
	WatchBuffer int
	// DefaultMCSamples / DefaultMCSeed fill a POST /montecarlo request
	// that leaves samples or seed at 0 (ogwsd -mc-samples / -mc-seed).
	// With no server default a zero-sample request stays an error; seed 0
	// is a valid seed, so the default only rebases the "unspecified" case.
	DefaultMCSamples int
	DefaultMCSeed    uint64
}

func (o *Options) fill() {
	if o.CacheSize <= 0 {
		o.CacheSize = 8
	}
	if o.MaxConcurrentSolves <= 0 {
		o.MaxConcurrentSolves = runtime.GOMAXPROCS(0)
	}
	if o.DefaultWorkers == 0 {
		o.DefaultWorkers = 1
	}
	if o.MaxSavedResults <= 0 {
		o.MaxSavedResults = 32
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 16 << 20
	}
	if o.MaxQueuedSolves <= 0 {
		o.MaxQueuedSolves = 4 * o.MaxConcurrentSolves
	}
	if o.StoreFailureThreshold <= 0 {
		o.StoreFailureThreshold = 3
	}
	if o.StoreProbeInterval <= 0 {
		o.StoreProbeInterval = 15 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = delta.DefaultRetain
	}
}

// Server is the ogwsd HTTP handler: an instance cache plus the solver and
// sweep entry points behind a JSON API. Create with New; Server implements
// http.Handler.
type Server struct {
	opt      Options
	cache    *instanceCache
	stats    serverStats
	sem      chan struct{}
	mux      *http.ServeMux
	hub      *delta.Hub
	solveSeq int64 // atomic; numbers solves for the watch stream

	// Resilience state (see resilience.go): the admitted-request count
	// behind the overload gate, the drain latch, and the degraded-mode
	// gate in front of the durable store.
	inflight atomic.Int64
	draining atomic.Bool
	gate     storeGate
}

// New builds a Server with the given options. With Options.Store set,
// construction replays the store: persisted circuits are rebuilt into the
// cache and saved results re-attached before the first request lands.
func New(opt Options) *Server {
	opt.fill()
	s := &Server{
		opt:   opt,
		cache: newInstanceCache(opt.CacheSize),
		sem:   make(chan struct{}, opt.MaxConcurrentSolves),
		mux:   http.NewServeMux(),
		hub:   delta.NewHub(opt.WatchBuffer),
	}
	s.gate.threshold = opt.StoreFailureThreshold
	s.gate.probe = opt.StoreProbeInterval
	s.mux.HandleFunc("POST /circuits", s.handleRegister)
	s.mux.HandleFunc("GET /circuits", s.handleListCircuits)
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("POST /montecarlo", s.handleMonteCarlo)
	s.mux.HandleFunc("GET /results", s.handleResults)
	s.mux.HandleFunc("GET /watch", s.handleWatch)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.reloadFromStore()
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// errorResponse is the uniform error payload of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v) //nolint:errcheck // the connection is gone, nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// acquireSolveSlot takes a slot on the global solve semaphore, giving up
// if the client disconnects first — an abandoned request must not go on
// to burn a slot solving for a dead connection. Returns false (response
// written, best-effort) when the request was shed. A solve that already
// started is never cancelled mid-flight: the solver has no preemption
// points, and its result may still be saved for warm-start reuse.
func (s *Server) acquireSolveSlot(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "request cancelled while waiting for a solve slot")
		return false
	}
	if r.Context().Err() != nil {
		<-s.sem
		writeError(w, http.StatusServiceUnavailable, "request cancelled before solving")
		return false
	}
	return true
}

// decode parses a JSON request body strictly: unknown fields are rejected
// so a typoed knob fails loudly instead of silently solving with defaults.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// decodeStatus maps a decode error to its HTTP status: an oversized body
// (http.MaxBytesReader tripping Options.MaxRequestBytes) is 413 so the
// client learns the size limit rather than hunting for a JSON mistake;
// everything else is a plain 400.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// gridRegister selects a bench.GridInstance mesh — the deterministic
// coupled grid the sweep engine's golden fixture is generated from, and
// the circuit the farm smoke distributes. Grid meshes skip the netlist
// pipeline; their bounds are the mesh's own calibration (uniform-size
// critical path, 40% headroom), not bench.DeriveBounds.
type gridRegister struct {
	Width   int  `json:"width"`
	Layers  int  `json:"layers"`
	Coupled bool `json:"coupled,omitempty"`
}

// registerRequest uploads one circuit. Exactly one of synthetic (an
// ISCAS85 spec name, e.g. "c432"), netlist (ISCAS85 .bench text), or grid
// (a synthetic mesh) must be set; seed and wire_length_scale feed the
// deterministic geometry pipeline (see bench.PipelineOptions).
type registerRequest struct {
	// Synthetic names a built-in ISCAS85-class spec (bench.SpecByName).
	Synthetic string `json:"synthetic,omitempty"`
	// Netlist is the raw .bench netlist text for an upload.
	Netlist string `json:"netlist,omitempty"`
	// Name labels an uploaded netlist (default "upload"); ignored for
	// synthetic circuits, which are named by their spec. The label is not
	// part of the cache key — identical content registered under a
	// different name hits the cache and keeps the first registration's
	// label (the response echoes it).
	Name string `json:"name,omitempty"`
	// Seed is the geometry seed for uploads (wire lengths, channel
	// shuffles); part of the cache key. Ignored for synthetic circuits,
	// whose specs carry their own seed.
	Seed int64 `json:"seed,omitempty"`
	// WireLengthScale multiplies the synthetic routed wire lengths
	// (default 1; 8 models global interconnect). Part of the cache key.
	WireLengthScale float64 `json:"wire_length_scale,omitempty"`
	// Grid registers a synthetic grid mesh instead of a netlist circuit.
	Grid *gridRegister `json:"grid,omitempty"`
}

// registerResponse describes the cached instance a registration resolved
// to. Key is the instance-cache handle every later request uses; Cached
// reports whether the instance already existed (the amortization the
// cache exists for) — on a hit, Circuit is the label the instance was
// first registered under. Bounds are the self-calibrated defaults solves
// fall back to.
type registerResponse struct {
	Key        string       `json:"key"`
	Circuit    string       `json:"circuit"`
	Cached     bool         `json:"cached"`
	Gates      int          `json:"gates"`
	Wires      int          `json:"wires"`
	Components int          `json:"components"`
	Bounds     bench.Bounds `json:"bounds"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decode(r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad register request: %v", err)
		return
	}
	sources := 0
	for _, set := range []bool{req.Synthetic != "", req.Netlist != "", req.Grid != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, "register: exactly one of synthetic, netlist, or grid must be set")
		return
	}
	if req.WireLengthScale < 0 {
		writeError(w, http.StatusBadRequest, "register: wire_length_scale must be non-negative, got %g", req.WireLengthScale)
		return
	}
	pipe := bench.PipelineOptions{WireLengthScale: req.WireLengthScale}

	// farmSpec is the circuit's wire form: everything a farm worker needs
	// to materialize a bit-identical replica under the same cache key, and
	// exactly what the durable store persists so a restarted server can
	// rebuild the same replica (buildForSpec is that shared spec→instance
	// mapping).
	var (
		key      string
		farmSpec api.CircuitSpec
	)
	switch {
	case req.Synthetic != "":
		spec, ok := bench.SpecByName(req.Synthetic)
		if !ok {
			writeError(w, http.StatusBadRequest, "register: unknown synthetic circuit %q", req.Synthetic)
			return
		}
		key = bench.SpecKey(spec, pipe)
		farmSpec = api.CircuitSpec{Key: key, Synthetic: req.Synthetic, WireLengthScale: req.WireLengthScale}
	case req.Netlist != "":
		name := req.Name
		if name == "" {
			name = "upload"
		}
		key = bench.NetlistKey([]byte(req.Netlist), req.Seed, pipe)
		farmSpec = api.CircuitSpec{Key: key, Netlist: req.Netlist, Name: name, Seed: req.Seed, WireLengthScale: req.WireLengthScale}
	default:
		g := *req.Grid
		key = bench.GridKey(g.Width, g.Layers, g.Coupled)
		farmSpec = api.CircuitSpec{Key: key, Grid: &api.GridSpec{Width: g.Width, Layers: g.Layers, Coupled: g.Coupled}}
	}
	name, build, err := buildForSpec(farmSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "register: %v", err)
		return
	}
	e, hit, err := s.cache.getOrBuild(key, name, farmSpec, build)
	if err != nil {
		writeError(w, http.StatusBadRequest, "register %s: %v", name, err)
		return
	}
	if !hit {
		s.persistCircuit(farmSpec)
	}
	resp := registerResponse{
		Key:     e.key,
		Circuit: e.name,
		Cached:  hit,
		Bounds:  e.bounds,
	}
	if e.inst.Netlist != nil {
		st := e.inst.Netlist.Stats()
		resp.Gates = st.Gates
		resp.Wires = st.Connections + st.Outputs
		resp.Components = st.Gates + st.Connections + st.Outputs
	} else {
		// Grid meshes have no netlist; report evaluator node count instead.
		resp.Components = e.inst.Eval.Graph().NumNodes()
	}
	writeJSON(w, http.StatusOK, resp)
}

// circuitInfo is one GET /circuits row.
type circuitInfo struct {
	Key          string       `json:"key"`
	Circuit      string       `json:"circuit"`
	Bounds       bench.Bounds `json:"bounds"`
	SavedResults []string     `json:"saved_results,omitempty"`
}

func (s *Server) handleListCircuits(w http.ResponseWriter, r *http.Request) {
	entries, _, _, _ := s.cache.snapshot()
	out := make([]circuitInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, circuitInfo{Key: e.key, Circuit: e.name, Bounds: e.bounds, SavedResults: e.resultNames()})
	}
	writeJSON(w, http.StatusOK, out)
}

// solveRequest runs one OGWS solve against a cached instance.
//
// Bound semantics (a0 in ps, noise X_B and power P′ in fF): 0 selects the
// instance's self-calibrated derived bound, a positive value overrides it,
// and a negative noise/power disables that constraint entirely.
//
// Warm starts: warm_from names a result previously stored with save_as on
// the same instance and seeds both halves of the solve — the sizes
// (rc.SetSizes, an ECO-sized perturbation for the dirty-cone engine) and
// the final Lagrange multipliers (core.DualState, so the ascent starts
// beside the dual optimum). Alternatively seed_sizes/dual supply both
// halves inline (a result exported via GET /results round-trips).
// primal_only drops the dual half; s1 additionally makes the LRS sweeps
// reset to the lower bounds (core.Options.WarmStart = false, the
// paper-faithful schedule under which results are seed-independent).
type solveRequest struct {
	Key string `json:"key"`
	// Bounds: 0 = derived, >0 = override, <0 = disable (noise/power only).
	A0    float64 `json:"a0,omitempty"`
	Noise float64 `json:"noise,omitempty"`
	Power float64 `json:"power,omitempty"`
	// Solver knobs; 0 keeps the core.DefaultOptions value. Workers: 0 =
	// the server's default width, negative = all cores, otherwise the
	// exact goroutine count — results bit-identical at every width.
	MaxIterations int     `json:"max_iterations,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	// Full throws the incremental escape hatch (full passes every sweep);
	// results are bit-identical either way.
	Full bool `json:"full,omitempty"`
	// Warm-start controls (see type comment).
	WarmFrom   string          `json:"warm_from,omitempty"`
	SeedSizes  []float64       `json:"seed_sizes,omitempty"`
	Dual       *core.DualState `json:"dual,omitempty"`
	PrimalOnly bool            `json:"primal_only,omitempty"`
	S1         bool            `json:"s1,omitempty"`
	// SaveAs stores this solve's result under the given name for later
	// warm_from reuse and GET /results export.
	SaveAs string `json:"save_as,omitempty"`
	// NoDedup forces the solver to run even when the durable store already
	// holds this exact solve (same circuit content, bounds, knobs, and
	// resolved warm-start state). Dedup is safe by construction — the
	// stored bytes ARE a prior run's bytes and solves are deterministic —
	// so this knob exists for benchmarking, not correctness.
	NoDedup bool `json:"no_dedup,omitempty"`
}

// solveResponse carries the full solver result plus the request echo a
// client needs to chain warm starts.
type solveResponse struct {
	Key      string  `json:"key"`
	Circuit  string  `json:"circuit"`
	WarmFrom string  `json:"warm_from,omitempty"`
	SavedAs  string  `json:"saved_as,omitempty"`
	Workers  int     `json:"workers"`
	SolveSec float64 `json:"solve_sec"`
	// Dedup marks a response answered from the durable store without
	// running the solver; Result is byte-for-byte the original run's.
	Dedup  bool         `json:"dedup,omitempty"`
	Result *core.Result `json:"result"`
}

// resolveBounds applies the request's bound overrides to the instance's
// derived bounds: 0 keeps the derived value, negative disables.
func resolveBounds(base bench.Bounds, a0, noise, power float64) (bench.Bounds, error) {
	b := base
	if math.IsNaN(a0) || math.IsNaN(noise) || math.IsNaN(power) {
		return b, errors.New("bounds must not be NaN")
	}
	if a0 != 0 {
		b.A0 = a0 // negative/invalid values are rejected by core.Options.validate
	}
	if noise < 0 {
		b.NoiseBound = 0
	} else if noise > 0 {
		b.NoiseBound = noise
	}
	if power < 0 {
		b.PowerBound = 0
	} else if power > 0 {
		b.PowerBound = power
	}
	return b, nil
}

func (s *Server) solverOptions(b bench.Bounds, maxIter int, epsilon float64, workers int, full, warm bool) core.Options {
	opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	if maxIter > 0 {
		opt.MaxIterations = maxIter
	}
	if epsilon > 0 {
		opt.Epsilon = epsilon
	}
	if workers == 0 {
		// 0 = server default; negative passes through to core's all-cores
		// normalization, same as every other layer's workers knob.
		workers = s.opt.DefaultWorkers
	}
	opt.Workers = workers
	opt.Incremental = !full
	opt.WarmStart = warm
	return opt
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := decode(r, &req); err != nil {
		writeError(w, decodeStatus(err), "bad solve request: %v", err)
		return
	}
	e := s.cache.get(req.Key)
	if e == nil {
		writeError(w, http.StatusNotFound, "solve: no cached circuit for key %q (register it first; it may have been evicted)", req.Key)
		return
	}
	if req.WarmFrom != "" && (req.SeedSizes != nil || req.Dual != nil) {
		writeError(w, http.StatusBadRequest, "solve: warm_from and seed_sizes/dual are mutually exclusive")
		return
	}
	bounds, err := resolveBounds(e.bounds, req.A0, req.Noise, req.Power)
	if err != nil {
		writeError(w, http.StatusBadRequest, "solve: %v", err)
		return
	}

	// Overload gate before any lock: a request past its bound must be
	// shed while shedding is still cheap, not after it has parked on the
	// circuit mutex (see admitSolve).
	if !s.admitSolve(w, r, "solve") {
		return
	}
	defer s.releaseSolve()

	// Per-circuit lock first, global solve slot second: a request queued
	// behind another solve of the same circuit must not pin a semaphore
	// slot while it waits, or a burst on one circuit would starve every
	// other circuit. The order is the same everywhere (mu → sem) and a
	// slot holder never waits on another entry's mu, so there is no cycle.
	e.mu.Lock()
	defer e.mu.Unlock()
	if !s.acquireSolveSlot(w, r) {
		return
	}
	defer func() { <-s.sem }()

	// Resolve the warm-start seed under the instance lock so the chain
	// solve → save_as → warm_from is deterministic per circuit.
	seed := e.inst.Eval.X
	dual := req.Dual
	warm := false
	switch {
	case req.WarmFrom != "":
		saved := e.getResult(req.WarmFrom)
		if saved == nil {
			writeError(w, http.StatusNotFound, "solve: no saved result %q on circuit %s", req.WarmFrom, e.name)
			return
		}
		seed, dual, warm = saved.Result.X, saved.Dual, true
	case req.SeedSizes != nil:
		seed, warm = req.SeedSizes, true
	}
	if req.PrimalOnly {
		dual = nil
	}
	if req.S1 {
		warm = false // paper-faithful S1 reset: sizes reset to the lower bounds
	}

	wlog := s.watchLog(e.key)
	solveID := s.nextSolveID()

	// Dedup: everything that determines the result bits is now resolved,
	// so hash it and check the durable store. A hit returns the stored
	// bytes — byte-for-byte a prior run's response — without burning a
	// solve; save_as still takes effect so warm-start chains replayed
	// against a restarted server cost only the lookups.
	sk := solveKey(e.key, bounds, req.MaxIterations, req.Epsilon, req.Full, warm, seed, dual)
	if !req.NoDedup {
		if hit := s.lookupSolve(sk); hit != nil && hit.Result != nil {
			if req.SaveAs != "" {
				saved := &savedResult{Result: hit.Result, Dual: hit.Dual}
				e.saveResult(req.SaveAs, saved, s.opt.MaxSavedResults)
				s.persistResult(e.key, req.SaveAs, saved)
			}
			s.stats.addDedupHit()
			s.emit(wlog, progressEvent{
				Kind: "solve_done", Solve: solveID, Dedup: true,
				Iterations: hit.Result.Iterations, Converged: hit.Result.Converged,
				Gap: hit.Result.Gap, Area: hit.Result.Area,
			})
			writeJSON(w, http.StatusOK, solveResponse{
				Key:      e.key,
				Circuit:  e.name,
				WarmFrom: req.WarmFrom,
				SavedAs:  req.SaveAs,
				Dedup:    true,
				Result:   hit.Result,
			})
			return
		}
	}
	s.emit(wlog, progressEvent{Kind: "solve_start", Solve: solveID})

	// Farm dispatch: with live workers, ship the fully resolved solve (the
	// exact bounds, seed, dual, and knobs the local path below would use)
	// to the fleet. The request's workers knob is advisory there — each
	// worker picks its own width — which is free, because results are
	// bit-identical at every width. Falls through to the local path when
	// no workers are live.
	if s.farmReady() {
		fr, err := s.opt.Farm.Solve(r.Context(), e.farmSpec, api.SolveJob{
			Bounds:        bounds,
			MaxIterations: req.MaxIterations,
			Epsilon:       req.Epsilon,
			Full:          req.Full,
			Warm:          warm,
			Seed:          seed,
			Dual:          dual,
		})
		if err != nil {
			s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
			if r.Context().Err() != nil {
				// The client disconnecting cancelled the farm run (Solve
				// awaits on the request context) — account it and answer
				// the dead connection best-effort.
				s.stats.addSolveCancelled()
				writeError(w, http.StatusServiceUnavailable, "solve: cancelled: client disconnected")
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "solve: %v", err)
			return
		}
		if req.SaveAs != "" {
			saved := &savedResult{Result: fr.Result, Dual: fr.Dual}
			e.saveResult(req.SaveAs, saved, s.opt.MaxSavedResults)
			s.persistResult(e.key, req.SaveAs, saved)
		}
		s.persistSolve(sk, storedSolve{CircuitKey: e.key, Circuit: e.name, Result: fr.Result, Dual: fr.Dual})
		s.emit(wlog, progressEvent{
			Kind: "solve_done", Solve: solveID,
			Iterations: fr.Result.Iterations, Converged: fr.Result.Converged,
			Gap: fr.Result.Gap, Area: fr.Result.Area, SolveSec: fr.SolveSec,
		})
		s.stats.addSolve(fr.SolveSec, fr.Eval, fr.HysteresisTrips, fr.RevertedSweeps)
		writeJSON(w, http.StatusOK, solveResponse{
			Key:      e.key,
			Circuit:  e.name,
			WarmFrom: req.WarmFrom,
			SavedAs:  req.SaveAs,
			Workers:  fr.Workers,
			SolveSec: fr.SolveSec,
			Result:   fr.Result,
		})
		return
	}

	opt := s.solverOptions(bounds, req.MaxIterations, req.Epsilon, req.Workers, req.Full, warm)
	// Stream each iteration onto the watch log. The hook runs on the
	// solving goroutine between the dual update and the convergence check
	// and never changes solved bits (pinned by core's hook test).
	s.solveProgressOptions(&opt, wlog, solveID)
	// Propagate the request deadline into the solver: once the client is
	// gone the solve stops at its next iteration boundary instead of
	// burning the slot to completion for a dead connection. A hook that
	// never fires leaves the bits untouched (core's cancel test).
	opt.Cancel = func() bool { return r.Context().Err() != nil }
	replica, err := e.inst.Replica()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "solve: %v", err)
		return
	}
	sol, err := core.NewSolver(replica, opt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "solve: %v", err)
		return
	}
	defer sol.Close()
	start := time.Now()
	res, err := sol.RunFromDual(seed, dual)
	if err != nil {
		s.emit(wlog, progressEvent{Kind: "error", Solve: solveID, Error: err.Error()})
		if errors.Is(err, core.ErrCancelled) {
			s.stats.addSolveCancelled()
			writeError(w, http.StatusServiceUnavailable, "solve: cancelled: client disconnected")
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "solve: %v", err)
		return
	}
	sec := time.Since(start).Seconds()
	finalDual := sol.DualState()
	if req.SaveAs != "" {
		saved := &savedResult{Result: res, Dual: finalDual}
		e.saveResult(req.SaveAs, saved, s.opt.MaxSavedResults)
		s.persistResult(e.key, req.SaveAs, saved)
	}
	s.persistSolve(sk, storedSolve{CircuitKey: e.key, Circuit: e.name, Result: res, Dual: finalDual})
	s.emit(wlog, progressEvent{
		Kind: "solve_done", Solve: solveID,
		Iterations: res.Iterations, Converged: res.Converged,
		Gap: res.Gap, Area: res.Area, SolveSec: sec,
	})
	s.stats.addSolve(sec, replica.Stats(), sol.HysteresisTrips(), sol.RevertedSweeps())
	writeJSON(w, http.StatusOK, solveResponse{
		Key:      e.key,
		Circuit:  e.name,
		WarmFrom: req.WarmFrom,
		SavedAs:  req.SaveAs,
		Workers:  sol.Workers(),
		SolveSec: sec,
		Result:   res,
	})
}

// resultResponse is the GET /results payload: a saved result with both
// warm-start halves, externalized. Feeding sizes/dual back through a
// solve request's seed_sizes/dual reproduces the server-side warm_from
// path bit for bit.
type resultResponse struct {
	Key     string          `json:"key"`
	Circuit string          `json:"circuit"`
	Name    string          `json:"name"`
	Result  *core.Result    `json:"result"`
	Dual    *core.DualState `json:"dual,omitempty"`
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	key, name := r.URL.Query().Get("key"), r.URL.Query().Get("name")
	if key == "" || name == "" {
		writeError(w, http.StatusBadRequest, "results: key and name query parameters are required")
		return
	}
	e := s.cache.get(key)
	if e == nil {
		writeError(w, http.StatusNotFound, "results: no cached circuit for key %q", key)
		return
	}
	saved := e.getResult(name)
	if saved == nil {
		writeError(w, http.StatusNotFound, "results: no saved result %q on circuit %s", name, e.name)
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		Key: e.key, Circuit: e.name, Name: name,
		Result: saved.Result, Dual: saved.Dual,
	})
}

// farmReady reports whether requests should dispatch to the farm: a
// coordinator is attached and at least one worker is live. With no live
// workers the service solves locally, exactly as without a coordinator.
func (s *Server) farmReady() bool {
	return s.opt.Farm != nil && s.opt.Farm.LiveWorkers() > 0
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses, evictions := s.cache.snapshot()
	st := s.stats.snapshot(len(entries), hits, misses, evictions)
	if s.opt.Store != nil {
		st.StoreRecords = s.opt.Store.Len()
		st.StoreMode = s.gate.mode()
		st.StoreDegrades, st.StoreRecoveries, st.StoreWritesSkipped = s.gate.counters()
	}
	if s.opt.Farm != nil {
		fs := s.opt.Farm.StatsSnapshot()
		st.Farm = &fs
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
