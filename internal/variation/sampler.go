// Seeded technology-parameter sampling.
//
// The Monte-Carlo mode draws K perturbed replicas of one instance; the
// whole statistical layer is only as trustworthy as the sample set is
// reproducible, so the sampler is a pure function: perturbation k's
// scalars depend on nothing but (seed, k, the sigmas). The stream
// discipline is internal/fault's — one splitmix64 evaluation per draw,
// keyed by a per-(stream, event) mix of the seed — so samples can be
// computed in any order, on any machine, in any process, and shard
// across farm workers without a shared generator cursor. Same seed →
// byte-identical sample set, always.
package variation

import (
	"fmt"
	"math"

	"repro/internal/rc"
)

// Sigmas is the relative spread of each technology parameter: every
// sample multiplies the nominal constants by exp(σ·z) with z a standard
// normal drawn from the seeded stream — a lognormal factor with median
// 1, the usual process-variation model. A zero sigma pins its parameter
// exactly at nominal (the factor is exactly 1.0).
type Sigmas struct {
	R         float64 `json:"r,omitempty"`
	C         float64 `json:"c,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// Validate rejects negative, NaN, or infinite sigmas — the
// core.Options.validate discipline: NaN slides through `< 0` checks, so
// every comparison is NaN-aware, and rejection happens before any draw
// so a bad sigma can never half-build a sample set.
func (s Sigmas) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"R", s.R}, {"C", s.C}, {"Threshold", s.Threshold}} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("variation: sigma %s must be finite and non-negative, got %g", f.name, f.v)
		}
	}
	return nil
}

// splitmix64 is the finalizer used across the repo (bench geometry,
// fault plans) — one evaluation per draw, no sequential state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the uniform [0,1) variate of (seed, sample, stream) —
// fault.Plan's stream discipline with the parameter stream playing the
// rule index and the sample index the event counter.
func draw(seed, sample, stream uint64) float64 {
	x := splitmix64(seed ^ splitmix64(stream<<32^sample))
	return float64(x>>11) / (1 << 53)
}

// gauss returns the standard-normal variate of (seed, sample, param) via
// Box-Muller over two stream draws. 1−u₁ ∈ (0,1] keeps the log finite.
func gauss(seed, sample, param uint64) float64 {
	u1 := draw(seed, sample, 2*param)
	u2 := draw(seed, sample, 2*param+1)
	return math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
}

// Perturbs draws the k-sample perturbation set for (seed, sigmas):
// sample i's scalars are exp(σ·z) with independent z per parameter. The
// result is a pure function of the arguments — the determinism anchor
// every Monte-Carlo bit-identity contract (rerun, lockstep vs solo,
// distributed vs local) reduces to.
func Perturbs(seed uint64, k int, s Sigmas) ([]rc.Perturb, error) {
	if k <= 0 {
		return nil, fmt.Errorf("variation: sample count must be positive, got %d", k)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]rc.Perturb, k)
	for i := range out {
		si := uint64(i)
		out[i] = rc.Perturb{
			R:         math.Exp(s.R * gauss(seed, si, 0)),
			C:         math.Exp(s.C * gauss(seed, si, 1)),
			Threshold: math.Exp(s.Threshold * gauss(seed, si, 2)),
		}
	}
	return out, nil
}
