// Monte-Carlo yield analysis and the robust (μ+kσ) sizing objective.
//
// MonteCarlo draws K technology perturbations from the seeded sampler,
// sizes each perturbed replica with the full OGWS solver, and reports
// per-sample results plus delay/area/noise distributions and the
// delay-constraint yield. The K solves run in lockstep by default
// (core.Lockstep over an rc.NewScaledBatch): one levelized pass advances
// every in-flight sample per LRS sweep, and a converged sample retires
// without touching the survivors' bits.
//
// Determinism contract (pinned by the oracle suite and FuzzVariation):
// same seed → byte-identical sample set; each lockstep sample's result
// is bitwise equal to a solo solve of the identically-perturbed
// instance; and a distributed run that shards samples across workers
// reassembles the identical bytes, because every sample is a pure
// function of (instance, bounds, seed, index).
package variation

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rc"
)

// Dist summarizes one scalar across samples: moments computed in sample
// order (deterministic fold), quantiles by nearest rank over a sorted
// copy. Std is the sample standard deviation (n−1), 0 for n < 2.
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// NewDist computes the summary of values; the zero Dist for an empty set.
func NewDist(values []float64) Dist {
	n := len(values)
	if n == 0 {
		return Dist{}
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	ss := 0.0
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return Dist{
		N: n, Mean: mean, Std: std,
		Min: sorted[0], Median: q(0.5), P90: q(0.9), Max: sorted[n-1],
	}
}

// MCOptions configures a Monte-Carlo run.
type MCOptions struct {
	// Samples is the number of perturbed replicas to size. Must be
	// positive — a zero-sample run has no distribution to report and is
	// rejected, not normalized.
	Samples int
	// Seed keys the sampler stream; the same seed always reproduces the
	// same sample set, byte for byte.
	Seed uint64
	// Sigmas are the per-parameter relative spreads (see Sigmas).
	Sigmas Sigmas
	// Bounds are the nominal bounds every sample is solved against; nil
	// derives them from the instance.
	Bounds *bench.Bounds
	// Solver knobs, normalized like core.Options.validate.
	MaxIterations int
	Epsilon       float64
	// Workers is the parallel width of the shared lockstep passes (and,
	// on the solo path, of each solver); results are bit-identical at
	// every width.
	Workers int
	// Solo disables lockstep batching: each sample runs on its own solo
	// solver, sequentially. The result is bit-identical to the lockstep
	// run — this is the oracle and benchmark comparison path, not a
	// results knob.
	Solo bool
	// Cancel is polled at solver iteration boundaries.
	Cancel func() bool
	// OnSample, when non-nil, observes each completed sample in sample
	// order after the run's solves finish. Purely observational.
	OnSample func(*Sample)
}

// validate rejects what has no substitute and leaves the rest to the
// solver-option normalization.
func (o *MCOptions) validate() error {
	if _, err := Perturbs(o.Seed, o.Samples, o.Sigmas); err != nil {
		return err
	}
	return nil
}

// Sample is one sized Monte-Carlo sample.
type Sample struct {
	Index   int          `json:"index"`
	Perturb rc.Perturb   `json:"perturb"`
	Result  *core.Result `json:"result"`
}

// MCResult is the Monte-Carlo outcome: every sample (in index order) and
// the Table-1-style distributional summary.
type MCResult struct {
	Samples []Sample `json:"samples"`
	// Delay/Area/Noise summarize the per-sample achieved DelayPs, Area,
	// and NoiseLinFF.
	Delay Dist `json:"delay"`
	Area  Dist `json:"area"`
	Noise Dist `json:"noise"`
	// Yield is the fraction of samples whose sized delay meets the bound
	// A0 (the delay-constraint yield); A0 echoes the bound used.
	Yield float64 `json:"yield"`
	A0    float64 `json:"a0"`
}

// MonteCarlo sizes Samples perturbed replicas of the instance and
// reports the distributional outcome. See the package comment for the
// determinism contract.
func MonteCarlo(inst *bench.Instance, opt MCOptions) (*MCResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	perturbs, err := Perturbs(opt.Seed, opt.Samples, opt.Sigmas)
	if err != nil {
		return nil, err
	}
	bounds := resolveBounds(inst, opt.Bounds)
	results, err := SolveSamples(inst, bounds, perturbs, SolveOptions{
		MaxIterations: opt.MaxIterations,
		Epsilon:       opt.Epsilon,
		Workers:       opt.Workers,
		Solo:          opt.Solo,
		Cancel:        opt.Cancel,
	})
	if err != nil {
		return nil, err
	}
	samples := make([]Sample, len(perturbs))
	for r := range samples {
		samples[r] = Sample{Index: r, Perturb: perturbs[r], Result: results[r]}
	}
	out := Summarize(samples, bounds.A0)
	if opt.OnSample != nil {
		for r := range out.Samples {
			opt.OnSample(&out.Samples[r])
		}
	}
	return out, nil
}

// SolveOptions are the solver knobs of a SolveSamples call — the MCOptions
// subset a sample shard depends on (the sample set itself arrives as
// explicit perturbations).
type SolveOptions struct {
	MaxIterations int
	Epsilon       float64
	Workers       int
	Solo          bool
	Cancel        func() bool
}

// SolveSamples sizes one perturbed replica per entry of perturbs against
// the base bounds (each sample under perturbedBounds for its own C
// scalar) and returns the results aligned with perturbs. This is the
// pure per-sample kernel both the local Monte-Carlo run and a farm
// worker's sample shard execute: the result of sample i is a function of
// (instance, bounds, knobs, perturbs[i]) only, never of which other
// samples share the call — so a shard of a larger sample set solves to
// the identical bytes the full local run produces for those indices.
func SolveSamples(inst *bench.Instance, bounds bench.Bounds, perturbs []rc.Perturb, opt SolveOptions) ([]*core.Result, error) {
	offset := constantOffset(inst)
	sampleOptions := func(r int) core.Options {
		so := solverOptions(perturbedBounds(bounds, offset, perturbs[r]),
			opt.MaxIterations, opt.Epsilon, opt.Workers, false, false)
		so.Cancel = opt.Cancel
		return so
	}
	k := len(perturbs)
	results := make([]*core.Result, k)
	errs := make([]error, k)
	if opt.Solo || k == 1 {
		for r := 0; r < k; r++ {
			results[r], errs[r] = solveSample(inst, perturbs[r], sampleOptions(r))
			if errs[r] != nil {
				break
			}
		}
	} else {
		b, err := inst.PerturbedBatch(perturbs)
		if err != nil {
			return nil, err
		}
		ls := core.NewLockstepBatch(b, opt.Workers)
		var wg sync.WaitGroup
		for r := 0; r < k; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer ls.Leave()
				solver, err := core.NewLockstepSolver(ls, r, sampleOptions(r))
				if err != nil {
					errs[r] = err
					return
				}
				defer solver.Close()
				results[r], errs[r] = solver.RunFromDual(inst.Eval.X, nil)
			}(r)
		}
		wg.Wait()
		ls.Close()
	}
	for r := 0; r < k; r++ {
		if errs[r] != nil {
			return nil, errs[r]
		}
	}
	return results, nil
}

// Summarize assembles the distributional report over solved samples
// (taken in slice order, which callers keep as index order) against the
// delay bound a0. Shared by the local run and the distributed
// reassembly path, so both produce the identical MCResult bytes from
// identical samples.
func Summarize(samples []Sample, a0 float64) *MCResult {
	out := &MCResult{Samples: samples, A0: a0}
	k := len(samples)
	delays := make([]float64, k)
	areas := make([]float64, k)
	noises := make([]float64, k)
	pass := 0
	for r, s := range samples {
		delays[r] = s.Result.DelayPs
		areas[r] = s.Result.Area
		noises[r] = s.Result.NoiseLinFF
		if s.Result.DelayPs <= a0 {
			pass++
		}
	}
	out.Delay = NewDist(delays)
	out.Area = NewDist(areas)
	out.Noise = NewDist(noises)
	if k > 0 {
		out.Yield = float64(pass) / float64(k)
	}
	return out
}

// solveSample is the solo reference path: one perturbed replica, one
// plain solver — the bit-identity anchor for the lockstep schedule.
func solveSample(inst *bench.Instance, p rc.Perturb, sopt core.Options) (*core.Result, error) {
	ev, err := inst.PerturbedReplica(p)
	if err != nil {
		return nil, err
	}
	solver, err := core.NewSolver(ev, sopt)
	if err != nil {
		return nil, err
	}
	defer solver.Close()
	return solver.RunFromDual(inst.Eval.X, nil)
}

// RobustOptions configures the robust (μ+kσ) objective.
type RobustOptions struct {
	// MC supplies the sample set and solver knobs; its Samples/Seed/
	// Sigmas validation applies.
	MC MCOptions
	// K is the σ weight in the μ+kσ objective; 0 defaults to 3, negative
	// or NaN is rejected.
	K float64
	// Scales are the A0 tightening factors tried by the outer loop; empty
	// defaults to {0.90, 0.95, 1.00, 1.05, 1.10}. Each must be positive
	// and finite.
	Scales []float64
}

// RobustTrial is one outer-loop trial: the deterministic solve at the
// scaled delay target and the fixed design's delay distribution across
// the Monte-Carlo sample set.
type RobustTrial struct {
	Scale     float64      `json:"scale"`
	A0        float64      `json:"a0"`
	Result    *core.Result `json:"result"`
	Delay     Dist         `json:"delay"`
	Objective float64      `json:"objective"`
	// Yield is measured against the base (unscaled) A0.
	Yield float64 `json:"yield"`
}

// RobustResult is the robust-objective outcome.
type RobustResult struct {
	K      float64       `json:"k"`
	Trials []RobustTrial `json:"trials"`
	// Best indexes the trial minimizing μ+kσ (ties break to the earlier
	// trial).
	Best int `json:"best"`
}

// Robust minimizes μ+kσ of delay subject to the noise and power bounds,
// as an outer loop over the deterministic solver: each trial tightens
// (or relaxes) the delay target, solves the nominal instance there, and
// scores the resulting fixed design by evaluating it — one batched
// levelized pass — across the Monte-Carlo perturbation set. The design
// whose delay distribution minimizes μ+kσ wins; per-trial yield against
// the base A0 gives the Table-1-style yield report.
func Robust(inst *bench.Instance, opt RobustOptions) (*RobustResult, error) {
	if err := opt.MC.validate(); err != nil {
		return nil, err
	}
	k := opt.K
	if k == 0 {
		k = 3
	}
	if k < 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("variation: robust K must be non-negative and finite, got %g", opt.K)
	}
	scales := opt.Scales
	if len(scales) == 0 {
		scales = []float64{0.90, 0.95, 1.00, 1.05, 1.10}
	}
	for _, s := range scales {
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("variation: robust A0 scale must be positive and finite, got %g", s)
		}
	}
	perturbs, err := Perturbs(opt.MC.Seed, opt.MC.Samples, opt.MC.Sigmas)
	if err != nil {
		return nil, err
	}
	bounds := resolveBounds(inst, opt.MC.Bounds)

	// One perturbed batch, reused across trials: scoring a fixed design
	// over all samples is a single batched Recompute, no solves.
	b, err := inst.PerturbedBatch(perturbs)
	if err != nil {
		return nil, err
	}
	reps := make([]int, b.Len())
	for r := range reps {
		reps[r] = r
	}

	out := &RobustResult{K: k, Trials: make([]RobustTrial, 0, len(scales))}
	best, bestObj := -1, math.Inf(1)
	for _, scale := range scales {
		if opt.MC.Cancel != nil && opt.MC.Cancel() {
			return nil, core.ErrCancelled
		}
		tb := bounds
		tb.A0 = scale * bounds.A0
		sopt := solverOptions(tb, opt.MC.MaxIterations, opt.MC.Epsilon, opt.MC.Workers, false, false)
		sopt.Cancel = opt.MC.Cancel
		ev, err := inst.Replica()
		if err != nil {
			return nil, err
		}
		solver, err := core.NewSolver(ev, sopt)
		if err != nil {
			return nil, err
		}
		res, err := solver.Run()
		solver.Close()
		if err != nil {
			return nil, err
		}
		delays := make([]float64, len(reps))
		for _, r := range reps {
			if err := b.Ev(r).SetSizes(res.X); err != nil {
				return nil, err
			}
		}
		b.RecomputeAll(reps)
		pass := 0
		for _, r := range reps {
			delays[r] = b.Ev(r).MaxArrival()
			if delays[r] <= bounds.A0 {
				pass++
			}
		}
		d := NewDist(delays)
		trial := RobustTrial{
			Scale: scale, A0: tb.A0, Result: res, Delay: d,
			Objective: d.Mean + k*d.Std,
			Yield:     float64(pass) / float64(len(reps)),
		}
		out.Trials = append(out.Trials, trial)
		if trial.Objective < bestObj {
			bestObj, best = trial.Objective, len(out.Trials)-1
		}
	}
	out.Best = best
	return out, nil
}
