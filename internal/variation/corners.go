// Corner-enumeration sizing: one nominal solve plus one solve per
// process corner, each corner a constant-scaled variant of the same
// instance (rc.Perturb through the topo-scaling hook, so corners share
// the coupling CSR and level buckets and re-derive only per-node
// constants). Corners warm-start from the nominal solve exactly as sweep
// cells warm-start from their solved neighbour: the nominal sizes seed
// the primal half and the nominal DualState the dual half. Under
// ColdLRS+PrimalOnly a warm start carries no information the solver can
// use (S1 resets the sizes, the dual is withheld), so warm and cold
// corner enumerations are bit-identical there — the corner analogue of
// the sweep engine's independence predicate, pinned by
// TestCornerWarmMatchesCold.
package variation

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rc"
)

// Corner is one named process corner: R/C/threshold scalars on the
// nominal technology.
type Corner struct {
	Name      string  `json:"name"`
	R         float64 `json:"r"`
	C         float64 `json:"c"`
	Threshold float64 `json:"threshold"`
}

// Perturb returns the corner's technology perturbation.
func (c Corner) Perturb() rc.Perturb {
	return rc.Perturb{R: c.R, C: c.C, Threshold: c.Threshold}
}

// StandardCorners returns the usual five-corner enumeration: typical,
// fast, slow, and the two skewed corners (fast gates with slow
// interconnect and the reverse).
func StandardCorners() []Corner {
	return []Corner{
		{Name: "tt", R: 1, C: 1, Threshold: 1},
		{Name: "ff", R: 0.9, C: 0.9, Threshold: 0.85},
		{Name: "ss", R: 1.1, C: 1.1, Threshold: 1.15},
		{Name: "fs", R: 1.1, C: 1.05, Threshold: 0.9},
		{Name: "sf", R: 0.9, C: 0.95, Threshold: 1.1},
	}
}

// CornerOptions configures a corner enumeration. The zero value solves
// StandardCorners with derived bounds and solver defaults.
type CornerOptions struct {
	// Corners to enumerate; empty means StandardCorners().
	Corners []Corner
	// Bounds are the nominal base bounds; nil derives them from the
	// instance (bench.DeriveBounds). Every corner is solved against the
	// same targets — the corner moves the technology, not the spec — save
	// the constant-coupling-offset carry in the noise bound (see
	// perturbedBounds).
	Bounds *bench.Bounds
	// Solver knobs, normalized like core.Options.validate (zero keeps the
	// defaults).
	MaxIterations int
	Epsilon       float64
	Workers       int
	// Cold skips warm-starting corners from the nominal solve.
	Cold bool
	// PrimalOnly withholds the dual half of the warm start; ColdLRS
	// resets the sizes at every S1 (the paper-faithful inner loop). Under
	// both, warm ≡ cold bitwise.
	PrimalOnly bool
	ColdLRS    bool
	FullPasses bool
	// Cancel is polled at solver iteration boundaries (core.Options.Cancel).
	Cancel func() bool
	// OnCorner, when non-nil, observes each corner cell as it completes,
	// in corner order. Purely observational: results are bit-identical
	// with or without the hook.
	OnCorner func(*CornerCell)
}

// CornerCell is one solved corner.
type CornerCell struct {
	Corner Corner       `json:"corner"`
	Result *core.Result `json:"result"`
}

// CornerReport is the corner-enumeration outcome: the nominal solve, one
// cell per corner (in the requested order), and the cross-corner delay
// distribution of the solved designs.
type CornerReport struct {
	Nominal *core.Result `json:"nominal"`
	Cells   []CornerCell `json:"corners"`
	// Delay summarizes the per-corner achieved delays (DelayPs), nominal
	// excluded — the corner spread Table-1-style reporting quotes.
	Delay Dist `json:"delay"`
}

// solverOptions normalizes the shared solver knobs exactly as
// sweep.Options does, so a corner cell and a sweep cell with the same
// knobs run the same core configuration.
func solverOptions(b bench.Bounds, maxIter int, epsilon float64, workers int, coldLRS, fullPasses bool) core.Options {
	sopt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	if maxIter > 0 {
		sopt.MaxIterations = maxIter
	}
	if epsilon > 0 {
		sopt.Epsilon = epsilon
	}
	sopt.WarmStart = !coldLRS
	sopt.Incremental = !fullPasses
	sopt.Workers = workers
	return sopt
}

// resolveBounds returns the explicit bounds or derives them.
func resolveBounds(inst *bench.Instance, b *bench.Bounds) bench.Bounds {
	if b != nil {
		return *b
	}
	return bench.DeriveBounds(inst)
}

// perturbedBounds carries the base bounds to a perturbed technology. The
// targets themselves do not move — a corner shifts the silicon, not the
// spec — with one necessary exception: the noise bound contains the
// constant coupling offset, the crosstalk floor no sizing can remove,
// and that floor scales with the capacitance perturbation. Keeping the
// raw bound fixed would make every slow-C variant infeasible by
// construction, so the bound carries the offset's delta and holds the
// removable noise budget (bound − offset) constant instead. Pure
// arithmetic in (bounds, offset, perturb): the lockstep and solo paths
// compute the identical bound, preserving bit-identity.
func perturbedBounds(b bench.Bounds, offset float64, p rc.Perturb) bench.Bounds {
	b.NoiseBound += (p.C - 1) * offset
	return b
}

// constantOffset is the instance's unavoidable crosstalk floor.
func constantOffset(inst *bench.Instance) float64 {
	if cs := inst.Eval.Couplings(); cs != nil {
		return cs.ConstantOffset()
	}
	return 0
}

// CornerSweep solves the instance at the nominal technology and then at
// every corner. With warm starts (the default) each corner begins at the
// nominal sizes and multipliers; Cold solves every corner from scratch.
// Corners run sequentially in list order, so the report is deterministic
// in (instance, options) regardless of hooks or timing.
func CornerSweep(inst *bench.Instance, opt CornerOptions) (*CornerReport, error) {
	corners := opt.Corners
	if len(corners) == 0 {
		corners = StandardCorners()
	}
	for _, c := range corners {
		if err := c.Perturb().Validate(); err != nil {
			return nil, fmt.Errorf("variation: corner %q: %w", c.Name, err)
		}
	}
	bounds := resolveBounds(inst, opt.Bounds)
	offset := constantOffset(inst)
	sopt := solverOptions(bounds, opt.MaxIterations, opt.Epsilon, opt.Workers, opt.ColdLRS, opt.FullPasses)
	sopt.Cancel = opt.Cancel

	// Nominal solve: the warm-start anchor and the report's reference row.
	nomEv, err := inst.Replica()
	if err != nil {
		return nil, err
	}
	nomSolver, err := core.NewSolver(nomEv, sopt)
	if err != nil {
		return nil, err
	}
	nominal, err := nomSolver.Run()
	if err != nil {
		nomSolver.Close()
		return nil, err
	}
	var dual *core.DualState
	if !opt.Cold && !opt.PrimalOnly {
		dual = nomSolver.DualState()
	}
	nomSolver.Close()

	rep := &CornerReport{Nominal: nominal, Cells: make([]CornerCell, 0, len(corners))}
	delays := make([]float64, 0, len(corners))
	for _, c := range corners {
		ev, err := inst.PerturbedReplica(c.Perturb())
		if err != nil {
			return nil, fmt.Errorf("variation: corner %q: %w", c.Name, err)
		}
		copt := solverOptions(perturbedBounds(bounds, offset, c.Perturb()),
			opt.MaxIterations, opt.Epsilon, opt.Workers, opt.ColdLRS, opt.FullPasses)
		copt.Cancel = opt.Cancel
		solver, err := core.NewSolver(ev, copt)
		if err != nil {
			return nil, fmt.Errorf("variation: corner %q: %w", c.Name, err)
		}
		seed := inst.Eval.X
		var d *core.DualState
		if !opt.Cold {
			seed = nominal.X
			d = dual
		}
		res, err := solver.RunFromDual(seed, d)
		solver.Close()
		if err != nil {
			return nil, fmt.Errorf("variation: corner %q: %w", c.Name, err)
		}
		cell := CornerCell{Corner: c, Result: res}
		rep.Cells = append(rep.Cells, cell)
		delays = append(delays, res.DelayPs)
		if opt.OnCorner != nil {
			opt.OnCorner(&rep.Cells[len(rep.Cells)-1])
		}
	}
	rep.Delay = NewDist(delays)
	return rep, nil
}
