package variation

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rc"
)

// testInstance is the deterministic coupled mesh the sweep and lockstep
// suites pin their oracles on — the same construction the farm
// re-materializes by key, so every bit-identity proved here transfers to
// the distributed path.
func testInstance(t testing.TB, width, layers int) (*bench.Instance, bench.Bounds) {
	t.Helper()
	inst, b, err := bench.GridInstance(width, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	return inst, b
}

func testMCOptions(b bench.Bounds, mutate func(*MCOptions)) MCOptions {
	opt := MCOptions{
		Samples:       6,
		Seed:          7,
		Sigmas:        Sigmas{R: 0.05, C: 0.05, Threshold: 0.08},
		Bounds:        &b,
		MaxIterations: 12,
	}
	if mutate != nil {
		mutate(&opt)
	}
	return opt
}

func runMC(t *testing.T, inst *bench.Instance, opt MCOptions) *MCResult {
	t.Helper()
	res, err := MonteCarlo(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMonteCarloSampleBitIdentical is the evaluator-mode oracle: every
// lockstep sample must be bitwise equal to a solo solve of the same
// perturbed instance, at every lockstep width. This is the contract that
// lets the farm shard samples across workers — a shard is just a solo
// (or smaller-lockstep) run of its sample indices.
func TestMonteCarloSampleBitIdentical(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	ref := runMC(t, inst, testMCOptions(b, func(o *MCOptions) { o.Solo = true }))
	for _, w := range []int{0, 4} {
		got := runMC(t, inst, testMCOptions(b, func(o *MCOptions) { o.Workers = w }))
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("lockstep Workers=%d diverged from solo reference", w)
		}
	}
}

// TestMonteCarloSeedReproducible pins the seed contract: the same seed
// reproduces the identical result byte for byte, and a different seed
// actually moves the sample set.
func TestMonteCarloSeedReproducible(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	a := runMC(t, inst, testMCOptions(b, nil))
	c := runMC(t, inst, testMCOptions(b, nil))
	if !reflect.DeepEqual(a, c) {
		t.Error("same-seed reruns diverged")
	}
	d := runMC(t, inst, testMCOptions(b, func(o *MCOptions) { o.Seed = 8 }))
	if reflect.DeepEqual(a.Samples[0].Perturb, d.Samples[0].Perturb) {
		t.Error("different seeds drew the identical first perturbation")
	}
	if a.Yield < 0 || a.Yield > 1 {
		t.Errorf("yield %g outside [0,1]", a.Yield)
	}
	if a.Delay.N != len(a.Samples) {
		t.Errorf("delay dist over %d values, want %d", a.Delay.N, len(a.Samples))
	}
}

// TestPerturbsShardIndependent pins the farm-sharding property: sample
// i's perturbation depends only on (seed, i, sigmas), never on how many
// samples the run requested — so a worker holding samples [lo,hi) of a
// K-sample job draws exactly the coordinator's bytes.
func TestPerturbsShardIndependent(t *testing.T) {
	s := Sigmas{R: 0.1, C: 0.2, Threshold: 0.3}
	full, err := Perturbs(42, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Perturbs(42, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full[:4], short) {
		t.Error("sample set prefix depends on the requested count")
	}
	zero, err := Perturbs(42, 3, Sigmas{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range zero {
		if p != rc.Nominal() {
			t.Errorf("zero sigmas sample %d = %+v, want exact nominal", i, p)
		}
	}
}

// TestSamplerRejectsBadInputs is the validation fix's table: NaN,
// negative, and infinite sigmas and non-positive sample counts must be
// rejected before any draw, core.Options.validate-style.
func TestSamplerRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		s       Sigmas
		wantErr string
	}{
		{"zero samples", 0, Sigmas{}, "sample count must be positive"},
		{"negative samples", -3, Sigmas{}, "sample count must be positive"},
		{"nan R", 4, Sigmas{R: math.NaN()}, "sigma R"},
		{"negative C", 4, Sigmas{C: -0.1}, "sigma C"},
		{"inf threshold", 4, Sigmas{Threshold: math.Inf(1)}, "sigma Threshold"},
		{"negative inf R", 4, Sigmas{R: math.Inf(-1)}, "sigma R"},
		{"valid", 4, Sigmas{R: 0.1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Perturbs(1, tc.k, tc.s)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}

	// The same rejection surfaces through MonteCarlo before any solve.
	inst, b := testInstance(t, 6, 4)
	if _, err := MonteCarlo(inst, testMCOptions(b, func(o *MCOptions) { o.Samples = 0 })); err == nil {
		t.Error("MonteCarlo accepted zero samples")
	}
	if _, err := MonteCarlo(inst, testMCOptions(b, func(o *MCOptions) { o.Sigmas.R = math.NaN() })); err == nil {
		t.Error("MonteCarlo accepted NaN sigma")
	}
}

func testCornerOptions(b bench.Bounds, mutate func(*CornerOptions)) CornerOptions {
	opt := CornerOptions{Bounds: &b, MaxIterations: 12}
	if mutate != nil {
		mutate(&opt)
	}
	return opt
}

// TestCornerWarmMatchesCold is the corner analogue of the sweep
// independence oracle: under ColdLRS+PrimalOnly a warm start carries no
// information the solver can use, so the warm corner enumeration must be
// bit-identical to the cold one.
func TestCornerWarmMatchesCold(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	warm, err := CornerSweep(inst, testCornerOptions(b, func(o *CornerOptions) {
		o.ColdLRS, o.PrimalOnly = true, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CornerSweep(inst, testCornerOptions(b, func(o *CornerOptions) {
		o.ColdLRS, o.PrimalOnly, o.Cold = true, true, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Error("warm corner sweep diverged from cold under ColdLRS+PrimalOnly")
	}
}

// TestCornerSweepShape pins the report structure: nominal plus one cell
// per corner in request order, the tt corner bit-identical to the
// nominal solve warm-started from itself converging in place.
func TestCornerSweepShape(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	rep, err := CornerSweep(inst, testCornerOptions(b, nil))
	if err != nil {
		t.Fatal(err)
	}
	std := StandardCorners()
	if len(rep.Cells) != len(std) {
		t.Fatalf("%d cells, want %d", len(rep.Cells), len(std))
	}
	for i, c := range rep.Cells {
		if c.Corner.Name != std[i].Name {
			t.Errorf("cell %d is corner %q, want %q", i, c.Corner.Name, std[i].Name)
		}
		if c.Result == nil {
			t.Fatalf("corner %q has no result", c.Corner.Name)
		}
	}
	if rep.Delay.N != len(std) {
		t.Errorf("delay dist over %d corners, want %d", rep.Delay.N, len(std))
	}
	// Same options, rerun: deterministic byte for byte.
	again, err := CornerSweep(inst, testCornerOptions(b, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("corner sweep rerun diverged")
	}
}

// TestCornerSweepRejectsBadCorner: a non-positive or non-finite corner
// scalar is rejected before any solve.
func TestCornerSweepRejectsBadCorner(t *testing.T) {
	inst, b := testInstance(t, 6, 4)
	for _, c := range []Corner{
		{Name: "zeroR", R: 0, C: 1, Threshold: 1},
		{Name: "negC", R: 1, C: -0.5, Threshold: 1},
		{Name: "nanT", R: 1, C: 1, Threshold: math.NaN()},
		{Name: "infR", R: math.Inf(1), C: 1, Threshold: 1},
	} {
		_, err := CornerSweep(inst, testCornerOptions(b, func(o *CornerOptions) { o.Corners = []Corner{c} }))
		if err == nil || !strings.Contains(err.Error(), c.Name) {
			t.Errorf("corner %q: error %v, want rejection naming the corner", c.Name, err)
		}
	}
}

// TestCornerObservationHooksAreInert: OnCorner and OnSample observe
// without perturbing a single bit.
func TestCornerObservationHooksAreInert(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	plain, err := CornerSweep(inst, testCornerOptions(b, nil))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	hooked, err := CornerSweep(inst, testCornerOptions(b, func(o *CornerOptions) {
		o.OnCorner = func(c *CornerCell) { seen++ }
	}))
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(plain.Cells) {
		t.Errorf("OnCorner fired %d times, want %d", seen, len(plain.Cells))
	}
	if !reflect.DeepEqual(plain, hooked) {
		t.Error("OnCorner hook changed the report")
	}

	mcPlain := runMC(t, inst, testMCOptions(b, nil))
	samples := 0
	mcHooked := runMC(t, inst, testMCOptions(b, func(o *MCOptions) {
		o.OnSample = func(s *Sample) {
			if s.Index != samples {
				t.Errorf("OnSample index %d out of order (want %d)", s.Index, samples)
			}
			samples++
		}
	}))
	if samples != len(mcPlain.Samples) {
		t.Errorf("OnSample fired %d times, want %d", samples, len(mcPlain.Samples))
	}
	if !reflect.DeepEqual(mcPlain, mcHooked) {
		t.Error("OnSample hook changed the result")
	}
}

// TestCancelStopsVariation: both modes surface core.ErrCancelled.
func TestCancelStopsVariation(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	cancel := func() bool { return true }
	if _, err := MonteCarlo(inst, testMCOptions(b, func(o *MCOptions) { o.Cancel = cancel })); err != core.ErrCancelled {
		t.Errorf("MonteCarlo cancel returned %v, want ErrCancelled", err)
	}
	if _, err := CornerSweep(inst, testCornerOptions(b, func(o *CornerOptions) { o.Cancel = cancel })); err != core.ErrCancelled {
		t.Errorf("CornerSweep cancel returned %v, want ErrCancelled", err)
	}
}

// TestDist pins the deterministic summary: index-order moments,
// nearest-rank quantiles, zero value on empty input.
func TestDist(t *testing.T) {
	if d := NewDist(nil); d != (Dist{}) {
		t.Errorf("empty dist = %+v, want zero", d)
	}
	d := NewDist([]float64{3, 1, 2, 5, 4})
	if d.N != 5 || d.Mean != 3 || d.Min != 1 || d.Max != 5 || d.Median != 3 {
		t.Errorf("dist = %+v", d)
	}
	if d.P90 != 5 {
		t.Errorf("P90 = %g, want nearest-rank 5", d.P90)
	}
	if want := math.Sqrt(2.5); d.Std != want {
		t.Errorf("Std = %g, want %g", d.Std, want)
	}
	one := NewDist([]float64{7})
	if one.Std != 0 || one.Mean != 7 || one.Median != 7 {
		t.Errorf("singleton dist = %+v", one)
	}
}

// TestRobust exercises the μ+kσ outer loop: trials in scale order, best
// minimizes the objective, reruns are bit-identical, bad knobs rejected.
func TestRobust(t *testing.T) {
	inst, b := testInstance(t, 10, 8)
	opt := RobustOptions{
		MC:     testMCOptions(b, nil),
		Scales: []float64{0.95, 1.0, 1.05},
	}
	res, err := Robust(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("%d trials, want 3", len(res.Trials))
	}
	if res.K != 3 {
		t.Errorf("default K = %g, want 3", res.K)
	}
	for i, tr := range res.Trials {
		if tr.Scale != opt.Scales[i] {
			t.Errorf("trial %d scale %g, want %g", i, tr.Scale, opt.Scales[i])
		}
		if tr.Delay.N != opt.MC.Samples {
			t.Errorf("trial %d scored over %d samples, want %d", i, tr.Delay.N, opt.MC.Samples)
		}
		if got := tr.Delay.Mean + res.K*tr.Delay.Std; tr.Objective != got {
			t.Errorf("trial %d objective %g, want μ+kσ = %g", i, tr.Objective, got)
		}
		if tr.Objective < res.Trials[res.Best].Objective {
			t.Errorf("trial %d beats declared best %d", i, res.Best)
		}
	}
	again, err := Robust(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("robust rerun diverged")
	}

	if _, err := Robust(inst, RobustOptions{MC: opt.MC, K: -1}); err == nil {
		t.Error("accepted negative K")
	}
	if _, err := Robust(inst, RobustOptions{MC: opt.MC, K: math.NaN()}); err == nil {
		t.Error("accepted NaN K")
	}
	if _, err := Robust(inst, RobustOptions{MC: opt.MC, Scales: []float64{0}}); err == nil {
		t.Error("accepted zero scale")
	}
	bad := opt.MC
	bad.Samples = 0
	if _, err := Robust(inst, RobustOptions{MC: bad}); err == nil {
		t.Error("accepted zero samples")
	}
}
