package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Parse reads a netlist in ISCAS85 .bench format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//
// DFF gates are split into a pseudo-input (the flip-flop output net) and a
// pseudo-output (its data input), extracting the combinational core. The
// returned netlist is finalized (validated and topologically ordered).
func Parse(name string, r io.Reader) (*Netlist, error) {
	n := &Netlist{Name: name}
	type pending struct {
		name   string
		typ    GateType
		fanin  []string
		lineNo int
	}
	var (
		gates       []pending
		inputNames  []string
		outputNames []string
		seen        = map[string]bool{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			arg, err := parseParen(line[len("INPUT"):])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: INPUT: %v", name, lineNo, err)
			}
			inputNames = append(inputNames, arg)
		case strings.HasPrefix(upper, "OUTPUT"):
			arg, err := parseParen(line[len("OUTPUT"):])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: OUTPUT: %v", name, lineNo, err)
			}
			outputNames = append(outputNames, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: unrecognized line %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.IndexByte(rhs, '(')
			closeP := strings.LastIndexByte(rhs, ')')
			if lhs == "" || open <= 0 || closeP < open {
				return nil, fmt.Errorf("%s:%d: malformed gate line %q", name, lineNo, line)
			}
			typName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			if typName == "DFF" {
				// Combinational extraction: the DFF output becomes a
				// pseudo-input; its data net becomes a pseudo-output.
				inputNames = append(inputNames, lhs)
				arg := strings.TrimSpace(rhs[open+1 : closeP])
				if arg == "" {
					return nil, fmt.Errorf("%s:%d: DFF with no input", name, lineNo)
				}
				outputNames = append(outputNames, arg)
				continue
			}
			typ, ok := typeByName[typName]
			if !ok || typ == Input {
				return nil, fmt.Errorf("%s:%d: unknown gate type %q", name, lineNo, typName)
			}
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:closeP], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("%s:%d: empty fan-in name", name, lineNo)
				}
				fanin = append(fanin, f)
			}
			if seen[lhs] {
				return nil, fmt.Errorf("%s:%d: net %q defined twice", name, lineNo, lhs)
			}
			seen[lhs] = true
			gates = append(gates, pending{lhs, typ, fanin, lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}

	idx := map[string]int32{}
	addInput := func(nm string) {
		if _, ok := idx[nm]; ok {
			return
		}
		idx[nm] = int32(len(n.Gates))
		n.Gates = append(n.Gates, Gate{Name: nm, Type: Input})
		n.Inputs = append(n.Inputs, idx[nm])
	}
	for _, nm := range inputNames {
		if seen[nm] {
			return nil, fmt.Errorf("%s: net %q is both INPUT and gate output", name, nm)
		}
		addInput(nm)
	}
	for _, g := range gates {
		idx[g.name] = int32(len(n.Gates))
		n.Gates = append(n.Gates, Gate{Name: g.name, Type: g.typ})
	}
	for gi, g := range gates {
		node := &n.Gates[int(idx[g.name])]
		_ = gi
		for _, f := range g.fanin {
			fi, ok := idx[f]
			if !ok {
				return nil, fmt.Errorf("%s:%d: %q uses undefined net %q", name, g.lineNo, g.name, f)
			}
			node.Fanin = append(node.Fanin, fi)
		}
	}
	outSeen := map[string]bool{}
	for _, nm := range outputNames {
		oi, ok := idx[nm]
		if !ok {
			return nil, fmt.Errorf("%s: OUTPUT(%s) references undefined net", name, nm)
		}
		if outSeen[nm] {
			continue
		}
		outSeen[nm] = true
		n.Outputs = append(n.Outputs, oi)
	}
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

func parseParen(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("expected (name), got %q", s)
	}
	arg := strings.TrimSpace(s[1 : len(s)-1])
	if arg == "" {
		return "", fmt.Errorf("empty name")
	}
	return arg, nil
}

// Write emits the netlist in .bench format, reproducing Parse's input up to
// ordering and comments.
func (n *Netlist) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	ins := append([]int32(nil), n.Inputs...)
	sort.Slice(ins, func(a, b int) bool { return ins[a] < ins[b] })
	for _, i := range ins {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[i].Name)
	}
	for _, o := range n.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[o].Name)
	}
	for _, g := range n.Gates {
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for k, f := range g.Fanin {
			names[k] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
