package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/tech"
)

// benchC17 is the classic ISCAS85 c17 netlist: 5 inputs, 2 outputs, 6 NAND
// gates, 12 gate-input connections.
const benchC17 = `# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func parseC17(t testing.TB) *Netlist {
	t.Helper()
	n, err := Parse("c17", strings.NewReader(benchC17))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

func TestParseC17(t *testing.T) {
	n := parseC17(t)
	st := n.Stats()
	if st.Inputs != 5 || st.Outputs != 2 || st.Gates != 6 {
		t.Fatalf("stats = %+v, want 5 inputs / 2 outputs / 6 gates", st)
	}
	if st.Connections != 12 {
		t.Errorf("connections = %d, want 12", st.Connections)
	}
	if st.Depth != 3 {
		t.Errorf("depth = %d, want 3", st.Depth)
	}
	if i := n.Index("16"); i < 0 || n.Gates[i].Type != Nand {
		t.Errorf("net 16 lookup failed: idx=%d", i)
	}
	if n.Index("nope") != -1 {
		t.Error("Index of unknown net should be -1")
	}
}

func TestParseTopologicalOrder(t *testing.T) {
	n := parseC17(t)
	for gi, g := range n.Gates {
		for _, f := range g.Fanin {
			if int(f) >= gi {
				t.Errorf("gate %s at %d has fan-in %s at %d (not topological)", g.Name, gi, n.Gates[f].Name, f)
			}
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	n := parseC17(t)
	var buf bytes.Buffer
	if err := n.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	n2, err := Parse("c17rt", &buf)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if n.Stats() != n2.Stats() {
		t.Fatalf("round trip changed stats: %+v vs %+v", n.Stats(), n2.Stats())
	}
	for gi, g := range n.Gates {
		g2 := n2.Gates[n2.Index(g.Name)]
		if g2.Type != g.Type || len(g2.Fanin) != len(g.Fanin) {
			t.Errorf("gate %q changed: %v/%d vs %v/%d", g.Name, g.Type, len(g.Fanin), g2.Type, len(g2.Fanin))
		}
		_ = gi
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown type", "INPUT(a)\nOUTPUT(b)\nb = FROB(a)\n"},
		{"undefined fanin", "INPUT(a)\nOUTPUT(b)\nb = NOT(zzz)\n"},
		{"duplicate net", "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\nb = NOT(a)\n"},
		{"input redefined", "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n"},
		{"empty fanin", "INPUT(a)\nOUTPUT(b)\nb = AND(a, )\n"},
		{"garbage", "INPUT(a)\nwhat is this\n"},
		{"missing paren", "INPUT a\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(q)\nb = NOT(a)\n"},
		{"no outputs", "INPUT(a)\nb = NOT(a)\n"},
		{"no inputs", "OUTPUT(b)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(c)\nb = AND(a, c)\nc = NOT(b)\n"},
		{"not fanin 2", "INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = NOT(a, b)\n"},
		{"and fanin 1", "INPUT(a)\nOUTPUT(c)\nc = AND(a)\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: Parse succeeded, want error", c.name)
		}
	}
}

func TestParseDFFExtraction(t *testing.T) {
	src := `INPUT(a)
OUTPUT(z)
q = DFF(d)
d = NAND(a, q)
z = NOT(q)
`
	n, err := Parse("seq", strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := n.Stats()
	// q becomes a pseudo-input, d a pseudo-output.
	if st.Inputs != 2 {
		t.Errorf("inputs = %d, want 2 (a and pseudo-input q)", st.Inputs)
	}
	if st.Outputs != 2 {
		t.Errorf("outputs = %d, want 2 (z and pseudo-output d)", st.Outputs)
	}
	if st.Gates != 2 {
		t.Errorf("gates = %d, want 2", st.Gates)
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	src := `# leading comment
input(a)  # inline comment
INPUT(b)
output(z)
z = nand(a, b)
`
	n, err := Parse("case", strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st := n.Stats(); st.Inputs != 2 || st.Gates != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestElaborateC17(t *testing.T) {
	n := parseC17(t)
	e, err := Elaborate(n, ElabOptions{Tech: tech.Default()})
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	st := e.Graph.Stats()
	if st.Drivers != 5 {
		t.Errorf("drivers = %d, want 5", st.Drivers)
	}
	if st.Gates != 6 {
		t.Errorf("gates = %d, want 6", st.Gates)
	}
	// Paper accounting: wires = connections + outputs = 12 + 2 = 14.
	if st.Wires != 14 {
		t.Errorf("wires = %d, want 14", st.Wires)
	}
}

func TestElaborateMappings(t *testing.T) {
	n := parseC17(t)
	e, err := Elaborate(n, ElabOptions{Tech: tech.Default()})
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	g := e.Graph
	// Every netlist gate maps to a node of matching kind and name.
	for gi, gate := range n.Gates {
		v := e.NodeOf[gi]
		c := g.Comp(v)
		if c.Name != gate.Name {
			t.Errorf("gate %q maps to node named %q", gate.Name, c.Name)
		}
		wantKind := circuit.Gate
		if gate.Type == Input {
			wantKind = circuit.Driver
		}
		if c.Kind != wantKind {
			t.Errorf("gate %q maps to %v, want %v", gate.Name, c.Kind, wantKind)
		}
		if e.NetOf[v] != gi {
			t.Errorf("NetOf(NodeOf(%q)) = %d, want %d", gate.Name, e.NetOf[v], gi)
		}
	}
	// Every wire's NetOf is the net of its (unique) fan-in node.
	for _, wi := range g.Wires() {
		w := int(wi)
		in := g.In(w)
		if len(in) != 1 {
			t.Fatalf("wire %d has %d inputs", w, len(in))
		}
		if e.NetOf[w] != e.NetOf[in[0]] {
			t.Errorf("wire %q: NetOf = %d, driver NetOf = %d", g.Comp(w).Name, e.NetOf[w], e.NetOf[in[0]])
		}
	}
	// Source and sink carry no net.
	if e.NetOf[0] != -1 || e.NetOf[g.SinkID()] != -1 {
		t.Error("source/sink should map to net -1")
	}
}

func TestElaborateWireLengths(t *testing.T) {
	n := parseC17(t)
	e, err := Elaborate(n, ElabOptions{
		Tech:       tech.Default(),
		WireLength: func(from, to, branch int) float64 { return 10 + float64(branch)*5 },
	})
	if err != nil {
		t.Fatalf("Elaborate: %v", err)
	}
	p := tech.Default()
	for _, wi := range e.Graph.Wires() {
		c := e.Graph.Comp(int(wi))
		if c.Length < 10 {
			t.Errorf("wire %q length %g < 10", c.Name, c.Length)
		}
		wantR := p.WireResistance * c.Length
		if c.RUnit != wantR {
			t.Errorf("wire %q RUnit = %g, want %g", c.Name, c.RUnit, wantR)
		}
	}
}

func TestElaborateRejectsBadLength(t *testing.T) {
	n := parseC17(t)
	_, err := Elaborate(n, ElabOptions{
		Tech:       tech.Default(),
		WireLength: func(from, to, branch int) float64 { return -1 },
	})
	if err == nil {
		t.Fatal("Elaborate accepted negative wire length")
	}
}

func TestGateTypeFanins(t *testing.T) {
	if Input.MinFanin() != 0 || Input.MaxFanin() != 0 {
		t.Error("Input fanin bounds wrong")
	}
	if Not.MinFanin() != 1 || Not.MaxFanin() != 1 {
		t.Error("Not fanin bounds wrong")
	}
	if And.MinFanin() != 2 || And.MaxFanin() != 0 {
		t.Error("And fanin bounds wrong")
	}
	if GateType(200).String() == "" {
		t.Error("unknown gate type should still print")
	}
}
