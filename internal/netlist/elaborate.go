package netlist

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/tech"
)

// ElabOptions controls netlist elaboration.
type ElabOptions struct {
	// Tech supplies electrical and geometric unit values.
	Tech tech.Params
	// WireLength returns the routed length (µm) of the wire from the net
	// driven by gate `from` to gate `to` (-1 for a primary-output
	// connection); branch counts fanout branches of `from` (0-based).
	// If nil, every wire gets DefaultWireLength.
	WireLength func(from, to, branch int) float64
	// DefaultWireLength (µm) is used when WireLength is nil. Zero means
	// 50 µm.
	DefaultWireLength float64
}

// Elaboration maps between the netlist and its circuit graph.
type Elaboration struct {
	Graph *circuit.Graph
	// NodeOf[gi] is the circuit node of netlist gate gi: a driver node for
	// Input pseudo-gates, a gate node otherwise.
	NodeOf []int
	// NetOf[v] is the netlist gate index whose output net the circuit node
	// v carries: the gate itself for gate/driver nodes, the driving net
	// for wire nodes, and -1 for source and sink.
	NetOf []int
}

// Elaborate converts a finalized netlist into a circuit graph following the
// paper's accounting: one wire component per gate-input connection and per
// primary-output connection.
func Elaborate(n *Netlist, opt ElabOptions) (*Elaboration, error) {
	if err := opt.Tech.Validate(); err != nil {
		return nil, err
	}
	length := opt.WireLength
	if length == nil {
		dl := opt.DefaultWireLength
		if dl == 0 {
			dl = 50
		}
		length = func(from, to, branch int) float64 { return dl }
	}
	p := opt.Tech
	b := circuit.NewBuilder()
	nodeOf := make([]int, len(n.Gates)) // builder IDs
	for gi, g := range n.Gates {
		if g.Type == Input {
			nodeOf[gi] = b.AddDriver(g.Name, p.DriverResistance)
		} else {
			nodeOf[gi] = b.AddGate(g.Name, p.GateResistance, p.GateCapacitance, p.GateArea, p.MinSize, p.MaxSize)
		}
	}
	branch := make([]int, len(n.Gates))
	type wireRec struct {
		builderID int
		net       int // driving netlist gate
	}
	var wires []wireRec
	addWire := func(from, to int, name string) (int, error) {
		l := length(from, to, branch[from])
		branch[from]++
		if l <= 0 {
			return 0, fmt.Errorf("netlist: non-positive wire length %g for %s", l, name)
		}
		w := b.AddWire(name,
			p.WireResistance*l, p.WireCapacitance*l, p.WireFringe*l, l,
			p.WireArea*l, p.MinSize, p.MaxSize)
		b.Connect(nodeOf[from], w)
		wires = append(wires, wireRec{w, from})
		return w, nil
	}
	for gi, g := range n.Gates {
		for _, f := range g.Fanin {
			w, err := addWire(int(f), gi, fmt.Sprintf("%s->%s", n.Gates[f].Name, g.Name))
			if err != nil {
				return nil, err
			}
			b.Connect(w, nodeOf[gi])
		}
	}
	for _, o := range n.Outputs {
		w, err := addWire(int(o), -1, fmt.Sprintf("%s->out", n.Gates[o].Name))
		if err != nil {
			return nil, err
		}
		b.MarkOutput(w, p.LoadCapacitance)
	}
	g, id, err := b.Build()
	if err != nil {
		return nil, err
	}
	e := &Elaboration{Graph: g, NodeOf: make([]int, len(n.Gates)), NetOf: make([]int, g.NumNodes())}
	for i := range e.NetOf {
		e.NetOf[i] = -1
	}
	for gi := range n.Gates {
		v := id[nodeOf[gi]]
		e.NodeOf[gi] = v
		e.NetOf[v] = gi
	}
	for _, w := range wires {
		e.NetOf[id[w.builderID]] = w.net
	}
	return e, nil
}
