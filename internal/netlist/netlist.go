// Package netlist provides a gate-level combinational netlist: the ISCAS85
// .bench file format (reader and writer), a small gate library, and the
// elaboration into the sized circuit graph of package circuit.
//
// Elaboration follows the paper's component accounting: every connection
// from a driving net (primary input or gate output) to a gate input becomes
// one wire component, and every primary-output connection becomes one wire
// component feeding the output load. Hence #wires = Σ gate fan-ins + #POs,
// which reproduces the gate/wire counts reported in Table 1.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates the ISCAS85 gate library. Input is a pseudo-gate for
// primary inputs; DFF outputs are treated as pseudo-inputs and DFF inputs as
// pseudo-outputs, the standard way of extracting the combinational core.
type GateType uint8

const (
	Input GateType = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var typeNames = map[GateType]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

var typeByName = map[string]GateType{
	"INPUT": Input, "BUF": Buf, "BUFF": Buf, "NOT": Not, "INV": Not,
	"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor, "XOR": Xor, "XNOR": Xnor,
}

// String returns the canonical .bench spelling of the gate type.
func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GATE(%d)", uint8(t))
}

// MinFanin returns the minimum legal fan-in for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fan-in (0 means unbounded).
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case Buf, Not:
		return 1
	default:
		return 0
	}
}

// Gate is one node of the netlist. Fanin holds indices into Netlist.Gates.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int32
}

// Netlist is a combinational gate-level netlist. Gates is stored in
// topological order after Finalize.
type Netlist struct {
	Name    string
	Gates   []Gate
	Inputs  []int32 // indices of Input pseudo-gates
	Outputs []int32 // indices of primary-output nets
	byName  map[string]int32
}

// Index returns the gate index for a net name, or -1.
func (n *Netlist) Index(name string) int {
	if i, ok := n.byName[name]; ok {
		return int(i)
	}
	return -1
}

// Fanouts computes, for every gate, the list of gates it feeds.
func (n *Netlist) Fanouts() [][]int32 {
	out := make([][]int32, len(n.Gates))
	for gi := range n.Gates {
		for _, f := range n.Gates[gi].Fanin {
			out[f] = append(out[f], int32(gi))
		}
	}
	return out
}

// Levels returns each gate's logic level (inputs are level 0) and the
// maximum level.
func (n *Netlist) Levels() ([]int, int) {
	lv := make([]int, len(n.Gates))
	maxLv := 0
	for i := range n.Gates { // topological order after Finalize
		l := 0
		for _, f := range n.Gates[i].Fanin {
			if lv[f]+1 > l {
				l = lv[f] + 1
			}
		}
		lv[i] = l
		if l > maxLv {
			maxLv = l
		}
	}
	return lv, maxLv
}

// Stats summarizes the netlist: primary inputs, outputs, logic gates
// (excluding Input pseudo-gates), total fan-in connections, and depth.
type Stats struct {
	Inputs, Outputs, Gates int
	Connections            int
	Depth                  int
}

// Stats computes netlist statistics. Wires in the paper's accounting equal
// Connections + Outputs.
func (n *Netlist) Stats() Stats {
	s := Stats{Inputs: len(n.Inputs), Outputs: len(n.Outputs)}
	for _, g := range n.Gates {
		if g.Type != Input {
			s.Gates++
			s.Connections += len(g.Fanin)
		}
	}
	_, s.Depth = n.Levels()
	return s
}

// Finalize validates the netlist, builds the name index, and re-sorts Gates
// topologically (updating all indices). It must be called after manual
// construction; Parse calls it automatically.
func (n *Netlist) Finalize() error {
	ng := len(n.Gates)
	if ng == 0 {
		return fmt.Errorf("netlist %s: empty", n.Name)
	}
	n.byName = make(map[string]int32, ng)
	for i, g := range n.Gates {
		if g.Name == "" {
			return fmt.Errorf("netlist %s: gate %d has no name", n.Name, i)
		}
		if _, dup := n.byName[g.Name]; dup {
			return fmt.Errorf("netlist %s: duplicate net %q", n.Name, g.Name)
		}
		n.byName[g.Name] = int32(i)
		if g.Type == Input && len(g.Fanin) != 0 {
			return fmt.Errorf("netlist %s: input %q has fan-in", n.Name, g.Name)
		}
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return fmt.Errorf("netlist %s: %s %q has fan-in %d, need at least %d", n.Name, g.Type, g.Name, len(g.Fanin), min)
		}
		if max := g.Type.MaxFanin(); max > 0 && len(g.Fanin) > max {
			return fmt.Errorf("netlist %s: %s %q has fan-in %d, at most %d allowed", n.Name, g.Type, g.Name, len(g.Fanin), max)
		}
		for _, f := range g.Fanin {
			if f < 0 || int(f) >= ng {
				return fmt.Errorf("netlist %s: %q has out-of-range fan-in %d", n.Name, g.Name, f)
			}
		}
	}
	if len(n.Inputs) == 0 {
		return fmt.Errorf("netlist %s: no primary inputs", n.Name)
	}
	if len(n.Outputs) == 0 {
		return fmt.Errorf("netlist %s: no primary outputs", n.Name)
	}
	seenIO := map[int32]bool{}
	for _, i := range n.Inputs {
		if n.Gates[i].Type != Input {
			return fmt.Errorf("netlist %s: %q listed as input but is %s", n.Name, n.Gates[i].Name, n.Gates[i].Type)
		}
		if seenIO[i] {
			return fmt.Errorf("netlist %s: duplicate input %q", n.Name, n.Gates[i].Name)
		}
		seenIO[i] = true
	}
	seenIO = map[int32]bool{}
	for _, o := range n.Outputs {
		if o < 0 || int(o) >= ng {
			return fmt.Errorf("netlist %s: output index %d out of range", n.Name, o)
		}
		if seenIO[o] {
			return fmt.Errorf("netlist %s: duplicate output %q", n.Name, n.Gates[o].Name)
		}
		seenIO[o] = true
	}

	// Topological sort (Kahn), inputs first for determinism.
	indeg := make([]int, ng)
	fan := n.Fanouts()
	for i := range n.Gates {
		indeg[i] = len(n.Gates[i].Fanin)
	}
	order := make([]int32, 0, ng)
	queue := make([]int32, 0, ng)
	for i := range n.Gates {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	sort.Slice(queue, func(a, b int) bool { return queue[a] < queue[b] })
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range fan[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != ng {
		return fmt.Errorf("netlist %s: combinational loop detected", n.Name)
	}
	pos := make([]int32, ng) // old index -> new index
	for newIdx, old := range order {
		pos[old] = int32(newIdx)
	}
	gates := make([]Gate, ng)
	for old, g := range n.Gates {
		ng2 := Gate{Name: g.Name, Type: g.Type, Fanin: make([]int32, len(g.Fanin))}
		for k, f := range g.Fanin {
			ng2.Fanin[k] = pos[f]
		}
		gates[pos[old]] = ng2
	}
	n.Gates = gates
	for k, i := range n.Inputs {
		n.Inputs[k] = pos[i]
	}
	for k, o := range n.Outputs {
		n.Outputs[k] = pos[o]
	}
	sort.Slice(n.Inputs, func(a, b int) bool { return n.Inputs[a] < n.Inputs[b] })
	sort.Slice(n.Outputs, func(a, b int) bool { return n.Outputs[a] < n.Outputs[b] })
	for name := range n.byName {
		n.byName[name] = pos[n.byName[name]]
	}
	return nil
}
