// Package coupling implements the physical coupling-capacitance model of
// Section 3.1. For two parallel neighbouring wires i and j with sizes
// (widths) xᵢ, xⱼ, overlap length lᵢⱼ, centre-to-centre distance dᵢⱼ and
// unit-length fringing capacitance f̂ᵢⱼ:
//
//	cᵢⱼ = f̂ᵢⱼ·lᵢⱼ / (dᵢⱼ − (xᵢ+xⱼ)/2) = c̃ᵢⱼ · (1 − x̄)⁻¹,
//
// where c̃ᵢⱼ = f̂ᵢⱼ·lᵢⱼ/dᵢⱼ and x̄ = (xᵢ+xⱼ)/(2dᵢⱼ) < 1. The package
// provides the exact model, the order-k truncated geometric series that
// keeps the sizing problem posynomial (the paper uses k = 2:
// cᵢⱼ ≈ c̃ᵢⱼ(1 + x̄)), and the Theorem-1 error ratio x̄ᵏ.
package coupling

import (
	"fmt"
	"math"
	"sort"
)

// Pair is one coupled wire pair. I and J are circuit node indices of the
// two wires with I < J, so J plays the paper's dominating-index role
// (J ∈ I(I)) and each physical pair is stored exactly once.
type Pair struct {
	I, J int
	// CTilde is c̃ᵢⱼ = f̂ᵢⱼ·lᵢⱼ/dᵢⱼ in fF (the size-independent base
	// coupling).
	CTilde float64
	// Dist is dᵢⱼ in µm.
	Dist float64
	// Weight scales the pair's contribution to the effective crosstalk;
	// 1 is the paper's purely physical accounting, 1−similarity(i,j)
	// models the Miller (opposite switching, ×2) and anti-Miller (same
	// switching, ×0) effects.
	Weight float64
}

// CHat returns ĉᵢⱼ = c̃ᵢⱼ/(2dᵢⱼ), the coefficient of (xᵢ+xⱼ) in the
// linearized crosstalk constraint.
func (p Pair) CHat() float64 { return p.CTilde / (2 * p.Dist) }

// XBar returns x̄ = (xᵢ+xⱼ)/(2dᵢⱼ).
func (p Pair) XBar(xi, xj float64) float64 { return (xi + xj) / (2 * p.Dist) }

// Exact evaluates the exact coupling capacitance c̃·(1−x̄)⁻¹. It returns
// +Inf when the wires would touch (x̄ ≥ 1).
func (p Pair) Exact(xi, xj float64) float64 {
	x := p.XBar(xi, xj)
	if x >= 1 {
		return math.Inf(1)
	}
	return p.CTilde / (1 - x)
}

// Approx evaluates the order-k truncation c̃·Σ_{m=0}^{k−1} x̄ᵐ. k must be
// at least 1; the paper's working model is k = 2.
func (p Pair) Approx(xi, xj float64, k int) float64 {
	x := p.XBar(xi, xj)
	sum, pow := 0.0, 1.0
	for m := 0; m < k; m++ {
		sum += pow
		pow *= x
	}
	return p.CTilde * sum
}

// ErrorRatio is Theorem 1's bound: (f(x̄) − f̂(x̄))/f(x̄) = x̄ᵏ for the
// order-k truncation of (1−x̄)⁻¹.
func ErrorRatio(xbar float64, k int) float64 { return math.Pow(xbar, float64(k)) }

// Validate reports structural problems with the pair.
func (p Pair) Validate() error {
	if p.I < 0 || p.J <= p.I {
		return fmt.Errorf("coupling: pair (%d,%d) must satisfy 0 ≤ I < J", p.I, p.J)
	}
	if p.CTilde <= 0 {
		return fmt.Errorf("coupling: pair (%d,%d) needs positive c̃, got %g", p.I, p.J, p.CTilde)
	}
	if p.Dist <= 0 {
		return fmt.Errorf("coupling: pair (%d,%d) needs positive distance, got %g", p.I, p.J, p.Dist)
	}
	if p.Weight < 0 {
		return fmt.Errorf("coupling: pair (%d,%d) has negative weight %g", p.I, p.J, p.Weight)
	}
	return nil
}

// Set indexes a collection of coupling pairs by wire for O(1) neighbourhood
// lookup — the paper's N(i) and I(i) sets.
type Set struct {
	pairs     []Pair
	neighbors map[int][]int32 // wire node -> indices into pairs
}

// NewSet validates the pairs, rejects duplicates, and builds the index.
func NewSet(pairs []Pair) (*Set, error) {
	s := &Set{pairs: append([]Pair(nil), pairs...), neighbors: make(map[int][]int32)}
	seen := make(map[[2]int]bool, len(pairs))
	for idx, p := range s.pairs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		key := [2]int{p.I, p.J}
		if seen[key] {
			return nil, fmt.Errorf("coupling: duplicate pair (%d,%d)", p.I, p.J)
		}
		seen[key] = true
		s.neighbors[p.I] = append(s.neighbors[p.I], int32(idx))
		s.neighbors[p.J] = append(s.neighbors[p.J], int32(idx))
	}
	return s, nil
}

// Pairs returns the underlying pairs. The slice must not be modified.
func (s *Set) Pairs() []Pair { return s.pairs }

// Len returns the number of pairs.
func (s *Set) Len() int { return len(s.pairs) }

// Neighbors returns the indices (into Pairs) of every pair touching the
// given wire node — the paper's N(wire). The slice must not be modified.
func (s *Set) Neighbors(wire int) []int32 { return s.neighbors[wire] }

// NeighborWires returns the wire nodes adjacent to the given wire, in
// ascending order.
func (s *Set) NeighborWires(wire int) []int {
	var out []int
	for _, pi := range s.neighbors[wire] {
		p := s.pairs[pi]
		if p.I == wire {
			out = append(out, p.J)
		} else {
			out = append(out, p.I)
		}
	}
	sort.Ints(out)
	return out
}

// TotalExact sums weighted exact coupling over all pairs for the size
// vector x (indexed by circuit node).
func (s *Set) TotalExact(x []float64) float64 {
	total := 0.0
	for _, p := range s.pairs {
		total += p.Weight * p.Exact(x[p.I], x[p.J])
	}
	return total
}

// TotalApprox sums weighted order-k coupling over all pairs.
func (s *Set) TotalApprox(x []float64, k int) float64 {
	total := 0.0
	for _, p := range s.pairs {
		total += p.Weight * p.Approx(x[p.I], x[p.J], k)
	}
	return total
}

// TotalLinear is the paper's noise measure after the constant shift:
// Σ weight·ĉᵢⱼ·(xᵢ+xⱼ). This is the left-hand side of the modified
// crosstalk constraint (≤ X′) and the quantity reported as "Noise" in
// Table 1.
func (s *Set) TotalLinear(x []float64) float64 {
	total := 0.0
	for _, p := range s.pairs {
		total += p.Weight * p.CHat() * (x[p.I] + x[p.J])
	}
	return total
}

// Scaled returns a derived set whose every pair carries c̃ᵢⱼ scaled by f
// (distances and weights unchanged) — the coupling half of a process
// corner or Monte-Carlo capacitance perturbation. Scaling c̃ scales CHat,
// TotalLinear, TotalExact, and ConstantOffset by the same factor, so a
// solver built over the derived set sees a consistently perturbed noise
// model. f must be positive and finite (a zero or NaN scale would produce
// pairs NewSet itself rejects). The neighbour index is structural and
// shared with the receiver.
func (s *Set) Scaled(f float64) (*Set, error) {
	if !(f > 0) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("coupling: scale factor must be positive and finite, got %g", f)
	}
	ns := &Set{pairs: append([]Pair(nil), s.pairs...), neighbors: s.neighbors}
	for i := range ns.pairs {
		ns.pairs[i].CTilde *= f
	}
	return ns, nil
}

// ConstantOffset is Σ weight·c̃ᵢⱼ, the constant the paper subtracts from
// both sides of the crosstalk constraint: X′ = X_B − ConstantOffset.
func (s *Set) ConstantOffset() float64 {
	total := 0.0
	for _, p := range s.pairs {
		total += p.Weight * p.CTilde
	}
	return total
}

// MemoryBytes returns the analytic footprint of the set for the Figure-10
// storage accounting.
func (s *Set) MemoryBytes() int {
	b := len(s.pairs) * (2*8 + 3*8)
	for _, v := range s.neighbors {
		b += 8 + len(v)*4
	}
	return b
}
