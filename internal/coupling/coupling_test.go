package coupling

import (
	"math"
	"testing"
	"testing/quick"
)

func pair() Pair {
	return Pair{I: 1, J: 2, CTilde: 10, Dist: 2, Weight: 1}
}

func TestExactFormula(t *testing.T) {
	p := pair()
	// x̄ = (0.5+0.5)/(2·2) = 0.25 → exact = 10/(1−0.25) = 13.333…
	got := p.Exact(0.5, 0.5)
	want := 10 / 0.75
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Exact = %g, want %g", got, want)
	}
}

func TestExactTouchingWiresInf(t *testing.T) {
	p := pair()
	if !math.IsInf(p.Exact(2, 2), 1) {
		t.Error("touching wires should give +Inf coupling")
	}
}

func TestApproxOrders(t *testing.T) {
	p := pair()
	xi, xj := 0.5, 0.5 // x̄ = 0.25
	if got := p.Approx(xi, xj, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("k=1: %g, want 10", got)
	}
	if got := p.Approx(xi, xj, 2); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("k=2: %g, want 12.5 (paper's model)", got)
	}
	if got := p.Approx(xi, xj, 3); math.Abs(got-13.125) > 1e-12 {
		t.Errorf("k=3: %g, want 13.125", got)
	}
}

// TestErrorRatioTheorem1 is experiment E4: for x̄ = 0.25 the error ratio is
// below 6.3%, 1.6%, 0.4% and 0.1% for k = 2, 3, 4, 5.
func TestErrorRatioTheorem1(t *testing.T) {
	bounds := map[int]float64{2: 0.063, 3: 0.016, 4: 0.004, 5: 0.001}
	for k, bound := range bounds {
		if r := ErrorRatio(0.25, k); r > bound {
			t.Errorf("k=%d: error ratio %g exceeds paper's bound %g", k, r, bound)
		}
	}
}

// TestErrorRatioMatchesDefinition verifies (exact−approx)/exact == x̄ᵏ.
func TestErrorRatioMatchesDefinition(t *testing.T) {
	f := func(ctildeRaw, distRaw, xiRaw, xjRaw float64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		p := Pair{
			I: 0, J: 1,
			CTilde: 0.1 + math.Abs(math.Mod(ctildeRaw, 100)),
			Dist:   0.5 + math.Abs(math.Mod(distRaw, 10)),
			Weight: 1,
		}
		xi := math.Abs(math.Mod(xiRaw, p.Dist*0.9))
		xj := math.Abs(math.Mod(xjRaw, p.Dist*0.9))
		if xi+xj >= 2*p.Dist*0.95 {
			return true
		}
		exact := p.Exact(xi, xj)
		approx := p.Approx(xi, xj, k)
		gotRatio := (exact - approx) / exact
		wantRatio := ErrorRatio(p.XBar(xi, xj), k)
		return math.Abs(gotRatio-wantRatio) <= 1e-9*(1+wantRatio)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestApproxIsLowerBound: truncation always underestimates, and higher k is
// monotonically closer.
func TestApproxMonotoneInK(t *testing.T) {
	p := pair()
	exact := p.Exact(0.8, 0.6)
	prev := 0.0
	for k := 1; k <= 8; k++ {
		a := p.Approx(0.8, 0.6, k)
		if a <= prev {
			t.Fatalf("k=%d: approx %g not increasing (prev %g)", k, a, prev)
		}
		if a > exact {
			t.Fatalf("k=%d: approx %g exceeds exact %g", k, a, exact)
		}
		prev = a
	}
}

func TestCHat(t *testing.T) {
	p := pair()
	if got := p.CHat(); math.Abs(got-2.5) > 1e-12 { // 10/(2·2)
		t.Errorf("CHat = %g, want 2.5", got)
	}
}

func TestPairValidate(t *testing.T) {
	cases := []Pair{
		{I: 2, J: 1, CTilde: 1, Dist: 1, Weight: 1}, // J ≤ I
		{I: 1, J: 1, CTilde: 1, Dist: 1, Weight: 1},
		{I: -1, J: 1, CTilde: 1, Dist: 1, Weight: 1},
		{I: 1, J: 2, CTilde: 0, Dist: 1, Weight: 1},
		{I: 1, J: 2, CTilde: 1, Dist: 0, Weight: 1},
		{I: 1, J: 2, CTilde: 1, Dist: 1, Weight: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate = nil, want error", i, p)
		}
	}
	if err := pair().Validate(); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}
}

func buildSet(t *testing.T) *Set {
	t.Helper()
	s, err := NewSet([]Pair{
		{I: 1, J: 2, CTilde: 10, Dist: 2, Weight: 1},
		{I: 2, J: 3, CTilde: 4, Dist: 1, Weight: 0.5},
		{I: 1, J: 3, CTilde: 2, Dist: 4, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetNeighbors(t *testing.T) {
	s := buildSet(t)
	if got := s.NeighborWires(2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NeighborWires(2) = %v, want [1 3]", got)
	}
	if got := s.NeighborWires(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("NeighborWires(1) = %v, want [2 3]", got)
	}
	if got := s.NeighborWires(99); got != nil {
		t.Errorf("NeighborWires(99) = %v, want nil", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSetRejectsDuplicatesAndInvalid(t *testing.T) {
	if _, err := NewSet([]Pair{
		{I: 1, J: 2, CTilde: 1, Dist: 1, Weight: 1},
		{I: 1, J: 2, CTilde: 2, Dist: 2, Weight: 1},
	}); err == nil {
		t.Error("duplicate pair accepted")
	}
	if _, err := NewSet([]Pair{{I: 1, J: 2, CTilde: -1, Dist: 1, Weight: 1}}); err == nil {
		t.Error("invalid pair accepted")
	}
}

func TestSetTotals(t *testing.T) {
	s := buildSet(t)
	x := []float64{0, 1, 1, 1}
	// Linear: Σ w·ĉ·(xi+xj) = 1·(10/4)·2 + 0.5·(4/2)·2 + 2·(2/8)·2 = 5+2+1 = 8.
	if got := s.TotalLinear(x); math.Abs(got-8) > 1e-12 {
		t.Errorf("TotalLinear = %g, want 8", got)
	}
	// Offset: Σ w·c̃ = 10 + 2 + 4 = 16.
	if got := s.ConstantOffset(); math.Abs(got-16) > 1e-12 {
		t.Errorf("ConstantOffset = %g, want 16", got)
	}
	// Exact ≥ approx(k) ≥ linear-ish; sanity relations.
	exact := s.TotalExact(x)
	ap2 := s.TotalApprox(x, 2)
	if exact < ap2 {
		t.Errorf("exact %g < approx2 %g", exact, ap2)
	}
	// approx(k=2) − offset = linear part.
	if math.Abs((ap2-s.ConstantOffset())-s.TotalLinear(x)) > 1e-12 {
		t.Errorf("approx2 − offset = %g, want TotalLinear %g", ap2-s.ConstantOffset(), s.TotalLinear(x))
	}
}

func TestSetMemoryBytes(t *testing.T) {
	s := buildSet(t)
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func BenchmarkCouplingApprox(b *testing.B) {
	p := pair()
	for _, k := range []int{2, 3, 5} {
		b.Run(map[int]string{2: "k2", 3: "k3", 5: "k5"}[k], func(b *testing.B) {
			sum := 0.0
			for i := 0; i < b.N; i++ {
				sum += p.Approx(0.5, 0.7, k)
			}
			_ = sum
		})
	}
}
