package sweep

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCancelStopsSweep pins the shedding hook: once Cancel reports true,
// no further cells start and Run returns ErrCancelled; a sweep whose
// Cancel never fires is untouched by the hook's presence.
func TestCancelStopsSweep(t *testing.T) {
	for _, cold := range []bool{false, true} {
		name := "warm"
		if cold {
			name = "cold"
		}
		t.Run(name, func(t *testing.T) {
			inst, b := testInstance(t, 12, 10)
			var solved atomic.Int64
			opt := testOptions(b, func(o *Options) {
				o.Cold = cold
				o.OnCell = func(*Cell) { solved.Add(1) }
				o.Cancel = func() bool { return solved.Load() >= 2 }
			})
			if _, err := Run(inst, opt); !errors.Is(err, ErrCancelled) {
				t.Fatalf("cancelled sweep returned %v, want ErrCancelled", err)
			}
			if n := solved.Load(); n >= int64(len(opt.DelayScale)*len(opt.NoiseScale)) {
				t.Errorf("cancellation did not shed work: %d cells solved", n)
			}

			ref := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) { o.Cold = cold })))
			hooked := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) {
				o.Cold = cold
				o.Cancel = func() bool { return false }
			})))
			if !reflect.DeepEqual(ref, hooked) {
				t.Error("an idle Cancel hook changed the solved grid")
			}
		})
	}
}

// TestOnCellStreamsEveryCellOnce pins the row-streaming contract: the
// callback fires exactly once per cell with the populated result, within a
// row in column order, and installing it changes nothing about the solved
// grid.
func TestOnCellStreamsEveryCellOnce(t *testing.T) {
	for _, cold := range []bool{false, true} {
		name := "warm"
		if cold {
			name = "cold"
		}
		t.Run(name, func(t *testing.T) {
			inst, b := testInstance(t, 12, 10)
			ref := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) {
				o.Cold = cold
			})))

			var mu sync.Mutex
			seen := map[[2]int]int{}
			lastCol := map[int]int{}
			orderOK := true
			got := runSweep(t, inst, testOptions(b, func(o *Options) {
				o.Cold = cold
				o.SweepWorkers = 4
				o.OnCell = func(c *Cell) {
					mu.Lock()
					defer mu.Unlock()
					seen[[2]int{c.Row, c.Col}]++
					if c.Result == nil {
						t.Error("callback saw a cell without a result")
					}
					if prev, ok := lastCol[c.Row]; ok && c.Col <= prev {
						orderOK = false
					}
					lastCol[c.Row] = c.Col
				}
			}))
			if len(seen) != len(ref.Cells) {
				t.Fatalf("callback fired for %d distinct cells, want %d", len(seen), len(ref.Cells))
			}
			for k, n := range seen {
				if n != 1 {
					t.Fatalf("cell %v streamed %d times", k, n)
				}
			}
			if !cold && !orderOK {
				t.Error("cells within a row did not stream in column order")
			}
			if !reflect.DeepEqual(ref, stripTiming(got)) {
				t.Error("installing OnCell changed the solved grid")
			}
		})
	}
}
