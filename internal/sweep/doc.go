// Package sweep is the bounds-grid sweep engine: one shared
// bench.Instance solved across a grid of delay/noise bounds, producing
// the paper's family of noise/delay/power trade-off points (Table 1,
// Figure 10) as a single workload.
//
// The engine amortizes the expensive front end — netlist generation,
// logic simulation, elaboration, wire ordering, coupling extraction —
// across every cell: the instance is built once and each cell solves on a
// lightweight evaluator replica over the shared graph and coupling set.
// Cells are warm-started on both halves of the problem: each one seeds
// the solver with the final sizes of its nearest already-solved neighbour
// through core.Solver.RunFromDual (rc.SetSizes under the hood), so the
// PR-3 dirty-cone/active-set engine sees a neighbouring bounds cell as an
// ECO-sized perturbation of a near-solution instead of a cold solve — and,
// unless PrimalOnly, with the neighbour's final Lagrange multipliers, so
// the subgradient ascent starts beside the dual optimum and certifies
// convergence in a fraction of the cold iteration count.
//
// The warm-start sources form a static wavefront — cell (i,0) seeds from
// (i−1,0) and cell (i,j) from (i,j−1) — so the seeding chain of every
// cell is fixed in advance: results never depend on completion order or
// on how many rows solve concurrently, and the whole grid is
// bit-reproducible at every SweepWorkers and per-cell Workers width (the
// golden sweep fixture enforces this). Column 0 solves first as a
// sequential spine; the rows then fan out onto the PR-1 worker pool via
// internal/fanout. Long-running callers can observe cells as they finish
// through Options.OnCell (the sizing service's row streaming) without
// affecting a single solved bit.
package sweep
