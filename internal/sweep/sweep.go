package sweep

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fanout"
	"repro/internal/rc"
)

// Options configures one bounds-grid sweep. The zero value sweeps the
// single self-calibrated cell at the instance's derived bounds.
type Options struct {
	// DelayScale and NoiseScale are the grid axes. Cell (i, j) solves with
	// A0 = DelayScale[i]·base.A0 and with the variable part of the noise
	// bound (X_B minus the constant coupling offset, the part sizing can
	// actually trade) scaled by NoiseScale[j]. Factors must be positive
	// and finite; an empty axis defaults to {1}.
	DelayScale, NoiseScale []float64
	// Bounds overrides the base bounds (default bench.DeriveBounds on the
	// instance).
	Bounds *bench.Bounds
	// MaxIterations caps the OGWS outer loop per cell (0 = solver
	// default); Epsilon is the duality-gap / feasibility precision
	// (0 = the paper's 1%).
	MaxIterations int
	Epsilon       float64
	// Workers is the per-cell solver width (0 = 1, as in core.SolveBatch:
	// the sweep level owns the cores by default). SweepWorkers bounds how
	// many rows solve concurrently (0 = all cores).
	Workers      int
	SweepWorkers int
	// Cold disables warm-starting: every cell seeds from the instance's
	// initial sizes and solves independently (flat fan-out over all
	// cells). The cold grid is the benchmark baseline the warm engine is
	// measured against.
	Cold bool
	// PrimalOnly restricts warm seeding to the sizes: the dual state (the
	// Lagrange multipliers) restarts from the solver's A1 seed in every
	// cell. The default seeds both halves — the neighbour's final
	// multipliers start each cell's ascent beside the dual optimum, which
	// is where the sweep's iteration-count savings come from (sizes alone
	// cannot shortcut the ascent).
	PrimalOnly bool
	// ColdLRS selects the paper-faithful S1 reset inside LRS
	// (core.Options.WarmStart = false). The default keeps sizes across
	// sweeps — the regime where warm seeding and the incremental engine
	// pay off. With ColdLRS (and PrimalOnly) the OGWS trajectory is
	// independent of the seed, so warm and cold sweeps are bit-identical
	// (the warm-vs-cold oracle test pins exactly this).
	ColdLRS bool
	// FullPasses throws the PR-3 escape hatch (core.Options.Incremental =
	// false): every LRS sweep pays the full passes. The warm sweep with
	// and without it is bit-identical at ActiveSetTol = 0.
	FullPasses bool
	// Lockstep batches the independent cells of each wavefront through one
	// shared rc.Batch (core.NewLockstep) instead of per-cell replica
	// solves: a Cold sweep advances every cell of the grid in lockstep,
	// and a warm sweep advances the row tails east of the spine in
	// lockstep (one replica per row; the spine itself is a sequential
	// seeding chain and stays cell-by-cell). Every evaluator pass then
	// runs as one batched levelized round across the surviving cells —
	// one barrier per level total — and converged cells retire without
	// perturbing the others. Purely a scheduling change: each cell's
	// Result is bitwise equal to its solo solve, so grids — including the
	// golden fixtures — are identical with the knob on or off. Under
	// Lockstep the batched rounds carry the parallelism (width Workers);
	// SweepWorkers is not consulted for the lockstepped cells.
	Lockstep bool
	// ActiveSetTol and CutoverHysteresis pass through to core.Options.
	ActiveSetTol      float64
	CutoverHysteresis int
	// OnCell, when non-nil, is called once per cell immediately after that
	// cell's solve completes, with the fully populated cell — the
	// row-streaming hook long-running callers (the sizing service) use to
	// emit results as they arrive instead of waiting for the whole grid.
	// In a warm sweep, calls within one row arrive in ascending column
	// order (rows solve concurrently and interleave freely); a Cold sweep
	// fans out individual cells, so its calls arrive in no particular
	// order. The callback must be safe for concurrent use and must not
	// mutate the cell or retain its slices past the call (read-only
	// access to Result is fine: nothing else writes it). Streaming never
	// affects the solved values — the grid is the same bit-identical
	// row-major Result with or without a callback.
	OnCell func(*Cell)
	// OnProgress, when non-nil, is called once per solver iteration of
	// every cell with the cell's grid position and the iteration's
	// core.IterProgress — the live-streaming hook the sizing service's
	// /watch endpoint feeds from. Like OnCell it must be safe for
	// concurrent use (rows solve concurrently) and never affects the
	// solved values: the grid is bit-identical with or without it.
	OnProgress func(row, col int, p core.IterProgress)
	// Cancel, when non-nil, is polled before each cell's solve and, via
	// core.Options.Cancel, at every iteration boundary inside a cell;
	// once it returns true no further cells start, the in-flight cell
	// stops at its next iteration, and Run returns ErrCancelled.
	// Long-running callers use this to shed abandoned work — e.g. the
	// sizing service polls the request context. A sweep whose Cancel
	// never fires solves the exact same grid as one with no hook, so the
	// solved values are unaffected.
	Cancel func() bool
}

// ErrCancelled is returned by Run when Options.Cancel stopped the sweep
// before every cell solved.
var ErrCancelled = errors.New("sweep: cancelled")

// cancelled polls the Cancel hook.
func (o Options) cancelled() bool { return o.Cancel != nil && o.Cancel() }

// Cell is one solved grid point.
type Cell struct {
	// Row/Col index the cell in the grid; DelayScale/NoiseScale are its
	// axis factors and Bounds the actual solver bounds they produced.
	Row, Col               int
	DelayScale, NoiseScale float64
	Bounds                 bench.Bounds
	// SeedRow/SeedCol identify the already-solved neighbour whose sizes
	// seeded this cell; both are −1 when the cell was seeded from the
	// instance's initial sizes (cold sweeps and the grid origin).
	SeedRow, SeedCol int
	// Result is the full solver outcome at this cell's bounds.
	Result *core.Result
	// SolveSec is the wall-clock of this cell's solve (excluded from the
	// golden fixtures — timing is not deterministic).
	SolveSec float64
}

// Result is one circuit's solved grid.
type Result struct {
	Circuit                string
	Rows, Cols             int
	DelayScale, NoiseScale []float64
	// Cells is row-major: Cells[i*Cols+j] is grid point (i, j), an
	// ordering independent of solve scheduling.
	Cells []Cell
	// Frontier lists the indices (ascending) of the Pareto-minimal cells
	// in (delay, noise, power); see Frontier.
	Frontier []int
}

// At returns the cell at grid point (i, j).
func (r *Result) At(i, j int) *Cell { return &r.Cells[i*r.Cols+j] }

func (o *Options) fill() {
	if len(o.DelayScale) == 0 {
		o.DelayScale = []float64{1}
	}
	if len(o.NoiseScale) == 0 {
		o.NoiseScale = []float64{1}
	}
	// Normalize the widths the way core.Options.validate does: negative
	// means "all cores", explicitly resolved here so neither width falls
	// through unvalidated (0 keeps each level's own default — Workers
	// defaults to 1 serial solver, SweepWorkers to all cores in
	// fanout.Each).
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.SweepWorkers < 0 {
		o.SweepWorkers = runtime.GOMAXPROCS(0)
	}
}

// solverOptions builds one cell's core options from the sweep knobs.
func (o Options) solverOptions(b bench.Bounds) core.Options {
	sopt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	if o.MaxIterations > 0 {
		sopt.MaxIterations = o.MaxIterations
	}
	if o.Epsilon > 0 {
		sopt.Epsilon = o.Epsilon
	}
	sopt.WarmStart = !o.ColdLRS
	sopt.Incremental = !o.FullPasses
	sopt.ActiveSetTol = o.ActiveSetTol
	sopt.CutoverHysteresis = o.CutoverHysteresis
	sopt.Workers = o.Workers
	return sopt
}

// cellBounds scales the base bounds for one grid point. The noise factor
// scales only the variable part of X_B — the constant coupling offset is
// fixed by the layout, so scaling past it would just manufacture an
// infeasible bound.
func cellBounds(base bench.Bounds, off, fd, fn float64) (bench.Bounds, error) {
	if fd <= 0 || math.IsNaN(fd) || math.IsInf(fd, 0) {
		return base, fmt.Errorf("sweep: delay scale factor must be positive and finite, got %g", fd)
	}
	if fn <= 0 || math.IsNaN(fn) || math.IsInf(fn, 0) {
		return base, fmt.Errorf("sweep: noise scale factor must be positive and finite, got %g", fn)
	}
	b := base
	b.A0 = fd * base.A0
	if base.NoiseBound > 0 {
		b.NoiseBound = off + fn*(base.NoiseBound-off)
	}
	return b, nil
}

// SolveCell runs one cell: a fresh solver over the given evaluator at
// the cell's bounds, seeded with the given sizes and (unless PrimalOnly)
// the given dual state. It returns the cell's own final dual state for
// the next cell in the seeding chain (nil under PrimalOnly). Exported so
// farm workers (internal/farm) execute leased sweep cells through the
// exact code path the single-process engine uses — the distributed
// determinism contract holds by construction, not by parallel
// implementation. Only the solver knobs of o are read (MaxIterations,
// Epsilon, Workers, PrimalOnly, ColdLRS, FullPasses, ActiveSetTol,
// CutoverHysteresis) plus OnProgress, which receives the given row/col
// with each iteration; the grid axes are irrelevant here.
func (o Options) SolveCell(ev *rc.Evaluator, row, col int, b bench.Bounds, seed []float64, dual *core.DualState) (*core.Result, *core.DualState, float64, error) {
	return o.solveCellWith(func(sopt core.Options) (*core.Solver, error) {
		return core.NewSolver(ev, sopt)
	}, row, col, b, seed, dual)
}

// SolveCellLockstep is SolveCell on a lockstep replica: the same solver
// options, seeding, and dual handling, but the solver advances through
// the gate's batched rounds (core.NewLockstepSolver) instead of solo
// passes — bit-identical to SolveCell on a fresh replica by the lockstep
// contract. Exported for the same reason as SolveCell: farm workers
// execute lockstep sweep leases through the exact code path the
// single-process engine uses.
func (o Options) SolveCellLockstep(ls *core.Lockstep, rep int, row, col int, b bench.Bounds, seed []float64, dual *core.DualState) (*core.Result, *core.DualState, float64, error) {
	return o.solveCellWith(func(sopt core.Options) (*core.Solver, error) {
		return core.NewLockstepSolver(ls, rep, sopt)
	}, row, col, b, seed, dual)
}

// solveCellWith is the shared cell body: build the cell's solver through
// mk, seed it, run, and hand back the result with the next dual seed.
func (o Options) solveCellWith(mk func(core.Options) (*core.Solver, error), row, col int, b bench.Bounds, seed []float64, dual *core.DualState) (*core.Result, *core.DualState, float64, error) {
	sopt := o.solverOptions(b)
	if o.OnProgress != nil {
		sopt.OnIteration = func(p core.IterProgress) { o.OnProgress(row, col, p) }
	}
	// Thread the sweep's Cancel into the solver's iteration boundary, so a
	// cancelled sweep also stops mid-cell instead of waiting out the cell.
	sopt.Cancel = o.Cancel
	sol, err := mk(sopt)
	if err != nil {
		return nil, nil, 0, err
	}
	defer sol.Close()
	if o.PrimalOnly {
		dual = nil
	}
	start := time.Now()
	res, err := sol.RunFromDual(seed, dual)
	if err != nil {
		if errors.Is(err, core.ErrCancelled) {
			err = ErrCancelled
		}
		return nil, nil, 0, err
	}
	sec := time.Since(start).Seconds()
	if o.PrimalOnly {
		return res, nil, sec, nil
	}
	return res, sol.DualState(), sec, nil
}

// plan builds the unsolved grid skeleton for filled options: every cell
// carries its axis factors and resolved bounds, seed metadata initialized
// to the unseeded (-1, -1) marker. The second return is the shared seed
// for unseeded cells: the instance's initial sizes (what
// bench.RunInstance solves from).
func plan(inst *bench.Instance, opt Options) (*Result, []float64, error) {
	base := bench.DeriveBounds(inst)
	if opt.Bounds != nil {
		base = *opt.Bounds
	}
	off := inst.Coupling.ConstantOffset()
	rows, cols := len(opt.DelayScale), len(opt.NoiseScale)
	res := &Result{
		Circuit:    inst.Spec.Name,
		Rows:       rows,
		Cols:       cols,
		DelayScale: append([]float64(nil), opt.DelayScale...),
		NoiseScale: append([]float64(nil), opt.NoiseScale...),
		Cells:      make([]Cell, rows*cols),
	}
	for i, fd := range opt.DelayScale {
		for j, fn := range opt.NoiseScale {
			b, err := cellBounds(base, off, fd, fn)
			if err != nil {
				return nil, nil, err
			}
			c := res.At(i, j)
			c.Row, c.Col = i, j
			c.DelayScale, c.NoiseScale = fd, fn
			c.Bounds = b
			c.SeedRow, c.SeedCol = -1, -1
		}
	}
	return res, append([]float64(nil), inst.Eval.X...), nil
}

// Plan is the exported planning half of Run: it validates the axes and
// returns the unsolved grid skeleton (per-cell bounds, axis factors,
// unseeded markers) plus the shared initial-size seed, without solving
// anything. The farm coordinator plans a distributed sweep with exactly
// this skeleton, leases the cells out, and fills the same row-major slots
// the local engine would — so the reassembled grid is the identical
// Result structure either way.
func Plan(inst *bench.Instance, opt Options) (*Result, []float64, error) {
	opt.fill()
	return plan(inst, opt)
}

// Run sweeps the bounds grid over one prebuilt instance. The instance is
// shared read-only — every cell solves on its own evaluator replica, so
// the instance's evaluator state (the Init sizes) is left untouched and
// one instance can back any number of sweeps. Results come back in
// row-major grid order with the Pareto frontier attached; on any cell
// error the lowest-index error is returned after in-flight rows finish.
func Run(inst *bench.Instance, opt Options) (*Result, error) {
	opt.fill()
	res, initX, err := plan(inst, opt)
	if err != nil {
		return nil, err
	}
	g, cs := inst.Eval.Graph(), inst.Eval.Couplings()
	rows, cols := res.Rows, res.Cols

	if opt.Cold {
		errs := make([]error, len(res.Cells))
		if opt.Lockstep && len(res.Cells) > 1 {
			// Every cell is independent, so the whole grid advances in
			// lockstep: one replica per cell, one batched round per solver
			// iteration across all still-running cells. Converged cells
			// Leave; the last survivors finish on ever-smaller rounds.
			ls, lerr := core.NewLockstep(g, cs, len(res.Cells), opt.Workers)
			if lerr != nil {
				return nil, lerr
			}
			var wg sync.WaitGroup
			for k := range res.Cells {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					defer ls.Leave()
					if opt.cancelled() {
						errs[k] = ErrCancelled
						return
					}
					c := &res.Cells[k]
					c.Result, _, c.SolveSec, errs[k] = opt.SolveCellLockstep(ls, k, c.Row, c.Col, c.Bounds, initX, nil)
					if opt.OnCell != nil && errs[k] == nil {
						opt.OnCell(c)
					}
				}(k)
			}
			wg.Wait()
			ls.Close()
		} else {
			fanout.Each(len(res.Cells), opt.SweepWorkers, func(k int) {
				if opt.cancelled() {
					errs[k] = ErrCancelled
					return
				}
				ev, err := rc.NewEvaluator(g, cs)
				if err != nil {
					errs[k] = err
					return
				}
				c := &res.Cells[k]
				c.Result, _, c.SolveSec, errs[k] = opt.SolveCell(ev, c.Row, c.Col, c.Bounds, initX, nil)
				if opt.OnCell != nil && errs[k] == nil {
					opt.OnCell(c)
				}
			})
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		res.Frontier = Frontier(res.Cells)
		return res, nil
	}

	// Warm wavefront. Spine first: column 0 cell by cell on one replica,
	// each seeded (sizes and dual state) from the cell above it.
	spine, err := rc.NewEvaluator(g, cs)
	if err != nil {
		return nil, err
	}
	rowDual := make([]*core.DualState, rows)
	seed := initX
	var dual *core.DualState
	for i := 0; i < rows; i++ {
		if opt.cancelled() {
			return nil, ErrCancelled
		}
		c := res.At(i, 0)
		if i > 0 {
			c.SeedRow, c.SeedCol = i-1, 0
		}
		if c.Result, dual, c.SolveSec, err = opt.SolveCell(spine, c.Row, c.Col, c.Bounds, seed, dual); err != nil {
			return nil, err
		}
		if opt.OnCell != nil {
			opt.OnCell(c)
		}
		seed = c.Result.X
		rowDual[i] = dual
	}
	// Rows fan out: each row walks east on its own replica, seeding every
	// cell from its western neighbour.
	if cols > 1 {
		errs := make([]error, rows)
		// walk drives row i east on one solve function, threading the seed
		// chain — shared by the replica-per-row and lockstep schedules.
		walk := func(i int, cell func(c *Cell, seed []float64, d *core.DualState) (*core.Result, *core.DualState, float64, error)) {
			rowSeed, rowD := res.At(i, 0).Result.X, rowDual[i]
			for j := 1; j < cols; j++ {
				if opt.cancelled() {
					errs[i] = ErrCancelled
					return
				}
				c := res.At(i, j)
				c.SeedRow, c.SeedCol = i, j-1
				if c.Result, rowD, c.SolveSec, errs[i] = cell(c, rowSeed, rowD); errs[i] != nil {
					return
				}
				if opt.OnCell != nil {
					opt.OnCell(c)
				}
				rowSeed = c.Result.X
			}
		}
		if opt.Lockstep && rows > 1 {
			// The row tails are mutually independent (each chained only
			// within its row), so they lockstep with one replica per row;
			// the replica persists across the row's cells exactly like the
			// per-row evaluator above. A row that finishes its last column
			// Leaves while longer-running rows keep lockstepping.
			ls, lerr := core.NewLockstep(g, cs, rows, opt.Workers)
			if lerr != nil {
				return nil, lerr
			}
			var wg sync.WaitGroup
			for i := 0; i < rows; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer ls.Leave()
					walk(i, func(c *Cell, seed []float64, d *core.DualState) (*core.Result, *core.DualState, float64, error) {
						return opt.SolveCellLockstep(ls, i, c.Row, c.Col, c.Bounds, seed, d)
					})
				}(i)
			}
			wg.Wait()
			ls.Close()
		} else {
			fanout.Each(rows, opt.SweepWorkers, func(i int) {
				ev, err := rc.NewEvaluator(g, cs)
				if err != nil {
					errs[i] = err
					return
				}
				walk(i, func(c *Cell, seed []float64, d *core.DualState) (*core.Result, *core.DualState, float64, error) {
					return opt.SolveCell(ev, c.Row, c.Col, c.Bounds, seed, d)
				})
			})
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	res.Frontier = Frontier(res.Cells)
	return res, nil
}

// RunSpec builds the instance for one circuit spec — the expensive front
// end, paid once — and sweeps the grid over it.
func RunSpec(spec bench.Spec, pipe bench.PipelineOptions, opt Options) (*Result, error) {
	inst, err := bench.BuildInstance(spec, pipe)
	if err != nil {
		return nil, err
	}
	return Run(inst, opt)
}
