package sweep

import (
	"reflect"
	"runtime"
	"testing"
)

// TestSweepLockstepBitIdentical is the sweep-level lockstep oracle: the
// same grid solved with and without Lockstep must be bit-identical —
// warm (row tails lockstep, spine sequential), cold (whole grid
// locksteps), and at parallel batched-round widths. Together with
// TestSweepGolden (which pins the Lockstep=false grid to the committed
// fixture) this proves the golden grid passes unchanged with lockstep on.
func TestSweepLockstepBitIdentical(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"warm", nil},
		{"cold", func(o *Options) { o.Cold = true }},
		{"warm/full-passes", func(o *Options) { o.FullPasses = true }},
	} {
		ref := stripTiming(runSweep(t, inst, testOptions(b, tc.mutate)))
		for _, workers := range []int{0, 3} {
			res := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) {
				if tc.mutate != nil {
					tc.mutate(o)
				}
				o.Lockstep = true
				o.Workers = workers
			})))
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("%s workers=%d: lockstep sweep diverged from the solo-schedule sweep", tc.name, workers)
			}
		}
	}
}

// TestSweepLockstepSingleCell: a one-cell grid has nothing to batch; the
// lockstep knob must degrade to the plain path, not deadlock or error.
func TestSweepLockstepSingleCell(t *testing.T) {
	inst, b := testInstance(t, 8, 6)
	ref := stripTiming(runSweep(t, inst, Options{Bounds: &b, MaxIterations: 8}))
	res := stripTiming(runSweep(t, inst, Options{Bounds: &b, MaxIterations: 8, Lockstep: true}))
	if !reflect.DeepEqual(ref, res) {
		t.Errorf("single-cell lockstep sweep diverged")
	}
}

// TestFillNormalizesWorkers pins the width normalization fill applies —
// the same convention as core.Options.validate: negative selects all
// cores, zero keeps each level's own default (Workers: one serial
// solver; SweepWorkers: resolved later by fanout.Each).
func TestFillNormalizesWorkers(t *testing.T) {
	all := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name                     string
		workers, sweepWorkers    int
		wantWorkers, wantSweepWk int
	}{
		{"zero-defaults", 0, 0, 1, 0},
		{"explicit", 3, 5, 3, 5},
		{"negative-workers", -1, 2, all, 2},
		{"negative-sweep-workers", 2, -4, 2, all},
		{"both-negative", -7, -1, all, all},
	} {
		o := Options{Workers: tc.workers, SweepWorkers: tc.sweepWorkers}
		o.fill()
		if o.Workers != tc.wantWorkers || o.SweepWorkers != tc.wantSweepWk {
			t.Errorf("%s: fill(%d, %d) = (%d, %d), want (%d, %d)",
				tc.name, tc.workers, tc.sweepWorkers,
				o.Workers, o.SweepWorkers, tc.wantWorkers, tc.wantSweepWk)
		}
	}
}
