package sweep

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden sweep fixture under testdata/")

// goldenArch matches the root golden suite: the snapshot comparison is
// bitwise only on the architecture that generated the fixture (FMA), the
// cross-width comparisons are bitwise everywhere.
const goldenArch = "amd64"

// testInstance wraps a deterministic coupled mesh in a bench.Instance —
// the sweep engine touches only the evaluator, the coupling set, and the
// spec name, so the heavy pipeline fields can stay empty as long as the
// base bounds are passed explicitly. bench.GridInstance is the exact
// construction this test suite's golden fixture was generated from; the
// farm smoke re-materializes the same mesh in worker processes by key.
func testInstance(t testing.TB, width, layers int) (*bench.Instance, bench.Bounds) {
	t.Helper()
	inst, b, err := bench.GridInstance(width, layers, true)
	if err != nil {
		t.Fatal(err)
	}
	return inst, b
}

func testOptions(b bench.Bounds, mutate func(*Options)) Options {
	opt := Options{
		DelayScale:    []float64{1, 1.06, 1.12},
		NoiseScale:    []float64{0.8, 1, 1.3},
		Bounds:        &b,
		MaxIterations: 12,
	}
	if mutate != nil {
		mutate(&opt)
	}
	return opt
}

// stripTiming zeroes the wall-clock fields, the only nondeterministic
// part of a sweep result.
func stripTiming(r *Result) *Result {
	for i := range r.Cells {
		r.Cells[i].SolveSec = 0
	}
	return r
}

// cellResults projects a sweep onto its numerical payload — the per-cell
// solver results and the frontier — dropping the seeding metadata that
// legitimately differs between warm and cold schedules.
func cellResults(r *Result) ([]*core.Result, []int) {
	rs := make([]*core.Result, len(r.Cells))
	for i := range r.Cells {
		rs[i] = r.Cells[i].Result
	}
	return rs, r.Frontier
}

func runSweep(t *testing.T, inst *bench.Instance, opt Options) *Result {
	t.Helper()
	res, err := Run(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSweepGolden pins the default warm-started sweep of the mesh fixture
// to a committed snapshot, bit for bit, and demands the identical grid at
// every SweepWorkers and per-cell Workers width — the determinism contract
// of the wavefront schedule (static seeding chains, indexed writes).
func TestSweepGolden(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	ref := stripTiming(runSweep(t, inst, testOptions(b, nil)))

	path := filepath.Join("testdata", "golden_grid.json")
	if *update {
		data, err := json.MarshalIndent(ref, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/sweep -run TestSweepGolden -update` to create)", err)
	}
	want := new(Result)
	if err := json.Unmarshal(data, want); err != nil {
		t.Fatal(err)
	}
	if runtime.GOARCH == goldenArch && !reflect.DeepEqual(want, ref) {
		t.Errorf("sweep diverged from golden snapshot %s", path)
	}

	for _, sw := range []int{2, 8} {
		res := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) { o.SweepWorkers = sw })))
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("SweepWorkers=%d diverged from SweepWorkers=1", sw)
		}
	}
	res := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) {
		o.Workers = 4
		o.SweepWorkers = 2
	})))
	if !reflect.DeepEqual(ref, res) {
		t.Errorf("per-cell Workers=4 diverged from Workers=1")
	}
}

// TestSweepWarmMatchesFullOracle is the PR-3 oracle carried through
// RunFrom: at ActiveSetTol = 0 the warm-started sweep with the
// dirty-cone/active-set engine must be bit-identical to the same sweep
// with the Incremental escape hatch thrown.
func TestSweepWarmMatchesFullOracle(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	inc := runSweep(t, inst, testOptions(b, nil))
	full := runSweep(t, inst, testOptions(b, func(o *Options) { o.FullPasses = true }))
	incR, incF := cellResults(inc)
	fullR, fullF := cellResults(full)
	if !reflect.DeepEqual(incR, fullR) || !reflect.DeepEqual(incF, fullF) {
		t.Errorf("warm incremental sweep diverged from its full-pass oracle")
	}
}

// TestSweepWarmColdBitIdentical: with the paper-faithful S1 reset
// (ColdLRS) and dual restarts (PrimalOnly) the OGWS trajectory is
// independent of the seed, so the warm wavefront and the cold flat
// fan-out must produce bit-identical cells — the seeding path can
// rearrange work, never results.
func TestSweepWarmColdBitIdentical(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	warm := runSweep(t, inst, testOptions(b, func(o *Options) { o.ColdLRS = true; o.PrimalOnly = true }))
	cold := runSweep(t, inst, testOptions(b, func(o *Options) { o.ColdLRS = true; o.Cold = true }))
	warmR, warmF := cellResults(warm)
	coldR, coldF := cellResults(cold)
	if !reflect.DeepEqual(warmR, coldR) || !reflect.DeepEqual(warmF, coldF) {
		t.Errorf("S1-reset warm sweep diverged from the cold sweep")
	}
	// The seeding metadata must reflect the schedule that ran.
	if c := warm.At(1, 1); c.SeedRow != 1 || c.SeedCol != 0 {
		t.Errorf("warm cell (1,1) seeded from (%d,%d), want (1,0)", c.SeedRow, c.SeedCol)
	}
	if c := cold.At(1, 1); c.SeedRow != -1 || c.SeedCol != -1 {
		t.Errorf("cold cell (1,1) records seed (%d,%d), want (-1,-1)", c.SeedRow, c.SeedCol)
	}
}

// TestSweepWarmDoesLessWork: on the default (LRS-warm) path, seeding each
// cell from its solved neighbour must cost fewer total LRS sweeps than
// solving every cell from the uniform initial sizes — the premise the
// whole engine is built on.
func TestSweepWarmDoesLessWork(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	warm := runSweep(t, inst, testOptions(b, nil))
	cold := runSweep(t, inst, testOptions(b, func(o *Options) { o.Cold = true }))
	sweeps := func(r *Result) (total int) {
		for i := range r.Cells {
			total += r.Cells[i].Result.LRSSweepsTotal
		}
		return
	}
	ws, cs := sweeps(warm), sweeps(cold)
	if ws >= cs {
		t.Errorf("warm-started sweep used %d LRS sweeps, cold %d — warm starting bought nothing", ws, cs)
	}
}

// TestSweepLeavesInstanceUntouched: every cell solves on a replica; the
// shared instance's evaluator must keep its initial sizes, so one
// instance can back many sweeps.
func TestSweepLeavesInstanceUntouched(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	before := append([]float64(nil), inst.Eval.X...)
	runSweep(t, inst, testOptions(b, nil))
	if !reflect.DeepEqual(before, inst.Eval.X) {
		t.Error("sweep mutated the shared instance's evaluator sizes")
	}
}

// TestSweepDefaultsToSingleCell: the zero-value options solve exactly the
// base bounds.
func TestSweepDefaultsToSingleCell(t *testing.T) {
	inst, b := testInstance(t, 8, 6)
	res := runSweep(t, inst, Options{Bounds: &b, MaxIterations: 8})
	if res.Rows != 1 || res.Cols != 1 || len(res.Cells) != 1 {
		t.Fatalf("zero-value axes produced a %dx%d grid", res.Rows, res.Cols)
	}
	c := res.At(0, 0)
	if c.Bounds != b {
		t.Errorf("single cell solved bounds %+v, want base %+v", c.Bounds, b)
	}
	if len(res.Frontier) != 1 || res.Frontier[0] != 0 {
		t.Errorf("single-cell frontier = %v", res.Frontier)
	}
}

// TestSweepRejectsBadFactors: zero, negative, NaN, and Inf axis factors
// fail before any solve.
func TestSweepRejectsBadFactors(t *testing.T) {
	inst, b := testInstance(t, 8, 6)
	for _, bad := range [][]float64{{0}, {-1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := Run(inst, testOptions(b, func(o *Options) { o.DelayScale = bad })); err == nil {
			t.Errorf("delay factor %v accepted", bad)
		}
		if _, err := Run(inst, testOptions(b, func(o *Options) { o.NoiseScale = bad })); err == nil {
			t.Errorf("noise factor %v accepted", bad)
		}
	}
}

// TestSweepPropagatesSolverErrors: an infeasible cell bound (below the
// constant coupling offset) must surface from both schedules.
func TestSweepPropagatesSolverErrors(t *testing.T) {
	inst, b := testInstance(t, 8, 6)
	bad := b
	bad.NoiseBound = inst.Coupling.ConstantOffset() * 0.5
	for _, cold := range []bool{false, true} {
		_, err := Run(inst, testOptions(bad, func(o *Options) {
			o.Cold = cold
			o.NoiseScale = []float64{1, 1}
		}))
		if err == nil {
			t.Errorf("cold=%v: infeasible noise bound did not error", cold)
		}
	}
}

// TestFrontierProperty: on random point clouds, no frontier member is
// dominated and every excluded point is dominated by someone.
func TestFrontierProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		cells := make([]Cell, n)
		pts := make([]point, n)
		for i := range cells {
			// Coarse coordinates force ties and duplicates.
			p := point{
				float64(rng.Intn(4)),
				float64(rng.Intn(4)),
				float64(rng.Intn(4)),
			}
			pts[i] = p
			cells[i].Result = &core.Result{DelayPs: p[0], NoiseLinFF: p[1], PowerCapFF: p[2]}
		}
		front := Frontier(cells)
		onFront := make([]bool, n)
		for _, i := range front {
			onFront[i] = true
		}
		for i := 0; i < n; i++ {
			dominated := false
			for j := 0; j < n; j++ {
				if j != i && dominates(pts[j], pts[i]) {
					dominated = true
					break
				}
			}
			if onFront[i] && dominated {
				t.Fatalf("trial %d: frontier point %d is dominated", trial, i)
			}
			if !onFront[i] && !dominated {
				t.Fatalf("trial %d: undominated point %d excluded from the frontier", trial, i)
			}
		}
	}
}

// TestFrontierSkipsMissingResults: cells without a Result are neither
// frontier members nor dominators.
func TestFrontierSkipsMissingResults(t *testing.T) {
	cells := []Cell{
		{Result: &core.Result{DelayPs: 2, NoiseLinFF: 2, PowerCapFF: 2}},
		{}, // unsolved
		{Result: &core.Result{DelayPs: 1, NoiseLinFF: 1, PowerCapFF: 1}},
	}
	front := Frontier(cells)
	if !reflect.DeepEqual(front, []int{2}) {
		t.Errorf("frontier = %v, want [2]", front)
	}
}

// TestRunSpec exercises the instance-building front door on a real
// Table-1 circuit with a tiny grid.
func TestRunSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec, _ := bench.SpecByName("c432")
	res, err := RunSpec(spec, bench.PipelineOptions{}, Options{
		NoiseScale:    []float64{0.9, 1.2},
		MaxIterations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "c432" || len(res.Cells) != 2 {
		t.Fatalf("unexpected sweep shape: %s %d cells", res.Circuit, len(res.Cells))
	}
	for i := range res.Cells {
		if res.Cells[i].Result == nil {
			t.Fatalf("cell %d unsolved", i)
		}
	}
	if len(res.Frontier) == 0 {
		t.Error("empty frontier")
	}
}

// TestSweepOnProgressStreams pins the per-iteration progress hook: every
// cell reports at least one iteration tagged with its own grid position,
// the per-cell iteration counts match the solved results, and — the
// determinism clause — the grid is bit-identical with the hook installed.
func TestSweepOnProgressStreams(t *testing.T) {
	inst, b := testInstance(t, 12, 10)
	ref := stripTiming(runSweep(t, inst, testOptions(b, nil)))

	var mu sync.Mutex
	iters := map[[2]int]int{}
	res := stripTiming(runSweep(t, inst, testOptions(b, func(o *Options) {
		o.OnProgress = func(row, col int, p core.IterProgress) {
			if p.K <= 0 || p.Area <= 0 {
				t.Errorf("cell (%d,%d): bad progress %+v", row, col, p)
			}
			mu.Lock()
			iters[[2]int{row, col}]++
			mu.Unlock()
		}
	})))

	if !reflect.DeepEqual(ref, res) {
		t.Errorf("OnProgress perturbed the solved grid")
	}
	for i := 0; i < res.Rows; i++ {
		for j := 0; j < res.Cols; j++ {
			c := res.At(i, j)
			if got := iters[[2]int{i, j}]; got != c.Result.Iterations {
				t.Errorf("cell (%d,%d): %d progress events for %d iterations",
					i, j, got, c.Result.Iterations)
			}
		}
	}
}
