// Pareto-frontier extraction over the sweep's (delay, noise, power)
// trade-off space — the payoff of the grid: the cells no rational
// operating point would skip.
package sweep

// point is a cell's trade-off coordinate; every component is minimized.
type point [3]float64

func cellPoint(c *Cell) point {
	return point{c.Result.DelayPs, c.Result.NoiseLinFF, c.Result.PowerCapFF}
}

// dominates reports whether a is at least as good as b in every component
// and strictly better in at least one. Any NaN comparison is false, so a
// NaN coordinate can neither dominate nor be dominated — degenerate cells
// surface on the frontier instead of silently vanishing.
func dominates(a, b point) bool {
	better := false
	for k := 0; k < 3; k++ {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			better = true
		}
	}
	return better
}

// Frontier returns the indices (ascending) of the Pareto-minimal cells:
// every cell not dominated by any other cell in (delay, noise, power).
// Duplicate coordinates are all kept — equal points do not dominate each
// other. Cells without a Result (an aborted sweep) are excluded.
func Frontier(cells []Cell) []int {
	pts := make([]point, len(cells))
	for i := range cells {
		if cells[i].Result != nil {
			pts[i] = cellPoint(&cells[i])
		}
	}
	var front []int
	for i := range cells {
		if cells[i].Result == nil {
			continue
		}
		dominated := false
		for j := range cells {
			if j != i && cells[j].Result != nil && dominates(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}
