package layout

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// fourWireCircuit builds a circuit with four parallel wires of known
// lengths driven by one driver through a fan-out gate.
func fourWireCircuit(t testing.TB, lengths []float64) (*circuit.Graph, []int32) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("d", 100)
	w0 := b.AddWire("win", 1, 1, 0, 10, 1, 0.1, 10)
	b.Connect(d, w0)
	g := b.AddGate("g", 10, 0.2, 1, 0.1, 10)
	b.Connect(w0, g)
	var wires []int
	for i, l := range lengths {
		w := b.AddWire("w"+string(rune('0'+i)), 0.07*l, 0.024*l, 0.01*l, l, l, 0.1, 10)
		b.Connect(g, w)
		b.MarkOutput(w, 10)
		wires = append(wires, w)
	}
	gr, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, len(wires))
	for i, w := range wires {
		out[i] = int32(id[w])
	}
	return gr, out
}

func TestPairsAdjacent(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 80, 120, 60})
	ch := Channel{Wires: wires, Pitch: 2, Fringe: 0.1, OverlapFrac: 1}
	ps, err := Pairs(g, ch, IdentityOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("got %d pairs, want 3 (adjacent only)", len(ps))
	}
	// First pair: wires of lengths 100 and 80 → overlap 80, d=2,
	// c̃ = 0.1·80/2 = 4.
	if math.Abs(ps[0].CTilde-4) > 1e-12 {
		t.Errorf("pair 0 c̃ = %g, want 4", ps[0].CTilde)
	}
	if ps[0].Dist != 2 || ps[0].Weight != 1 {
		t.Errorf("pair 0 dist/weight = %g/%g, want 2/1", ps[0].Dist, ps[0].Weight)
	}
	for _, p := range ps {
		if p.I >= p.J {
			t.Errorf("pair (%d,%d) not normalized", p.I, p.J)
		}
	}
}

func TestPairsReach2(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 100, 100, 100})
	ch := Channel{Wires: wires, Pitch: 2, Fringe: 0.1, OverlapFrac: 0.5, Reach: 2}
	ps, err := Pairs(g, ch, IdentityOrder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// adjacent: 3 pairs at d=2; next-adjacent: 2 pairs at d=4.
	if len(ps) != 5 {
		t.Fatalf("got %d pairs, want 5", len(ps))
	}
	d2, d4 := 0, 0
	for _, p := range ps {
		switch p.Dist {
		case 2:
			d2++
			if math.Abs(p.CTilde-2.5) > 1e-12 { // 0.1·50/2
				t.Errorf("adjacent c̃ = %g, want 2.5", p.CTilde)
			}
		case 4:
			d4++
			if math.Abs(p.CTilde-1.25) > 1e-12 { // 0.1·50/4
				t.Errorf("next-adjacent c̃ = %g, want 1.25", p.CTilde)
			}
		default:
			t.Errorf("unexpected distance %g", p.Dist)
		}
	}
	if d2 != 3 || d4 != 2 {
		t.Errorf("distance histogram d2=%d d4=%d, want 3/2", d2, d4)
	}
}

func TestPairsOrderingChangesNeighbours(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 100, 100, 100})
	ch := Channel{Wires: wires, Pitch: 2, Fringe: 0.1, OverlapFrac: 1}
	a, err := Pairs(g, ch, []int{0, 1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := Pairs(g, ch, []int{0, 2, 1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := func(ps []coupling.Pair) map[[2]int]bool {
		m := map[[2]int]bool{}
		for _, p := range ps {
			m[[2]int{p.I, p.J}] = true
		}
		return m
	}
	ka, kb := key(a), key(bp)
	if len(ka) != 3 || len(kb) != 3 {
		t.Fatal("wrong pair counts")
	}
	same := true
	for k := range ka {
		if !kb[k] {
			same = false
		}
	}
	if same {
		t.Error("different orderings produced identical adjacency")
	}
}

func TestPairsWeighted(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 100, 100, 100})
	ch := Channel{Wires: wires, Pitch: 2, Fringe: 0.1, OverlapFrac: 1}
	// Weight 0 (perfect anti-Miller) drops the pair entirely.
	ps, err := Pairs(g, ch, IdentityOrder(4), func(a, b int32) float64 {
		if a == wires[0] || b == wires[0] {
			return 0
		}
		return 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("got %d pairs, want 2 (one cancelled)", len(ps))
	}
	for _, p := range ps {
		if p.Weight != 2 {
			t.Errorf("weight = %g, want 2", p.Weight)
		}
	}
	if _, err := Pairs(g, ch, IdentityOrder(4), func(a, b int32) float64 { return -1 }); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSimilarityWeight(t *testing.T) {
	if w := SimilarityWeight(1); w != 0 {
		t.Errorf("anti-Miller weight = %g, want 0", w)
	}
	if w := SimilarityWeight(-1); w != 2 {
		t.Errorf("Miller weight = %g, want 2", w)
	}
	if w := SimilarityWeight(0); w != 1 {
		t.Errorf("independent weight = %g, want 1", w)
	}
}

func TestChannelValidation(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 100, 100, 100})
	good := Channel{Wires: wires, Pitch: 2, Fringe: 0.1, OverlapFrac: 1}
	cases := []struct {
		name string
		ch   Channel
		ord  []int
	}{
		{"no wires", Channel{Pitch: 1, Fringe: 1, OverlapFrac: 1}, nil},
		{"zero pitch", Channel{Wires: wires, Fringe: 1, OverlapFrac: 1}, IdentityOrder(4)},
		{"zero fringe", Channel{Wires: wires, Pitch: 1, OverlapFrac: 1}, IdentityOrder(4)},
		{"bad overlap", Channel{Wires: wires, Pitch: 1, Fringe: 1, OverlapFrac: 1.5}, IdentityOrder(4)},
		{"negative reach", Channel{Wires: wires, Pitch: 1, Fringe: 1, OverlapFrac: 1, Reach: -1}, IdentityOrder(4)},
		{"dup wire", Channel{Wires: []int32{wires[0], wires[0]}, Pitch: 1, Fringe: 1, OverlapFrac: 1}, IdentityOrder(2)},
		{"not a wire", Channel{Wires: []int32{1}, Pitch: 1, Fringe: 1, OverlapFrac: 1}, IdentityOrder(1)},
		{"bad ordering len", good, IdentityOrder(3)},
		{"not permutation", good, []int{0, 0, 1, 2}},
		{"out of range perm", good, []int{0, 1, 2, 9}},
	}
	for _, c := range cases {
		if _, err := Pairs(g, c.ch, c.ord, nil); err == nil {
			t.Errorf("%s: Pairs succeeded, want error", c.name)
		}
	}
}

func TestAllPairs(t *testing.T) {
	g, wires := fourWireCircuit(t, []float64{100, 100, 100, 100})
	chans := []Channel{
		{Wires: wires[:2], Pitch: 2, Fringe: 0.1, OverlapFrac: 1},
		{Wires: wires[2:], Pitch: 3, Fringe: 0.2, OverlapFrac: 1},
	}
	set, err := AllPairs(g, chans, [][]int{IdentityOrder(2), IdentityOrder(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("AllPairs produced %d pairs, want 2", set.Len())
	}
	// Wire in two channels rejected.
	bad := []Channel{
		{Wires: wires[:2], Pitch: 2, Fringe: 0.1, OverlapFrac: 1},
		{Wires: wires[1:], Pitch: 3, Fringe: 0.2, OverlapFrac: 1},
	}
	if _, err := AllPairs(g, bad, [][]int{IdentityOrder(2), IdentityOrder(3)}, nil); err == nil {
		t.Error("overlapping channels accepted")
	}
	if _, err := AllPairs(g, chans, [][]int{IdentityOrder(2)}, nil); err == nil {
		t.Error("mismatched orderings accepted")
	}
}
