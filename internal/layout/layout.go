// Package layout is the geometry substrate the paper obtains from placement
// and routing: it groups wires into routing channels, assigns them to
// parallel tracks according to an ordering (stage 1 of the paper's flow),
// and derives the coupled-pair geometry — overlap length lᵢⱼ,
// centre-to-centre distance dᵢⱼ, unit fringing f̂ᵢⱼ — that stage 2 consumes.
package layout

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// Channel is a routing region whose wires run in parallel on a uniform
// track grid.
type Channel struct {
	// Wires lists the circuit node indices of the wires routed in this
	// channel.
	Wires []int32
	// Pitch is the centre-to-centre distance between adjacent tracks (µm).
	Pitch float64
	// Fringe is the unit-length fringing capacitance f̂ᵢⱼ between wires on
	// adjacent tracks (fF/µm at 1 µm separation; the model divides by the
	// actual distance).
	Fringe float64
	// OverlapFrac is the fraction of the shorter wire's length that runs
	// parallel to its neighbour (0 < OverlapFrac ≤ 1).
	OverlapFrac float64
	// Reach is how many tracks apart two wires may be and still couple;
	// 1 (the default when zero) couples adjacent tracks only.
	Reach int
}

// Validate reports the first problem with the channel's parameters.
func (ch Channel) Validate(g *circuit.Graph) error {
	if len(ch.Wires) == 0 {
		return fmt.Errorf("layout: channel has no wires")
	}
	if ch.Pitch <= 0 {
		return fmt.Errorf("layout: channel pitch must be positive, got %g", ch.Pitch)
	}
	if ch.Fringe <= 0 {
		return fmt.Errorf("layout: channel fringe must be positive, got %g", ch.Fringe)
	}
	if ch.OverlapFrac <= 0 || ch.OverlapFrac > 1 {
		return fmt.Errorf("layout: overlap fraction must be in (0,1], got %g", ch.OverlapFrac)
	}
	if ch.Reach < 0 {
		return fmt.Errorf("layout: reach must be non-negative, got %d", ch.Reach)
	}
	seen := map[int32]bool{}
	for _, w := range ch.Wires {
		if int(w) < 0 || int(w) >= g.NumNodes() {
			return fmt.Errorf("layout: wire node %d out of range", w)
		}
		if g.Comp(int(w)).Kind != circuit.Wire {
			return fmt.Errorf("layout: node %d (%s) is a %v, not a wire", w, g.Comp(int(w)).Name, g.Comp(int(w)).Kind)
		}
		if seen[w] {
			return fmt.Errorf("layout: wire %d appears twice in channel", w)
		}
		seen[w] = true
	}
	return nil
}

// SimilarityWeight converts a switching similarity in [−1,1] into the
// effective crosstalk weight 1 − similarity ∈ [0,2]: the Miller effect
// (opposite switching) doubles the coupling, the anti-Miller effect (same
// switching) cancels it, and independent switching keeps the physical value.
func SimilarityWeight(similarity float64) float64 { return 1 - similarity }

// Pairs derives the coupled pairs of a channel from a track assignment.
// ord is a permutation of positions into ch.Wires: ord[t] occupies track t.
// Wires up to Reach tracks apart couple, with dᵢⱼ = Pitch·Δtrack,
// lᵢⱼ = OverlapFrac·min(lᵢ, lⱼ), and c̃ᵢⱼ = Fringe·lᵢⱼ/dᵢⱼ.
//
// weight, if non-nil, supplies the per-pair effective crosstalk weight from
// the wires' switching similarity (use nil for the paper's purely physical
// weight of 1).
func Pairs(g *circuit.Graph, ch Channel, ord []int, weight func(a, b int32) float64) ([]coupling.Pair, error) {
	if err := ch.Validate(g); err != nil {
		return nil, err
	}
	if len(ord) != len(ch.Wires) {
		return nil, fmt.Errorf("layout: ordering has %d entries for %d wires", len(ord), len(ch.Wires))
	}
	seen := make([]bool, len(ch.Wires))
	for _, p := range ord {
		if p < 0 || p >= len(ch.Wires) || seen[p] {
			return nil, fmt.Errorf("layout: ordering is not a permutation of channel positions")
		}
		seen[p] = true
	}
	reach := ch.Reach
	if reach == 0 {
		reach = 1
	}
	var pairs []coupling.Pair
	for t := 0; t < len(ord); t++ {
		for dt := 1; dt <= reach && t+dt < len(ord); dt++ {
			a, b := ch.Wires[ord[t]], ch.Wires[ord[t+dt]]
			i, j := int(a), int(b)
			if i > j {
				i, j = j, i
			}
			li, lj := g.Comp(i).Length, g.Comp(j).Length
			l := li
			if lj < li {
				l = lj
			}
			l *= ch.OverlapFrac
			if l <= 0 {
				return nil, fmt.Errorf("layout: wires %d,%d have no overlap length", i, j)
			}
			d := ch.Pitch * float64(dt)
			w := 1.0
			if weight != nil {
				w = weight(a, b)
			}
			if w < 0 {
				return nil, fmt.Errorf("layout: negative weight %g for pair (%d,%d)", w, i, j)
			}
			if w == 0 {
				continue // anti-Miller: fully cancelled coupling
			}
			pairs = append(pairs, coupling.Pair{
				I: i, J: j,
				CTilde: ch.Fringe * l / d,
				Dist:   d,
				Weight: w,
			})
		}
	}
	return pairs, nil
}

// AllPairs concatenates the coupled pairs of several channels into one
// coupling set. orderings[c] is the track assignment of channels[c].
func AllPairs(g *circuit.Graph, channels []Channel, orderings [][]int, weight func(a, b int32) float64) (*coupling.Set, error) {
	if len(orderings) != len(channels) {
		return nil, fmt.Errorf("layout: %d orderings for %d channels", len(orderings), len(channels))
	}
	inChannel := map[int32]int{}
	var all []coupling.Pair
	for ci, ch := range channels {
		for _, w := range ch.Wires {
			if prev, dup := inChannel[w]; dup {
				return nil, fmt.Errorf("layout: wire %d in channels %d and %d", w, prev, ci)
			}
			inChannel[w] = ci
		}
		ps, err := Pairs(g, ch, orderings[ci], weight)
		if err != nil {
			return nil, fmt.Errorf("layout: channel %d: %v", ci, err)
		}
		all = append(all, ps...)
	}
	return coupling.NewSet(all)
}

// IdentityOrder returns the identity track assignment for n wires.
func IdentityOrder(n int) []int {
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	return ord
}
