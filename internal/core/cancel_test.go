package core

import (
	"errors"
	"testing"
)

// TestCancelStopsAtIterationBoundary cancels after a fixed number of
// iterations and checks Run returns ErrCancelled without finishing.
func TestCancelStopsAtIterationBoundary(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(2.0, 0, 0)
	iters := 0
	opt.OnIteration = func(IterProgress) { iters++ }
	opt.Cancel = func() bool { return iters >= 3 }
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if res != nil {
		t.Fatal("cancelled Run returned a result")
	}
	if iters != 3 {
		t.Fatalf("ran %d iterations past cancellation, want exactly 3", iters)
	}
}

// TestCancelImmediately cancels before the first iteration.
func TestCancelImmediately(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(2.0, 0, 0)
	opt.Cancel = func() bool { return true }
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.Run(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// TestCancelHookDoesNotPerturbBits pins the Cancel bit-identity contract:
// a solve with a Cancel hook that never fires produces the byte-identical
// trajectory of a solve with no hook at all.
func TestCancelHookDoesNotPerturbBits(t *testing.T) {
	g, _ := chain(t)
	run := func(withHook bool) *Result {
		ev := newEval(t, g, emptySet(t))
		opt := DefaultOptions(2.0, 0, 0)
		if withHook {
			opt.Cancel = func() bool { return false }
		}
		sol, err := NewSolver(ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Iterations != b.Iterations || a.Area != b.Area || a.Gap != b.Gap {
		t.Fatalf("hooked run diverged: %+v vs %+v", a, b)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("size %d differs with a never-firing Cancel hook", i)
		}
	}
}
