package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// solvedDual runs a coupled solve with a per-net bound (so every snapshot
// field is populated) and returns the solver plus its final dual state.
func solvedDual(t *testing.T) (*Solver, *DualState, Options) {
	t.Helper()
	g, id, cs := coupledVictim(t)
	ev := newEval(t, g, cs)
	ev.SetAllSizes(1)
	ev.Recompute()
	a0 := ev.MaxArrival()
	opt := DefaultOptions(1.02*a0, 18+cs.ConstantOffset(), 0)
	opt.MaxIterations = 40
	opt.PerNetNoiseBounds = map[int]float64{id["w1"]: 16}
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sol.Close)
	if _, err := sol.Run(); err != nil {
		t.Fatal(err)
	}
	d := sol.DualState()
	if d == nil {
		t.Fatal("no dual state after Run")
	}
	return sol, d, opt
}

// TestDualStateJSONRoundTrip pins the externalized warm start: a snapshot
// marshalled to JSON and back must drive RunFromDual to the bit-identical
// result the in-memory snapshot produces.
func TestDualStateJSONRoundTrip(t *testing.T) {
	sol, d, _ := solvedDual(t)
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back := new(DualState)
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatal("dual state did not round-trip through JSON")
	}
	seed := append([]float64(nil), sol.ev.X...)
	want, err := sol.RunFromDual(seed, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sol.RunFromDual(seed, back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("warm start from the round-tripped dual state diverged")
	}
}

func TestDualStateJSONRejectsPoison(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"negative beta", `{"edge":[[0.1]],"beta":-1,"gamma":0}`, "beta"},
		{"inf gamma", `{"edge":[[0.1]],"beta":0,"gamma":1e999}`, "gamma"},
		{"negative edge", `{"edge":[[-0.5]],"beta":0,"gamma":0}`, "edge[0]"},
		{"negative gamma_v", `{"edge":[[0.1]],"beta":0,"gamma":0,"gamma_v":[-2]}`, "gamma_v[0]"},
		{"malformed", `{"edge":`, "unexpected end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := json.Unmarshal([]byte(c.body), new(DualState))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want mention of %q", err, c.want)
			}
		})
	}
}

// TestDualStateShapeRejected verifies RunFromDual's shape validation
// rejects a snapshot from a different circuit.
func TestDualStateShapeRejected(t *testing.T) {
	sol, d, _ := solvedDual(t)
	other := &DualState{edge: d.edge[:len(d.edge)-1], beta: d.beta, gamma: d.gamma}
	if _, err := sol.RunFromDual(append([]float64(nil), sol.ev.X...), other); err == nil {
		t.Fatal("mismatched dual state accepted")
	}
}
