package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rc"
)

// solveWith runs one full OGWS solve on a fresh chain/coupled evaluator.
func solveWith(t *testing.T, build func(t testing.TB) *rc.Evaluator, mutate func(*Options)) *Result {
	t.Helper()
	ev := build(t)
	opt := DefaultOptions(50, 0, 0)
	opt.MaxIterations = 40
	if mutate != nil {
		mutate(&opt)
	}
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func coupledEval(t testing.TB) *rc.Evaluator {
	g, _, cs := coupledVictim(t)
	return newEval(t, g, cs)
}

func chainEval(t testing.TB) *rc.Evaluator {
	g, _ := chain(t)
	return newEval(t, g, emptySet(t))
}

// TestIncrementalSolveBitIdentical is the tentpole contract at the solver
// level: with ActiveSetTol = 0 the active-set/dirty-cone path must
// reproduce the paper-faithful full-pass path bit for bit — same sizes,
// same iteration and sweep counts, same dual, same gap — across circuit
// shapes, warm/cold starts, noise/power constraint mixes, and widths.
func TestIncrementalSolveBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		build  func(t testing.TB) *rc.Evaluator
		mutate func(*Options)
	}{
		{"chain-loose", chainEval, nil},
		{"chain-warm", chainEval, func(o *Options) { o.WarmStart = true }},
		{"coupled-bounds", coupledEval, func(o *Options) {
			o.A0 = 120
			o.NoiseBound = 18
			o.PowerCapBound = 60
		}},
		{"coupled-warm-undamped", coupledEval, func(o *Options) {
			o.A0 = 120
			o.NoiseBound = 18
			o.WarmStart = true
			o.LRSDamping = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := solveWith(t, tc.build, func(o *Options) {
				o.Incremental = false
				if tc.mutate != nil {
					tc.mutate(o)
				}
			})
			for _, w := range []int{1, 4} {
				inc := solveWith(t, tc.build, func(o *Options) {
					o.Incremental = true
					o.Workers = w
					if tc.mutate != nil {
						tc.mutate(o)
					}
				})
				if !reflect.DeepEqual(full, inc) {
					t.Errorf("workers=%d: incremental result diverged from full passes:\nfull %+v\ninc  %+v", w, full, inc)
				}
			}
		})
	}
}

// parallelChains builds `paths` independent driver→wire→gate→wire→output
// chains with per-path electrical variation: the structure late-sweep
// locality thrives on, since each path converges on its own schedule and a
// settled path's cones never reawaken.
func parallelChains(t testing.TB, paths int) *rc.Evaluator {
	t.Helper()
	b := circuit.NewBuilder()
	for p := 0; p < paths; p++ {
		d := b.AddDriver("D", 80+float64(p%7)*15)
		w1 := b.AddWire("w1", 8+float64(p%5)*3, 1.5, 0.1, 40, 1, 0.1, 10)
		g1 := b.AddGate("g1", 18+float64(p%4)*6, 0.5, 3, 0.1, 10)
		w2 := b.AddWire("w2", 6, 1, 0.05, 30, 1, 0.1, 10)
		b.Connect(d, w1)
		b.Connect(w1, g1)
		b.Connect(g1, w2)
		b.MarkOutput(w2, 6+float64(p%3)*2)
	}
	g, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return newEval(t, g, emptySet(t))
}

// TestIncrementalSkipsWork asserts the engine actually does less
// evaluation work than the full path on a warm-started, delay-bound solve
// — the "do less work" point of the whole construction. (Measured ~3.2x
// on this fixture; the committed BenchmarkIncrementalSolve tracks the
// c880 and grid numbers.)
func TestIncrementalSkipsWork(t *testing.T) {
	run := func(incremental bool) int64 {
		ev := parallelChains(t, 24)
		opt := DefaultOptions(45, 0, 0) // 45 ps binds every chain
		opt.MaxIterations = 60
		opt.WarmStart = true
		opt.Incremental = incremental
		sol, err := NewSolver(ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sol.Close()
		ev.ResetStats()
		if _, err := sol.Run(); err != nil {
			t.Fatal(err)
		}
		return ev.Stats().NodeVisits()
	}
	fullWork := run(false)
	incWork := run(true)
	if incWork*2 >= fullWork {
		t.Errorf("incremental executed %d bodies, full %d — expected at least a 2x reduction", incWork, fullWork)
	}
}

// TestActiveSetTolApproximate: a positive tolerance is allowed to change
// low-order bits but must still deliver a finite, feasible-quality result
// whose metrics were evaluated by a full pass on the actual sizes.
func TestActiveSetTolApproximate(t *testing.T) {
	exact := solveWith(t, coupledEval, func(o *Options) {
		o.A0 = 120
		o.NoiseBound = 18
	})
	loose := solveWith(t, coupledEval, func(o *Options) {
		o.A0 = 120
		o.NoiseBound = 18
		o.ActiveSetTol = 1e-4
	})
	for _, v := range []float64{loose.Area, loose.DelayPs, loose.Gap, loose.Dual} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ActiveSetTol produced non-finite result: %+v", loose)
		}
	}
	if loose.Converged != exact.Converged {
		t.Logf("tolerance changed convergence: exact %v, loose %v", exact.Converged, loose.Converged)
	}
	if rel := math.Abs(loose.Area-exact.Area) / exact.Area; rel > 0.05 {
		t.Errorf("ActiveSetTol=1e-4 moved the area by %.2f%% — tolerance leaking far past its scale", 100*rel)
	}
}

// TestIncrementalRunIdempotent: re-running one incremental solver must
// replay the identical trajectory (the PR-1 idempotency contract now
// includes the dirty bookkeeping).
func TestIncrementalRunIdempotent(t *testing.T) {
	ev := coupledEval(t)
	opt := DefaultOptions(120, 18, 60)
	opt.MaxIterations = 25
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	first, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("re-Run diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestOptionsActiveSetValidation: negative/NaN tolerances normalize to 0.
func TestOptionsActiveSetValidation(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(50, 0, 0)
	opt.ActiveSetTol = -3
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	if sol.opt.ActiveSetTol != 0 {
		t.Errorf("negative ActiveSetTol normalized to %g, want 0", sol.opt.ActiveSetTol)
	}
	opt.ActiveSetTol = math.NaN()
	sol2, err := NewSolver(newEval(t, g, emptySet(t)), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol2.Close()
	if sol2.opt.ActiveSetTol != 0 {
		t.Errorf("NaN ActiveSetTol normalized to %g, want 0", sol2.opt.ActiveSetTol)
	}
}
