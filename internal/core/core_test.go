package core

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/lagrange"
	"repro/internal/rc"
)

func emptySet(t testing.TB) *coupling.Set {
	t.Helper()
	s, err := coupling.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chain: D(100Ω) → w → g → w2 → 10fF load, three sizable components.
func chain(t testing.TB) (*circuit.Graph, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	w := b.AddWire("w", 10, 2, 0.1, 50, 1, 0.1, 10)
	g := b.AddGate("g", 20, 0.5, 4, 0.1, 10)
	w2 := b.AddWire("w2", 5, 1, 0.05, 25, 1, 0.1, 10)
	b.Connect(d, w)
	b.Connect(w, g)
	b.Connect(g, w2)
	b.MarkOutput(w2, 10)
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := map[string]int{}
	for i := 0; i < gr.NumNodes(); i++ {
		id[gr.Comp(i).Name] = i
	}
	return gr, id
}

// coupledVictim builds an asymmetric instance where the noise constraint
// can bind feasibly: the critical path D1 → w1 → g → w2 → 15fF has a
// coupled wire w1 whose width the noise bound caps, while the gate g offers
// an alternative (uncoupled) lever to keep meeting the delay bound. The
// aggressor stub D2 → w1b → 2fF is non-critical and sits at minimum size.
func coupledVictim(t testing.TB) (*circuit.Graph, map[string]int, *coupling.Set) {
	t.Helper()
	b := circuit.NewBuilder()
	d1 := b.AddDriver("D1", 150)
	d2 := b.AddDriver("D2", 150)
	w1 := b.AddWire("w1", 80, 2, 0.1, 100, 1, 0.1, 10)
	g := b.AddGate("g", 20, 0.5, 2, 0.1, 10)
	w2 := b.AddWire("w2", 5, 1, 0.05, 25, 1, 0.1, 10)
	w1b := b.AddWire("w1b", 10, 1, 0.1, 100, 1, 0.1, 10)
	b.Connect(d1, w1)
	b.Connect(w1, g)
	b.Connect(g, w2)
	b.Connect(d2, w1b)
	b.MarkOutput(w2, 15)
	b.MarkOutput(w1b, 2)
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := map[string]int{}
	for i := 0; i < gr.NumNodes(); i++ {
		id[gr.Comp(i).Name] = i
	}
	i, j := id["w1"], id["w1b"]
	if i > j {
		i, j = j, i
	}
	cs, err := coupling.NewSet([]coupling.Pair{{I: i, J: j, CTilde: 8, Dist: 2, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return gr, id, cs
}

func newEval(t testing.TB, g *circuit.Graph, cs *coupling.Set) *rc.Evaluator {
	t.Helper()
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestLooseBoundsGiveMinimumArea(t *testing.T) {
	g, id := chain(t)
	ev := newEval(t, g, emptySet(t))
	sol, err := NewSolver(ev, DefaultOptions(1e9, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: gap %g after %d iterations", res.Gap, res.Iterations)
	}
	for _, name := range []string{"w", "g", "w2"} {
		if x := res.X[id[name]]; math.Abs(x-0.1) > 1e-6 {
			t.Errorf("x(%s) = %g, want lower bound 0.1 (loose constraints)", name, x)
		}
	}
	if res.DelayViolation != 0 || res.PowerViolation != 0 || res.NoiseViolation != 0 {
		t.Errorf("violations on loose problem: %+v", res)
	}
}

// gridSearchChain minimizes area over a size grid subject to delay ≤ a0,
// the reference optimum for Theorem 7 checks.
func gridSearchChain(t testing.TB, g *circuit.Graph, id map[string]int, a0 float64) (bestArea float64, bestX []float64) {
	t.Helper()
	ev := newEval(t, g, emptySet(t))
	bestArea = math.Inf(1)
	x := make([]float64, g.NumNodes())
	// Log-spaced grid over [0.1, 10]: 0.1·(10^(i/20)) for i = 0..40.
	grid := make([]float64, 0, 41)
	for i := 0; i <= 40; i++ {
		grid = append(grid, 0.1*math.Pow(10, float64(i)/20))
	}
	for _, xw := range grid {
		for _, xg := range grid {
			for _, xw2 := range grid {
				x[id["w"]], x[id["g"]], x[id["w2"]] = xw, xg, xw2
				ev.SetSizes(x)
				ev.Recompute()
				if ev.MaxArrival() > a0 {
					continue
				}
				if a := ev.Area(); a < bestArea {
					bestArea = a
					bestX = append(bestX[:0], ev.X...)
				}
			}
		}
	}
	return bestArea, bestX
}

// TestOGWSMatchesBruteForce is the Theorem-7 check: on a tiny instance the
// LR solution must essentially reach the global optimum found by grid
// search.
func TestOGWSMatchesBruteForce(t *testing.T) {
	g, id := chain(t)
	// Pick a binding delay bound: below the min-size delay (≈2.8 ps).
	const a0 = 2.0
	refArea, refX := gridSearchChain(t, g, id, a0)
	if math.IsInf(refArea, 1) {
		t.Fatal("grid search found no feasible point; bound too tight")
	}
	ev := newEval(t, g, emptySet(t))
	sol, err := NewSolver(ev, DefaultOptions(a0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: gap %g after %d iterations", res.Gap, res.Iterations)
	}
	// Within 5% of the grid optimum (the grid itself is ~12% resolution).
	if res.Area > refArea*1.05 {
		t.Errorf("OGWS area %g vs grid optimum %g (x=%v, grid x=%v)",
			res.Area, refArea, res.X, refX)
	}
	// Delay essentially feasible.
	if res.DelayPs > a0*1.02 {
		t.Errorf("delay %g exceeds bound %g by more than 2%%", res.DelayPs, a0)
	}
}

// TestWeakDuality: the dual value never exceeds the constrained optimum.
func TestWeakDuality(t *testing.T) {
	g, id := chain(t)
	const a0 = 2.0
	refArea, _ := gridSearchChain(t, g, id, a0)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(a0, 0, 0)
	opt.KeepHistory = true
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if h.Dual > refArea*1.005 { // tiny slack for grid resolution
			t.Fatalf("iteration %d: dual %g exceeds optimum %g (weak duality)", h.K, h.Dual, refArea)
		}
	}
}

func TestDelayBoundDrivesUpsizing(t *testing.T) {
	g, id := chain(t)
	ev := newEval(t, g, emptySet(t))
	sol, err := NewSolver(ev, DefaultOptions(2.0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The gate must be upsized beyond minimum to meet 2.0 ps.
	if res.X[id["g"]] < 0.12 {
		t.Errorf("x(g) = %g; expected upsizing beyond 0.1 for the binding delay bound", res.X[id["g"]])
	}
	if res.DelayPs > 2.0*1.02 {
		t.Errorf("delay %g not meeting bound 2.0", res.DelayPs)
	}
}

func TestNoiseConstraintBinds(t *testing.T) {
	g, id, cs := coupledVictim(t)
	const a0 = 3.0
	// Unconstrained (delay-only) run to find the natural noise level.
	ev1 := newEval(t, g, cs)
	sol1, err := NewSolver(ev1, DefaultOptions(a0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := sol1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Converged {
		t.Fatalf("delay-only run did not converge: %+v", res1)
	}
	if res1.X[id["w1"]] < 0.3 {
		t.Fatalf("test premise broken: delay bound did not upsize the coupled wire (x=%g)", res1.X[id["w1"]])
	}
	// Now bound the noise at 70% of the delay-only level. The gate can
	// absorb the delay burden, so this stays feasible.
	xPrime := 0.7 * res1.NoiseLinFF
	noiseBound := xPrime + cs.ConstantOffset()
	ev2 := newEval(t, g, cs)
	sol2, err := NewSolver(ev2, DefaultOptions(a0, noiseBound, 0))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sol2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.NoiseLinFF > xPrime*1.03 {
		t.Errorf("noise %g exceeds bound %g (converged=%v gap=%g)", res2.NoiseLinFF, xPrime, res2.Converged, res2.Gap)
	}
	if res2.DelayPs > a0*1.03 {
		t.Errorf("delay %g exceeds bound %g under noise constraint", res2.DelayPs, a0)
	}
	// The coupled wire shrank and the gate grew to compensate.
	if res2.X[id["w1"]] >= res1.X[id["w1"]] {
		t.Errorf("coupled wire did not shrink: %g -> %g", res1.X[id["w1"]], res2.X[id["w1"]])
	}
	if res2.X[id["g"]] <= res1.X[id["g"]]*1.01 {
		t.Errorf("gate did not absorb the delay burden: %g -> %g", res1.X[id["g"]], res2.X[id["g"]])
	}
}

// powerChain has a genuine area-versus-power trade-off: the long resistive
// wire w (power-hungry per µm: ĉ=2, but area-cheap: α=1) and the gate g
// (power-cheap: ĉ=0.5, area-expensive: α=8) are coupled levers — upsizing g
// speeds the output stage but loads w — so a power cap shifts the balance
// away from the area-optimal split.
func powerChain(t testing.TB) (*circuit.Graph, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 50)
	w := b.AddWire("w", 200, 2, 0.1, 200, 1, 0.1, 10)
	g := b.AddGate("g", 20, 0.5, 8, 0.1, 10)
	w2 := b.AddWire("w2", 5, 1, 0.05, 25, 1, 0.1, 10)
	b.Connect(d, w)
	b.Connect(w, g)
	b.Connect(g, w2)
	b.MarkOutput(w2, 20)
	gr, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := map[string]int{}
	for i := 0; i < gr.NumNodes(); i++ {
		id[gr.Comp(i).Name] = i
	}
	return gr, id
}

func TestPowerConstraintBinds(t *testing.T) {
	g, id := powerChain(t)
	const a0 = 3.0
	ev1 := newEval(t, g, emptySet(t))
	sol1, err := NewSolver(ev1, DefaultOptions(a0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := sol1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Converged {
		t.Fatalf("delay-only run did not converge: %+v", res1)
	}
	// Cap the switched capacitance below the delay-only level; grid
	// search confirms this remains feasible before asserting.
	pBound := 0.9 * res1.PowerCapFF
	refArea := gridSearchChainConstrained(t, g, id, a0, pBound)
	if math.IsInf(refArea, 1) {
		t.Fatalf("test premise broken: power bound %g infeasible", pBound)
	}
	ev2 := newEval(t, g, emptySet(t))
	sol2, err := NewSolver(ev2, DefaultOptions(a0, 0, pBound))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sol2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.PowerCapFF > pBound*1.03 {
		t.Errorf("power cap %g exceeds bound %g (converged=%v)", res2.PowerCapFF, pBound, res2.Converged)
	}
	if res2.DelayPs > a0*1.03 {
		t.Errorf("delay %g exceeds bound %g under power constraint", res2.DelayPs, a0)
	}
	if res2.PowerCapFF >= res1.PowerCapFF {
		t.Errorf("power constraint had no effect")
	}
}

// gridSearchChainConstrained minimizes area over the chain's size grid
// subject to delay ≤ a0 and total capacitance ≤ pBound.
func gridSearchChainConstrained(t testing.TB, g *circuit.Graph, id map[string]int, a0, pBound float64) float64 {
	t.Helper()
	ev := newEval(t, g, emptySet(t))
	best := math.Inf(1)
	x := make([]float64, g.NumNodes())
	grid := make([]float64, 0, 41)
	for i := 0; i <= 40; i++ {
		grid = append(grid, 0.1*math.Pow(10, float64(i)/20))
	}
	for _, xw := range grid {
		for _, xg := range grid {
			for _, xw2 := range grid {
				x[id["w"]], x[id["g"]], x[id["w2"]] = xw, xg, xw2
				ev.SetSizes(x)
				ev.Recompute()
				if ev.MaxArrival() > a0 || ev.TotalCap() > pBound {
					continue
				}
				if a := ev.Area(); a < best {
					best = a
				}
			}
		}
	}
	return best
}

// TestLRSFixedPoint: at the LRS solution, re-evaluating Theorem 5's formula
// reproduces the sizes (KKT condition (5)).
func TestLRSFixedPoint(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(2.0, 0, 100) // power constraint on so β is active
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	sol.mult = lagrange.New(g, 1)
	sol.mult.ProjectFlow()
	sol.mult.Beta, sol.mult.Gamma = 0.5, 0
	sol.mult.NodeSums(sol.lambda)
	sol.LRS()
	// Recompute opt_i at the converged state and verify self-consistency.
	ev.Recompute()
	ev.UpstreamResistance(sol.lambda, sol.rup)
	for i := 1; i < g.NumNodes()-1; i++ {
		c := g.Comp(i)
		if !c.Kind.Sizable() {
			continue
		}
		num := sol.lambda[i] * sol.rEff[i] * (ev.CPr[i] + 0)
		den := c.AreaCoeff + (0.5+sol.rup[i])*c.CUnit
		want := math.Sqrt(num / den)
		want = math.Min(c.Hi, math.Max(c.Lo, want))
		if math.Abs(want-ev.X[i]) > 1e-4*want {
			t.Errorf("node %d (%s): x = %g, Theorem-5 fixed point = %g", i, c.Name, ev.X[i], want)
		}
	}
}

func TestSolverRejectsBadOptions(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	if _, err := NewSolver(ev, Options{A0: 0}); err == nil {
		t.Error("A0=0 accepted")
	}
	if _, err := NewSolver(ev, Options{A0: 1, InitBeta: -1}); err == nil {
		t.Error("negative InitBeta accepted")
	}
}

func TestInfeasibleNoiseBoundRejected(t *testing.T) {
	g, _, cs := coupledVictim(t)
	ev := newEval(t, g, cs)
	// Bound below the constant offset Σc̃ = 8.
	if _, err := NewSolver(ev, DefaultOptions(3.0, 4, 0)); err == nil {
		t.Error("noise bound below constant offset accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	g, _ := chain(t)
	run := func() *Result {
		ev := newEval(t, g, emptySet(t))
		sol, err := NewSolver(ev, DefaultOptions(2.0, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Iterations != b.Iterations || a.Area != b.Area || a.Gap != b.Gap {
		t.Errorf("nondeterministic runs: %+v vs %+v", a, b)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("size %d differs between runs", i)
		}
	}
}

func TestWarmStartReachesSameOptimum(t *testing.T) {
	g, _ := chain(t)
	cold := DefaultOptions(2.0, 0, 0)
	warm := DefaultOptions(2.0, 0, 0)
	warm.WarmStart = true
	evC := newEval(t, g, emptySet(t))
	evW := newEval(t, g, emptySet(t))
	solC, _ := NewSolver(evC, cold)
	solW, _ := NewSolver(evW, warm)
	resC, err := solC.Run()
	if err != nil {
		t.Fatal(err)
	}
	resW, err := solW.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resC.Area-resW.Area) > 0.02*resC.Area {
		t.Errorf("warm-start area %g differs from cold-start %g", resW.Area, resC.Area)
	}
	if resW.LRSSweepsTotal >= resC.LRSSweepsTotal {
		t.Logf("note: warm start used %d sweeps vs cold %d", resW.LRSSweepsTotal, resC.LRSSweepsTotal)
	}
}

func TestSizesStayWithinBounds(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	sol, err := NewSolver(ev, DefaultOptions(1.5, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < g.NumNodes()-1; i++ {
		c := g.Comp(i)
		if !c.Kind.Sizable() {
			continue
		}
		if res.X[i] < c.Lo-1e-12 || res.X[i] > c.Hi+1e-12 {
			t.Errorf("x(%s) = %g outside [%g, %g]", c.Name, res.X[i], c.Lo, c.Hi)
		}
	}
}

func TestHistoryRecorded(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	opt := DefaultOptions(2.0, 0, 0)
	opt.KeepHistory = true
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Errorf("history has %d entries for %d iterations", len(res.History), res.Iterations)
	}
	for i, h := range res.History {
		if h.K != i+1 || h.Area <= 0 || h.LRSSweeps <= 0 {
			t.Errorf("bad history entry %d: %+v", i, h)
		}
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g, _ := chain(t)
	ev := newEval(t, g, emptySet(t))
	sol, err := NewSolver(ev, DefaultOptions(2.0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryBytes <= 0 {
		t.Error("MemoryBytes not positive")
	}
}

func TestBoundsAccessor(t *testing.T) {
	g, _, cs := coupledVictim(t)
	ev := newEval(t, g, cs)
	sol, err := NewSolver(ev, DefaultOptions(3.0, 20, 100))
	if err != nil {
		t.Fatal(err)
	}
	xp, pp := sol.Bounds()
	if math.Abs(xp-(20-cs.ConstantOffset())) > 1e-12 {
		t.Errorf("X' = %g, want %g", xp, 20-cs.ConstantOffset())
	}
	if pp != 100 {
		t.Errorf("P' = %g, want 100", pp)
	}
}

// TestOnIterationHook pins the progress hook's contract: one call per
// iteration, payloads mirroring the recorded history, per-iteration
// evaluation-work deltas that sum to the cumulative counters, and — the
// determinism clause — a solve with the hook installed is bit-identical
// to one without.
func TestOnIterationHook(t *testing.T) {
	g, _, cs := coupledVictim(t)

	run := func(hook bool) (*Result, []IterProgress) {
		ev := newEval(t, g, cs)
		opt := DefaultOptions(3.0, 14, 0)
		opt.KeepHistory = true
		var got []IterProgress
		if hook {
			opt.OnIteration = func(p IterProgress) { got = append(got, p) }
		}
		sol, err := NewSolver(ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sol.Close()
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, got
	}

	plain, _ := run(false)
	hooked, prog := run(true)

	// Determinism: the hook must not perturb a single bit.
	if len(plain.X) != len(hooked.X) {
		t.Fatalf("X length differs: %d vs %d", len(plain.X), len(hooked.X))
	}
	for i := range plain.X {
		if plain.X[i] != hooked.X[i] {
			t.Fatalf("X[%d] differs with hook installed: %g vs %g", i, plain.X[i], hooked.X[i])
		}
	}
	if plain.Iterations != hooked.Iterations || plain.Gap != hooked.Gap {
		t.Fatalf("trajectory differs: %d/%g vs %d/%g",
			plain.Iterations, plain.Gap, hooked.Iterations, hooked.Gap)
	}

	// One call per iteration, mirroring history exactly.
	if len(prog) != hooked.Iterations || len(prog) != len(hooked.History) {
		t.Fatalf("hook fired %d times for %d iterations (%d history entries)",
			len(prog), hooked.Iterations, len(hooked.History))
	}
	for i, p := range prog {
		if p.IterStats != hooked.History[i] {
			t.Errorf("iteration %d: hook stats %+v != history %+v", i, p.IterStats, hooked.History[i])
		}
		if p.DelayViolation < 0 || p.PowerViolation < 0 || p.NoiseViolation < 0 ||
			math.IsNaN(p.Feasibility) || p.Feasibility < 0 {
			t.Errorf("iteration %d: negative/NaN violation fields: %+v", i, p)
		}
		if p.Eval.NodeVisits() <= 0 {
			t.Errorf("iteration %d: empty eval delta", i)
		}
	}

	// The per-iteration deltas partition the work: summed, they cannot
	// exceed the evaluator's cumulative counters (setup work before the
	// first iteration is outside the deltas).
	var sum int64
	for _, p := range prog {
		sum += p.Eval.NodeVisits()
	}
	if sum <= 0 {
		t.Fatalf("eval deltas sum to %d", sum)
	}
}

// TestEvalStatsSub pins the snapshot-delta helper field-by-field.
func TestEvalStatsSub(t *testing.T) {
	a := rc.EvalStats{FullRecomputes: 5, IncRecomputes: 3, ElectricalNodes: 100, UpstreamNodes: 7}
	b := rc.EvalStats{FullRecomputes: 2, IncRecomputes: 1, ElectricalNodes: 40, UpstreamNodes: 7}
	d := a.Sub(b)
	if d.FullRecomputes != 3 || d.IncRecomputes != 2 || d.ElectricalNodes != 60 || d.UpstreamNodes != 0 {
		t.Fatalf("Sub = %+v", d)
	}
	if z := a.Sub(a); z != (rc.EvalStats{}) {
		t.Fatalf("a.Sub(a) = %+v", z)
	}
}
