package core

import (
	"reflect"
	"testing"

	"repro/internal/rc"
)

// lockstepJobs builds K jobs over one shared mesh topology with spread
// delay bounds and spread iteration caps, so the solves finish after
// different iteration counts — the staggered-retirement schedule the gate
// must survive.
func lockstepJobs(t *testing.T, k int) ([]BatchJob, []Options) {
	t.Helper()
	g, cs := meshCircuit(t, 10, 6)
	base := meshOptions(t, g, cs, 60)
	jobs := make([]BatchJob, k)
	opts := make([]Options, k)
	for i := 0; i < k; i++ {
		opt := base
		opt.A0 = base.A0 * (0.9 + 0.07*float64(i))
		opt.MaxIterations = 20 + 13*i
		ev, err := rc.NewEvaluator(g, cs)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = BatchJob{Ev: ev, Options: opt}
		opts[i] = opt
	}
	return jobs, opts
}

// soloResults solves each job's options independently (fresh evaluator,
// plain Solver.Run) — the reference every lockstep replica must match bit
// for bit.
func soloResults(t *testing.T, jobs []BatchJob, opts []Options) []*Result {
	t.Helper()
	want := make([]*Result, len(jobs))
	for i := range jobs {
		ev, err := rc.NewEvaluator(jobs[i].Ev.Graph(), jobs[i].Ev.Couplings())
		if err != nil {
			t.Fatal(err)
		}
		sol, err := NewSolver(ev, opts[i])
		if err != nil {
			t.Fatal(err)
		}
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		sol.Close()
		want[i] = res
	}
	return want
}

// TestLockstepRetirementBitIdentical is the retirement oracle: K replicas
// with spread bounds converge after different iteration counts, so the
// gate shrinks round by round as solves retire — and every replica's
// Result must still equal its independent Solver.Run bit for bit, at
// every batched-pass width. This is the tentpole contract: lockstep is a
// scheduling change, never a numerical one.
func TestLockstepRetirementBitIdentical(t *testing.T) {
	jobs, opts := lockstepJobs(t, 5)
	want := soloResults(t, jobs, opts)

	// The spread bounds must actually stagger convergence, otherwise this
	// test never exercises Leave-with-pending-survivors.
	iters := map[int]bool{}
	for _, w := range want {
		iters[w.Iterations] = true
	}
	if len(iters) < 2 {
		t.Fatalf("all %d solves converged after the same iteration count %v — bounds spread too narrow to test retirement", len(want), want[0].Iterations)
	}

	for _, workers := range []int{1, 4} {
		results := SolveBatchOpt(jobs, BatchOptions{Workers: workers, Lockstep: true})
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if !reflect.DeepEqual(want[i], r.Result) {
				t.Errorf("workers=%d job %d: lockstep result diverged from solo solve (iters %d vs %d)",
					workers, i, r.Result.Iterations, want[i].Iterations)
			}
		}
	}
}

// TestLockstepLeavesJobEvaluatorsUntouched: lockstep solves run on
// replicas; the jobs' own evaluators must keep their pre-solve sizes.
func TestLockstepLeavesJobEvaluatorsUntouched(t *testing.T) {
	jobs, _ := lockstepJobs(t, 3)
	before := make([][]float64, len(jobs))
	for i := range jobs {
		before[i] = append([]float64(nil), jobs[i].Ev.X...)
	}
	for i, r := range SolveBatchOpt(jobs, BatchOptions{Lockstep: true}) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(before[i], jobs[i].Ev.X) {
			t.Errorf("job %d: lockstep solve mutated the job's evaluator", i)
		}
	}
}

// TestLockstepMixedTopologyFallsBack: jobs over different graphs cannot
// share a batch; SolveBatchOpt must fall back to the plain concurrent
// path and still return correct per-job results.
func TestLockstepMixedTopologyFallsBack(t *testing.T) {
	jobsA, optsA := lockstepJobs(t, 2)
	jobsB, optsB := lockstepJobs(t, 1) // separate meshCircuit call: distinct Graph pointer
	jobs := append(jobsA, jobsB...)
	opts := append(optsA, optsB...)
	want := soloResults(t, jobs, opts)
	for i, r := range SolveBatchOpt(jobs, BatchOptions{Lockstep: true}) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(want[i], r.Result) {
			t.Errorf("job %d: mixed-topology fallback diverged from solo solve", i)
		}
	}
}

// TestNewLockstepSolverRejectsBadReplica pins the range check.
func TestNewLockstepSolverRejectsBadReplica(t *testing.T) {
	g, cs := meshCircuit(t, 4, 2)
	ls, err := NewLockstep(g, cs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	opt := meshOptions(t, g, cs, 5)
	for _, rep := range []int{-1, 2, 7} {
		if _, err := NewLockstepSolver(ls, rep, opt); err == nil {
			t.Errorf("replica %d accepted, want range error", rep)
		}
	}
	if ls.Len() != 2 {
		t.Errorf("Len = %d, want 2", ls.Len())
	}
}
