package core

import (
	"sync"

	"repro/internal/fanout"
	"repro/internal/rc"
)

// BatchJob is one independent sizing problem for SolveBatch: an evaluator
// (each job must own its evaluator — solves mutate sizes in place) and the
// solver options to run it under.
type BatchJob struct {
	Ev      *rc.Evaluator
	Options Options
}

// BatchResult is the outcome of one BatchJob; exactly one field is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// SolveBatch runs Algorithm OGWS on every job concurrently, using at most
// workers goroutines (0 selects runtime.GOMAXPROCS(0)), and returns the
// results in job order. This is the driver for Table-1-style sweeps: many
// circuits or many specs of one circuit solved side by side.
//
// Parallelism composes across the two levels. A job whose Options.Workers
// is zero is solved with Workers == 1, so by default the batch level owns
// every core — for sweeps of similar-sized problems, one solver per core
// beats splitting each solver across cores, since the batch has no
// sequential dependencies at all. Set Options.Workers explicitly on a job
// to nest both levels (useful when one circuit dwarfs the rest).
//
// Each job is independent and produces the same bit-identical Result it
// would produce on its own, regardless of workers.
func SolveBatch(jobs []BatchJob, workers int) []BatchResult {
	results := make([]BatchResult, len(jobs))
	fanout.Each(len(jobs), workers, func(i int) {
		results[i] = solveOne(jobs[i])
	})
	return results
}

func solveOne(job BatchJob) BatchResult {
	opt := job.Options
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	sol, err := NewSolver(job.Ev, opt)
	if err != nil {
		return BatchResult{Err: err}
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		return BatchResult{Err: err}
	}
	return BatchResult{Result: res}
}

// BatchOptions configures SolveBatchOpt. The zero value reproduces
// SolveBatch(jobs, 0).
type BatchOptions struct {
	// Workers: without Lockstep, the batch-level goroutine cap as in
	// SolveBatch (0 = all cores). With Lockstep, the parallel width of the
	// shared batched evaluator passes (0 or 1 = serial); results are
	// bit-identical at every width either way.
	Workers int
	// Lockstep advances all jobs iteration-by-iteration through one shared
	// rc.Batch: every solver's LRS passes rendezvous into single levelized
	// rounds, amortizing per-level barriers across the whole batch, and
	// converged jobs retire without perturbing the others' bits. Requires
	// every job to share one evaluator topology (the same Graph and
	// Couplings values); mixed-topology batches fall back to the plain
	// concurrent path. Each job's Result is bitwise equal to its solo
	// solve. Unlike the plain path, lockstep solves run on replicas: the
	// jobs' own evaluators seed the replicas but are left untouched.
	Lockstep bool
}

// SolveBatchOpt is SolveBatch with explicit batch options; see
// BatchOptions.
func SolveBatchOpt(jobs []BatchJob, opt BatchOptions) []BatchResult {
	if !opt.Lockstep || len(jobs) == 0 {
		return SolveBatch(jobs, opt.Workers)
	}
	g, cs := jobs[0].Ev.Graph(), jobs[0].Ev.Couplings()
	for _, j := range jobs[1:] {
		if j.Ev.Graph() != g || j.Ev.Couplings() != cs {
			return SolveBatch(jobs, opt.Workers)
		}
	}
	results := make([]BatchResult, len(jobs))
	ls, err := NewLockstep(g, cs, len(jobs), opt.Workers)
	if err != nil {
		for i := range results {
			results[i] = BatchResult{Err: err}
		}
		return results
	}
	defer ls.Close()
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer ls.Leave()
			results[i] = solveLockstep(ls, i, jobs[i])
		}(i)
	}
	wg.Wait()
	return results
}

// solveLockstep runs one job on its lockstep replica, seeded with the
// job evaluator's current sizes (the same state solveOne would start
// from).
func solveLockstep(ls *Lockstep, rep int, job BatchJob) BatchResult {
	if err := ls.Ev(rep).SetSizes(job.Ev.X); err != nil {
		return BatchResult{Err: err}
	}
	sol, err := NewLockstepSolver(ls, rep, job.Options)
	if err != nil {
		return BatchResult{Err: err}
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		return BatchResult{Err: err}
	}
	return BatchResult{Result: res}
}
