package core

import (
	"repro/internal/fanout"
	"repro/internal/rc"
)

// BatchJob is one independent sizing problem for SolveBatch: an evaluator
// (each job must own its evaluator — solves mutate sizes in place) and the
// solver options to run it under.
type BatchJob struct {
	Ev      *rc.Evaluator
	Options Options
}

// BatchResult is the outcome of one BatchJob; exactly one field is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// SolveBatch runs Algorithm OGWS on every job concurrently, using at most
// workers goroutines (0 selects runtime.GOMAXPROCS(0)), and returns the
// results in job order. This is the driver for Table-1-style sweeps: many
// circuits or many specs of one circuit solved side by side.
//
// Parallelism composes across the two levels. A job whose Options.Workers
// is zero is solved with Workers == 1, so by default the batch level owns
// every core — for sweeps of similar-sized problems, one solver per core
// beats splitting each solver across cores, since the batch has no
// sequential dependencies at all. Set Options.Workers explicitly on a job
// to nest both levels (useful when one circuit dwarfs the rest).
//
// Each job is independent and produces the same bit-identical Result it
// would produce on its own, regardless of workers.
func SolveBatch(jobs []BatchJob, workers int) []BatchResult {
	results := make([]BatchResult, len(jobs))
	fanout.Each(len(jobs), workers, func(i int) {
		results[i] = solveOne(jobs[i])
	})
	return results
}

func solveOne(job BatchJob) BatchResult {
	opt := job.Options
	if opt.Workers == 0 {
		opt.Workers = 1
	}
	sol, err := NewSolver(job.Ev, opt)
	if err != nil {
		return BatchResult{Err: err}
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		return BatchResult{Err: err}
	}
	return BatchResult{Result: res}
}
