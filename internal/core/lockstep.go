// Lockstep multi-solve batching.
//
// A sweep, a Table-1 run, or a farm lease solves many near-identical
// instances of one circuit. Solo, each solve pays every evaluator pass —
// and on a parallel schedule every per-level barrier — K times over. A
// Lockstep runs K solvers against one rc.Batch instead: each solver's LRS
// submits its Recompute/UpstreamResistance as an operation to a rendezvous
// gate, and once every active solver has one pending the whole round
// executes as single batched passes over the shared topology. Converged
// solvers retire with Leave and the survivors keep lockstepping.
//
// The determinism contract is per replica and absolute: a lockstep solve
// is bit-identical to the same solve run solo. The batch passes are
// bit-identical to solo passes per replica (see rc.Batch), replica stripes
// are disjoint so round composition cannot couple solves, and the lockstep
// solver pins the already-pinned-equal execution mode knobs (Workers = 1,
// Incremental = false) whose every setting produces the same bits.
package core

import (
	"fmt"
	"sync"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/rc"
)

// lsOp is one pending gate operation: a replica's full Recompute,
// optionally fused with the UpstreamResistance pass that follows it in
// every LRS sweep. Fusing the two into one operation halves the number
// of rendezvous per sweep; the round still runs the recompute family
// before the upstream family, so the per-replica pass order is exactly
// the solo order.
type lsOp struct {
	rep      int
	upstream bool
	lambda   []float64
	dst      []float64
}

// Lockstep is the rendezvous gate K lockstep solvers advance through.
// Create with NewLockstep, attach solvers with NewLockstepSolver, and
// have every participant call Leave exactly once when its solve is done
// (converged, errored, or cancelled) so the survivors' rounds keep firing.
type Lockstep struct {
	b    *rc.Batch
	pool *pool

	mu     sync.Mutex
	cond   *sync.Cond
	active int
	pend   []lsOp
	gen    uint64
	rounds int64

	// Round scratch, reused across rounds (only touched under mu).
	reps    []int
	lambdas [][]float64
	dsts    [][]float64
}

// NewLockstep builds a K-replica lockstep gate over the circuit. workers
// is the parallel width of the shared batched passes (0 or 1 runs them
// serially; results are bit-identical at every width). All K replicas
// start active: pair each with a solver via NewLockstepSolver, run the
// solves on their own goroutines, and Leave each when done.
func NewLockstep(g *circuit.Graph, cs *coupling.Set, k, workers int) (*Lockstep, error) {
	b, err := rc.NewBatch(g, cs, k)
	if err != nil {
		return nil, err
	}
	return NewLockstepBatch(b, workers), nil
}

// NewLockstepBatch builds the lockstep gate over a caller-constructed
// batch — the hook the Monte-Carlo evaluator uses to lockstep K
// differently-perturbed replicas (rc.NewScaledBatch). The gate takes
// ownership of the batch's Runner slot; every replica starts active,
// exactly as in NewLockstep.
func NewLockstepBatch(b *rc.Batch, workers int) *Lockstep {
	l := &Lockstep{b: b, active: b.Len()}
	l.cond = sync.NewCond(&l.mu)
	if workers > 1 {
		l.pool = newPool(workers)
		b.SetRunner(l.pool.rcRunner())
	}
	return l
}

// Len returns the replica count K.
func (l *Lockstep) Len() int { return l.b.Len() }

// Ev returns replica rep's evaluator (see rc.Batch.Ev).
func (l *Lockstep) Ev(rep int) *rc.Evaluator { return l.b.Ev(rep) }

// Rounds returns how many batched rounds have executed so far.
func (l *Lockstep) Rounds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rounds
}

// Close releases the gate's worker goroutines (a no-op when the batched
// passes run serially).
func (l *Lockstep) Close() {
	if l.pool != nil {
		l.pool.close()
	}
}

// Leave retires one participant. If every remaining active participant
// already has an operation pending, their round fires now — a converged
// solve can never stall the survivors.
func (l *Lockstep) Leave() {
	l.mu.Lock()
	l.active--
	if l.active > 0 && len(l.pend) >= l.active {
		l.runRound()
	}
	l.mu.Unlock()
}

// rendezvous enqueues op and blocks until the round containing it has
// executed. The last active participant to arrive runs the round inline.
func (l *Lockstep) rendezvous(op lsOp) {
	l.mu.Lock()
	l.pend = append(l.pend, op)
	if len(l.pend) >= l.active {
		l.runRound()
		l.mu.Unlock()
		return
	}
	gen := l.gen
	for l.gen == gen {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// runRound executes every pending operation as batched passes — the
// plain recompute family first, then the fused sweep family through
// Batch.SweepAll — in arrival order within each family, and wakes the
// waiting participants. Called with mu held. Grouping is a scheduling
// decision only: the batch passes are bit-identical per replica
// regardless of which replicas share a round.
func (l *Lockstep) runRound() {
	l.reps = l.reps[:0]
	for _, op := range l.pend {
		if !op.upstream {
			l.reps = append(l.reps, op.rep)
		}
	}
	if len(l.reps) > 0 {
		l.b.RecomputeAll(l.reps)
	}
	l.reps = l.reps[:0]
	l.lambdas = l.lambdas[:0]
	l.dsts = l.dsts[:0]
	for _, op := range l.pend {
		if op.upstream {
			l.reps = append(l.reps, op.rep)
			l.lambdas = append(l.lambdas, op.lambda)
			l.dsts = append(l.dsts, op.dst)
		}
	}
	if len(l.reps) > 0 {
		l.b.SweepAll(l.reps, l.lambdas, l.dsts)
	}
	l.pend = l.pend[:0]
	l.rounds++
	l.gen++
	l.cond.Broadcast()
}

// recompute submits replica rep's full Recompute and waits for its round.
func (l *Lockstep) recompute(rep int) {
	l.rendezvous(lsOp{rep: rep})
}

// sweepPasses submits replica rep's per-sweep pass pair — a full
// Recompute fused with the UpstreamResistance that always follows it —
// as one operation, costing one rendezvous instead of two.
func (l *Lockstep) sweepPasses(rep int, lambda, dst []float64) {
	l.rendezvous(lsOp{rep: rep, upstream: true, lambda: lambda, dst: dst})
}

// NewLockstepSolver builds a Solver over the gate's replica rep whose LRS
// evaluator passes run through the lockstep rounds. The execution-mode
// knobs are pinned to the lockstep schedule — Workers to 1 (the replica's
// own solo calls stay serial; the shared batched passes carry the
// parallelism) and Incremental to false (every lockstep sweep is a full
// pass) — both of which are bit-identical to every other setting by the
// PR-1/PR-3 contracts, so the solve's result equals its solo-solver result
// under any options.
func NewLockstepSolver(l *Lockstep, rep int, opt Options) (*Solver, error) {
	if rep < 0 || rep >= l.Len() {
		return nil, fmt.Errorf("core: lockstep replica %d out of range [0,%d)", rep, l.Len())
	}
	opt.Workers = 1
	opt.Incremental = false
	s, err := NewSolver(l.Ev(rep), opt)
	if err != nil {
		return nil, err
	}
	s.ls, s.lsRep = l, rep
	return s, nil
}

// lrsLockstep is LRS on the lockstep schedule: the lrsFull loop with the
// evaluator pass pair of each sweep routed through the gate's batched
// rounds as one fused operation. Identical structure, identical
// arithmetic — the sweep counts, sizes, and break decisions match lrsFull
// bit for bit.
func (s *Solver) lrsLockstep() int {
	ev := s.ev
	g := ev.Graph()
	if !s.opt.WarmStart {
		// S1: start from the lower bounds.
		for i := 1; i < g.NumNodes()-1; i++ {
			if c := g.Comp(i); c.Kind.Sizable() {
				ev.X[i] = c.Lo
			}
		}
	}
	beta, gamma := s.lrsPrelude()
	sweeps := 0
	for sweeps < s.opt.LRSMaxSweeps {
		sweeps++
		// S2: downstream capacitances; S3: upstream resistances — one
		// fused gate operation, one rendezvous.
		s.ls.sweepPasses(s.lsRep, s.lambda, s.rup)
		// S4/S5: resize every component, repeat until no improvement.
		if s.resizeFull(beta, gamma) < s.opt.LRSTol {
			break
		}
	}
	s.ls.recompute(s.lsRep)
	return sweeps
}
