// Shard scheduler for the solver's per-node parallel loops.
//
// The Lagrangian decomposition makes every per-component quantity of one
// OGWS iteration independent once the multipliers are fixed: Theorem 5's
// closed-form resize reads only state frozen at the top of the sweep and
// writes only its own xᵢ, the merged node multipliers λᵢ are per-node sums,
// and the subgradient updates touch disjoint edge sets per head node. The
// pool below exploits exactly that structure: it splits an index range into
// contiguous shards, runs them on persistent worker goroutines, and leaves
// all cross-shard reduction to the caller so results can be made
// bit-identical to the single-worker path (max-reductions are exact under
// any grouping; sums are gathered into node-indexed scratch and folded in
// index order by the coordinator).
//
// The pool also backs the evaluator's levelized topological passes (via the
// rc.Runner hook): rc.Recompute and rc.UpstreamResistance hand it one
// contiguous depth-bucket range per topological level, so the formerly
// serial timing propagation shares the same workers, the same deterministic
// sharding, and the same bit-identity guarantee as the flat per-node loops.
package core

import (
	"runtime"
	"sync"

	"repro/internal/rc"
)

// grainSize is the smallest shard worth dispatching: below it the
// coordination cost (one channel round-trip per shard) exceeds the work, so
// run inlines the whole range on the calling goroutine instead.
const grainSize = 64

type poolJob struct {
	fn     func(shard, lo, hi int)
	shard  int
	lo, hi int
	wg     *sync.WaitGroup
}

// pool is a reusable fork-join scheduler. A pool with workers == 1 has no
// goroutines and runs everything inline, so the serial path is literally
// the parallel path with one shard. One caller at a time dispatches and
// waits; only the shard bodies run concurrently. close is the exception:
// it may race with a dispatch (the Solver's GC cleanup closes the pool
// from the runtime's cleanup goroutine while a dangling evaluator Runner
// could still be running), so the jobs field is guarded.
type pool struct {
	workers int

	mu   sync.RWMutex
	jobs chan poolJob // nil when inline-only (workers == 1 or closed)
}

// newPool creates a scheduler with the given concurrency; workers <= 0
// selects runtime.GOMAXPROCS(0).
func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{workers: workers}
	if workers > 1 {
		// Workers capture the channel value, never the field: close()
		// rewrites p.jobs from the coordinator goroutine.
		jobs := make(chan poolJob, workers)
		p.jobs = jobs
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					j.fn(j.shard, j.lo, j.hi)
					j.wg.Done()
				}
			}()
		}
	}
	return p
}

// parallel reports whether the pool owns worker goroutines.
func (p *pool) parallel() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.jobs != nil
}

// close releases the worker goroutines. Safe to call more than once and
// concurrently with a dispatch: in-flight shards drain before the channel
// closes, and afterwards the pool degrades to inline execution, so a
// dangling reference (e.g. an evaluator Runner installed by a collected
// Solver) stays correct.
func (p *pool) close() {
	p.mu.Lock()
	jobs := p.jobs
	p.jobs = nil
	p.mu.Unlock()
	if jobs != nil {
		close(jobs)
	}
}

// run partitions [lo, hi) into at most p.workers contiguous shards,
// executes fn(shard, shardLo, shardHi) for each, and returns the number of
// shards used once all have completed. Shard s always receives the s-th
// contiguous subrange, so per-shard scratch slots are deterministic. Ranges
// smaller than one grain per extra worker run inline as a single shard.
func (p *pool) run(lo, hi int, fn func(shard, lo, hi int)) int {
	n := hi - lo
	if n <= 0 {
		return 0
	}
	shards := p.workers
	if maxShards := (n + grainSize - 1) / grainSize; shards > maxShards {
		shards = maxShards
	}
	if shards > 1 {
		if done := p.dispatch(lo, hi, shards, fn); done {
			return shards
		}
	}
	fn(0, lo, hi)
	return 1
}

// dispatch fans the shards out to the workers and waits for them; it
// reports false when the pool is closed (caller runs inline). The read
// lock spans only the sends — they cannot block, since the channel buffer
// holds p.workers ≥ shards entries and the previous region fully drained —
// so a concurrent close waits at most for the enqueue, then the workers
// drain the queued shards before exiting.
func (p *pool) dispatch(lo, hi, shards int, fn func(shard, lo, hi int)) bool {
	p.mu.RLock()
	jobs := p.jobs
	if jobs == nil {
		p.mu.RUnlock()
		return false
	}
	n := hi - lo
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		jobs <- poolJob{
			fn:    fn,
			shard: s,
			lo:    lo + s*n/shards,
			hi:    lo + (s+1)*n/shards,
			wg:    &wg,
		}
	}
	p.mu.RUnlock()
	wg.Wait()
	return true
}

// rcRunner adapts the pool to the evaluator's Runner hook so Recompute's
// independent per-node passes and the level-by-level topological passes
// (stage loads, arrivals, upstream resistances) share the same workers.
func (p *pool) rcRunner() rc.Runner {
	return func(lo, hi int, fn func(lo, hi int)) {
		p.run(lo, hi, func(_, l, h int) { fn(l, h) })
	}
}
