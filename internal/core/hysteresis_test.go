package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/rc"
)

// denseCoupledEval builds a one-level mesh whose wires are all coupled to
// their neighbours: every sweep of a warm-started solve moves essentially
// every node (coupling ties each wire's Theorem-5 inputs to its
// neighbours), so the dirty set blows past the coneWorthwhile cutover
// sweep after sweep — the grid32x24 regression in miniature.
func denseCoupledEval(t testing.TB, width int) *rc.Evaluator {
	t.Helper()
	b := circuit.NewBuilder()
	wires := make([]int, width)
	for i := 0; i < width; i++ {
		d := b.AddDriver("D", 100+float64(i%5)*10)
		w := b.AddWire("w", 10+float64(i%3), 2, 0.1, 50+float64(i%7)*5, 1, 0.1, 10)
		g := b.AddGate("g", 20, 0.5, 3, 0.1, 10)
		w2 := b.AddWire("w2", 5, 1, 0.05, 25, 1, 0.1, 10)
		b.Connect(d, w)
		b.Connect(w, g)
		b.Connect(g, w2)
		b.MarkOutput(w2, 8)
		wires[i] = w
	}
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var pairs []coupling.Pair
	for i := 0; i+1 < width; i++ {
		pi, pj := id[wires[i]], id[wires[i+1]]
		if pi > pj {
			pi, pj = pj, pi
		}
		pairs = append(pairs, coupling.Pair{I: pi, J: pj, CTilde: 5, Dist: 2, Weight: 1})
	}
	cs, err := coupling.NewSet(pairs)
	if err != nil {
		t.Fatal(err)
	}
	return newEval(t, g, cs)
}

// denseOptions derives binding delay/noise bounds from a unit-size probe
// of the fixture (the benchmark scenarios' recipe), so the multipliers
// keep moving and every LRS call does real work.
func denseOptions(t testing.TB, mutate func(*Options)) Options {
	t.Helper()
	probe := denseCoupledEval(t, 10)
	probe.SetAllSizes(1)
	probe.Recompute()
	a0 := probe.MaxArrival()
	probe.SetAllSizes(0.1)
	probe.Recompute()
	noise := 1.25*probe.NoiseLinear() + probe.Couplings().ConstantOffset()
	opt := DefaultOptions(a0, noise, 0)
	opt.MaxIterations = 50
	opt.WarmStart = true
	if mutate != nil {
		mutate(&opt)
	}
	return opt
}

func solveDense(t *testing.T, mutate func(*Options)) (*Result, *Solver, *rc.Evaluator) {
	t.Helper()
	ev := denseCoupledEval(t, 10)
	sol, err := NewSolver(ev, denseOptions(t, mutate))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sol.Close)
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, sol, ev
}

// TestHysteresisBitIdentical is the headline-bugfix contract: on a
// dense-coupling solve the cutover hysteresis must trip, stop the
// dirty-set bookkeeping, and still reproduce — bit for bit — both the
// hysteresis-free incremental solve and the Incremental=false escape
// hatch. The revert is a scheduling decision, never a numerical one.
func TestHysteresisBitIdentical(t *testing.T) {
	trip, tripSol, tripEv := solveDense(t, func(o *Options) { o.CutoverHysteresis = 2 })
	if tripSol.HysteresisTrips() == 0 {
		t.Fatalf("dense-coupling solve never tripped the K=2 hysteresis (streak accounting broken)")
	}
	if tripSol.RevertedSweeps() == 0 {
		t.Fatalf("tripped solve recorded no reverted sweeps")
	}
	noHyst, noSol, noEv := solveDense(t, func(o *Options) { o.CutoverHysteresis = -1 })
	if noSol.HysteresisTrips() != 0 || noSol.RevertedSweeps() != 0 {
		t.Fatalf("disabled hysteresis still tripped: %d trips, %d reverted sweeps",
			noSol.HysteresisTrips(), noSol.RevertedSweeps())
	}
	full, _, _ := solveDense(t, func(o *Options) { o.Incremental = false })
	if !reflect.DeepEqual(trip, noHyst) {
		t.Errorf("hysteresis revert changed the result:\ntripped %+v\nno-hyst %+v", trip, noHyst)
	}
	if !reflect.DeepEqual(trip, full) {
		t.Errorf("hysteresis revert diverged from Incremental=false:\ntripped %+v\nfull    %+v", trip, full)
	}
	// The whole point: the tripped solve pays fewer incremental calls than
	// the hysteresis-free one (bookkeeping stops), while executing the
	// same sweeps.
	if tripEv.Stats().IncRecomputes >= noEv.Stats().IncRecomputes &&
		tripEv.Stats().DegradedRecomputes >= noEv.Stats().DegradedRecomputes {
		t.Errorf("tripped solve still paid full bookkeeping: %+v vs %+v", tripEv.Stats(), noEv.Stats())
	}
}

// TestHysteresisDoesNotTripOnLocalConvergence: the parallel-chains fixture
// converges by shrinking cones — exactly the workload the incremental
// engine exists for. The default K must leave it untouched, or the PR-3
// win evaporates.
func TestHysteresisDoesNotTripOnLocalConvergence(t *testing.T) {
	ev := parallelChains(t, 24)
	opt := DefaultOptions(45, 0, 0)
	opt.MaxIterations = 60
	opt.WarmStart = true
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	if _, err := sol.Run(); err != nil {
		t.Fatal(err)
	}
	if sol.HysteresisTrips() != 0 {
		t.Errorf("default hysteresis (K=%d) tripped on a cone-friendly solve after %d reverted sweeps",
			DefaultCutoverHysteresis, sol.RevertedSweeps())
	}
}

// TestRunFromSeedIndependentWithS1: without WarmStart the paper's S1 reset
// makes the OGWS trajectory independent of the evaluator's sizes, so
// RunFrom must be bit-identical to Run from any (valid) seed.
func TestRunFromSeedIndependentWithS1(t *testing.T) {
	ref, _, _ := solveDense(t, func(o *Options) { o.WarmStart = false })
	ev := denseCoupledEval(t, 10)
	seed := make([]float64, len(ev.X))
	g := ev.Graph()
	for i := range seed {
		if c := g.Comp(i); c.Kind.Sizable() {
			seed[i] = c.Lo + 0.37*(c.Hi-c.Lo)*float64(i%4)/3
		}
	}
	sol, err := NewSolver(ev, denseOptions(t, func(o *Options) { o.WarmStart = false }))
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.RunFrom(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res) {
		t.Errorf("RunFrom changed an S1-reset trajectory:\nrun     %+v\nrunFrom %+v", ref, res)
	}
}

// TestRunFromWarmStartIsPerturbation: seeding a WarmStart solve with its
// own minimizer must re-converge with no more work than the cold solve —
// the sweep engine's warm-start premise — and still match the full-pass
// oracle bit for bit at ActiveSetTol = 0.
func TestRunFromWarmStartIsPerturbation(t *testing.T) {
	cold, _, ev := solveDense(t, nil)
	sol, err := NewSolver(ev, denseOptions(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	warm, err := sol.RunFrom(cold.X)
	if err != nil {
		t.Fatal(err)
	}
	if warm.LRSSweepsTotal > cold.LRSSweepsTotal {
		t.Errorf("solve seeded at the minimizer used more sweeps than the cold solve: %d > %d",
			warm.LRSSweepsTotal, cold.LRSSweepsTotal)
	}
	// Oracle: the same warm-started solve with the escape hatch thrown.
	evFull := denseCoupledEval(t, 10)
	solFull, err := NewSolver(evFull, denseOptions(t, func(o *Options) { o.Incremental = false }))
	if err != nil {
		t.Fatal(err)
	}
	defer solFull.Close()
	warmFull, err := solFull.RunFrom(cold.X)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, warmFull) {
		t.Errorf("warm-started incremental solve diverged from its full-pass oracle:\ninc  %+v\nfull %+v", warm, warmFull)
	}
}

// TestRunFromRejectsBadSeeds: length and finiteness are checked before any
// size changes.
func TestRunFromRejectsBadSeeds(t *testing.T) {
	ev := denseCoupledEval(t, 4)
	sol, err := NewSolver(ev, denseOptions(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	if _, err := sol.RunFrom(make([]float64, 3)); err == nil {
		t.Error("short seed accepted")
	}
	bad := make([]float64, len(ev.X))
	for i := range bad {
		bad[i] = 1
	}
	g := ev.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		if g.Comp(i).Kind.Sizable() {
			bad[i] = math.NaN()
			break
		}
	}
	if _, err := sol.RunFrom(bad); err == nil {
		t.Error("NaN seed accepted")
	}
}

// TestOptionsNormalizationTable pins the validate() audit: every tolerance
// and count with a sane default falls back to it on zero/negative/NaN
// input, Workers normalizes to the all-cores sentinel, and the knobs with
// no substitute (A0, multiplier seeds) reject NaN outright.
func TestOptionsNormalizationTable(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*Options)
		check  func(Options) (got, want float64)
	}{
		{"epsilon-zero", func(o *Options) { o.Epsilon = 0 }, func(o Options) (float64, float64) { return o.Epsilon, 0.01 }},
		{"epsilon-nan", func(o *Options) { o.Epsilon = nan }, func(o Options) (float64, float64) { return o.Epsilon, 0.01 }},
		{"lrstol-nan", func(o *Options) { o.LRSTol = nan }, func(o Options) (float64, float64) { return o.LRSTol, 1e-7 }},
		{"lrstol-negative", func(o *Options) { o.LRSTol = -1 }, func(o Options) (float64, float64) { return o.LRSTol, 1e-7 }},
		{"damping-nan", func(o *Options) { o.LRSDamping = nan }, func(o Options) (float64, float64) { return o.LRSDamping, 0.7 }},
		{"damping-above-one", func(o *Options) { o.LRSDamping = 1.5 }, func(o Options) (float64, float64) { return o.LRSDamping, 0.7 }},
		{"activeset-nan", func(o *Options) { o.ActiveSetTol = nan }, func(o Options) (float64, float64) { return o.ActiveSetTol, 0 }},
		{"activeset-negative", func(o *Options) { o.ActiveSetTol = -2 }, func(o Options) (float64, float64) { return o.ActiveSetTol, 0 }},
		{"polyak-nan", func(o *Options) { o.PolyakTheta = nan }, func(o Options) (float64, float64) { return o.PolyakTheta, 1 }},
		{"polyak-high", func(o *Options) { o.PolyakTheta = 2 }, func(o Options) (float64, float64) { return o.PolyakTheta, 1 }},
		{"workers-negative", func(o *Options) { o.Workers = -7 }, func(o Options) (float64, float64) { return float64(o.Workers), 0 }},
		{"hysteresis-default", func(o *Options) { o.CutoverHysteresis = 0 }, func(o Options) (float64, float64) {
			return float64(o.CutoverHysteresis), DefaultCutoverHysteresis
		}},
		{"hysteresis-disabled", func(o *Options) { o.CutoverHysteresis = -1 }, func(o Options) (float64, float64) {
			return float64(o.CutoverHysteresis), -1
		}},
		{"hysteresis-explicit", func(o *Options) { o.CutoverHysteresis = 5 }, func(o Options) (float64, float64) {
			return float64(o.CutoverHysteresis), 5
		}},
		{"maxiter-negative", func(o *Options) { o.MaxIterations = -1 }, func(o Options) (float64, float64) {
			return float64(o.MaxIterations), 1000
		}},
		{"sweeps-negative", func(o *Options) { o.LRSMaxSweeps = -1 }, func(o Options) (float64, float64) {
			return float64(o.LRSMaxSweeps), 200
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions(50, 0, 0)
			tc.mutate(&opt)
			if err := opt.validate(); err != nil {
				t.Fatalf("validate rejected a normalizable option: %v", err)
			}
			if got, want := tc.check(opt); got != want {
				t.Errorf("normalized to %g, want %g", got, want)
			}
		})
	}
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"a0-nan", func(o *Options) { o.A0 = nan }},
		{"a0-zero", func(o *Options) { o.A0 = 0 }},
		{"initmult-nan", func(o *Options) { o.InitMultiplier = nan }},
		{"initbeta-nan", func(o *Options) { o.InitBeta = nan }},
		{"initgamma-negative", func(o *Options) { o.InitGamma = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions(50, 0, 0)
			tc.mutate(&opt)
			if err := opt.validate(); err == nil {
				t.Error("validate accepted an unrecoverable option")
			}
		})
	}
}

// TestPerNetNaNBoundRejected: a NaN per-net bound slides through a plain
// <= 0 check; NewSolver must reject it like the other bad bounds.
func TestPerNetNaNBoundRejected(t *testing.T) {
	g, id, cs := coupledVictim(t)
	opt := DefaultOptions(120, 18, 0)
	opt.PerNetNoiseBounds = map[int]float64{id["w1"]: math.NaN()}
	if _, err := NewSolver(newEval(t, g, cs), opt); err == nil {
		t.Error("NaN per-net noise bound accepted")
	}
}

// TestRunFromDualConvergesFaster: re-solving from a neighbour's primal
// AND dual state must certify convergence in no more iterations than the
// cold ascent — the sweep engine's cells/sec win — and reproduce a valid
// result.
func TestRunFromDualConvergesFaster(t *testing.T) {
	// A noise bound at 1.5× the floor converges; the tighter hysteresis
	// fixture bound does not in any iteration budget.
	loosen := func(o *Options) { o.MaxIterations = 400; o.NoiseBound *= 1.2 }
	cold, sol, _ := solveDense(t, loosen)
	if !cold.Converged {
		t.Fatalf("cold dense solve did not converge in 400 iterations (gap %g)", cold.Gap)
	}
	dual := sol.DualState()
	if dual == nil {
		t.Fatal("DualState nil after Run")
	}
	ev := denseCoupledEval(t, 10)
	loX := append([]float64(nil), ev.X...) // the cold solve's starting point
	sol2, err := NewSolver(ev, denseOptions(t, loosen))
	if err != nil {
		t.Fatal(err)
	}
	defer sol2.Close()
	if sol2.DualState() != nil {
		t.Error("DualState non-nil before the first Run")
	}
	warm, err := sol2.RunFromDual(cold.X, dual)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatalf("dual-seeded solve did not converge (gap %g)", warm.Gap)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("dual-seeded solve took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
	// One-shot seed: re-solving from the cold starting point (sizes reset,
	// no dual) must replay the cold trajectory exactly — the PR-1 re-Run
	// idempotency with the seeding path in the loop.
	again, err := sol2.RunFromDual(loX, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Errorf("re-Run after RunFromDual diverged from the cold trajectory")
	}
}

// TestRunFromDualRejectsForeignState: a snapshot from a different circuit
// must be rejected before it can corrupt the multipliers.
func TestRunFromDualRejectsForeignState(t *testing.T) {
	_, sol, _ := solveDense(t, nil)
	dual := sol.DualState()
	g, _ := chain(t)
	other, err := NewSolver(newEval(t, g, emptySet(t)), DefaultOptions(50, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	seed := make([]float64, g.NumNodes())
	if _, err := other.RunFromDual(seed, dual); err == nil {
		t.Error("foreign dual state accepted")
	}
}
