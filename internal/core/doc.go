// Package core implements the paper's primary contribution: optimal area
// minimization under crosstalk (noise), delay, and power constraints by
// simultaneous gate and wire sizing, using Lagrangian relaxation
// (Section 4).
//
// The problem P̃ solved here is
//
//	minimize   Σ αᵢxᵢ
//	subject to aⱼ ≤ A0                    (j feeding the sink)
//	           aⱼ + Dᵢ ≤ aᵢ               (component edges)
//	           Dᵢ ≤ aᵢ                    (drivers)
//	           Σ cᵢ ≤ P′                  (power, P′ = P_B/V²f)
//	           Σ wᵢⱼ·ĉᵢⱼ(xᵢ+xⱼ) ≤ X′     (crosstalk, X′ = X_B − Σ wᵢⱼc̃ᵢⱼ)
//	           Lᵢ ≤ xᵢ ≤ Uᵢ.
//
// Solver.Run is Algorithm OGWS (Figure 9): a projected subgradient ascent
// on the Lagrangian dual whose inner subproblem LRS (Figure 8) is solved by
// greedy sweeps of Theorem 5's closed-form optimal resizing
//
//	optᵢ = √( λᵢ·r̂ᵢ·(C′ᵢ + Σ_{j∈N(i)} wᵢⱼĉᵢⱼxⱼ)
//	        / (αᵢ + (β+Rᵢ)·ĉᵢ + γ·Σ_{j∈N(i)} wᵢⱼĉᵢⱼ) ).
//
// # Execution modes and invariants
//
// One solve is parallel (Options.Workers shards every per-node loop onto
// a reusable worker pool, and installs the levelized Runner on the
// evaluator) and incremental (Options.Incremental runs LRS on the
// dirty-cone/active-set engine, skipping work only where re-running a
// body could not change a single bit). Both knobs are scheduling only:
// results are bit-identical at every Workers width and in both
// incremental modes, the invariant the golden fixtures, the property
// suites, and FuzzIncremental all enforce with exact comparisons. The
// cutover hysteresis (Options.CutoverHysteresis, default
// DefaultCutoverHysteresis) reverts one Run to the full-pass schedule
// after K consecutive coneWorthwhile-cutover degrades — a pure
// scheduling decision for densely coupled circuits, again changing no
// bits (HysteresisTrips/RevertedSweeps expose the accounting).
//
// # Warm starts
//
// RunFrom seeds the sizes through rc.SetSizes, so a near-solution seed (a
// neighbouring bounds cell, an ECO) reaches the dirty-cone engine as a
// small perturbation; RunFromDual additionally seeds the multipliers from
// a DualState snapshot of a prior Run, starting the ascent beside the
// dual optimum — the half that actually shortens OGWS, since the
// trajectory is driven by the multipliers. With Options.WarmStart false
// (the paper-faithful S1 reset) the trajectory is independent of the size
// seed, so RunFrom is bit-identical to Run from any seed — the
// seed-independence contract the sweep engine's warm-vs-cold oracle and
// the sizing service's tests pin. DualState serializes to JSON exactly
// (shortest round-trip floats), so saved solves can warm-start new ones
// across process boundaries.
package core
