package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
	"repro/internal/rc"
)

// meshCircuit builds a deterministic width×layers gate/wire mesh with
// neighbour couplings — a mid-size instance (hundreds of nodes) that
// exercises fan-in > 1, fan-out > 1, coupled wires, and enough components
// for the pool to shard for real.
func meshCircuit(t testing.TB, width, layers int) (*circuit.Graph, *coupling.Set) {
	t.Helper()
	b := circuit.NewBuilder()
	prev := make([]int, width)
	for i := 0; i < width; i++ {
		prev[i] = b.AddDriver("D", 80+float64(7*i%40))
	}
	wires := make([][]int, layers) // builder ids, per layer
	for l := 0; l < layers; l++ {
		wires[l] = make([]int, width)
		for i := 0; i < width; i++ {
			w := b.AddWire("w",
				8+float64((l*7+i*3)%13),    // rUnit
				1+0.5*float64((i+l)%4),     // cUnit
				0.05+0.01*float64(i%5),     // fringe
				30+float64((l*11+i*17)%60), // length
				1, 0.1, 10)
			b.Connect(prev[i], w)
			wires[l][i] = w
		}
		for i := 0; i < width; i++ {
			g := b.AddGate("g",
				15+float64((l*5+i*2)%20), // rUnit
				0.4+0.1*float64((l+i)%3), // cUnit
				2+float64((i*3+l)%5),     // areaCoeff
				0.1, 10)
			b.Connect(wires[l][i], g)
			b.Connect(wires[l][(i+1)%width], g)
			prev[i] = g
		}
	}
	for i := 0; i < width; i++ {
		w := b.AddWire("wo", 6, 1, 0.05, 25, 1, 0.1, 10)
		b.Connect(prev[i], w)
		b.MarkOutput(w, 4+float64(i%3))
	}
	g, id, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var pairs []coupling.Pair
	for l := 0; l < layers; l++ {
		for i := 0; i+1 < width; i++ {
			pi, pj := id[wires[l][i]], id[wires[l][i+1]]
			if pi > pj {
				pi, pj = pj, pi
			}
			pairs = append(pairs, coupling.Pair{
				I: pi, J: pj,
				CTilde: 2 + float64((l+i)%5),
				Dist:   2 + 0.2*float64(i%3),
				Weight: 0.5 + 0.5*float64((i+l)%2),
			})
		}
	}
	cs, err := coupling.NewSet(pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g, cs
}

// meshOptions derives a binding-but-feasible option set for the mesh:
// delay held at the uniform-size level, noise and power capped above the
// all-minimum floor, plus per-net bounds on one coupled wire per layer.
func meshOptions(t testing.TB, g *circuit.Graph, cs *coupling.Set, maxIter int) Options {
	t.Helper()
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetAllSizes(1)
	ev.Recompute()
	a0 := ev.MaxArrival()
	ev.SetAllSizes(0.1)
	ev.Recompute()
	opt := DefaultOptions(a0, 1.6*ev.NoiseLinear()+cs.ConstantOffset(), 1.5*ev.TotalCap())
	opt.MaxIterations = maxIter
	opt.KeepHistory = true
	opt.PerNetNoiseBounds = map[int]float64{}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Comp(i).Kind == circuit.Wire && len(cs.Neighbors(i)) > 0 {
			if len(opt.PerNetNoiseBounds) < 8 {
				opt.PerNetNoiseBounds[i] = 1.4 * (ev.CHat[i]*ev.X[i] + ev.CNbr[i])
			}
		}
	}
	return opt
}

func solveMesh(t testing.TB, g *circuit.Graph, cs *coupling.Set, opt Options, workers int) *Result {
	t.Helper()
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = workers
	sol, err := NewSolver(ev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPoolRunPartition checks the scheduler's contract: every index in
// [lo, hi) is visited exactly once, shard ids are dense, and a closed pool
// degrades to inline execution.
func TestPoolRunPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		p := newPool(workers)
		for _, span := range [][2]int{{0, 1}, {3, 17}, {0, 1000}, {5, 5}} {
			lo, hi := span[0], span[1]
			visited := make([]int32, hi+1)
			var mu sync.Mutex
			maxShard := -1
			shards := p.run(lo, hi, func(shard, slo, shi int) {
				mu.Lock()
				if shard > maxShard {
					maxShard = shard
				}
				mu.Unlock()
				for i := slo; i < shi; i++ {
					visited[i]++ // shards are disjoint: no two touch the same i
				}
			})
			if hi > lo && shards != maxShard+1 {
				t.Errorf("workers=%d [%d,%d): run returned %d shards, saw max id %d", workers, lo, hi, shards, maxShard)
			}
			for i := lo; i < hi; i++ {
				if visited[i] != 1 {
					t.Fatalf("workers=%d [%d,%d): index %d visited %d times", workers, lo, hi, i, visited[i])
				}
			}
		}
		p.close()
		p.close() // idempotent
		if got := p.run(0, 10, func(shard, lo, hi int) {}); got != 1 {
			t.Errorf("closed pool ran %d shards, want 1 (inline)", got)
		}
	}
}

// TestWorkersBitIdentical is the determinism guarantee: the sharded solver
// must reproduce the serial solver's Result bit for bit, for any worker
// count, on a mid-size coupled instance with every constraint class active
// (delay, power, global noise, per-net noise).
func TestWorkersBitIdentical(t *testing.T) {
	g, cs := meshCircuit(t, 12, 10)
	opt := meshOptions(t, g, cs, 60)
	ref := solveMesh(t, g, cs, opt, 1)
	for _, workers := range []int{2, 3, 8} {
		res := solveMesh(t, g, cs, opt, workers)
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("Workers=%d diverged from Workers=1", workers)
			if ref.Iterations != res.Iterations {
				t.Errorf("  iterations %d vs %d", ref.Iterations, res.Iterations)
			}
			if ref.Area != res.Area {
				t.Errorf("  area %.17g vs %.17g", ref.Area, res.Area)
			}
			for i := range ref.X {
				if ref.X[i] != res.X[i] {
					t.Errorf("  first size mismatch at node %d: %.17g vs %.17g", i, ref.X[i], res.X[i])
					break
				}
			}
		}
	}
}

// TestParallelMatchesSerialOnFixtures re-runs the package's existing small
// fixtures under the pool and demands exact Result equality with the
// serial path.
func TestParallelMatchesSerialOnFixtures(t *testing.T) {
	run := func(g *circuit.Graph, cs *coupling.Set, opt Options, workers int) *Result {
		ev := newEval(t, g, cs)
		opt.Workers = workers
		sol, err := NewSolver(ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer sol.Close()
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	chainG, _ := chain(t)
	victimG, _, victimCS := coupledVictim(t)
	cases := []struct {
		name string
		g    *circuit.Graph
		cs   *coupling.Set
		opt  Options
	}{
		{"chain-delay", chainG, emptySet(t), DefaultOptions(2.0, 0, 0)},
		{"chain-power", chainG, emptySet(t), DefaultOptions(2.0, 0, 100)},
		{"victim-noise", victimG, victimCS, DefaultOptions(3.0, 20, 0)},
	}
	for _, tc := range cases {
		tc.opt.KeepHistory = true
		ref := run(tc.g, tc.cs, tc.opt, 1)
		for _, workers := range []int{4} {
			if res := run(tc.g, tc.cs, tc.opt, workers); !reflect.DeepEqual(ref, res) {
				t.Errorf("%s: Workers=%d diverged from serial (area %.17g vs %.17g, iters %d vs %d)",
					tc.name, workers, ref.Area, res.Area, ref.Iterations, res.Iterations)
			}
		}
	}
}

// TestSolveBatch checks the batch driver: results arrive in job order,
// match standalone solves exactly, and per-job errors don't poison the
// rest of the batch.
func TestSolveBatch(t *testing.T) {
	g, _ := chain(t)
	bounds := []float64{1.8, 2.0, 2.5, 3.0}
	jobs := make([]BatchJob, 0, len(bounds)+1)
	for _, a0 := range bounds {
		jobs = append(jobs, BatchJob{Ev: newEval(t, g, emptySet(t)), Options: DefaultOptions(a0, 0, 0)})
	}
	jobs = append(jobs, BatchJob{Ev: newEval(t, g, emptySet(t)), Options: Options{A0: -1}}) // invalid

	results := SolveBatch(jobs, 3)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, a0 := range bounds {
		if results[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, results[i].Err)
		}
		ev := newEval(t, g, emptySet(t))
		sol, err := NewSolver(ev, DefaultOptions(a0, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		want, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		sol.Close()
		if !reflect.DeepEqual(want, results[i].Result) {
			t.Errorf("job %d (A0=%g): batch result diverged from standalone solve", i, a0)
		}
	}
	last := results[len(results)-1]
	if last.Err == nil || last.Result != nil {
		t.Errorf("invalid job: want error-only result, got %+v", last)
	}
}

// TestParallelRaceStress drives every sharded code path hard under the
// race detector (go test -race): a mid-size coupled solve with all
// constraint classes active at high worker counts, solvers running
// concurrently via SolveBatch, and reuse of one solver after Close.
func TestParallelRaceStress(t *testing.T) {
	g, cs := meshCircuit(t, 14, 8)
	opt := meshOptions(t, g, cs, 25)

	res8 := solveMesh(t, g, cs, opt, 8)
	if res8.Iterations == 0 || math.IsNaN(res8.Area) {
		t.Fatalf("stress solve produced no work: %+v", res8)
	}

	jobs := make([]BatchJob, 6)
	for i := range jobs {
		ev, err := rc.NewEvaluator(g, cs)
		if err != nil {
			t.Fatal(err)
		}
		o := opt
		o.Workers = 2 // nested: batch × solver parallelism
		o.A0 *= 1 + 0.05*float64(i)
		jobs[i] = BatchJob{Ev: ev, Options: o}
	}
	for i, r := range SolveBatch(jobs, 3) {
		if r.Err != nil {
			t.Fatalf("batch job %d: %v", i, r.Err)
		}
	}

	// Close mid-life: the solver must degrade to serial, not crash, and
	// keep producing the same numbers.
	ev, err := rc.NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	o := opt
	o.Workers = 4
	sol, err := NewSolver(ev, o)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	sol.Close()
	after, err := sol.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Error("solver diverged after Close (serial fallback not bit-identical)")
	}
}
