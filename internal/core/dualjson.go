package core

// DualState serialization. A Result is already plain exported data that
// encoding/json round-trips bitwise (shortest round-trippable float64
// representation), but the dual half of a warm start — the multiplier
// snapshot — is opaque. The JSON form below makes a saved solve fully
// externalizable: a service can hand a client (sizes, dual) and accept
// them back later to warm-start a related solve, and the round trip is
// exact because every multiplier is a finite float64.

import (
	"encoding/json"
	"fmt"
	"math"
)

// dualStateWire is the serialized form of a DualState: the per-edge
// timing multipliers indexed like Graph.In, the scalar power/noise
// multipliers, and the optional per-net γᵥ vector.
type dualStateWire struct {
	Edge   [][]float64 `json:"edge"`
	Beta   float64     `json:"beta"`
	Gamma  float64     `json:"gamma"`
	GammaV []float64   `json:"gamma_v,omitempty"`
}

// MarshalJSON encodes the snapshot. Floats use the shortest
// round-trippable representation, so Unmarshal reproduces every
// multiplier bit for bit.
func (d *DualState) MarshalJSON() ([]byte, error) {
	return json.Marshal(dualStateWire{Edge: d.edge, Beta: d.beta, Gamma: d.gamma, GammaV: d.gammaV})
}

// UnmarshalJSON decodes a snapshot produced by MarshalJSON, rejecting
// multipliers no valid ascent can produce (negative, NaN, or infinite) —
// a poisoned multiplier would silently corrupt every size of the warmed
// solve. Shape validation against the target circuit happens later, in
// RunFromDual.
func (d *DualState) UnmarshalJSON(data []byte) error {
	var w dualStateWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	// The error labels are formatted only on the failure path: a large
	// circuit's snapshot carries tens of thousands of edge multipliers
	// and the happy path must stay allocation-free.
	fail := func(what string, i int, v float64) error {
		if i >= 0 {
			what = fmt.Sprintf("%s[%d]", what, i)
		}
		return fmt.Errorf("core: dual state %s multiplier must be finite and non-negative, got %g", what, v)
	}
	if bad(w.Beta) {
		return fail("beta", -1, w.Beta)
	}
	if bad(w.Gamma) {
		return fail("gamma", -1, w.Gamma)
	}
	for i, e := range w.Edge {
		for _, v := range e {
			if bad(v) {
				return fail("edge", i, v)
			}
		}
	}
	for i, v := range w.GammaV {
		if bad(v) {
			return fail("gamma_v", i, v)
		}
	}
	d.edge, d.beta, d.gamma, d.gammaV = w.Edge, w.Beta, w.Gamma, w.GammaV
	return nil
}
