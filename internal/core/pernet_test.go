package core

import (
	"math"
	"testing"
)

// TestPerNetNoiseBound exercises the distributed-crosstalk extension the
// paper sketches in Section 4.1: bounding one victim wire's own coupling
// (rather than the circuit total) must shrink that wire while the delay
// target is still met via the gate.
func TestPerNetNoiseBound(t *testing.T) {
	g, id, cs := coupledVictim(t)
	const a0 = 3.0
	// Reference: delay-only sizing establishes the natural per-net level.
	ev1 := newEval(t, g, cs)
	sol1, err := NewSolver(ev1, DefaultOptions(a0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := sol1.Run()
	if err != nil {
		t.Fatal(err)
	}
	w1 := id["w1"]
	// N_v at the delay-only solution (ĉ·(x_v + x_nbr), one pair here).
	p := cs.Pairs()[0]
	natural := p.Weight * p.CHat() * (res1.X[p.I] + res1.X[p.J])
	if natural <= 0 {
		t.Fatal("bad reference per-net noise")
	}

	opt := DefaultOptions(a0, 0, 0)
	opt.PerNetNoiseBounds = map[int]float64{w1: 0.7 * natural}
	ev2 := newEval(t, g, cs)
	sol2, err := NewSolver(ev2, opt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sol2.Run()
	if err != nil {
		t.Fatal(err)
	}
	finalN := p.Weight * p.CHat() * (res2.X[p.I] + res2.X[p.J])
	if finalN > 0.7*natural*1.03 {
		t.Errorf("per-net noise %g exceeds bound %g", finalN, 0.7*natural)
	}
	if res2.DelayPs > a0*1.03 {
		t.Errorf("delay %g exceeds bound %g under per-net constraint", res2.DelayPs, a0)
	}
	if res2.X[w1] >= res1.X[w1] {
		t.Errorf("victim wire did not shrink: %g -> %g", res1.X[w1], res2.X[w1])
	}
	if res2.PerNetNoiseViolation > 0.03*0.7*natural {
		t.Errorf("reported per-net violation %g too large", res2.PerNetNoiseViolation)
	}
}

// TestPerNetComposesWithGlobal verifies per-net and global noise bounds
// can be active together.
func TestPerNetComposesWithGlobal(t *testing.T) {
	g, id, cs := coupledVictim(t)
	const a0 = 3.0
	ev1 := newEval(t, g, cs)
	sol1, err := NewSolver(ev1, DefaultOptions(a0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := sol1.Run()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(a0, 0.8*res1.NoiseLinFF+cs.ConstantOffset(), 0)
	opt.PerNetNoiseBounds = map[int]float64{id["w1"]: 0.75 * res1.NoiseLinFF}
	ev2 := newEval(t, g, cs)
	sol2, err := NewSolver(ev2, opt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sol2.Run()
	if err != nil {
		t.Fatal(err)
	}
	xPrime, _ := sol2.Bounds()
	if res2.NoiseLinFF > xPrime*1.03 {
		t.Errorf("global noise %g exceeds X' %g", res2.NoiseLinFF, xPrime)
	}
	if res2.PerNetNoiseViolation > 0.03*0.75*res1.NoiseLinFF {
		t.Errorf("per-net violation %g with composed bounds", res2.PerNetNoiseViolation)
	}
}

func TestPerNetBoundValidation(t *testing.T) {
	g, id, cs := coupledVictim(t)
	cases := []struct {
		name   string
		bounds map[int]float64
	}{
		{"gate node", map[int]float64{id["g"]: 1}},
		{"uncoupled wire", map[int]float64{id["w2"]: 1}},
		{"non-positive", map[int]float64{id["w1"]: 0}},
		{"out of range", map[int]float64{-3: 1}},
	}
	for _, c := range cases {
		opt := DefaultOptions(3.0, 0, 0)
		opt.PerNetNoiseBounds = c.bounds
		ev := newEval(t, g, cs)
		if _, err := NewSolver(ev, opt); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestPerNetLooseBoundInactive: a generous per-net bound must not change
// the delay-only solution.
func TestPerNetLooseBoundInactive(t *testing.T) {
	g, id, cs := coupledVictim(t)
	const a0 = 3.0
	run := func(bounds map[int]float64) *Result {
		opt := DefaultOptions(a0, 0, 0)
		opt.PerNetNoiseBounds = bounds
		ev := newEval(t, g, cs)
		sol, err := NewSolver(ev, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sol.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	loose := run(map[int]float64{id["w1"]: 1e9})
	if math.Abs(base.Area-loose.Area) > 0.02*base.Area {
		t.Errorf("loose per-net bound changed the solution: %g vs %g", base.Area, loose.Area)
	}
}
