package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/circuit"
	"repro/internal/lagrange"
	"repro/internal/rc"
)

// Options configures the OGWS solver. The zero value is not valid: A0 must
// be positive; use DefaultOptions for sensible defaults.
type Options struct {
	// A0 is the arrival-time bound at every primary output, in ps.
	A0 float64
	// NoiseBound is X_B in fF, the bound on total (weighted) coupling
	// capacitance Σ wᵢⱼ·cᵢⱼ. Zero or negative disables the crosstalk
	// constraint (γ stays 0, reducing OGWS to delay/power-only LR sizing).
	NoiseBound float64
	// PowerCapBound is P′ in fF: the power bound after dividing by V²f
	// (use tech.Params.CapForPower to convert from mW). Zero or negative
	// disables the power constraint.
	PowerCapBound float64
	// PerNetNoiseBounds implements the extension the paper sketches in
	// Section 4.1: a distributed crosstalk bound per net. The map assigns
	// wire nodes v a bound X′_v on their own linear coupling
	// Σ_{j∈N(v)} wᵥⱼ·ĉᵥⱼ(x_v+x_j), each carrying its own multiplier γᵥ.
	// Composes freely with the global NoiseBound. Keys must be wire nodes
	// with at least one coupling pair; bounds must be positive.
	PerNetNoiseBounds map[int]float64
	// Epsilon is the relative duality-gap stopping threshold (paper: 1%).
	Epsilon float64
	// MaxIterations bounds the outer OGWS iterations.
	MaxIterations int
	// Step is the subgradient step schedule ρₖ.
	Step lagrange.Schedule
	// InitMultiplier seeds every edge multiplier before the initial
	// projection; InitBeta and InitGamma seed the scalar multipliers.
	InitMultiplier, InitBeta, InitGamma float64
	// LRSMaxSweeps bounds the inner greedy sweeps per OGWS iteration;
	// LRSTol is the max relative size change that counts as "no
	// improvement" (Figure 8, S5).
	LRSMaxSweeps int
	LRSTol       float64
	// LRSDamping blends each resize in log space:
	// x ← x^(1−ω)·optᵢ^ω with ω = LRSDamping ∈ (0,1]. ω = 1 is the
	// paper's pure update, which can oscillate under the Jacobi sweep;
	// any ω keeps the same fixed point (Theorem 5's optᵢ).
	LRSDamping float64
	// WarmStart keeps the previous iteration's sizes as the LRS starting
	// point instead of the paper's S1 reset to the lower bounds. The
	// subproblem has a unique optimum (posynomial ⇒ convex after the log
	// transform), so both reach it; warm starts just take fewer sweeps.
	WarmStart bool
	// RelativeViolations normalizes every subgradient component by its
	// bound, making one step scale work across circuit sizes.
	RelativeViolations bool
	// Polyak switches the step size to the adaptive Polyak rule
	// ρₖ = θ·(f̂ − D(λₖ))/‖h‖², where f̂ is the best feasible area seen so
	// far (estimated from the current iterate before one exists), D the
	// current dual value, and ‖h‖² the squared norm of the normalized
	// active subgradient. Self-scaling: converges in far fewer iterations
	// than the classic diminishing schedule and needs no tuning. When
	// false, Step is used as in the paper's A4.
	Polyak bool
	// PolyakTheta is the relaxation factor θ ∈ (0, 2); default 1.
	PolyakTheta float64
	// Workers is the number of goroutines used for the solver's per-node
	// parallel loops (the LRS resize sweep, the evaluator's independent
	// Recompute passes, multiplier node sums, subgradient steps, and
	// gradient norms) and for the evaluator's levelized topological passes
	// (stage loads, arrival times, upstream resistances), which run depth
	// bucket by depth bucket across the same pool. 0 selects
	// runtime.GOMAXPROCS(0); 1 runs serially. Every reduction is
	// deterministic — maxima are exact under any grouping and sums are
	// folded in node order from per-node scratch — so results are
	// bit-identical for every Workers setting.
	Workers int
	// Incremental enables dirty-cone evaluation and active-set sweeps
	// inside LRS: between sweeps the evaluator refreshes only the forward/
	// backward cones of the sizes that actually moved
	// (rc.RecomputeIncremental / rc.UpstreamResistanceIncremental), and the
	// Theorem-5 resize skips nodes that reached a bitwise fixed point until
	// a neighbour's change reactivates them. With ActiveSetTol = 0 (the
	// default) results are bit-identical to the full passes — a node is
	// skipped only when re-running its body could not change a single bit —
	// so the golden fixtures hold in either mode. False is the escape
	// hatch: every sweep runs the full passes of the paper's Figure 8.
	// DefaultOptions turns it on.
	Incremental bool
	// ActiveSetTol is the per-node relative movement at or below which an
	// active-set sweep deactivates a node (Incremental only). 0 deactivates
	// only bitwise-stationary nodes, preserving exactness; larger values
	// prune harder and trade last-bits accuracy for speed (the final
	// metrics are still evaluated by a full pass on the actual sizes).
	ActiveSetTol float64
	// CutoverHysteresis is K, the number of consecutive LRS sweeps whose
	// incremental refresh degraded past the coneWorthwhile cutover after
	// which one Run stops paying dirty-set bookkeeping altogether and
	// reverts to the full-pass path for the remainder of the solve
	// (equivalent to Incremental = false from that sweep on). On densely
	// coupled circuits nearly every sweep blows past the cutover, so the
	// bookkeeping buys nothing and previously cost ~10% wall-clock; a
	// cutover streak is the cheap, reliable signal of that regime, and
	// since a degraded sweep runs the (bit-identical) full passes anyway,
	// the revert is purely a scheduling decision — results do not change by
	// a single bit. The streak resets whenever a refresh walks a cone, and
	// the pre-first-pass fallback never counts. 0 selects
	// DefaultCutoverHysteresis; negative disables the hysteresis (the
	// pre-PR-4 behaviour).
	CutoverHysteresis int
	// AutoScale multiplies the multiplier seeds and subgradient steps by
	// the problem's natural dual magnitudes: S/A0 for the timing weights
	// and S/P′, S/X′ for β, γ, where S = Σαᵢ√(LᵢUᵢ) is the geometric
	// mid-range area. Lagrange multipliers carry units of
	// objective-per-constraint (µm²/ps, µm²/fF); without this, unit-scale
	// seeds leave every optᵢ below its lower bound and the subgradient
	// ascent crawls. The paper's A1 allows any positive seed and the step
	// condition (ρₖ→0, Σρₖ=∞) is preserved.
	AutoScale bool
	// KeepHistory records per-iteration statistics in the result.
	KeepHistory bool
	// OnIteration, when non-nil, is called once per OGWS iteration with
	// the iteration's statistics, constraint violations, and the
	// evaluation-work delta since the previous iteration. The hook runs
	// on the solving goroutine between A3 and A4 and must not call back
	// into the Solver; it observes the trajectory without perturbing it —
	// results are bit-identical with or without a hook installed.
	OnIteration func(IterProgress)
	// Cancel, when non-nil, is polled once per OGWS iteration at the
	// iteration boundary (before A2); once it returns true Run stops and
	// returns ErrCancelled. The poll sits between iterations, so a solve
	// whose Cancel never fires runs the exact same arithmetic as one with
	// no hook at all — results stay bit-identical. Cancellation latency is
	// one full iteration (the inner LRS has no preemption points). The
	// sizing service wires the request context in here so an abandoned
	// solve stops burning the solver pool.
	Cancel func() bool
}

// ErrCancelled is returned by Run (and RunFromDual) when Options.Cancel
// reported true at an iteration boundary. The solver's multiplier state is
// left mid-ascent and must not be reused as a warm-start snapshot.
var ErrCancelled = errors.New("core: solve cancelled")

// DefaultCutoverHysteresis is the default Options.CutoverHysteresis,
// placed by measurement between the two recorded regimes: the warm-started
// c880 solve — the engine's best case — peaks at 22 consecutive cutovers
// during its early global-movement iterations before cone walks take over,
// while the dense-coupling grid32x24 solve (the PR-3 regression) streaks
// past 30 within its first iterations and keeps degrading throughout. 24
// leaves the healthy workload untouched and stops the pathological one
// early; both committed benchmarks pin their hystTripsPerSolve metric.
const DefaultCutoverHysteresis = 24

// DefaultOptions returns the settings used throughout the experiments:
// 1% duality gap as in the paper, ρₖ = 2/√k, relative violations, warm
// starts off (faithful to Figure 8's S1).
func DefaultOptions(a0, noiseBound, powerCapBound float64) Options {
	return Options{
		A0:                 a0,
		NoiseBound:         noiseBound,
		PowerCapBound:      powerCapBound,
		Epsilon:            0.01,
		MaxIterations:      1000,
		Step:               lagrange.InverseSqrtK(2),
		InitMultiplier:     1,
		InitBeta:           1,
		InitGamma:          1,
		LRSMaxSweeps:       200,
		LRSTol:             1e-7,
		LRSDamping:         0.7,
		Incremental:        true,
		RelativeViolations: true,
		AutoScale:          true,
		Polyak:             true,
		PolyakTheta:        1,
	}
}

// validate rejects the knobs that have no sane substitute (a missing or
// non-finite delay bound, negative or NaN multiplier seeds) and normalizes
// the rest: every tolerance, damping factor, and count falls back to its
// DefaultOptions value when zero, negative, or NaN. NaN needs explicit
// checks throughout — it slides through every `<= 0` comparison, and a NaN
// tolerance silently disables loop exits (`maxRel < NaN` is always false)
// while a NaN step or damping poisons every size downstream.
func (o *Options) validate() error {
	if o.A0 <= 0 || math.IsNaN(o.A0) {
		return fmt.Errorf("core: delay bound A0 must be positive, got %g", o.A0)
	}
	if o.Epsilon <= 0 || math.IsNaN(o.Epsilon) {
		o.Epsilon = 0.01
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.Step == nil {
		o.Step = lagrange.InverseSqrtK(2)
	}
	if o.LRSMaxSweeps <= 0 {
		o.LRSMaxSweeps = 200
	}
	if o.LRSTol <= 0 || math.IsNaN(o.LRSTol) {
		o.LRSTol = 1e-7
	}
	if o.LRSDamping <= 0 || o.LRSDamping > 1 || math.IsNaN(o.LRSDamping) {
		o.LRSDamping = 0.7
	}
	if o.ActiveSetTol < 0 || math.IsNaN(o.ActiveSetTol) {
		o.ActiveSetTol = 0
	}
	if o.CutoverHysteresis == 0 {
		o.CutoverHysteresis = DefaultCutoverHysteresis
	}
	if o.PolyakTheta <= 0 || o.PolyakTheta >= 2 || math.IsNaN(o.PolyakTheta) {
		o.PolyakTheta = 1
	}
	if o.Workers < 0 {
		o.Workers = 0 // same meaning: pick runtime.GOMAXPROCS(0)
	}
	if o.InitMultiplier < 0 || o.InitBeta < 0 || o.InitGamma < 0 ||
		math.IsNaN(o.InitMultiplier) || math.IsNaN(o.InitBeta) || math.IsNaN(o.InitGamma) {
		return fmt.Errorf("core: initial multipliers must be non-negative, got λ=%g β=%g γ=%g",
			o.InitMultiplier, o.InitBeta, o.InitGamma)
	}
	return nil
}

// IterStats records one OGWS iteration for convergence studies.
type IterStats struct {
	K          int
	Rho        float64
	Area       float64 // Σαᵢxᵢ (µm²)
	DelayPs    float64 // critical-path arrival (ps)
	PowerCapFF float64 // Σcᵢ (fF)
	NoiseLinFF float64 // Σwĉ(xᵢ+xⱼ) (fF)
	Dual       float64 // L(x) at the LRS minimizer
	Gap        float64 // (Area − Dual)/Area
	LRSSweeps  int
}

// IterProgress is the per-iteration payload delivered to
// Options.OnIteration: the IterStats the history would record, plus the
// constraint violations (positive = violated, in each constraint's own
// unit), the relative primal feasibility the convergence check uses, and
// the evaluation-work counters spent by this iteration alone.
type IterProgress struct {
	IterStats
	// DelayViolation is max(0, maxArrival − A0) in ps; Power and Noise
	// are the raw bound excesses in fF (0 when the bound is disabled).
	DelayViolation float64
	PowerViolation float64
	NoiseViolation float64
	// Feasibility is the relative primal feasibility measure compared
	// against Epsilon by the A7 stopping rule.
	Feasibility float64
	// Eval is the evaluation work performed by this iteration (a
	// Stats-snapshot delta, not the cumulative counters).
	Eval rc.EvalStats
}

// Result is the outcome of Solver.Run.
type Result struct {
	// X is the final size vector indexed by circuit node.
	X []float64
	// Iterations is the number of OGWS iterations executed; Converged
	// reports whether the duality gap reached Epsilon before
	// MaxIterations.
	Iterations int
	Converged  bool
	// Gap is the final relative duality gap |Area − Dual|/Area.
	Gap  float64
	Dual float64
	// Final metrics at X.
	Area       float64
	DelayPs    float64
	PowerCapFF float64
	NoiseLinFF float64
	NoiseExact float64
	// Constraint violations at X (positive = violated, in the constraint's
	// own unit).
	DelayViolation float64
	PowerViolation float64
	NoiseViolation float64
	// PerNetNoiseViolation is the largest per-net crosstalk violation in
	// fF (0 when the extension is unused or satisfied).
	PerNetNoiseViolation float64
	// LRSSweepsTotal counts inner sweeps across all iterations.
	LRSSweepsTotal int
	// MemoryBytes is the analytic solver footprint (graph + coupling +
	// evaluator + multipliers + solver arrays) for Figure 10(a).
	MemoryBytes int
	History     []IterStats
}

// Solver runs OGWS on one evaluator. Create with NewSolver; a Solver is
// single-goroutine (the worker pool it drives internally is an
// implementation detail — no two Solver methods may run concurrently).
// Call Close when done to release the worker goroutines promptly; a
// runtime cleanup reclaims them otherwise once the Solver is collected.
type Solver struct {
	ev   *rc.Evaluator
	opt  Options
	mult *lagrange.Multipliers

	workers int
	pool    *pool
	cleanup runtime.Cleanup

	lambda  []float64 // node multiplier sums λᵢ
	rup     []float64 // weighted upstream resistances Rᵢ
	xBound  float64   // X′; NaN when disabled
	pBound  float64   // P′; NaN when disabled
	rEff    []float64 // tech.RC·r̂ᵢ per node (0 for non-sizable)
	history []IterStats

	// Parallel-loop scratch: per-shard max reductions and per-node sum
	// terms (folded serially in index order so totals are independent of
	// the sharding).
	shardMax    []float64
	normScratch []float64

	// Active-set LRS state (Incremental mode): the sizable node index,
	// the current active list with its dedup bitmap, and the reusable
	// per-shard dirty buffers the resize sweep fills — movedEval collects
	// bitwise moves (they drive the incremental refresh), movedAct the
	// moves beyond ActiveSetTol (they stay active next sweep). Excluded
	// from memoryBytes like shardMax: the analytic footprint must be
	// identical for every execution mode.
	sizable   []int32
	active    []int32
	inActive  []bool
	movedEval [][]int32
	movedAct  [][]int32

	// Cutover-hysteresis state. degradeStreak counts consecutive LRS
	// sweeps whose incremental refresh degraded past the coneWorthwhile
	// cutover; incReverted flips once the streak reaches
	// Options.CutoverHysteresis and routes every remaining sweep of the
	// current Run through the full-pass path. Both reset at the top of Run.
	// hystTrips / revertedSweeps accumulate across Runs for the benchmark
	// work accounting (see Solver.HysteresisTrips / RevertedSweeps).
	degradeStreak  int
	incReverted    bool
	hystTrips      int64
	revertedSweeps int64

	// pendingDual holds a RunFromDual seed for the next Run; consumed (and
	// cleared) at A1.
	pendingDual *DualState

	// Lockstep state (NewLockstepSolver): the gate whose batched rounds
	// carry this solver's LRS evaluator passes, and this solver's replica
	// index in it.
	ls    *Lockstep
	lsRep int

	// Per-net crosstalk extension state (nil when unused).
	vBound []float64 // X′_v per node; NaN where unconstrained
	gammaV []float64 // γᵥ per node
	denV   []float64 // Σ_{(i,j)} (γᵢ+γⱼ)·wᵢⱼ·ĉᵢⱼ, refreshed per LRS call

	// Dual magnitude scales (1 when AutoScale is off).
	lamScale, betaScale, gammaScale float64
}

// NewSolver validates the options against the evaluator's circuit and
// prepares solver state.
func NewSolver(ev *rc.Evaluator, opt Options) (*Solver, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	g := ev.Graph()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Solver{
		ev:          ev,
		opt:         opt,
		workers:     workers,
		lambda:      make([]float64, g.NumNodes()),
		rup:         make([]float64, g.NumNodes()),
		rEff:        make([]float64, g.NumNodes()),
		xBound:      math.NaN(),
		pBound:      math.NaN(),
		shardMax:    make([]float64, workers),
		normScratch: make([]float64, g.NumNodes()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		if c := g.Comp(i); c.Kind.Sizable() {
			// The evaluator's topology holds tech.RC·r̂ᵢ per node — the base
			// technology value for a plain evaluator (bit-identical to
			// computing it here) and the corner/Monte-Carlo value for a
			// perturbed replica (rc.Perturb), so the Theorem-5 resize runs
			// under the same technology the evaluator times.
			s.rEff[i] = ev.RCConst(i)
			s.sizable = append(s.sizable, int32(i))
		}
	}
	if opt.Incremental {
		s.active = make([]int32, 0, len(s.sizable))
		s.inActive = make([]bool, g.NumNodes())
		s.movedEval = make([][]int32, workers)
		s.movedAct = make([][]int32, workers)
	}
	if opt.NoiseBound > 0 {
		off := ev.Couplings().ConstantOffset()
		xb := opt.NoiseBound - off
		if xb <= 0 {
			return nil, fmt.Errorf("core: noise bound %g fF is below the constant coupling offset %g fF (infeasible)", opt.NoiseBound, off)
		}
		s.xBound = xb
	}
	if opt.PowerCapBound > 0 {
		s.pBound = opt.PowerCapBound
	}
	if len(opt.PerNetNoiseBounds) > 0 {
		nn := g.NumNodes()
		s.vBound = make([]float64, nn)
		s.gammaV = make([]float64, nn)
		s.denV = make([]float64, nn)
		for i := range s.vBound {
			s.vBound[i] = math.NaN()
		}
		for v, xb := range opt.PerNetNoiseBounds {
			if v < 0 || v >= nn || g.Comp(v).Kind != circuit.Wire {
				return nil, fmt.Errorf("core: per-net bound on node %d, which is not a wire", v)
			}
			if len(ev.Couplings().Neighbors(v)) == 0 {
				return nil, fmt.Errorf("core: per-net bound on wire %d, which has no coupling pairs", v)
			}
			if xb <= 0 || math.IsNaN(xb) {
				// NaN would both pass a plain <= 0 check and poison the γᵥ
				// violation terms; reject it with the other bad bounds.
				return nil, fmt.Errorf("core: per-net bound on wire %d must be positive, got %g", v, xb)
			}
			s.vBound[v] = xb
		}
	}
	s.lamScale, s.betaScale, s.gammaScale = 1, 1, 1
	if opt.AutoScale {
		sum := 0.0
		for i := 0; i < g.NumNodes(); i++ {
			if c := g.Comp(i); c.Kind.Sizable() {
				sum += c.AreaCoeff * math.Sqrt(c.Lo*c.Hi)
			}
		}
		if sum > 0 {
			// The natural total timing flow is S/A0; spread it over the
			// sink edges so each edge's seed and step have per-edge scale.
			s.lamScale = sum / (opt.A0 * float64(len(g.In(g.SinkID()))))
			if !math.IsNaN(s.pBound) {
				s.betaScale = sum / s.pBound
			}
			if !math.IsNaN(s.xBound) {
				s.gammaScale = sum / s.xBound
			}
		}
	}
	// Spawn the pool and touch the caller's evaluator only once the
	// options are known-good, so error returns leave no goroutines behind
	// and no Runner installed. A single-worker solver installs no Runner
	// at all: the evaluator then runs its plain serial reference loops,
	// which skip the levelized schedule's bucket indirection and per-level
	// barriers yet are bit-identical to it by construction (and clears any
	// Runner a previous solver left on the evaluator). The Runner stays
	// valid after Close: a closed pool degrades to inline execution, which
	// is bit-identical too.
	s.pool = newPool(workers)
	if s.pool.parallel() {
		ev.SetRunner(s.pool.rcRunner())
		s.cleanup = runtime.AddCleanup(s, func(p *pool) { p.close() }, s.pool)
	} else {
		ev.SetRunner(nil)
	}
	return s, nil
}

// Bounds returns the derived internal bounds (X′, P′); NaN means the
// corresponding constraint is disabled.
func (s *Solver) Bounds() (xPrime, pPrime float64) { return s.xBound, s.pBound }

// Workers returns the resolved parallel width the solver runs with.
func (s *Solver) Workers() int { return s.workers }

// Close releases the solver's worker goroutines. Solvers created with
// Workers == 1 own no goroutines and Close is a no-op. Calling Close is
// optional — an unreferenced Solver's workers are reclaimed by the
// runtime — but deterministic release keeps goroutine counts flat in
// batch sweeps. The solver keeps working after Close, falling back to
// serial execution.
func (s *Solver) Close() {
	if s.pool.parallel() {
		s.cleanup.Stop()
		s.pool.close()
	}
}

// LRS solves the Lagrangian relaxation subproblem LRS₂ for the current
// multipliers (Figure 8) and returns the number of sweeps used. The
// evaluator's sizes hold the minimizer afterwards, with derived state
// recomputed (always by a final full pass, so the values the dual and the
// reported metrics read never ride on incremental bookkeeping). With
// Options.Incremental the sweeps run the dirty-cone/active-set engine
// (lrsActiveSet); otherwise — or after the cutover hysteresis tripped for
// this Run — every sweep runs the paper's full passes. At ActiveSetTol = 0
// the two paths are bit-identical, so the hysteresis revert never changes
// a result.
func (s *Solver) LRS() int {
	if s.ls != nil {
		return s.lrsLockstep()
	}
	if s.opt.Incremental && !s.incReverted {
		return s.lrsActiveSet()
	}
	return s.lrsFull()
}

// HysteresisTrips returns how many Runs the cutover hysteresis has tripped
// in so far: solves where Options.CutoverHysteresis consecutive sweeps
// degraded past the coneWorthwhile cutover and the remainder ran the
// full-pass path.
func (s *Solver) HysteresisTrips() int64 { return s.hystTrips }

// RevertedSweeps returns the total number of LRS sweeps executed on the
// full-pass path because the hysteresis had tripped (Incremental solves
// only). The work-accounting benchmarks subtract these from the full-pass
// counters to reconstruct the deliberate trailing passes.
func (s *Solver) RevertedSweeps() int64 { return s.revertedSweeps }

// lrsPrelude computes the effective scalar multipliers for a sweep
// sequence and refreshes the per-net crosstalk denominators, which stay
// frozen for the whole LRS call.
func (s *Solver) lrsPrelude() (beta, gamma float64) {
	ev := s.ev
	beta, gamma = s.mult.Beta, s.mult.Gamma
	if math.IsNaN(s.pBound) {
		beta = 0
	}
	if math.IsNaN(s.xBound) {
		gamma = 0
	}
	if s.gammaV != nil {
		// Per-net extension: the derivative of Σᵥ γᵥ·Nᵥ(x) with respect to
		// xᵢ is Σ_{(i,j)} (γᵢ+γⱼ)·wᵢⱼ·ĉᵢⱼ; γ is fixed for the whole LRS
		// call, so refresh the per-node sums once, gathered per node.
		s.pool.run(0, ev.Graph().NumNodes(), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				ids, ws := ev.NbrEntries(i)
				gi := s.gammaV[i]
				sum := 0.0
				for k, j := range ids {
					if gsum := gi + s.gammaV[j]; gsum != 0 {
						sum += gsum * ws[k]
					}
				}
				s.denV[i] = sum
			}
		})
	}
	return beta, gamma
}

// lrsFull is the paper-faithful LRS loop: every sweep pays a full
// Recompute and a full UpstreamResistance (the Incremental=false escape
// hatch, the post-hysteresis schedule, and the oracle the active-set path
// is pinned to).
func (s *Solver) lrsFull() int {
	ev := s.ev
	g := ev.Graph()
	// With Incremental requested, this loop only ever runs because the
	// cutover hysteresis reverted the solve: charge its sweeps to the
	// reverted counter so work accounting can reconstruct the deliberate
	// trailing passes.
	reverted := s.opt.Incremental && s.incReverted
	if !s.opt.WarmStart {
		// S1: start from the lower bounds.
		for i := 1; i < g.NumNodes()-1; i++ {
			if c := g.Comp(i); c.Kind.Sizable() {
				ev.X[i] = c.Lo
			}
		}
	}
	beta, gamma := s.lrsPrelude()
	sweeps := 0
	for sweeps < s.opt.LRSMaxSweeps {
		sweeps++
		if reverted {
			s.revertedSweeps++
		}
		// S2: downstream capacitances; S3: upstream resistances.
		ev.Recompute()
		ev.UpstreamResistance(s.lambda, s.rup)
		// S4/S5: resize every component, repeat until no improvement.
		if s.resizeFull(beta, gamma) < s.opt.LRSTol {
			break
		}
	}
	ev.Recompute()
	return sweeps
}

// resizeFull runs one Jacobi resize sweep (S4) over every component,
// sharded on the pool, and returns the largest relative size change. The
// sweep reads only state frozen by S2/S3 plus each node's own size, so the
// shards are independent and the max-reduction exact.
func (s *Solver) resizeFull(beta, gamma float64) float64 {
	g := s.ev.Graph()
	shards := s.pool.run(1, g.NumNodes()-1, func(shard, lo, hi int) {
		s.shardMax[shard] = s.resizeRange(beta, gamma, lo, hi)
	})
	maxRel := 0.0
	for sh := 0; sh < shards; sh++ {
		if s.shardMax[sh] > maxRel {
			maxRel = s.shardMax[sh]
		}
	}
	return maxRel
}

// lrsActiveSet is the incremental LRS loop. Sweep 1 is full — the
// multipliers moved since the last call, so every upstream resistance and
// every resize input may have changed — but from sweep 2 on the evaluator
// refreshes only the cones of the sizes that moved, and the resize runs
// only over the active set: nodes that moved beyond ActiveSetTol in the
// previous sweep plus nodes whose Theorem-5 inputs (C′, coupling sum,
// upstream resistance) the refresh actually changed. At ActiveSetTol = 0
// a node is dropped only at a bitwise fixed point with bitwise-unchanged
// inputs, where re-running the resize body reproduces the same size
// exactly — so sweep counts, every size, and the break decision match
// lrsFull bit for bit.
func (s *Solver) lrsActiveSet() int {
	ev := s.ev
	g := ev.Graph()
	if !s.opt.WarmStart {
		// S1: start from the lower bounds, recording the real moves so the
		// first incremental refresh sees them.
		for _, ii := range s.sizable {
			i := int(ii)
			if c := g.Comp(i); ev.X[i] != c.Lo {
				ev.X[i] = c.Lo
				ev.MarkDirty(i)
			}
		}
	}
	beta, gamma := s.lrsPrelude()
	sweeps := 0
	for sweeps < s.opt.LRSMaxSweeps {
		sweeps++
		if s.incReverted {
			// The cutover hysteresis tripped mid-call: finish this LRS on
			// the full-pass schedule. A degraded active-set sweep already
			// runs the identical full refreshes and resizes every sizable
			// node, so dropping the bookkeeping changes scheduling only —
			// never a bit.
			s.revertedSweeps++
			ev.Recompute()
			ev.UpstreamResistance(s.lambda, s.rup)
			if s.resizeFull(beta, gamma) < s.opt.LRSTol {
				break
			}
			continue
		}
		// S2/S3: refresh exactly what the recorded moves can reach.
		cut0 := ev.Stats().CutoverRecomputes
		chgLoads, coneLoads := ev.RecomputeIncremental()
		if ev.Stats().CutoverRecomputes != cut0 {
			// A cutover hit (the pre-first-pass fallback is excluded by the
			// counter split): extend the streak and give up on bookkeeping
			// for the rest of this Run once it reaches K.
			s.degradeStreak++
			if s.degradeStreak >= s.opt.CutoverHysteresis && s.opt.CutoverHysteresis > 0 {
				s.incReverted = true
				s.hystTrips++
			}
		} else if coneLoads {
			s.degradeStreak = 0
		}
		if sweeps == 1 {
			ev.UpstreamResistance(s.lambda, s.rup)
			s.active = append(s.active[:0], s.sizable...)
		} else if chgUp, coneUp := ev.UpstreamResistanceIncremental(s.lambda, s.rup); coneLoads && coneUp {
			s.buildActive(chgLoads, chgUp)
		} else {
			// A refresh degraded to a full pass, so the exact change feed
			// is unknown: over-activate. Nodes whose inputs did not move
			// re-derive their size bit-exactly, so this only costs work,
			// never bits.
			s.active = append(s.active[:0], s.sizable...)
		}
		if len(s.active) == 0 {
			// Every node is at a fixed point with unchanged inputs: a full
			// sweep would measure maxRel = 0 and stop here too.
			break
		}
		// S4/S5 over the active set only.
		if s.resizeActiveSet(beta, gamma) < s.opt.LRSTol {
			break
		}
	}
	ev.Recompute()
	return sweeps
}

// buildActive assembles the next sweep's active set: last sweep's
// beyond-tolerance movers first (in shard order), then the nodes whose
// resize inputs the incremental refresh changed. Duplicates and
// non-sizable entries in the change feeds are filtered here; the bitmap
// is left all-false again so stale bits can never mask a reactivation.
func (s *Solver) buildActive(chgLoads, chgUp []int32) {
	g := s.ev.Graph()
	s.active = s.active[:0]
	add := func(n int32) {
		if !s.inActive[n] && g.Comp(int(n)).Kind.Sizable() {
			s.inActive[n] = true
			s.active = append(s.active, n)
		}
	}
	for _, buf := range s.movedAct {
		for _, n := range buf {
			add(n)
		}
	}
	for _, n := range chgLoads {
		add(n)
	}
	for _, n := range chgUp {
		add(n)
	}
	for _, n := range s.active {
		s.inActive[n] = false
	}
}

// resizeActiveSet runs one Jacobi resize sweep over the active list,
// sharded on the pool, and returns the largest relative size change. The
// per-shard moved buffers are folded serially in shard order, so the
// dirty-mark order — and with it every downstream walk — is deterministic
// at every Workers width.
func (s *Solver) resizeActiveSet(beta, gamma float64) float64 {
	ev := s.ev
	for i := range s.movedEval {
		s.movedEval[i] = s.movedEval[i][:0]
		s.movedAct[i] = s.movedAct[i][:0]
	}
	active := s.active
	shards := s.pool.run(0, len(active), func(shard, lo, hi int) {
		s.shardMax[shard] = s.resizeList(beta, gamma, active[lo:hi], shard)
	})
	maxRel := 0.0
	for sh := 0; sh < shards; sh++ {
		if s.shardMax[sh] > maxRel {
			maxRel = s.shardMax[sh]
		}
	}
	for sh := 0; sh < shards; sh++ {
		for _, n := range s.movedEval[sh] {
			ev.MarkDirty(int(n))
		}
	}
	return maxRel
}

// resizeList applies resizeNode to the listed nodes, filling the shard's
// moved buffers, and returns the largest relative change in the list.
func (s *Solver) resizeList(beta, gamma float64, nodes []int32, shard int) float64 {
	maxRel := 0.0
	for _, ii := range nodes {
		rel, moved := s.resizeNode(beta, gamma, int(ii))
		if moved {
			s.movedEval[shard] = append(s.movedEval[shard], ii)
		}
		if rel > s.opt.ActiveSetTol {
			s.movedAct[shard] = append(s.movedAct[shard], ii)
		}
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// resizeRange applies Theorem 5's closed-form optimal resize to nodes
// [lo, hi) and returns the largest relative size change in the range. Safe
// on disjoint ranges concurrently: every input (λ, R, C′, the coupling
// sums) is frozen for the sweep and each node writes only its own xᵢ.
func (s *Solver) resizeRange(beta, gamma float64, lo, hi int) float64 {
	g := s.ev.Graph()
	maxRel := 0.0
	for i := lo; i < hi; i++ {
		if !g.Comp(i).Kind.Sizable() {
			continue
		}
		rel, _ := s.resizeNode(beta, gamma, i)
		if rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}

// resizeNode applies Theorem 5's closed-form optimal resize to the sizable
// node i, returning the relative size change and whether the stored size
// changed at all (bitwise). The single shared body is what makes the full
// and active-set sweeps bit-identical.
func (s *Solver) resizeNode(beta, gamma float64, i int) (rel float64, moved bool) {
	ev := s.ev
	c := ev.Graph().Comp(i)
	num := s.lambda[i] * s.rEff[i] * (ev.CPr[i] + nbr(ev, i))
	den := c.AreaCoeff + (beta+s.rup[i])*c.CUnit
	if ev.CHat != nil {
		den += gamma * ev.CHat[i]
	}
	if s.denV != nil {
		den += s.denV[i]
	}
	var opt float64
	switch {
	case den <= 0 && num > 0:
		opt = c.Hi
	case num <= 0:
		opt = c.Lo
	default:
		opt = math.Sqrt(num / den)
	}
	// Damped update in log space; same fixed point as the pure
	// xᵢ ← optᵢ assignment, but immune to Jacobi oscillation.
	x := ev.X[i]
	if w := s.opt.LRSDamping; w == 1 {
		x = opt
	} else {
		x = math.Exp((1-w)*math.Log(x) + w*math.Log(math.Max(opt, 1e-300)))
	}
	if x < c.Lo {
		x = c.Lo
	} else if x > c.Hi {
		x = c.Hi
	}
	rel = math.Abs(x-ev.X[i]) / math.Max(ev.X[i], 1e-12)
	moved = x != ev.X[i]
	ev.X[i] = x
	return rel, moved
}

func nbr(ev *rc.Evaluator, i int) float64 {
	if ev.CNbr == nil {
		return 0
	}
	return ev.CNbr[i]
}

// dual evaluates the Lagrangian L(x, a) at the current LRS minimizer,
// including the −A0·λ_m constant the argmin drops:
//
//	L = Σαᵢxᵢ + Σλᵢ·Dᵢ − A0·λ_m + β·(Σcᵢ − P′) + γ·(noise − X′)
//	  + Σᵥ γᵥ·(Nᵥ − X′ᵥ).
func (s *Solver) dual(area, powerViol, noiseViol float64) float64 {
	ev := s.ev
	g := ev.Graph()
	nn := g.NumNodes()
	// The λᵢ·Dᵢ terms are gathered in parallel and folded serially in node
	// order — the identical products, summed in the identical order, as
	// the old serial loop, so the dual is bit-identical at every Workers
	// width. normScratch is free here: its other users (perNetPass,
	// delayGradNormSq) run strictly after dual within an iteration and
	// write every entry they read.
	s.pool.run(1, nn-1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.normScratch[i] = s.lambda[i] * ev.D[i]
		}
	})
	d := area
	for i := 1; i < nn-1; i++ {
		d += s.normScratch[i]
	}
	d -= s.opt.A0 * s.mult.SinkFlow()
	if !math.IsNaN(s.pBound) {
		d += s.mult.Beta * powerViol
	}
	if !math.IsNaN(s.xBound) {
		d += s.mult.Gamma * noiseViol
	}
	if s.gammaV != nil {
		for v, gv := range s.gammaV {
			if gv > 0 {
				d += gv * (s.perNetNoise(v) - s.vBound[v])
			}
		}
	}
	return d
}

// perNetNoise returns Nᵥ(x) = Σ_{j∈N(v)} wᵥⱼ·ĉᵥⱼ(x_v+x_j) for wire v,
// assembled from the evaluator's per-node coupling sums.
func (s *Solver) perNetNoise(v int) float64 {
	return s.ev.CHat[v]*s.ev.X[v] + s.ev.CNbr[v]
}

// delayGradNormSq computes the active normalized delay-subgradient norm
// with the per-node squared terms filled in parallel and folded serially
// in node order — the same total for every Workers setting.
func (s *Solver) delayGradNormSq() float64 {
	nn := s.ev.Graph().NumNodes()
	s.pool.run(1, nn, func(_, lo, hi int) {
		s.mult.DelayGradFillRange(s.ev.A, s.ev.D, s.opt.A0, s.normScratch, lo, hi)
	})
	return lagrange.DelayGradNormSqFrom(s.normScratch[1:nn])
}

// stepDelay shards the A4 edge-multiplier update by head node; each node
// owns its in-edge multipliers, so disjoint ranges never contend.
func (s *Solver) stepDelay(rho float64, relative bool) {
	nn := s.ev.Graph().NumNodes()
	s.pool.run(1, nn, func(_, lo, hi int) {
		s.mult.StepDelayRange(s.ev.A, s.ev.D, s.opt.A0, rho, relative, lo, hi)
	})
}

// perNetPass returns the largest relative per-net violation and, when
// stepping, also updates every γᵥ with the trust-region rule and
// accumulates the active normalized subgradient norm. Each wire's
// violation and step depend only on its own bound, multiplier, and the
// frozen evaluator state, so the pass shards cleanly; the squared terms
// land in per-node scratch and fold in index order, making normSq
// independent of the sharding.
func (s *Solver) perNetPass(rho float64, step bool) (maxRel, normSq float64) {
	if s.gammaV == nil {
		return 0, 0
	}
	shards := s.pool.run(0, len(s.gammaV), func(shard, lo, hi int) {
		mr := 0.0
		for v := lo; v < hi; v++ {
			xb := s.vBound[v]
			if math.IsNaN(xb) {
				s.normScratch[v] = 0
				continue
			}
			viol := s.perNetNoise(v) - xb
			if rel := viol / xb; rel > mr {
				mr = rel
			}
			if viol > 0 || s.gammaV[v] > 0 {
				n := viol / xb
				s.normScratch[v] = n * n
			} else {
				s.normScratch[v] = 0
			}
			if step {
				s.gammaV[v] = lagrange.StepScalar(s.gammaV[v], viol, rho/xb, xb, s.mult.Trust, true)
			}
		}
		s.shardMax[shard] = mr
	})
	for sh := 0; sh < shards; sh++ {
		if s.shardMax[sh] > maxRel {
			maxRel = s.shardMax[sh]
		}
	}
	for _, t := range s.normScratch[:len(s.gammaV)] {
		normSq += t
	}
	return maxRel, normSq
}

// RunFrom seeds the evaluator with the sizes x — through rc.SetSizes, so
// the incremental engine's dirty tracking sees exactly the entries that
// differ from the current state — and then executes Run. x must have one
// entry per circuit node (non-sizable entries are ignored); out-of-bound
// sizes clamp, non-finite ones are rejected before anything changes.
//
// This is the warm-start entry for sweep workloads: with
// Options.WarmStart the LRS sweeps start from the seed, so solving from a
// near-solution (a neighbouring bounds-grid cell, an ECO) becomes an
// incremental perturbation the dirty-cone engine refreshes instead of a
// cold solve. Without WarmStart the paper's S1 reset makes Run's
// trajectory independent of the evaluator's sizes, and RunFrom is
// bit-identical to Run from any seed.
func (s *Solver) RunFrom(x []float64) (*Result, error) {
	if err := s.ev.SetSizes(x); err != nil {
		return nil, err
	}
	return s.Run()
}

// DualState is a snapshot of the multiplier state a Run ended with: the
// per-edge timing multipliers, β, γ, and any per-net γᵥ. It is the dual
// half of a warm start — opaque, immutable, and independent of the solver
// that produced it, so a sweep can hand one cell's final ascent point to
// its neighbour (see RunFromDual).
type DualState struct {
	edge        [][]float64
	beta, gamma float64
	gammaV      []float64
}

// DualState snapshots the solver's current multipliers, or nil before the
// first Run.
func (s *Solver) DualState() *DualState {
	if s.mult == nil {
		return nil
	}
	d := &DualState{beta: s.mult.Beta, gamma: s.mult.Gamma}
	d.edge = make([][]float64, len(s.mult.Edge))
	for i, e := range s.mult.Edge {
		d.edge[i] = append([]float64(nil), e...)
	}
	if s.gammaV != nil {
		d.gammaV = append([]float64(nil), s.gammaV...)
	}
	return d
}

// RunFromDual is RunFrom with the dual half of the warm start: the
// multipliers begin at the snapshot instead of the A1 uniform seed, so a
// solve whose bounds sit near the snapshot's starts its ascent beside the
// dual optimum and can certify convergence in a handful of iterations —
// the OGWS trajectory is driven by the multipliers, and sizes alone
// cannot shortcut it. A nil dual degrades to RunFrom. The snapshot must
// come from a solver over the same circuit graph.
func (s *Solver) RunFromDual(x []float64, dual *DualState) (*Result, error) {
	if dual != nil {
		if err := s.checkDual(dual); err != nil {
			return nil, err
		}
		s.pendingDual = dual
	}
	res, err := s.RunFrom(x)
	s.pendingDual = nil
	return res, err
}

func (s *Solver) checkDual(d *DualState) error {
	g := s.ev.Graph()
	if len(d.edge) != g.NumNodes() {
		return fmt.Errorf("core: dual state has %d nodes, want %d", len(d.edge), g.NumNodes())
	}
	for i, e := range d.edge {
		if len(e) != len(g.In(i)) {
			return fmt.Errorf("core: dual state node %d has %d edge multipliers, want %d", i, len(e), len(g.In(i)))
		}
	}
	return nil
}

// Run executes Algorithm OGWS until the duality gap is below Epsilon or
// MaxIterations is reached.
func (s *Solver) Run() (*Result, error) {
	ev := s.ev
	g := ev.Graph()

	// Each Run decides afresh whether the incremental bookkeeping pays:
	// the cutover streak and the revert are per-solve state.
	s.degradeStreak, s.incReverted = 0, false

	if d := s.pendingDual; d != nil {
		// Warm dual start (RunFromDual): begin the ascent at the snapshot.
		// The snapshot was projected onto the flow-conservation cone by the
		// Run that produced it, so A1's projection is already satisfied.
		if s.mult == nil {
			s.mult = lagrange.New(g, 0)
		}
		for i := range s.mult.Edge {
			copy(s.mult.Edge[i], d.edge[i])
		}
		s.mult.Beta, s.mult.Gamma = d.beta, d.gamma
		for v := range s.gammaV {
			if d.gammaV != nil && v < len(d.gammaV) {
				s.gammaV[v] = d.gammaV[v]
			} else {
				s.gammaV[v] = 0
			}
		}
		s.pendingDual = nil // one-shot: a plain re-Run replays A1 as always
	} else {
		// A1: initial multipliers in the optimality condition (project the
		// uniform seed onto the flow-conservation cone).
		s.mult = lagrange.New(g, s.opt.InitMultiplier*s.lamScale)
		s.mult.ProjectFlow()
		s.mult.Beta = s.opt.InitBeta * s.betaScale
		s.mult.Gamma = s.opt.InitGamma * s.gammaScale
		// The per-net γᵥ are multiplier state too: re-seed them so repeated
		// Run calls on one solver replay the exact same trajectory.
		for v := range s.gammaV {
			s.gammaV[v] = 0
		}
	}
	if s.opt.KeepHistory {
		s.history = s.history[:0]
	}

	res := &Result{}
	sweepsTotal := 0
	converged := false
	k := 0
	bestFeasible := math.Inf(1)
	// Σαᵢ·Lᵢ bounds the objective from below regardless of constraints —
	// a tight certificate whenever the solution sits near the size floor.
	bestDual := 0.0
	for i := 1; i < g.NumNodes()-1; i++ {
		if c := g.Comp(i); c.Kind.Sizable() {
			bestDual += c.AreaCoeff * c.Lo
		}
	}
	var bestX []float64
	damp := 1.0        // RPROP-style oscillation damping for adaptive steps
	prevFeasible := -1 // -1 unknown, else 0/1
	var area, gap, dual float64
	var prevEval rc.EvalStats
	if s.opt.OnIteration != nil {
		prevEval = ev.Stats()
	}
	for k = 1; k <= s.opt.MaxIterations; k++ {
		if s.opt.Cancel != nil && s.opt.Cancel() {
			return nil, ErrCancelled
		}
		// A2: merged node multipliers.
		s.pool.run(0, g.NumNodes(), func(_, lo, hi int) {
			s.mult.NodeSumsRange(s.lambda, lo, hi)
		})
		// A3: solve the subproblem; arrival times are computed by the
		// evaluator as part of LRS's final Recompute.
		sw := s.LRS()
		sweepsTotal += sw

		area = ev.Area()
		powerViol, noiseViol := 0.0, 0.0
		if !math.IsNaN(s.pBound) {
			powerViol = ev.TotalCap() - s.pBound
		}
		if !math.IsNaN(s.xBound) {
			noiseViol = ev.NoiseLinear() - s.xBound
		}
		dual = s.dual(area, powerViol, noiseViol)
		gap = math.Abs(area-dual) / math.Max(area, 1e-12)

		// Relative primal feasibility: the duality gap alone can dip below
		// ε while a constraint multiplier is still climbing, so "within 1%
		// error" requires both the gap and the violations to be small.
		feas := math.Max(0, ev.MaxArrival()-s.opt.A0) / s.opt.A0
		if !math.IsNaN(s.pBound) {
			feas = math.Max(feas, powerViol/s.pBound)
		}
		if !math.IsNaN(s.xBound) {
			feas = math.Max(feas, noiseViol/s.xBound)
		}
		perNetRel, perNetNormSq := s.perNetPass(0, false)
		feas = math.Max(feas, perNetRel)

		if dual > bestDual {
			bestDual = dual
		}
		if feas <= s.opt.Epsilon && area < bestFeasible {
			bestFeasible = area
			bestX = append(bestX[:0], ev.X...)
		}
		// Detect feasible↔infeasible flapping: the adaptive step is
		// straddling the dual kink, so shrink it geometrically; recover
		// slowly while the state is stable.
		nowFeasible := 0
		if feas <= s.opt.Epsilon {
			nowFeasible = 1
		}
		if prevFeasible >= 0 {
			if nowFeasible != prevFeasible {
				damp *= 0.6
				if damp < 0.01 {
					damp = 0.01
				}
			} else if damp < 1 {
				damp *= 1.1
				if damp > 1 {
					damp = 1
				}
			}
		}
		prevFeasible = nowFeasible

		rho := s.opt.Step(k)
		if s.opt.KeepHistory || s.opt.OnIteration != nil {
			st := IterStats{
				K: k, Rho: rho, Area: area, DelayPs: ev.MaxArrival(),
				PowerCapFF: ev.TotalCap(), NoiseLinFF: ev.NoiseLinear(),
				Dual: dual, Gap: gap, LRSSweeps: sw,
			}
			if s.opt.KeepHistory {
				s.history = append(s.history, st)
			}
			if s.opt.OnIteration != nil {
				cur := ev.Stats()
				s.opt.OnIteration(IterProgress{
					IterStats:      st,
					DelayViolation: math.Max(0, ev.MaxArrival()-s.opt.A0),
					PowerViolation: math.Max(0, powerViol),
					NoiseViolation: math.Max(0, noiseViol),
					Feasibility:    feas,
					Eval:           cur.Sub(prevEval),
				})
				prevEval = cur
			}
		}
		// A7: stop when a certified ε-optimal feasible solution exists —
		// either the current iterate closes the gap (the paper's check,
		// with feasibility required) or the best feasible iterate is
		// within ε of the best dual lower bound.
		if gap <= s.opt.Epsilon && feas <= s.opt.Epsilon {
			converged = true
			break
		}
		if !math.IsInf(bestFeasible, 1) &&
			(bestFeasible-bestDual)/bestFeasible <= s.opt.Epsilon {
			converged = true
			gap = math.Max(0, bestFeasible-bestDual) / bestFeasible
			break
		}
		// A4: subgradient updates. The trust corridor shrinks toward 1 so
		// adaptive steps anneal from global travel to local refinement;
		// Σ log(trustₖ) diverges, so reachability is never lost.
		s.mult.Trust = 1 + 4/math.Pow(float64(k), 0.75)
		if s.opt.Polyak {
			// Adaptive Polyak step in the bound-normalized multiplier
			// space: ρ = θ·(f̂ − D)/‖h‖².
			fHat := bestFeasible
			if math.IsInf(fHat, 1) {
				fHat = area * (1 + feas)
			}
			normSq := s.delayGradNormSq() + perNetNormSq
			if !math.IsNaN(s.pBound) {
				n := powerViol / s.pBound
				if n > 0 || s.mult.Beta > 0 {
					normSq += n * n
				}
			}
			if !math.IsNaN(s.xBound) {
				n := noiseViol / s.xBound
				if n > 0 || s.mult.Gamma > 0 {
					normSq += n * n
				}
			}
			// Floor with the classic diminishing schedule: when no feasible
			// iterate exists yet, the f̂ proxy can sit at the dual value and
			// zero the Polyak numerator, freezing all progress.
			floor := 0.1 * s.opt.Step(k) * s.lamScale * s.opt.A0
			if num := fHat - dual; num > 0 && normSq > 1e-18 {
				rho = math.Max(s.opt.PolyakTheta*num/normSq, floor)
			} else {
				rho = 10 * floor
			}
			rho *= damp
			s.stepDelay(rho/s.opt.A0, true)
			if !math.IsNaN(s.pBound) {
				s.mult.StepBeta(powerViol, rho/s.pBound, s.pBound, true)
			}
			if !math.IsNaN(s.xBound) {
				s.mult.StepGamma(noiseViol, rho/s.xBound, s.xBound, true)
			}
			s.perNetPass(rho, true)
		} else {
			// Classic diminishing schedule, scaled to the dual magnitude.
			s.stepDelay(rho*s.lamScale, s.opt.RelativeViolations)
			if !math.IsNaN(s.pBound) {
				s.mult.StepBeta(powerViol, rho*s.betaScale, s.pBound, s.opt.RelativeViolations)
			}
			if !math.IsNaN(s.xBound) {
				s.mult.StepGamma(noiseViol, rho*s.gammaScale, s.xBound, s.opt.RelativeViolations)
			}
			s.perNetPass(rho*s.lamScale*s.opt.A0, true)
		}
		// A5: project back onto the optimality condition.
		s.mult.ProjectFlow()
	}
	if k > s.opt.MaxIterations {
		k = s.opt.MaxIterations
	}

	// Dual polish: the dual function is concave along the scaling ray
	// t·(λ,β,γ), and every point on it is a valid lower bound; a short
	// grid search often recovers a much tighter certificate than the final
	// subgradient iterate, especially on large circuits where the flow
	// distillation is slow.
	if !converged && !math.IsInf(bestFeasible, 1) {
		if d := s.polishDual(); d > bestDual {
			bestDual = d
		}
		if (bestFeasible-bestDual)/bestFeasible <= s.opt.Epsilon {
			converged = true
		}
		gap = math.Abs(bestFeasible-bestDual) / bestFeasible
		dual = bestDual
	}

	// Report the best feasible iterate when one exists; the last LRS
	// minimizer can sit slightly infeasible even with near-optimal
	// multipliers.
	if bestX != nil {
		if err := ev.SetSizes(bestX); err != nil {
			return nil, err
		}
		ev.Recompute()
		area = ev.Area()
		dual = math.Max(bestDual, dual)
		if area > 0 {
			gap = math.Abs(area-dual) / area
		}
	}

	res.X = append([]float64(nil), ev.X...)
	res.Iterations = k
	res.Converged = converged
	res.Gap = gap
	res.Dual = dual
	res.Area = area
	res.DelayPs = ev.MaxArrival()
	res.PowerCapFF = ev.TotalCap()
	res.NoiseLinFF = ev.NoiseLinear()
	res.NoiseExact = ev.NoiseExact()
	res.DelayViolation = math.Max(0, ev.MaxArrival()-s.opt.A0)
	if !math.IsNaN(s.pBound) {
		res.PowerViolation = math.Max(0, ev.TotalCap()-s.pBound)
	}
	if !math.IsNaN(s.xBound) {
		res.NoiseViolation = math.Max(0, ev.NoiseLinear()-s.xBound)
	}
	if s.gammaV != nil {
		for v := range s.gammaV {
			if xb := s.vBound[v]; !math.IsNaN(xb) {
				if viol := s.perNetNoise(v) - xb; viol > res.PerNetNoiseViolation {
					res.PerNetNoiseViolation = viol
				}
			}
		}
	}
	res.LRSSweepsTotal = sweepsTotal
	res.MemoryBytes = s.memoryBytes()
	res.History = s.history
	return res, nil
}

// polishDual evaluates the dual on a geometric grid of scalings of the
// final multipliers and returns the best lower bound found.
func (s *Solver) polishDual() float64 {
	best := math.Inf(-1)
	for _, t := range []float64{0.25, 0.4, 0.6, 0.8, 1, 1.25, 1.6, 2.2, 3.2, 4.5} {
		s.mult.ScaleAll(t)
		s.mult.NodeSums(s.lambda)
		s.LRS()
		area := s.ev.Area()
		powerViol, noiseViol := 0.0, 0.0
		if !math.IsNaN(s.pBound) {
			powerViol = s.ev.TotalCap() - s.pBound
		}
		if !math.IsNaN(s.xBound) {
			noiseViol = s.ev.NoiseLinear() - s.xBound
		}
		if d := s.dual(area, powerViol, noiseViol); d > best {
			best = d
		}
		s.mult.ScaleAll(1 / t)
	}
	return best
}

func (s *Solver) memoryBytes() int {
	b := s.ev.Graph().MemoryBytes()
	b += s.ev.Couplings().MemoryBytes()
	b += s.ev.MemoryBytes()
	if s.mult != nil {
		b += s.mult.MemoryBytes()
	}
	b += (len(s.lambda) + len(s.rup) + len(s.rEff)) * 8
	b += (len(s.vBound) + len(s.gammaV) + len(s.denV)) * 8
	// shardMax and the active-set scratch (sizable, active, inActive, the
	// per-shard moved buffers) are excluded: their sizes track the Workers
	// and Incremental settings, and the analytic footprint must be
	// identical for every execution mode.
	b += len(s.normScratch) * 8
	return b
}
