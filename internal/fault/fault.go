// Package fault is a dependency-free, deterministically seeded
// fault-injection layer: the machinery the chaos oracle uses to prove the
// stack's determinism contract holds *under failure*, not just in the
// happy path.
//
// A Plan is a seeded PRNG plus an ordered rule list. Consumers report
// events to the plan by operation name ("http:/farm/v1/lease",
// "fs:sync", "worker:cell", …) and the plan decides — as a pure function
// of the seed, the rules, and the per-rule event count — whether to
// inject a fault and which kind. Two plans built from the same spec
// observing the same event sequence produce the identical fault
// schedule, which is what makes a chaos run replayable: print the spec,
// re-run, get the same faults.
//
// The package deliberately imports nothing from the rest of the repo (and
// nothing outside the stdlib), so every layer — the store's file I/O
// (fault.FS), the farm's HTTP transport (fault.Transport), worker
// lifecycles (worker:cell crash rules) — can thread a Plan through
// without dependency cycles.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault kinds. Consumers interpret the
// subset that makes sense for their operation: the HTTP transport honours
// Drop/Delay/HTTP500/Cut, the fault FS honours Err/ShortWrite, and worker
// lifecycles honour Crash.
type Kind int

const (
	// None means no fault (the zero Decision).
	None Kind = iota
	// Drop fails the operation outright (connection refused / ENOSPC-style
	// error, depending on the consumer).
	Drop
	// Delay stalls the operation by the rule's Delay before letting it
	// proceed untouched.
	Delay
	// HTTP500 substitutes a synthetic 500 response (transport only).
	HTTP500
	// Cut severs a stream mid-flight: the response body errors after the
	// rule's CutBytes bytes (transport only).
	Cut
	// Err fails the operation with an injected error (fs writes/syncs/
	// renames).
	Err
	// ShortWrite makes a write persist only half its payload before
	// failing — the torn-line case the store's replay must survive.
	ShortWrite
	// Crash instructs the consumer to die on the spot (worker lifecycles:
	// RunWorker returns ErrFaultInjected).
	Crash
)

var kindNames = map[Kind]string{
	None: "none", Drop: "drop", Delay: "delay", HTTP500: "500",
	Cut: "cut", Err: "err", ShortWrite: "short", Crash: "crash",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func kindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return k, true
		}
	}
	return None, false
}

// Rule is one fault-injection rule. Op selects the events it applies to
// (exact match, or a prefix when Op ends in ":"); the trigger fields pick
// which matching events fault. A rule with Prob == 0 triggers purely by
// count — After matching events pass untouched, then every Every-th one
// faults (Every <= 1 means each one), until Count injections have
// happened (Count == 0 means unlimited). With Prob > 0 each eligible
// event faults with that probability, drawn deterministically from the
// plan seed and the rule's event index — so the same seed over the same
// event sequence yields the same schedule.
type Rule struct {
	// Op matches event operation names: exact, or prefix if it ends with
	// ":" ("http:" matches every transport event).
	Op string
	// Kind is the fault to inject.
	Kind Kind
	// After skips the first After matching events entirely.
	After int
	// Every faults every Every-th eligible event (<= 1: every one).
	Every int
	// Count caps total injections from this rule (0: unlimited).
	Count int
	// Prob, when > 0, gates each eligible event on a deterministic
	// pseudo-random draw in [0, 1).
	Prob float64
	// Delay is the stall for Kind == Delay.
	Delay time.Duration
	// CutBytes is how many response-body bytes flow before a Kind == Cut
	// stream severs (0 cuts immediately).
	CutBytes int64
}

// label names the rule in counters and replay output.
func (r Rule) label() string {
	return r.Op + ":" + r.Kind.String()
}

// Injection is one injected fault: the decision a consumer acts on.
type Injection struct {
	Kind     Kind
	Delay    time.Duration
	CutBytes int64
	// Err is the error to surface for Drop/Err/ShortWrite kinds.
	Err error
}

// ErrInjected is the base error of every injected failure; consumers and
// tests can errors.Is against it to tell injected faults from real ones.
var ErrInjected = errors.New("fault: injected")

// injectedError wraps ErrInjected with the rule's label for logs.
type injectedError struct{ label string }

func (e injectedError) Error() string { return "fault: injected (" + e.label + ")" }
func (e injectedError) Is(target error) bool {
	return target == ErrInjected
}

// ruleState tracks one rule's event and injection counts.
type ruleState struct {
	rule     Rule
	events   int64 // matching events observed
	injected int64 // faults actually injected
}

// Plan is a seeded fault schedule: rules plus per-rule counters. Safe for
// concurrent use; the schedule is deterministic as long as each rule's
// matching event stream is serialized (one worker's lease calls, one
// store's appends — the serialization every consumer here already has).
type Plan struct {
	seed uint64
	spec string

	mu    sync.Mutex
	rules []*ruleState
}

// New builds a plan from a seed and rules.
func New(seed uint64, rules ...Rule) *Plan {
	p := &Plan{seed: seed}
	for _, r := range rules {
		p.rules = append(p.rules, &ruleState{rule: r})
	}
	p.spec = p.buildSpec()
	return p
}

// Seed returns the plan's PRNG seed.
func (p *Plan) Seed() uint64 { return p.seed }

// splitmix64 is the classic SplitMix64 mix function: a full-period,
// dependency-free way to turn (seed, rule, event index) into uniform
// bits, so probability draws are pure functions of their inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a deterministic uniform float64 in [0, 1) for the given
// rule and event index.
func (p *Plan) draw(ruleIdx int, event int64) float64 {
	x := splitmix64(p.seed ^ splitmix64(uint64(ruleIdx)<<32^uint64(event)))
	return float64(x>>11) / (1 << 53)
}

// matches reports whether the rule applies to the operation.
func matches(ruleOp, op string) bool {
	if strings.HasSuffix(ruleOp, ":") {
		return strings.HasPrefix(op, ruleOp)
	}
	return ruleOp == op
}

// Next reports the operation event to the plan and returns the fault to
// inject, or nil. The first rule that fires wins; every rule's event
// counter still advances, so later rules keep their independent
// schedules.
func (p *Plan) Next(op string) *Injection {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var hit *Injection
	for i, rs := range p.rules {
		if !matches(rs.rule.Op, op) {
			continue
		}
		event := rs.events
		rs.events++
		if hit != nil {
			continue // a rule already fired for this event
		}
		r := rs.rule
		if event < int64(r.After) {
			continue
		}
		if r.Count > 0 && rs.injected >= int64(r.Count) {
			continue
		}
		eligible := event - int64(r.After)
		if r.Every > 1 && eligible%int64(r.Every) != 0 {
			continue
		}
		if r.Prob > 0 && p.draw(i, event) >= r.Prob {
			continue
		}
		rs.injected++
		hit = &Injection{
			Kind:     r.Kind,
			Delay:    r.Delay,
			CutBytes: r.CutBytes,
			Err:      injectedError{label: r.label()},
		}
	}
	return hit
}

// Counts returns the number of injections per rule label — the exact
// accounting the chaos oracle cross-checks against /stats.
func (p *Plan) Counts() map[string]int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.rules))
	for _, rs := range p.rules {
		out[rs.rule.label()] += rs.injected
	}
	return out
}

// Total returns the total number of injected faults across all rules.
func (p *Plan) Total() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, rs := range p.rules {
		n += rs.injected
	}
	return n
}

// String renders the plan as a parseable spec — what a failing chaos run
// prints so the identical schedule can be replayed with Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.spec
}

func (p *Plan) buildSpec() string {
	parts := []string{fmt.Sprintf("seed=%d", p.seed)}
	for _, rs := range p.rules {
		r := rs.rule
		s := r.Op + ":" + r.Kind.String()
		if r.After > 0 {
			s += fmt.Sprintf(",after=%d", r.After)
		}
		if r.Every > 1 {
			s += fmt.Sprintf(",every=%d", r.Every)
		}
		if r.Count > 0 {
			s += fmt.Sprintf(",count=%d", r.Count)
		}
		if r.Prob > 0 {
			s += fmt.Sprintf(",prob=%g", r.Prob)
		}
		if r.Delay > 0 {
			s += fmt.Sprintf(",delay=%s", r.Delay)
		}
		if r.CutBytes > 0 {
			s += fmt.Sprintf(",cut=%d", r.CutBytes)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// Parse builds a plan from its spec form:
//
//	seed=7;http:/farm/v1/lease:drop,after=2,count=3;fs:sync:err,every=5
//
// Each ";"-separated clause is either seed=N or op:kind followed by
// ","-separated trigger options (after=N, every=N, count=N, prob=F,
// delay=DUR, cut=N). The op is everything up to the last ":" before the
// kind, so ops containing ":" (http:/path) parse naturally. An empty spec
// yields an empty plan (which injects nothing).
func Parse(spec string) (*Plan, error) {
	var (
		seed  uint64
		rules []Rule
	)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		fields := strings.Split(clause, ",")
		head := fields[0]
		colon := strings.LastIndex(head, ":")
		if colon <= 0 || colon == len(head)-1 {
			return nil, fmt.Errorf("fault: rule %q must be op:kind[,opts]", clause)
		}
		kind, ok := kindByName(head[colon+1:])
		if !ok || kind == None {
			return nil, fmt.Errorf("fault: unknown fault kind %q in %q", head[colon+1:], clause)
		}
		r := Rule{Op: head[:colon], Kind: kind}
		for _, f := range fields[1:] {
			k, v, found := strings.Cut(f, "=")
			if !found {
				return nil, fmt.Errorf("fault: bad rule option %q in %q", f, clause)
			}
			var err error
			switch k {
			case "after":
				r.After, err = strconv.Atoi(v)
			case "every":
				r.Every, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "cut":
				r.CutBytes, err = strconv.ParseInt(v, 10, 64)
			default:
				return nil, fmt.Errorf("fault: unknown rule option %q in %q", k, clause)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad value in %q: %v", clause, err)
			}
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("fault: prob must be in [0,1], got %g in %q", r.Prob, clause)
		}
		rules = append(rules, r)
	}
	return New(seed, rules...), nil
}

// CountsString renders Counts sorted by label, one "label=n" per line —
// stable output for logs and the chaos oracle's replay report.
func (p *Plan) CountsString() string {
	counts := p.Counts()
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%d\n", l, counts[l])
	}
	return b.String()
}
