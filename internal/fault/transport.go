package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper with a fault plan: the chaos
// layer between a farm worker and its coordinator. Each request reports
// the event "http:<path>" (query stripped), so rules can target one
// endpoint ("http:/farm/v1/lease") or the whole transport ("http:").
//
// Injections:
//
//   - Drop: the round trip fails with a connection-refused-style error
//     before anything reaches the wire.
//   - Delay: the request is stalled by the rule's Delay (via the
//     injectable sleep), then proceeds untouched.
//   - HTTP500: a synthetic 500 response is returned; the real request is
//     never sent.
//   - Cut: the request goes out, but the response body is severed after
//     CutBytes bytes — the mid-stream cut the worker's resumable result
//     streams must absorb. For requests with a streaming body (result
//     uploads), the request body itself is severed instead, cutting the
//     upload mid-stream.
type Transport struct {
	plan *Plan
	base http.RoundTripper
	// sleep is injectable so tests can run delay rules on a fake clock.
	sleep func(time.Duration)
}

// NewTransport wraps base (nil: http.DefaultTransport) with the plan.
// With a nil plan the base transport is returned unwrapped.
func NewTransport(plan *Plan, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if plan == nil {
		return base
	}
	return &Transport{plan: plan, base: base, sleep: time.Sleep}
}

// NewTransportSleep is NewTransport with an injected sleep for delay
// rules (tests drive delays without wall-clock waits).
func NewTransportSleep(plan *Plan, base http.RoundTripper, sleep func(time.Duration)) http.RoundTripper {
	rt := NewTransport(plan, base)
	if t, ok := rt.(*Transport); ok && sleep != nil {
		t.sleep = sleep
	}
	return rt
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inj := t.plan.Next("http:" + req.URL.Path)
	if inj == nil {
		return t.base.RoundTrip(req)
	}
	switch inj.Kind {
	case Drop:
		// Fail like a dead coordinator: nothing reached the wire. Close
		// the request body as RoundTrip contracts require.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &connError{inj.Err}
	case Delay:
		t.sleep(inj.Delay)
		return t.base.RoundTrip(req)
	case HTTP500:
		if req.Body != nil {
			// Drain so a streaming caller unblocks, mimicking a server that
			// read the request before erroring.
			io.Copy(io.Discard, req.Body) //nolint:errcheck // best-effort drain
			req.Body.Close()
		}
		return &http.Response{
			Status:     "500 Internal Server Error (injected)",
			StatusCode: http.StatusInternalServerError,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Body:    io.NopCloser(strings.NewReader(`{"error":"fault: injected 500"}`)),
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Request: req,
		}, nil
	case Cut:
		if req.Body != nil && req.ContentLength <= 0 {
			// Streaming upload: sever the request body mid-stream, the way
			// a dropped TCP connection would.
			req.Body = &cutReader{rc: req.Body, remaining: inj.CutBytes, err: inj.Err}
			resp, err := t.base.RoundTrip(req)
			if err != nil {
				return nil, &connError{fmt.Errorf("%w (request stream cut)", inj.Err)}
			}
			return resp, nil
		}
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &cutReader{rc: resp.Body, remaining: inj.CutBytes, err: inj.Err}
		return resp, nil
	default:
		return t.base.RoundTrip(req)
	}
}

// connError marks injected transport failures as network-shaped errors.
type connError struct{ err error }

func (e *connError) Error() string   { return e.err.Error() + " (connection refused)" }
func (e *connError) Unwrap() error   { return e.err }
func (e *connError) Timeout() bool   { return false }
func (e *connError) Temporary() bool { return true }

// cutReader yields up to remaining bytes, then fails with the injected
// error — a severed stream.
type cutReader struct {
	rc        io.ReadCloser
	remaining int64
	err       error
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, c.err
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		err = c.err
	}
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }
