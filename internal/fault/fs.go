package fault

import (
	"io"
	"os"
)

// FS is the slice of the filesystem the durable store uses, made
// injectable so a fault plan can fail writes, syncs, and renames on
// demand. OS() is the real thing; NewFS wraps any FS with a plan.
//
// Operation names reported to the plan: "fs:write", "fs:sync",
// "fs:rename", "fs:open", "fs:create". Reads are never faulted — the
// store's failure model is about durability, not recall.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// CreateTemp creates a temp file in dir (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// MkdirAll, Rename, and Remove mirror the os functions.
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the file handle surface the store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Name() string
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }

// faultFS wraps an FS with a plan: write/sync/rename/open/create events
// are reported and the plan's injections turn into I/O errors (Err,
// Drop) or torn half-writes (ShortWrite) before reaching the real FS.
type faultFS struct {
	plan *Plan
	real FS
}

// NewFS wraps real (nil: the OS filesystem) so the plan can inject
// durability faults. A ShortWrite persists the first half of the payload
// and then fails — the mid-append crash the store's torn-tail replay must
// absorb; Err and Drop fail the operation without touching the disk.
func NewFS(plan *Plan, real FS) FS {
	if real == nil {
		real = OS()
	}
	if plan == nil {
		return real
	}
	return &faultFS{plan: plan, real: real}
}

func (f *faultFS) fail(op string) error {
	if inj := f.plan.Next(op); inj != nil && (inj.Kind == Err || inj.Kind == Drop) {
		return inj.Err
	}
	return nil
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.fail("fs:open"); err != nil {
		return nil, err
	}
	file, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{plan: f.plan, File: file}, nil
}

func (f *faultFS) Open(name string) (File, error) {
	// Read-only opens are never faulted: replay is not a durability path.
	return f.real.Open(name)
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.fail("fs:create"); err != nil {
		return nil, err
	}
	file, err := f.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{plan: f.plan, File: file}, nil
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.real.MkdirAll(path, perm)
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if err := f.fail("fs:rename"); err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error { return f.real.Remove(name) }

// faultFile gates Write and Sync through the plan.
type faultFile struct {
	plan *Plan
	File
}

func (f *faultFile) Write(p []byte) (int, error) {
	inj := f.plan.Next("fs:write")
	if inj == nil {
		return f.File.Write(p)
	}
	switch inj.Kind {
	case ShortWrite:
		// Persist half the payload, then fail: the torn-line case. The
		// half that landed is real bytes on disk — exactly what a crash
		// mid-append leaves behind.
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, inj.Err
	case Err, Drop:
		return 0, inj.Err
	default:
		return f.File.Write(p)
	}
}

func (f *faultFile) Sync() error {
	if inj := f.plan.Next("fs:sync"); inj != nil && (inj.Kind == Err || inj.Kind == Drop) {
		return inj.Err
	}
	return f.File.Sync()
}
