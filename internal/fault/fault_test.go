package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPlanCountTriggers(t *testing.T) {
	p := New(1, Rule{Op: "op", Kind: Drop, After: 2, Every: 2, Count: 2})
	var got []bool
	for i := 0; i < 10; i++ {
		got = append(got, p.Next("op") != nil)
	}
	// Events 0,1 skipped (after=2); eligible events 2,4,6,... every 2nd;
	// capped at 2 injections → events 2 and 4 fault.
	want := []bool{false, false, true, false, true, false, false, false, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
	if c := p.Counts()["op:drop"]; c != 2 {
		t.Fatalf("counts: got %d injections, want 2", c)
	}
	if p.Total() != 2 {
		t.Fatalf("total: got %d, want 2", p.Total())
	}
}

func TestPlanPrefixMatchAndMiss(t *testing.T) {
	p := New(1, Rule{Op: "http:", Kind: Drop})
	if p.Next("fs:sync") != nil {
		t.Fatal("fs event matched an http: rule")
	}
	if p.Next("http:/farm/v1/lease") == nil {
		t.Fatal("prefix rule did not match")
	}
	if p.Next("http") != nil {
		t.Fatal("bare \"http\" must not match the \"http:\" prefix rule")
	}
}

func TestPlanFirstRuleWinsButCountersAdvance(t *testing.T) {
	p := New(1,
		Rule{Op: "op", Kind: Drop, Count: 1},
		Rule{Op: "op", Kind: Delay, After: 0, Count: 2, Delay: time.Millisecond},
	)
	// Event 0: rule 1 fires (drop); rule 2's event counter still advances.
	if inj := p.Next("op"); inj == nil || inj.Kind != Drop {
		t.Fatalf("event 0: got %+v, want drop", inj)
	}
	// Events 1, 2: rule 1 exhausted, rule 2 fires.
	for i := 1; i <= 2; i++ {
		if inj := p.Next("op"); inj == nil || inj.Kind != Delay {
			t.Fatalf("event %d: got %+v, want delay", i, inj)
		}
	}
	if p.Next("op") != nil {
		t.Fatal("event 3: all rules exhausted, want none")
	}
}

func TestPlanProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		p := New(seed, Rule{Op: "op", Kind: Drop, Prob: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.Next("op") != nil)
		}
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical 64-event schedules (draw is not mixing)")
	}
	hits := 0
	for _, h := range a {
		if h {
			hits++
		}
	}
	if hits == 0 || hits == 64 {
		t.Fatalf("prob=0.5 over 64 events injected %d times — draw looks degenerate", hits)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7;http:/farm/v1/lease:drop,after=2,count=3;fs:sync:err,every=5;worker:cell:crash,after=2;http::delay,prob=0.25,delay=5ms;http:/farm/v1/result:cut,cut=128"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 7 {
		t.Fatalf("seed %d, want 7", p.Seed())
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("spec did not round-trip: %q vs %q", p.String(), p2.String())
	}
	// The round-tripped plan must produce the identical schedule.
	for i := 0; i < 20; i++ {
		a, b := p.Next("http:/farm/v1/lease"), p2.Next("http:/farm/v1/lease")
		if (a == nil) != (b == nil) {
			t.Fatalf("event %d: original and round-tripped plans disagree", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"seed=x",
		"op",            // no kind
		"op:zap",        // unknown kind
		"op:drop,bogus", // option without =
		"op:drop,when=3",
		"op:drop,after=x",
		"op:drop,prob=1.5",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	p, err := Parse("")
	if err != nil || p.Total() != 0 {
		t.Fatalf("empty spec: plan %v err %v, want empty plan", p, err)
	}
	if p.Next("anything") != nil {
		t.Fatal("empty plan injected a fault")
	}
}

func TestInjectedErrorIs(t *testing.T) {
	p := New(1, Rule{Op: "op", Kind: Err})
	inj := p.Next("op")
	if inj == nil || !errors.Is(inj.Err, ErrInjected) {
		t.Fatalf("injected error %v does not match ErrInjected", inj)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Next("op") != nil || p.Total() != 0 || p.Counts() != nil || p.String() != "" {
		t.Fatal("nil plan must be a no-op")
	}
	if NewFS(nil, nil) == nil {
		t.Fatal("NewFS(nil, nil) must return the OS filesystem")
	}
	if NewTransport(nil, nil) != http.DefaultTransport {
		t.Fatal("NewTransport(nil, nil) must return the base transport unwrapped")
	}
}

func TestFaultFSWriteSyncFaults(t *testing.T) {
	dir := t.TempDir()
	plan := New(1,
		Rule{Op: "fs:write", Kind: ShortWrite, After: 1, Count: 1},
		Rule{Op: "fs:sync", Kind: Err, Count: 1},
	)
	fs := NewFS(plan, nil)
	f, err := fs.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("first sync: %v, want injected error", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second sync (rule exhausted): %v", err)
	}
	if _, err := f.Write([]byte("complete\n")); err != nil {
		t.Fatalf("first write (after=1 skips it): %v", err)
	}
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: err=%v, want injected", err)
	}
	if n != 4 {
		t.Fatalf("short write persisted %d bytes, want half (4)", n)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after exhaustion: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "complete\n1234ok" {
		t.Fatalf("on-disk bytes %q, want torn half-line in place", data)
	}
}

func TestFaultFSRenameCreateOpenFaults(t *testing.T) {
	dir := t.TempDir()
	plan := New(1,
		Rule{Op: "fs:rename", Kind: Err, Count: 1},
		Rule{Op: "fs:create", Kind: Err, Count: 1},
		Rule{Op: "fs:open", Kind: Err, After: 1, Count: 1},
	)
	fs := NewFS(plan, nil)
	if _, err := fs.CreateTemp(dir, "t-"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create: %v, want injected", err)
	}
	tf, err := fs.CreateTemp(dir, "t-")
	if err != nil {
		t.Fatal(err)
	}
	tf.Close()
	if err := fs.Rename(tf.Name(), filepath.Join(dir, "dst")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: %v, want injected", err)
	}
	if err := fs.Rename(tf.Name(), filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("second rename: %v", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "dst"), os.O_RDWR, 0o644); err != nil {
		t.Fatalf("first open (after=1): %v", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "dst"), os.O_RDWR, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("second open: %v, want injected", err)
	}
	// Read-only opens and MkdirAll/Remove are never faulted.
	if _, err := fs.Open(filepath.Join(dir, "dst")); err != nil {
		t.Fatalf("read-only open: %v", err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(filepath.Join(dir, "dst")); err != nil {
		t.Fatal(err)
	}
}

func TestTransportDrop500CutDelay(t *testing.T) {
	body := strings.Repeat("x", 1024)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer ts.Close()

	plan := New(1,
		Rule{Op: "http:/a", Kind: Drop, Count: 1},
		Rule{Op: "http:/a", Kind: HTTP500, Count: 1},
		Rule{Op: "http:/a", Kind: Cut, CutBytes: 100, Count: 1},
		Rule{Op: "http:/a", Kind: Delay, Delay: 3 * time.Second, Count: 1},
	)
	var slept time.Duration
	client := &http.Client{Transport: NewTransportSleep(plan, nil, func(d time.Duration) { slept += d })}

	// Event 0: drop.
	if _, err := client.Get(ts.URL + "/a"); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("drop: err %v, want injected", err)
	}
	// Event 1: synthetic 500.
	resp, err := client.Get(ts.URL + "/a")
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("500: resp %v err %v", resp, err)
	}
	resp.Body.Close()
	// Event 2: cut after 100 bytes.
	resp, err = client.Get(ts.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut: read err %v, want injected", err)
	}
	if len(data) != 100 {
		t.Fatalf("cut: read %d bytes before the cut, want 100", len(data))
	}
	// Event 3: delay through the injected sleep, then success.
	resp, err = client.Get(ts.URL + "/a")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delay: resp %v err %v", resp, err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if slept != 3*time.Second {
		t.Fatalf("delay slept %v, want 3s on the injected clock", slept)
	}
	// Event 4: rules exhausted — untouched.
	resp, err = client.Get(ts.URL + "/a")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("clean: resp %v err %v", resp, err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != body {
		t.Fatal("clean request did not round-trip the full body")
	}
	// Other paths never match /a rules.
	resp, err = client.Get(ts.URL + "/b")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("other path: resp %v err %v", resp, err)
	}
	resp.Body.Close()
}

func TestTransportCutsStreamingRequestBody(t *testing.T) {
	var received int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := io.Copy(io.Discard, r.Body)
		received = int(n)
	}))
	defer ts.Close()
	plan := New(1, Rule{Op: "http:/up", Kind: Cut, CutBytes: 64, Count: 1})
	client := &http.Client{Transport: NewTransport(plan, nil)}

	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte(strings.Repeat("y", 4096))) //nolint:errcheck // cut mid-write is the point
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/up", pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Do(req); err == nil {
		t.Fatal("cut upload: want a transport error")
	}
	if received > 64 {
		t.Fatalf("server received %d bytes past the 64-byte cut", received)
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Seed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: non-deterministic delay %v vs %v", attempt, d1, d2)
		}
		exp := 100 * time.Millisecond << attempt
		if exp > time.Second {
			exp = time.Second
		}
		if d1 < exp/2 || d1 >= exp {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, exp/2, exp)
		}
	}
	if d := b.Delay(-3); d != b.Delay(0) {
		t.Fatalf("negative attempt: %v, want the attempt-0 delay", d)
	}
	// Zero-value defaults.
	var zb Backoff
	if d := zb.Delay(0); d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Fatalf("zero-value base delay %v outside [50ms, 100ms)", d)
	}
	if d := zb.Delay(30); d < 2500*time.Millisecond || d >= 5*time.Second {
		t.Fatalf("zero-value capped delay %v outside [2.5s, 5s)", d)
	}
	// Different seeds decorrelate.
	other := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if b.Delay(attempt) != other.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical 8-attempt jitter traces")
	}
}

func TestCountsString(t *testing.T) {
	p := New(1,
		Rule{Op: "b", Kind: Drop, Count: 1},
		Rule{Op: "a", Kind: Err, Count: 1},
	)
	p.Next("a")
	p.Next("b")
	want := "a:err=1\nb:drop=1\n"
	if got := p.CountsString(); got != want {
		t.Fatalf("CountsString: %q, want %q", got, want)
	}
}
