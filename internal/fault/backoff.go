package fault

import "time"

// Backoff is a capped exponential backoff schedule with deterministic
// jitter: Delay(attempt) is a pure function of (Seed, attempt), so a
// retry trace replays identically under the same seed — the property the
// chaos oracle leans on when it asserts a re-run reproduces the same
// fault schedule. Jitter spreads each delay uniformly over
// [delay/2, delay), the decorrelation that keeps a restarted worker
// fleet from stampeding its coordinator in lockstep.
type Backoff struct {
	// Base is the attempt-0 delay (default 100ms); Cap bounds the
	// exponential growth (default 5s).
	Base time.Duration
	Cap  time.Duration
	// Seed feeds the deterministic jitter draw.
	Seed uint64
}

// Delay returns the backoff before retry number attempt (0-based):
// min(Cap, Base·2^attempt), jittered deterministically.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Uniform in [d/2, d): deterministic in (Seed, attempt).
	u := float64(splitmix64(b.Seed^uint64(attempt)+0x9e37)>>11) / (1 << 53)
	return d/2 + time.Duration(u*float64(d/2))
}
