package farm

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/sweep"
	"repro/internal/variation"
)

// run is one in-flight distributed solve or sweep being assembled by the
// coordinator. All fields are guarded by the coordinator's mu except done,
// which is closed exactly once (under mu) when the run completes, fails,
// or is cancelled.
type run struct {
	id     int64
	spec   api.CircuitSpec
	done   chan struct{}
	closed bool  // done has been closed (complete, failed, or cancelled)
	err    error // terminal error, set before done closes
	dead   bool  // failed or cancelled: results are refused, jobs dropped

	// Sweep assembly state. res is the sweep.Plan skeleton being filled in
	// row-major order; recorded marks which cells have landed (first write
	// wins — duplicates from re-run jobs are bitwise equal, so dropping
	// them is free); remaining counts unrecorded cells.
	res       *sweep.Result
	recorded  []bool
	remaining int
	onCell    func(*sweep.Cell)
	// Warm-wavefront bookkeeping: while spineLeft > 0 the column-0 spine
	// job is still streaming; when it reaches zero the coordinator creates
	// the row-tail jobs, seeding each from its spine cell's recorded sizes
	// and dual. rowDual is nil for primal-only and independent dispatch.
	spineLeft int
	rowDual   []*core.DualState
	sweepOpt  sweep.Options

	// Solve state: the single job's outcome.
	solveRes *api.SolveResult

	// Monte-Carlo assembly state. mcSamples is indexed by global sample
	// index minus mcLo; mcRecorded marks landed samples (first write wins,
	// like sweep cells — duplicates from re-runs are bitwise equal);
	// mcLeft counts unrecorded samples.
	mcSamples  []variation.Sample
	mcRecorded []bool
	mcLeft     int
	mcLo       int
	onSample   func(*variation.Sample)
}

// finished reports whether the run stopped accepting results (completed,
// failed, or cancelled). Caller holds c.mu.
func (r *run) finished() bool {
	return r.dead || r.remaining == 0 && r.res != nil || r.solveRes != nil ||
		r.mcRecorded != nil && r.mcLeft == 0
}

// closeLocked closes the run's done channel exactly once. Caller holds
// c.mu.
func (r *run) closeLocked() {
	if !r.closed {
		r.closed = true
		close(r.done)
	}
}

// failLocked marks the run dead with a terminal error and wakes the
// waiter. Pending jobs still in the queue are dropped lazily by popLocked;
// leased jobs' result streams get 410 and their reaped re-queues are
// dropped. Caller holds c.mu.
func (c *Coordinator) failLocked(r *run, err error) {
	if r.closed {
		return
	}
	r.err = err
	r.dead = true
	c.runsFailed++
	r.closeLocked()
}

// completeLocked closes out a finished run. Caller holds c.mu.
func (c *Coordinator) completeLocked(r *run) {
	c.runsCompleted++
	r.closeLocked()
}

// newRunLocked allocates a run. Caller holds c.mu.
func (c *Coordinator) newRunLocked(spec api.CircuitSpec) *run {
	c.nextRun++
	r := &run{id: c.nextRun, spec: spec, done: make(chan struct{})}
	c.runs[r.id] = r
	return r
}

// addJobLocked creates and enqueues one job for the run. Caller holds
// c.mu.
func (c *Coordinator) addJobLocked(r *run, seq int, solve *api.SolveJob, sw *api.SweepJob, mc *api.MonteCarloJob) {
	c.nextJob++
	j := &job{
		run: r,
		seq: seq,
		msg: api.Job{ID: c.nextJob, Circuit: r.spec, Solve: solve, Sweep: sw, MonteCarlo: mc},
	}
	c.enqueueLocked(j)
}

// await blocks until the run finishes or ctx is cancelled; cancellation
// kills the run so its jobs stop being dispatched and in-flight results
// are refused.
func (c *Coordinator) await(ctx context.Context, r *run) error {
	select {
	case <-r.done:
	case <-ctx.Done():
		c.mu.Lock()
		if !r.closed {
			r.err = ctx.Err()
			r.dead = true
			r.closeLocked()
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.runs, r.id)
	return r.err
}

// Solve dispatches one full OGWS solve to the farm and waits for its
// result. The job ships every input the solve depends on (bounds, seed
// sizes, dual multipliers, solver knobs), so whichever worker leases it
// returns the identical bytes the serving host's own solver would produce.
func (c *Coordinator) Solve(ctx context.Context, spec api.CircuitSpec, job api.SolveJob) (*api.SolveResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	r := c.newRunLocked(spec)
	c.addJobLocked(r, 0, &job, nil, nil)
	c.mu.Unlock()
	if err := c.await(ctx, r); err != nil {
		return nil, err
	}
	if r.solveRes == nil {
		return nil, fmt.Errorf("farm: solve run %d finished without a result", r.id)
	}
	return r.solveRes, nil
}

// Sweep dispatches a bounds-grid sweep across the farm and reassembles
// the row-major grid. The plan is the exact skeleton the local engine
// (sweep.Run) walks, and the dispatch mirrors its schedule:
//
//   - Cold sweeps (and warm sweeps under ColdLRS+PrimalOnly, whose OGWS
//     trajectory is provably seed-independent — the warm-vs-cold oracle
//     pins it) fan out as one independent job per grid row, every cell
//     seeded from the instance's initial sizes.
//   - Warm sweeps dispatch the column-0 spine as a single chained job
//     (cell i seeded from cell i−1's sizes and dual, exactly the local
//     spine walk); once the spine is fully recorded, each row's eastward
//     tail becomes a chained job carrying its spine cell's sizes and dual
//     in the lease. Neighbour seeds always ship with the lease — a worker
//     never needs another worker's state.
//
// Every job's outcome is a pure function of its lease message, so worker
// death followed by re-queue re-produces the missing cells bitwise and the
// assembled grid equals the single-process result byte for byte.
//
// Only opt's solver knobs, axes, bounds, and OnCell are honoured;
// SweepWorkers is meaningless here (parallelism is the worker fleet) and
// Cancel is replaced by ctx. OnCell runs on coordinator goroutines as
// results stream in: cells within one row arrive in ascending column
// order, rows interleave freely — the same contract as the local engine.
func (c *Coordinator) Sweep(ctx context.Context, spec api.CircuitSpec, inst *bench.Instance, opt sweep.Options) (*sweep.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res, initX, err := sweep.Plan(inst, opt)
	if err != nil {
		return nil, err
	}
	rows, cols := res.Rows, res.Cols
	// Seed-independent dispatch covers cold sweeps by definition and the
	// ColdLRS+PrimalOnly regime by the pinned warm-vs-cold oracle: the
	// solved bits cannot depend on the seed, so cells need no neighbour
	// state and every row can go out immediately.
	independent := opt.Cold || (opt.ColdLRS && opt.PrimalOnly)
	if !opt.Cold {
		// Fill the wavefront seeding metadata the local warm engine records
		// (cold grids keep the unseeded −1 markers from the plan).
		for i := 1; i < rows; i++ {
			res.At(i, 0).SeedRow, res.At(i, 0).SeedCol = i-1, 0
		}
		for i := 0; i < rows; i++ {
			for j := 1; j < cols; j++ {
				res.At(i, j).SeedRow, res.At(i, j).SeedCol = i, j-1
			}
		}
	}

	c.mu.Lock()
	r := c.newRunLocked(spec)
	r.res = res
	r.recorded = make([]bool, len(res.Cells))
	r.remaining = len(res.Cells)
	r.onCell = opt.OnCell
	r.sweepOpt = opt
	if independent {
		for i := 0; i < rows; i++ {
			c.addJobLocked(r, i, nil, &api.SweepJob{
				Lockstep: opt.Lockstep,
				Seed:     initX,
				Cells:    cellSpecs(res, i, 0, cols),

				MaxIterations:     opt.MaxIterations,
				Epsilon:           opt.Epsilon,
				PrimalOnly:        opt.PrimalOnly,
				ColdLRS:           opt.ColdLRS,
				FullPasses:        opt.FullPasses,
				ActiveSetTol:      opt.ActiveSetTol,
				CutoverHysteresis: opt.CutoverHysteresis,
			}, nil)
		}
	} else {
		r.spineLeft = rows
		r.rowDual = make([]*core.DualState, rows)
		c.addJobLocked(r, 0, nil, &api.SweepJob{
			Chain:      true,
			ReturnDual: !opt.PrimalOnly,
			Seed:       initX,
			Cells:      spineSpecs(res),

			MaxIterations:     opt.MaxIterations,
			Epsilon:           opt.Epsilon,
			PrimalOnly:        opt.PrimalOnly,
			ColdLRS:           opt.ColdLRS,
			FullPasses:        opt.FullPasses,
			ActiveSetTol:      opt.ActiveSetTol,
			CutoverHysteresis: opt.CutoverHysteresis,
		}, nil)
	}
	c.mu.Unlock()

	if err := c.await(ctx, r); err != nil {
		return nil, err
	}
	res.Frontier = sweep.Frontier(res.Cells)
	return res, nil
}

// cellSpecs extracts the wire specs for row i, columns [j0, j1).
func cellSpecs(res *sweep.Result, i, j0, j1 int) []api.CellSpec {
	specs := make([]api.CellSpec, 0, j1-j0)
	for j := j0; j < j1; j++ {
		c := res.At(i, j)
		specs = append(specs, api.CellSpec{
			Row: i, Col: j,
			DelayScale: c.DelayScale, NoiseScale: c.NoiseScale,
			Bounds: c.Bounds,
		})
	}
	return specs
}

// spineSpecs extracts column 0 top to bottom — the warm wavefront spine.
func spineSpecs(res *sweep.Result) []api.CellSpec {
	specs := make([]api.CellSpec, 0, res.Rows)
	for i := 0; i < res.Rows; i++ {
		c := res.At(i, 0)
		specs = append(specs, api.CellSpec{
			Row: i, Col: 0,
			DelayScale: c.DelayScale, NoiseScale: c.NoiseScale,
			Bounds: c.Bounds,
		})
	}
	return specs
}

// recordCell lands one streamed cell result into its run's grid. First
// write wins: a duplicate (an at-least-once re-run after a reap) is
// bitwise equal by the determinism contract, so it is simply dropped.
// Returns the cell to hand to the run's OnCell callback (nil for
// duplicates) — the caller invokes it outside the lock.
func (c *Coordinator) recordCell(j *job, cr *api.CellResult) (*sweep.Cell, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := j.run
	if r.res == nil {
		return nil, fmt.Errorf("farm: cell result for non-sweep run %d", r.id)
	}
	if cr.Row < 0 || cr.Row >= r.res.Rows || cr.Col < 0 || cr.Col >= r.res.Cols {
		return nil, fmt.Errorf("farm: cell (%d,%d) outside the %dx%d grid of run %d", cr.Row, cr.Col, r.res.Rows, r.res.Cols, r.id)
	}
	if cr.Result == nil {
		return nil, fmt.Errorf("farm: cell (%d,%d) of run %d arrived without a result", cr.Row, cr.Col, r.id)
	}
	idx := cr.Row*r.res.Cols + cr.Col
	if r.recorded[idx] {
		return nil, nil // duplicate from a re-run: bitwise equal, drop
	}
	r.recorded[idx] = true
	r.remaining--
	cell := &r.res.Cells[idx]
	cell.Result = cr.Result
	cell.SolveSec = cr.SolveSec
	if w := c.workers[j.worker]; w != nil {
		w.cellsSolved++
	}
	if r.spineLeft > 0 && cr.Col == 0 {
		if r.rowDual != nil {
			r.rowDual[cr.Row] = cr.Dual
		}
		r.spineLeft--
		if r.spineLeft == 0 {
			c.addRowJobsLocked(r)
		}
	}
	if r.remaining == 0 {
		c.completeLocked(r)
	}
	return cell, nil
}

// addRowJobsLocked creates the eastward row-tail jobs once the spine is
// fully recorded: row i's job chains from the spine cell's solved sizes
// (and, unless primal-only, its dual multipliers), both shipped inside the
// lease. Caller holds c.mu.
func (c *Coordinator) addRowJobsLocked(r *run) {
	rows, cols := r.res.Rows, r.res.Cols
	if cols <= 1 {
		return
	}
	opt := r.sweepOpt
	for i := 0; i < rows; i++ {
		var dual *core.DualState
		if r.rowDual != nil {
			dual = r.rowDual[i]
		}
		c.addJobLocked(r, 1+i, nil, &api.SweepJob{
			Chain: true,
			Seed:  r.res.At(i, 0).Result.X,
			Dual:  dual,
			Cells: cellSpecs(r.res, i, 1, cols),

			MaxIterations:     opt.MaxIterations,
			Epsilon:           opt.Epsilon,
			PrimalOnly:        opt.PrimalOnly,
			ColdLRS:           opt.ColdLRS,
			FullPasses:        opt.FullPasses,
			ActiveSetTol:      opt.ActiveSetTol,
			CutoverHysteresis: opt.CutoverHysteresis,
		}, nil)
	}
}

// MonteCarlo dispatches a Monte-Carlo run across the farm and
// reassembles its sample set in global index order. The job describes
// the full range [Lo, Hi); the coordinator cuts it into contiguous
// shards — one per live worker, at least one, at most one per sample —
// and every shard ships only (seed, sigmas, range, bounds, knobs).
// Sample i's perturbation is a pure function of (seed, i, sigmas) and
// its solve a pure function of the perturbed instance, so the
// reassembled set equals the single-process variation.MonteCarlo bytes
// regardless of how the range was cut, which workers ran which shard, or
// how many died and were re-queued mid-shard.
//
// onSample, when non-nil, observes samples as they are first recorded,
// on coordinator goroutines, in arrival order (shards interleave;
// within one shard indices ascend) — the same observational contract as
// Sweep's OnCell.
func (c *Coordinator) MonteCarlo(ctx context.Context, spec api.CircuitSpec, job api.MonteCarloJob, onSample func(*variation.Sample)) ([]variation.Sample, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := job.Sigmas.Validate(); err != nil {
		return nil, err
	}
	if job.Lo < 0 || job.Hi <= job.Lo {
		return nil, fmt.Errorf("farm: montecarlo range [%d, %d) is empty or negative", job.Lo, job.Hi)
	}
	k := job.Hi - job.Lo
	shards := c.LiveWorkers()
	if shards < 1 {
		shards = 1
	}
	if shards > k {
		shards = k
	}

	c.mu.Lock()
	r := c.newRunLocked(spec)
	r.mcSamples = make([]variation.Sample, k)
	r.mcRecorded = make([]bool, k)
	r.mcLeft = k
	r.mcLo = job.Lo
	r.onSample = onSample
	for s := 0; s < shards; s++ {
		shard := job
		shard.Lo = job.Lo + s*k/shards
		shard.Hi = job.Lo + (s+1)*k/shards
		c.addJobLocked(r, s, nil, nil, &shard)
	}
	c.mu.Unlock()

	if err := c.await(ctx, r); err != nil {
		return nil, err
	}
	return r.mcSamples, nil
}

// recordSample lands one streamed Monte-Carlo sample into its run's
// set. First write wins, exactly as recordCell: a duplicate from an
// at-least-once re-run is bitwise equal by the determinism contract, so
// it is dropped. Returns the sample to hand to the run's onSample hook
// (nil for duplicates) — the caller invokes it outside the lock.
func (c *Coordinator) recordSample(j *job, sr *api.MCSampleResult) (*variation.Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := j.run
	if r.mcRecorded == nil {
		return nil, fmt.Errorf("farm: sample result for non-montecarlo run %d", r.id)
	}
	idx := sr.Index - r.mcLo
	if idx < 0 || idx >= len(r.mcRecorded) {
		return nil, fmt.Errorf("farm: sample %d outside the %d-sample set of run %d", sr.Index, len(r.mcRecorded), r.id)
	}
	if sr.Result == nil {
		return nil, fmt.Errorf("farm: sample %d of run %d arrived without a result", sr.Index, r.id)
	}
	if r.mcRecorded[idx] {
		return nil, nil // duplicate from a re-run: bitwise equal, drop
	}
	r.mcRecorded[idx] = true
	r.mcLeft--
	r.mcSamples[idx] = variation.Sample{Index: sr.Index, Perturb: sr.Perturb, Result: sr.Result}
	if w := c.workers[j.worker]; w != nil {
		w.samplesSolved++
	}
	if r.mcLeft == 0 {
		c.completeLocked(r)
	}
	return &r.mcSamples[idx], nil
}

// recordSolve lands a solve job's result.
func (c *Coordinator) recordSolve(j *job, sr *api.SolveResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := j.run
	if r.res != nil {
		return fmt.Errorf("farm: solve result for sweep run %d", r.id)
	}
	if sr.Result == nil {
		return fmt.Errorf("farm: solve result for run %d arrived without a result", r.id)
	}
	if r.solveRes != nil {
		return nil // duplicate from a re-run: bitwise equal, drop
	}
	r.solveRes = sr
	if w := c.workers[j.worker]; w != nil {
		w.solvesDone++
	}
	c.completeLocked(r)
	return nil
}
