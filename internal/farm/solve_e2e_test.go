package farm

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/netlist"
)

// solveFarm spins up a coordinator with one in-process worker over real
// HTTP and returns it; cleanup tears both down and verifies the worker
// exited clean.
func solveFarm(t *testing.T) *Coordinator {
	t.Helper()
	coord := New(Options{HeartbeatInterval: 50 * time.Millisecond})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithCancel(context.Background())
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{Coordinator: ts.URL, LeaseWait: 50 * time.Millisecond})
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-workerErr; err != nil {
			t.Errorf("worker exited with %v", err)
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for coord.LiveWorkers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return coord
}

// localSolve mirrors the worker's executeSolve (which itself mirrors the
// service's local path) to produce the oracle result. The seed is the
// instance's own initial sizes — the same default the service resolves
// for a fresh solve.
func localSolve(t *testing.T, inst *bench.Instance, b bench.Bounds, maxIter int) (*core.Result, *core.DualState) {
	t.Helper()
	opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	opt.MaxIterations = maxIter
	opt.Workers = -1
	opt.Incremental = true
	replica, err := inst.Replica()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.NewSolver(replica, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.RunFromDual(inst.Eval.X, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, sol.DualState()
}

// TestDistributedSolveSynthetic: a full solve of a built-in synthetic
// circuit dispatched to a worker — which materializes its own replica
// from the spec — returns the identical bytes a local solver produces.
func TestDistributedSolveSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real circuit over a worker round-trip")
	}
	coord := solveFarm(t)
	spec, ok := bench.SpecByName("c432")
	if !ok {
		t.Fatal("no c432 spec")
	}
	inst, err := bench.BuildInstance(spec, bench.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := bench.DeriveBounds(inst)

	got, err := coord.Solve(context.Background(),
		api.CircuitSpec{Key: "solve-c432", Synthetic: "c432"},
		api.SolveJob{Bounds: b, MaxIterations: 8, Seed: inst.Eval.X})
	if err != nil {
		t.Fatalf("distributed solve: %v", err)
	}
	wantRes, wantDual := localSolve(t, inst, b, 8)
	if !reflect.DeepEqual(wantRes, got.Result) {
		t.Errorf("distributed solve diverged from local")
	}
	if !reflect.DeepEqual(wantDual, got.Dual) {
		t.Errorf("distributed solve's dual state diverged from local")
	}
	if got.Workers <= 0 || got.Eval.FullRecomputes+got.Eval.IncRecomputes == 0 {
		t.Errorf("solve result is missing work counters: %+v", got)
	}
	if st := coord.StatsSnapshot(); st.Workers[0].SolvesCompleted != 1 {
		t.Errorf("worker solve counter: %+v", st.Workers)
	}
}

// TestDistributedSolveNetlistUpload covers the worker's raw-netlist
// materialization path: the spec ships .bench text and a geometry seed,
// and the worker's assembled replica solves to the same bytes as a local
// assembly of the same text.
func TestDistributedSolveNetlistUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real circuit over a worker round-trip")
	}
	coord := solveFarm(t)
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "c17.bench"))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.Parse("c17", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.AssembleNetlist(nl, 7, bench.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := bench.DeriveBounds(inst)

	got, err := coord.Solve(context.Background(),
		api.CircuitSpec{Key: "solve-c17", Netlist: string(data), Name: "c17", Seed: 7},
		api.SolveJob{Bounds: b, MaxIterations: 8, Seed: inst.Eval.X})
	if err != nil {
		t.Fatalf("distributed netlist solve: %v", err)
	}
	wantRes, _ := localSolve(t, inst, b, 8)
	if !reflect.DeepEqual(wantRes, got.Result) {
		t.Errorf("distributed netlist solve diverged from local")
	}
}
