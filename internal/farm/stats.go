package farm

import "sort"

// WorkerStats is one worker's row in the farm section of GET /stats.
type WorkerStats struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Live bool   `json:"live"`
	// JobsCompleted counts result streams that reached their done marker;
	// CellsSolved counts first-recorded sweep cells (duplicates from
	// re-runs are not credited); SolvesCompleted counts full solves;
	// SamplesSolved counts first-recorded Monte-Carlo samples.
	JobsCompleted   int64 `json:"jobs_completed"`
	CellsSolved     int64 `json:"cells_solved"`
	SolvesCompleted int64 `json:"solves_completed"`
	SamplesSolved   int64 `json:"samples_solved"`
}

// Stats is the farm section of the service's GET /stats payload.
type Stats struct {
	// Workers lists every worker ever registered (reaped ones included,
	// marked not live), ordered by registration.
	Workers     []WorkerStats `json:"workers"`
	LiveWorkers int           `json:"live_workers"`
	JobsQueued  int           `json:"jobs_queued"`
	JobsLeased  int           `json:"jobs_leased"`
	// Lifetime counters: completed jobs, jobs re-queued after a reap,
	// workers reaped, and runs (distributed solves/sweeps) by outcome.
	JobsCompleted int64 `json:"jobs_completed"`
	JobsRequeued  int64 `json:"jobs_requeued"`
	WorkersReaped int64 `json:"workers_reaped"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsFailed    int64 `json:"runs_failed"`
	// Reconnects counts registrations under a worker name already on the
	// books — a fleet member coming back after a crash or coordinator
	// outage rather than a brand-new node.
	Reconnects int64 `json:"reconnects"`
}

// StatsSnapshot returns the coordinator's current counters.
func (c *Coordinator) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		JobsQueued:    len(c.queue),
		JobsLeased:    len(c.leases),
		JobsCompleted: c.jobsCompleted,
		JobsRequeued:  c.jobsRequeued,
		WorkersReaped: c.workersReaped,
		RunsCompleted: c.runsCompleted,
		RunsFailed:    c.runsFailed,
		Reconnects:    c.reconnects,
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStats{
			ID: w.id, Name: w.name, Live: !w.dead,
			JobsCompleted:   w.jobsCompleted,
			CellsSolved:     w.cellsSolved,
			SolvesCompleted: w.solvesDone,
			SamplesSolved:   w.samplesSolved,
		})
		if !w.dead {
			st.LiveWorkers++
		}
	}
	// Registration order: ids are "w1", "w2", … so numeric length sorts
	// before lexicographic within equal lengths.
	sort.Slice(st.Workers, func(i, j int) bool {
		a, b := st.Workers[i].ID, st.Workers[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return st
}
