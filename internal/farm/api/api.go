// Package api defines the versioned wire protocol between the farm
// coordinator (internal/farm, embedded in ogwsd -coordinator) and its
// worker processes (cmd/ogws-worker). Four endpoints, all JSON over HTTP
// under /farm/v1/:
//
//	POST /farm/v1/register   RegisterRequest  → RegisterResponse
//	POST /farm/v1/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /farm/v1/lease      LeaseRequest     → LeaseResponse
//	POST /farm/v1/result     NDJSON ResultLine stream → ResultResponse
//	                         (?worker=…&job=…&lease=… query identifies the lease)
//
// Every numeric payload that feeds a solve — bounds, seed sizes, dual
// multipliers, results — round-trips bitwise through encoding/json
// (shortest round-trippable float64 representation), so a job executed on
// any worker produces the identical bytes the coordinator's own solver
// would have. That property, plus deterministic job content (a lease
// always carries the full seed it must be solved from), is the farm's
// determinism contract: re-running a leased job after a worker death
// reproduces the exact cells the dead worker would have streamed.
package api

import (
	"errors"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rc"
	"repro/internal/variation"
)

// Version is the protocol version; the coordinator rejects workers that
// register with any other value (no skew tolerated — a worker from a
// different build could compute different bits).
const Version = 1

// CircuitSpec tells a worker how to materialize its own replica of a
// coordinator circuit. Exactly one of Synthetic, Netlist, or Grid is set;
// Key is the coordinator's instance-cache key for the same circuit
// (bench.SpecKey / bench.NetlistKey / bench.GridKey), which the worker
// uses as its local cache key — materialization is deterministic in the
// spec, so equal keys mean bit-identical instances on every node.
type CircuitSpec struct {
	Key string `json:"key"`
	// Synthetic names a built-in ISCAS85-class spec (bench.SpecByName).
	Synthetic string `json:"synthetic,omitempty"`
	// Netlist is raw .bench netlist text; Seed its geometry seed.
	Netlist string `json:"netlist,omitempty"`
	Name    string `json:"name,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// WireLengthScale is the pipeline option uploads and synthetics carry
	// (0 = default 1).
	WireLengthScale float64 `json:"wire_length_scale,omitempty"`
	// Grid selects a bench.GridInstance mesh.
	Grid *GridSpec `json:"grid,omitempty"`
}

// GridSpec is the shape of a bench.GridInstance mesh.
type GridSpec struct {
	Width   int  `json:"width"`
	Layers  int  `json:"layers"`
	Coupled bool `json:"coupled"`
}

// Validate checks that the spec names exactly one circuit source and
// carries a cache key.
func (s *CircuitSpec) Validate() error {
	n := 0
	if s.Synthetic != "" {
		n++
	}
	if s.Netlist != "" {
		n++
	}
	if s.Grid != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("farm: circuit spec must set exactly one of synthetic, netlist, or grid (got %d)", n)
	}
	if s.Key == "" {
		return errors.New("farm: circuit spec is missing its cache key")
	}
	return nil
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Version must equal api.Version; anything else is rejected.
	Version int `json:"version"`
	// Name labels the worker in /stats (default: its assigned id).
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// HeartbeatMillis is how often the worker must POST a heartbeat;
	// LeaseTTLMillis is how long the coordinator tolerates silence before
	// reaping the worker and re-queueing its leased jobs.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
	LeaseTTLMillis  int64 `json:"lease_ttl_millis"`
}

// HeartbeatRequest refreshes a worker's liveness (and with it every lease
// it holds).
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// LeaseRequest asks for one job. WaitMillis long-polls: the coordinator
// holds the request open up to that long waiting for work (bounded by its
// own cap) instead of making idle workers busy-poll.
type LeaseRequest struct {
	WorkerID   string `json:"worker_id"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
}

// LeaseResponse grants at most one job. A nil Job means no work was
// available within the wait window; Lease is the token every result for
// this job must present — stale tokens (after a reap re-queued the job)
// are rejected, which is what makes duplicate execution harmless.
type LeaseResponse struct {
	Job   *Job   `json:"job,omitempty"`
	Lease string `json:"lease,omitempty"`
}

// Job is one leased unit of work: a full solve or a batch of sweep cells,
// with the circuit spec the worker needs to materialize its replica.
// Exactly one of Solve / Sweep is set.
type Job struct {
	ID         int64          `json:"id"`
	Circuit    CircuitSpec    `json:"circuit"`
	Solve      *SolveJob      `json:"solve,omitempty"`
	Sweep      *SweepJob      `json:"sweep,omitempty"`
	MonteCarlo *MonteCarloJob `json:"montecarlo,omitempty"`
}

// Kind names the job's work type, for logs and stats.
func (j *Job) Kind() string {
	switch {
	case j.Solve != nil:
		return "solve"
	case j.Sweep != nil:
		return "sweep"
	case j.MonteCarlo != nil:
		return "montecarlo"
	default:
		return "empty"
	}
}

// SolveJob is one full OGWS solve: the exact inputs the service's local
// path would hand core.NewSolver + RunFromDual, shipped with the lease.
// Solver goroutine width is deliberately absent — results are
// bit-identical at every width (pinned since PR 1), so each worker picks
// its own.
type SolveJob struct {
	Bounds        bench.Bounds    `json:"bounds"`
	MaxIterations int             `json:"max_iterations,omitempty"`
	Epsilon       float64         `json:"epsilon,omitempty"`
	Full          bool            `json:"full,omitempty"`
	Warm          bool            `json:"warm,omitempty"`
	Seed          []float64       `json:"seed,omitempty"`
	Dual          *core.DualState `json:"dual,omitempty"`
}

// SweepJob is a batch of sweep cells. With Chain set the cells form a
// seeding chain solved in order on one evaluator (each cell seeded from
// its predecessor's sizes and dual — a warm wavefront spine or row);
// otherwise every cell solves independently from Seed on a fresh
// evaluator (cold sweeps). Either way the batch's outcome is a pure
// function of this message, which is why re-queued batches reassemble
// bit-identically no matter which worker re-runs them.
type SweepJob struct {
	Chain bool `json:"chain,omitempty"`
	// Lockstep asks the worker to batch a non-chained job's cells through
	// one shared evaluator in lockstep (sweep.Options.Lockstep) instead of
	// per-cell evaluators — scheduling only, the streamed cells are
	// bit-identical either way. Ignored for chained batches (a seeding
	// chain is inherently sequential).
	Lockstep bool `json:"lockstep,omitempty"`
	// ReturnDual asks the worker to attach each cell's final dual state to
	// its result line — the coordinator needs the spine's duals to seed
	// the row batches.
	ReturnDual bool            `json:"return_dual,omitempty"`
	Seed       []float64       `json:"seed"`
	Dual       *core.DualState `json:"dual,omitempty"`
	Cells      []CellSpec      `json:"cells"`
	// Solver knobs, mirroring sweep.Options (width omitted, as in SolveJob).
	MaxIterations     int     `json:"max_iterations,omitempty"`
	Epsilon           float64 `json:"epsilon,omitempty"`
	PrimalOnly        bool    `json:"primal_only,omitempty"`
	ColdLRS           bool    `json:"cold_lrs,omitempty"`
	FullPasses        bool    `json:"full_passes,omitempty"`
	ActiveSetTol      float64 `json:"active_set_tol,omitempty"`
	CutoverHysteresis int     `json:"cutover_hysteresis,omitempty"`
}

// MonteCarloJob is one contiguous shard [Lo, Hi) of a Monte-Carlo run's
// global sample set. The lease ships the run's seed and sigmas — never
// drawn perturbations — and the worker re-derives its shard as
// variation.Perturbs(Seed, Hi, Sigmas)[Lo:Hi]: sample i's scalars are a
// pure function of (Seed, i, Sigmas) by the sampler's stream discipline,
// so any sharding of the index range draws the identical values the full
// local run draws, and each sample's solve (variation.SolveSamples) is
// equally pure in its own perturbation. Reassembling shards by global
// index therefore reproduces the single-process run byte for byte, no
// matter how many workers shared the samples or how many died mid-shard.
type MonteCarloJob struct {
	// Bounds are the run's nominal base bounds; each sample is solved
	// against its perturbedBounds carry, computed worker-side from the
	// same arithmetic the local path uses.
	Bounds bench.Bounds     `json:"bounds"`
	Seed   uint64           `json:"seed"`
	Sigmas variation.Sigmas `json:"sigmas"`
	// Lo/Hi bound the shard's global sample indices: samples Lo ≤ i < Hi.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Solver knobs (width omitted, as in SolveJob — results are
	// bit-identical at every width).
	MaxIterations int     `json:"max_iterations,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
}

// CellSpec is one grid point to solve: its row-major position and the
// fully resolved bounds the coordinator planned for it.
type CellSpec struct {
	Row        int          `json:"row"`
	Col        int          `json:"col"`
	DelayScale float64      `json:"delay_scale"`
	NoiseScale float64      `json:"noise_scale"`
	Bounds     bench.Bounds `json:"bounds"`
}

// ResultLine is one NDJSON line of a result stream: a solved sweep cell,
// a completed solve, a terminal error (the job failed deterministically —
// re-queueing would fail identically), or the final done marker. A stream
// that ends without Done or Error (worker death mid-job) leaves the job
// leased until the reaper re-queues it; cells already received stay
// recorded, because the re-run reproduces them bitwise.
type ResultLine struct {
	Cell   *CellResult     `json:"cell,omitempty"`
	Solve  *SolveResult    `json:"solve,omitempty"`
	Sample *MCSampleResult `json:"sample,omitempty"`
	Done   bool            `json:"done,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// MCSampleResult is one solved Monte-Carlo sample, addressed by its
// global index in the run's sample set (not its position within the
// shard), so the coordinator reassembles shards without knowing how the
// range was cut.
type MCSampleResult struct {
	Index   int          `json:"index"`
	Perturb rc.Perturb   `json:"perturb"`
	Result  *core.Result `json:"result"`
}

// CellResult is one solved sweep cell.
type CellResult struct {
	Row      int             `json:"row"`
	Col      int             `json:"col"`
	Result   *core.Result    `json:"result"`
	Dual     *core.DualState `json:"dual,omitempty"` // only when ReturnDual
	SolveSec float64         `json:"solve_sec"`
}

// SolveResult is a completed SolveJob: the full solver outcome plus the
// dual snapshot (for save_as warm-start chains) and the work counters the
// serving host folds into its /stats.
type SolveResult struct {
	Result          *core.Result    `json:"result"`
	Dual            *core.DualState `json:"dual,omitempty"`
	Workers         int             `json:"workers"`
	SolveSec        float64         `json:"solve_sec"`
	Eval            rc.EvalStats    `json:"eval"`
	HysteresisTrips int64           `json:"hysteresis_trips"`
	RevertedSweeps  int64           `json:"reverted_sweeps"`
}

// ResultResponse acknowledges a consumed result stream.
type ResultResponse struct {
	OK bool `json:"ok"`
}
