package api

import (
	"strings"
	"testing"
)

func TestCircuitSpecValidate(t *testing.T) {
	grid := &GridSpec{Width: 4, Layers: 3, Coupled: true}
	cases := []struct {
		name    string
		spec    CircuitSpec
		wantErr string
	}{
		{"synthetic", CircuitSpec{Key: "k", Synthetic: "c432"}, ""},
		{"netlist", CircuitSpec{Key: "k", Netlist: "INPUT(a)", Name: "up", Seed: 7}, ""},
		{"grid", CircuitSpec{Key: "k", Grid: grid}, ""},
		{"no source", CircuitSpec{Key: "k"}, "exactly one"},
		{"two sources", CircuitSpec{Key: "k", Synthetic: "c432", Grid: grid}, "exactly one"},
		{"all sources", CircuitSpec{Key: "k", Synthetic: "c432", Netlist: "x", Grid: grid}, "exactly one"},
		{"missing key", CircuitSpec{Synthetic: "c432"}, "cache key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestJobKind(t *testing.T) {
	cases := []struct {
		job  Job
		want string
	}{
		{Job{Solve: &SolveJob{}}, "solve"},
		{Job{Sweep: &SweepJob{}}, "sweep"},
		{Job{}, "empty"},
	}
	for _, tc := range cases {
		if got := tc.job.Kind(); got != tc.want {
			t.Errorf("Kind() = %q, want %q", got, tc.want)
		}
	}
}
