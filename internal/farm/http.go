package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/farm/api"
)

// Handler returns the coordinator's HTTP surface — the four /farm/v1/
// endpoints of the job API. Routes are registered with their full paths,
// so the handler can be mounted directly on the ogwsd mux next to the
// service routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /farm/v1/register", c.handleRegister)
	mux.HandleFunc("POST /farm/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /farm/v1/lease", c.handleLease)
	mux.HandleFunc("POST /farm/v1/result", c.handleResult)
	return mux
}

// farmError is the uniform error payload of every non-2xx farm response.
type farmError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // receiver gone: nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, farmError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register request: %v", err)
		return
	}
	resp, err := c.register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req api.HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat request: %v", err)
		return
	}
	if err := c.beat(req.WorkerID); err != nil {
		// 410: the worker was reaped (or never registered) — its cue to
		// exit, since any leased work has already been re-queued.
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.HeartbeatResponse{OK: true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req api.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	job, token, err := c.leaseJob(req.WorkerID, time.Duration(req.WaitMillis)*time.Millisecond)
	if err != nil {
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, api.LeaseResponse{Job: job, Lease: token})
}

// lookupLease resolves a result stream's lease token, distinguishing the
// two terminal refusals: 409 for a stale token (the job was reaped and
// re-queued — the holder should drop the job and lease fresh work) and 410
// for a dead run (failed or cancelled — the work is worthless, stop).
func (c *Coordinator) lookupLease(token string, jobID int64) (*job, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.leases[token]
	if j == nil || j.msg.ID != jobID {
		return nil, http.StatusConflict, errors.New("farm: stale or unknown lease")
	}
	if j.run.dead {
		return nil, http.StatusGone, fmt.Errorf("farm: run %d is no longer accepting results", j.run.id)
	}
	return j, 0, nil
}

// handleResult consumes one NDJSON result stream for a leased job. The
// lease is validated per line, not once: a reap can land mid-stream, and
// from that point the stream's lines belong to a lease that no longer owns
// the job. Lines already recorded before the reap stay recorded — the
// re-run reproduces them bitwise, so the grid is unaffected.
//
// A stream that ends without a done or error line (worker death mid-job)
// leaves the job leased; the reaper re-queues it when the worker's TTL
// lapses.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	token := q.Get("lease")
	var jobID int64
	if _, err := fmt.Sscanf(q.Get("job"), "%d", &jobID); err != nil || token == "" {
		writeError(w, http.StatusBadRequest, "result: job and lease query parameters are required")
		return
	}
	dec := json.NewDecoder(r.Body)
	for {
		var line api.ResultLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				// Mid-job EOF: the worker died with the lease open. Keep the
				// job leased — the reaper owns its fate.
				writeError(w, http.StatusBadRequest, "result: stream ended without a done marker; job stays leased until reap")
			} else {
				writeError(w, http.StatusBadRequest, "result: bad stream line: %v", err)
			}
			return
		}
		j, code, err := c.lookupLease(token, jobID)
		if err != nil {
			writeError(w, code, "%v", err)
			return
		}
		switch {
		case line.Cell != nil:
			cell, err := c.recordCell(j, line.Cell)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if cell != nil && j.run.onCell != nil {
				j.run.onCell(cell)
			}
		case line.Solve != nil:
			if err := c.recordSolve(j, line.Solve); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		case line.Sample != nil:
			s, err := c.recordSample(j, line.Sample)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if s != nil && j.run.onSample != nil {
				j.run.onSample(s)
			}
		case line.Error != "":
			// A worker-reported error is deterministic — a re-run would fail
			// identically — so it fails the whole run, not just the job.
			c.mu.Lock()
			c.failLocked(j.run, fmt.Errorf("farm: job %d failed on worker %s: %s", j.msg.ID, j.worker, line.Error))
			c.releaseLocked(j, false)
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, api.ResultResponse{OK: true})
			return
		case line.Done:
			c.mu.Lock()
			c.releaseLocked(j, true)
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, api.ResultResponse{OK: true})
			return
		default:
			writeError(w, http.StatusBadRequest, "result: empty stream line")
			return
		}
	}
}

// releaseLocked returns a job's lease and marks it done; completed counts
// as finished work for the holding worker. Caller holds c.mu.
func (c *Coordinator) releaseLocked(j *job, completed bool) {
	delete(c.leases, j.lease)
	if completed {
		c.jobsCompleted++
		if w := c.workers[j.worker]; w != nil {
			w.jobsCompleted++
		}
	}
	j.state = jobDone
	j.worker, j.lease = "", ""
}
