package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/netlist"
	"repro/internal/rc"
	"repro/internal/sweep"
)

// WorkerOptions configures one farm worker (cmd/ogws-worker wraps this in
// a flag surface).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. http://host:9090.
	Coordinator string
	// Name labels the worker in the coordinator's /stats.
	Name string
	// SolverWorkers is the per-solve goroutine width; 0 = all cores (a
	// worker process owns its machine). Results are bit-identical at every
	// width, so this is purely a throughput knob.
	SolverWorkers int
	// CacheSize bounds the worker's local instance cache (default 4):
	// materialized circuit replicas kept across jobs, keyed by the
	// coordinator's own cache keys.
	CacheSize int
	// FailAfterCells, when positive, injects the fault the farm smoke
	// exercises: the worker dies (RunWorker returns ErrFaultInjected,
	// heartbeats stop) immediately after streaming its Nth sweep-cell
	// result, leaving its current job leased with the stream open.
	FailAfterCells int
	// LeaseWait is the long-poll window per lease request (default 10s).
	LeaseWait time.Duration
	// Client is the HTTP client (default http.DefaultClient); Logf, when
	// non-nil, receives worker lifecycle lines.
	Client *http.Client
	Logf   func(format string, args ...any)
}

func (o *WorkerOptions) fill() {
	if o.SolverWorkers == 0 {
		o.SolverWorkers = -1 // core's all-cores normalization
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4
	}
	if o.LeaseWait <= 0 {
		o.LeaseWait = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
}

// ErrFaultInjected is returned by RunWorker when WorkerOptions.
// FailAfterCells tripped — the deliberate mid-job death the reaping smoke
// tests rely on.
var ErrFaultInjected = errors.New("farm: worker fault injected")

// worker is one running worker's state.
type worker struct {
	opt   WorkerOptions
	id    string
	cells int // sweep-cell lines streamed so far, for fault injection

	// Bounded local instance cache in insertion order; replicas are
	// bit-identical across processes (the keys hash every materialization
	// input), so cache hits never change results, only skip the front end.
	cache map[string]*bench.Instance
	order []string
}

func (wk *worker) logf(format string, args ...any) {
	if wk.opt.Logf != nil {
		wk.opt.Logf(format, args...)
	}
}

// RunWorker registers with the coordinator and processes leased jobs
// until ctx is cancelled (returns nil), the coordinator reaps or refuses
// the worker (returns the refusal), or a configured fault trips (returns
// ErrFaultInjected). Heartbeats run on a side goroutine at the cadence the
// coordinator assigned at registration.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	opt.fill()
	wk := &worker{opt: opt, cache: map[string]*bench.Instance{}}

	var reg api.RegisterResponse
	status, err := wk.postJSON(ctx, "/farm/v1/register", api.RegisterRequest{Version: api.Version, Name: opt.Name}, &reg)
	if err != nil {
		return fmt.Errorf("farm worker: register: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("farm worker: register refused (%d)", status)
	}
	wk.id = reg.WorkerID
	wk.logf("farm worker %s: registered with %s (heartbeat %dms, lease TTL %dms)", wk.id, opt.Coordinator, reg.HeartbeatMillis, reg.LeaseTTLMillis)

	// The worker context dies with the parent, with a heartbeat refusal,
	// or when the worker loop exits (stopping the heartbeat goroutine).
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	go wk.heartbeatLoop(wctx, cancel, time.Duration(reg.HeartbeatMillis)*time.Millisecond)

	for {
		if wctx.Err() != nil {
			break
		}
		var lease api.LeaseResponse
		status, err := wk.postJSON(wctx, "/farm/v1/lease", api.LeaseRequest{
			WorkerID:   wk.id,
			WaitMillis: wk.opt.LeaseWait.Milliseconds(),
		}, &lease)
		if err != nil {
			if wctx.Err() != nil {
				break
			}
			return fmt.Errorf("farm worker %s: lease: %w", wk.id, err)
		}
		if status == http.StatusGone {
			return fmt.Errorf("farm worker %s: reaped by coordinator", wk.id)
		}
		if status != http.StatusOK || lease.Job == nil {
			continue // empty long-poll window
		}
		err = wk.runJob(wctx, lease.Job, lease.Lease)
		if errors.Is(err, ErrFaultInjected) {
			return err
		}
		if err != nil && wctx.Err() == nil {
			// A per-job failure (stale lease after a slow solve, transient
			// stream error) is not fatal: drop the job and lease fresh work.
			wk.logf("farm worker %s: job %d: %v", wk.id, lease.Job.ID, err)
		}
	}
	if err := context.Cause(wctx); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// heartbeatLoop beats until the context dies; a refusal (the coordinator
// reaped us) cancels the worker with that cause.
func (wk *worker) heartbeatLoop(ctx context.Context, cancel context.CancelCauseFunc, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := wk.postJSON(ctx, "/farm/v1/heartbeat", api.HeartbeatRequest{WorkerID: wk.id}, &api.HeartbeatResponse{})
			if err != nil && ctx.Err() == nil {
				wk.logf("farm worker %s: heartbeat: %v", wk.id, err)
				continue // transient: the TTL, not one miss, decides reaping
			}
			if status == http.StatusGone {
				cancel(fmt.Errorf("farm worker %s: reaped by coordinator", wk.id))
				return
			}
		}
	}
}

// postJSON posts a JSON body and decodes a JSON response, returning the
// HTTP status (error payloads are decoded into the error return).
func (wk *worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.opt.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.opt.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	var fe farmError
	json.NewDecoder(resp.Body).Decode(&fe) //nolint:errcheck // best-effort detail
	if fe.Error != "" && resp.StatusCode != http.StatusGone {
		return resp.StatusCode, errors.New(fe.Error)
	}
	return resp.StatusCode, nil
}

// materialize returns the worker's local replica of the coordinator's
// circuit, building it on a cache miss. Every construction path is
// deterministic in the spec, so equal keys mean bit-identical instances
// on every node — the property that lets workers own their replicas
// instead of shipping evaluator state.
func (wk *worker) materialize(spec api.CircuitSpec) (*bench.Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if inst, ok := wk.cache[spec.Key]; ok {
		return inst, nil
	}
	var (
		inst *bench.Instance
		err  error
	)
	switch {
	case spec.Synthetic != "":
		s, ok := bench.SpecByName(spec.Synthetic)
		if !ok {
			return nil, fmt.Errorf("farm worker: unknown synthetic circuit %q", spec.Synthetic)
		}
		inst, err = bench.BuildInstance(s, bench.PipelineOptions{WireLengthScale: spec.WireLengthScale})
	case spec.Netlist != "":
		name := spec.Name
		if name == "" {
			name = "upload"
		}
		var nl *netlist.Netlist
		if nl, err = netlist.Parse(name, strings.NewReader(spec.Netlist)); err == nil {
			inst, err = bench.AssembleNetlist(nl, spec.Seed, bench.PipelineOptions{WireLengthScale: spec.WireLengthScale})
		}
	default:
		inst, _, err = bench.GridInstance(spec.Grid.Width, spec.Grid.Layers, spec.Grid.Coupled)
	}
	if err != nil {
		return nil, err
	}
	for len(wk.order) >= wk.opt.CacheSize {
		delete(wk.cache, wk.order[0])
		wk.order = wk.order[1:]
	}
	wk.cache[spec.Key] = inst
	wk.order = append(wk.order, spec.Key)
	return inst, nil
}

// runJob executes one leased job, streaming its NDJSON result lines to
// the coordinator as they are produced. The stream is the job's only
// output channel: a terminal error is reported in-band (it fails the run
// deterministically), and a missing done marker tells the coordinator the
// worker died mid-job.
func (wk *worker) runJob(ctx context.Context, job *api.Job, lease string) error {
	pr, pw := io.Pipe()
	url := fmt.Sprintf("%s/farm/v1/result?job=%d&lease=%s", wk.opt.Coordinator, job.ID, lease)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	execErr := make(chan error, 1)
	go func() {
		err := wk.execute(job, pw)
		if err != nil && !errors.Is(err, ErrFaultInjected) {
			// Deterministic failure: report in-band so the coordinator fails
			// the run instead of re-queueing a job that would fail again.
			json.NewEncoder(pw).Encode(api.ResultLine{Error: err.Error()}) //nolint:errcheck // pipe broken: POST error surfaces below
		} else if err == nil {
			err = json.NewEncoder(pw).Encode(api.ResultLine{Done: true})
		}
		pw.Close()
		execErr <- err
	}()

	resp, doErr := wk.opt.Client.Do(req)
	err = <-execErr
	if doErr != nil {
		return doErr
	}
	defer resp.Body.Close()
	if errors.Is(err, ErrFaultInjected) {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return err
	case http.StatusConflict:
		return fmt.Errorf("farm worker %s: lease for job %d went stale (reaped and re-queued)", wk.id, job.ID)
	case http.StatusGone:
		return fmt.Errorf("farm worker %s: run of job %d is dead, dropping results", wk.id, job.ID)
	default:
		return fmt.Errorf("farm worker %s: result stream for job %d refused (%d)", wk.id, job.ID, resp.StatusCode)
	}
}

// execute runs the job's solve or sweep batch, writing result lines to w.
func (wk *worker) execute(job *api.Job, w io.Writer) error {
	inst, err := wk.materialize(job.Circuit)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	switch {
	case job.Sweep != nil:
		return wk.executeSweep(inst, job.Sweep, enc)
	case job.Solve != nil:
		return wk.executeSolve(inst, job.Solve, enc)
	default:
		return fmt.Errorf("farm worker: job %d carries no work", job.ID)
	}
}

// executeSweep solves the batch through sweep.Options.SolveCell — the
// exact code path the single-process engine uses, so equal job inputs
// yield equal bits. Chained batches walk one evaluator with the shipped
// seed threading cell to cell; independent batches give every cell a
// fresh evaluator seeded from the shipped sizes.
func (wk *worker) executeSweep(inst *bench.Instance, sj *api.SweepJob, enc *json.Encoder) error {
	opt := sweep.Options{
		MaxIterations:     sj.MaxIterations,
		Epsilon:           sj.Epsilon,
		Workers:           wk.opt.SolverWorkers,
		PrimalOnly:        sj.PrimalOnly,
		ColdLRS:           sj.ColdLRS,
		FullPasses:        sj.FullPasses,
		ActiveSetTol:      sj.ActiveSetTol,
		CutoverHysteresis: sj.CutoverHysteresis,
	}
	g, cs := inst.Eval.Graph(), inst.Eval.Couplings()
	seed, dual := sj.Seed, sj.Dual
	var ev *rc.Evaluator
	var err error
	for _, cell := range sj.Cells {
		if ev == nil || !sj.Chain {
			if ev, err = rc.NewEvaluator(g, cs); err != nil {
				return err
			}
		}
		res, d, sec, err := opt.SolveCell(ev, cell.Row, cell.Col, cell.Bounds, seed, dual)
		if err != nil {
			return fmt.Errorf("cell (%d,%d): %w", cell.Row, cell.Col, err)
		}
		line := api.ResultLine{Cell: &api.CellResult{
			Row: cell.Row, Col: cell.Col, Result: res, SolveSec: sec,
		}}
		if sj.ReturnDual {
			line.Cell.Dual = d
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		wk.cells++
		if wk.opt.FailAfterCells > 0 && wk.cells >= wk.opt.FailAfterCells {
			wk.logf("farm worker %s: fault injected after %d cells, dying mid-job", wk.id, wk.cells)
			return ErrFaultInjected
		}
		if sj.Chain {
			seed, dual = res.X, d
		}
	}
	return nil
}

// executeSolve runs one full solve, mirroring the service's local path
// (replica evaluator, core solver, RunFromDual) knob for knob.
func (wk *worker) executeSolve(inst *bench.Instance, sj *api.SolveJob, enc *json.Encoder) error {
	opt := core.DefaultOptions(sj.Bounds.A0, sj.Bounds.NoiseBound, sj.Bounds.PowerBound)
	if sj.MaxIterations > 0 {
		opt.MaxIterations = sj.MaxIterations
	}
	if sj.Epsilon > 0 {
		opt.Epsilon = sj.Epsilon
	}
	opt.Workers = wk.opt.SolverWorkers
	opt.Incremental = !sj.Full
	opt.WarmStart = sj.Warm
	replica, err := inst.Replica()
	if err != nil {
		return err
	}
	sol, err := core.NewSolver(replica, opt)
	if err != nil {
		return err
	}
	defer sol.Close()
	start := time.Now()
	res, err := sol.RunFromDual(sj.Seed, sj.Dual)
	if err != nil {
		return err
	}
	return enc.Encode(api.ResultLine{Solve: &api.SolveResult{
		Result:          res,
		Dual:            sol.DualState(),
		Workers:         sol.Workers(),
		SolveSec:        time.Since(start).Seconds(),
		Eval:            replica.Stats(),
		HysteresisTrips: sol.HysteresisTrips(),
		RevertedSweeps:  sol.RevertedSweeps(),
	}})
}
