package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/rc"
	"repro/internal/sweep"
	"repro/internal/variation"
)

// WorkerOptions configures one farm worker (cmd/ogws-worker wraps this in
// a flag surface).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. http://host:9090.
	Coordinator string
	// Name labels the worker in the coordinator's /stats.
	Name string
	// SolverWorkers is the per-solve goroutine width; 0 = all cores (a
	// worker process owns its machine). Results are bit-identical at every
	// width, so this is purely a throughput knob.
	SolverWorkers int
	// CacheSize bounds the worker's local instance cache (default 4):
	// materialized circuit replicas kept across jobs, keyed by the
	// coordinator's own cache keys.
	CacheSize int
	// FailAfterCells, when positive, injects the fault the farm smoke
	// exercises: the worker dies (RunWorker returns ErrFaultInjected,
	// heartbeats stop) immediately after streaming its Nth sweep-cell
	// result, leaving its current job leased with the stream open.
	FailAfterCells int
	// Fault, when non-nil, is the worker's deterministic fault plan. A
	// "worker:cell" rule of kind Crash generalizes FailAfterCells: the
	// worker dies right after streaming the cell the plan selects. Wrap
	// Client's transport with fault.NewTransport to fault the coordinator
	// link as well.
	Fault *fault.Plan
	// Backoff schedules the delays between retries of transient
	// coordinator failures (network errors, 5xx): capped exponential with
	// deterministic jitter. The zero value uses the fault.Backoff defaults
	// (100ms base, 5s cap) with a seed derived from Name, so a fleet's
	// retry waves decorrelate instead of stampeding.
	Backoff fault.Backoff
	// MaxRetries bounds consecutive transient failures of one operation
	// (a register/lease round, or one result-stream replay) before the
	// worker gives up; 0 retries until ctx cancels — a worker outlives any
	// coordinator outage by default.
	MaxRetries int
	// LeaseWait is the long-poll window per lease request (default 10s).
	LeaseWait time.Duration
	// Sleep waits between retries, honouring ctx; injectable so tests
	// drive backoff without wall-clock waits.
	Sleep func(ctx context.Context, d time.Duration)
	// Client is the HTTP client (default http.DefaultClient); Logf, when
	// non-nil, receives worker lifecycle lines.
	Client *http.Client
	Logf   func(format string, args ...any)
}

func (o *WorkerOptions) fill() {
	if o.SolverWorkers == 0 {
		o.SolverWorkers = -1 // core's all-cores normalization
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4
	}
	if o.LeaseWait <= 0 {
		o.LeaseWait = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Backoff.Seed == 0 && o.Name != "" {
		h := fnv.New64a()
		h.Write([]byte(o.Name)) //nolint:errcheck // hash.Write never fails
		o.Backoff.Seed = h.Sum64()
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
			case <-t.C:
			}
		}
	}
}

// ErrFaultInjected is returned by RunWorker when WorkerOptions.
// FailAfterCells (or a "worker:cell" Crash rule in the fault plan) tripped
// — the deliberate mid-job death the reaping smoke tests rely on.
var ErrFaultInjected = errors.New("farm: worker fault injected")

// permanentError marks failures no retry can fix — protocol refusals like
// a version mismatch. Everything else is presumed transient.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// worker is one running worker's state.
type worker struct {
	opt   WorkerOptions
	id    string
	cells int // sweep-cell lines streamed so far, for fault injection

	// Bounded local instance cache in insertion order; replicas are
	// bit-identical across processes (the keys hash every materialization
	// input), so cache hits never change results, only skip the front end.
	cache map[string]*bench.Instance
	order []string
}

func (wk *worker) logf(format string, args ...any) {
	if wk.opt.Logf != nil {
		wk.opt.Logf(format, args...)
	}
}

// RunWorker serves the coordinator until ctx is cancelled (returns nil),
// a permanent refusal lands (returns it), or a configured fault trips
// (returns ErrFaultInjected). Transient failures — a dead or restarting
// coordinator, a dropped lease call, a reap after missed heartbeats —
// never kill the worker: it backs off (capped exponential, deterministic
// jitter) and re-registers for a fresh session, forever by default or up
// to MaxRetries consecutive failures.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	opt.fill()
	wk := &worker{opt: opt, cache: map[string]*bench.Instance{}}
	failures := 0
	for {
		registered, err := wk.session(ctx)
		if registered {
			// The session made real progress; the next failure starts a
			// fresh backoff ramp.
			failures = 0
		}
		switch {
		case ctx.Err() != nil:
			return nil
		case err == nil:
			return nil
		case errors.Is(err, ErrFaultInjected):
			return err
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return err
		}
		failures++
		if opt.MaxRetries > 0 && failures > opt.MaxRetries {
			return fmt.Errorf("farm worker: giving up after %d consecutive failures: %w", failures-1, err)
		}
		d := opt.Backoff.Delay(failures - 1)
		wk.logf("farm worker: %v; reconnecting in %v (attempt %d)", err, d, failures)
		opt.Sleep(ctx, d)
	}
}

// session registers once and serves leases until a failure tears the
// connection down. The first return reports whether registration
// succeeded — the caller's cue to reset its backoff ramp. A nil error
// means ctx was cancelled (clean shutdown).
func (wk *worker) session(ctx context.Context) (bool, error) {
	var reg api.RegisterResponse
	status, err := wk.postJSON(ctx, "/farm/v1/register", api.RegisterRequest{Version: api.Version, Name: wk.opt.Name}, &reg)
	if status >= 400 && status < 500 {
		// A 4xx refusal (protocol version skew) is deterministic: retrying
		// the same binary would be refused forever.
		if err == nil {
			err = fmt.Errorf("refused (%d)", status)
		}
		return false, permanentError{fmt.Errorf("farm worker: register: %w", err)}
	}
	if err != nil {
		return false, fmt.Errorf("farm worker: register: %w", err)
	}
	if status != http.StatusOK {
		return false, fmt.Errorf("farm worker: register refused transiently (%d)", status)
	}
	wk.id = reg.WorkerID
	wk.logf("farm worker %s: registered with %s (heartbeat %dms, lease TTL %dms)", wk.id, wk.opt.Coordinator, reg.HeartbeatMillis, reg.LeaseTTLMillis)

	// The worker context dies with the parent, with a heartbeat refusal,
	// or when the worker loop exits (stopping the heartbeat goroutine).
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	go wk.heartbeatLoop(wctx, cancel, time.Duration(reg.HeartbeatMillis)*time.Millisecond)

	for {
		if wctx.Err() != nil {
			break
		}
		var lease api.LeaseResponse
		status, err := wk.postJSON(wctx, "/farm/v1/lease", api.LeaseRequest{
			WorkerID:   wk.id,
			WaitMillis: wk.opt.LeaseWait.Milliseconds(),
		}, &lease)
		if err != nil {
			if wctx.Err() != nil {
				break
			}
			return true, fmt.Errorf("farm worker %s: lease: %w", wk.id, err)
		}
		if status == http.StatusGone {
			// Reaped or unknown: our leased work was already re-queued, so a
			// fresh identity is the right recovery, not an exit.
			return true, fmt.Errorf("farm worker %s: reaped by coordinator", wk.id)
		}
		if status != http.StatusOK || lease.Job == nil {
			continue // empty long-poll window, or a transient refusal
		}
		err = wk.runJob(wctx, lease.Job, lease.Lease)
		if errors.Is(err, ErrFaultInjected) {
			return true, err
		}
		if err != nil && wctx.Err() == nil {
			// A per-job failure (stale lease after a slow solve, dead run) is
			// not fatal: drop the job and lease fresh work.
			wk.logf("farm worker %s: job %d: %v", wk.id, lease.Job.ID, err)
		}
	}
	if err := context.Cause(wctx); err != nil && ctx.Err() == nil {
		return true, err
	}
	return true, nil
}

// heartbeatLoop beats until the context dies; a refusal (the coordinator
// reaped us) cancels the worker with that cause.
func (wk *worker) heartbeatLoop(ctx context.Context, cancel context.CancelCauseFunc, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := wk.postJSON(ctx, "/farm/v1/heartbeat", api.HeartbeatRequest{WorkerID: wk.id}, &api.HeartbeatResponse{})
			if err != nil && ctx.Err() == nil {
				wk.logf("farm worker %s: heartbeat: %v", wk.id, err)
				continue // transient: the TTL, not one miss, decides reaping
			}
			if status == http.StatusGone {
				cancel(fmt.Errorf("farm worker %s: reaped by coordinator", wk.id))
				return
			}
		}
	}
}

// postJSON posts a JSON body and decodes a JSON response, returning the
// HTTP status (error payloads are decoded into the error return).
func (wk *worker) postJSON(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.opt.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := wk.opt.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	var fe farmError
	json.NewDecoder(resp.Body).Decode(&fe) //nolint:errcheck // best-effort detail
	if fe.Error != "" && resp.StatusCode != http.StatusGone {
		return resp.StatusCode, errors.New(fe.Error)
	}
	return resp.StatusCode, nil
}

// materialize returns the worker's local replica of the coordinator's
// circuit, building it on a cache miss. Every construction path is
// deterministic in the spec, so equal keys mean bit-identical instances
// on every node — the property that lets workers own their replicas
// instead of shipping evaluator state.
func (wk *worker) materialize(spec api.CircuitSpec) (*bench.Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if inst, ok := wk.cache[spec.Key]; ok {
		return inst, nil
	}
	var (
		inst *bench.Instance
		err  error
	)
	switch {
	case spec.Synthetic != "":
		s, ok := bench.SpecByName(spec.Synthetic)
		if !ok {
			return nil, fmt.Errorf("farm worker: unknown synthetic circuit %q", spec.Synthetic)
		}
		inst, err = bench.BuildInstance(s, bench.PipelineOptions{WireLengthScale: spec.WireLengthScale})
	case spec.Netlist != "":
		name := spec.Name
		if name == "" {
			name = "upload"
		}
		var nl *netlist.Netlist
		if nl, err = netlist.Parse(name, strings.NewReader(spec.Netlist)); err == nil {
			inst, err = bench.AssembleNetlist(nl, spec.Seed, bench.PipelineOptions{WireLengthScale: spec.WireLengthScale})
		}
	default:
		inst, _, err = bench.GridInstance(spec.Grid.Width, spec.Grid.Layers, spec.Grid.Coupled)
	}
	if err != nil {
		return nil, err
	}
	for len(wk.order) >= wk.opt.CacheSize {
		delete(wk.cache, wk.order[0])
		wk.order = wk.order[1:]
	}
	wk.cache[spec.Key] = inst
	wk.order = append(wk.order, spec.Key)
	return inst, nil
}

// bestEffortWriter forwards writes until the first failure, then swallows
// everything. It lets a job stream live through a pipe whose far end may
// die mid-request: execution completes regardless, and the buffered copy
// carries the replay.
type bestEffortWriter struct {
	w      io.Writer
	broken bool
}

func (b *bestEffortWriter) Write(p []byte) (int, error) {
	if !b.broken {
		if _, err := b.w.Write(p); err != nil {
			b.broken = true
		}
	}
	return len(p), nil
}

// runJob executes one leased job, streaming its NDJSON result lines to
// the coordinator as they are produced. The stream is the job's only
// output channel: a terminal error is reported in-band (it fails the run
// deterministically), and a missing done marker tells the coordinator the
// worker died mid-job.
//
// Every line is also buffered locally; if the live stream dies in transit
// (network cut, 5xx), the full buffer is re-POSTed with backoff. Replay is
// free by construction — the coordinator records cells first-wins and
// duplicates are bitwise equal — so at-least-once delivery costs nothing.
// 409 (stale lease) and 410 (dead run) stay terminal for the job.
func (wk *worker) runJob(ctx context.Context, job *api.Job, lease string) error {
	pr, pw := io.Pipe()
	url := fmt.Sprintf("%s/farm/v1/result?job=%d&lease=%s", wk.opt.Coordinator, job.ID, lease)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	var buf bytes.Buffer
	execErr := make(chan error, 1)
	go func() {
		// The buffer write always succeeds; the pipe is best-effort so a
		// severed stream cannot abort the computation it carries.
		w := io.MultiWriter(&buf, &bestEffortWriter{w: pw})
		err := wk.execute(ctx, job, w)
		if err != nil && !errors.Is(err, ErrFaultInjected) {
			// Deterministic failure: report in-band so the coordinator fails
			// the run instead of re-queueing a job that would fail again.
			json.NewEncoder(w).Encode(api.ResultLine{Error: err.Error()}) //nolint:errcheck // buffer writes cannot fail
		} else if err == nil {
			json.NewEncoder(w).Encode(api.ResultLine{Done: true}) //nolint:errcheck
		}
		pw.Close()
		execErr <- err
	}()

	resp, doErr := wk.opt.Client.Do(req)
	status := 0
	if doErr == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		status = resp.StatusCode
	}
	err = <-execErr
	if errors.Is(err, ErrFaultInjected) {
		return err // die mid-job: the open lease is the reaper's problem
	}

	for attempt := 1; doErr != nil || status >= 500; attempt++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if wk.opt.MaxRetries > 0 && attempt > wk.opt.MaxRetries {
			if doErr != nil {
				return fmt.Errorf("farm worker %s: result stream for job %d: %w", wk.id, job.ID, doErr)
			}
			return fmt.Errorf("farm worker %s: result stream for job %d kept failing (%d)", wk.id, job.ID, status)
		}
		d := wk.opt.Backoff.Delay(attempt - 1)
		wk.logf("farm worker %s: result stream for job %d failed (err=%v status=%d); replaying %d bytes in %v", wk.id, job.ID, doErr, status, buf.Len(), d)
		wk.opt.Sleep(ctx, d)
		status, doErr = wk.postResult(ctx, url, buf.Bytes())
	}

	switch status {
	case http.StatusOK:
		return err
	case http.StatusConflict:
		return fmt.Errorf("farm worker %s: lease for job %d went stale (reaped and re-queued)", wk.id, job.ID)
	case http.StatusGone:
		return fmt.Errorf("farm worker %s: run of job %d is dead, dropping results", wk.id, job.ID)
	default:
		return fmt.Errorf("farm worker %s: result stream for job %d refused (%d)", wk.id, job.ID, status)
	}
}

// postResult re-POSTs a fully buffered result stream — the replay half of
// the resumable stream protocol.
func (wk *worker) postResult(ctx context.Context, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := wk.opt.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
	return resp.StatusCode, nil
}

// execute runs the job's solve or sweep batch, writing result lines to w.
func (wk *worker) execute(ctx context.Context, job *api.Job, w io.Writer) error {
	inst, err := wk.materialize(job.Circuit)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	switch {
	case job.Sweep != nil:
		return wk.executeSweep(ctx, inst, job.Sweep, enc)
	case job.Solve != nil:
		return wk.executeSolve(ctx, inst, job.Solve, enc)
	case job.MonteCarlo != nil:
		return wk.executeMonteCarlo(ctx, inst, job.MonteCarlo, enc)
	default:
		return fmt.Errorf("farm worker: job %d carries no work", job.ID)
	}
}

// crashAfterCell reports whether a configured fault kills the worker
// after the cell just streamed: the legacy FailAfterCells counter or a
// "worker:cell" Crash rule in the fault plan.
func (wk *worker) crashAfterCell() bool {
	if inj := wk.opt.Fault.Next("worker:cell"); inj != nil && inj.Kind == fault.Crash {
		return true
	}
	return wk.opt.FailAfterCells > 0 && wk.cells >= wk.opt.FailAfterCells
}

// executeSweep solves the batch through sweep.Options.SolveCell — the
// exact code path the single-process engine uses, so equal job inputs
// yield equal bits. Chained batches walk one evaluator with the shipped
// seed threading cell to cell; independent batches give every cell a
// fresh evaluator seeded from the shipped sizes.
func (wk *worker) executeSweep(ctx context.Context, inst *bench.Instance, sj *api.SweepJob, enc *json.Encoder) error {
	opt := sweep.Options{
		MaxIterations:     sj.MaxIterations,
		Epsilon:           sj.Epsilon,
		Workers:           wk.opt.SolverWorkers,
		PrimalOnly:        sj.PrimalOnly,
		ColdLRS:           sj.ColdLRS,
		FullPasses:        sj.FullPasses,
		ActiveSetTol:      sj.ActiveSetTol,
		CutoverHysteresis: sj.CutoverHysteresis,
		// A cancelled session (shutdown, reap) stops the in-flight cell at
		// its next solver iteration instead of finishing the batch.
		Cancel: func() bool { return ctx.Err() != nil },
	}
	if sj.Lockstep && !sj.Chain && len(sj.Cells) > 1 {
		return wk.executeSweepLockstep(inst, sj, opt, enc)
	}
	g, cs := inst.Eval.Graph(), inst.Eval.Couplings()
	seed, dual := sj.Seed, sj.Dual
	var ev *rc.Evaluator
	var err error
	for _, cell := range sj.Cells {
		if ev == nil || !sj.Chain {
			if ev, err = rc.NewEvaluator(g, cs); err != nil {
				return err
			}
		}
		res, d, sec, err := opt.SolveCell(ev, cell.Row, cell.Col, cell.Bounds, seed, dual)
		if err != nil {
			return fmt.Errorf("cell (%d,%d): %w", cell.Row, cell.Col, err)
		}
		line := api.ResultLine{Cell: &api.CellResult{
			Row: cell.Row, Col: cell.Col, Result: res, SolveSec: sec,
		}}
		if sj.ReturnDual {
			line.Cell.Dual = d
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		wk.cells++
		if wk.crashAfterCell() {
			wk.logf("farm worker %s: fault injected after %d cells, dying mid-job", wk.id, wk.cells)
			return ErrFaultInjected
		}
		if sj.Chain {
			seed, dual = res.X, d
		}
	}
	return nil
}

// executeSweepLockstep solves a non-chained batch's cells through one
// core.Lockstep — every cell on its own replica of a shared rc.Batch,
// advancing in lockstep — then streams the results in the job's cell
// order (the same order the per-cell loop emits). Each cell's bits equal
// its fresh-evaluator solve by the lockstep contract, so the coordinator
// reassembles the identical grid; only the schedule differs. The Cancel
// hook already threaded into opt stops every in-flight replica at its
// next iteration.
func (wk *worker) executeSweepLockstep(inst *bench.Instance, sj *api.SweepJob, opt sweep.Options, enc *json.Encoder) error {
	g, cs := inst.Eval.Graph(), inst.Eval.Couplings()
	ls, err := core.NewLockstep(g, cs, len(sj.Cells), opt.Workers)
	if err != nil {
		return err
	}
	defer ls.Close()
	type cellOut struct {
		res *core.Result
		d   *core.DualState
		sec float64
		err error
	}
	outs := make([]cellOut, len(sj.Cells))
	var wg sync.WaitGroup
	for k := range sj.Cells {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer ls.Leave()
			cell := sj.Cells[k]
			o := &outs[k]
			o.res, o.d, o.sec, o.err = opt.SolveCellLockstep(ls, k, cell.Row, cell.Col, cell.Bounds, sj.Seed, sj.Dual)
		}(k)
	}
	wg.Wait()
	for k, cell := range sj.Cells {
		o := outs[k]
		if o.err != nil {
			return fmt.Errorf("cell (%d,%d): %w", cell.Row, cell.Col, o.err)
		}
		line := api.ResultLine{Cell: &api.CellResult{
			Row: cell.Row, Col: cell.Col, Result: o.res, SolveSec: o.sec,
		}}
		if sj.ReturnDual {
			line.Cell.Dual = o.d
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		wk.cells++
		if wk.crashAfterCell() {
			wk.logf("farm worker %s: fault injected after %d cells, dying mid-job", wk.id, wk.cells)
			return ErrFaultInjected
		}
	}
	return nil
}

// executeMonteCarlo solves one Monte-Carlo sample shard. The worker
// re-derives the shard's perturbations from the shipped (seed, sigmas)
// by absolute index — variation.Perturbs draws sample i purely from
// (seed, i, sigmas), so the slice [Lo:Hi) equals the same indices of the
// full local draw bitwise — and solves them through the exact kernel the
// local Monte-Carlo path uses (variation.SolveSamples, lockstep across
// the shard). Each streamed line carries the sample's global index;
// every line counts toward the crash-injection cell counter, so a fault
// plan can kill the worker mid-shard for the reaping parity tests.
func (wk *worker) executeMonteCarlo(ctx context.Context, inst *bench.Instance, mj *api.MonteCarloJob, enc *json.Encoder) error {
	if mj.Lo < 0 || mj.Hi <= mj.Lo {
		return fmt.Errorf("farm worker: montecarlo range [%d, %d) is empty or negative", mj.Lo, mj.Hi)
	}
	perturbs, err := variation.Perturbs(mj.Seed, mj.Hi, mj.Sigmas)
	if err != nil {
		return err
	}
	shard := perturbs[mj.Lo:mj.Hi]
	results, err := variation.SolveSamples(inst, mj.Bounds, shard, variation.SolveOptions{
		MaxIterations: mj.MaxIterations,
		Epsilon:       mj.Epsilon,
		Workers:       wk.opt.SolverWorkers,
		Cancel:        func() bool { return ctx.Err() != nil },
	})
	if err != nil {
		return err
	}
	for n, res := range results {
		line := api.ResultLine{Sample: &api.MCSampleResult{
			Index: mj.Lo + n, Perturb: shard[n], Result: res,
		}}
		if err := enc.Encode(line); err != nil {
			return err
		}
		wk.cells++
		if wk.crashAfterCell() {
			wk.logf("farm worker %s: fault injected after %d cells, dying mid-job", wk.id, wk.cells)
			return ErrFaultInjected
		}
	}
	return nil
}

// executeSolve runs one full solve, mirroring the service's local path
// (replica evaluator, core solver, RunFromDual) knob for knob.
func (wk *worker) executeSolve(ctx context.Context, inst *bench.Instance, sj *api.SolveJob, enc *json.Encoder) error {
	opt := core.DefaultOptions(sj.Bounds.A0, sj.Bounds.NoiseBound, sj.Bounds.PowerBound)
	if sj.MaxIterations > 0 {
		opt.MaxIterations = sj.MaxIterations
	}
	if sj.Epsilon > 0 {
		opt.Epsilon = sj.Epsilon
	}
	opt.Workers = wk.opt.SolverWorkers
	opt.Incremental = !sj.Full
	opt.WarmStart = sj.Warm
	opt.Cancel = func() bool { return ctx.Err() != nil }
	replica, err := inst.Replica()
	if err != nil {
		return err
	}
	sol, err := core.NewSolver(replica, opt)
	if err != nil {
		return err
	}
	defer sol.Close()
	start := time.Now()
	res, err := sol.RunFromDual(sj.Seed, sj.Dual)
	if err != nil {
		return err
	}
	return enc.Encode(api.ResultLine{Solve: &api.SolveResult{
		Result:          res,
		Dual:            sol.DualState(),
		Workers:         sol.Workers(),
		SolveSec:        time.Since(start).Seconds(),
		Eval:            replica.Stats(),
		HysteresisTrips: sol.HysteresisTrips(),
		RevertedSweeps:  sol.RevertedSweeps(),
	}})
}
