package farm

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/farm/api"
	"repro/internal/sweep"
)

// goldenOptions reproduces the sweep golden suite's grid exactly: the
// 12×10 coupled mesh, the 3×3 bounds grid, and the 12-iteration cap that
// generated internal/sweep/testdata/golden_grid.json.
func goldenOptions(b bench.Bounds) sweep.Options {
	return sweep.Options{
		DelayScale:    []float64{1, 1.06, 1.12},
		NoiseScale:    []float64{0.8, 1, 1.3},
		Bounds:        &b,
		MaxIterations: 12,
	}
}

func stripTiming(r *sweep.Result) *sweep.Result {
	for i := range r.Cells {
		r.Cells[i].SolveSec = 0
	}
	return r
}

// TestFarmDistributedSweepGolden is the farm oracle: a warm sweep
// distributed across two real worker processes-worth of RunWorker loops —
// the first rigged to die after two cells, mid-spine, with its stream
// open — must reassemble into the byte-identical grid the single-process
// engine produces, and (on the architecture that generated it) the
// committed golden fixture. Worker death, reaping, re-queueing, and
// duplicate replay are all exercised on the way.
func TestFarmDistributedSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep solves the full golden grid")
	}
	coord := New(Options{
		HeartbeatInterval: 25 * time.Millisecond,
		LeaseTTL:          250 * time.Millisecond,
		Logf:              t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	inst, b, err := bench.GridInstance(12, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.CircuitSpec{Key: bench.GridKey(12, 10, true), Grid: &api.GridSpec{Width: 12, Layers: 10, Coupled: true}}

	// The doomed worker starts alone, so it deterministically leases the
	// spine and dies two cells in — mid-job, stream open, no done marker.
	faulty := make(chan error, 1)
	go func() {
		faulty <- RunWorker(ctx, WorkerOptions{
			Coordinator:    ts.URL,
			Name:           "doomed",
			FailAfterCells: 2,
			LeaseWait:      50 * time.Millisecond,
			Logf:           t.Logf,
		})
	}()

	type outcome struct {
		res *sweep.Result
		err error
	}
	sweepDone := make(chan outcome, 1)
	var mu sync.Mutex
	streamed := 0
	opt := goldenOptions(b)
	opt.OnCell = func(c *sweep.Cell) {
		mu.Lock()
		streamed++
		mu.Unlock()
	}
	go func() {
		res, err := coord.Sweep(ctx, spec, inst, opt)
		sweepDone <- outcome{res, err}
	}()

	// Wait for the injected fault before admitting the survivor, so the
	// death always lands mid-grid with work still outstanding.
	select {
	case err := <-faulty:
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("doomed worker exited with %v, want ErrFaultInjected", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("doomed worker never hit its injected fault")
	}
	healthy := make(chan error, 1)
	go func() {
		healthy <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "survivor",
			LeaseWait:   50 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	var got outcome
	select {
	case got = <-sweepDone:
	case <-time.After(2 * time.Minute):
		t.Fatal("distributed sweep did not complete")
	}
	if got.err != nil {
		t.Fatalf("distributed sweep failed: %v", got.err)
	}
	cancel()
	if err := <-healthy; err != nil {
		t.Fatalf("survivor exited with %v", err)
	}

	// Oracle 1: bit-identical to the single-process engine on a fresh
	// replica of the same mesh.
	inst2, b2, err := bench.GridInstance(12, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(inst2, goldenOptions(b2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got.res)) {
		t.Errorf("distributed sweep diverged from the single-process grid")
	}

	// Oracle 2: the committed golden fixture, bitwise on its architecture.
	if runtime.GOARCH == "amd64" {
		data, err := os.ReadFile(filepath.Join("..", "sweep", "testdata", "golden_grid.json"))
		if err != nil {
			t.Fatal(err)
		}
		var golden sweep.Result
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&golden, stripTiming(got.res)) {
			t.Errorf("distributed sweep diverged from the committed golden fixture")
		}
	}

	// The failure path must actually have been exercised, and streaming
	// must have emitted every cell exactly once.
	st := coord.StatsSnapshot()
	if st.WorkersReaped < 1 || st.JobsRequeued < 1 {
		t.Errorf("fault injection did not exercise reap/re-queue: %+v", st)
	}
	if st.RunsCompleted != 1 {
		t.Errorf("runs completed = %d, want 1", st.RunsCompleted)
	}
	mu.Lock()
	defer mu.Unlock()
	if streamed != len(got.res.Cells) {
		t.Errorf("OnCell fired %d times for %d cells", streamed, len(got.res.Cells))
	}
}

// TestColdDistributedSweepMatchesLocal covers the independent-dispatch
// path (cold sweeps: per-row jobs, every cell seeded from the initial
// sizes) against the local engine.
func TestColdDistributedSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	coord := New(Options{HeartbeatInterval: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	inst, b, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.CircuitSpec{Key: bench.GridKey(6, 4, true), Grid: &api.GridSpec{Width: 6, Layers: 4, Coupled: true}}
	opt := sweep.Options{
		DelayScale: []float64{1, 1.08}, NoiseScale: []float64{0.9, 1.2},
		Bounds: &b, MaxIterations: 6, Cold: true,
	}
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{Coordinator: ts.URL, LeaseWait: 50 * time.Millisecond})
	}()
	got, err := coord.Sweep(ctx, spec, inst, opt)
	if err != nil {
		t.Fatalf("distributed cold sweep failed: %v", err)
	}
	cancel()
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v", err)
	}

	inst2, b2, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := opt
	opt2.Bounds = &b2
	want, err := sweep.Run(inst2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got)) {
		t.Errorf("distributed cold sweep diverged from the local engine")
	}
}

// TestLockstepDistributedSweepMatchesLocal: a cold sweep leased out with
// Lockstep set makes each worker batch its lease's cells through one
// shared evaluator — and the reassembled grid must still be bit-identical
// to the local solo-schedule engine, because lockstep is scheduling only.
func TestLockstepDistributedSweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	coord := New(Options{HeartbeatInterval: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	inst, b, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.CircuitSpec{Key: bench.GridKey(6, 4, true), Grid: &api.GridSpec{Width: 6, Layers: 4, Coupled: true}}
	opt := sweep.Options{
		DelayScale: []float64{1, 1.08}, NoiseScale: []float64{0.9, 1.2},
		Bounds: &b, MaxIterations: 6, Cold: true, Lockstep: true,
	}
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{Coordinator: ts.URL, LeaseWait: 50 * time.Millisecond})
	}()
	got, err := coord.Sweep(ctx, spec, inst, opt)
	if err != nil {
		t.Fatalf("distributed lockstep sweep failed: %v", err)
	}
	cancel()
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v", err)
	}

	inst2, b2, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := opt
	opt2.Bounds = &b2
	opt2.Lockstep = false
	want, err := sweep.Run(inst2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got)) {
		t.Errorf("distributed lockstep sweep diverged from the local solo-schedule engine")
	}
}
