package farm

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/fault"
	"repro/internal/sweep"
)

// fastRetry is a worker backoff tuned so reconnect tests spend
// milliseconds, not the production ramp.
var fastRetry = fault.Backoff{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 1}

// sweepOptions64 is a small cold 2×2 grid over the 6×4 mesh.
func sweepOptions64(b bench.Bounds) sweep.Options {
	return sweep.Options{
		DelayScale: []float64{1, 1.08}, NoiseScale: []float64{0.9, 1.2},
		Bounds: &b, MaxIterations: 4, Cold: true,
	}
}

func gridSpec64(t *testing.T) (api.CircuitSpec, api.SolveJob) {
	t.Helper()
	inst, b, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.CircuitSpec{Key: bench.GridKey(6, 4, true), Grid: &api.GridSpec{Width: 6, Layers: 4, Coupled: true}}
	job := api.SolveJob{
		Bounds:        b,
		MaxIterations: 4,
		Seed:          append([]float64(nil), inst.Eval.X...),
	}
	return spec, job
}

// localSolve64 reproduces exactly what a worker computes for the given
// job on the 6×4 grid — the bit-identity baseline.
func localSolve64(t *testing.T, job api.SolveJob) *core.Result {
	t.Helper()
	inst, _, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	b := job.Bounds
	opt := core.DefaultOptions(b.A0, b.NoiseBound, b.PowerBound)
	opt.MaxIterations = job.MaxIterations
	opt.Workers = -1
	replica, err := inst.Replica()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.NewSolver(replica, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	res, err := sol.RunFromDual(job.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWorkerSurvivesCoordinatorRestart is the regression test for the
// permanent-exit bug: a coordinator outage (process gone, port refusing
// connections) must not kill the worker. It has to back off, keep
// retrying, re-register with the replacement coordinator, and complete
// work there.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	coordA := New(Options{HeartbeatInterval: 20 * time.Millisecond, Logf: t.Logf})
	srvA := &http.Server{Handler: coordA.Handler()}
	go srvA.Serve(ln) //nolint:errcheck // closed below

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{
			Coordinator: "http://" + addr,
			Name:        "phoenix",
			Backoff:     fastRetry,
			LeaseWait:   20 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()
	waitFor(t, "registration with coordinator A", func() bool { return coordA.LiveWorkers() == 1 })

	// The outage: coordinator A vanishes, taking the port with it. The
	// worker's in-flight lease long-poll dies and every retry hits
	// connection-refused until the replacement binds.
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	coordB := New(Options{HeartbeatInterval: 20 * time.Millisecond, Logf: t.Logf})
	coordB.Start(ctx)
	var ln2 net.Listener
	waitFor(t, "rebinding the coordinator port", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	srvB := &http.Server{Handler: coordB.Handler()}
	go srvB.Serve(ln2) //nolint:errcheck
	defer srvB.Close()

	waitFor(t, "re-registration with coordinator B", func() bool { return coordB.LiveWorkers() == 1 })

	// The reconnected worker must actually do work, bit-identically.
	spec, job := gridSpec64(t)
	got, err := coordB.Solve(ctx, spec, job)
	if err != nil {
		t.Fatalf("solve on the replacement coordinator: %v", err)
	}
	want := localSolve64(t, job)
	if !reflect.DeepEqual(got.Result.X, want.X) {
		t.Error("post-restart solve diverged from the local baseline")
	}

	cancel()
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v, want clean shutdown", err)
	}
}

// TestWorkerReRegistersAfterReap drives the coordinator's injected clock
// past the lease TTL so a perfectly healthy worker gets reaped, then
// checks it re-registers (visible in the reconnects counter) and keeps
// serving instead of exiting.
func TestWorkerReRegistersAfterReap(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	var offset atomic.Int64
	base := time.Now()
	coord := New(Options{
		HeartbeatInterval: 10 * time.Millisecond,
		LeaseTTL:          50 * time.Millisecond,
		Now:               func() time.Time { return base.Add(time.Duration(offset.Load())) },
		Logf:              t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "steady",
			Backoff:     fastRetry,
			LeaseWait:   10 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()
	waitFor(t, "registration", func() bool { return coord.LiveWorkers() == 1 })

	// Jump the injected clock far past the TTL: the next reaper scan kills
	// the worker no matter how recently it heartbeat.
	offset.Add(int64(time.Second))
	waitFor(t, "reap", func() bool { return coord.StatsSnapshot().WorkersReaped >= 1 })
	waitFor(t, "re-registration", func() bool {
		st := coord.StatsSnapshot()
		return st.Reconnects >= 1 && st.LiveWorkers >= 1
	})

	spec, job := gridSpec64(t)
	if _, err := coord.Solve(ctx, spec, job); err != nil {
		t.Fatalf("solve after re-registration: %v", err)
	}

	cancel()
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v, want clean shutdown", err)
	}
}

// TestResultStreamReplaysThroughFaults injects a mid-stream cut on the
// worker's first result upload and a synthetic 500 on its first replay:
// the buffered stream must be re-POSTed until it lands, and first-wins
// recording must keep the duplicate lines free. The run completes with
// the exact bits a fault-free worker produces.
func TestResultStreamReplaysThroughFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	coord := New(Options{HeartbeatInterval: 20 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	plan := fault.New(11,
		fault.Rule{Op: "http:/farm/v1/result", Kind: fault.Cut, CutBytes: 64, Count: 1},
		fault.Rule{Op: "http:/farm/v1/result", Kind: fault.HTTP500, Count: 1},
	)
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "cursed-link",
			Backoff:     fastRetry,
			LeaseWait:   20 * time.Millisecond,
			Client:      &http.Client{Transport: fault.NewTransport(plan, nil)},
			Logf:        t.Logf,
		})
	}()

	spec, job := gridSpec64(t)
	got, err := coord.Solve(ctx, spec, job)
	if err != nil {
		t.Fatalf("solve through a faulted result stream: %v", err)
	}
	if plan.Total() != 2 {
		t.Errorf("injected %d faults (%v), want the cut and the 500", plan.Total(), plan.Counts())
	}
	want := localSolve64(t, job)
	if !reflect.DeepEqual(got.Result.X, want.X) {
		t.Error("replayed solve diverged from the local baseline")
	}
	st := coord.StatsSnapshot()
	if st.RunsCompleted != 1 || st.RunsFailed != 0 {
		t.Errorf("runs completed=%d failed=%d, want 1/0", st.RunsCompleted, st.RunsFailed)
	}

	cancel()
	if err := <-workerErr; err != nil {
		t.Fatalf("worker exited with %v, want clean shutdown", err)
	}
}

// TestWorkerCrashViaFaultPlan exercises the plan-driven generalization of
// FailAfterCells: a "worker:cell" Crash rule kills the worker mid-sweep,
// the reaper re-queues its job, and a healthy successor finishes the grid
// bit-identically.
func TestWorkerCrashViaFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a real grid")
	}
	coord := New(Options{
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTTL:          200 * time.Millisecond,
		Logf:              t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	inst, b, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := gridSpec64(t)
	opt := sweepOptions64(b)

	// The doomed worker leases first and dies after its first streamed
	// cell, per the plan.
	plan := fault.New(5, fault.Rule{Op: "worker:cell", Kind: fault.Crash, Count: 1})
	doomed := make(chan error, 1)
	go func() {
		doomed <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "doomed",
			Fault:       plan,
			Backoff:     fastRetry,
			LeaseWait:   20 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	type outcome struct {
		res *sweep.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.Sweep(ctx, spec, inst, opt)
		done <- outcome{res, err}
	}()

	select {
	case err := <-doomed:
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("doomed worker exited with %v, want ErrFaultInjected", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("doomed worker never crashed")
	}
	if plan.Total() != 1 {
		t.Fatalf("plan injected %d faults, want 1", plan.Total())
	}

	survivor := make(chan error, 1)
	go func() {
		survivor <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "survivor",
			Backoff:     fastRetry,
			LeaseWait:   20 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	var got outcome
	select {
	case got = <-done:
	case <-time.After(time.Minute):
		t.Fatal("sweep never completed")
	}
	if got.err != nil {
		t.Fatalf("sweep failed: %v", got.err)
	}

	inst2, b2, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(inst2, sweepOptions64(b2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTiming(want), stripTiming(got.res)) {
		t.Error("post-crash sweep diverged from the local engine")
	}

	cancel()
	if err := <-survivor; err != nil {
		t.Fatalf("survivor exited with %v", err)
	}
}
