package farm

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/farm/api"
	"repro/internal/variation"
)

// TestFarmMonteCarloMatchesLocal is the distributed Monte-Carlo oracle:
// a seed-7 run dispatched to a farm whose first worker is rigged to die
// two samples into its shard — stream open, no done marker — must
// reassemble, after the reap and re-queue, into the byte-identical
// sample set the single-process variation.MonteCarlo produces. A second
// dispatch with two live workers then cuts the same range into two
// shards and must reassemble the same bytes again: the sampler draws by
// absolute index, so sharding is invisible in the result.
func TestFarmMonteCarloMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed Monte-Carlo solves real sample sets")
	}
	coord := New(Options{
		HeartbeatInterval: 25 * time.Millisecond,
		LeaseTTL:          250 * time.Millisecond,
		Logf:              t.Logf,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord.Start(ctx)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	inst, b, err := bench.GridInstance(6, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.CircuitSpec{Key: bench.GridKey(6, 4, true), Grid: &api.GridSpec{Width: 6, Layers: 4, Coupled: true}}
	mcOpt := variation.MCOptions{
		Samples:       6,
		Seed:          7,
		Sigmas:        variation.Sigmas{R: 0.05, C: 0.05, Threshold: 0.08},
		Bounds:        &b,
		MaxIterations: 8,
	}
	job := api.MonteCarloJob{
		Bounds:        b,
		Seed:          mcOpt.Seed,
		Sigmas:        mcOpt.Sigmas,
		Lo:            0,
		Hi:            mcOpt.Samples,
		MaxIterations: mcOpt.MaxIterations,
	}

	// The local reference the farm must reproduce byte for byte.
	want, err := variation.MonteCarlo(inst, mcOpt)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker starts alone, so it deterministically leases the
	// single shard and dies two samples in.
	faulty := make(chan error, 1)
	go func() {
		faulty <- RunWorker(ctx, WorkerOptions{
			Coordinator:    ts.URL,
			Name:           "doomed",
			FailAfterCells: 2,
			LeaseWait:      50 * time.Millisecond,
			Logf:           t.Logf,
		})
	}()

	type outcome struct {
		samples []variation.Sample
		err     error
	}
	runDone := make(chan outcome, 1)
	var mu sync.Mutex
	streamed := 0
	go func() {
		samples, err := coord.MonteCarlo(ctx, spec, job, func(*variation.Sample) {
			mu.Lock()
			streamed++
			mu.Unlock()
		})
		runDone <- outcome{samples, err}
	}()

	select {
	case err := <-faulty:
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("doomed worker exited with %v, want ErrFaultInjected", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("doomed worker never hit its injected fault")
	}
	healthy := make(chan error, 1)
	go func() {
		healthy <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "survivor",
			LeaseWait:   50 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	var got outcome
	select {
	case got = <-runDone:
	case <-time.After(2 * time.Minute):
		t.Fatal("distributed Monte-Carlo did not complete")
	}
	if got.err != nil {
		t.Fatalf("distributed Monte-Carlo failed: %v", got.err)
	}
	if !reflect.DeepEqual(want.Samples, got.samples) {
		t.Errorf("reassembled sample set diverged from the local run")
	}
	// The shared summarizer must rebuild the local report exactly.
	if rep := variation.Summarize(got.samples, b.A0); !reflect.DeepEqual(want, rep) {
		t.Errorf("summarized distributed report diverged from the local report")
	}
	mu.Lock()
	if streamed != mcOpt.Samples {
		t.Errorf("onSample fired %d times for %d samples", streamed, mcOpt.Samples)
	}
	mu.Unlock()
	st := coord.StatsSnapshot()
	if st.WorkersReaped < 1 || st.JobsRequeued < 1 {
		t.Errorf("fault injection did not exercise reap/re-queue: %+v", st)
	}

	// Round 2: a second live worker makes the coordinator cut the range
	// into two shards — same bytes regardless.
	second := make(chan error, 1)
	go func() {
		second <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "second",
			LeaseWait:   50 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()
	for i := 0; coord.LiveWorkers() < 2 && i < 200; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	samples2, err := coord.MonteCarlo(ctx, spec, job, nil)
	if err != nil {
		t.Fatalf("sharded Monte-Carlo failed: %v", err)
	}
	if !reflect.DeepEqual(want.Samples, samples2) {
		t.Errorf("two-shard sample set diverged from the local run")
	}

	cancel()
	if err := <-healthy; err != nil {
		t.Fatalf("survivor exited with %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second worker exited with %v", err)
	}
}
