// Package farm turns the single-process sizing service into a
// coordinator/worker farm: the coordinator (embedded in ogwsd
// -coordinator) plans solves and bounds-grid sweeps into leased jobs,
// thin worker processes (cmd/ogws-worker) register over the versioned
// HTTP job API in internal/farm/api, lease jobs, materialize their own
// bit-identical replicas of each circuit (keyed by the same content-hash
// keys the service cache uses), and stream cell results back as NDJSON.
// A heartbeat keeper reaps silent workers and re-queues their leased jobs
// in deterministic order.
//
// # Determinism contract
//
// A distributed sweep must reassemble, byte for byte, into the grid the
// single-process engine (internal/sweep) would have produced — the same
// contract every layer below holds (serial vs levelized vs parallel,
// incremental vs full, streamed vs buffered). The farm earns it
// structurally rather than by locking:
//
//   - Every lease is self-contained: a job carries the exact seed sizes
//     and dual multipliers its cells must be solved from, so its outcome
//     is a pure function of the job message — independent of which worker
//     runs it, when, or how many times.
//   - The coordinator plans the identical wavefront the local engine
//     walks (sweep.Plan): the column-0 spine is one chained job (cells
//     seeded top to bottom), and each row tail becomes a job only after
//     the spine cell that seeds it is recorded, with that cell's sizes
//     and dual shipped inside the lease. Cold (and the provably
//     seed-independent ColdLRS+PrimalOnly) sweeps batch rows as
//     independent jobs seeded from the instance's initial sizes.
//   - Workers execute cells through sweep.Options.SolveCell — the same
//     code path, same core.Options — on evaluators materialized from the
//     same deterministic pipeline, so equal inputs give equal bits on
//     every node of one architecture.
//   - Results are recorded first-wins into the row-major grid. Re-running
//     a re-queued job reproduces the dead worker's cells bitwise, so
//     duplicate lines are simply dropped; solver goroutine width is
//     worker-chosen because results are bit-identical at every width.
//
// Worker death is therefore invisible in the output: kill a worker
// mid-grid and the reaper re-queues its jobs, another worker re-runs
// them, and the assembled grid still diffs clean against the committed
// golden fixture (internal/sweep/testdata/golden_grid.json) — enforced by
// TestFarmDistributedSweepGolden in-process and by the CI farm-smoke job
// over real TCP with a worker killed mid-sweep.
package farm
