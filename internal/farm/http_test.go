package farm

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm/api"
	"repro/internal/sweep"
)

// post drives the coordinator's handler with a raw body.
func post(c *Coordinator, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, req)
	return rr
}

// TestHandlerRejectsMalformedRequests pins the HTTP surface's error
// statuses: malformed JSON is 400 everywhere, an unknown worker is 410 on
// heartbeat and lease (its cue to exit), and a result stream must name
// its job and lease.
func TestHandlerRejectsMalformedRequests(t *testing.T) {
	c := testCoordinator(newTestClock())
	cases := []struct {
		name, path, body string
		wantCode         int
	}{
		{"register bad json", "/farm/v1/register", "{", http.StatusBadRequest},
		{"heartbeat bad json", "/farm/v1/heartbeat", "{", http.StatusBadRequest},
		{"heartbeat unknown worker", "/farm/v1/heartbeat", `{"worker_id":"w99"}`, http.StatusGone},
		{"lease bad json", "/farm/v1/lease", "{", http.StatusBadRequest},
		{"lease unknown worker", "/farm/v1/lease", `{"worker_id":"w99"}`, http.StatusGone},
		{"result missing query", "/farm/v1/result", "", http.StatusBadRequest},
		{"result garbage stream", "/farm/v1/result?job=1&lease=L1", "{", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rr := post(c, tc.path, tc.body); rr.Code != tc.wantCode {
				t.Errorf("POST %s: %d %s, want %d", tc.path, rr.Code, rr.Body, tc.wantCode)
			}
		})
	}
}

// TestResultRejectsEmptyLine: a stream line with no cell, solve, error,
// or done marker is a protocol violation, rejected with the lease intact.
func TestResultRejectsEmptyLine(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	w1 := register(t, c, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := startSweep(t, ctx, c, sweep.Options{
		DelayScale: []float64{1, 1.1}, NoiseScale: []float64{1},
		Cold: true, MaxIterations: 2,
	})
	job, token := lease(t, c, w1)
	if rr := postResult(c, job.ID, token, api.ResultLine{}); rr.Code != http.StatusBadRequest {
		t.Fatalf("empty line: %d %s, want 400", rr.Code, rr.Body)
	}
	if got := c.StatsSnapshot(); got.JobsLeased != 1 {
		t.Fatalf("empty line released the lease: %+v", got)
	}
	cancel()
	<-errCh
}

// TestLiveWorkers tracks registration and reaping.
func TestLiveWorkers(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	if c.LiveWorkers() != 0 {
		t.Fatalf("fresh coordinator has %d live workers", c.LiveWorkers())
	}
	register(t, c, "w1")
	register(t, c, "w2")
	if c.LiveWorkers() != 2 {
		t.Fatalf("live workers = %d, want 2", c.LiveWorkers())
	}
	clock.Advance(4 * time.Minute)
	c.reap()
	if c.LiveWorkers() != 0 {
		t.Fatalf("live workers after reap = %d, want 0", c.LiveWorkers())
	}
}
