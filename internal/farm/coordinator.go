package farm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/farm/api"
)

// Options configures a Coordinator. The zero value serves with the
// defaults below.
type Options struct {
	// HeartbeatInterval is how often workers must check in (and how often
	// the reaper scans); default 2s. LeaseTTL is how long a worker may stay
	// silent before it is reaped and its leased jobs re-queued; default 3×
	// the heartbeat interval. The smoke tests shrink both to milliseconds.
	HeartbeatInterval time.Duration
	LeaseTTL          time.Duration
	// MaxLeaseWait caps how long a lease request may long-poll for work;
	// default 30s. Requests asking for more are clamped, not rejected.
	MaxLeaseWait time.Duration
	// Now is the clock, injectable so the reaping tests drive time
	// explicitly; default time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives coordinator lifecycle lines (worker
	// joins, reaps, re-queues) — wired to the ogwsd log in -coordinator
	// mode, silent otherwise.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 3 * o.HeartbeatInterval
	}
	if o.MaxLeaseWait <= 0 {
		o.MaxLeaseWait = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// jobState tracks one job through its lifetime. A reaped job goes back to
// jobPending (re-queue); a job whose run died is dropped instead.
type jobState int

const (
	jobPending jobState = iota
	jobLeased
	jobDone
)

// job is one leased unit of work. The wire message (msg) is immutable
// after creation — seeds and duals are shipped by reference and never
// mutated — so re-leasing after a reap re-sends the identical message,
// which is what makes the re-run reproduce the dead worker's cells
// bitwise.
type job struct {
	run   *run
	seq   int // position in the run's deterministic job order
	msg   api.Job
	state jobState
	// worker/lease identify the current holder while state == jobLeased.
	worker string
	lease  string
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       string
	name     string
	lastBeat time.Time
	dead     bool
	// Lifetime counters, surfaced per worker in /stats.
	jobsCompleted int64
	cellsSolved   int64
	solvesDone    int64
	samplesSolved int64
}

// Coordinator owns the farm: registered workers, the pending-job queue,
// outstanding leases, and the runs being assembled. Everything mutable
// sits behind mu; long-polling lease requests park on wake, which is
// closed-and-replaced whenever work arrives or leases change hands.
type Coordinator struct {
	opt Options

	// mu guards every map and every job/run/worker field below, and is
	// never held across an OnCell callback, an HTTP write, or a solve.
	mu      sync.Mutex
	wake    chan struct{}
	workers map[string]*workerState
	queue   []*job          // pending jobs, sorted by (run.id, seq)
	leases  map[string]*job // by lease token
	runs    map[int64]*run

	nextWorker int64
	nextJob    int64
	nextLease  int64
	nextRun    int64

	// Lifetime counters.
	jobsCompleted int64
	jobsRequeued  int64
	workersReaped int64
	runsCompleted int64
	runsFailed    int64
	reconnects    int64
}

// New builds a Coordinator with the given options.
func New(opt Options) *Coordinator {
	opt.fill()
	return &Coordinator{
		opt:     opt,
		wake:    make(chan struct{}),
		workers: map[string]*workerState{},
		leases:  map[string]*job{},
		runs:    map[int64]*run{},
	}
}

// Start runs the heartbeat reaper until ctx is cancelled. The scan period
// is the heartbeat interval: a worker is reaped at most one interval after
// its lease TTL expires. Tests that inject a clock call reap directly
// instead.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.opt.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.reap()
			}
		}
	}()
}

// register admits a worker, rejecting protocol-version skew (a worker
// from a different build could compute different bits, which would break
// the determinism contract silently).
func (c *Coordinator) register(req api.RegisterRequest) (api.RegisterResponse, error) {
	if req.Version != api.Version {
		return api.RegisterResponse{}, fmt.Errorf("farm: protocol version mismatch: worker speaks v%d, coordinator v%d", req.Version, api.Version)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w%d", c.nextWorker),
		name:     req.Name,
		lastBeat: c.opt.Now(),
	}
	if w.name == "" {
		w.name = w.id
	}
	// A register under a name already on the books is a worker coming back
	// after a crash, reap, or coordinator outage — count it so /stats makes
	// retry storms visible.
	if req.Name != "" {
		for _, prev := range c.workers {
			if prev.name == req.Name {
				c.reconnects++
				break
			}
		}
	}
	c.workers[w.id] = w
	c.logf("farm: worker %s (%s) registered", w.id, w.name)
	return api.RegisterResponse{
		WorkerID:        w.id,
		HeartbeatMillis: c.opt.HeartbeatInterval.Milliseconds(),
		LeaseTTLMillis:  c.opt.LeaseTTL.Milliseconds(),
	}, nil
}

// errUnknownWorker is returned for heartbeats and lease requests from
// workers the coordinator does not know (never registered, or reaped) —
// the worker's cue to exit rather than re-register, since its in-flight
// work has already been re-queued.
var errUnknownWorker = errors.New("farm: unknown or reaped worker")

// beat refreshes a worker's liveness and, with it, every lease it holds.
func (c *Coordinator) beat(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil || w.dead {
		return errUnknownWorker
	}
	w.lastBeat = c.opt.Now()
	return nil
}

// reap scans for workers whose lease TTL has lapsed, marks them dead, and
// re-queues their leased jobs in deterministic (run, seq) order — so no
// matter which worker died or when, the surviving workers see the exact
// job sequence a fresh dispatch would have produced. Every scan wakes the
// parked lease long-polls: a reaped worker's poll learns it is dead, and
// the survivors re-check their injected-clock deadlines (enqueueLocked
// only wakes when the scan re-queued something).
func (c *Coordinator) reap() {
	now := c.opt.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.wakeLocked()
	for _, w := range c.workers {
		if w.dead || now.Sub(w.lastBeat) <= c.opt.LeaseTTL {
			continue
		}
		w.dead = true
		c.workersReaped++
		c.logf("farm: worker %s (%s) missed heartbeats for %s, reaping", w.id, w.name, now.Sub(w.lastBeat))
		for token, j := range c.leases {
			if j.worker != w.id {
				continue
			}
			delete(c.leases, token)
			j.worker, j.lease = "", ""
			if j.run.finished() {
				j.state = jobDone
				continue
			}
			j.state = jobPending
			c.enqueueLocked(j)
			c.jobsRequeued++
			c.logf("farm: re-queued job %d (run %d seq %d) from reaped worker %s", j.msg.ID, j.run.id, j.seq, w.id)
		}
	}
}

// enqueueLocked inserts a pending job at its deterministic queue position
// (sorted by run id, then the run's own job sequence) and wakes every
// long-polling lease request.
func (c *Coordinator) enqueueLocked(j *job) {
	i := sort.Search(len(c.queue), func(i int) bool {
		q := c.queue[i]
		if q.run.id != j.run.id {
			return q.run.id > j.run.id
		}
		return q.seq > j.seq
	})
	c.queue = append(c.queue, nil)
	copy(c.queue[i+1:], c.queue[i:])
	c.queue[i] = j
	c.wakeLocked()
}

func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// popLocked removes and returns the first queued job whose run is still
// alive, dropping dead runs' jobs as it goes.
func (c *Coordinator) popLocked() *job {
	for len(c.queue) > 0 {
		j := c.queue[0]
		c.queue = c.queue[1:]
		if j.run.finished() {
			j.state = jobDone
			continue
		}
		return j
	}
	return nil
}

// leaseJob grants at most one job to the worker, long-polling up to wait
// (clamped to MaxLeaseWait) when the queue is empty.
func (c *Coordinator) leaseJob(workerID string, wait time.Duration) (*api.Job, string, error) {
	if wait < 0 {
		wait = 0
	}
	if wait > c.opt.MaxLeaseWait {
		wait = c.opt.MaxLeaseWait
	}
	// The deadline lives on the injected clock, like every other timeout
	// the coordinator owns (heartbeats, lease TTLs) — so fake-clock tests
	// can drive long-poll expiry deterministically. The real timer below
	// only bounds how long the goroutine parks; expiry itself is always
	// decided by opt.Now against the deadline.
	deadline := c.opt.Now().Add(wait)
	for {
		c.mu.Lock()
		w := c.workers[workerID]
		if w == nil || w.dead {
			c.mu.Unlock()
			return nil, "", errUnknownWorker
		}
		if j := c.popLocked(); j != nil {
			c.nextLease++
			token := fmt.Sprintf("L%d", c.nextLease)
			j.state = jobLeased
			j.worker, j.lease = workerID, token
			c.leases[token] = j
			msg := j.msg
			c.mu.Unlock()
			return &msg, token, nil
		}
		wake := c.wake
		c.mu.Unlock()
		remaining := deadline.Sub(c.opt.Now())
		if remaining <= 0 {
			return nil, "", nil
		}
		t := time.NewTimer(remaining)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			// Re-check against the injected clock rather than returning:
			// under a fake clock the wall timer firing means nothing.
		}
	}
}

// CancelRuns fails every unfinished run with the given reason and returns
// how many it killed. Queued jobs are dropped lazily, in-flight result
// streams get 410, and every run's waiter unblocks with the error — the
// coordinator half of ogwsd's graceful drain.
func (c *Coordinator) CancelRuns(reason string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.wakeLocked()
	n := 0
	for _, r := range c.runs {
		if r.finished() {
			continue
		}
		c.failLocked(r, errors.New(reason))
		n++
	}
	return n
}

// LiveWorkers reports how many registered workers are currently live —
// the service's dispatch predicate: with zero live workers solves and
// sweeps run locally, exactly as without a coordinator.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.dead {
			n++
		}
	}
	return n
}
