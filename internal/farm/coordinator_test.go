package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/farm/api"
	"repro/internal/sweep"
)

// testClock is the injected coordinator clock: reaping tests advance time
// explicitly and call reap directly, so no test ever sleeps for a TTL.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testCoordinator builds a coordinator on the injected clock with a
// 1-minute heartbeat and 3-minute lease TTL.
func testCoordinator(clock *testClock) *Coordinator {
	return New(Options{
		HeartbeatInterval: time.Minute,
		Now:               clock.Now,
	})
}

func register(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp, err := c.register(api.RegisterRequest{Version: api.Version, Name: name})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return resp.WorkerID
}

// gridSpec is the 4×3 coupled mesh the queue-logic tests sweep; the cells
// are filled with fabricated results, so the mesh itself is never solved.
func gridSpec() api.CircuitSpec {
	return api.CircuitSpec{
		Key:  bench.GridKey(4, 3, true),
		Grid: &api.GridSpec{Width: 4, Layers: 3, Coupled: true},
	}
}

func gridInstance(t *testing.T) (*bench.Instance, bench.Bounds) {
	t.Helper()
	inst, b, err := bench.GridInstance(4, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	return inst, b
}

// startSweep launches a distributed sweep and returns its result channel.
func startSweep(t *testing.T, ctx context.Context, c *Coordinator, opt sweep.Options) chan error {
	t.Helper()
	inst, b := gridInstance(t)
	if opt.Bounds == nil {
		opt.Bounds = &b
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Sweep(ctx, gridSpec(), inst, opt)
		done <- err
	}()
	return done
}

// lease long-polls one job, failing the test on refusal.
func lease(t *testing.T, c *Coordinator, workerID string) (*api.Job, string) {
	t.Helper()
	job, token, err := c.leaseJob(workerID, 5*time.Second)
	if err != nil {
		t.Fatalf("lease for %s: %v", workerID, err)
	}
	if job == nil {
		t.Fatalf("lease for %s: no job within the long-poll window", workerID)
	}
	return job, token
}

func cellLine(row, col int) api.ResultLine {
	return api.ResultLine{Cell: &api.CellResult{
		Row: row, Col: col,
		Result: &core.Result{X: []float64{float64(100*row + col)}},
		Dual:   &core.DualState{},
	}}
}

// postResult streams NDJSON lines to the result endpoint.
func postResult(c *Coordinator, jobID int64, token string, lines ...api.ResultLine) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, l := range lines {
		enc.Encode(l) //nolint:errcheck // test fixtures always marshal
	}
	req := httptest.NewRequest(http.MethodPost, fmt.Sprintf("/farm/v1/result?job=%d&lease=%s", jobID, token), &buf)
	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, req)
	return rr
}

// finishJob streams every cell of a sweep job plus the done marker.
func finishJob(t *testing.T, c *Coordinator, job *api.Job, token string) {
	t.Helper()
	lines := make([]api.ResultLine, 0, len(job.Sweep.Cells)+1)
	for _, cell := range job.Sweep.Cells {
		lines = append(lines, cellLine(cell.Row, cell.Col))
	}
	lines = append(lines, api.ResultLine{Done: true})
	if rr := postResult(c, job.ID, token, lines...); rr.Code != http.StatusOK {
		t.Fatalf("result stream for job %d: %d %s", job.ID, rr.Code, rr.Body)
	}
}

func TestRegisterVersionMismatch(t *testing.T) {
	c := testCoordinator(newTestClock())
	if _, err := c.register(api.RegisterRequest{Version: api.Version + 1}); err == nil {
		t.Fatal("register with a future protocol version succeeded")
	}
	// And over the wire: a skewed worker gets a 400, not a lease.
	body, _ := json.Marshal(api.RegisterRequest{Version: 0})
	req := httptest.NewRequest(http.MethodPost, "/farm/v1/register", bytes.NewReader(body))
	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("version-mismatch register returned %d, want 400", rr.Code)
	}
}

// TestWarmSweepJobFlow drives a full warm wavefront by hand: the spine
// job goes out first, the row-tail jobs appear only after the spine is
// fully recorded, and each row job carries its spine cell's sizes and
// dual in the lease.
func TestWarmSweepJobFlow(t *testing.T) {
	c := testCoordinator(newTestClock())
	w := register(t, c, "solo")
	opt := sweep.Options{DelayScale: []float64{1, 1.1}, NoiseScale: []float64{1, 1.2}, MaxIterations: 2}
	done := startSweep(t, context.Background(), c, opt)

	spineJob, token := lease(t, c, w)
	if spineJob.Sweep == nil || !spineJob.Sweep.Chain || !spineJob.Sweep.ReturnDual {
		t.Fatalf("first job is not the chained spine: %+v", spineJob.Sweep)
	}
	if n := len(spineJob.Sweep.Cells); n != 2 {
		t.Fatalf("spine has %d cells, want 2 rows", n)
	}
	if st := c.StatsSnapshot(); st.JobsQueued != 0 {
		t.Fatalf("row jobs enqueued before the spine finished: %d queued", st.JobsQueued)
	}
	finishJob(t, c, spineJob, token)

	for i := 0; i < 2; i++ {
		rowJob, rowToken := lease(t, c, w)
		if rowJob.Sweep == nil || !rowJob.Sweep.Chain {
			t.Fatalf("row job %d is not chained", i)
		}
		row := rowJob.Sweep.Cells[0].Row
		wantSeed := []float64{float64(100 * row)} // the fabricated spine result
		if len(rowJob.Sweep.Seed) != 1 || rowJob.Sweep.Seed[0] != wantSeed[0] {
			t.Fatalf("row %d job seed = %v, want spine sizes %v", row, rowJob.Sweep.Seed, wantSeed)
		}
		if rowJob.Sweep.Dual == nil {
			t.Fatalf("row %d job shipped no dual state", row)
		}
		finishJob(t, c, rowJob, rowToken)
	}
	if err := <-done; err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	st := c.StatsSnapshot()
	if st.JobsCompleted != 3 || st.RunsCompleted != 1 || st.JobsRequeued != 0 {
		t.Fatalf("stats after clean run: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].CellsSolved != 4 || st.Workers[0].JobsCompleted != 3 {
		t.Fatalf("worker counters: %+v", st.Workers)
	}
}

// TestLeaseExpiryReapsAndRequeues pins the failure path end to end: a
// silent worker is reaped after its TTL, its leased job re-queues and
// re-leases to a survivor, and the dead worker's stale token is refused
// both for results (409) and heartbeats (gone).
func TestLeaseExpiryReapsAndRequeues(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	w1 := register(t, c, "doomed")
	w2 := register(t, c, "survivor")
	done := startSweep(t, context.Background(), c, sweep.Options{DelayScale: []float64{1, 1.1}, MaxIterations: 2})

	job1, stale := lease(t, c, w1)
	// w2 heartbeats; w1 goes silent past its TTL (3× the 1-minute beat).
	clock.Advance(2 * time.Minute)
	if err := c.beat(w2); err != nil {
		t.Fatalf("live worker heartbeat refused: %v", err)
	}
	clock.Advance(2 * time.Minute)
	c.reap()

	st := c.StatsSnapshot()
	if st.WorkersReaped != 1 || st.JobsRequeued != 1 || st.LiveWorkers != 1 {
		t.Fatalf("after reap: %+v", st)
	}
	if err := c.beat(w1); !errors.Is(err, errUnknownWorker) {
		t.Fatalf("reaped worker heartbeat: %v, want errUnknownWorker", err)
	}

	// Result-after-reap: the stale lease must be refused per line.
	if rr := postResult(c, job1.ID, stale, cellLine(0, 0)); rr.Code != http.StatusConflict {
		t.Fatalf("stale-lease result got %d, want 409", rr.Code)
	}

	// The survivor re-leases the identical job message.
	job2, token := lease(t, c, w2)
	if job2.ID != job1.ID || len(job2.Sweep.Cells) != len(job1.Sweep.Cells) {
		t.Fatalf("requeued job changed: had %d, got %d", job1.ID, job2.ID)
	}
	finishJob(t, c, job2, token)
	if err := <-done; err != nil {
		t.Fatalf("sweep failed after reap and re-run: %v", err)
	}
}

// TestHeartbeatKeepsLeases: a worker that beats on cadence is never
// reaped, no matter how much total time passes.
func TestHeartbeatKeepsLeases(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	w := register(t, c, "steady")
	for i := 0; i < 10; i++ {
		clock.Advance(time.Minute)
		if err := c.beat(w); err != nil {
			t.Fatalf("beat %d refused: %v", i, err)
		}
		c.reap()
	}
	if st := c.StatsSnapshot(); st.WorkersReaped != 0 || st.LiveWorkers != 1 {
		t.Fatalf("steady worker reaped: %+v", st)
	}
}

// TestRequeueOrderingDeterminism: jobs reaped back from a dead worker
// re-enter the queue at their original (run, seq) positions, so the
// survivor drains them in the exact order a fresh dispatch would have
// produced.
func TestRequeueOrderingDeterminism(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	w1 := register(t, c, "doomed")
	w2 := register(t, c, "survivor")
	// A cold sweep fans out one independent job per row, all queued at
	// once — three jobs with seqs 0, 1, 2.
	done := startSweep(t, context.Background(), c, sweep.Options{
		DelayScale: []float64{1, 1.1, 1.2}, NoiseScale: []float64{1, 1.2},
		Cold: true, MaxIterations: 2,
	})
	jobA, _ := lease(t, c, w1)      // row 0
	jobB, _ := lease(t, c, w1)      // row 1
	jobC, tokenC := lease(t, c, w2) // row 2
	if r := jobA.Sweep.Cells[0].Row; r != 0 {
		t.Fatalf("first lease is row %d, want 0", r)
	}

	clock.Advance(2 * time.Minute)
	if err := c.beat(w2); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	c.reap()

	// The survivor must now drain w1's jobs front-of-queue in seq order:
	// row 0 before row 1, regardless of lease or reap timing.
	for want, wantJob := range []*api.Job{jobA, jobB} {
		j, token := lease(t, c, w2)
		if j.ID != wantJob.ID || j.Sweep.Cells[0].Row != want {
			t.Fatalf("requeued lease out of order: got job %d row %d, want job %d row %d",
				j.ID, j.Sweep.Cells[0].Row, wantJob.ID, want)
		}
		finishJob(t, c, j, token)
	}
	finishJob(t, c, jobC, tokenC)
	if err := <-done; err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
}

// TestResultAfterCancel: cancelling the dispatching request kills the run;
// in-flight result streams get 410 and queued jobs are dropped.
func TestResultAfterCancel(t *testing.T) {
	c := testCoordinator(newTestClock())
	w := register(t, c, "w")
	ctx, cancel := context.WithCancel(context.Background())
	done := startSweep(t, ctx, c, sweep.Options{DelayScale: []float64{1, 1.1}, MaxIterations: 2})
	job, token := lease(t, c, w)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
	if rr := postResult(c, job.ID, token, cellLine(0, 0)); rr.Code != http.StatusGone {
		t.Fatalf("result for a cancelled run got %d, want 410", rr.Code)
	}
}

// TestDuplicateCellsDropped: at-least-once execution means a re-run can
// replay already-recorded cells; the first write wins and duplicates are
// not double-counted.
func TestDuplicateCellsDropped(t *testing.T) {
	c := testCoordinator(newTestClock())
	w := register(t, c, "w")
	done := startSweep(t, context.Background(), c, sweep.Options{DelayScale: []float64{1, 1.1}, MaxIterations: 2})
	job, token := lease(t, c, w)
	if rr := postResult(c, job.ID, token,
		cellLine(0, 0), cellLine(0, 0), cellLine(1, 0), cellLine(0, 0),
		api.ResultLine{Done: true}); rr.Code != http.StatusOK {
		t.Fatalf("stream with duplicates refused: %d %s", rr.Code, rr.Body)
	}
	if err := <-done; err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if st := c.StatsSnapshot(); st.Workers[0].CellsSolved != 2 {
		t.Fatalf("duplicates were credited: %+v", st.Workers)
	}
}

// TestWorkerErrorFailsRun: an in-band error line is a deterministic
// failure — the run dies instead of re-queueing a job that would fail
// identically.
func TestWorkerErrorFailsRun(t *testing.T) {
	c := testCoordinator(newTestClock())
	w := register(t, c, "w")
	done := startSweep(t, context.Background(), c, sweep.Options{DelayScale: []float64{1, 1.1}, MaxIterations: 2})
	job, token := lease(t, c, w)
	if rr := postResult(c, job.ID, token, api.ResultLine{Error: "infeasible bounds"}); rr.Code != http.StatusOK {
		t.Fatalf("error line refused: %d", rr.Code)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "infeasible bounds") {
		t.Fatalf("sweep survived a terminal worker error: %v", err)
	}
	if st := c.StatsSnapshot(); st.RunsFailed != 1 {
		t.Fatalf("failed run not counted: %+v", st)
	}
}

// TestMidStreamEOFKeepsJobLeased: a stream that dies without a done
// marker leaves the job leased (the reaper owns its fate) and keeps the
// cells that did land.
func TestMidStreamEOFKeepsJobLeased(t *testing.T) {
	clock := newTestClock()
	c := testCoordinator(clock)
	w1 := register(t, c, "doomed")
	w2 := register(t, c, "survivor")
	done := startSweep(t, context.Background(), c, sweep.Options{DelayScale: []float64{1, 1.1}, MaxIterations: 2})

	job, token1 := lease(t, c, w1)
	// One cell lands, then the stream ends with no done marker — the
	// worker died mid-job. The handler reports the truncation (400) but
	// keeps the cell and leaves the job leased for the reaper.
	if rr := postResult(c, job.ID, token1, cellLine(0, 0)); rr.Code != http.StatusBadRequest {
		t.Fatalf("truncated stream got %d, want 400", rr.Code)
	}
	if st := c.StatsSnapshot(); st.JobsLeased != 1 || st.Workers[0].CellsSolved != 1 {
		t.Fatalf("after truncated stream: %+v", st)
	}

	clock.Advance(2 * time.Minute)
	if err := c.beat(w2); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	c.reap()
	j2, token2 := lease(t, c, w2)
	if j2.ID != job.ID {
		t.Fatalf("reaped job %d did not re-lease, got %d", job.ID, j2.ID)
	}
	// The re-run replays the whole batch; the landed cell deduplicates.
	finishJob(t, c, j2, token2)
	if err := <-done; err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if st := c.StatsSnapshot(); st.Workers[0].CellsSolved != 1 || st.Workers[1].CellsSolved != 1 {
		t.Fatalf("cell credit after re-run: %+v", st.Workers)
	}
}

// TestSolveJobFlow covers the solve path: one job, its shipped inputs
// echoed, the result recorded once.
func TestSolveJobFlow(t *testing.T) {
	c := testCoordinator(newTestClock())
	w := register(t, c, "w")
	_, b := gridInstance(t)
	solveDone := make(chan *api.SolveResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Solve(context.Background(), gridSpec(), api.SolveJob{
			Bounds: b, MaxIterations: 3, Warm: true, Seed: []float64{1, 2, 3},
		})
		solveDone <- res
		errc <- err
	}()
	job, token := lease(t, c, w)
	if job.Solve == nil || !job.Solve.Warm || job.Solve.Bounds != b {
		t.Fatalf("solve job did not ship its inputs: %+v", job.Solve)
	}
	want := &api.SolveResult{Result: &core.Result{X: []float64{9}}, Workers: 4, SolveSec: 0.5}
	if rr := postResult(c, job.ID, token, api.ResultLine{Solve: want}, api.ResultLine{Done: true}); rr.Code != http.StatusOK {
		t.Fatalf("solve result refused: %d %s", rr.Code, rr.Body)
	}
	res := <-solveDone
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 || res.Result.X[0] != 9 {
		t.Fatalf("solve result did not round-trip: %+v", res)
	}
	if st := c.StatsSnapshot(); st.Workers[0].SolvesCompleted != 1 {
		t.Fatalf("solve not credited: %+v", st.Workers)
	}
}

// TestLeaseLongPollExpiresOnInjectedClock is the regression test for the
// lease long-poll deadline computed with the wall clock instead of
// Options.Now: an injected-clock test could never drive a parked lease
// request to expiry. Each case parks a long-poll on an empty queue, then
// advances only the fake clock and runs a reap scan (which wakes parked
// polls); the poll must resolve from injected time alone, well before any
// wall-clock wait elapses.
func TestLeaseLongPollExpiresOnInjectedClock(t *testing.T) {
	type outcome struct {
		job   *api.Job
		token string
		err   error
	}
	cases := []struct {
		name    string
		wait    time.Duration
		advance time.Duration
		wantErr error
	}{
		// Plain expiry: the fake clock passes the requested deadline.
		{name: "expires at deadline", wait: 20 * time.Second, advance: 21 * time.Second},
		// An over-long wait is clamped to MaxLeaseWait (default 30s), so
		// advancing just past the clamp must expire it.
		{name: "clamped to MaxLeaseWait", wait: 10 * time.Hour, advance: 31 * time.Second},
		// Advancing past the lease TTL reaps the worker itself; its parked
		// poll must learn it is dead, not time out silently.
		{name: "reaped worker told", wait: 20 * time.Minute, advance: 4 * time.Minute, wantErr: errUnknownWorker},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newTestClock()
			c := testCoordinator(clock)
			w := register(t, c, "poller")
			ch := make(chan outcome, 1)
			go func() {
				j, tok, err := c.leaseJob(w, tc.wait)
				ch <- outcome{j, tok, err}
			}()
			// The poll must be parked: nothing is queued and the injected
			// clock has not moved.
			select {
			case o := <-ch:
				t.Fatalf("long-poll returned before the clock moved: %+v", o)
			case <-time.After(50 * time.Millisecond):
			}
			clock.Advance(tc.advance)
			c.reap()
			select {
			case o := <-ch:
				if !errors.Is(o.err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", o.err, tc.wantErr)
				}
				if o.job != nil || o.token != "" {
					t.Fatalf("expired poll returned job %+v token %q", o.job, o.token)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("long-poll did not expire from the injected clock")
			}
		})
	}

	// Zero and negative waits never park at all.
	clock := newTestClock()
	c := testCoordinator(clock)
	w := register(t, c, "impatient")
	for _, wait := range []time.Duration{0, -time.Second} {
		if j, tok, err := c.leaseJob(w, wait); j != nil || tok != "" || err != nil {
			t.Fatalf("leaseJob(wait=%v) = %v, %q, %v; want immediate empty return", wait, j, tok, err)
		}
	}
}
