package logicsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func mustParse(t testing.TB, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.Parse("test", strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

// truthNet exercises one gate of each type against its truth table.
const truthNet = `INPUT(a)
INPUT(b)
OUTPUT(and2)
OUTPUT(nand2)
OUTPUT(or2)
OUTPUT(nor2)
OUTPUT(xor2)
OUTPUT(xnor2)
OUTPUT(nota)
OUTPUT(bufa)
and2 = AND(a, b)
nand2 = NAND(a, b)
or2 = OR(a, b)
nor2 = NOR(a, b)
xor2 = XOR(a, b)
xnor2 = XNOR(a, b)
nota = NOT(a)
bufa = BUF(a)
`

func TestTruthTables(t *testing.T) {
	n := mustParse(t, truthNet)
	// Patterns 0..3 enumerate (a,b) = (0,0),(1,0),(0,1),(1,1).
	w, err := SimulateFunc(n, 4, func(input, t int) bool {
		if n.Gates[n.Inputs[input]].Name == "a" {
			return t&1 != 0
		}
		return t&2 != 0
	})
	if err != nil {
		t.Fatalf("SimulateFunc: %v", err)
	}
	want := map[string][4]bool{
		"and2":  {false, false, false, true},
		"nand2": {true, true, true, false},
		"or2":   {false, true, true, true},
		"nor2":  {true, false, false, false},
		"xor2":  {false, true, true, false},
		"xnor2": {true, false, false, true},
		"nota":  {true, false, true, false},
		"bufa":  {false, true, false, true},
	}
	for name, vals := range want {
		gi := n.Index(name)
		for tt := 0; tt < 4; tt++ {
			if got := w.Bit(gi, tt); got != vals[tt] {
				t.Errorf("%s pattern %d = %v, want %v", name, tt, got, vals[tt])
			}
		}
	}
}

func TestWideGates(t *testing.T) {
	n := mustParse(t, `INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(x)
OUTPUT(y)
x = AND(a, b, c)
y = XOR(a, b, c)
`)
	w, err := SimulateFunc(n, 8, func(input, t int) bool { return t&(1<<uint(input)) != 0 })
	if err != nil {
		t.Fatalf("SimulateFunc: %v", err)
	}
	xi, yi := n.Index("x"), n.Index("y")
	for tt := 0; tt < 8; tt++ {
		a, b, c := tt&1 != 0, tt&2 != 0, tt&4 != 0
		if got := w.Bit(xi, tt); got != (a && b && c) {
			t.Errorf("AND3 pattern %d = %v", tt, got)
		}
		parity := a != b != c // XOR3
		if got := w.Bit(yi, tt); got != parity {
			t.Errorf("XOR3 pattern %d = %v, want %v", tt, got, parity)
		}
	}
}

func TestSimilarityIdentityAndComplement(t *testing.T) {
	n := mustParse(t, `INPUT(a)
OUTPUT(x)
OUTPUT(y)
x = BUF(a)
y = NOT(a)
`)
	w, err := Simulate(n, 1000, 42)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	ai, xi, yi := n.Index("a"), n.Index("x"), n.Index("y")
	if s := w.Similarity(ai, xi); s != 1 {
		t.Errorf("similarity(a, buf(a)) = %g, want 1", s)
	}
	if s := w.Similarity(ai, yi); s != -1 {
		t.Errorf("similarity(a, not(a)) = %g, want -1", s)
	}
	if s := w.Similarity(ai, ai); s != 1 {
		t.Errorf("self similarity = %g, want 1", s)
	}
}

func TestSimilarityIndependentNearZero(t *testing.T) {
	n := mustParse(t, `INPUT(a)
INPUT(b)
OUTPUT(x)
x = AND(a, b)
`)
	w, err := Simulate(n, 1<<16, 7)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	s := w.Similarity(n.Index("a"), n.Index("b"))
	if math.Abs(s) > 0.05 {
		t.Errorf("similarity of independent inputs = %g, want ≈ 0", s)
	}
}

func TestSimilarityBoundsProperty(t *testing.T) {
	n := mustParse(t, `INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(u)
OUTPUT(v)
OUTPUT(z)
u = NAND(a, b)
v = NOR(b, c)
z = XOR(u, v)
`)
	f := func(seed int64, tRaw uint16) bool {
		T := int(tRaw)%500 + 1
		w, err := SimulateFunc(n, T, func(input, t int) bool {
			return (seed+int64(input*31+t*7))%3 == 0
		})
		if err != nil {
			return false
		}
		for i := 0; i < w.NumNets(); i++ {
			for j := 0; j < w.NumNets(); j++ {
				s := w.Similarity(i, j)
				if s < -1 || s > 1 {
					return false
				}
				if s != w.Similarity(j, i) {
					return false
				}
			}
			if w.Similarity(i, i) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityMatrixSymmetric(t *testing.T) {
	n := mustParse(t, `INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
x = OR(a, b)
y = NAND(a, b)
`)
	w, err := Simulate(n, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	nets := []int{n.Index("a"), n.Index("b"), n.Index("x"), n.Index("y")}
	m := w.SimilarityMatrix(nets)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %g", i, i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	n := mustParse(t, `INPUT(a)
INPUT(b)
OUTPUT(x)
x = XOR(a, b)
`)
	w1, _ := Simulate(n, 333, 99)
	w2, _ := Simulate(n, 333, 99)
	for tt := 0; tt < 333; tt++ {
		if w1.Bit(n.Index("x"), tt) != w2.Bit(n.Index("x"), tt) {
			t.Fatal("same seed produced different waveforms")
		}
	}
	w3, _ := Simulate(n, 333, 100)
	same := true
	for tt := 0; tt < 333; tt++ {
		if w1.Bit(n.Index("a"), tt) != w3.Bit(n.Index("a"), tt) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical input waveforms")
	}
}

func TestFromBitsFigure6(t *testing.T) {
	// The paper's Figure 6: four wires 4,5,7,8 with waveforms such that
	// similarity(4,5) = -0.07, similarity(5,7) = 0.93, etc. We reproduce
	// the structure with discrete samples: wires 5 and 7 nearly identical,
	// 4 and 8 nearly complementary to them.
	mk := func(pattern string) []bool {
		r := make([]bool, len(pattern))
		for i, c := range pattern {
			r[i] = c == '1'
		}
		return r
	}
	w, err := FromBits([][]bool{
		mk("1100110011001100"), // wire 4
		mk("0011001100110011"), // wire 5 ≈ complement of 4
		mk("0011001100110010"), // wire 7 ≈ wire 5
		mk("1100110011001101"), // wire 8 ≈ wire 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Similarity(0, 1); s != -1 {
		t.Errorf("similarity(4,5) = %g, want -1", s)
	}
	if s := w.Similarity(1, 2); math.Abs(s-0.875) > 1e-12 {
		t.Errorf("similarity(5,7) = %g, want 0.875", s)
	}
	if s := w.Similarity(0, 3); math.Abs(s-0.875) > 1e-12 {
		t.Errorf("similarity(4,8) = %g, want 0.875", s)
	}
	if s := w.Similarity(2, 3); s != -1 {
		t.Errorf("similarity(7,8) = %g, want -1 (flips at same position)", s)
	}
	if s := w.Similarity(1, 3); math.Abs(s-(-0.875)) > 1e-12 {
		t.Errorf("similarity(5,8) = %g, want -0.875", s)
	}
}

func TestFromBitsErrors(t *testing.T) {
	if _, err := FromBits(nil); err == nil {
		t.Error("FromBits(nil) should fail")
	}
	if _, err := FromBits([][]bool{{}}); err == nil {
		t.Error("FromBits(empty row) should fail")
	}
	if _, err := FromBits([][]bool{{true}, {true, false}}); err == nil {
		t.Error("FromBits(ragged) should fail")
	}
}

func TestSimulateErrors(t *testing.T) {
	n := mustParse(t, "INPUT(a)\nOUTPUT(x)\nx = BUF(a)\n")
	if _, err := Simulate(n, 0, 1); err == nil {
		t.Error("Simulate with 0 patterns should fail")
	}
}

func TestToggles(t *testing.T) {
	w, err := FromBits([][]bool{{true, false, true, false}, {true, true, true, true}})
	if err != nil {
		t.Fatal(err)
	}
	if g := w.Toggles(0); g != 3 {
		t.Errorf("Toggles = %d, want 3", g)
	}
	if g := w.Toggles(1); g != 0 {
		t.Errorf("Toggles = %d, want 0", g)
	}
}

func TestPaddingBitsMasked(t *testing.T) {
	// T not a multiple of 64: NOT gates set padding bits unless masked;
	// similarity must still be exact.
	n := mustParse(t, "INPUT(a)\nOUTPUT(x)\nx = NOT(a)\n")
	for _, T := range []int{1, 63, 64, 65, 127, 130} {
		w, err := Simulate(n, T, 5)
		if err != nil {
			t.Fatal(err)
		}
		if s := w.Similarity(n.Index("a"), n.Index("x")); s != -1 {
			t.Errorf("T=%d: similarity(a, not a) = %g, want -1", T, s)
		}
	}
}

func BenchmarkSimulate64kPatterns(b *testing.B) {
	// A 3-level random netlist, 64k patterns.
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	for i := 0; i < 16; i++ {
		sb.WriteString("INPUT(i")
		sb.WriteByte(byte('a' + i))
		sb.WriteString(")\n")
	}
	prev := make([]string, 16)
	for i := range prev {
		prev[i] = "i" + string(byte('a'+i))
	}
	id := 0
	for lv := 0; lv < 3; lv++ {
		next := make([]string, 16)
		for i := range next {
			id++
			name := "n" + string(byte('a'+lv)) + string(byte('a'+i))
			a, c := prev[rng.Intn(16)], prev[rng.Intn(16)]
			if a == c {
				c = prev[(rng.Intn(15)+1+i)%16]
			}
			sb.WriteString(name + " = NAND(" + a + ", " + c + ")\n")
			next[i] = name
		}
		prev = next
	}
	for i := range prev {
		sb.WriteString("OUTPUT(" + prev[i] + ")\n")
	}
	n, err := netlist.Parse("bench", strings.NewReader(sb.String()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(n, 1<<16, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
