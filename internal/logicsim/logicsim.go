// Package logicsim evaluates a combinational netlist over test-pattern sets
// and derives the switching-similarity measure from Section 3.2 of the
// paper:
//
//	similarity(i,j) = (1/T_D) ∫ f(i,t)·f(j,t) dt,   f ∈ {+1, −1}
//
// For a discrete pattern set of T vectors this is (agreements −
// disagreements)/T ∈ [−1, 1]. Signals are packed 64 patterns per machine
// word, so gate evaluation and similarity (XOR + popcount) are bit-parallel.
package logicsim

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/fanout"
	"repro/internal/netlist"
)

// Waveforms holds the simulated logic values of every net over T patterns.
type Waveforms struct {
	T     int
	words int
	bits  [][]uint64 // indexed by netlist gate index
}

// NumNets returns the number of nets (netlist gates) simulated.
func (w *Waveforms) NumNets() int { return len(w.bits) }

// Bit reports the logic value of net at pattern t.
func (w *Waveforms) Bit(net, t int) bool {
	return w.bits[net][t>>6]&(1<<(uint(t)&63)) != 0
}

// Similarity returns the switching similarity of two nets in [−1, 1]:
// +1 for identical waveforms, −1 for complementary ones.
func (w *Waveforms) Similarity(i, j int) float64 {
	if w.T == 0 {
		return 1
	}
	diff := 0
	for k, wi := range w.bits[i] {
		diff += bits.OnesCount64(wi ^ w.bits[j][k])
	}
	return float64(w.T-2*diff) / float64(w.T)
}

// SimilarityMatrix computes the full pairwise similarity for the given nets.
// The result is symmetric with unit diagonal.
func (w *Waveforms) SimilarityMatrix(nets []int) [][]float64 {
	return w.SimilarityMatrixWorkers(nets, 1)
}

// SimilarityMatrixWorkers is SimilarityMatrix with the rows distributed
// across up to workers goroutines (0 selects runtime.GOMAXPROCS(0)). The
// pair (a, b), a < b, is always computed by row a's goroutine and lands in
// two distinct cells, so the result is identical for every worker count.
func (w *Waveforms) SimilarityMatrixWorkers(nets []int, workers int) [][]float64 {
	n := len(nets)
	m := make([][]float64, n)
	for a := range nets {
		m[a] = make([]float64, n)
		m[a][a] = 1
	}
	// Rows shrink with a, so fanout's one-at-a-time handout balances them.
	fanout.Each(n, workers, func(a int) {
		for b := a + 1; b < n; b++ {
			s := w.Similarity(nets[a], nets[b])
			m[a][b], m[b][a] = s, s
		}
	})
	return m
}

// Toggles counts 0↔1 transitions of a net across consecutive patterns,
// a crude switching-activity estimate.
func (w *Waveforms) Toggles(net int) int {
	n := 0
	for t := 1; t < w.T; t++ {
		if w.Bit(net, t) != w.Bit(net, t-1) {
			n++
		}
	}
	return n
}

// Simulate applies T uniformly random input patterns (deterministic in
// seed) to the netlist and returns the waveforms of every net.
func Simulate(n *netlist.Netlist, T int, seed int64) (*Waveforms, error) {
	rng := rand.New(rand.NewSource(seed))
	return SimulateFunc(n, T, func(input, t int) bool { return rng.Int63()&1 == 1 })
}

// SimulateFunc applies T input patterns defined by value(inputIdx, t), where
// inputIdx indexes n.Inputs, and returns the waveforms of every net.
func SimulateFunc(n *netlist.Netlist, T int, value func(input, t int) bool) (*Waveforms, error) {
	if T <= 0 {
		return nil, fmt.Errorf("logicsim: need at least one pattern, got %d", T)
	}
	words := (T + 63) / 64
	w := &Waveforms{T: T, words: words, bits: make([][]uint64, len(n.Gates))}
	backing := make([]uint64, words*len(n.Gates))
	for i := range w.bits {
		w.bits[i], backing = backing[:words:words], backing[words:]
	}
	for ii, gi := range n.Inputs {
		row := w.bits[gi]
		for t := 0; t < T; t++ {
			if value(ii, t) {
				row[t>>6] |= 1 << (uint(t) & 63)
			}
		}
	}
	mask := ^uint64(0)
	if T&63 != 0 {
		mask = (uint64(1) << (uint(T) & 63)) - 1
	}
	for gi := range n.Gates { // topological order
		g := &n.Gates[gi]
		if g.Type == netlist.Input {
			continue
		}
		row := w.bits[gi]
		if err := evalGate(g.Type, row, w.bits, g.Fanin); err != nil {
			return nil, fmt.Errorf("logicsim: net %q: %v", g.Name, err)
		}
		row[words-1] &= mask // keep padding bits zero for popcount hygiene
	}
	return w, nil
}

func evalGate(t netlist.GateType, dst []uint64, all [][]uint64, fanin []int32) error {
	if len(fanin) == 0 {
		return fmt.Errorf("gate has no fan-in")
	}
	src0 := all[fanin[0]]
	switch t {
	case netlist.Buf:
		copy(dst, src0)
	case netlist.Not:
		for k := range dst {
			dst[k] = ^src0[k]
		}
	case netlist.And, netlist.Nand:
		copy(dst, src0)
		for _, f := range fanin[1:] {
			src := all[f]
			for k := range dst {
				dst[k] &= src[k]
			}
		}
		if t == netlist.Nand {
			for k := range dst {
				dst[k] = ^dst[k]
			}
		}
	case netlist.Or, netlist.Nor:
		copy(dst, src0)
		for _, f := range fanin[1:] {
			src := all[f]
			for k := range dst {
				dst[k] |= src[k]
			}
		}
		if t == netlist.Nor {
			for k := range dst {
				dst[k] = ^dst[k]
			}
		}
	case netlist.Xor, netlist.Xnor:
		copy(dst, src0)
		for _, f := range fanin[1:] {
			src := all[f]
			for k := range dst {
				dst[k] ^= src[k]
			}
		}
		if t == netlist.Xnor {
			for k := range dst {
				dst[k] = ^dst[k]
			}
		}
	default:
		return fmt.Errorf("cannot evaluate gate type %v", t)
	}
	return nil
}

// FromBits builds waveforms directly from explicit per-net samples
// (true = logic high), for hand-specified examples such as the paper's
// Figure 6. All rows must have equal length.
func FromBits(rows [][]bool) (*Waveforms, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("logicsim: FromBits needs at least one non-empty row")
	}
	T := len(rows[0])
	words := (T + 63) / 64
	w := &Waveforms{T: T, words: words, bits: make([][]uint64, len(rows))}
	for i, r := range rows {
		if len(r) != T {
			return nil, fmt.Errorf("logicsim: row %d has %d samples, want %d", i, len(r), T)
		}
		w.bits[i] = make([]uint64, words)
		for t, v := range r {
			if v {
				w.bits[i][t>>6] |= 1 << (uint(t) & 63)
			}
		}
	}
	return w, nil
}
