package lagrange

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// diamond builds D → w1 → g1, g1 → {w2, w3} → g2, g2 → w4 → out.
func diamond(t testing.TB) (*circuit.Graph, map[string]int) {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("D", 100)
	w1 := b.AddWire("w1", 1, 1, 0, 10, 1, 0.1, 10)
	g1 := b.AddGate("g1", 10, 0.2, 1, 0.1, 10)
	w2 := b.AddWire("w2", 1, 1, 0, 10, 1, 0.1, 10)
	w3 := b.AddWire("w3", 1, 1, 0, 10, 1, 0.1, 10)
	g2 := b.AddGate("g2", 10, 0.2, 1, 0.1, 10)
	w4 := b.AddWire("w4", 1, 1, 0, 10, 1, 0.1, 10)
	b.Connect(d, w1)
	b.Connect(w1, g1)
	b.Connect(g1, w2)
	b.Connect(g1, w3)
	b.Connect(w2, g2)
	b.Connect(w3, g2)
	b.Connect(g2, w4)
	b.MarkOutput(w4, 10)
	g, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := map[string]int{}
	for i := 0; i < g.NumNodes(); i++ {
		id[g.Comp(i).Name] = i
	}
	return g, id
}

func TestProjectFlowConservation(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 1)
	// Uniform init is not conserved at fan-out/fan-in nodes.
	if m.FlowImbalance() == 0 {
		t.Fatal("expected imbalance before projection")
	}
	m.ProjectFlow()
	if imb := m.FlowImbalance(); imb > 1e-12 {
		t.Fatalf("imbalance after projection = %g", imb)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProjectFlowPreservesSinkEdges(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 1)
	sink := g.SinkID()
	m.Edge[sink][0] = 7
	m.ProjectFlow()
	if m.Edge[sink][0] != 7 {
		t.Errorf("sink edge changed to %g during projection", m.Edge[sink][0])
	}
	// Total flow at every cut equals the sink flow.
	if got := m.SinkFlow(); got != 7 {
		t.Errorf("SinkFlow = %g, want 7", got)
	}
	sums := make([]float64, g.NumNodes())
	m.NodeSums(sums)
	// Driver's in-flow must equal total flow (single-path bottom).
	if d := sums[1]; math.Abs(d-7) > 1e-12 {
		t.Errorf("driver node sum = %g, want 7", d)
	}
}

func TestProjectFlowSplitsEvenlyFromZero(t *testing.T) {
	g, id := diamond(t)
	m := New(g, 0) // all zero
	sink := g.SinkID()
	m.Edge[sink][0] = 4
	m.ProjectFlow()
	if imb := m.FlowImbalance(); imb > 1e-12 {
		t.Fatalf("imbalance = %g", imb)
	}
	// g2 has two in-edges (w2, w3) that must split 2/2.
	g2 := id["g2"]
	if len(m.Edge[g2]) != 2 {
		t.Fatalf("g2 in-degree = %d", len(m.Edge[g2]))
	}
	if math.Abs(m.Edge[g2][0]-2) > 1e-12 || math.Abs(m.Edge[g2][1]-2) > 1e-12 {
		t.Errorf("g2 in-edges = %v, want [2 2]", m.Edge[g2])
	}
}

func TestProjectFlowZeroSinkKillsAll(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 3)
	sink := g.SinkID()
	m.Edge[sink][0] = 0
	m.ProjectFlow()
	sums := make([]float64, g.NumNodes())
	m.NodeSums(sums)
	for i := 1; i < g.NumNodes()-1; i++ {
		if sums[i] != 0 {
			t.Errorf("node %d sum = %g, want 0", i, sums[i])
		}
	}
}

func TestStepDelayDirections(t *testing.T) {
	g, id := diamond(t)
	m := New(g, 1)
	nn := g.NumNodes()
	a := make([]float64, nn)
	d := make([]float64, nn)
	// Fabricate arrivals: all delays 1, critical path through w2.
	for i := 1; i < nn-1; i++ {
		d[i] = 1
	}
	a[id["D"]] = 1
	a[id["w1"]] = 2
	a[id["g1"]] = 3
	a[id["w2"]] = 4
	a[id["w3"]] = 4.0 // tie
	a[id["g2"]] = 5
	a[id["w4"]] = 6
	a[g.SinkID()] = 6
	const a0 = 5.0 // violated by 1 ps at the sink
	before := m.Edge[g.SinkID()][0]
	m.StepDelay(a, d, a0, 0.5, false)
	after := m.Edge[g.SinkID()][0]
	if math.Abs(after-(before+0.5*(6-5))) > 1e-12 {
		t.Errorf("sink edge %g -> %g, want +0.5", before, after)
	}
	// Tight component edges (a_j + D_i == a_i) unchanged; others shrink.
	w2 := id["w2"]
	if m.Edge[w2][0] != 1 { // a(g1)+D(w2)−a(w2) = 3+1−4 = 0
		t.Errorf("tight edge changed: %g", m.Edge[w2][0])
	}
	// Driver edge: D−a = 0 → unchanged.
	if m.Edge[id["D"]][0] != 1 {
		t.Errorf("driver edge changed: %g", m.Edge[id["D"]][0])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStepDelayClampsAtZero(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 0.1)
	nn := g.NumNodes()
	a := make([]float64, nn)
	d := make([]float64, nn)
	// Huge negative slack on every edge: multipliers must clamp to 0.
	for i := range a {
		a[i] = float64(i * 100)
	}
	m.StepDelay(a, d, 1e9, 10, false)
	for i := 1; i < nn; i++ {
		for _, v := range m.Edge[i] {
			if v < 0 {
				t.Fatalf("negative multiplier %g", v)
			}
		}
	}
}

func TestStepDelayRelativeScaling(t *testing.T) {
	g, _ := diamond(t)
	m1 := New(g, 1)
	m2 := New(g, 1)
	nn := g.NumNodes()
	a := make([]float64, nn)
	d := make([]float64, nn)
	for i := range a {
		a[i] = 1000
	}
	const a0 = 500.0
	m1.StepDelay(a, d, a0, 1, false)
	m2.StepDelay(a, d, a0, 1, true)
	sink := g.SinkID()
	abs := m1.Edge[sink][0] - 1 // 500
	rel := m2.Edge[sink][0] - 1 // 1
	if math.Abs(abs-500) > 1e-9 {
		t.Errorf("absolute update = %g, want 500", abs)
	}
	if math.Abs(rel-1) > 1e-9 {
		t.Errorf("relative update = %g, want 1", rel)
	}
}

func TestStepScalar(t *testing.T) {
	if got := StepScalar(1, 10, 0.1, 0, 2, false); math.Abs(got-2) > 1e-12 {
		t.Errorf("StepScalar = %g, want 2", got)
	}
	if got := StepScalar(1, -100, 0.1, 0, 2, false); got != 0 {
		t.Errorf("StepScalar should clamp to 0, got %g", got)
	}
	if got := StepScalar(1, 10, 0.1, 100, 2, true); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("relative StepScalar = %g, want 1.01", got)
	}
	// Trust corridor: a huge relative step saturates at ×trust / ÷trust.
	if got := StepScalar(1, 1e9, 1e9, 1, 2, true); got != 2 {
		t.Errorf("corridor up: got %g, want 2", got)
	}
	if got := StepScalar(1, -1e9, 1e9, 1, 2, true); got != 0.5 {
		t.Errorf("corridor down: got %g, want 0.5", got)
	}
	// Growth from zero stays additive.
	if got := StepScalar(0, 5, 1, 10, 2, true); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("growth from zero: got %g, want 0.5", got)
	}
}

func TestSchedules(t *testing.T) {
	if v := InverseK(2)(4); v != 0.5 {
		t.Errorf("InverseK(2)(4) = %g, want 0.5", v)
	}
	if v := InverseSqrtK(2)(4); v != 1 {
		t.Errorf("InverseSqrtK(2)(4) = %g, want 1", v)
	}
	if v := Constant(3)(99); v != 3 {
		t.Errorf("Constant(3)(99) = %g, want 3", v)
	}
	// Paper conditions: ρₖ → 0 for the two admissible schedules.
	for _, s := range []Schedule{InverseK(1), InverseSqrtK(1)} {
		if s(1000000) > 0.01 {
			t.Error("schedule does not vanish")
		}
	}
}

// Property: after any random non-negative perturbation followed by
// ProjectFlow, conservation holds and all multipliers stay non-negative.
func TestPropertyProjectionInvariants(t *testing.T) {
	g, _ := diamond(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(g, 0)
		for i := 1; i < g.NumNodes(); i++ {
			for k := range m.Edge[i] {
				m.Edge[i][k] = rng.Float64() * 10
			}
		}
		m.ProjectFlow()
		if m.FlowImbalance() > 1e-9 {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: projection is idempotent.
func TestPropertyProjectionIdempotent(t *testing.T) {
	g, _ := diamond(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(g, 0)
		for i := 1; i < g.NumNodes(); i++ {
			for k := range m.Edge[i] {
				m.Edge[i][k] = rng.Float64() * 5
			}
		}
		m.ProjectFlow()
		snap := make([][]float64, len(m.Edge))
		for i := range m.Edge {
			snap[i] = append([]float64(nil), m.Edge[i]...)
		}
		m.ProjectFlow()
		for i := range m.Edge {
			for k := range m.Edge[i] {
				if math.Abs(m.Edge[i][k]-snap[i][k]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 1)
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

// TestDelayGradNormSqInto: the scratch variant must reproduce the
// allocating one exactly and reuse the caller's buffer.
func TestDelayGradNormSqInto(t *testing.T) {
	g, _ := diamond(t)
	m := New(g, 0.8)
	nn := g.NumNodes()
	a := make([]float64, nn)
	d := make([]float64, nn)
	for i := 0; i < nn; i++ {
		a[i] = float64(i) * 1.7
		d[i] = 1 + float64(i%4)
	}
	want := m.DelayGradNormSq(a, d, 9)
	scratch := make([]float64, nn)
	for i := range scratch {
		scratch[i] = math.NaN() // any garbage must be overwritten
	}
	if got := m.DelayGradNormSqInto(a, d, 9, scratch); got != want {
		t.Errorf("DelayGradNormSqInto = %.17g, want %.17g", got, want)
	}
	// Allocation-free on the hot path.
	allocs := testing.AllocsPerRun(50, func() {
		m.DelayGradNormSqInto(a, d, 9, scratch)
	})
	if allocs != 0 {
		t.Errorf("DelayGradNormSqInto allocates %.0f objects per call", allocs)
	}
}
