// Package lagrange holds the Lagrange-multiplier state of the paper's
// Section 4: one multiplier λⱼᵢ per circuit-graph edge (timing weights),
// β for the power constraint, and γ for the crosstalk constraint.
//
// Theorem 3 (the Kirchhoff-current-law analogue) requires flow conservation
// Σ_{k∈output(i)} λᵢₖ = Σ_{j∈input(i)} λⱼᵢ at every node except source and
// sink. ProjectFlow restores this after a subgradient step with one reverse
// topological sweep that rescales each node's in-edge multipliers to match
// its (already final) out-edge sum, preserving non-negativity and the
// relative weights the subgradient established — timing pressure flows
// backward from the sink's delay-violation edges.
package lagrange

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Schedule maps the OGWS iteration number k (1-based) to the subgradient
// step size ρₖ. The paper requires ρₖ → 0 with Σρₖ = ∞.
type Schedule func(k int) float64

// InverseK returns ρₖ = c/k (satisfies the paper's conditions).
func InverseK(c float64) Schedule {
	return func(k int) float64 { return c / float64(k) }
}

// InverseSqrtK returns ρₖ = c/√k (satisfies the paper's conditions and
// converges faster in practice).
func InverseSqrtK(c float64) Schedule {
	return func(k int) float64 { return c / math.Sqrt(float64(k)) }
}

// Constant returns ρₖ = c. It violates ρₖ → 0 and exists for ablations.
func Constant(c float64) Schedule {
	return func(k int) float64 { return c }
}

type edgeRef struct {
	node int32 // head node whose in-edge list holds the multiplier
	pos  int32 // index within that in-edge list
}

// Multipliers is the full multiplier state for one circuit graph.
type Multipliers struct {
	g *circuit.Graph
	// Edge[i][k] is λ for the k-th in-edge of node i (parallel to g.In(i)).
	Edge [][]float64
	// Beta is the power multiplier, Gamma the crosstalk multiplier.
	Beta, Gamma float64
	// Trust is the per-step multiplicative corridor in relative mode: a
	// positive multiplier may change by at most this factor (and at least
	// its inverse) per step. Zero means the default of 2. Shrinking it
	// toward 1 over iterations turns adaptive-step oscillation into
	// geometric convergence.
	Trust float64

	out [][]edgeRef // out-edge multiplier locations per node
}

// New allocates multipliers for the graph, with every edge multiplier set
// to init (β and γ start at zero; set them directly).
func New(g *circuit.Graph, init float64) *Multipliers {
	nn := g.NumNodes()
	m := &Multipliers{
		g:    g,
		Edge: make([][]float64, nn),
		out:  make([][]edgeRef, nn),
	}
	for i := 0; i < nn; i++ {
		in := g.In(i)
		m.Edge[i] = make([]float64, len(in))
		for k := range in {
			m.Edge[i][k] = init
			j := int(in[k])
			m.out[j] = append(m.out[j], edgeRef{int32(i), int32(k)})
		}
	}
	return m
}

// NodeSums fills dst[i] with the merged node multiplier
// λᵢ = Σ_{j∈input(i)} λⱼᵢ of Theorem 4 (dst must have NumNodes entries).
func (m *Multipliers) NodeSums(dst []float64) {
	m.NodeSumsRange(dst, 0, len(m.Edge))
}

// NodeSumsRange is NodeSums restricted to nodes [lo, hi). Each node's sum
// is independent, so disjoint ranges may be filled concurrently.
func (m *Multipliers) NodeSumsRange(dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for _, v := range m.Edge[i] {
			s += v
		}
		dst[i] = s
	}
}

// SinkFlow returns λ_m = Σ_{j∈input(m)} λⱼm, the total timing flow, which
// multiplies the −A0 constant of the dual function.
func (m *Multipliers) SinkFlow() float64 {
	s := 0.0
	for _, v := range m.Edge[m.g.SinkID()] {
		s += v
	}
	return s
}

// StepDelay applies the paper's A4 update to every edge multiplier:
//
//	λⱼm += ρ·(aⱼ − A0)              (sink edges)
//	λⱼᵢ += ρ·(aⱼ + Dᵢ − aᵢ)         (component edges)
//	λ₀ᵢ += ρ·(Dᵢ − aᵢ)              (driver edges)
//
// then clamps at zero. A and D are the arrival-time and delay vectors of
// the current LRS solution; when relative is true the violations are
// normalized by A0 and clamped to [−1, 1] (a scale-free trust region that
// makes one step size work across circuits and prevents overshoot on the
// large initial violations).
func (m *Multipliers) StepDelay(a, d []float64, a0, rho float64, relative bool) {
	m.StepDelayRange(a, d, a0, rho, relative, 1, m.g.NumNodes())
}

// StepDelayRange applies the StepDelay update to the in-edges of head
// nodes [lo, hi) only. A node's update reads the shared arrival/delay
// vectors and writes only that node's in-edge multipliers, so disjoint
// ranges may step concurrently.
func (m *Multipliers) StepDelayRange(a, d []float64, a0, rho float64, relative bool, lo, hi int) {
	g := m.g
	sink := g.SinkID()
	scale := 1.0
	if relative && a0 > 0 {
		scale = 1 / a0
	}
	trust := m.trust()
	for i := lo; i < hi; i++ {
		in := g.In(i)
		for k := range in {
			j := int(in[k])
			var viol float64
			switch {
			case i == sink:
				viol = a[j] - a0
			case j == 0: // driver i's source edge
				viol = d[i] - a[i]
			default:
				viol = a[j] + d[i] - a[i]
			}
			viol *= scale
			if relative {
				viol = math.Max(-1, math.Min(1, viol))
			}
			m.Edge[i][k] = stepValue(m.Edge[i][k], rho*viol, trust, relative)
		}
	}
}

func (m *Multipliers) trust() float64 {
	if m.Trust > 1 {
		return m.Trust
	}
	return 2
}

// StepBeta updates the power multiplier with the same trust-region rules
// as StepDelay.
func (m *Multipliers) StepBeta(violation, rho, norm float64, relative bool) {
	m.Beta = StepScalar(m.Beta, violation, rho, norm, m.trust(), relative)
}

// StepGamma updates the crosstalk multiplier.
func (m *Multipliers) StepGamma(violation, rho, norm float64, relative bool) {
	m.Gamma = StepScalar(m.Gamma, violation, rho, norm, m.trust(), relative)
}

// StepScalar applies a clamped subgradient step to a scalar multiplier and
// returns the new value: v' = max(0, v + ρ·violation/norm). When relative
// is true the normalized violation is clamped to [−1, 1] and the change is
// confined to the [v/trust, v·trust] corridor, matching StepDelay.
func StepScalar(v, violation, rho, norm, trust float64, relative bool) float64 {
	if relative && norm > 0 {
		violation = math.Max(-1, math.Min(1, violation/norm))
	}
	return stepValue(v, rho*violation, trust, relative)
}

// stepValue applies an additive multiplier update. In relative (trust
// region) mode the new value is additionally confined to [v/trust, v·trust]
// for positive v: large adaptive steps (e.g. Polyak) otherwise slam a
// multiplier to zero and rebound past the optimum in a period-2 cycle;
// the factor corridor turns that into geometric convergence while still
// allowing growth from zero.
func stepValue(v, delta, trust float64, relative bool) float64 {
	nv := v + delta
	if relative && v > 0 {
		if nv > trust*v {
			nv = trust * v
		} else if nv < v/trust {
			nv = v / trust
		}
	}
	if nv < 0 {
		return 0
	}
	return nv
}

// DelayGradNormSq returns the squared norm of the active, A0-normalized
// delay subgradient: Σ (viol/A0)² over edges, skipping coordinates where
// the multiplier is zero and the constraint is slack (the projected
// subgradient is zero there). Used by Polyak-style step sizing. The sum
// folds per-node partials in node order, matching a DelayGradFillRange
// pass combined by DelayGradNormSqFrom. Allocates one scratch vector per
// call; hot loops should hold a buffer and use DelayGradNormSqInto.
func (m *Multipliers) DelayGradNormSq(a, d []float64, a0 float64) float64 {
	return m.DelayGradNormSqInto(a, d, a0, make([]float64, m.g.NumNodes()))
}

// DelayGradNormSqInto is DelayGradNormSq with caller-supplied scratch of
// length NumNodes, performing no allocation. The scratch holds the
// per-node partials afterwards; the returned total folds them in node
// order, so it is identical for every sharding that fills the same
// scratch.
func (m *Multipliers) DelayGradNormSqInto(a, d []float64, a0 float64, scratch []float64) float64 {
	nn := m.g.NumNodes()
	m.DelayGradFillRange(a, d, a0, scratch, 1, nn)
	return DelayGradNormSqFrom(scratch[1:nn])
}

// DelayGradFillRange writes each head node's active normalized squared
// subgradient contribution Σ_k (violᵢₖ/A0)² into dst[i] for i ∈ [lo, hi).
// Each node touches only its own dst entry, so disjoint ranges may be
// filled concurrently; a serial DelayGradNormSqFrom fold over dst then
// yields a total independent of the partitioning.
func (m *Multipliers) DelayGradFillRange(a, d []float64, a0 float64, dst []float64, lo, hi int) {
	g := m.g
	sink := g.SinkID()
	for i := lo; i < hi; i++ {
		in := g.In(i)
		s := 0.0
		for k := range in {
			j := int(in[k])
			var viol float64
			switch {
			case i == sink:
				viol = a[j] - a0
			case j == 0:
				viol = d[i] - a[i]
			default:
				viol = a[j] + d[i] - a[i]
			}
			if viol < 0 && m.Edge[i][k] == 0 {
				continue
			}
			n := viol / a0
			s += n * n
		}
		dst[i] = s
	}
}

// DelayGradNormSqFrom folds per-node contributions in index order — the
// deterministic reduction shared by the serial and sharded gradient paths.
func DelayGradNormSqFrom(perNode []float64) float64 {
	sum := 0.0
	for _, v := range perNode {
		sum += v
	}
	return sum
}

// ProjectFlow restores Theorem 3's flow conservation with one reverse
// topological sweep: each node's in-edge multipliers are rescaled so their
// sum equals the node's (final) out-edge sum. Sink in-edges are free
// variables and are left untouched; source out-edges are each node's
// in-flow and follow from conservation at the drivers.
func (m *Multipliers) ProjectFlow() {
	nn := m.g.NumNodes()
	for i := nn - 2; i >= 1; i-- {
		outSum := 0.0
		for _, r := range m.out[i] {
			outSum += m.Edge[r.node][r.pos]
		}
		in := m.Edge[i]
		if len(in) == 0 {
			continue
		}
		inSum := 0.0
		for _, v := range in {
			inSum += v
		}
		switch {
		case outSum == 0:
			for k := range in {
				in[k] = 0
			}
		case inSum > 0:
			s := outSum / inSum
			for k := range in {
				in[k] *= s
			}
		default: // no information: distribute evenly
			even := outSum / float64(len(in))
			for k := range in {
				in[k] = even
			}
		}
	}
}

// ScaleAll multiplies every multiplier (edges, β, γ) by f, moving along
// the ray t·μ in multiplier space. Flow conservation is preserved.
func (m *Multipliers) ScaleAll(f float64) {
	for i := range m.Edge {
		for k := range m.Edge[i] {
			m.Edge[i][k] *= f
		}
	}
	m.Beta *= f
	m.Gamma *= f
}

// FlowImbalance returns the largest |Σout − Σin| over all nodes that
// Theorem 3 constrains; zero (up to roundoff) after ProjectFlow.
func (m *Multipliers) FlowImbalance() float64 {
	worst := 0.0
	for i := 1; i < m.g.NumNodes()-1; i++ {
		outSum := 0.0
		for _, r := range m.out[i] {
			outSum += m.Edge[r.node][r.pos]
		}
		inSum := 0.0
		for _, v := range m.Edge[i] {
			inSum += v
		}
		if d := math.Abs(outSum - inSum); d > worst {
			worst = d
		}
	}
	return worst
}

// Validate checks non-negativity of every multiplier.
func (m *Multipliers) Validate() error {
	for i := range m.Edge {
		for k, v := range m.Edge[i] {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("lagrange: edge multiplier (%d←%d) = %g", i, m.g.In(i)[k], v)
			}
		}
	}
	if m.Beta < 0 || m.Gamma < 0 {
		return fmt.Errorf("lagrange: negative scalar multiplier β=%g γ=%g", m.Beta, m.Gamma)
	}
	return nil
}

// MemoryBytes returns the analytic footprint for Figure-10 accounting.
func (m *Multipliers) MemoryBytes() int {
	b := 0
	for i := range m.Edge {
		b += len(m.Edge[i])*8 + len(m.out[i])*8
	}
	return b + 16
}
