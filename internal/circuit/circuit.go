// Package circuit defines the circuit-graph representation from Section 2 of
// the paper: a directed acyclic graph H = (V,E) whose nodes are a source ~s
// (index 0), s input drivers (indices 1..s), n sizable components — gates
// and wires — (indices s+1..n+s), and a sink ~t (index n+s+1). Indices are
// topological: if node i drives node j then i < j.
//
// A gate of size x has output resistance RUnit/x and input capacitance
// CUnit·x. A wire of size (width) x has resistance RUnit/x and capacitance
// CUnit·x + Fringe, modelled as a π segment (half the capacitance at each
// end). Input drivers have a fixed resistance and occupy no area; primary
// output loads are fixed capacitances lumped on the components that feed the
// sink.
//
// Gates decouple RC stages: the paper's downstream(i) walks forward through
// wires and stops at (but includes the input capacitance of) gates; its
// upstream(i) walks backward to the gate or driver that drives i's stage.
package circuit

import (
	"fmt"
	"sort"
)

// Kind classifies a node of the circuit graph.
type Kind uint8

const (
	// Source is the artificial node ~s feeding all input drivers.
	Source Kind = iota
	// Driver is an input driver with fixed resistance (the paper's R_D).
	Driver
	// Gate is a sizable logic gate.
	Gate
	// Wire is a sizable interconnect segment.
	Wire
	// Sink is the artificial node ~t collecting all primary outputs.
	Sink
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Source:
		return "source"
	case Driver:
		return "driver"
	case Gate:
		return "gate"
	case Wire:
		return "wire"
	case Sink:
		return "sink"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Sizable reports whether nodes of this kind carry a size variable xᵢ.
func (k Kind) Sizable() bool { return k == Gate || k == Wire }

// Component carries the per-node attributes the paper tags onto the circuit
// graph: type, unit-size resistance r̂ᵢ, unit-size capacitance ĉᵢ, fringing
// capacitance fᵢ, area coefficient αᵢ, and the size bounds Lᵢ ≤ xᵢ ≤ Uᵢ.
type Component struct {
	Kind Kind
	Name string

	// RUnit is the unit-size resistance in Ω·µm for gates and wires
	// (r = RUnit/x); for drivers it is the fixed resistance R_D in Ω.
	RUnit float64
	// CUnit is the capacitance per µm of size in fF/µm (ĉᵢ). Zero for
	// drivers.
	CUnit float64
	// Fringe is the size-independent capacitance fᵢ in fF (wires only).
	Fringe float64
	// Length is the wire length in µm (wires only; informational — RUnit,
	// CUnit and Fringe are already totals for the segment).
	Length float64
	// AreaCoeff is αᵢ, the area in µm² per µm of size.
	AreaCoeff float64
	// Lo and Hi bound the size: Lᵢ ≤ xᵢ ≤ Uᵢ (µm).
	Lo, Hi float64
	// Load is a fixed extra capacitance in fF at this node's output; used
	// for primary-output loads C_L on components feeding the sink.
	Load float64
}

// Graph is an immutable, topologically indexed circuit graph.
type Graph struct {
	s     int // number of input drivers
	n     int // number of sizable components (gates + wires)
	comps []Component
	in    [][]int32
	out   [][]int32
	wires []int32 // node indices of all wires, ascending
	gates []int32 // node indices of all gates, ascending

	// Topological levels (depth buckets): levelOf[i] is the longest-path
	// edge count from a fan-in-free node to i, so every edge (i, j) has
	// levelOf[i] < levelOf[j] and nodes sharing a level are mutually
	// independent. lvlOff/lvlNodes is the bucket CSR: nodes of level l are
	// lvlNodes[lvlOff[l]:lvlOff[l+1]], ascending. Computed once at build
	// time; this is what the evaluator's levelized (parallel) timing
	// propagation schedules over.
	levelOf  []int32
	lvlOff   []int32
	lvlNodes []int32
}

// Drivers returns s, the number of input drivers.
func (g *Graph) Drivers() int { return g.s }

// Components returns n, the number of sizable components (gates plus wires).
func (g *Graph) Components() int { return g.n }

// NumNodes returns the total node count n+s+2 (including source and sink).
func (g *Graph) NumNodes() int { return len(g.comps) }

// SinkID returns the index n+s+1 of the artificial sink ~t.
func (g *Graph) SinkID() int { return len(g.comps) - 1 }

// Comp returns the component attributes of node i.
func (g *Graph) Comp(i int) *Component { return &g.comps[i] }

// In returns the fan-in node indices of i (the paper's input(i)). The slice
// must not be modified.
func (g *Graph) In(i int) []int32 { return g.in[i] }

// Out returns the fan-out node indices of i (the paper's output(i)). The
// slice must not be modified.
func (g *Graph) Out(i int) []int32 { return g.out[i] }

// Wires returns the node indices of all wires in ascending order. The slice
// must not be modified.
func (g *Graph) Wires() []int32 { return g.wires }

// Gates returns the node indices of all gates in ascending order. The slice
// must not be modified.
func (g *Graph) Gates() []int32 { return g.gates }

// NumLevels returns the number of topological levels (longest-path depth
// plus one). Level 0 holds the source (and, on Loose graphs, any node with
// no fan-in); on Build-validated graphs the sink sits alone on the top
// level.
func (g *Graph) NumLevels() int { return len(g.lvlOff) - 1 }

// Level returns the topological level of node i: the number of edges on
// the longest path from a fan-in-free node to i. For every edge (i, j),
// Level(i) < Level(j), so processing nodes level by level is a valid
// topological schedule and nodes within one level never depend on each
// other.
func (g *Graph) Level(i int) int { return int(g.levelOf[i]) }

// LevelNodes returns the node indices at level l in ascending order. The
// slice must not be modified.
func (g *Graph) LevelNodes(l int) []int32 {
	return g.lvlNodes[g.lvlOff[l]:g.lvlOff[l+1]]
}

// computeLevels fills the level assignment and bucket CSR. Relies on the
// topological node numbering (every in-neighbour of i has index < i), which
// build establishes before calling.
func (g *Graph) computeLevels() {
	nn := g.NumNodes()
	g.levelOf = make([]int32, nn)
	maxL := int32(0)
	for i := 1; i < nn; i++ {
		d := int32(0)
		for _, j := range g.in[i] {
			if l := g.levelOf[j] + 1; l > d {
				d = l
			}
		}
		g.levelOf[i] = d
		if d > maxL {
			maxL = d
		}
	}
	g.lvlOff = make([]int32, maxL+2)
	for _, l := range g.levelOf {
		g.lvlOff[l+1]++
	}
	for l := int32(0); l <= maxL; l++ {
		g.lvlOff[l+1] += g.lvlOff[l]
	}
	g.lvlNodes = make([]int32, nn)
	fill := make([]int32, maxL+1)
	for i := 0; i < nn; i++ { // ascending i ⇒ ascending within each bucket
		l := g.levelOf[i]
		g.lvlNodes[g.lvlOff[l]+fill[l]] = int32(i)
		fill[l]++
	}
}

// NumEdges returns the number of edges, including source and sink edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, e := range g.out {
		total += len(e)
	}
	return total
}

// Downstream returns the paper's downstream(i): all nodes on paths from i
// forward through wires up to and including the first gate on each path
// (whose input capacitance loads the stage), including i itself. Traversal
// does not continue past gates and never includes source or sink. The result
// is in ascending index order.
func (g *Graph) Downstream(i int) []int {
	seen := map[int]bool{i: true}
	stack := []int{i}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u != i && g.comps[u].Kind == Gate {
			continue // gate input reached: include, do not traverse past
		}
		for _, v := range g.out[u] {
			w := int(v)
			if g.comps[w].Kind == Sink || seen[w] {
				continue
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	res := make([]int, 0, len(seen))
	for u := range seen {
		res = append(res, u)
	}
	sort.Ints(res)
	return res
}

// Upstream returns the paper's upstream(i): all nodes except i on the
// backward paths from i through wires up to and including the driving gate
// or input driver of i's stage. Traversal does not continue past gates or
// drivers and never includes the source. The result is in ascending index
// order.
func (g *Graph) Upstream(i int) []int {
	seen := map[int]bool{}
	stack := []int{i}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u != i {
			k := g.comps[u].Kind
			if k == Gate || k == Driver {
				continue // stage boundary: include, do not traverse past
			}
		}
		for _, v := range g.in[u] {
			w := int(v)
			if g.comps[w].Kind == Source || seen[w] {
				continue
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	res := make([]int, 0, len(seen))
	for u := range seen {
		res = append(res, u)
	}
	sort.Ints(res)
	return res
}

// Depth returns the maximum number of components on any source-to-sink path
// (excluding source, sink, and drivers) — the logic+interconnect depth.
func (g *Graph) Depth() int {
	depth := make([]int, g.NumNodes())
	maxDepth := 0
	for i := 1; i < g.NumNodes(); i++ {
		d := 0
		for _, j := range g.in[i] {
			if depth[j] > d {
				d = depth[j]
			}
		}
		if g.comps[i].Kind.Sizable() {
			d++
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth
}

// Stats summarizes a graph's structure.
type Stats struct {
	Drivers, Gates, Wires int
	Edges                 int
	Depth                 int
}

// Stats computes structural statistics.
func (g *Graph) Stats() Stats {
	return Stats{
		Drivers: g.s,
		Gates:   len(g.gates),
		Wires:   len(g.wires),
		Edges:   g.NumEdges(),
		Depth:   g.Depth(),
	}
}

// MemoryBytes returns the analytic memory footprint of the graph structure
// itself (component records plus adjacency), used for the Figure-10 storage
// accounting.
func (g *Graph) MemoryBytes() int {
	const compBytes = 8*9 + 16 + 2 // 9 float64s, name header, kind+pad
	b := len(g.comps) * compBytes
	b += g.NumEdges() * 2 * 4 // each edge appears in one in-list and one out-list
	b += (len(g.wires) + len(g.gates)) * 4
	b += (len(g.levelOf) + len(g.lvlOff) + len(g.lvlNodes)) * 4
	return b
}
