package circuit

import (
	"fmt"
)

// Builder incrementally assembles a circuit graph. Nodes are added in any
// order and connected freely; Build performs the topological renumbering
// (source = 0, drivers = 1..s, components s+1..n+s indexed so that drivers
// precede their loads, sink = n+s+1) and validates the structure.
type Builder struct {
	comps   []Component
	edges   [][2]int // component-to-component connections, builder IDs
	outputs []output // components feeding the sink
	err     error
}

type output struct {
	node int
	load float64
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) add(c Component) int {
	b.comps = append(b.comps, c)
	return len(b.comps) - 1
}

// AddDriver adds an input driver with fixed resistance r (Ω) and returns its
// builder ID.
func (b *Builder) AddDriver(name string, r float64) int {
	return b.add(Component{Kind: Driver, Name: name, RUnit: r})
}

// AddGate adds a gate with unit-size resistance rUnit (Ω·µm), input
// capacitance per size cUnit (fF/µm), area coefficient (µm²/µm), and size
// bounds [lo, hi] (µm).
func (b *Builder) AddGate(name string, rUnit, cUnit, areaCoeff, lo, hi float64) int {
	return b.add(Component{
		Kind: Gate, Name: name,
		RUnit: rUnit, CUnit: cUnit,
		AreaCoeff: areaCoeff, Lo: lo, Hi: hi,
	})
}

// AddWire adds a wire segment with total unit-width resistance rUnit (Ω·µm),
// total capacitance per width cUnit (fF/µm), fringe capacitance (fF), length
// (µm), area coefficient (µm²/µm), and size bounds [lo, hi] (µm).
func (b *Builder) AddWire(name string, rUnit, cUnit, fringe, length, areaCoeff, lo, hi float64) int {
	return b.add(Component{
		Kind: Wire, Name: name,
		RUnit: rUnit, CUnit: cUnit, Fringe: fringe, Length: length,
		AreaCoeff: areaCoeff, Lo: lo, Hi: hi,
	})
}

// Connect adds a data-flow edge from one component to another.
func (b *Builder) Connect(from, to int) {
	if b.err != nil {
		return
	}
	if from < 0 || from >= len(b.comps) || to < 0 || to >= len(b.comps) {
		b.err = fmt.Errorf("circuit: Connect(%d, %d): unknown node", from, to)
		return
	}
	b.edges = append(b.edges, [2]int{from, to})
}

// MarkOutput declares that a component drives a primary output with load
// capacitance loadCap (fF); Build connects it to the sink.
func (b *Builder) MarkOutput(node int, loadCap float64) {
	if b.err != nil {
		return
	}
	if node < 0 || node >= len(b.comps) {
		b.err = fmt.Errorf("circuit: MarkOutput(%d): unknown node", node)
		return
	}
	if loadCap < 0 {
		b.err = fmt.Errorf("circuit: MarkOutput(%d): negative load %g", node, loadCap)
		return
	}
	b.outputs = append(b.outputs, output{node, loadCap})
}

// Build validates the circuit and returns the immutable graph together with
// the mapping from builder IDs to graph node indices.
func (b *Builder) Build() (*Graph, []int, error) { return b.build(false) }

// BuildLoose is Build without the structural-completeness validation: it
// skips the primary-output requirement, the dangling-node check, and the
// source/sink reachability pass, so the sink may end up with no feeders and
// components may have no fan-out. Per-node validity (kinds, bounds, wire
// fan-in, driver fan-in) and acyclicity are still enforced. Intended for
// synthetic analysis and test workloads — fuzzing the levelizer over
// arbitrary DAG shapes, or probing evaluator behaviour on degenerate graphs
// a real flow never produces.
func (b *Builder) BuildLoose() (*Graph, []int, error) { return b.build(true) }

func (b *Builder) build(loose bool) (*Graph, []int, error) {
	if b.err != nil {
		return nil, nil, b.err
	}
	nb := len(b.comps)
	if nb == 0 {
		return nil, nil, fmt.Errorf("circuit: empty circuit")
	}

	// Per-builder-node adjacency for sorting and validation.
	out := make([][]int, nb)
	indeg := make([]int, nb)
	for _, e := range b.edges {
		out[e[0]] = append(out[e[0]], e[1])
		indeg[e[1]]++
	}

	s := 0
	for i, c := range b.comps {
		switch c.Kind {
		case Driver:
			s++
			if indeg[i] != 0 {
				return nil, nil, fmt.Errorf("circuit: driver %q has fan-in", c.Name)
			}
		case Wire:
			if indeg[i] != 1 {
				return nil, nil, fmt.Errorf("circuit: wire %q has fan-in %d, want exactly 1", c.Name, indeg[i])
			}
		case Gate:
			if indeg[i] == 0 {
				return nil, nil, fmt.Errorf("circuit: gate %q has no fan-in", c.Name)
			}
		default:
			return nil, nil, fmt.Errorf("circuit: node %q has reserved kind %v", c.Name, c.Kind)
		}
		if c.Kind.Sizable() {
			if c.Lo <= 0 || c.Hi < c.Lo {
				return nil, nil, fmt.Errorf("circuit: %v %q has invalid size bounds [%g, %g]", c.Kind, c.Name, c.Lo, c.Hi)
			}
			if c.RUnit <= 0 || c.CUnit <= 0 {
				return nil, nil, fmt.Errorf("circuit: %v %q needs positive RUnit and CUnit", c.Kind, c.Name)
			}
			if c.AreaCoeff < 0 || c.Fringe < 0 {
				return nil, nil, fmt.Errorf("circuit: %v %q has negative area or fringe", c.Kind, c.Name)
			}
		} else if c.RUnit <= 0 {
			return nil, nil, fmt.Errorf("circuit: driver %q needs positive resistance", c.Name)
		}
	}
	if s == 0 {
		return nil, nil, fmt.Errorf("circuit: no input drivers")
	}

	isOutput := make([]bool, nb)
	loads := make([]float64, nb)
	for _, o := range b.outputs {
		if isOutput[o.node] {
			return nil, nil, fmt.Errorf("circuit: %q marked output twice", b.comps[o.node].Name)
		}
		isOutput[o.node] = true
		loads[o.node] = o.load
	}
	if !loose {
		if len(b.outputs) == 0 {
			return nil, nil, fmt.Errorf("circuit: no primary outputs (use MarkOutput)")
		}
		for i, c := range b.comps {
			if len(out[i]) == 0 && !isOutput[i] {
				return nil, nil, fmt.Errorf("circuit: %v %q is dangling (no fan-out, not an output)", c.Kind, c.Name)
			}
		}
	}

	// Kahn topological sort with drivers first, so the final numbering puts
	// drivers at 1..s as the paper requires.
	order := make([]int, 0, nb)
	queue := make([]int, 0, nb)
	deg := make([]int, nb)
	copy(deg, indeg)
	for i, c := range b.comps {
		if c.Kind == Driver {
			order = append(order, i)
		} else if deg[i] == 0 {
			return nil, nil, fmt.Errorf("circuit: %v %q has no fan-in and is not a driver", c.Kind, b.comps[i].Name)
		}
	}
	for _, d := range order {
		for _, v := range out[d] {
			deg[v]--
			if deg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range out[u] {
			deg[v]--
			if deg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != nb {
		return nil, nil, fmt.Errorf("circuit: cycle detected (%d of %d nodes ordered)", len(order), nb)
	}

	// Renumber: source 0, drivers 1..s, components s+1..n+s, sink n+s+1.
	n := nb - s
	g := &Graph{
		s:     s,
		n:     n,
		comps: make([]Component, nb+2),
		in:    make([][]int32, nb+2),
		out:   make([][]int32, nb+2),
	}
	g.comps[0] = Component{Kind: Source, Name: "~s"}
	g.comps[nb+1] = Component{Kind: Sink, Name: "~t"}
	id := make([]int, nb) // builder ID -> graph index
	for pos, u := range order {
		id[u] = pos + 1
		c := b.comps[u]
		c.Load = loads[u]
		g.comps[pos+1] = c
	}
	addEdge := func(from, to int) {
		g.out[from] = append(g.out[from], int32(to))
		g.in[to] = append(g.in[to], int32(from))
	}
	for i, c := range b.comps {
		if c.Kind == Driver {
			addEdge(0, id[i])
		}
		if isOutput[i] {
			addEdge(id[i], nb+1)
		}
	}
	for _, e := range b.edges {
		addEdge(id[e[0]], id[e[1]])
	}

	// Reachability: every component must be reachable from the source and
	// must reach the sink.
	if !loose {
		if err := g.checkReachability(); err != nil {
			return nil, nil, err
		}
	}
	g.computeLevels()
	for i := 1; i <= nb; i++ {
		switch g.comps[i].Kind {
		case Wire:
			g.wires = append(g.wires, int32(i))
		case Gate:
			g.gates = append(g.gates, int32(i))
		}
	}
	return g, id, nil
}

func (g *Graph) checkReachability() error {
	nn := g.NumNodes()
	fwd := make([]bool, nn)
	fwd[0] = true
	for i := 0; i < nn; i++ { // topological order ⇒ single forward pass
		if !fwd[i] {
			continue
		}
		for _, j := range g.out[i] {
			fwd[j] = true
		}
	}
	bwd := make([]bool, nn)
	bwd[nn-1] = true
	for i := nn - 1; i >= 0; i-- {
		if !bwd[i] {
			continue
		}
		for _, j := range g.in[i] {
			bwd[j] = true
		}
	}
	for i := 1; i < nn-1; i++ {
		if !fwd[i] {
			return fmt.Errorf("circuit: %v %q unreachable from inputs", g.comps[i].Kind, g.comps[i].Name)
		}
		if !bwd[i] {
			return fmt.Errorf("circuit: %v %q cannot reach any output", g.comps[i].Kind, g.comps[i].Name)
		}
	}
	return nil
}
