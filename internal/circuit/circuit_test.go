package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildFigure1 constructs the paper's Figure 1/2 circuit: three input
// drivers, seven wires, three gates, one output load. Topology (names follow
// the node numbering of Figure 2):
//
//	D1 → w4 → g6;  D2 → w5 → g7;  D3 → w8 → g12
//	g6 → w9 → g12;  g6 → w10 → g12;  g7 → w11 → g12
//	g12 → w13 → output load
func buildFigure1(t testing.TB) (*Graph, map[string]int) {
	t.Helper()
	b := NewBuilder()
	const (
		r, c, f, l, a = 10, 0.16, 0.01, 50, 1
		lo, hi        = 0.1, 10
	)
	d1 := b.AddDriver("D1", 100)
	d2 := b.AddDriver("D2", 100)
	d3 := b.AddDriver("D3", 100)
	w4 := b.AddWire("w4", r, c, f, l, a, lo, hi)
	w5 := b.AddWire("w5", r, c, f, l, a, lo, hi)
	g6 := b.AddGate("g6", r, c, a, lo, hi)
	g7 := b.AddGate("g7", r, c, a, lo, hi)
	w8 := b.AddWire("w8", r, c, f, l, a, lo, hi)
	w9 := b.AddWire("w9", r, c, f, l, a, lo, hi)
	w10 := b.AddWire("w10", r, c, f, l, a, lo, hi)
	w11 := b.AddWire("w11", r, c, f, l, a, lo, hi)
	g12 := b.AddGate("g12", r, c, a, lo, hi)
	w13 := b.AddWire("w13", r, c, f, l, a, lo, hi)
	b.Connect(d1, w4)
	b.Connect(d2, w5)
	b.Connect(d3, w8)
	b.Connect(w4, g6)
	b.Connect(w5, g7)
	b.Connect(g6, w9)
	b.Connect(g6, w10)
	b.Connect(g7, w11)
	b.Connect(w8, g12)
	b.Connect(w9, g12)
	b.Connect(w10, g12)
	b.Connect(w11, g12)
	b.Connect(g12, w13)
	b.MarkOutput(w13, 20)
	g, _, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	byName := map[string]int{}
	for i := 0; i < g.NumNodes(); i++ {
		byName[g.Comp(i).Name] = i
	}
	return g, byName
}

func names(g *Graph, ids []int) map[string]bool {
	m := map[string]bool{}
	for _, i := range ids {
		m[g.Comp(i).Name] = true
	}
	return m
}

func TestFigure1Counts(t *testing.T) {
	g, _ := buildFigure1(t)
	st := g.Stats()
	if st.Drivers != 3 || st.Gates != 3 || st.Wires != 7 {
		t.Fatalf("got %d drivers / %d gates / %d wires, want 3/3/7", st.Drivers, st.Gates, st.Wires)
	}
	if g.NumNodes() != 15 { // n+s+2 = 10+3+2
		t.Errorf("NumNodes = %d, want 15", g.NumNodes())
	}
	if g.SinkID() != 14 {
		t.Errorf("SinkID = %d, want 14", g.SinkID())
	}
	if g.Components() != 10 {
		t.Errorf("Components = %d, want 10", g.Components())
	}
}

// TestFigure1Downstream checks the paper's worked fact downstream(D2) =
// {D2, w5, g7}: the stage of driver 2 stops at (and includes) gate 7.
func TestFigure1Downstream(t *testing.T) {
	g, id := buildFigure1(t)
	got := names(g, g.Downstream(id["D2"]))
	want := map[string]bool{"D2": true, "w5": true, "g7": true}
	if len(got) != len(want) {
		t.Fatalf("downstream(D2) = %v, want %v", got, want)
	}
	for n := range want {
		if !got[n] {
			t.Errorf("downstream(D2) missing %s", n)
		}
	}
}

// TestFigure1Upstream checks the paper's worked fact upstream(w10) = {g6}.
func TestFigure1Upstream(t *testing.T) {
	g, id := buildFigure1(t)
	got := names(g, g.Upstream(id["w10"]))
	if len(got) != 1 || !got["g6"] {
		t.Fatalf("upstream(w10) = %v, want {g6}", got)
	}
}

func TestFigure1UpstreamThroughWire(t *testing.T) {
	g, id := buildFigure1(t)
	// g12's stage drivers: through wires w8..w11 back to D3, g6, g7.
	got := names(g, g.Upstream(id["g12"]))
	want := map[string]bool{"w8": true, "w9": true, "w10": true, "w11": true, "D3": true, "g6": true, "g7": true}
	if len(got) != len(want) {
		t.Fatalf("upstream(g12) = %v, want %v", got, want)
	}
	for n := range want {
		if !got[n] {
			t.Errorf("upstream(g12) missing %s", n)
		}
	}
}

func TestFigure1DownstreamOfGate(t *testing.T) {
	g, id := buildFigure1(t)
	// Gate 6 drives two wires, both ending at g12.
	got := names(g, g.Downstream(id["g6"]))
	want := map[string]bool{"g6": true, "w9": true, "w10": true, "g12": true}
	if len(got) != len(want) {
		t.Fatalf("downstream(g6) = %v, want %v", got, want)
	}
	for n := range want {
		if !got[n] {
			t.Errorf("downstream(g6) missing %s", n)
		}
	}
}

func TestTopologicalIndexing(t *testing.T) {
	g, _ := buildFigure1(t)
	for i := 0; i < g.NumNodes(); i++ {
		for _, j := range g.Out(i) {
			if int(j) <= i {
				t.Errorf("edge (%d,%d) violates topological indexing", i, j)
			}
		}
	}
	// Drivers occupy 1..s.
	for i := 1; i <= g.Drivers(); i++ {
		if g.Comp(i).Kind != Driver {
			t.Errorf("node %d is %v, want driver", i, g.Comp(i).Kind)
		}
	}
}

func TestDepth(t *testing.T) {
	g, _ := buildFigure1(t)
	// Longest component chain: w5 g7 w11 g12 w13 (or w4 g6 w9/w10 g12 w13) = 5.
	if d := g.Depth(); d != 5 {
		t.Errorf("Depth = %d, want 5", d)
	}
}

func TestBuilderRejectsCycle(t *testing.T) {
	b := NewBuilder()
	d := b.AddDriver("d", 100)
	w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
	g1 := b.AddGate("g1", 1, 1, 1, 0.1, 10)
	w2 := b.AddWire("w2", 1, 1, 0, 1, 1, 0.1, 10)
	b.Connect(d, w)
	b.Connect(w, g1)
	b.Connect(g1, w2)
	b.Connect(w2, g1) // cycle g1 -> w2 -> g1
	b.MarkOutput(g1, 10)
	if _, _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a cyclic circuit")
	}
}

func TestBuilderRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"empty", func() *Builder { return NewBuilder() }},
		{"no outputs", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d, w)
			return b
		}},
		{"dangling wire", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
			w2 := b.AddWire("w2", 1, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d, w)
			b.Connect(d, w2)
			b.MarkOutput(w, 10)
			return b
		}},
		{"wire with two inputs", func() *Builder {
			b := NewBuilder()
			d1 := b.AddDriver("d1", 100)
			d2 := b.AddDriver("d2", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d1, w)
			b.Connect(d2, w)
			b.MarkOutput(w, 10)
			return b
		}},
		{"gate with no fan-in", func() *Builder {
			b := NewBuilder()
			b.AddDriver("d", 100)
			g := b.AddGate("g", 1, 1, 1, 0.1, 10)
			b.MarkOutput(g, 10)
			return b
		}},
		{"driver with fan-in", func() *Builder {
			b := NewBuilder()
			d1 := b.AddDriver("d1", 100)
			d2 := b.AddDriver("d2", 100)
			b.Connect(d1, d2)
			b.MarkOutput(d2, 10)
			return b
		}},
		{"invalid bounds", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 10, 0.1)
			b.Connect(d, w)
			b.MarkOutput(w, 10)
			return b
		}},
		{"zero runit", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 0, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d, w)
			b.MarkOutput(w, 10)
			return b
		}},
		{"connect unknown", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			b.Connect(d, 99)
			return b
		}},
		{"negative load", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d, w)
			b.MarkOutput(w, -5)
			return b
		}},
		{"double output", func() *Builder {
			b := NewBuilder()
			d := b.AddDriver("d", 100)
			w := b.AddWire("w", 1, 1, 0, 1, 1, 0.1, 10)
			b.Connect(d, w)
			b.MarkOutput(w, 10)
			b.MarkOutput(w, 10)
			return b
		}},
	}
	for _, c := range cases {
		if _, _, err := c.build().Build(); err == nil {
			t.Errorf("%s: Build() succeeded, want error", c.name)
		}
	}
}

// randomChain builds a random but always-valid driver→(wire→gate)*→wire
// chain circuit with extra random cross edges between gate outputs and later
// gates (via fresh wires), used for property tests.
func randomChain(rng *rand.Rand) *Graph {
	b := NewBuilder()
	d := b.AddDriver("d", 50+rng.Float64()*100)
	nStages := 2 + rng.Intn(6)
	prevGate := -1
	var gateIDs []int
	cur := d
	for s := 0; s < nStages; s++ {
		w := b.AddWire("w", 1+rng.Float64()*5, 0.5+rng.Float64(), rng.Float64()*0.1, 10+rng.Float64()*90, 1, 0.1, 10)
		b.Connect(cur, w)
		g := b.AddGate("g", 5+rng.Float64()*10, 0.1+rng.Float64(), 1+rng.Float64()*8, 0.1, 10)
		b.Connect(w, g)
		if prevGate >= 0 && rng.Intn(2) == 0 {
			wx := b.AddWire("wx", 1+rng.Float64()*5, 0.5+rng.Float64(), rng.Float64()*0.1, 10+rng.Float64()*90, 1, 0.1, 10)
			b.Connect(prevGate, wx)
			b.Connect(wx, g)
		}
		prevGate = g
		gateIDs = append(gateIDs, g)
		cur = g
	}
	wOut := b.AddWire("wout", 1, 1, 0.01, 20, 1, 0.1, 10)
	b.Connect(cur, wOut)
	b.MarkOutput(wOut, 10+rng.Float64()*40)
	g, _, err := b.Build()
	if err != nil {
		panic(err)
	}
	_ = gateIDs
	return g
}

func TestPropertyTopologicalAndStageInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomChain(rng)
		// Topological indexing invariant.
		for i := 0; i < g.NumNodes(); i++ {
			for _, j := range g.Out(i) {
				if int(j) <= i {
					return false
				}
			}
		}
		// Every wire's upstream ends at exactly one gate or driver.
		for _, wi := range g.Wires() {
			up := g.Upstream(int(wi))
			boundary := 0
			for _, u := range up {
				k := g.Comp(u).Kind
				if k == Gate || k == Driver {
					boundary++
				}
			}
			if boundary != 1 {
				return false
			}
		}
		// Downstream sets include the node itself and no source/sink.
		for i := 1; i <= g.Components()+g.Drivers(); i++ {
			ds := g.Downstream(i)
			self := false
			for _, u := range ds {
				if u == i {
					self = true
				}
				k := g.Comp(u).Kind
				if k == Source || k == Sink {
					return false
				}
			}
			if !self {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytesPositiveAndMonotone(t *testing.T) {
	g, _ := buildFigure1(t)
	small := g.MemoryBytes()
	if small <= 0 {
		t.Fatalf("MemoryBytes = %d, want positive", small)
	}
	rng := rand.New(rand.NewSource(7))
	big := randomChain(rng)
	for big.Components() <= g.Components() {
		big = randomChain(rng)
	}
	if big.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes of random circuit not positive")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Source: "source", Driver: "driver", Gate: "gate", Wire: "wire", Sink: "sink", Kind(9): "kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Source.Sizable() || Driver.Sizable() || Sink.Sizable() {
		t.Error("non-components reported sizable")
	}
	if !Gate.Sizable() || !Wire.Sizable() {
		t.Error("components not reported sizable")
	}
}

// TestLevelsFigure1 pins the level assignment on the paper's Figure-1
// circuit: levels strictly increase along every edge, the buckets partition
// the nodes in ascending order, level 0 holds exactly the source, and the
// sink sits alone on the top level.
func TestLevelsFigure1(t *testing.T) {
	g, id := buildFigure1(t)
	// Longest path: source → D1 → w4 → g6 → w9 → g12 → w13 → sink is 7
	// edges, so 8 levels.
	if got := g.NumLevels(); got != 8 {
		t.Errorf("NumLevels = %d, want 8", got)
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, j := range g.In(i) {
			if g.Level(int(j)) >= g.Level(i) {
				t.Fatalf("edge (%d,%d): level %d !< %d", j, i, g.Level(int(j)), g.Level(i))
			}
		}
	}
	if nodes := g.LevelNodes(0); len(nodes) != 1 || nodes[0] != 0 {
		t.Errorf("level 0 = %v, want [0] (source only)", nodes)
	}
	top := g.LevelNodes(g.NumLevels() - 1)
	if len(top) != 1 || int(top[0]) != g.SinkID() {
		t.Errorf("top level = %v, want [%d] (sink only)", top, g.SinkID())
	}
	// Spot values on the deepest chain.
	for name, want := range map[string]int{"D1": 1, "w4": 2, "g6": 3, "g12": 5, "w13": 6} {
		if got := g.Level(id[name]); got != want {
			t.Errorf("Level(%s) = %d, want %d", name, got, want)
		}
	}
}

// TestLevelsPartitionProperty checks on random chains that the level
// buckets are a partition consistent with Level() and ascending in index.
func TestLevelsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomChain(rng)
		seen := make([]int, g.NumNodes())
		for l := 0; l < g.NumLevels(); l++ {
			nodes := g.LevelNodes(l)
			for k, i := range nodes {
				if g.Level(int(i)) != l {
					return false
				}
				if k > 0 && nodes[k-1] >= i {
					return false
				}
				seen[i]++
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		// Depth (sizable nodes on the longest path) can never exceed the
		// edge-count depth of the level assignment.
		if g.Depth() > g.NumLevels()-1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBuildLoose covers the validation split: structurally incomplete
// graphs (no outputs, dangling components, a feeder-less sink) build in
// loose mode but not in strict mode, while per-node validity and
// acyclicity are enforced by both.
func TestBuildLoose(t *testing.T) {
	mk := func() *Builder {
		b := NewBuilder()
		d := b.AddDriver("D", 100)
		w := b.AddWire("w", 10, 2, 1, 50, 1, 0.1, 10)
		b.Connect(d, w) // dangling wire, no outputs anywhere
		return b
	}
	if _, _, err := mk().Build(); err == nil {
		t.Error("strict Build accepted a circuit with no outputs")
	}
	g, _, err := mk().BuildLoose()
	if err != nil {
		t.Fatalf("BuildLoose: %v", err)
	}
	if n := len(g.In(g.SinkID())); n != 0 {
		t.Errorf("loose sink has %d feeders, want 0", n)
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, j := range g.In(i) {
			if g.Level(int(j)) >= g.Level(i) {
				t.Fatalf("loose graph edge (%d,%d) does not increase level", j, i)
			}
		}
	}
	// Per-node validity still enforced in loose mode.
	b := NewBuilder()
	d := b.AddDriver("D", 100)
	w1 := b.AddWire("w1", 10, 2, 1, 50, 1, 0.1, 10)
	w2 := b.AddWire("w2", 10, 2, 1, 50, 1, 0.1, 10)
	b.Connect(d, w1)
	b.Connect(d, w2)
	b.Connect(w2, w1) // wire fan-in 2
	if _, _, err := b.BuildLoose(); err == nil {
		t.Error("BuildLoose accepted a wire with fan-in 2")
	}
	// Cycles still rejected in loose mode.
	b = NewBuilder()
	d = b.AddDriver("D", 100)
	g1 := b.AddGate("g1", 10, 1, 1, 0.1, 10)
	g2 := b.AddGate("g2", 10, 1, 1, 0.1, 10)
	b.Connect(d, g1)
	b.Connect(g1, g2)
	b.Connect(g2, g1)
	if _, _, err := b.BuildLoose(); err == nil {
		t.Error("BuildLoose accepted a cycle")
	}
}

// FuzzGraphLevels feeds arbitrary byte-shaped DAGs through BuildLoose and
// asserts the levelizer's structural contract: a valid topological order
// (levels strictly increase along edges) whose buckets partition the nodes
// in ascending index order, with the topological node numbering intact.
func FuzzGraphLevels(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add([]byte("level buckets must be a topological partition"))
	f.Add([]byte{0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() int {
			if len(data) == 0 {
				return 0
			}
			v := int(data[pos%len(data)])
			pos++
			return v
		}
		b := NewBuilder()
		var nodes []int
		for i := 0; i < 1+next()%3; i++ {
			nodes = append(nodes, b.AddDriver("d", 10+float64(next()%100)))
		}
		for c := 0; c < len(data)%50; c++ {
			if next()%2 == 0 {
				w := b.AddWire("w", 1+float64(next()%20), 0.5, 0.1, 30, 1, 0.1, 10)
				b.Connect(nodes[next()%len(nodes)], w)
				nodes = append(nodes, w)
			} else {
				g := b.AddGate("g", 1+float64(next()%20), 0.5, 1, 0.1, 10)
				for k := 0; k <= next()%2; k++ {
					b.Connect(nodes[next()%len(nodes)], g)
				}
				nodes = append(nodes, g)
			}
			if next()%5 == 0 {
				b.MarkOutput(nodes[len(nodes)-1], float64(next()%30))
			}
		}
		g, _, err := b.BuildLoose()
		if err != nil {
			return // bytes may double-mark an output etc.
		}
		seen := make([]bool, g.NumNodes())
		for l := 0; l < g.NumLevels(); l++ {
			bucket := g.LevelNodes(l)
			for k, i := range bucket {
				if g.Level(int(i)) != l || seen[i] || (k > 0 && bucket[k-1] >= i) {
					t.Fatalf("bucket %d broken at node %d", l, i)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("node %d missing from buckets", i)
			}
			for _, j := range g.In(i) {
				if int(j) >= i {
					t.Fatalf("edge (%d,%d) violates topological numbering", j, i)
				}
				if g.Level(int(j)) >= g.Level(i) {
					t.Fatalf("edge (%d,%d) does not increase level", j, i)
				}
			}
		}
	})
}
