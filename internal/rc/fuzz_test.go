package rc

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// byteFeed deals out fuzz bytes one at a time, cycling so short inputs
// still drive full structures deterministically.
type byteFeed struct {
	data []byte
	pos  int
}

func (f *byteFeed) next() int {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.pos%len(f.data)]
	f.pos++
	return int(b)
}

// dagFromBytes interprets fuzz input as a circuit DAG: a driver rank, then
// one node per byte triple (kind, fan-in selector, output/coupling bits).
// BuildLoose admits every acyclic shape the bytes describe — dangling
// components, a feeder-less sink, sink-feeder-only nets — exactly the
// degenerate structures the Builder's validated path can never produce.
// Returns nil when the bytes describe nothing buildable.
func dagFromBytes(t *testing.T, data []byte) (*circuit.Graph, *coupling.Set) {
	t.Helper()
	f := &byteFeed{data: data}
	b := circuit.NewBuilder()
	var nodes []int // builder ids usable as fan-in sources
	nDrivers := 1 + f.next()%3
	for i := 0; i < nDrivers; i++ {
		nodes = append(nodes, b.AddDriver("d", 20+float64(f.next()%200)))
	}
	var wires []int
	nComps := len(data) % 40
	markedOutput := false
	for c := 0; c < nComps; c++ {
		kind := f.next()
		lo := 0.1 + float64(f.next()%10)/20
		hi := lo + 0.5 + float64(f.next()%20)
		if kind%2 == 0 {
			w := b.AddWire("w",
				1+float64(f.next()%30), 0.2+float64(f.next()%20)/10,
				float64(f.next()%10)/10, 10+float64(f.next()%90), 1, lo, hi)
			b.Connect(nodes[f.next()%len(nodes)], w)
			nodes = append(nodes, w)
			wires = append(wires, w)
			if f.next()%4 == 0 {
				b.MarkOutput(w, float64(f.next()%40))
				markedOutput = true
			}
		} else {
			g := b.AddGate("g",
				5+float64(f.next()%25), 0.1+float64(f.next()%15)/10,
				1+float64(f.next()%7), lo, hi)
			fanin := 1 + f.next()%3
			seen := map[int]bool{}
			for k := 0; k < fanin; k++ {
				src := nodes[f.next()%len(nodes)]
				if seen[src] {
					continue
				}
				seen[src] = true
				b.Connect(src, g)
			}
			nodes = append(nodes, g)
			if f.next()%5 == 0 {
				b.MarkOutput(g, float64(f.next()%40))
				markedOutput = true
			}
		}
	}
	_ = markedOutput // BuildLoose tolerates zero outputs — that IS a target shape
	g, id, err := b.BuildLoose()
	if err != nil {
		return nil, nil // bytes described nothing buildable (e.g. duplicate output)
	}
	var pairs []coupling.Pair
	if len(wires) >= 2 && f.next()%2 == 0 {
		nPairs := 1 + f.next()%3
		have := map[[2]int]bool{}
		for k := 0; k < nPairs; k++ {
			wi := id[wires[f.next()%len(wires)]]
			wj := id[wires[f.next()%len(wires)]]
			if wi == wj {
				continue
			}
			if wi > wj {
				wi, wj = wj, wi
			}
			if have[[2]int{wi, wj}] {
				continue
			}
			have[[2]int{wi, wj}] = true
			pairs = append(pairs, coupling.Pair{
				I: wi, J: wj,
				CTilde: 0.5 + float64(f.next()%10),
				Dist:   1 + float64(f.next()%5),
				Weight: float64(f.next()%4) / 2,
			})
		}
	}
	cs, err := coupling.NewSet(pairs)
	if err != nil {
		t.Fatalf("generated coupling set invalid: %v", err)
	}
	return g, cs
}

// FuzzLevelizer is the levelizer's adversary: for every DAG the bytes
// describe it (1) asserts the level assignment is a valid topological
// order whose buckets partition the nodes, and (2) cross-checks the
// levelized Recompute and UpstreamResistance against the serial reference
// implementations to exact bitwise equality, under deliberately hostile
// Runner chunkings.
// FuzzIncremental is the dirty-cone engine's adversary: for every DAG the
// bytes describe it replays random size-mutation batches on three
// evaluators — one driven through RecomputeIncremental /
// UpstreamResistanceIncremental serially, one through the same calls under
// a hostile chunked Runner, and one full-pass serial oracle — and demands
// exact bitwise equality of every derived array after every batch. Batches
// of size zero exercise the empty-dirty-set path; repeated picks of the
// same node exercise idempotent marking.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("incremental cones must match the full pass bit for bit"))
	f.Add([]byte{2, 0, 2, 0, 2, 0, 2, 0, 2, 0, 2, 0, 2, 0, 2, 0, 2, 0})
	f.Add([]byte{250, 1, 250, 2, 250, 3, 250, 4, 250, 5, 250, 6, 250, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, cs := dagFromBytes(t, data)
		if g == nil {
			return
		}
		var sizable []int
		for i := 0; i < g.NumNodes(); i++ {
			if g.Comp(i).Kind.Sizable() {
				sizable = append(sizable, i)
			}
		}
		if len(sizable) == 0 {
			return
		}
		newEv := func() *Evaluator {
			ev, err := NewEvaluator(g, cs)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetAllSizes(0.3 + float64(len(data)%30)/10)
			return ev
		}
		inc, lv, ref := newEv(), newEv(), newEv()
		lv.SetRunner(chunkedRunner(3))
		inc.Recompute()
		lv.Recompute()
		ref.RecomputeSerial()
		lambda := make([]float64, g.NumNodes())
		for i := range lambda {
			lambda[i] = float64((i*5+len(data))%9) / 4
		}
		rupInc := make([]float64, g.NumNodes())
		rupLv := make([]float64, g.NumNodes())
		rupRef := make([]float64, g.NumNodes())
		inc.UpstreamResistance(lambda, rupInc)
		lv.UpstreamResistance(lambda, rupLv)

		feed := &byteFeed{data: data}
		batches := 1 + feed.next()%4
		for batch := 0; batch < batches; batch++ {
			nMut := feed.next() % 6 // 0 → empty dirty set
			for m := 0; m < nMut; m++ {
				i := sizable[feed.next()%len(sizable)]
				c := g.Comp(i)
				v := c.Lo + float64(feed.next()%32)/31*(c.Hi-c.Lo)
				if _, err := inc.SetSize(i, v); err != nil {
					t.Fatal(err)
				}
				if _, err := lv.SetSize(i, v); err != nil {
					t.Fatal(err)
				}
				ref.X[i] = inc.X[i] // oracle runs full passes, no marking needed
			}
			inc.RecomputeIncremental()
			lv.RecomputeIncremental()
			ref.RecomputeSerial()
			for i := 0; i < g.NumNodes(); i++ {
				for _, e := range [2]*Evaluator{inc, lv} {
					if e.B[i] != ref.B[i] || e.C[i] != ref.C[i] || e.CPr[i] != ref.CPr[i] ||
						e.D[i] != ref.D[i] || e.A[i] != ref.A[i] ||
						e.Cap[i] != ref.Cap[i] || e.RPs[i] != ref.RPs[i] {
						t.Fatalf("batch %d node %d: incremental (B=%.17g C=%.17g D=%.17g A=%.17g) != full (B=%.17g C=%.17g D=%.17g A=%.17g)",
							batch, i, e.B[i], e.C[i], e.D[i], e.A[i],
							ref.B[i], ref.C[i], ref.D[i], ref.A[i])
					}
					if e.CNbr != nil && e.CNbr[i] != ref.CNbr[i] {
						t.Fatalf("batch %d node %d: CNbr %.17g != %.17g", batch, i, e.CNbr[i], ref.CNbr[i])
					}
				}
			}
			inc.UpstreamResistanceIncremental(lambda, rupInc)
			lv.UpstreamResistanceIncremental(lambda, rupLv)
			ref.UpstreamResistanceSerial(lambda, rupRef)
			for i := range rupRef {
				if rupInc[i] != rupRef[i] || rupLv[i] != rupRef[i] {
					t.Fatalf("batch %d node %d: incremental R (%.17g, %.17g) != full R %.17g",
						batch, i, rupInc[i], rupLv[i], rupRef[i])
				}
			}
		}
	})
}

func FuzzLevelizer(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("levelized timing propagation must match the serial pass"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 249, 248, 247, 246, 245, 244})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, cs := dagFromBytes(t, data)
		if g == nil {
			return
		}

		// Levels are a valid topological order and the buckets a partition.
		seen := make([]bool, g.NumNodes())
		for l := 0; l < g.NumLevels(); l++ {
			for _, i := range g.LevelNodes(l) {
				if g.Level(int(i)) != l || seen[i] {
					t.Fatalf("node %d misplaced or duplicated in bucket %d", i, l)
				}
				seen[i] = true
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("node %d missing from level buckets", i)
			}
			for _, j := range g.In(i) {
				if g.Level(int(j)) >= g.Level(i) {
					t.Fatalf("edge (%d,%d) does not increase level (%d → %d)",
						j, i, g.Level(int(j)), g.Level(i))
				}
			}
		}

		// Levelized vs serial, exact equality.
		size := 0.1 + float64(len(data)%50)/10
		ref, err := NewEvaluator(g, cs)
		if err != nil {
			t.Fatal(err) // generator only couples wires, so this must build
		}
		ref.SetAllSizes(size)
		ref.RecomputeSerial()
		lambda := make([]float64, g.NumNodes())
		for i := range lambda {
			lambda[i] = float64((i*7+len(data))%11) / 3
		}
		refR := make([]float64, g.NumNodes())
		ref.UpstreamResistanceSerial(lambda, refR)

		for _, parts := range []int{1, 3, 5} {
			lv, err := NewEvaluator(g, cs)
			if err != nil {
				t.Fatal(err)
			}
			lv.SetRunner(chunkedRunner(parts))
			lv.SetAllSizes(size)
			lv.Recompute()
			for i := 0; i < g.NumNodes(); i++ {
				if lv.B[i] != ref.B[i] || lv.C[i] != ref.C[i] || lv.CPr[i] != ref.CPr[i] ||
					lv.D[i] != ref.D[i] || lv.A[i] != ref.A[i] {
					t.Fatalf("parts=%d node %d: levelized (B=%.17g C=%.17g D=%.17g A=%.17g) != serial (B=%.17g C=%.17g D=%.17g A=%.17g)",
						parts, i, lv.B[i], lv.C[i], lv.D[i], lv.A[i],
						ref.B[i], ref.C[i], ref.D[i], ref.A[i])
				}
				if math.IsNaN(lv.A[i]) {
					t.Fatalf("node %d: arrival is NaN", i)
				}
			}
			lvR := make([]float64, g.NumNodes())
			lv.UpstreamResistance(lambda, lvR)
			for i := range refR {
				if lvR[i] != refR[i] {
					t.Fatalf("parts=%d node %d: levelized R=%.17g != serial R=%.17g",
						parts, i, lvR[i], refR[i])
				}
			}
		}
	})
}
