package rc

import (
	"testing"

	"repro/internal/circuit"
)

// TestBatchErrors pins the constructor's argument validation.
func TestBatchErrors(t *testing.T) {
	g := buildChain(t)
	cs := emptySet(t)
	if _, err := NewBatch(g, cs, 0); err == nil {
		t.Fatal("NewBatch with k=0 should fail")
	}
	if _, err := NewBatch(g, cs, -3); err == nil {
		t.Fatal("NewBatch with negative k should fail")
	}
	b, err := NewBatch(g, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}

// TestBatchReplicaIndependence checks that mutating one replica's sizes
// and recomputing it leaves a sibling replica's state bit-identical to an
// untouched solo evaluator — the disjoint-stripes property every lockstep
// bitwise argument rests on.
func TestBatchReplicaIndependence(t *testing.T) {
	g := buildChain(t)
	cs := emptySet(t)
	b, err := NewBatch(g, cs, 2)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := NewEvaluator(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	solo.SetAllSizes(0.7)
	solo.RecomputeSerial()
	b.Ev(0).SetAllSizes(0.7)
	b.Ev(1).SetAllSizes(2.3)
	b.RecomputeAll([]int{0, 1})
	// Hammer replica 1; replica 0 must not move a bit.
	for pass := 0; pass < 3; pass++ {
		b.Ev(1).SetAllSizes(0.3 + float64(pass))
		b.RecomputeAll([]int{1})
	}
	e0 := b.Ev(0)
	for i := 0; i < g.NumNodes(); i++ {
		if e0.A[i] != solo.A[i] || e0.C[i] != solo.C[i] || e0.B[i] != solo.B[i] {
			t.Fatalf("node %d: replica 0 perturbed by replica 1's recomputes (A=%.17g want %.17g)",
				i, e0.A[i], solo.A[i])
		}
	}
}

// buildChain makes a minimal driver→wire→gate→wire(output) chain.
func buildChain(t *testing.T) *circuit.Graph {
	t.Helper()
	b := circuit.NewBuilder()
	d := b.AddDriver("d", 100)
	w1 := b.AddWire("w1", 10, 0.5, 0.1, 50, 1, 0.2, 3)
	gt := b.AddGate("g", 12, 0.4, 2, 0.3, 4)
	w2 := b.AddWire("w2", 8, 0.5, 0.1, 40, 1, 0.2, 3)
	b.Connect(d, w1)
	b.Connect(w1, gt)
	b.Connect(gt, w2)
	b.MarkOutput(w2, 15)
	g, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// FuzzLockstep is the batched kernel's adversary: for every DAG the bytes
// describe it builds a K-replica rc.Batch with per-replica perturbed
// sizes and K solo evaluators with the same sizes, then demands exact
// bitwise equality of every derived array after batched RecomputeAll /
// UpstreamResistanceAll — on arbitrary replica subsets, under
// deliberately hostile Runner chunkings, against the serial solo
// reference. This is the contract every lockstep layer above (core,
// sweep, farm) inherits: a batched pass IS the solo pass, per replica.
func FuzzLockstep(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4})
	f.Add([]byte("batched replicas must match solo evaluators bit for bit"))
	f.Add([]byte{0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, cs := dagFromBytes(t, data)
		if g == nil {
			return
		}
		feed := &byteFeed{data: data}
		k := 1 + feed.next()%4
		b, err := NewBatch(g, cs, k)
		if err != nil {
			t.Fatal(err) // generator only couples wires, so this must build
		}
		nn := g.NumNodes()
		solos := make([]*Evaluator, k)
		lambdas := make([][]float64, k)
		for r := 0; r < k; r++ {
			solo, err := NewEvaluator(g, cs)
			if err != nil {
				t.Fatal(err)
			}
			// Size-perturb each replica: same circuit, different point in
			// the size box, mirrored into the batch replica and its solo
			// twin.
			for i := 0; i < nn; i++ {
				c := g.Comp(i)
				if !c.Kind.Sizable() {
					continue
				}
				v := c.Lo + float64(feed.next()%32)/31*(c.Hi-c.Lo)
				solo.X[i] = v
				b.Ev(r).X[i] = v
			}
			solos[r] = solo
			lam := make([]float64, nn)
			for i := range lam {
				lam[i] = float64((i*3+r*7+len(data))%13) / 5
			}
			lambdas[r] = lam
		}
		// An arbitrary non-empty subset first (converged replicas have
		// retired), then the full set — both on every hostile chunking.
		subset := make([]int, 0, k)
		for r := 0; r < k; r++ {
			if feed.next()%2 == 0 {
				subset = append(subset, r)
			}
		}
		if len(subset) == 0 {
			subset = append(subset, feed.next()%k)
		}
		full := make([]int, k)
		for r := range full {
			full[r] = r
		}
		for _, parts := range []int{1, 3, 5} {
			if parts > 1 {
				b.SetRunner(chunkedRunner(parts))
			}
			for v, reps := range [][]int{subset, full} {
				dsts := make([][]float64, len(reps))
				lams := make([][]float64, len(reps))
				for n, r := range reps {
					dsts[n] = make([]float64, nn)
					lams[n] = lambdas[r]
				}
				// Both batched schedules must match solo: the split pass
				// pair and the fused single-traversal sweep.
				if v == 0 {
					b.RecomputeAll(reps)
					b.UpstreamResistanceAll(reps, lams, dsts)
				} else {
					b.SweepAll(reps, lams, dsts)
				}
				for n, r := range reps {
					solo := solos[r]
					solo.RecomputeSerial()
					ref := make([]float64, nn)
					solo.UpstreamResistanceSerial(lambdas[r], ref)
					e := b.Ev(r)
					for i := 0; i < nn; i++ {
						if e.B[i] != solo.B[i] || e.C[i] != solo.C[i] || e.CPr[i] != solo.CPr[i] ||
							e.D[i] != solo.D[i] || e.A[i] != solo.A[i] ||
							e.Cap[i] != solo.Cap[i] || e.RPs[i] != solo.RPs[i] {
							t.Fatalf("parts=%d replica %d node %d: batch (B=%.17g C=%.17g D=%.17g A=%.17g) != solo (B=%.17g C=%.17g D=%.17g A=%.17g)",
								parts, r, i, e.B[i], e.C[i], e.D[i], e.A[i],
								solo.B[i], solo.C[i], solo.D[i], solo.A[i])
						}
						if e.CNbr != nil && e.CNbr[i] != solo.CNbr[i] {
							t.Fatalf("parts=%d replica %d node %d: CNbr %.17g != %.17g",
								parts, r, i, e.CNbr[i], solo.CNbr[i])
						}
						if dsts[n][i] != ref[i] {
							t.Fatalf("parts=%d replica %d node %d: batch R=%.17g != solo R=%.17g",
								parts, r, i, dsts[n][i], ref[i])
						}
					}
				}
			}
		}
	})
}
