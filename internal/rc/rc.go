package rc

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/coupling"
)

// Runner executes fn over disjoint contiguous subranges that exactly cover
// [lo, hi) and returns only after every call has completed. It is the
// evaluator's hook for data-parallel execution: a nil Runner (the default)
// runs everything serially on the calling goroutine. Implementations may
// run the subranges concurrently; the evaluator only hands a Runner loops
// whose iterations are independent, so any partition yields bit-identical
// results.
type Runner func(lo, hi int, fn func(lo, hi int))

// Evaluator holds preallocated state for repeated RC evaluation of one
// circuit. Memory is linear in the circuit size; every pass is linear in
// nodes plus edges (the paper's "linear runtime per iteration").
type Evaluator struct {
	g   *circuit.Graph
	cs  *coupling.Set
	run Runner

	// Shared topology and this evaluator's stripe set (kernel.go). The
	// exported per-node arrays below alias st's slices; the CSR and level
	// fields alias t's. A solo evaluator owns its topo; a Batch replica
	// shares one topo with its siblings.
	t  *topo
	st stripes

	// Coupling gather index in CSR form: for node i, entries
	// nbrOff[i]..nbrOff[i+1] list the coupled neighbour nodes (nbrIdx) and
	// the weighted linear coefficients wᵢⱼ·ĉᵢⱼ (nbrW). Gathering per node
	// instead of scattering per pair makes the CNbr fill race-free under a
	// Runner while preserving the per-node accumulation order.
	nbrOff []int32
	nbrIdx []int32
	nbrW   []float64

	// Level buckets over the interior nodes (everything but source and
	// sink), in CSR form: nodes of topological level l occupy
	// lvlNodes[lvlOff[l]:lvlOff[l+1]], ascending. The levelized passes walk
	// these buckets forward (arrivals, upstream resistances) or backward
	// (stage loads), handing each bucket to the Runner as one parallel
	// region.
	lvlOff   []int32
	lvlNodes []int32

	// X is the size vector indexed by node (µm); entries for source,
	// drivers and sink are ignored. Mutate via SetSize/SetSizes/
	// SetAllSizes, or assign directly and MarkDirty the changed nodes
	// before the next incremental pass.
	X []float64

	// Incremental (dirty-cone) evaluation state; see incremental.go.
	// recValid flips once a full Recompute has established the derived
	// arrays; the dirty sets log size changes for the two pass families
	// (they consume independently — Recompute and UpstreamResistance run
	// at different times on the same changes); the frontiers, change
	// flags, and change logs are reusable walk scratch. All of it is
	// excluded from MemoryBytes: the analytic footprint must be identical
	// for every execution mode.
	recValid bool
	dirtyRec dirtySet
	dirtyUp  dirtySet
	nbrSet   dirtySet
	frBack   *frontier
	frFwd    *frontier
	chg      []uint8
	chgLoads []int32
	chgUp    []int32
	stats    EvalStats

	// Persistent walk dispatch (see bindWalkBody): one closure for every
	// frontier region, selected by walkOp over walkNodes, with the
	// upstream pass's operands staged in walkLam/walkDst.
	walkBody  func(lo, hi int)
	walkOp    uint8
	walkNodes []int32
	walkLam   []float64
	walkDst   []float64

	// Per-node electrical state, valid after Recompute.
	Cap  []float64 // cᵢ = ĉᵢxᵢ (+ fᵢ for wires); 0 for drivers
	RPs  []float64 // effective resistance in ps/fF (tech.RC · rᵢ)
	B    []float64 // stage-local load beyond node i's output
	C    []float64 // Elmore downstream load of node i (self + coupling included)
	CPr  []float64 // C′ᵢ: the xᵢ-independent, non-neighbour part of Cᵢ
	D    []float64 // node delay (ps)
	A    []float64 // arrival time (ps)
	CNbr []float64 // Σ_{j∈N(i)} wᵢⱼ·ĉᵢⱼ·xⱼ (wires)
	CHat []float64 // Σ_{j∈N(i)} wᵢⱼ·ĉᵢⱼ (wires; size-independent)
	CCst []float64 // Σ_{j∈N(i)} wᵢⱼ·c̃ᵢⱼ (wires; size-independent)
}

// NewEvaluator allocates an evaluator for the graph and coupling set (which
// may be empty but not nil-pair-invalid; pass an empty set for uncoupled
// circuits). Sizes start at each component's lower bound.
func NewEvaluator(g *circuit.Graph, cs *coupling.Set) (*Evaluator, error) {
	t, err := buildTopo(g, cs)
	if err != nil {
		return nil, err
	}
	return newEvaluatorOn(t, nil), nil
}

// newEvaluatorOn builds an evaluator over a prebuilt topology, carving its
// stripe set out of slab (nil allocates fresh backing; a Batch passes one
// shared slab so replica stripes are contiguous). The exported per-node
// arrays alias the stripes and the CSR/level fields alias the topo, so
// every Evaluator method — including the incremental engine and
// MemoryBytes — works identically whether the evaluator is solo or a
// batch replica.
func newEvaluatorOn(t *topo, slab []float64) *Evaluator {
	g := t.g
	nn := g.NumNodes()
	st := t.carve(slab)
	e := &Evaluator{
		g: g, cs: t.cs,
		t: t, st: st,
		X:    st.x,
		Cap:  st.cap,
		RPs:  st.rps,
		B:    st.b,
		C:    st.c,
		CPr:  st.cpr,
		D:    st.d,
		A:    st.a,
		CNbr: st.cnbr,
		CHat: t.chat,
		CCst: t.ccst,

		nbrOff: t.nbrOff,
		nbrIdx: t.nbrIdx,
		nbrW:   t.nbrW,

		lvlOff:   t.lvlOff,
		lvlNodes: t.lvlNodes,
	}
	for i := 0; i < nn; i++ {
		if c := g.Comp(i); c.Kind.Sizable() {
			e.X[i] = c.Lo
		}
	}
	// Dirty-cone scratch (incremental.go).
	nLvl := t.numLevels()
	e.dirtyRec.init(nn)
	e.dirtyUp.init(nn)
	e.nbrSet.init(nn)
	e.frBack = newFrontier(nLvl, nn)
	e.frFwd = newFrontier(nLvl, nn)
	e.chg = make([]uint8, nn)
	e.bindWalkBody()
	return e
}

// numLevels returns the number of interior level buckets.
func (e *Evaluator) numLevels() int { return len(e.lvlOff) - 1 }

// Graph returns the underlying circuit graph.
func (e *Evaluator) Graph() *circuit.Graph { return e.g }

// Couplings returns the coupling set.
func (e *Evaluator) Couplings() *coupling.Set { return e.cs }

// SetRunner installs (or, with nil, removes) the executor used for the
// evaluator's data-parallel passes. Callers own the Runner's lifetime; the
// evaluator never retains work past a Recompute call.
func (e *Evaluator) SetRunner(r Runner) { e.run = r }

// par runs fn over [lo, hi) through the installed Runner, or inline when
// none is set.
func (e *Evaluator) par(lo, hi int, fn func(lo, hi int)) {
	if e.run == nil {
		fn(lo, hi)
		return
	}
	e.run(lo, hi, fn)
}

// NbrEntries returns the coupling gather lists for node i: the coupled
// neighbour node ids and the matching weighted linear coefficients
// wᵢⱼ·ĉᵢⱼ, in the coupling set's pair order. Both are nil for uncoupled
// nodes. The slices alias internal state and must not be modified.
func (e *Evaluator) NbrEntries(i int) ([]int32, []float64) {
	if e.nbrOff == nil {
		return nil, nil
	}
	lo, hi := e.nbrOff[i], e.nbrOff[i+1]
	return e.nbrIdx[lo:hi], e.nbrW[lo:hi]
}

// SetAllSizes assigns every component the size v clamped to its bounds.
// A non-finite v still yields a valid state: ±Inf clamp to the nearest
// bound as usual and NaN falls to each component's lower bound — NaN must
// never reach X, where it would silently poison every derived quantity
// (the same hole SetSizes closes by rejection).
func (e *Evaluator) SetAllSizes(v float64) {
	if math.IsNaN(v) {
		v = math.Inf(-1) // clamps to Lo below
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		c := e.g.Comp(i)
		if !c.Kind.Sizable() {
			continue
		}
		if nv := math.Min(c.Hi, math.Max(c.Lo, v)); nv != e.X[i] {
			e.X[i] = nv
			e.MarkDirty(i)
		}
	}
}

// SetSizes copies the given size vector (indexed by node) clamping each
// component to its bounds. A NaN or infinite entry on a sizable node is
// rejected before any size is modified: NaN propagates through the min/max
// clamp and would silently poison every derived quantity downstream.
func (e *Evaluator) SetSizes(x []float64) error {
	if len(x) != len(e.X) {
		return fmt.Errorf("rc: size vector has %d entries, want %d", len(x), len(e.X))
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		if e.g.Comp(i).Kind.Sizable() && (math.IsNaN(x[i]) || math.IsInf(x[i], 0)) {
			return fmt.Errorf("rc: size for %v node %d is %g", e.g.Comp(i).Kind, i, x[i])
		}
	}
	for i := 0; i < e.g.NumNodes(); i++ {
		c := e.g.Comp(i)
		if !c.Kind.Sizable() {
			continue
		}
		if nv := math.Min(c.Hi, math.Max(c.Lo, x[i])); nv != e.X[i] {
			e.X[i] = nv
			e.MarkDirty(i)
		}
	}
	return nil
}

// electricalRange fills the per-node capacitances and effective resistances
// for nodes [lo, hi); every iteration is independent. The body lives in
// the kernel layer (kernel.go) so batched replicas run the identical code.
func (e *Evaluator) electricalRange(lo, hi int) { e.t.kElectrical(&e.st, lo, hi) }

// couplingRange fills the neighbour coupling sums CNbr for nodes [lo, hi).
// Gathered per node from the CSR index: each iteration writes only its own
// CNbr entry, in the same per-node accumulation order as the pair-scatter
// formulation.
func (e *Evaluator) couplingRange(lo, hi int) { e.t.kCoupling(&e.st, lo, hi) }

// loadsNode computes the stage load B and the delay loads C/C′ of node i
// from its fan-out. Every read (Cap of any fan-out, B of wire fan-outs) is
// of a node on a strictly higher level, so nodes sharing a level can run
// concurrently; the accumulation folds in fan-out list order, identical for
// every schedule.
func (e *Evaluator) loadsNode(i int) { e.t.kLoads(&e.st, i) }

// arrivalNode computes node i's Elmore delay and arrival time. Reads only
// arrivals of fan-ins (strictly lower level) and its own RPs/C.
func (e *Evaluator) arrivalNode(i int) { e.t.kArrival(&e.st, i) }

// finishSink defines the sink's arrival as the max over its feeders (0 when
// the sink has no feeders, e.g. on BuildLoose graphs) — the max-fold is
// exact under any grouping, so every schedule agrees bit for bit.
func (e *Evaluator) finishSink() { e.t.kFinishSink(&e.st) }

// Recompute refreshes every derived quantity for the current sizes:
// capacitances and resistances, the stage loads B and delay loads C/C′
// (reverse topological pass), node delays, and arrival times (forward
// topological pass). The per-node electrical values and the coupling gather
// run through the installed Runner as flat ranges; the two topological
// passes run level by level — each depth bucket is a parallel region whose
// nodes are mutually independent, with a barrier between consecutive
// levels. Without a Runner the plain index-order reference loops run
// instead (RecomputeSerial); both paths execute identical per-node bodies
// and are bit-identical.
func (e *Evaluator) Recompute() {
	if e.run == nil {
		e.RecomputeSerial()
		return
	}
	g := e.g
	nn := g.NumNodes()
	e.countFullRecompute()

	e.par(1, nn-1, e.electricalRange)
	if e.cs.Len() > 0 {
		e.par(0, nn, e.couplingRange)
	}

	// Reverse topological pass: B, C, C′, levels descending.
	for l := e.numLevels() - 1; l >= 0; l-- {
		e.par(int(e.lvlOff[l]), int(e.lvlOff[l+1]), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				e.loadsNode(int(e.lvlNodes[k]))
			}
		})
	}

	// Delays and arrival times, forward pass, levels ascending.
	e.A[0] = 0
	for l := 0; l < e.numLevels(); l++ {
		e.par(int(e.lvlOff[l]), int(e.lvlOff[l+1]), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				e.arrivalNode(int(e.lvlNodes[k]))
			}
		})
	}
	e.finishSink()
	e.settleRecompute()
}

// countFullRecompute charges one full Recompute to the work counters.
func (e *Evaluator) countFullRecompute() {
	nn := int64(e.g.NumNodes())
	e.stats.FullRecomputes++
	e.stats.ElectricalNodes += nn - 2
	if e.cs.Len() > 0 {
		e.stats.CouplingNodes += nn
	}
	e.stats.LoadsNodes += nn - 2
	e.stats.ArrivalNodes += nn - 2
}

// settleRecompute records that the derived arrays now reflect the current
// sizes exactly: pending size changes are consumed and incremental passes
// become valid.
func (e *Evaluator) settleRecompute() {
	e.recValid = true
	e.dirtyRec.reset()
}

// RecomputeSerial is the single-threaded reference implementation of
// Recompute: plain index-order topological loops with no level scheduling.
// Recompute delegates here when no Runner is installed; the golden,
// property, and fuzz suites cross-check the levelized schedule against it
// to exact (bitwise) equality.
func (e *Evaluator) RecomputeSerial() {
	g := e.g
	nn := g.NumNodes()
	sink := g.SinkID()
	e.countFullRecompute()

	e.electricalRange(1, nn-1)
	if e.cs.Len() > 0 {
		e.couplingRange(0, nn)
	}

	// Reverse topological pass: B, C, C′.
	for i := nn - 1; i >= 1; i-- {
		if i == sink {
			continue
		}
		e.loadsNode(i)
	}

	// Delays and arrival times, forward pass.
	e.A[0] = 0
	for i := 1; i < nn; i++ {
		if i == sink {
			continue
		}
		e.arrivalNode(i)
	}
	e.finishSink()
	e.settleRecompute()
}

// MaxArrival returns the circuit delay: the largest arrival time among
// nodes feeding the sink (the paper's critical-path delay D).
func (e *Evaluator) MaxArrival() float64 { return e.A[e.g.SinkID()] }

// CriticalPath returns the node indices (drivers and components) of a path
// realizing MaxArrival, from a driver to a sink-feeding node. On a graph
// whose sink has no predecessors (possible via Builder.BuildLoose; no
// Build-validated circuit produces one) there is no path to realize and the
// result is nil, matching MaxArrival's defined value of 0 there. Allocates
// a fresh slice per call; repeated queries should reuse a buffer through
// AppendCriticalPath.
func (e *Evaluator) CriticalPath() []int {
	return e.AppendCriticalPath(nil)
}

// AppendCriticalPath appends the critical path (see CriticalPath) to dst
// and returns the extended slice — allocation-free once dst has the
// capacity, so sweep loops can reuse one buffer with
// dst = ev.AppendCriticalPath(dst[:0]).
func (e *Evaluator) AppendCriticalPath(dst []int) []int {
	g := e.g
	sink := g.SinkID()
	if len(g.In(sink)) == 0 {
		return dst
	}
	// Start at the sink feeder with max arrival.
	cur, best := -1, math.Inf(-1)
	for _, j := range g.In(sink) {
		if e.A[j] > best {
			best, cur = e.A[j], int(j)
		}
	}
	if cur < 0 {
		return dst
	}
	start := len(dst)
	for cur > 0 {
		dst = append(dst, cur)
		nxt, bestA := -1, math.Inf(-1)
		for _, j := range g.In(cur) {
			if int(j) == 0 {
				nxt = 0
				break
			}
			if e.A[j] > bestA {
				bestA, nxt = e.A[j], int(j)
			}
		}
		if nxt <= 0 {
			break
		}
		cur = nxt
	}
	rev := dst[start:]
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return dst
}

// RequiredTimes computes each node's required arrival time for the bound
// a0 at the sink, by a reverse pass: req(i) = min over fanouts j of
// req(j) − D(j), with req = a0 at sink feeders. Allocates; repeated
// queries should reuse a buffer through RequiredTimesInto.
func (e *Evaluator) RequiredTimes(a0 float64) []float64 {
	req := make([]float64, e.g.NumNodes())
	e.RequiredTimesInto(a0, req)
	return req
}

// RequiredTimesInto is RequiredTimes with a caller-supplied destination of
// length NumNodes, performing no allocation.
func (e *Evaluator) RequiredTimesInto(a0 float64, req []float64) {
	g := e.g
	nn := g.NumNodes()
	for i := range req {
		req[i] = math.Inf(1)
	}
	req[g.SinkID()] = a0
	for i := nn - 1; i >= 1; i-- {
		r := math.Inf(1)
		for _, jj := range g.Out(i) {
			j := int(jj)
			var cand float64
			if j == g.SinkID() {
				cand = a0
			} else {
				cand = req[j] - e.D[j]
			}
			if cand < r {
				r = cand
			}
		}
		if r < req[i] {
			req[i] = r
		}
	}
}

// Area returns Σ αᵢxᵢ over all components (µm²).
func (e *Evaluator) Area() float64 {
	total := 0.0
	for i := 1; i < e.g.NumNodes()-1; i++ {
		c := e.g.Comp(i)
		if c.Kind.Sizable() {
			total += c.AreaCoeff * e.X[i]
		}
	}
	return total
}

// TotalCap returns Σ cᵢ over all components (fF), the paper's power measure
// before the V²f scaling.
func (e *Evaluator) TotalCap() float64 {
	total := 0.0
	for i := 1; i < e.g.NumNodes()-1; i++ {
		if e.g.Comp(i).Kind.Sizable() {
			total += e.Cap[i]
		}
	}
	return total
}

// NoiseLinear returns the paper's Table-1 noise measure
// Σ wᵢⱼ·ĉᵢⱼ·(xᵢ+xⱼ) in fF.
func (e *Evaluator) NoiseLinear() float64 { return e.cs.TotalLinear(e.X) }

// NoiseExact returns the exact weighted coupling Σ wᵢⱼ·c̃ᵢⱼ(1−x̄)⁻¹ in fF.
func (e *Evaluator) NoiseExact() float64 { return e.cs.TotalExact(e.X) }

// upstreamNode folds node i's weighted upstream resistance from its
// fan-ins. Reads dst only for wire fan-ins, which sit on strictly lower
// levels, so nodes sharing a level are independent; the fold runs in fan-in
// list order, identical for every schedule.
func (e *Evaluator) upstreamNode(i int, lambda, dst []float64) float64 {
	return e.t.kUpstream(&e.st, i, lambda, dst)
}

// UpstreamResistance fills dst[i] with the paper's weighted upstream
// resistance Rᵢ = Σ_{k∈upstream(i)} λₖ·rₖ (in ps/fF, multipliers included),
// where λ is the per-node merged multiplier vector and upstream is the
// stage-local set (walks back through wires to the driving gate or driver,
// inclusive). Runs in one forward topological pass — level by level through
// the installed Runner, or as the plain index-order reference loop
// (UpstreamResistanceSerial) without one; both are bit-identical. Gates
// accumulate the contributions of all their fan-in stages.
func (e *Evaluator) UpstreamResistance(lambda []float64, dst []float64) {
	if e.run == nil {
		e.UpstreamResistanceSerial(lambda, dst)
		return
	}
	nn := e.g.NumNodes()
	e.countFullUpstream()
	e.par(0, nn, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = 0
		}
	})
	for l := 0; l < e.numLevels(); l++ {
		e.par(int(e.lvlOff[l]), int(e.lvlOff[l+1]), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := int(e.lvlNodes[k])
				dst[i] = e.upstreamNode(i, lambda, dst)
			}
		})
	}
}

// countFullUpstream charges one full upstream pass to the work counters
// and consumes the pending size changes: dst now reflects the current
// sizes, so a following incremental call starts from a clean slate.
func (e *Evaluator) countFullUpstream() {
	e.stats.FullUpstreams++
	e.stats.UpstreamNodes += int64(e.g.NumNodes()) - 2
	e.dirtyUp.reset()
}

// UpstreamResistanceSerial is the single-threaded reference implementation
// of UpstreamResistance, kept as the cross-check oracle for the levelized
// schedule (see RecomputeSerial).
func (e *Evaluator) UpstreamResistanceSerial(lambda []float64, dst []float64) {
	nn := e.g.NumNodes()
	e.countFullUpstream()
	for i := 0; i < nn; i++ {
		dst[i] = 0
	}
	for i := 1; i < nn-1; i++ {
		dst[i] = e.upstreamNode(i, lambda, dst)
	}
}

// MemoryBytes returns the analytic footprint of the evaluator's arrays for
// the Figure-10 storage accounting. The dirty-cone scratch (dirty sets,
// frontiers, change flags) is deliberately excluded: the analytic
// footprint must be identical whether a solve runs full or incremental
// passes, exactly as the solver excludes its per-worker scratch.
func (e *Evaluator) MemoryBytes() int {
	n := len(e.X)
	arrays := 9
	if e.CNbr != nil {
		arrays += 3
	}
	return arrays*n*8 + len(e.nbrOff)*4 + len(e.nbrIdx)*4 + len(e.nbrW)*8 +
		(len(e.lvlOff)+len(e.lvlNodes))*4
}
